/**
 * @file
 * Tests for the v2 compressed trace container (src/trace/,
 * DESIGN.md §11): round-trip fidelity across block boundaries, size
 * vs the v1 fixed-record dump, seek-index positioning, v1/v2 dispatch
 * through openTraceFile, typed structural errors with byte offsets,
 * and the record/replay stat-identity guarantee on a fig13-class
 * single-core run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "isa/trace_io.hh"
#include "mem/functional_memory.hh"
#include "sim/system.hh"
#include "trace/reader.hh"
#include "trace/record.hh"
#include "trace/writer.hh"
#include "workload/profile.hh"
#include "workload/synthetic.hh"

namespace emc
{
namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Generate n realistic uops from a profile's generator. */
std::vector<DynUop>
genUops(const char *profile, std::uint64_t n, std::uint64_t seed)
{
    FunctionalMemory mem;
    SyntheticProgram gen(profileByName(profile), mem, seed);
    std::vector<DynUop> v(n);
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_TRUE(gen.next(v[i]));
    return v;
}

/** Adversarial uops: every field at its extremes, no ISA semantics. */
std::vector<DynUop>
weirdUops(std::uint64_t n)
{
    Rng rng(99);
    std::vector<DynUop> v(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        DynUop &d = v[i];
        d.uop.op = static_cast<Opcode>(rng.below(
            static_cast<std::uint64_t>(Opcode::kNop) + 1));
        d.uop.dst = static_cast<std::uint8_t>(rng.below(kArchRegs));
        d.uop.src1 = static_cast<std::uint8_t>(rng.below(kArchRegs));
        d.uop.src2 =
            rng.chance(0.3)
                ? kNoReg
                : static_cast<std::uint8_t>(rng.below(kArchRegs));
        d.uop.imm = static_cast<std::int64_t>(rng.next());
        d.uop.pc = rng.next();
        d.result = rng.next();
        d.vaddr = rng.next();
        d.mem_value = rng.next();
        d.taken = rng.chance(0.5);
        d.mispredicted = rng.chance(0.1);
        v[i] = d;
    }
    return v;
}

void
expectSameUop(const DynUop &a, const DynUop &b, std::uint64_t i)
{
    EXPECT_EQ(a.uop.op, b.uop.op) << i;
    EXPECT_EQ(a.uop.dst, b.uop.dst) << i;
    EXPECT_EQ(a.uop.src1, b.uop.src1) << i;
    EXPECT_EQ(a.uop.src2, b.uop.src2) << i;
    EXPECT_EQ(a.uop.imm, b.uop.imm) << i;
    EXPECT_EQ(a.uop.pc, b.uop.pc) << i;
    EXPECT_EQ(a.result, b.result) << i;
    EXPECT_EQ(a.vaddr, b.vaddr) << i;
    EXPECT_EQ(a.mem_value, b.mem_value) << i;
    EXPECT_EQ(a.taken, b.taken) << i;
    EXPECT_EQ(a.mispredicted, b.mispredicted) << i;
}

std::size_t
fileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::fseek(f, 0, SEEK_END);
    const long n = std::ftell(f);
    std::fclose(f);
    return static_cast<std::size_t>(n);
}

/** Flip one byte in place. */
void
corruptByte(const std::string &path, long at)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, at, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, at, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
}

void
truncateTo(const std::string &path, std::size_t bytes)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::vector<char> buf(bytes);
    ASSERT_EQ(std::fread(buf.data(), 1, bytes, in), bytes);
    std::fclose(in);
    std::FILE *out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(buf.data(), 1, bytes, out), bytes);
    std::fclose(out);
}

// --------------------------------------------------------------------
// Round-trip fidelity
// --------------------------------------------------------------------

/** Property test: profile streams survive the codec at every block
 *  size, including sizes that split the stream mid-iteration. */
TEST(TraceV2Test, RoundTripAcrossBlockBoundaries)
{
    for (const char *profile : {"mcf", "bfs", "hashjoin", "embed"}) {
        const std::vector<DynUop> ref = genUops(profile, 500, 7);
        for (std::uint32_t block_uops : {1u, 7u, 64u, 4096u}) {
            const std::string path = tmpPath("rt.emct");
            {
                trace::Writer w(path, {}, true, block_uops);
                for (const DynUop &d : ref)
                    w.append(d);
                w.close();
            }
            trace::Reader r(path);
            ASSERT_EQ(r.size(), ref.size())
                << profile << " block_uops=" << block_uops;
            DynUop d;
            for (std::uint64_t i = 0; i < ref.size(); ++i) {
                ASSERT_TRUE(r.next(d));
                expectSameUop(d, ref[i], i);
            }
            EXPECT_FALSE(r.next(d));
        }
    }
}

/** Records that defy ISA semantics (random results, random branch
 *  bits) must round-trip via the explicit-fallback flags. */
TEST(TraceV2Test, RoundTripAdversarialRecords)
{
    const std::vector<DynUop> ref = weirdUops(400);
    for (bool compress : {true, false}) {
        const std::string path = tmpPath("weird.emct");
        {
            trace::Writer w(path, {}, compress, 32);
            for (const DynUop &d : ref)
                w.append(d);
            w.close();
        }
        trace::Reader r(path);
        DynUop d;
        for (std::uint64_t i = 0; i < ref.size(); ++i) {
            ASSERT_TRUE(r.next(d)) << compress;
            expectSameUop(d, ref[i], i);
        }
    }
}

TEST(TraceV2Test, EmptyTraceRoundTrips)
{
    const std::string path = tmpPath("empty.emct");
    {
        trace::Writer w(path);
        w.close();
    }
    trace::Reader r(path);
    EXPECT_EQ(r.size(), 0u);
    DynUop d;
    EXPECT_FALSE(r.next(d));
    EXPECT_EQ(trace::verifyFile(path), 0u);
}

TEST(TraceV2Test, ProvenanceSurvives)
{
    const std::string path = tmpPath("prov.emct");
    trace::Provenance prov;
    prov.workload = "bfs";
    prov.meta = "unit-test recipe";
    prov.config_hash = 0x1234abcd;
    prov.seed = 42;
    {
        trace::Writer w(path, prov);
        w.append(genUops("bfs", 1, 3)[0]);
        w.close();
    }
    const trace::Info info = trace::probeFile(path);
    EXPECT_EQ(info.version, trace::kVersion);
    EXPECT_EQ(info.uop_count, 1u);
    EXPECT_EQ(info.provenance.workload, "bfs");
    EXPECT_EQ(info.provenance.meta, "unit-test recipe");
    EXPECT_EQ(info.provenance.config_hash, 0x1234abcdu);
    EXPECT_EQ(info.provenance.seed, 42u);
    EXPECT_TRUE(info.finalized());
}

// --------------------------------------------------------------------
// Compression gate: v2 must be >= 4x smaller than the v1 dump
// --------------------------------------------------------------------

TEST(TraceV2Test, AtLeastFourTimesSmallerThanV1)
{
    for (const char *profile : {"mcf", "bfs"}) {
        const std::vector<DynUop> ref = genUops(profile, 20000, 11);
        const std::string v1 = tmpPath("size.v1.emct");
        const std::string v2 = tmpPath("size.v2.emct");
        {
            TraceWriter w1(v1);
            trace::Writer w2(v2);
            for (const DynUop &d : ref) {
                w1.append(d);
                w2.append(d);
            }
            w1.close();
            w2.close();
        }
        const std::size_t b1 = fileBytes(v1);
        const std::size_t b2 = fileBytes(v2);
        EXPECT_GE(b1, 4 * b2)
            << profile << ": v1=" << b1 << " v2=" << b2 << " ratio="
            << static_cast<double>(b1) / static_cast<double>(b2);
    }
}

// --------------------------------------------------------------------
// Seek index
// --------------------------------------------------------------------

TEST(TraceV2Test, SeekToMatchesSequentialRead)
{
    const std::vector<DynUop> ref = genUops("mcf", 700, 5);
    const std::string path = tmpPath("seek.emct");
    {
        trace::Writer w(path, {}, true, 64);
        for (const DynUop &d : ref)
            w.append(d);
        w.close();
    }
    trace::Reader r(path);
    // Jump around: forward, backward, block-boundary, clamped-at-end.
    for (std::uint64_t idx : {0ull, 63ull, 64ull, 65ull, 311ull, 5ull,
                              699ull, 640ull}) {
        r.seekTo(idx);
        DynUop d;
        ASSERT_TRUE(r.next(d)) << idx;
        expectSameUop(d, ref[idx], idx);
    }
    r.seekTo(700); // clamp: positioned at EOF
    DynUop d;
    EXPECT_FALSE(r.next(d));
}

TEST(TraceV2Test, LoopModeWraps)
{
    const std::vector<DynUop> ref = genUops("mcf", 50, 9);
    const std::string path = tmpPath("loop.emct");
    {
        trace::Writer w(path, {}, true, 16);
        for (const DynUop &d : ref)
            w.append(d);
        w.close();
    }
    trace::Reader r(path, /*loop=*/true);
    DynUop d;
    for (int i = 0; i < 125; ++i) {
        ASSERT_TRUE(r.next(d)) << i;
        expectSameUop(d, ref[i % 50], i);
    }
    EXPECT_EQ(r.produced(), 125u);
}

// --------------------------------------------------------------------
// Version dispatch
// --------------------------------------------------------------------

TEST(TraceV2Test, OpenTraceFileReadsV1AndV2)
{
    const std::vector<DynUop> ref = genUops("mcf", 120, 21);
    const std::string v1 = tmpPath("dispatch.v1.emct");
    const std::string v2 = tmpPath("dispatch.v2.emct");
    {
        TraceWriter w1(v1);
        trace::Writer w2(v2);
        for (const DynUop &d : ref) {
            w1.append(d);
            w2.append(d);
        }
        w1.close();
        w2.close();
    }
    for (const std::string &path : {v1, v2}) {
        auto src = trace::openTraceFile(path);
        DynUop d;
        for (std::uint64_t i = 0; i < ref.size(); ++i) {
            ASSERT_TRUE(src->next(d)) << path;
            expectSameUop(d, ref[i], i);
        }
        EXPECT_FALSE(src->next(d));
    }
    // probeFile reports the version either way.
    EXPECT_EQ(trace::probeFile(v1).version, 1u);
    EXPECT_EQ(trace::probeFile(v2).version, trace::kVersion);
    EXPECT_EQ(trace::probeFile(v1).uop_count, 120u);
}

// --------------------------------------------------------------------
// Typed errors with byte offsets
// --------------------------------------------------------------------

TEST(TraceV2Test, MissingFileThrows)
{
    EXPECT_THROW(trace::Reader r(tmpPath("nope.emct")), trace::Error);
    EXPECT_THROW(trace::probeFile(tmpPath("nope.emct")), trace::Error);
}

TEST(TraceV2Test, BadMagicThrows)
{
    const std::string path = tmpPath("badmagic.emct");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTATRACEFILE---", f);
    std::fclose(f);
    try {
        trace::probeFile(path);
        FAIL() << "no error";
    } catch (const trace::Error &e) {
        EXPECT_NE(std::string(e.what()).find("magic"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceV2Test, UnfinalizedFileRejectedByReader)
{
    const std::string path = tmpPath("unfinalized.emct");
    {
        trace::Writer w(path, {}, true, 8);
        for (const DynUop &d : genUops("mcf", 20, 2))
            w.append(d);
        // no close(): destructor leaves index_offset == 0
    }
    EXPECT_FALSE(trace::probeFile(path).finalized());
    try {
        trace::Reader r(path);
        FAIL() << "no error";
    } catch (const trace::Error &e) {
        // The unfinalized marker is the index_offset word at byte 32.
        EXPECT_NE(std::string(e.what()).find("offset 32"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceV2Test, TruncationReportsByteOffset)
{
    const std::string path = tmpPath("trunc.emct");
    {
        trace::Writer w(path, {}, true, 16);
        for (const DynUop &d : genUops("mcf", 200, 13))
            w.append(d);
        w.close();
    }
    const std::size_t full = fileBytes(path);
    truncateTo(path, full - 17);
    try {
        trace::verifyFile(path);
        FAIL() << "no error";
    } catch (const trace::Error &e) {
        EXPECT_NE(std::string(e.what()).find("byte offset"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceV2Test, CorruptionFailsChecksumWithOffset)
{
    const std::string path = tmpPath("corrupt.emct");
    {
        trace::Writer w(path, {}, true, 16);
        for (const DynUop &d : genUops("mcf", 200, 17))
            w.append(d);
        w.close();
    }
    // Flip a payload byte in the middle of the block region.
    corruptByte(path, static_cast<long>(fileBytes(path) / 2));
    try {
        trace::verifyFile(path);
        FAIL() << "no error";
    } catch (const trace::Error &e) {
        EXPECT_NE(std::string(e.what()).find("byte offset"),
                  std::string::npos)
            << e.what();
    }
    // The sequential reader hits the same wall (typed, not fatal).
    trace::Reader r(path);
    DynUop d;
    EXPECT_THROW(
        {
            for (std::uint64_t i = 0; i < r.size(); ++i)
                r.next(d);
        },
        trace::Error);
}

// --------------------------------------------------------------------
// Record / replay stat identity (fig13-class single core)
// --------------------------------------------------------------------

TEST(TraceV2Test, RecordedReplayIsStatIdenticalToLiveRun)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.emc_enabled = true;
    cfg.target_uops = 4000;
    cfg.warmup_uops = 1000;

    System live(cfg, {"mcf"});
    live.run();
    const StatDump d_live = live.dump();

    // Record strictly more uops than the run consumes (the core
    // fetches ahead of commit), with the System's own seed derivation.
    trace::RecordSpec spec;
    spec.profile = "mcf";
    spec.path = tmpPath("identity.emct");
    spec.uops = 6 * cfg.target_uops;
    spec.base_seed = cfg.seed;
    spec.core = 0;
    trace::recordProfile(spec);

    SystemConfig replay_cfg = cfg;
    replay_cfg.trace_files = {spec.path};
    System replayed(replay_cfg, {"mcf"});
    replayed.run();
    const StatDump d_replay = replayed.dump();

    ASSERT_EQ(d_live.all().size(), d_replay.all().size());
    auto il = d_live.all().begin();
    auto ir = d_replay.all().begin();
    for (; il != d_live.all().end(); ++il, ++ir) {
        EXPECT_EQ(il->first, ir->first);
        EXPECT_EQ(il->second, ir->second) << il->first;
    }
}

} // namespace
} // namespace emc
