/**
 * @file
 * Chain wire-codec round-trip property test (run under ASan in CI):
 * random valid chains encode -> decode -> re-encode byte-identically,
 * and every wire-travelled field survives the round trip. Randomness
 * comes from the repo's seeded Rng so failures reproduce exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hh"
#include "check/checkers.hh"
#include "common/rng.hh"
#include "emc/chain.hh"
#include "emc/chain_codec.hh"

namespace emc
{
namespace
{

/** Opcodes with dst + src1 only. */
const Opcode kUnaryOps[] = {Opcode::kMov, Opcode::kNot, Opcode::kShl,
                            Opcode::kShr, Opcode::kSext, Opcode::kLoad};
/** Opcodes with dst + src1 + src2. */
const Opcode kBinaryOps[] = {Opcode::kAdd, Opcode::kSub, Opcode::kAnd,
                             Opcode::kOr, Opcode::kXor};

/** Immediates covering the inline-16-bit boundary and wide spills. */
std::int64_t
randomImm(Rng &rng)
{
    switch (rng.below(5)) {
    case 0: return 0;
    case 1: return -32768;                                  // INT16_MIN
    case 2: return 32767;                                   // INT16_MAX
    case 3: return static_cast<std::int64_t>(rng.next());   // wide
    default:
        return static_cast<std::int64_t>(rng.range(0, 1000)) - 500;
    }
}

/**
 * Build a random chain that obeys the wire format and the RRT/EPR
 * discipline: every EPR source reads an EPR defined by an earlier uop,
 * every other present operand is a captured live-in, dsts map fresh
 * EPRs, arch dsts stay in the encodable 0..14 range.
 */
ChainRequest
randomChain(Rng &rng)
{
    ChainRequest chain;
    chain.id = rng.next();
    chain.core = static_cast<CoreId>(rng.below(4));
    chain.source_paddr_line = rng.next() & ~0x3fULL;
    chain.source_value = rng.next();
    chain.pte_attached = rng.chance(0.5);

    const unsigned n =
        static_cast<unsigned>(rng.range(1, kChainMaxUops));
    std::uint8_t next_epr = 0;
    unsigned live_ins = 0;

    auto pickSrc = [&](ChainUop &cu, int which) {
        std::uint8_t *epr = which == 1 ? &cu.epr_src1 : &cu.epr_src2;
        bool *live = which == 1 ? &cu.src1_live_in : &cu.src2_live_in;
        std::uint64_t *val = which == 1 ? &cu.src1_val : &cu.src2_val;
        if (next_epr > 0 && rng.chance(0.6)) {
            *epr = static_cast<std::uint8_t>(rng.below(next_epr));
        } else {
            *live = true;
            *val = rng.next();
            ++live_ins;
        }
    };

    for (unsigned i = 0; i < n; ++i) {
        ChainUop cu;
        cu.rob_seq = 100 + i;
        cu.d.uop.imm = randomImm(rng);
        cu.d.uop.pc = rng.next();
        cu.d.result = rng.next();

        if (i == 0) {
            // The triggering source miss: a load into a fresh EPR.
            cu.is_source = true;
            cu.d.uop.op = Opcode::kLoad;
            cu.d.uop.dst = static_cast<std::uint8_t>(rng.below(15));
            cu.d.uop.src1 = static_cast<std::uint8_t>(rng.below(16));
            cu.epr_dst = next_epr++;
            chain.source_epr = cu.epr_dst;
        } else if (next_epr >= kEmcPhysRegs || rng.chance(0.25)) {
            // No-dst uops: a store or a branch.
            if (rng.chance(0.5)) {
                cu.d.uop.op = Opcode::kStore;
                cu.d.uop.src1 = static_cast<std::uint8_t>(rng.below(16));
                cu.d.uop.src2 = static_cast<std::uint8_t>(rng.below(16));
                cu.is_spill_store = rng.chance(0.3);
                pickSrc(cu, 1);
                pickSrc(cu, 2);
            } else {
                cu.d.uop.op = Opcode::kBranch;
                cu.d.uop.src1 = static_cast<std::uint8_t>(rng.below(16));
                cu.d.taken = rng.chance(0.5);
                pickSrc(cu, 1);
            }
        } else {
            const bool binary = rng.chance(0.5);
            cu.d.uop.op =
                binary ? kBinaryOps[rng.below(std::size(kBinaryOps))]
                       : kUnaryOps[rng.below(std::size(kUnaryOps))];
            cu.d.uop.dst = static_cast<std::uint8_t>(rng.below(15));
            cu.d.uop.src1 = static_cast<std::uint8_t>(rng.below(16));
            pickSrc(cu, 1);
            if (binary) {
                cu.d.uop.src2 = static_cast<std::uint8_t>(rng.below(16));
                pickSrc(cu, 2);
            }
            cu.epr_dst = next_epr++;
        }
        chain.uops.push_back(cu);
    }
    chain.live_in_count = live_ins;
    return chain;
}

void
expectUopEqual(const ChainUop &a, const ChainUop &b, unsigned i)
{
    SCOPED_TRACE("uop " + std::to_string(i));
    EXPECT_EQ(a.d.uop.op, b.d.uop.op);
    EXPECT_EQ(a.d.uop.imm, b.d.uop.imm);
    EXPECT_EQ(a.d.taken, b.d.taken);
    EXPECT_EQ(a.epr_dst, b.epr_dst);
    EXPECT_EQ(a.epr_src1, b.epr_src1);
    EXPECT_EQ(a.epr_src2, b.epr_src2);
    EXPECT_EQ(a.src1_live_in, b.src1_live_in);
    EXPECT_EQ(a.src2_live_in, b.src2_live_in);
    if (a.src1_live_in)
        EXPECT_EQ(a.src1_val, b.src1_val);
    if (a.src2_live_in)
        EXPECT_EQ(a.src2_val, b.src2_val);
    EXPECT_EQ(a.is_source, b.is_source);
    EXPECT_EQ(a.is_spill_store, b.is_spill_store);
    EXPECT_EQ(a.rob_seq, b.rob_seq);
}

TEST(ChainCodecRoundTrip, RandomChainsReencodeByteIdentically)
{
    Rng rng(0xc0dec0dec0dec0deULL);
    for (int iter = 0; iter < 500; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        const ChainRequest chain = randomChain(rng);

        EncodedChain enc;
        ASSERT_TRUE(encodeChain(chain, enc));
        EXPECT_EQ(enc.uop_bytes.size(), 6 * chain.uops.size());

        const ChainRequest back = decodeChain(enc);
        ASSERT_EQ(back.uops.size(), chain.uops.size());
        EXPECT_EQ(back.id, chain.id);
        EXPECT_EQ(back.core, chain.core);
        EXPECT_EQ(back.source_paddr_line, chain.source_paddr_line);
        EXPECT_EQ(back.source_value, chain.source_value);
        EXPECT_EQ(back.pte_attached, chain.pte_attached);
        EXPECT_EQ(back.source_epr, chain.source_epr);
        EXPECT_EQ(back.live_in_count, chain.live_in_count);
        for (unsigned i = 0; i < chain.uops.size(); ++i)
            expectUopEqual(chain.uops[i], back.uops[i], i);

        // Re-encoding the decoded chain must reproduce the wire bytes
        // exactly: slot allocation and field packing are canonical.
        EncodedChain enc2;
        ASSERT_TRUE(encodeChain(back, enc2));
        EXPECT_EQ(enc.uop_bytes, enc2.uop_bytes);
        EXPECT_EQ(enc.live_ins, enc2.live_ins);
        EXPECT_EQ(enc.wireBytes(), enc2.wireBytes());
    }
}

TEST(ChainCodecRoundTrip, GeneratedChainsPassTheRrtValidator)
{
    // Ties the generator to src/check: every chain the property test
    // feeds the codec also satisfies the RRT/EPR discipline the
    // runtime checker enforces on real chains.
    Rng rng(0x5eedULL);
    std::vector<check::Violation> got;
    check::CheckRegistry reg;
    reg.setHandler([&](const check::Violation &v) { got.push_back(v); });
    for (int iter = 0; iter < 100; ++iter) {
        const ChainRequest chain = randomChain(rng);
        EXPECT_EQ(check::validateChain(chain, reg, "test"), 0u)
            << (got.empty() ? std::string() : got.back().format());
    }
    EXPECT_TRUE(got.empty());
}

TEST(ChainCodecRoundTrip, WideImmediateSpillsIntoLiveInVector)
{
    ChainRequest chain;
    chain.id = 1;
    ChainUop cu;
    cu.is_source = true;
    cu.d.uop.op = Opcode::kLoad;
    cu.d.uop.dst = 0;
    cu.d.uop.src1 = 1;
    cu.d.uop.imm = 0x123456789abLL;  // does not fit 16 bits
    cu.epr_dst = 0;
    chain.uops.push_back(cu);
    chain.source_epr = 0;

    EncodedChain enc;
    ASSERT_TRUE(encodeChain(chain, enc));
    ASSERT_EQ(enc.live_ins.size(), 1u);  // the spilled immediate
    EXPECT_EQ(enc.wireBytes(), 6u + 8u);

    const ChainRequest back = decodeChain(enc);
    EXPECT_EQ(back.uops.at(0).d.uop.imm, 0x123456789abLL);
}

} // namespace
} // namespace emc
