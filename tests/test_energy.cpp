/**
 * @file
 * Unit tests for the event-energy model (Section 5 accounting rules).
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace emc
{
namespace
{

EnergyEvents
baseEvents()
{
    EnergyEvents ev;
    ev.uops_executed = 1'000'000;
    ev.cdb_broadcasts = 500'000;
    ev.l1_accesses = 300'000;
    ev.llc_accesses = 50'000;
    ev.ring_control_hops = 40'000;
    ev.ring_data_hops = 30'000;
    ev.dram_activates = 10'000;
    ev.dram_bursts = 20'000;
    ev.dram_refreshes = 100;
    ev.total_cycles = 10'000'000;
    return ev;
}

TEST(EnergyTest, AllComponentsPositive)
{
    EnergyModel m(EnergyParams{}, 4, 4.0, 2, false);
    const EnergyBreakdown b = m.compute(baseEvents());
    EXPECT_GT(b.core_dynamic_mj, 0.0);
    EXPECT_GT(b.uncore_dynamic_mj, 0.0);
    EXPECT_GT(b.dram_dynamic_mj, 0.0);
    EXPECT_GT(b.static_mj, 0.0);
    EXPECT_DOUBLE_EQ(b.emc_dynamic_mj, 0.0);
    EXPECT_NEAR(b.totalMj(),
                b.core_dynamic_mj + b.uncore_dynamic_mj
                    + b.dram_dynamic_mj + b.static_mj,
                1e-9);
}

TEST(EnergyTest, StaticScalesWithTime)
{
    EnergyModel m(EnergyParams{}, 4, 4.0, 2, false);
    EnergyEvents ev = baseEvents();
    const double s1 = m.compute(ev).static_mj;
    ev.total_cycles *= 2;
    const double s2 = m.compute(ev).static_mj;
    EXPECT_NEAR(s2, 2 * s1, 1e-9);
}

TEST(EnergyTest, EmcAddsStaticAndDynamic)
{
    EnergyModel without(EnergyParams{}, 4, 4.0, 2, false);
    EnergyModel with(EnergyParams{}, 4, 4.0, 2, true);
    EnergyEvents ev = baseEvents();
    ev.emc_uops = 100'000;
    ev.emc_dcache_accesses = 40'000;
    const EnergyBreakdown b0 = without.compute(ev);
    const EnergyBreakdown b1 = with.compute(ev);
    EXPECT_GT(b1.static_mj, b0.static_mj);
    EXPECT_GT(b1.emc_dynamic_mj, 0.0);
    // The EMC's static overhead is small: ~10.4% of one core among
    // four cores plus uncore (paper Section 6.6).
    EXPECT_LT((b1.static_mj - b0.static_mj) / b0.static_mj, 0.03);
}

TEST(EnergyTest, DramEnergyTracksActivates)
{
    EnergyModel m(EnergyParams{}, 4, 4.0, 2, false);
    EnergyEvents ev = baseEvents();
    const double d1 = m.compute(ev).dram_dynamic_mj;
    ev.dram_activates *= 3;
    const double d2 = m.compute(ev).dram_dynamic_mj;
    EXPECT_GT(d2, d1);
}

TEST(EnergyTest, ChainGenerationEventsCharged)
{
    // RRT accesses and ROB reads from chain generation show up in
    // core dynamic energy (paper Section 5).
    EnergyModel m(EnergyParams{}, 4, 4.0, 2, true);
    EnergyEvents ev = baseEvents();
    const double c1 = m.compute(ev).core_dynamic_mj;
    ev.rrt_accesses = 200'000;
    ev.rob_reads = 100'000;
    const double c2 = m.compute(ev).core_dynamic_mj;
    EXPECT_GT(c2, c1);
}

TEST(EnergyTest, EightCoreStaticHigherThanQuad)
{
    EnergyModel quad(EnergyParams{}, 4, 4.0, 2, false);
    EnergyModel eight(EnergyParams{}, 8, 8.0, 4, false);
    const EnergyEvents ev = baseEvents();
    EXPECT_GT(eight.compute(ev).static_mj, quad.compute(ev).static_mj);
}

} // namespace
} // namespace emc
