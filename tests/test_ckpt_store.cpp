/**
 * @file
 * Content-addressed checkpoint store tests (DESIGN.md §9):
 *
 *  - put/get roundtrip exactness and re-verified chunk hashes
 *  - deduplication across blobs sharing a common prefix, and across
 *    real config-point checkpoint images forked from one shared
 *    warmup (the sweep-store workload, where the >=10x reduction
 *    comes from)
 *  - section-aware chunkSpans() coverage of EMCKPT1 images
 *  - corruption detection, remove()/gc() accounting
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "ckpt/ckpt.hh"
#include "ckpt/store.hh"
#include "sim/system.hh"

using emc::System;
using emc::SystemConfig;
using emc::ckpt::chunkSpans;
using emc::ckpt::Store;
using emc::ckpt::StorePut;
using emc::ckpt::StoreStats;

namespace
{

std::string
tmpDir(const std::string &name)
{
    const std::string d = testing::TempDir() + "emc_store_"
                          + std::to_string(::getpid()) + "_" + name;
    std::filesystem::remove_all(d);
    return d;
}

/** Deterministic pseudo-random filler (no global RNG in tests). */
std::vector<std::uint8_t>
pattern(std::size_t n, std::uint64_t seed)
{
    std::vector<std::uint8_t> out(n);
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out[i] = static_cast<std::uint8_t>(x);
    }
    return out;
}

/** Tiny dual-core config whose images are cheap to produce. */
SystemConfig
smallConfig(bool emc)
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.emc_enabled = emc;
    cfg.target_uops = 1000;
    cfg.warmup_uops = 500;
    return cfg;
}

} // namespace

TEST(CkptStore, PutGetRoundtrip)
{
    Store store(tmpDir("roundtrip"));
    const std::vector<std::uint8_t> blob = pattern(300000, 7);
    const StorePut put = store.put("img-a", blob);
    EXPECT_EQ(put.image_bytes, blob.size());
    EXPECT_GT(put.chunks, 1u);
    EXPECT_EQ(put.reused_chunks, 0u);
    EXPECT_TRUE(store.has("img-a"));
    EXPECT_EQ(store.get("img-a"), blob);
}

TEST(CkptStore, SecondPutOfIdenticalImageReusesEverything)
{
    Store store(tmpDir("idem"));
    const std::vector<std::uint8_t> blob = pattern(200000, 11);
    store.put("one", blob);
    const StorePut again = store.put("two", blob);
    EXPECT_EQ(again.new_chunks, 0u);
    EXPECT_EQ(again.reused_chunks, again.chunks);
    EXPECT_EQ(store.get("two"), blob);

    const StoreStats s = store.stats();
    EXPECT_EQ(s.manifests, 2u);
    EXPECT_EQ(s.logical_bytes, 2 * blob.size());
    // Two manifests, one set of chunks: on-disk is ~half of logical.
    EXPECT_LT(s.storedBytes(), s.logical_bytes);
}

TEST(CkptStore, SharedPrefixDeduplicates)
{
    Store store(tmpDir("prefix"), 1 << 14);
    std::vector<std::uint8_t> a = pattern(1 << 20, 3);
    std::vector<std::uint8_t> b = a;
    // Same 1 MB prefix, different final 16 KB.
    const std::vector<std::uint8_t> tail = pattern(1 << 14, 5);
    b.insert(b.end(), tail.begin(), tail.end());
    a.insert(a.end(), 1 << 14, 0xAB);

    store.put("a", a);
    const StorePut pb = store.put("b", b);
    EXPECT_GT(pb.reused_bytes, (1u << 20) - (1u << 14));
    EXPECT_LE(pb.new_chunks, 2u);
    EXPECT_EQ(store.get("a"), a);
    EXPECT_EQ(store.get("b"), b);
}

TEST(CkptStore, ConfigPointImagesDeduplicate)
{
    // The sweep-store workload: fork two config points from one warm
    // image and store their full checkpoints. The workload sections
    // (functional memory, page tables) are byte-identical across
    // points, so the second put must reuse the bulk of its bytes.
    const SystemConfig warm_cfg = smallConfig(true);
    const std::vector<std::string> mix = {"mcf", "lbm"};
    const std::vector<std::uint8_t> warm =
        System(warm_cfg, mix).warmupCheckpointBytes();

    Store store(tmpDir("points"));
    StorePut puts[2];
    for (int point = 0; point < 2; ++point) {
        SystemConfig cfg = smallConfig(point == 1);
        cfg.warmup_uops = 0;
        System sys(cfg, mix);
        sys.restoreCheckpointBytes(warm);
        puts[point] = store.put(
            "point" + std::to_string(point),
            sys.saveCheckpointBytes(emc::ckpt::Level::kFull));
    }
    // The first image may reuse a few chunks against itself (repeated
    // content), but the bulk of it must be new ...
    EXPECT_LT(puts[0].reused_bytes, puts[0].image_bytes / 10);
    // ... while the second config point shares its workload sections
    // with the first and stores only a small delta.
    EXPECT_GT(puts[1].reused_bytes, puts[1].image_bytes / 2);
    EXPECT_LT(puts[1].new_bytes, puts[1].image_bytes / 4);
}

TEST(CkptStore, ChunkSpansFollowSections)
{
    const SystemConfig cfg = smallConfig(true);
    System sys(cfg, {"mcf", "lbm"});
    sys.run();
    const std::vector<std::uint8_t> img =
        sys.saveCheckpointBytes(emc::ckpt::Level::kFull);

    const auto spans = chunkSpans(img);
    const emc::ckpt::Header h = emc::ckpt::parseHeader(img);
    // Header span + one span per TOC section, covering every byte.
    EXPECT_GE(spans.size(), h.sections.size() + 1);
    std::size_t covered = 0;
    std::size_t expect_off = 0;
    for (const auto &[off, len] : spans) {
        EXPECT_EQ(off, expect_off);
        expect_off = off + len;
        covered += len;
    }
    EXPECT_EQ(covered, img.size());

    // Non-checkpoint bytes: one flat span.
    const std::vector<std::uint8_t> blob = pattern(1000, 1);
    const auto flat = chunkSpans(blob);
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_EQ(flat[0].second, blob.size());
}

TEST(CkptStore, CorruptObjectIsDetected)
{
    const std::string dir = tmpDir("corrupt");
    Store store(dir);
    store.put("img", pattern(100000, 9));

    // Flip one byte in some object file.
    std::string victim;
    for (const auto &e :
         std::filesystem::directory_iterator(dir + "/objects")) {
        victim = e.path().string();
        break;
    }
    ASSERT_FALSE(victim.empty());
    {
        std::FILE *f = std::fopen(victim.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 12, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, 12, SEEK_SET);
        std::fputc(c ^ 0x5A, f);
        std::fclose(f);
    }
    EXPECT_THROW(store.get("img"), emc::ckpt::Error);
}

TEST(CkptStore, RemoveAndGcFreeUnreferencedChunks)
{
    Store store(tmpDir("gc"));
    const std::vector<std::uint8_t> a = pattern(200000, 21);
    const std::vector<std::uint8_t> b = pattern(200000, 22);
    store.put("a", a);
    store.put("b", b);
    ASSERT_EQ(store.names().size(), 2u);

    EXPECT_EQ(store.gc(), 0u) << "live chunks must survive gc";
    store.remove("a");
    EXPECT_FALSE(store.has("a"));
    const std::uint64_t freed = store.gc();
    EXPECT_GT(freed, 0u);
    EXPECT_EQ(store.get("b"), b) << "gc must not break live images";
    EXPECT_THROW(store.get("a"), emc::ckpt::Error);
}

TEST(CkptStore, RejectsBadNames)
{
    Store store(tmpDir("names"));
    const std::vector<std::uint8_t> blob = pattern(100, 1);
    EXPECT_THROW(store.put("", blob), emc::ckpt::Error);
    EXPECT_THROW(store.put("a/b", blob), emc::ckpt::Error);
    EXPECT_THROW(store.put("..", blob), emc::ckpt::Error);
    EXPECT_NO_THROW(store.put("ok-1.0_x", blob));
}

TEST(CkptStore, CompressedImagePutsDeduplicateAgainstRaw)
{
    if (!emc::ckpt::compressionAvailable())
        GTEST_SKIP() << "no zlib in this build";
    Store store(tmpDir("zmix"));
    const std::vector<std::uint8_t> blob = pattern(150000, 33);
    store.put("raw", blob);
    const StorePut pz =
        store.put("packed", emc::ckpt::compressImage(blob));
    EXPECT_EQ(pz.new_chunks, 0u) << "dedup must run over raw bytes";
    EXPECT_EQ(store.get("packed"), blob);
}
