/**
 * @file
 * Unit tests for the micro-op ISA: functional semantics, EMC
 * eligibility filtering (Table 1), and trace plumbing.
 */

#include <gtest/gtest.h>

#include "isa/trace.hh"
#include "isa/uop.hh"

namespace emc
{
namespace
{

TEST(UopTest, AluSemantics)
{
    EXPECT_EQ(evalAlu(Opcode::kAdd, 2, 3, 4), 9u);
    EXPECT_EQ(evalAlu(Opcode::kSub, 10, 3, 2), 5u);
    EXPECT_EQ(evalAlu(Opcode::kMov, 7, 0, 1), 8u);
    EXPECT_EQ(evalAlu(Opcode::kAnd, 0xff, 0x0f, 0), 0x0fu);
    EXPECT_EQ(evalAlu(Opcode::kOr, 0xf0, 0x0f, 0), 0xffu);
    EXPECT_EQ(evalAlu(Opcode::kXor, 0xff, 0x0f, 0), 0xf0u);
    EXPECT_EQ(evalAlu(Opcode::kNot, 0, 0, 0), ~0ull);
    EXPECT_EQ(evalAlu(Opcode::kShl, 1, 0, 4), 16u);
    EXPECT_EQ(evalAlu(Opcode::kShr, 16, 0, 4), 1u);
}

TEST(UopTest, SignExtendSemantics)
{
    EXPECT_EQ(evalAlu(Opcode::kSext, 0xffffffffull, 0, 0),
              0xffffffffffffffffull);
    EXPECT_EQ(evalAlu(Opcode::kSext, 0x7fffffffull, 0, 0),
              0x7fffffffull);
}

TEST(UopTest, AluIsDeterministicForFp)
{
    const auto a = evalAlu(Opcode::kFpAdd, 123, 456, 7);
    const auto b = evalAlu(Opcode::kFpAdd, 123, 456, 7);
    EXPECT_EQ(a, b);
}

TEST(UopTest, BranchSemantics)
{
    EXPECT_TRUE(evalBranch(1));
    EXPECT_TRUE(evalBranch(0xdeadbeef));
    EXPECT_FALSE(evalBranch(0));
}

TEST(UopTest, EffectiveAddress)
{
    EXPECT_EQ(effectiveAddr(0x1000, 0x18), 0x1018u);
    EXPECT_EQ(effectiveAddr(0x1000, -8), 0xff8u);
}

TEST(UopTest, EmcEligibilityMatchesTable1)
{
    // Allowed: integer add/sub/move/load/store and logical ops.
    EXPECT_TRUE(emcAllowed(Opcode::kAdd));
    EXPECT_TRUE(emcAllowed(Opcode::kSub));
    EXPECT_TRUE(emcAllowed(Opcode::kMov));
    EXPECT_TRUE(emcAllowed(Opcode::kAnd));
    EXPECT_TRUE(emcAllowed(Opcode::kOr));
    EXPECT_TRUE(emcAllowed(Opcode::kXor));
    EXPECT_TRUE(emcAllowed(Opcode::kNot));
    EXPECT_TRUE(emcAllowed(Opcode::kShl));
    EXPECT_TRUE(emcAllowed(Opcode::kShr));
    EXPECT_TRUE(emcAllowed(Opcode::kSext));
    EXPECT_TRUE(emcAllowed(Opcode::kLoad));
    EXPECT_TRUE(emcAllowed(Opcode::kStore));
    // Disallowed: floating point and vector.
    EXPECT_FALSE(emcAllowed(Opcode::kFpAdd));
    EXPECT_FALSE(emcAllowed(Opcode::kFpMul));
    EXPECT_FALSE(emcAllowed(Opcode::kVecOp));
    EXPECT_FALSE(emcAllowed(Opcode::kNop));
}

TEST(UopTest, Classification)
{
    EXPECT_TRUE(isLoad(Opcode::kLoad));
    EXPECT_FALSE(isLoad(Opcode::kStore));
    EXPECT_TRUE(isStore(Opcode::kStore));
    EXPECT_TRUE(isMem(Opcode::kLoad));
    EXPECT_TRUE(isMem(Opcode::kStore));
    EXPECT_FALSE(isMem(Opcode::kAdd));
    EXPECT_TRUE(isBranch(Opcode::kBranch));
}

TEST(UopTest, ExecLatencies)
{
    EXPECT_EQ(execLatency(Opcode::kAdd), 1u);
    EXPECT_GT(execLatency(Opcode::kFpMul), execLatency(Opcode::kFpAdd));
}

TEST(UopTest, ToStringContainsOpcode)
{
    Uop u;
    u.op = Opcode::kLoad;
    u.dst = 3;
    u.src1 = 1;
    EXPECT_NE(u.toString().find("load"), std::string::npos);
}

TEST(UopTest, OpcodeNamesUnique)
{
    EXPECT_STRNE(opcodeName(Opcode::kAdd), opcodeName(Opcode::kSub));
    EXPECT_STREQ(opcodeName(Opcode::kBranch), "branch");
}

TEST(VectorTraceTest, ReplaysInOrder)
{
    std::vector<DynUop> uops(3);
    uops[0].uop.op = Opcode::kAdd;
    uops[1].uop.op = Opcode::kLoad;
    uops[2].uop.op = Opcode::kBranch;
    VectorTrace t(uops);

    DynUop d;
    ASSERT_TRUE(t.next(d));
    EXPECT_EQ(d.uop.op, Opcode::kAdd);
    ASSERT_TRUE(t.next(d));
    EXPECT_EQ(d.uop.op, Opcode::kLoad);
    ASSERT_TRUE(t.next(d));
    EXPECT_EQ(d.uop.op, Opcode::kBranch);
    EXPECT_FALSE(t.next(d));
    EXPECT_EQ(t.produced(), 3u);
}

} // namespace
} // namespace emc
