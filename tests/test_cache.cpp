/**
 * @file
 * Unit and property tests for the set-associative cache and MSHR file.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace emc
{
namespace
{

TEST(CacheTest, GeometryFromSize)
{
    Cache c(32 * 1024, 8, "l1");
    EXPECT_EQ(c.sets(), 64u);
    EXPECT_EQ(c.ways(), 8u);
}

TEST(CacheTest, MissThenHit)
{
    Cache c(4096, 4, "t");
    EXPECT_EQ(c.access(0x1000), nullptr);
    c.insert(0x1000);
    EXPECT_NE(c.access(0x1000), nullptr);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheTest, SameSetEvictsLru)
{
    // 4 KB, 4-way, 64 B lines -> 16 sets. Addresses spaced 16 lines
    // apart land in the same set.
    Cache c(4096, 4, "t");
    const Addr stride = 16 * kLineBytes;
    for (Addr i = 0; i < 4; ++i)
        c.insert(i * stride);
    // Touch line 0 so line 1 becomes LRU.
    ASSERT_NE(c.access(0), nullptr);
    Cache::Victim v = c.insert(4 * stride);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, stride);
}

TEST(CacheTest, VictimAddressReconstruction)
{
    Cache c(4096, 1, "direct");
    const Addr a = 0x40 * 64;  // set = 0 for 64 sets
    c.insert(a);
    Cache::Victim v = c.insert(a + 64 * 64);  // same set, new tag
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, a);
}

TEST(CacheTest, PeekDoesNotDisturbState)
{
    Cache c(4096, 4, "t");
    c.insert(0x1000);
    EXPECT_NE(c.peek(0x1000), nullptr);
    EXPECT_EQ(c.peek(0x2000), nullptr);
    EXPECT_EQ(c.stats().hits, 0u);
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(CacheTest, InvalidateRemovesLine)
{
    Cache c(4096, 4, "t");
    CacheLineMeta meta;
    meta.dirty = true;
    c.insert(0x1000, meta);
    Cache::Victim v = c.invalidate(0x1000);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.meta.dirty);
    EXPECT_EQ(c.peek(0x1000), nullptr);
    EXPECT_FALSE(c.invalidate(0x1000).valid);
}

TEST(CacheTest, WarmInvalidateRemovesLineWithoutStats)
{
    // Functional warming runs outside simulated time: back-
    // invalidations on the warm path must not count invalidation
    // statistics (DESIGN.md §8 — caught by the warm-contract lint).
    Cache c(4096, 4, "t");
    CacheLineMeta meta;
    meta.dirty = true;
    c.insert(0x1000, meta);
    Cache::Victim v = c.warmInvalidate(0x1000);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.meta.dirty);
    EXPECT_EQ(c.peek(0x1000), nullptr);
    EXPECT_FALSE(c.warmInvalidate(0x1000).valid);
    EXPECT_EQ(c.stats().invalidations, 0u);
}

TEST(CacheTest, MetadataRoundTrip)
{
    Cache c(4096, 4, "t");
    CacheLineMeta meta;
    meta.presence = 0b1010;
    meta.emc = true;
    c.insert(0x2000, meta);
    CacheLineMeta *m = c.peek(0x2000);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->presence, 0b1010u);
    EXPECT_TRUE(m->emc);
    m->dirty = true;
    EXPECT_TRUE(c.peek(0x2000)->dirty);
}

TEST(CacheTest, DirtyEvictionCounted)
{
    Cache c(1024, 1, "tiny");  // 16 sets
    CacheLineMeta dirty;
    dirty.dirty = true;
    c.insert(0, dirty);
    c.insert(16 * 64);  // same set
    EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

/** Property: a cache never holds more valid lines than its capacity. */
TEST(CacheProperty, OccupancyBounded)
{
    Cache c(2048, 4, "prop");
    Rng rng(123);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.below(1 << 20) << kLineShift;
        if (!c.peek(a))
            c.insert(a);
        EXPECT_LE(c.validLines(), 2048u / kLineBytes);
    }
}

/** Property: after insert, the line is present until evicted. */
TEST(CacheProperty, InsertedLinesFindable)
{
    Cache c(4096, 8, "prop");  // 8 sets, 8 ways
    // Insert exactly ways lines into one set: all must be present.
    const Addr stride = 8 * kLineBytes;
    for (Addr i = 0; i < 8; ++i)
        c.insert(i * stride);
    for (Addr i = 0; i < 8; ++i)
        EXPECT_NE(c.peek(i * stride), nullptr) << i;
}

/** Property: LRU order means untouched lines evict before touched. */
TEST(CacheProperty, LruRespectsRecency)
{
    Cache c(4096, 8, "prop");
    const Addr stride = 8 * kLineBytes;
    for (Addr i = 0; i < 8; ++i)
        c.insert(i * stride);
    // Touch all but #3.
    for (Addr i = 0; i < 8; ++i) {
        if (i != 3)
            ASSERT_NE(c.access(i * stride), nullptr);
    }
    Cache::Victim v = c.insert(8 * stride);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 3 * stride);
}

TEST(MshrTest, AllocateAndComplete)
{
    MshrFile m(4);
    EXPECT_TRUE(m.allocate(0x1000, 1));   // new entry
    EXPECT_FALSE(m.allocate(0x1000, 2));  // merged
    EXPECT_TRUE(m.has(0x1000));
    std::vector<std::uint64_t> tokens;
    ASSERT_TRUE(m.complete(0x1000, tokens));
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0], 1u);
    EXPECT_EQ(tokens[1], 2u);
    EXPECT_FALSE(m.has(0x1000));
}

TEST(MshrTest, FullAndCapacity)
{
    MshrFile m(2);
    m.allocate(0x1000, 1);
    m.allocate(0x2000, 2);
    EXPECT_TRUE(m.full());
    // Merging into an existing entry is still allowed when full.
    EXPECT_FALSE(m.allocate(0x1000, 3));
}

TEST(MshrTest, CompleteUnknownLine)
{
    MshrFile m(2);
    std::vector<std::uint64_t> tokens;
    EXPECT_FALSE(m.complete(0x1000, tokens));
}

} // namespace
} // namespace emc
