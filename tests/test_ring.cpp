/**
 * @file
 * Unit and property tests for the bidirectional slotted ring.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "ring/ring.hh"

namespace emc
{
namespace
{

struct Harness
{
    explicit Harness(unsigned stops, bool data = false)
        : ring(stops, data)
    {
        ring.setDeliver([this](const RingMsg &m) {
            delivered.push_back({m, now});
        });
    }

    void
    run(Cycle until)
    {
        for (; now <= until; ++now)
            ring.tick(now);
    }

    RingMsg
    msg(unsigned src, unsigned dst, std::uint64_t token = 0)
    {
        RingMsg m;
        m.src = src;
        m.dst = dst;
        m.token = token;
        m.type = MsgType::kMemRead;
        return m;
    }

    Ring ring;
    std::vector<std::pair<RingMsg, Cycle>> delivered;
    Cycle now = 1;
};

TEST(RingTest, DistanceShortestPath)
{
    Ring r(5, false);
    EXPECT_EQ(r.distance(0, 1), 1u);
    EXPECT_EQ(r.distance(0, 4), 1u);
    EXPECT_EQ(r.distance(0, 2), 2u);
    EXPECT_EQ(r.distance(1, 4), 2u);
    EXPECT_EQ(r.distance(3, 3), 0u);
}

TEST(RingTest, DeliversAtHopDistance)
{
    Harness h(5);
    h.ring.send(h.msg(0, 2), h.now);
    h.run(10);
    ASSERT_EQ(h.delivered.size(), 1u);
    // Injection next tick, then one tick per hop: 2 hops.
    EXPECT_EQ(h.delivered[0].second - 1, 2u);
}

TEST(RingTest, ChoosesShorterDirection)
{
    Harness h(8);
    h.ring.send(h.msg(0, 7), h.now);  // 1 hop counter-clockwise
    h.run(10);
    ASSERT_EQ(h.delivered.size(), 1u);
    EXPECT_LE(h.delivered[0].second, 3u);
}

TEST(RingTest, RejectsSameStop)
{
    Ring r(4, false);
    RingMsg m;
    m.src = 2;
    m.dst = 2;
    EXPECT_DEATH(r.send(m, 0), "same-stop");
}

TEST(RingTest, ContentionDelaysInjection)
{
    // Saturate stop 0 with messages: later ones wait for free slots.
    Harness h(4);
    for (int i = 0; i < 6; ++i)
        h.ring.send(h.msg(0, 2, i), h.now);
    h.run(30);
    ASSERT_EQ(h.delivered.size(), 6u);
    EXPECT_GT(h.delivered.back().second, h.delivered.front().second);
    EXPECT_GT(h.ring.stats().inject_stalls, 0u);
}

TEST(RingTest, StatsCountMessages)
{
    Harness hc(4, false);
    hc.ring.send(hc.msg(0, 1), hc.now);
    EXPECT_EQ(hc.ring.stats().control_msgs, 1u);
    EXPECT_EQ(hc.ring.stats().data_msgs, 0u);

    Harness hd(4, true);
    RingMsg m = hd.msg(0, 1);
    m.type = MsgType::kChainTransfer;
    hd.ring.send(m, hd.now);
    EXPECT_EQ(hd.ring.stats().data_msgs, 1u);
    EXPECT_EQ(hd.ring.stats().data_emc_msgs, 1u);
}

TEST(RingTest, EmcMessageClassification)
{
    EXPECT_TRUE(isDataMsg(MsgType::kChainTransfer));
    EXPECT_TRUE(isDataMsg(MsgType::kLiveOut));
    EXPECT_TRUE(isDataMsg(MsgType::kFillToCore));
    EXPECT_FALSE(isDataMsg(MsgType::kMemRead));
    EXPECT_FALSE(isDataMsg(MsgType::kLsqPopulate));
}

/** Property: every sent message is delivered exactly once. */
TEST(RingProperty, AllMessagesDeliveredOnce)
{
    Harness h(6);
    Rng rng(42);
    std::map<std::uint64_t, std::pair<unsigned, unsigned>> sent;
    std::uint64_t token = 1;
    for (Cycle c = 1; c < 2000; ++c) {
        if (rng.chance(0.3)) {
            const unsigned src = static_cast<unsigned>(rng.below(6));
            unsigned dst = static_cast<unsigned>(rng.below(6));
            if (dst == src)
                dst = (dst + 1) % 6;
            sent[token] = {src, dst};
            h.ring.send(h.msg(src, dst, token), c);
            ++token;
        }
        h.ring.tick(c);
        h.now = c + 1;
    }
    h.run(h.now + 200);
    ASSERT_EQ(h.delivered.size(), sent.size());
    std::map<std::uint64_t, int> seen;
    for (const auto &[m, cyc] : h.delivered) {
        ++seen[m.token];
        auto it = sent.find(m.token);
        ASSERT_NE(it, sent.end());
        EXPECT_EQ(m.src, it->second.first);
        EXPECT_EQ(m.dst, it->second.second);
    }
    for (const auto &[tok, count] : seen)
        EXPECT_EQ(count, 1) << "token " << tok;
}

/** Property: latency is at least the hop distance. */
TEST(RingProperty, LatencyLowerBound)
{
    Harness h(9);
    Rng rng(9);
    std::map<std::uint64_t, Cycle> inject_cycle;
    std::map<std::uint64_t, unsigned> dist;
    std::uint64_t token = 1;
    for (Cycle c = 1; c < 1500; ++c) {
        if (rng.chance(0.2)) {
            const unsigned src = static_cast<unsigned>(rng.below(9));
            unsigned dst = static_cast<unsigned>(rng.below(9));
            if (dst == src)
                dst = (dst + 1) % 9;
            inject_cycle[token] = c;
            dist[token] = h.ring.distance(src, dst);
            h.ring.send(h.msg(src, dst, token), c);
            ++token;
        }
        h.ring.tick(c);
        h.now = c + 1;
    }
    h.run(h.now + 200);
    for (const auto &[m, cyc] : h.delivered)
        EXPECT_GE(cyc - inject_cycle[m.token], dist[m.token]);
}

} // namespace
} // namespace emc
