/**
 * @file
 * Checkpoint/restore subsystem tests (DESIGN.md §7):
 *
 *  - full-level roundtrip exactness on a fig13-class config: save at
 *    cycle C (measured phase or mid-warmup), restore, run to the end
 *    — every stat bit-identical to an uninterrupted run, and the
 *    saving run itself unperturbed
 *  - restored state passes the src/check invariant suite with zero
 *    violations
 *  - warmup-level images fork into differing EMC/prefetcher configs,
 *    deterministically (byte-identical images run-to-run)
 *  - config-hash gating, corrupt/truncated images, and refusal paths
 *  - bench harness: per-job failure isolation in runMany(), the
 *    shared-vs-per-job warmup equivalence of runManyWarmShared(), and
 *    crash-resume through EMC_CKPT_DIR autosaves
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "bench/bench_util.hh"
#include "ckpt/ckpt.hh"
#include "sim/system.hh"

using emc::Cycle;
using emc::StatDump;
using emc::System;
using emc::SystemConfig;

namespace
{

/** Fig 13 class: homogeneous quad-core mcf, EMC + GHB prefetcher. */
SystemConfig
fig13Config()
{
    SystemConfig cfg;
    cfg.prefetch = emc::PrefetchConfig::kGhb;
    cfg.emc_enabled = true;
    cfg.target_uops = 1000;
    cfg.warmup_uops = 500;
    return cfg;
}

std::vector<std::string>
fig13Mix()
{
    return emc::bench::homo("mcf");
}

/** Smaller dual-core config for the cheap error-path tests. */
SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.emc_enabled = true;
    cfg.target_uops = 800;
    cfg.warmup_uops = 400;
    return cfg;
}

std::vector<std::string>
smallMix()
{
    return {"mcf", "sphinx3"};
}

void
expectIdentical(const StatDump &a, const StatDump &b, const char *what)
{
    ASSERT_EQ(a.all().size(), b.all().size()) << what;
    auto ia = a.all().begin();
    auto ib = b.all().begin();
    for (; ia != a.all().end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first) << what;
        EXPECT_EQ(ia->second, ib->second)
            << what << ": stat " << ia->first << " diverged";
    }
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "emc_ckpt_"
           + std::to_string(::getpid()) + "_" + name;
}

} // namespace

TEST(CkptFull, RoundtripIsExact)
{
    const SystemConfig cfg = fig13Config();
    System straight(cfg, fig13Mix());
    straight.run();
    const StatDump d_straight = straight.dump();
    // Past warmup (500 uops/core retire well within half the run).
    const Cycle mid = straight.cycles() / 2;

    const std::string path = tmpPath("roundtrip.ckpt");
    System saver(cfg, fig13Mix());
    saver.scheduleCheckpoint(path, mid);
    saver.run();
    // Saving is observation-only: the saver's own run is unperturbed.
    expectIdentical(d_straight, saver.dump(), "saving run");

    System restored(cfg, fig13Mix());
    restored.restoreCheckpoint(path);
    restored.run();
    expectIdentical(d_straight, restored.dump(), "restored run");
    std::remove(path.c_str());
}

TEST(CkptFull, MidWarmupSaveRoundtrips)
{
    const SystemConfig cfg = smallConfig();
    System straight(cfg, smallMix());
    straight.run();

    const std::string path = tmpPath("midwarm.ckpt");
    System saver(cfg, smallMix());
    saver.scheduleCheckpoint(path, 50);  // long before warmup ends
    saver.run();

    System restored(cfg, smallMix());
    restored.restoreCheckpoint(path);
    restored.run();
    expectIdentical(straight.dump(), restored.dump(),
                    "mid-warmup restore");
    std::remove(path.c_str());
}

TEST(CkptFull, RestoredStatePassesInvariantChecks)
{
    const SystemConfig cfg = smallConfig();
    System straight(cfg, smallMix());
    straight.run();

    System saver(cfg, smallMix());
    const std::vector<std::uint8_t> image = [&] {
        saver.scheduleCheckpoint(tmpPath("checked.ckpt"), 2000);
        saver.run();
        return emc::ckpt::readFile(tmpPath("checked.ckpt"));
    }();
    std::remove(tmpPath("checked.ckpt").c_str());

    System restored(cfg, smallMix());
    restored.enableInvariantChecks();
    std::uint64_t seen = 0;
    restored.checkRegistry()->setHandler(
        [&seen](const emc::check::Violation &v) {
            ++seen;
            std::fprintf(stderr, "violation: %s\n", v.format().c_str());
        });
    // restore runs the deep checks once on the restored state, and the
    // run that follows keeps every per-tick / end-of-run checker live.
    restored.restoreCheckpointBytes(image);
    restored.run();
    EXPECT_EQ(seen, 0u) << "invariant violations on restored state";
    EXPECT_EQ(restored.checkRegistry()->violationCount(), 0u);
    // Checks are observation-only, restored or not.
    expectIdentical(straight.dump(), restored.dump(),
                    "checked restored run");
}

TEST(CkptFull, SaveIsDeterministic)
{
    const SystemConfig cfg = smallConfig();
    System a(cfg, smallMix());
    System b(cfg, smallMix());
    EXPECT_EQ(a.saveCheckpointBytes(emc::ckpt::Level::kFull),
              b.saveCheckpointBytes(emc::ckpt::Level::kFull));
}

TEST(CkptFull, ConfigHashGatesRestore)
{
    System saver(smallConfig(), smallMix());
    const auto image =
        saver.saveCheckpointBytes(emc::ckpt::Level::kFull);

    SystemConfig other = smallConfig();
    other.emc_enabled = false;
    System wrong(other, smallMix());
    EXPECT_THROW(wrong.restoreCheckpointBytes(image),
                 emc::ckpt::Error);

    // The same config accepts it.
    System right(smallConfig(), smallMix());
    EXPECT_NO_THROW(right.restoreCheckpointBytes(image));
}

TEST(CkptFull, CorruptImagesAreRejected)
{
    System saver(smallConfig(), smallMix());
    const auto image =
        saver.saveCheckpointBytes(emc::ckpt::Level::kFull);

    {
        auto t = image;
        t.resize(t.size() / 2);  // truncated payload
        System sys(smallConfig(), smallMix());
        EXPECT_THROW(sys.restoreCheckpointBytes(t), emc::ckpt::Error);
    }
    {
        auto t = image;
        t[0] ^= 0xff;  // bad magic
        System sys(smallConfig(), smallMix());
        EXPECT_THROW(sys.restoreCheckpointBytes(t), emc::ckpt::Error);
    }
    {
        auto t = image;
        t[t.size() - 9] ^= 0x01;  // payload bit flip -> CRC mismatch
        System sys(smallConfig(), smallMix());
        EXPECT_THROW(sys.restoreCheckpointBytes(t), emc::ckpt::Error);
    }
    {
        System sys(smallConfig(), smallMix());
        EXPECT_THROW(sys.restoreCheckpointBytes({}), emc::ckpt::Error);
        EXPECT_THROW(sys.restoreCheckpoint(tmpPath("missing.ckpt")),
                     emc::ckpt::Error);
    }
}

TEST(CkptFull, RefusesRestoreAfterRunAndSaveUnderTracing)
{
    System saver(smallConfig(), smallMix());
    const auto image =
        saver.saveCheckpointBytes(emc::ckpt::Level::kFull);

    System ran(smallConfig(), smallMix());
    ran.run();
    EXPECT_THROW(ran.restoreCheckpointBytes(image), emc::ckpt::Error);

    System traced(smallConfig(), smallMix());
    traced.enableTracing(tmpPath("trace.json"));
    EXPECT_THROW(traced.saveCheckpointBytes(emc::ckpt::Level::kFull),
                 emc::ckpt::Error);
    std::remove(tmpPath("trace.json").c_str());
}

TEST(CkptWarmup, ForksIntoDifferingConfigs)
{
    SystemConfig warm_cfg;
    warm_cfg.num_cores = 1;
    warm_cfg.target_uops = 1200;
    warm_cfg.warmup_uops = 600;
    const std::vector<std::string> mix = {"mcf"};

    const auto image = System(warm_cfg, mix).warmupCheckpointBytes();

    // The image is deterministic: a second warmup run produces the
    // same bytes, which is what makes shared and per-job warmup
    // equivalent in runManyWarmShared().
    EXPECT_EQ(image, System(warm_cfg, mix).warmupCheckpointBytes());

    // Fork the one warm image across EMC / prefetcher config points.
    std::vector<SystemConfig> points;
    {
        SystemConfig c = warm_cfg;
        c.emc_enabled = true;
        points.push_back(c);
    }
    {
        SystemConfig c = warm_cfg;
        c.prefetch = emc::PrefetchConfig::kStream;
        points.push_back(c);
    }
    {
        SystemConfig c = warm_cfg;
        c.emc_enabled = true;
        c.emc.contexts = 4;
        c.prefetch = emc::PrefetchConfig::kGhb;
        points.push_back(c);
    }
    for (SystemConfig &c : points) {
        c.warmup_uops = 0;  // irrelevant after a warmup restore
        System sys(c, mix);
        sys.restoreCheckpointBytes(image);
        sys.run();
        const StatDump d = sys.dump();
        EXPECT_GT(d.get("system.cycles"), 0.0);
        EXPECT_GT(d.get("core0.retired"), 0.0);

        // Restoring the same image into the same config twice is
        // deterministic end to end.
        System again(c, mix);
        again.restoreCheckpointBytes(image);
        again.run();
        expectIdentical(d, again.dump(), "re-forked config");
    }
}

TEST(CkptWarmup, HashRejectsWarmupIncompatibleConfigs)
{
    SystemConfig warm_cfg;
    warm_cfg.num_cores = 1;
    warm_cfg.target_uops = 600;
    warm_cfg.warmup_uops = 300;
    const std::vector<std::string> mix = {"mcf"};
    const auto image = System(warm_cfg, mix).warmupCheckpointBytes();

    SystemConfig reseeded = warm_cfg;
    reseeded.seed = warm_cfg.seed + 1;
    System sys(reseeded, mix);
    EXPECT_THROW(sys.restoreCheckpointBytes(image), emc::ckpt::Error);

    // A different workload is a different warm state too.
    System other_mix(warm_cfg, {"libquantum"});
    EXPECT_THROW(other_mix.restoreCheckpointBytes(image),
                 emc::ckpt::Error);
}

TEST(CkptWarmup, RequiresAConfiguredWarmupPhase)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.target_uops = 600;
    cfg.warmup_uops = 0;
    System sys(cfg, {"mcf"});
    EXPECT_THROW(sys.warmupCheckpointBytes(), emc::ckpt::Error);
}

TEST(BenchHarness, RunManyIsolatesPerJobFailures)
{
    // Plant a corrupt autosave for job 1: its restore throws, the
    // other jobs must still complete, and the failure must carry the
    // job index and the exception text.
    const std::string dir = tmpPath("runmany_fail");
    std::filesystem::create_directories(dir);
    {
        std::FILE *f =
            std::fopen((dir + "/job1.ckpt").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not a checkpoint", f);
        std::fclose(f);
    }
    setenv("EMC_CKPT_DIR", dir.c_str(), 1);

    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.target_uops = 400;
    cfg.warmup_uops = 0;
    const emc::bench::RunJob job{cfg, {"mcf"}};
    const std::vector<emc::bench::RunJob> jobs(3, job);

    std::vector<emc::bench::RunFailure> failures;
    const std::vector<StatDump> res =
        emc::bench::runMany(jobs, &failures);
    ASSERT_EQ(res.size(), 3u);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].index, 1u);
    EXPECT_FALSE(failures[0].what.empty());
    EXPECT_GT(res[0].get("system.cycles"), 0.0);
    EXPECT_GT(res[2].get("system.cycles"), 0.0);
    EXPECT_FALSE(res[1].has("system.cycles"));  // failed slot empty

    // The throwing overload reports the same thing.
    EXPECT_THROW(emc::bench::runMany(jobs), std::runtime_error);

    unsetenv("EMC_CKPT_DIR");
    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, CkptDirResumesInterruptedSweeps)
{
    const SystemConfig cfg = smallConfig();
    const std::vector<emc::bench::RunJob> jobs{{cfg, smallMix()}};
    const StatDump plain = emc::bench::runMany(jobs).at(0);

    const std::string dir = tmpPath("resume");
    std::filesystem::create_directories(dir);
    setenv("EMC_CKPT_DIR", dir.c_str(), 1);
    setenv("EMC_CKPT_INTERVAL", "3000", 1);

    // First sweep: autosaves land next to the stats sidecar.
    const StatDump first = emc::bench::runMany(jobs).at(0);
    expectIdentical(plain, first, "checkpointed sweep");
    ASSERT_TRUE(std::filesystem::exists(dir + "/job0.stats"));
    ASSERT_TRUE(std::filesystem::exists(dir + "/job0.ckpt"));

    // "Crash" after the last autosave: drop the sidecar and rerun —
    // the job resumes from job0.ckpt and must land on the same stats.
    std::filesystem::remove(dir + "/job0.stats");
    const StatDump resumed = emc::bench::runMany(jobs).at(0);
    expectIdentical(plain, resumed, "resumed sweep");

    // A finished job short-circuits through its sidecar.
    const StatDump cached = emc::bench::runMany(jobs).at(0);
    expectIdentical(plain, cached, "sidecar reload");

    unsetenv("EMC_CKPT_DIR");
    unsetenv("EMC_CKPT_INTERVAL");
    std::filesystem::remove_all(dir);
}

TEST(BenchHarness, SharedWarmupMatchesPerJobWarmup)
{
    SystemConfig warm_cfg;
    warm_cfg.num_cores = 1;
    warm_cfg.target_uops = 800;
    warm_cfg.warmup_uops = 400;
    const std::vector<std::string> mix = {"mcf"};

    std::vector<SystemConfig> points;
    points.push_back(warm_cfg);
    {
        SystemConfig c = warm_cfg;
        c.emc_enabled = true;
        points.push_back(c);
    }

    setenv("EMC_CKPT_SHARED_WARMUP", "1", 1);
    const std::vector<StatDump> shared =
        emc::bench::runManyWarmShared(warm_cfg, mix, points);
    setenv("EMC_CKPT_SHARED_WARMUP", "0", 1);
    const std::vector<StatDump> perjob =
        emc::bench::runManyWarmShared(warm_cfg, mix, points);
    unsetenv("EMC_CKPT_SHARED_WARMUP");

    ASSERT_EQ(shared.size(), points.size());
    ASSERT_EQ(perjob.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        expectIdentical(shared[i], perjob[i], "shared vs per-job");
        EXPECT_GT(shared[i].get("system.cycles"), 0.0);
    }
    // The EMC point must actually differ from the baseline point —
    // otherwise the equality above compares two copies of one run.
    EXPECT_NE(shared[0].get("system.cycles"),
              shared[1].get("system.cycles"));
}
