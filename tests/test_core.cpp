/**
 * @file
 * Unit tests for the out-of-order core: renaming/dataflow correctness,
 * memory path, store forwarding, mispredict handling, full-window
 * stall detection, taint-based dependent-miss identification and the
 * chain-generation unit (Section 4.2).
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/core.hh"
#include "mem/functional_memory.hh"
#include "vm/page_table.hh"
#include "workload/synthetic.hh"

namespace emc
{
namespace
{

/**
 * A controllable fake chip: requests are captured; the test decides
 * when the LLC reports a miss and when fills arrive.
 */
class FakeChip : public CorePort
{
  public:
    struct Pending
    {
        Addr line;
        Cycle fill_at;
        bool llc_miss;
    };

    bool
    requestLine(CoreId core, Addr paddr_line, Addr pc, bool for_store,
                bool addr_tainted) override
    {
        if (reject_requests)
            return false;
        requests.push_back(paddr_line);
        tainted_flags.push_back(addr_tainted);
        pending.push_back({paddr_line, now_ + fill_latency, miss_mode});
        return true;
    }

    void
    storeThrough(CoreId core, Addr paddr_line) override
    {
        stores.push_back(paddr_line);
    }

    bool
    offloadChain(const ChainRequest &chain) override
    {
        if (!accept_chains)
            return false;
        chains.push_back(chain);
        return true;
    }

    bool emcTlbResident(CoreId, Addr) override { return tlb_resident; }
    Cycle now() const override { return now_; }

    /** Advance time and deliver due fills to @p core. */
    void
    step(Core &core)
    {
        ++now_;
        for (std::size_t i = 0; i < pending.size();) {
            Pending &p = pending[i];
            if (p.llc_miss && p.fill_at == now_ + miss_notice_lead)
                core.llcMissDetermined(p.line);
            if (p.fill_at <= now_) {
                core.fillArrived(p.line, p.llc_miss);
                pending[i] = pending.back();
                pending.pop_back();
            } else {
                ++i;
            }
        }
        core.tick();
    }

    void
    run(Core &core, unsigned cycles)
    {
        for (unsigned i = 0; i < cycles; ++i)
            step(core);
    }

    Cycle now_ = 0;
    Cycle fill_latency = 200;
    Cycle miss_notice_lead = 150;  ///< miss known this long before fill
    bool miss_mode = true;         ///< requests miss the LLC
    bool reject_requests = false;
    bool accept_chains = true;
    bool tlb_resident = false;
    std::vector<Addr> requests;
    std::vector<bool> tainted_flags;
    std::vector<Addr> stores;
    std::vector<ChainRequest> chains;
    std::vector<Pending> pending;
};

DynUop
movImm(std::uint8_t dst, std::int64_t imm, std::uint64_t pc = 0x100)
{
    DynUop d;
    d.uop.op = Opcode::kMov;
    d.uop.dst = dst;
    d.uop.imm = imm;
    d.uop.pc = pc;
    d.result = static_cast<std::uint64_t>(imm);
    return d;
}

DynUop
add(std::uint8_t dst, std::uint8_t src1, std::int64_t imm,
    std::uint64_t result, std::uint64_t pc = 0x104)
{
    DynUop d;
    d.uop.op = Opcode::kAdd;
    d.uop.dst = dst;
    d.uop.src1 = src1;
    d.uop.imm = imm;
    d.uop.pc = pc;
    d.result = result;
    return d;
}

DynUop
load(std::uint8_t dst, std::uint8_t base, std::int64_t imm, Addr vaddr,
     std::uint64_t value, std::uint64_t pc = 0x108)
{
    DynUop d;
    d.uop.op = Opcode::kLoad;
    d.uop.dst = dst;
    d.uop.src1 = base;
    d.uop.imm = imm;
    d.uop.pc = pc;
    d.vaddr = vaddr;
    d.mem_value = value;
    d.result = value;
    return d;
}

DynUop
store(std::uint8_t base, std::uint8_t data, std::int64_t imm, Addr vaddr,
      std::uint64_t value, std::uint64_t pc = 0x10c)
{
    DynUop d;
    d.uop.op = Opcode::kStore;
    d.uop.src1 = base;
    d.uop.src2 = data;
    d.uop.imm = imm;
    d.uop.pc = pc;
    d.vaddr = vaddr;
    d.mem_value = value;
    return d;
}

DynUop
branch(std::uint8_t cond, bool taken, bool mispredicted,
       std::uint64_t pc = 0x110)
{
    DynUop d;
    d.uop.op = Opcode::kBranch;
    d.uop.src1 = cond;
    d.uop.pc = pc;
    d.taken = taken;
    d.mispredicted = mispredicted;
    return d;
}

struct CoreHarness
{
    explicit CoreHarness(std::vector<DynUop> uops, CoreConfig cfg = {})
        : trace(std::move(uops)), pt(0, 1),
          core(0, cfg, &trace, &pt, &chip)
    {}

    VectorTrace trace;
    PageTable pt;
    FakeChip chip;
    Core core{0, CoreConfig{}, &trace, &pt, &chip};
};

TEST(CoreTest, RetiresSimpleAluProgram)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 5));
    prog.push_back(add(2, 1, 3, 8));
    prog.push_back(add(3, 2, 1, 9));
    CoreHarness h(prog);
    h.chip.run(h.core, 50);
    EXPECT_EQ(h.core.retired(), 3u);
}

TEST(CoreTest, OracleDivergencePanics)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 5));
    DynUop bad = add(2, 1, 3, 999);  // wrong oracle result
    prog.push_back(bad);
    CoreHarness h(prog);
    EXPECT_DEATH(h.chip.run(h.core, 50), "diverged");
}

TEST(CoreTest, LoadMissGoesToChip)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x5000));
    prog.push_back(load(2, 1, 0, 0x5000, 77));
    prog.push_back(add(3, 2, 1, 78));
    CoreHarness h(prog);
    h.chip.run(h.core, 400);
    EXPECT_EQ(h.core.retired(), 3u);
    ASSERT_EQ(h.chip.requests.size(), 1u);
    EXPECT_EQ(h.chip.requests[0], lineAlign(h.pt.translate(0x5000)));
}

TEST(CoreTest, L1HitAfterFill)
{
    // The second load's address depends on the first load's result
    // and lands on the already-filled line: an L1 hit.
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x5000));
    prog.push_back(load(2, 1, 0, 0x5000, 0x5008));
    prog.push_back(load(3, 2, 0, 0x5008, 0));  // same line, dependent
    CoreHarness h(prog);
    h.chip.run(h.core, 400);
    EXPECT_EQ(h.core.retired(), 3u);
    EXPECT_EQ(h.chip.requests.size(), 1u);
    EXPECT_EQ(h.core.stats().l1d_hits, 1u);
}

TEST(CoreTest, MshrMergesSameLine)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x5000));
    prog.push_back(load(2, 1, 0, 0x5000, 1));
    prog.push_back(load(3, 1, 16, 0x5010, 2));  // same line, parallel
    CoreHarness h(prog);
    h.chip.run(h.core, 400);
    EXPECT_EQ(h.core.retired(), 3u);
    EXPECT_EQ(h.chip.requests.size(), 1u);
}

TEST(CoreTest, StoreForwarding)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x7000));
    prog.push_back(movImm(2, 42));
    prog.push_back(store(1, 2, 0, 0x7000, 42));
    prog.push_back(load(3, 1, 0, 0x7000, 42));
    CoreHarness h(prog);
    h.chip.run(h.core, 100);
    EXPECT_EQ(h.core.retired(), 4u);
    // The load forwarded from the store queue: no memory request.
    EXPECT_TRUE(h.chip.requests.empty());
}

TEST(CoreTest, RetiredStoresDrainWriteThrough)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x7000));
    prog.push_back(movImm(2, 42));
    prog.push_back(store(1, 2, 0, 0x7000, 42));
    CoreHarness h(prog);
    h.chip.run(h.core, 100);
    ASSERT_EQ(h.chip.stores.size(), 1u);
    EXPECT_EQ(h.chip.stores[0], lineAlign(h.pt.translate(0x7000)));
}

TEST(CoreTest, MispredictStallsFetchUntilResolution)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 1));
    prog.push_back(branch(1, true, true));
    for (int i = 0; i < 8; ++i)
        prog.push_back(add(2, 1, i, 1 + i));
    CoreConfig cfg;
    cfg.use_branch_predictor = false;  // use the trace's sampled flag
    CoreHarness h(prog, cfg);
    // Branch resolves fast (reg ready) but redirect costs the penalty.
    h.chip.run(h.core, 10);
    EXPECT_LT(h.core.retired(), 10u);
    h.chip.run(h.core, 60);
    EXPECT_EQ(h.core.retired(), 10u);
    EXPECT_EQ(h.core.stats().mispredicts, 1u);
}

TEST(CoreTest, HybridPredictorLearnsBiasedBranch)
{
    // A steadily-taken branch: the hybrid predictor mispredicts at
    // most the cold lookups, so fetch is never redirect-stalled after
    // warmup.
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 1));
    for (int i = 0; i < 50; ++i) {
        // Sampled flag says "mispredicted" but the predictor (enabled
        // by default) overrides it with its own verdict.
        prog.push_back(branch(1, true, true, 0x500));
        prog.push_back(add(2, 1, i, 1 + i));
    }
    CoreHarness h(prog);
    h.chip.run(h.core, 400);
    EXPECT_EQ(h.core.retired(), 101u);
    EXPECT_LE(h.core.stats().mispredicts, 2u);
    EXPECT_GE(h.core.branchPredictor().stats().lookups, 50u);
}

TEST(CoreTest, TaintIdentifiesDependentMiss)
{
    // load A (miss) -> add -> load B (miss): B is a dependent miss.
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x10000));
    prog.push_back(load(2, 1, 0, 0x10000, 0x20000));  // returns pointer
    prog.push_back(add(3, 2, 8, 0x20008));
    prog.push_back(load(4, 3, 0, 0x20008, 5));
    CoreHarness h(prog);
    h.chip.run(h.core, 900);
    EXPECT_EQ(h.core.retired(), 4u);
    EXPECT_EQ(h.core.stats().llc_misses, 2u);
    EXPECT_EQ(h.core.stats().dependent_llc_misses, 1u);
    ASSERT_EQ(h.chip.tainted_flags.size(), 2u);
    EXPECT_FALSE(h.chip.tainted_flags[0]);
    EXPECT_TRUE(h.chip.tainted_flags[1]);
}

TEST(CoreTest, LlcHitsDoNotTaint)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x10000));
    prog.push_back(load(2, 1, 0, 0x10000, 0x20000));
    prog.push_back(load(3, 2, 0, 0x20000, 9));
    CoreHarness h(prog);
    h.chip.miss_mode = false;  // everything hits the LLC
    h.chip.fill_latency = 40;
    h.chip.run(h.core, 300);
    EXPECT_EQ(h.core.retired(), 3u);
    EXPECT_EQ(h.core.stats().dependent_llc_misses, 0u);
}

TEST(CoreTest, DependentMissDistanceMeasured)
{
    // Two ALU ops between the source and dependent miss.
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x10000));
    prog.push_back(load(2, 1, 0, 0x10000, 0x20000));
    prog.push_back(add(3, 2, 0, 0x20000));
    prog.push_back(add(3, 3, 8, 0x20008));
    prog.push_back(load(4, 3, 0, 0x20008, 5));
    CoreHarness h(prog);
    h.chip.run(h.core, 900);
    ASSERT_EQ(h.core.stats().dep_distance.samples(), 1u);
    EXPECT_DOUBLE_EQ(h.core.stats().dep_distance.mean(), 2.0);
}

/** Build a long pointer-chase program that saturates the window. */
std::vector<DynUop>
chaseProgram(unsigned hops, Addr base = 0x100000)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, static_cast<std::int64_t>(base)));
    Addr cur = base;
    for (unsigned i = 0; i < hops; ++i) {
        const Addr next = base + ((i + 1) * 0x340) % 0x40000;
        prog.push_back(load(1, 1, 0, cur, next, 0x200));
        prog.push_back(add(2, 1, 8, next + 8, 0x204));
        prog.push_back(load(3, 2, 0, next + 8, i, 0x208));
        prog.push_back(add(4, 3, 1, i + 1, 0x20c));
        cur = next;
    }
    return prog;
}

TEST(CoreTest, FullWindowStallDetected)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(200), cfg);
    h.chip.fill_latency = 300;
    h.chip.run(h.core, 600);
    EXPECT_GT(h.core.stats().full_window_stall_cycles, 0u);
}

TEST(CoreTest, ChainGenerationRequiresCounterConfidence)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(40), cfg);
    h.chip.run(h.core, 500);
    // The 3-bit counter starts at 0: the first stalls are rejected.
    EXPECT_GT(h.core.stats().chains_rejected_counter, 0u);
}

TEST(CoreTest, ChainGeneratedAfterDependentMissesObserved)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(400), cfg);
    h.chip.run(h.core, 20000);
    EXPECT_GT(h.core.stats().chains_generated, 0u);
    ASSERT_FALSE(h.chip.chains.empty());

    const ChainRequest &c = h.chip.chains.front();
    EXPECT_LE(c.uops.size(), kChainMaxUops);
    // The chain must contain at least one source and one dependent
    // memory operation.
    bool has_source = false, has_dep_mem = false;
    for (const ChainUop &u : c.uops) {
        if (u.is_source)
            has_source = true;
        else if (isMem(u.d.uop.op))
            has_dep_mem = true;
    }
    EXPECT_TRUE(has_source);
    EXPECT_TRUE(has_dep_mem);
}

TEST(CoreTest, ChainRenamingIsConsistent)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(400), cfg);
    h.chip.run(h.core, 20000);
    ASSERT_FALSE(h.chip.chains.empty());
    for (const ChainRequest &c : h.chip.chains) {
        std::vector<bool> defined(kEmcPhysRegs, false);
        unsigned live_ins = 0;
        for (const ChainUop &u : c.uops) {
            // Every EPR source must have been defined earlier.
            if (u.d.uop.hasSrc1() && !u.src1_live_in && !u.is_source) {
                ASSERT_NE(u.epr_src1, kNoEpr);
                EXPECT_TRUE(defined[u.epr_src1]);
            }
            if (u.d.uop.hasSrc2() && !u.src2_live_in && !u.is_source) {
                ASSERT_NE(u.epr_src2, kNoEpr);
                EXPECT_TRUE(defined[u.epr_src2]);
            }
            live_ins += (u.src1_live_in ? 1 : 0)
                        + (u.src2_live_in ? 1 : 0);
            if (u.epr_dst != kNoEpr) {
                EXPECT_LT(u.epr_dst, kEmcPhysRegs);
                EXPECT_FALSE(defined[u.epr_dst]) << "EPR reused";
                defined[u.epr_dst] = true;
            }
        }
        EXPECT_EQ(live_ins, c.live_in_count);
    }
}

TEST(CoreTest, ChainCarriesPteWhenNotResident)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(400), cfg);
    h.chip.tlb_resident = false;
    h.chip.run(h.core, 20000);
    ASSERT_FALSE(h.chip.chains.empty());
    EXPECT_TRUE(h.chip.chains.front().pte_attached);
    EXPECT_TRUE(h.chip.chains.front().source_pte.valid);
}

TEST(CoreTest, OffloadedUopsCompleteViaLiveOuts)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(400), cfg);
    h.chip.run(h.core, 20000);
    ASSERT_FALSE(h.chip.chains.empty());
    const ChainRequest chain = h.chip.chains.back();

    const std::uint64_t retired_before = h.core.retired();
    // Synthesize a completed result from the oracle annotations.
    ChainResult res;
    res.chain_id = chain.id;
    res.core = 0;
    res.outcome = ChainOutcome::kCompleted;
    for (const ChainUop &u : chain.uops) {
        if (u.is_source)
            continue;
        LiveOut lo;
        lo.rob_seq = u.rob_seq;
        lo.value = u.d.uop.hasDst() ? u.d.result : u.d.mem_value;
        lo.is_mem = isMem(u.d.uop.op);
        lo.is_store = isStore(u.d.uop.op);
        lo.llc_miss = isLoad(u.d.uop.op);
        res.live_outs.push_back(lo);
    }
    h.core.chainResult(res);
    h.chip.run(h.core, 3000);
    EXPECT_GT(h.core.stats().offloaded_uops_completed_remotely, 0u);
    EXPECT_GT(h.core.retired(), retired_before);
    EXPECT_EQ(h.core.stats().chain_results_ok, 1u);
}

TEST(CoreTest, CanceledChainReExecutesLocally)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(400), cfg);
    h.chip.run(h.core, 20000);
    ASSERT_FALSE(h.chip.chains.empty());
    const ChainRequest chain = h.chip.chains.back();

    ChainResult res;
    res.chain_id = chain.id;
    res.core = 0;
    res.outcome = ChainOutcome::kTlbMiss;
    for (const ChainUop &u : chain.uops) {
        if (u.is_source)
            continue;
        LiveOut lo;
        lo.rob_seq = u.rob_seq;
        res.live_outs.push_back(lo);
    }
    h.core.chainResult(res);
    // The core must finish the whole program by itself.
    h.chip.accept_chains = false;
    h.chip.run(h.core, 600000);
    EXPECT_EQ(h.core.retired(), h.trace.produced());
    EXPECT_EQ(h.core.stats().chain_results_canceled, 1u);
}

TEST(CoreTest, RejectedOffloadFallsBackLocally)
{
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(120), cfg);
    h.chip.accept_chains = false;  // no EMC context, ever
    h.chip.run(h.core, 300000);
    EXPECT_EQ(h.core.retired(), h.trace.produced());
    EXPECT_GT(h.core.stats().chains_rejected_no_context, 0u);
    EXPECT_EQ(h.core.stats().chains_generated, 0u);
}

TEST(CoreTest, LsqPopulateDetectsConflict)
{
    // An older, non-offloaded store to the same line as an offloaded
    // load must report a disambiguation conflict.
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x9000));
    prog.push_back(movImm(2, 7));
    prog.push_back(store(1, 2, 0, 0x9000, 7));
    prog.push_back(load(3, 1, 0, 0x9000, 7));
    CoreHarness h(prog);
    // Dispatch but do not let the store retire (no ticks past setup).
    h.chip.run(h.core, 3);
    // Find the load's seq: it is the 4th dispatched uop (seq 4).
    EXPECT_TRUE(h.core.lsqPopulate(4, h.pt.translate(0x9000)));
    EXPECT_FALSE(h.core.lsqPopulate(4, h.pt.translate(0x20000)));
}

TEST(CoreTest, InvalidateL1DropsLine)
{
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x5000));
    prog.push_back(load(2, 1, 0, 0x5000, 1));
    prog.push_back(load(3, 1, 8, 0x5008, 2));
    CoreHarness h(prog);
    h.chip.run(h.core, 300);
    const Addr line = lineAlign(h.pt.translate(0x5000));
    EXPECT_NE(h.core.l1d().peek(line), nullptr);
    h.core.invalidateL1(line);
    EXPECT_EQ(h.core.l1d().peek(line), nullptr);
}

TEST(CoreTest, DepCounterSaturatesUnderChasing)
{
    // With chain offload unavailable, the core observes every
    // dependent miss itself and the trigger counter saturates.
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(300), cfg);
    h.chip.accept_chains = false;
    h.chip.run(h.core, 40000);
    EXPECT_GE(h.core.depMissCounter().value(), 2u);
}

TEST(CoreTest, FpUopsNeverEnterChains)
{
    // Chains must contain only EMC-eligible opcodes.
    CoreConfig cfg;
    cfg.emc_enabled = true;
    CoreHarness h(chaseProgram(400), cfg);
    h.chip.run(h.core, 20000);
    for (const ChainRequest &c : h.chip.chains) {
        for (const ChainUop &u : c.uops)
            EXPECT_TRUE(emcAllowed(u.d.uop.op))
                << u.d.uop.toString();
    }
}

TEST(CoreTest, SurvivesMshrExhaustion)
{
    // Two MSHRs and a flood of distinct-line loads: loads must retry
    // and the program must still finish correctly.
    std::vector<DynUop> prog;
    for (int i = 0; i < 24; ++i) {
        const Addr a = 0x100000 + static_cast<Addr>(i) * 4096;
        prog.push_back(movImm(1, static_cast<std::int64_t>(a), 0x600));
        prog.push_back(load(2, 1, 0, a, i, 0x604));
        prog.push_back(add(3, 2, 1, i + 1, 0x608));
    }
    CoreConfig cfg;
    cfg.l1_mshrs = 2;
    CoreHarness h(prog, cfg);
    h.chip.run(h.core, 30000);
    EXPECT_EQ(h.core.retired(), h.trace.produced());
}

TEST(CoreTest, SurvivesChipBackpressure)
{
    // The chip rejects every request for a while: the core must keep
    // retrying rather than dropping the load.
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x5000));
    prog.push_back(load(2, 1, 0, 0x5000, 7));
    CoreHarness h(prog);
    h.chip.reject_requests = true;
    h.chip.run(h.core, 50);
    EXPECT_LT(h.core.retired(), 2u);
    h.chip.reject_requests = false;
    h.chip.run(h.core, 400);
    EXPECT_EQ(h.core.retired(), 2u);
}

TEST(CoreTest, TinyFreeListStillRetires)
{
    // Physical registers barely above the floor: rename must recycle
    // correctly under pressure (prev-dst freeing at retire).
    CoreConfig cfg;
    cfg.rob_size = 32;
    cfg.rs_size = 16;
    cfg.phys_regs = 34 + kArchRegs;
    CoreHarness h(chaseProgram(60), cfg);
    h.chip.fill_latency = 60;
    h.chip.run(h.core, 60000);
    EXPECT_EQ(h.core.retired(), h.trace.produced());
}

TEST(RunaheadTest, EpisodesTriggerOnStalls)
{
    CoreConfig cfg;
    cfg.runahead_enabled = true;
    CoreHarness h(chaseProgram(300), cfg);
    h.chip.run(h.core, 30000);
    EXPECT_GT(h.core.stats().runahead_episodes, 0u);
    EXPECT_GT(h.core.stats().runahead_uops, 0u);
}

TEST(RunaheadTest, DependentLoadsAreDropped)
{
    // Pure pointer chase: almost every future load's address is INV
    // during runahead, so drops dominate prefetches.
    CoreConfig cfg;
    cfg.runahead_enabled = true;
    CoreHarness h(chaseProgram(400), cfg);
    h.chip.run(h.core, 60000);
    const CoreStats &cs = h.core.stats();
    ASSERT_GT(cs.runahead_episodes, 0u);
    EXPECT_GT(cs.runahead_dropped_loads, cs.runahead_prefetches);
}

TEST(RunaheadTest, ReplayPreservesProgramOrder)
{
    // After runahead episodes, the program still retires completely
    // and in order (oracle checking would panic otherwise).
    CoreConfig cfg;
    cfg.runahead_enabled = true;
    CoreHarness h(chaseProgram(150), cfg);
    h.chip.run(h.core, 200000);
    EXPECT_EQ(h.core.retired(), h.trace.produced());
}

TEST(RunaheadTest, IndependentLoadsPrefetched)
{
    // Loads with immediate-materialized bases are runahead-visible.
    std::vector<DynUop> prog;
    prog.push_back(movImm(1, 0x100000));
    prog.push_back(load(1, 1, 0, 0x100000, 0x100040, 0x200));
    // Independent future loads at distinct lines.
    for (int i = 0; i < 40; ++i) {
        const Addr a = 0x400000 + static_cast<Addr>(i) * 4096;
        prog.push_back(movImm(2, static_cast<std::int64_t>(a), 0x300));
        prog.push_back(load(3, 2, 0, a, 1, 0x304));
        prog.push_back(add(4, 3, 1, 2, 0x308));
    }
    CoreConfig cfg;
    cfg.runahead_enabled = true;
    cfg.rob_size = 16;  // stall quickly behind the first miss
    cfg.rs_size = 12;
    CoreHarness h(prog, cfg);
    h.chip.fill_latency = 500;
    h.chip.run(h.core, 3000);
    EXPECT_GT(h.core.stats().runahead_prefetches, 5u);
}

} // namespace
} // namespace emc
