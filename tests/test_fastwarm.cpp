/**
 * @file
 * Fast-forward functional warming + sampled simulation (DESIGN.md §8):
 *
 *  - validation mode: a fast-warmed machine agrees with a
 *    detailed-warmed one — branch-predictor tables byte-identical when
 *    both consume the identical dispatched uop prefix, cache/TLB
 *    contents overlapping heavily in virtual space (physical frame
 *    order legitimately differs between program order and execute
 *    order)
 *  - fastwarm checkpoints: byte-identical images run-to-run, and a
 *    restored detailed run is deterministic across two restores
 *  - sampled runs: per-window IPC CIs cover the full-run value on a
 *    deterministic workload, and `sampled.*` stats are exported
 *  - compressed checkpoint images roundtrip transparently
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "bench/bench_util.hh"
#include "ckpt/ckpt.hh"
#include "sim/fastwarm.hh"
#include "sim/system.hh"

using emc::SampleParams;
using emc::StatDump;
using emc::System;
using emc::SystemConfig;
using emc::WarmStateDiff;

namespace
{

SystemConfig
fig13Config()
{
    SystemConfig cfg;
    cfg.prefetch = emc::PrefetchConfig::kGhb;
    cfg.emc_enabled = true;
    cfg.target_uops = 1000;
    cfg.warmup_uops = 500;
    return cfg;
}

std::vector<std::string>
fig13Mix()
{
    return emc::bench::homo("mcf");
}

SystemConfig
uniConfig(std::uint64_t warmup)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.emc_enabled = true;
    cfg.target_uops = 1000;
    cfg.warmup_uops = warmup;
    return cfg;
}

void
expectIdentical(const StatDump &a, const StatDump &b, const char *what)
{
    ASSERT_EQ(a.all().size(), b.all().size()) << what;
    auto ia = a.all().begin();
    auto ib = b.all().begin();
    for (; ia != a.all().end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first) << what;
        EXPECT_EQ(ia->second, ib->second)
            << what << ": stat " << ia->first << " diverged";
    }
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "emc_fastwarm_"
           + std::to_string(::getpid()) + "_" + name;
}

} // namespace

// The branch predictor sees dispatched branches in program order, so a
// fast-forward over exactly the uops the detailed warmup dispatched
// (retired + the one deferred uop it may still hold back) must leave
// bit-identical predictor tables; cache and TLB residency agree up to
// ordering effects, measured as virtual-space set overlap.
TEST(FastwarmEquivalence, MatchesDetailedWarmup)
{
    const SystemConfig cfg = uniConfig(4000);

    System detailed(cfg, {"mcf"});
    // warmupCheckpointBytes() runs the warmup phase and drains the
    // pipeline, so every dispatched uop has retired (or sits parked as
    // the single deferred uop).
    (void)detailed.warmupCheckpointBytes();
    const std::uint64_t dispatched =
        detailed.uopsProduced(0)
        - (detailed.core(0).hasDeferredUop() ? 1 : 0);
    ASSERT_GE(dispatched, cfg.warmup_uops);

    System fast(cfg, {"mcf"});
    const std::uint64_t consumed = fast.fastForward(dispatched);
    EXPECT_EQ(consumed, dispatched);

    const WarmStateDiff d = emc::compareWarmState(detailed, fast);
    EXPECT_TRUE(d.bp_equal) << "branch predictor tables diverged";
    EXPECT_GE(d.tlb_jaccard, 0.9);
    EXPECT_GE(d.l1_jaccard, 0.75) << "L1 " << d.l1_lines_a << " vs "
                                  << d.l1_lines_b << " lines";
    EXPECT_GE(d.llc_jaccard, 0.9) << "LLC " << d.llc_lines_a << " vs "
                                  << d.llc_lines_b << " lines";
}

// A pure fast-forward from reset must leave every statistic untouched:
// warming advances tag/LRU/predictor state only (DESIGN.md §8). The
// tiny LLC forces warm insertions to evict lines with live presence
// bits, exercising the back-invalidation path into the core L1s and
// the EMC data cache — the paths where stat-counting calls once hid.
TEST(FastwarmContract, FastForwardTouchesNoStats)
{
    SystemConfig cfg = fig13Config();
    cfg.warmup_uops = 4000;
    cfg.llc_slice_bytes = 8 * 1024;
    System sys(cfg, fig13Mix());
    sys.fastForward(cfg.warmup_uops);

    for (unsigned i = 0; i < cfg.num_cores; ++i) {
        const auto &bp = sys.core(i).branchPredictor().stats();
        EXPECT_EQ(bp.lookups, 0u) << "core " << i;
        EXPECT_EQ(bp.mispredicts, 0u) << "core " << i;
        const auto &l1 = sys.core(i).l1d().stats();
        EXPECT_EQ(l1.hits + l1.misses + l1.evictions
                      + l1.invalidations, 0u) << "L1 of core " << i;
        const auto &llc = sys.llcSlice(i).stats();
        EXPECT_EQ(llc.hits + llc.misses + llc.evictions
                      + llc.invalidations, 0u) << "LLC slice " << i;
    }
    ASSERT_NE(sys.emc(), nullptr);
    const auto &dc = sys.emc()->dcache().stats();
    EXPECT_EQ(dc.hits + dc.misses + dc.evictions + dc.invalidations,
              0u) << "EMC dcache";
}

// Different uop prefixes must NOT produce equal predictors — guards
// against compareWarmState trivially returning equality.
TEST(FastwarmEquivalence, DetectsDivergence)
{
    const SystemConfig cfg = uniConfig(4000);
    System a(cfg, {"mcf"});
    System b(cfg, {"mcf"});
    a.fastForward(4000);
    b.fastForward(2000);
    const WarmStateDiff d = emc::compareWarmState(a, b);
    EXPECT_FALSE(d.bp_equal);
}

TEST(FastwarmCkpt, ImagesAreDeterministic)
{
    const SystemConfig cfg = fig13Config();
    const std::vector<std::uint8_t> img_a =
        System(cfg, fig13Mix()).fastwarmCheckpointBytes();
    const std::vector<std::uint8_t> img_b =
        System(cfg, fig13Mix()).fastwarmCheckpointBytes();
    EXPECT_EQ(img_a, img_b) << "fastwarm images differ run-to-run";
}

TEST(FastwarmCkpt, RestoredRunIsDeterministic)
{
    const SystemConfig cfg = fig13Config();
    const std::vector<std::uint8_t> img =
        System(cfg, fig13Mix()).fastwarmCheckpointBytes();

    StatDump dumps[2];
    for (int i = 0; i < 2; ++i) {
        System sys(cfg, fig13Mix());
        sys.restoreCheckpointBytes(img);
        sys.run();
        dumps[i] = sys.dump();
    }
    expectIdentical(dumps[0], dumps[1], "fastwarm restore");
    // The restored run measured real work.
    EXPECT_GT(dumps[0].get("core0.retired"), 0.0);
}

TEST(FastwarmCkpt, RefusedAfterRunning)
{
    const SystemConfig cfg = fig13Config();
    System sys(cfg, fig13Mix());
    sys.tickOnce();
    EXPECT_THROW(sys.fastwarmCheckpointBytes(), emc::ckpt::Error);
}

TEST(Sampled, CiCoversFullRunIpc)
{
    SystemConfig cfg = fig13Config();
    cfg.target_uops = 20000;
    cfg.warmup_uops = 2000;

    // Full detailed run: aggregate throughput = sum of per-core IPC.
    System full(cfg, fig13Mix());
    full.run();
    const double full_ipc = full.dump().get("system.ipc_sum");
    ASSERT_GT(full_ipc, 0.0);

    SampleParams p;
    p.period = 2000;
    p.detail = 500;
    System sampled(cfg, fig13Mix());
    const emc::SampledStats s = sampled.runSampled(p);

    ASSERT_GE(s.windows, 5u);
    EXPECT_EQ(s.windows, s.window_ipc.size());
    ASSERT_GT(s.ipc_mean, 0.0);
    // The 95% CI must cover the full-run value (the sampled estimator
    // is unbiased up to window-edge effects; allow those a 5% slack).
    const double err = std::abs(s.ipc_mean - full_ipc);
    EXPECT_LE(err, s.ipc_ci95 + 0.05 * full_ipc)
        << "sampled " << s.ipc_mean << " +- " << s.ipc_ci95
        << " vs full " << full_ipc;

    // Exported stats carry the same numbers.
    const StatDump d = sampled.dump();
    EXPECT_EQ(d.get("sampled.windows"),
              static_cast<double>(s.windows));
    EXPECT_EQ(d.get("sampled.ipc_mean"), s.ipc_mean);
    EXPECT_EQ(d.get("sampled.ipc_ci95"), s.ipc_ci95);
}

TEST(Sampled, DeterministicAcrossRuns)
{
    SystemConfig cfg = fig13Config();
    cfg.target_uops = 6000;
    cfg.warmup_uops = 1000;
    SampleParams p;
    p.period = 1500;
    p.detail = 400;

    StatDump dumps[2];
    for (int i = 0; i < 2; ++i) {
        System sys(cfg, fig13Mix());
        sys.runSampled(p);
        dumps[i] = sys.dump();
    }
    expectIdentical(dumps[0], dumps[1], "sampled run");
}

TEST(Sampled, RunManySampledExportsStats)
{
    SystemConfig cfg = fig13Config();
    cfg.target_uops = 4000;
    cfg.warmup_uops = 1000;
    SampleParams p;
    p.period = 1000;
    p.detail = 300;
    const std::vector<emc::bench::RunJob> jobs = {
        {cfg, fig13Mix()},
        {cfg, fig13Mix()},
    };
    const std::vector<StatDump> dumps =
        emc::bench::runManySampled(jobs, p);
    ASSERT_EQ(dumps.size(), 2u);
    for (const StatDump &d : dumps) {
        EXPECT_GT(d.get("sampled.windows"), 0.0);
        EXPECT_GT(d.get("sampled.ipc_mean"), 0.0);
    }
    expectIdentical(dumps[0], dumps[1], "identical sampled jobs");
}

TEST(CkptCompress, RoundtripTransparent)
{
    if (!emc::ckpt::compressionAvailable())
        GTEST_SKIP() << "built without zlib";

    const SystemConfig cfg = fig13Config();
    const std::vector<std::uint8_t> raw =
        System(cfg, fig13Mix()).fastwarmCheckpointBytes();

    // In-memory roundtrip.
    const std::vector<std::uint8_t> z = emc::ckpt::compressImage(raw);
    EXPECT_TRUE(emc::ckpt::isCompressedImage(z));
    EXPECT_LT(z.size(), raw.size());
    EXPECT_EQ(emc::ckpt::maybeDecompressImage(z), raw);
    // Raw images pass through untouched.
    EXPECT_EQ(emc::ckpt::maybeDecompressImage(raw), raw);

    // On-disk: write compressed, read transparently, restore, run.
    const std::string path = tmpPath("compressed.ckpt");
    emc::ckpt::writeFile(path, raw, true);
    EXPECT_LT(std::filesystem::file_size(path), raw.size());
    EXPECT_EQ(emc::ckpt::readFile(path), raw);

    System restored(cfg, fig13Mix());
    restored.restoreCheckpoint(path);
    restored.run();
    EXPECT_GT(restored.dump().get("core0.retired"), 0.0);
    std::remove(path.c_str());
}

TEST(CkptCompress, CorruptCompressedImageRejected)
{
    if (!emc::ckpt::compressionAvailable())
        GTEST_SKIP() << "built without zlib";
    const SystemConfig cfg = fig13Config();
    const std::vector<std::uint8_t> raw =
        System(cfg, fig13Mix()).fastwarmCheckpointBytes();
    std::vector<std::uint8_t> z = emc::ckpt::compressImage(raw);
    z.resize(z.size() / 2);  // truncate the deflate stream
    EXPECT_THROW(emc::ckpt::maybeDecompressImage(z), emc::ckpt::Error);
}

TEST(CkptCompress, SystemKnobCompressesSaves)
{
    if (!emc::ckpt::compressionAvailable())
        GTEST_SKIP() << "built without zlib";
    const SystemConfig cfg = fig13Config();
    const std::string path = tmpPath("knob.ckpt");

    System sys(cfg, fig13Mix());
    sys.setCkptCompress(true);
    sys.saveCheckpoint(path, emc::ckpt::Level::kFull);

    // The on-disk bytes are a compressed container...
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[8] = {};
    ASSERT_EQ(std::fread(magic, 1, 8, f), 8u);
    std::fclose(f);
    EXPECT_EQ(std::string(magic, 8), "EMCKPTZ\n");

    // ...and restore reads them transparently.
    System restored(cfg, fig13Mix());
    restored.restoreCheckpoint(path);
    restored.run();
    EXPECT_GT(restored.dump().get("core0.retired"), 0.0);
    std::remove(path.c_str());
}
