/**
 * @file
 * Unit tests for the hybrid (gshare + bimodal + chooser) branch
 * predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/branch_predictor.hh"

namespace emc
{
namespace
{

TEST(BranchPredictorTest, LearnsAlwaysTaken)
{
    HybridBranchPredictor bp;
    unsigned mispredicts = 0;
    for (int i = 0; i < 200; ++i)
        mispredicts += bp.predictAndUpdate(0x400, true) ? 1 : 0;
    EXPECT_LE(mispredicts, 2u);
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken)
{
    HybridBranchPredictor bp;
    unsigned mispredicts = 0;
    for (int i = 0; i < 200; ++i)
        mispredicts += bp.predictAndUpdate(0x404, false) ? 1 : 0;
    EXPECT_LE(mispredicts, 4u);
}

TEST(BranchPredictorTest, GshareLearnsAlternation)
{
    // T,N,T,N... is hopeless for bimodal but trivially captured by a
    // history-indexed table.
    HybridBranchPredictor bp;
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 800; ++i) {
        const bool taken = (i % 2) == 0;
        const bool wrong = bp.predictAndUpdate(0x408, taken);
        if (i >= 400)
            late_mispredicts += wrong ? 1 : 0;
    }
    EXPECT_LE(late_mispredicts, 20u);
}

TEST(BranchPredictorTest, GshareLearnsLoopExit)
{
    // 7 taken then 1 not-taken, repeated: history disambiguates the
    // exit iteration.
    HybridBranchPredictor bp;
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 1600; ++i) {
        const bool taken = (i % 8) != 7;
        const bool wrong = bp.predictAndUpdate(0x40c, taken);
        if (i >= 800)
            late_mispredicts += wrong ? 1 : 0;
    }
    EXPECT_LT(late_mispredicts, 80u);
}

TEST(BranchPredictorTest, RandomBranchesMispredictHalfTheTime)
{
    HybridBranchPredictor bp;
    Rng rng(1);
    unsigned mispredicts = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        mispredicts += bp.predictAndUpdate(0x410, rng.chance(0.5)) ? 1
                                                                   : 0;
    const double rate = static_cast<double>(mispredicts) / n;
    EXPECT_GT(rate, 0.35);
    EXPECT_LT(rate, 0.60);
}

TEST(BranchPredictorTest, IndependentPcsDoNotAliasBadly)
{
    // Two strongly-biased branches at different PCs stay learned even
    // when interleaved.
    HybridBranchPredictor bp;
    unsigned mispredicts = 0;
    for (int i = 0; i < 400; ++i) {
        mispredicts += bp.predictAndUpdate(0x500, true) ? 1 : 0;
        mispredicts += bp.predictAndUpdate(0x900, false) ? 1 : 0;
    }
    EXPECT_LE(mispredicts, 10u);
}

TEST(BranchPredictorTest, HistoryWindowBounded)
{
    HybridBranchPredictor bp(12, 12);
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(0x600, true);
    EXPECT_LT(bp.history(), 1ull << 12);
}

TEST(BranchPredictorTest, StatsAccounting)
{
    HybridBranchPredictor bp;
    for (int i = 0; i < 50; ++i)
        bp.predictAndUpdate(0x700, true);
    EXPECT_EQ(bp.stats().lookups, 50u);
    EXPECT_EQ(bp.stats().gshare_used + bp.stats().bimodal_used, 50u);
    EXPECT_GE(bp.stats().mispredictRate(), 0.0);
    EXPECT_LE(bp.stats().mispredictRate(), 1.0);
}

TEST(BranchPredictorTest, WarmUpdateTrainsByteExactly)
{
    // A fast-warmed predictor must be indistinguishable from a
    // detail-warmed one: same history, same subsequent predictions.
    HybridBranchPredictor warm, detailed;
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const Addr pc = 0x400 + 4 * rng.range(0, 63);
        const bool taken = rng.range(0, 1) == 0;
        detailed.predictAndUpdate(pc, taken);
        warm.warmUpdate(pc, taken);
    }
    EXPECT_EQ(warm.history(), detailed.history());
    for (int i = 0; i < 200; ++i) {
        const Addr pc = 0x400 + 4 * rng.range(0, 63);
        const bool taken = rng.range(0, 1) == 0;
        EXPECT_EQ(warm.predictAndUpdate(pc, taken),
                  detailed.predictAndUpdate(pc, taken));
    }
}

TEST(BranchPredictorTest, WarmUpdateTouchesNoStats)
{
    // Functional warming runs outside simulated time: training must
    // not count lookups, component use, or mispredicts (DESIGN.md §8
    // — caught by the warm-contract lint rule).
    HybridBranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.warmUpdate(0x400 + 4 * (i % 16), (i % 3) == 0);
    EXPECT_EQ(bp.stats().lookups, 0u);
    EXPECT_EQ(bp.stats().mispredicts, 0u);
    EXPECT_EQ(bp.stats().gshare_used, 0u);
    EXPECT_EQ(bp.stats().bimodal_used, 0u);
}

} // namespace
} // namespace emc
