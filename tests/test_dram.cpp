/**
 * @file
 * Unit and property tests for the DDR3 channel model: address mapping,
 * bank timing, row-buffer outcomes, scheduling policies, write drain
 * and refresh.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "dram/dram_channel.hh"

namespace emc
{
namespace
{

DramGeometry
quadGeo()
{
    DramGeometry g;
    g.channels = 2;
    g.ranks_per_channel = 1;
    g.banks_per_rank = 8;
    g.row_bytes = 8192;
    return g;
}

TEST(DramMapTest, ChannelInterleavesByLine)
{
    const DramGeometry g = quadGeo();
    const DramCoord a = mapAddress(0, g);
    const DramCoord b = mapAddress(64, g);
    EXPECT_NE(a.channel, b.channel);
    EXPECT_EQ(mapAddress(128, g).channel, a.channel);
}

TEST(DramMapTest, RowHoldsManyLines)
{
    const DramGeometry g = quadGeo();
    // Two lines in the same channel+bank separated by less than a row
    // must map to the same row.
    const Addr a = 0;
    const Addr b = a + 64 * g.channels * g.banks_per_rank;  // next column
    const DramCoord ca = mapAddress(a, g);
    const DramCoord cb = mapAddress(b, g);
    EXPECT_EQ(ca.channel, cb.channel);
    EXPECT_EQ(ca.bank, cb.bank);
    EXPECT_EQ(ca.row, cb.row);
    EXPECT_NE(ca.column, cb.column);
}

TEST(DramMapTest, CoordinatesWithinBounds)
{
    const DramGeometry g = quadGeo();
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.next() & ~0x3full;
        const DramCoord c = mapAddress(a, g);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_LT(c.rank, g.ranks_per_channel);
        EXPECT_LT(c.bank, g.banks_per_rank);
        EXPECT_LT(c.column, g.linesPerRow());
    }
}

TEST(BankTest, RowOutcomeSequence)
{
    Bank b;
    DramTiming t;
    EXPECT_EQ(b.classify(5), RowOutcome::kEmpty);
    RowOutcome out;
    const Cycle d1 = b.access(5, 0, t, false, out);
    EXPECT_EQ(out, RowOutcome::kEmpty);
    EXPECT_EQ(d1, t.tRCD + t.tCL);

    const Cycle earliest = b.readyCycle();
    const Cycle d2 = b.access(5, earliest, t, false, out);
    EXPECT_EQ(out, RowOutcome::kHit);
    EXPECT_EQ(d2, earliest + t.tCL);

    const Cycle before = d2;
    const Cycle d3 = b.access(9, b.readyCycle(), t, false, out);
    EXPECT_EQ(out, RowOutcome::kConflict);
    EXPECT_GT(d3, before);
}

TEST(BankTest, ConflictRespectsTras)
{
    Bank b;
    DramTiming t;
    RowOutcome out;
    b.access(1, 0, t, false, out);  // activate at 0
    // Immediately conflicting access: precharge cannot start before
    // tRAS from the activate.
    const Cycle d = b.access(2, t.tCCD, t, false, out);
    EXPECT_EQ(out, RowOutcome::kConflict);
    EXPECT_GE(d, t.tRAS + t.tRP + t.tRCD + t.tCL);
}

TEST(BankTest, RefreshClosesRow)
{
    Bank b;
    DramTiming t;
    RowOutcome out;
    b.access(1, 0, t, false, out);
    b.refresh(100, t);
    EXPECT_FALSE(b.rowOpen());
    EXPECT_GE(b.readyCycle(), 100 + t.tRFC);
}

TEST(BankTest, WriteRecoveryLongerThanRead)
{
    Bank br, bw;
    DramTiming t;
    RowOutcome out;
    br.access(1, 0, t, false, out);
    bw.access(1, 0, t, true, out);
    EXPECT_GT(bw.readyCycle(), br.readyCycle());
}

class DramChannelTest : public ::testing::Test
{
  protected:
    DramChannelTest()
        : chan_(quadGeo(), DramTiming{}, SchedPolicy::kFrFcfs, 64, 4)
    {
        chan_.setCallback([this](const MemRequest &req) {
            done_.push_back(req);
        });
    }

    void
    runTo(Cycle end)
    {
        for (; now_ <= end; ++now_)
            chan_.tick(now_);
    }

    MemRequest
    read(Addr a, CoreId core = 0)
    {
        MemRequest r;
        r.paddr = a;
        r.core = core;
        r.token = next_token_++;
        return r;
    }

    DramChannel chan_;
    std::vector<MemRequest> done_;
    Cycle now_ = 1;
    std::uint64_t next_token_ = 1;
};

TEST_F(DramChannelTest, SingleReadCompletes)
{
    ASSERT_TRUE(chan_.enqueue(read(0), now_));
    runTo(500);
    ASSERT_EQ(done_.size(), 1u);
    const MemRequest &r = done_[0];
    EXPECT_NE(r.cycle_dram_issue, kNoCycle);
    EXPECT_GT(r.cycle_dram_data, r.cycle_dram_issue);
    EXPECT_EQ(r.outcome, RowOutcome::kEmpty);
}

TEST_F(DramChannelTest, RowHitFasterThanConflict)
{
    const DramGeometry g = quadGeo();
    const Addr same_row = 64 * g.channels * g.banks_per_rank;
    ASSERT_TRUE(chan_.enqueue(read(0), now_));
    runTo(400);
    done_.clear();

    // Row hit.
    ASSERT_TRUE(chan_.enqueue(read(same_row), now_));
    runTo(now_ + 400);
    ASSERT_EQ(done_.size(), 1u);
    const Cycle hit_latency =
        done_[0].cycle_dram_data - done_[0].cycle_dram_issue;
    EXPECT_EQ(done_[0].outcome, RowOutcome::kHit);
    done_.clear();

    // Conflict: same bank, different row.
    const Addr other_row =
        static_cast<Addr>(g.linesPerRow()) * 64 * g.channels
        * g.banks_per_rank * 4;
    const DramCoord c0 = mapAddress(0, g);
    const DramCoord c1 = mapAddress(other_row, g);
    ASSERT_EQ(c0.bank, c1.bank);
    ASSERT_NE(c0.row, c1.row);
    ASSERT_TRUE(chan_.enqueue(read(other_row), now_));
    runTo(now_ + 800);
    ASSERT_EQ(done_.size(), 1u);
    const Cycle conf_latency =
        done_[0].cycle_dram_data - done_[0].cycle_dram_issue;
    EXPECT_EQ(done_[0].outcome, RowOutcome::kConflict);
    EXPECT_GT(conf_latency, hit_latency);
}

TEST_F(DramChannelTest, FrFcfsPrefersRowHit)
{
    const DramGeometry g = quadGeo();
    const Addr same_row = 64 * g.channels * g.banks_per_rank;
    // Open a row.
    ASSERT_TRUE(chan_.enqueue(read(0), now_));
    runTo(400);
    done_.clear();

    // Enqueue a conflict (older) and a row hit (younger) to the same
    // bank: the hit must be serviced first.
    const Addr conflict_addr =
        static_cast<Addr>(g.linesPerRow()) * 64 * g.channels
        * g.banks_per_rank * 8;
    ASSERT_EQ(mapAddress(conflict_addr, g).bank, mapAddress(0, g).bank);
    MemRequest older = read(conflict_addr);
    MemRequest younger = read(same_row);
    ASSERT_TRUE(chan_.enqueue(older, now_));
    ASSERT_TRUE(chan_.enqueue(younger, now_));
    runTo(now_ + 1200);
    ASSERT_EQ(done_.size(), 2u);
    EXPECT_EQ(done_[0].token, younger.token);
    EXPECT_EQ(done_[1].token, older.token);
}

TEST_F(DramChannelTest, QueueLimitEnforced)
{
    DramChannel small(quadGeo(), DramTiming{}, SchedPolicy::kFrFcfs, 2, 4);
    EXPECT_TRUE(small.enqueue(read(0), 1));
    EXPECT_TRUE(small.enqueue(read(64 * 2), 1));
    EXPECT_FALSE(small.enqueue(read(64 * 4), 1));
    EXPECT_FALSE(small.canAccept());
}

TEST_F(DramChannelTest, WritesDoNotStarveReads)
{
    // Saturate with writes below the drain watermark; reads must still
    // complete promptly.
    for (int i = 0; i < 8; ++i) {
        MemRequest w = read(static_cast<Addr>(i) * 4096);
        w.is_write = true;
        ASSERT_TRUE(chan_.enqueue(w, now_));
    }
    ASSERT_TRUE(chan_.enqueue(read(1 << 20), now_));
    runTo(600);
    ASSERT_GE(done_.size(), 1u);
}

TEST_F(DramChannelTest, WriteDrainAtWatermark)
{
    // Push writes past the high watermark; they must eventually issue
    // even with a continuous trickle of reads.
    for (int i = 0; i < 40; ++i) {
        MemRequest w = read(static_cast<Addr>(i) * 4096);
        w.is_write = true;
        ASSERT_TRUE(chan_.enqueue(w, now_));
    }
    runTo(20000);
    EXPECT_LT(chan_.writeQueueDepth(), 40u);
    EXPECT_GT(chan_.stats().writes, 0u);
}

TEST_F(DramChannelTest, BatchSchedulerServesAllCores)
{
    DramChannel batch(quadGeo(), DramTiming{}, SchedPolicy::kBatch, 64, 4);
    std::vector<MemRequest> finished;
    batch.setCallback([&](const MemRequest &r) { finished.push_back(r); });
    // Core 0 floods one bank; core 1 has a single request. PAR-BS
    // marking must bound core 0's lead.
    for (int i = 0; i < 16; ++i) {
        MemRequest r = read(static_cast<Addr>(i) * 4096
                            * quadGeo().banks_per_rank, 0);
        r.token = 100 + i;
        batch.enqueue(r, 1);
    }
    MemRequest lone = read(1 << 22, 1);
    lone.token = 999;
    batch.enqueue(lone, 1);
    for (Cycle c = 1; c < 30000 && finished.size() < 17; ++c)
        batch.tick(c);
    ASSERT_EQ(finished.size(), 17u);
    // The lone request must not finish last.
    EXPECT_NE(finished.back().token, 999u);
}

TEST_F(DramChannelTest, RefreshHappensPeriodically)
{
    runTo(3 * DramTiming{}.tREFI + 10);
    EXPECT_GE(chan_.stats().refreshes, 3u);
}

/** Property: every enqueued read completes exactly once. */
TEST_F(DramChannelTest, AllReadsCompleteOnce)
{
    Rng rng(77);
    std::vector<std::uint64_t> tokens;
    unsigned enqueued = 0;
    for (Cycle c = 1; c < 60000; ++c) {
        if (enqueued < 200 && rng.chance(0.02) && chan_.canAccept()) {
            MemRequest r = read(rng.below(1 << 22) << kLineShift,
                                static_cast<CoreId>(rng.below(4)));
            if (chan_.enqueue(r, c)) {
                tokens.push_back(r.token);
                ++enqueued;
            }
        }
        chan_.tick(c);
    }
    ASSERT_EQ(done_.size(), tokens.size());
    std::vector<std::uint64_t> got;
    for (const auto &r : done_)
        got.push_back(r.token);
    std::sort(got.begin(), got.end());
    std::sort(tokens.begin(), tokens.end());
    EXPECT_EQ(got, tokens);
}

/** Property: data timestamps are monotone per bank bus occupancy. */
TEST_F(DramChannelTest, DataBusNeverOverlaps)
{
    Rng rng(5);
    for (Cycle c = 1; c < 40000; ++c) {
        if (rng.chance(0.05) && chan_.canAccept())
            chan_.enqueue(read(rng.below(1 << 20) << kLineShift), c);
        chan_.tick(c);
    }
    std::vector<Cycle> ends;
    for (const auto &r : done_)
        ends.push_back(r.cycle_dram_data);
    std::sort(ends.begin(), ends.end());
    for (std::size_t i = 1; i < ends.size(); ++i)
        EXPECT_GE(ends[i] - ends[i - 1], DramTiming{}.tBurst)
            << "bursts overlap on the data bus";
}

} // namespace
} // namespace emc
