/**
 * @file
 * CalendarQueue unit tests: ordering semantics (ascending cycle, FIFO
 * within a cycle — the contract the System's event loop relies on for
 * bit-identical replay of the former std::multimap), clamping of
 * pushes at or before the cursor, heap fallback beyond the wheel
 * horizon, and a randomized cross-check against a reference multimap.
 * Also covers the IdSlabPool that replaced the System's transaction
 * map.
 */

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serial.hh"
#include "common/slab_pool.hh"
#include "sim/event_queue.hh"

using emc::CalendarQueue;
using emc::Cycle;
using emc::IdSlabPool;
using emc::kNoCycle;

namespace
{

std::vector<std::uint64_t>
drainUpTo(CalendarQueue<std::uint64_t> &q, Cycle now)
{
    std::vector<std::uint64_t> out;
    std::uint64_t v;
    while (q.popUpTo(now, v))
        out.push_back(v);
    return out;
}

} // namespace

TEST(CalendarQueue, PopsInCycleOrder)
{
    CalendarQueue<std::uint64_t> q;
    q.push(30, 1);
    q.push(10, 2);
    q.push(20, 3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(drainUpTo(q, 100),
              (std::vector<std::uint64_t>{2, 3, 1}));
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FifoWithinACycle)
{
    CalendarQueue<std::uint64_t> q;
    for (std::uint64_t i = 0; i < 50; ++i)
        q.push(7, i);
    EXPECT_EQ(drainUpTo(q, 7).size(), 50u);

    // Again, interleaved with another cycle.
    for (std::uint64_t i = 0; i < 8; ++i) {
        q.push(20, 100 + i);
        q.push(21, 200 + i);
    }
    const auto got = drainUpTo(q, 21);
    ASSERT_EQ(got.size(), 16u);
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_EQ(got[i], 100 + i);
        EXPECT_EQ(got[8 + i], 200 + i);
    }
}

TEST(CalendarQueue, NothingDueBeforeItsCycle)
{
    CalendarQueue<std::uint64_t> q;
    q.push(5, 1);
    std::uint64_t v;
    EXPECT_FALSE(q.popUpTo(4, v));
    EXPECT_TRUE(q.popUpTo(5, v));
    EXPECT_EQ(v, 1u);
}

TEST(CalendarQueue, PushAtOrBeforeCursorClamps)
{
    // Mirrors System::schedule's clamp (system.cc): an event
    // scheduled for the past must fire at the earliest legal cycle,
    // never be lost, and never move the queue backwards.
    CalendarQueue<std::uint64_t> q;
    q.push(10, 1);
    EXPECT_EQ(drainUpTo(q, 10), (std::vector<std::uint64_t>{1}));
    // Cursor is now past 10; these land at the cursor, not at 3/10.
    q.push(3, 2);
    q.push(10, 3);
    std::uint64_t v;
    EXPECT_FALSE(q.popUpTo(10, v));  // nothing due at old cycles
    const auto got = drainUpTo(q, q.cursor());
    EXPECT_EQ(got, (std::vector<std::uint64_t>{2, 3}));
}

TEST(CalendarQueue, FarFutureEventsSurviveTheHeapFallback)
{
    CalendarQueue<std::uint64_t> q(4);  // 16-cycle wheel for the test
    q.push(1000, 1);  // far beyond the horizon
    q.push(5, 2);
    q.push(1000, 3);
    q.push(999, 4);
    EXPECT_EQ(drainUpTo(q, 998), (std::vector<std::uint64_t>{2}));
    EXPECT_EQ(drainUpTo(q, 2000),
              (std::vector<std::uint64_t>{4, 1, 3}));
}

TEST(CalendarQueue, HeapEventsPrecedeBucketEventsAtTheSameCycle)
{
    // An event for cycle C that went through the heap was pushed
    // before the window reached C, i.e. before every bucket event for
    // C — so it must pop first (multimap FIFO equivalence).
    CalendarQueue<std::uint64_t> q(4);
    q.push(100, 1);  // heap (horizon is 16)
    std::uint64_t v;
    EXPECT_FALSE(q.popUpTo(90, v));  // advance the window
    q.push(100, 2);  // bucket
    EXPECT_EQ(drainUpTo(q, 100), (std::vector<std::uint64_t>{1, 2}));
}

TEST(CalendarQueue, NextCycleReportsTheEarliestEvent)
{
    CalendarQueue<std::uint64_t> q(4);
    EXPECT_EQ(q.nextCycle(), kNoCycle);
    q.push(500, 1);  // heap only
    EXPECT_EQ(q.nextCycle(), 500u);
    q.push(9, 2);  // wheel
    EXPECT_EQ(q.nextCycle(), 9u);
    std::uint64_t v;
    ASSERT_TRUE(q.popUpTo(9, v));
    EXPECT_EQ(q.nextCycle(), 500u);
}

TEST(CalendarQueue, MatchesMultimapOnRandomizedSchedules)
{
    // Replay an identical random push/pop schedule through the
    // calendar queue and a reference multimap; every drained batch
    // must match element-for-element (same cycles, same FIFO order).
    std::mt19937_64 rng(12345);
    CalendarQueue<std::uint64_t> q(6);  // small wheel: exercise heap
    std::multimap<Cycle, std::uint64_t> ref;
    Cycle now = 0;
    std::uint64_t token = 0;

    for (unsigned step = 0; step < 20000; ++step) {
        now += rng() % 3;  // sometimes several batches per cycle
        const unsigned pushes = rng() % 4;
        for (unsigned p = 0; p < pushes; ++p) {
            // Mix of near, mid and far-future delays, plus attempts
            // to schedule into the past (both sides clamp).
            Cycle when;
            switch (rng() % 4) {
              case 0: when = now + 1 + rng() % 4; break;
              case 1: when = now + 1 + rng() % 60; break;
              case 2: when = now + 200 + rng() % 2000; break;
              default: when = now > 10 ? now - rng() % 10 : 0; break;
            }
            const Cycle clamped = std::max(when, now + 1);
            q.push(clamped, token);
            ref.emplace(clamped, token);
            ++token;
        }
        std::uint64_t got;
        while (q.popUpTo(now, got)) {
            ASSERT_FALSE(ref.empty());
            ASSERT_LE(ref.begin()->first, now);
            ASSERT_EQ(got, ref.begin()->second)
                << "divergence at step " << step;
            ref.erase(ref.begin());
        }
        ASSERT_TRUE(ref.empty() || ref.begin()->first > now);
    }
    EXPECT_EQ(q.size(), ref.size());
}

TEST(CalendarQueue, WrapReusesBucketsAcrossLaps)
{
    // A 16-cycle wheel wraps every 16 cycles: cycles 3, 19, 35 all
    // share bucket 3. Stale content from a previous lap must never
    // resurface, and pushes one full lap ahead must go to the heap,
    // not alias the bucket of the current lap.
    CalendarQueue<std::uint64_t> q(4);
    q.push(3, 1);
    q.push(19, 2);   // same bucket as 3, one lap later -> heap
    EXPECT_EQ(drainUpTo(q, 3), (std::vector<std::uint64_t>{1}));
    EXPECT_EQ(drainUpTo(q, 18), (std::vector<std::uint64_t>{}));
    // After the window advanced past 3, cycle 19 is within horizon:
    // a fresh push lands in the reused bucket behind the heap event.
    q.push(19, 3);
    EXPECT_EQ(drainUpTo(q, 19), (std::vector<std::uint64_t>{2, 3}));

    // Many laps in a row: every event must come back exactly once,
    // in cycle order, no matter how often its bucket was reused.
    std::uint64_t token = 100;
    Cycle now = q.cursor();
    for (unsigned lap = 0; lap < 40; ++lap) {
        const Cycle when = now + 1 + lap * 16;  // same bucket index
        q.push(when, token + lap);
    }
    std::vector<std::uint64_t> got;
    std::uint64_t v;
    for (Cycle c = now; c < now + 1 + 40 * 16; ++c) {
        while (q.popUpTo(c, v))
            got.push_back(v);
    }
    ASSERT_EQ(got.size(), 40u);
    for (unsigned lap = 0; lap < 40; ++lap)
        EXPECT_EQ(got[lap], token + lap);
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, CkptRoundtripPreservesPopOrder)
{
    // Build a queue whose pending set straddles every representation:
    // partially consumed bucket, untouched buckets, heap overflow,
    // FIFO runs within one cycle — then checkpoint, reload into a
    // dirty queue, and require the exact same pop sequence.
    std::mt19937_64 rng(99);
    CalendarQueue<std::uint64_t> q(4);
    std::uint64_t token = 0;
    for (unsigned i = 0; i < 400; ++i) {
        const Cycle when = 1 + rng() % 200;
        q.push(when, token++);
    }
    // Consume a prefix so cur_ sits mid-bucket, then add more.
    std::uint64_t v;
    for (unsigned i = 0; i < 120; ++i)
        ASSERT_TRUE(q.popUpTo(200, v));
    for (unsigned i = 0; i < 100; ++i)
        q.push(q.cursor() + 1 + rng() % 500, token++);

    emc::ckpt::Ar save = emc::ckpt::Ar::saver();
    q.ckptSave(save,
               [](emc::ckpt::Ar &a, Cycle, std::uint64_t &ev) {
                   a.io(ev);
               });

    CalendarQueue<std::uint64_t> loaded(4);
    loaded.push(7, 424242);  // stale content the load must clear
    emc::ckpt::Ar load = emc::ckpt::Ar::loader(save.takeBytes());
    loaded.ckptLoad(load,
                    [](emc::ckpt::Ar &a, Cycle, std::uint64_t &ev) {
                        a.io(ev);
                    });
    EXPECT_TRUE(load.exhausted());
    EXPECT_EQ(loaded.size(), q.size());
    EXPECT_EQ(loaded.cursor(), q.cursor());

    // ckptSave must not perturb the source queue (it drains a copy):
    // both queues now pop identical (cycle, token) sequences.
    while (!q.empty()) {
        const Cycle c = loaded.nextCycle();
        ASSERT_EQ(c, q.nextCycle());
        std::uint64_t a = 0, b = 0;
        ASSERT_TRUE(q.popUpTo(c, a));
        ASSERT_TRUE(loaded.popUpTo(c, b));
        EXPECT_EQ(a, b);
    }
    EXPECT_TRUE(loaded.empty());
}

TEST(IdSlabPool, CreateFindErase)
{
    IdSlabPool<int> pool;
    pool.create(1) = 11;
    pool.create(2) = 22;
    pool.create(5) = 55;  // gap: ids 3, 4 never created
    EXPECT_EQ(pool.size(), 3u);
    ASSERT_NE(pool.find(1), nullptr);
    EXPECT_EQ(*pool.find(2), 22);
    EXPECT_EQ(pool.find(3), nullptr);
    EXPECT_EQ(pool.find(4), nullptr);
    EXPECT_EQ(*pool.find(5), 55);
    EXPECT_EQ(pool.find(99), nullptr);

    pool.erase(2);
    EXPECT_EQ(pool.find(2), nullptr);
    EXPECT_EQ(pool.size(), 2u);
    pool.erase(2);  // double-erase is a no-op
    EXPECT_EQ(pool.size(), 2u);
}

TEST(IdSlabPool, ReusesSlotsAndKeepsAddressesStable)
{
    IdSlabPool<std::uint64_t> pool;
    // Churn far more ids than the live population: capacity (slots
    // actually allocated) must track the peak, not the id count.
    std::uint64_t id = 1;
    for (unsigned round = 0; round < 1000; ++round) {
        std::vector<std::uint64_t> live;
        for (unsigned i = 0; i < 8; ++i) {
            pool.create(id) = id * 3;
            live.push_back(id);
            ++id;
        }
        std::uint64_t *p = pool.find(live[0]);
        ASSERT_NE(p, nullptr);
        const std::uint64_t *before = p;
        for (unsigned i = 0; i < 64; ++i)
            pool.create(id + i) = 0;  // may allocate new slabs
        for (unsigned i = 0; i < 64; ++i)
            pool.erase(id + i);
        id += 64;
        EXPECT_EQ(pool.find(live[0]), before)
            << "slab addresses must be stable";
        EXPECT_EQ(*before, live[0] * 3);
        for (std::uint64_t l : live)
            pool.erase(l);
    }
    EXPECT_TRUE(pool.empty());
    EXPECT_LE(pool.capacity(), 128u);
}

TEST(IdSlabPool, AnyOfSeesExactlyTheLiveObjects)
{
    IdSlabPool<int> pool;
    for (int i = 1; i <= 20; ++i)
        pool.create(i) = i;
    for (int i = 1; i <= 20; i += 2)
        pool.erase(i);
    EXPECT_TRUE(pool.anyOf([](int v) { return v == 8; }));
    EXPECT_FALSE(pool.anyOf([](int v) { return v == 7; }));  // erased
    EXPECT_FALSE(pool.anyOf([](int v) { return v > 20; }));
}
