/**
 * @file
 * Tests for binary trace capture/replay and the chain wire codec.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "emc/chain_codec.hh"
#include "isa/trace_io.hh"
#include "sim/system.hh"
#include "mem/functional_memory.hh"
#include "workload/profile.hh"
#include "workload/synthetic.hh"

namespace emc
{
namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

DynUop
sampleUop(int i)
{
    DynUop d;
    d.uop.op = (i % 3) ? Opcode::kAdd : Opcode::kLoad;
    d.uop.dst = static_cast<std::uint8_t>(i % 14);
    d.uop.src1 = static_cast<std::uint8_t>((i + 1) % 14);
    d.uop.src2 = (i % 5) ? kNoReg : static_cast<std::uint8_t>(i % 7);
    d.uop.imm = i * 123456789LL - 42;
    d.uop.pc = 0x400000 + i * 4;
    d.result = 0xdeadbeef00ull + i;
    d.vaddr = 0x1000 + i * 64;
    d.mem_value = 0xfeedface00ull + i;
    d.taken = (i % 2) == 0;
    d.mispredicted = (i % 7) == 0;
    return d;
}

TEST(TraceIoTest, RoundTripPreservesEveryField)
{
    const std::string path = tmpPath("roundtrip.emct");
    {
        TraceWriter w(path);
        for (int i = 0; i < 100; ++i)
            w.append(sampleUop(i));
        w.close();
    }
    FileTrace t(path);
    EXPECT_EQ(t.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        DynUop d;
        ASSERT_TRUE(t.next(d)) << i;
        const DynUop ref = sampleUop(i);
        EXPECT_EQ(d.uop.op, ref.uop.op);
        EXPECT_EQ(d.uop.dst, ref.uop.dst);
        EXPECT_EQ(d.uop.src1, ref.uop.src1);
        EXPECT_EQ(d.uop.src2, ref.uop.src2);
        EXPECT_EQ(d.uop.imm, ref.uop.imm);
        EXPECT_EQ(d.uop.pc, ref.uop.pc);
        EXPECT_EQ(d.result, ref.result);
        EXPECT_EQ(d.vaddr, ref.vaddr);
        EXPECT_EQ(d.mem_value, ref.mem_value);
        EXPECT_EQ(d.taken, ref.taken);
        EXPECT_EQ(d.mispredicted, ref.mispredicted);
    }
    DynUop d;
    EXPECT_FALSE(t.next(d));
}

TEST(TraceIoTest, LoopModeWraps)
{
    const std::string path = tmpPath("loop.emct");
    {
        TraceWriter w(path);
        for (int i = 0; i < 5; ++i)
            w.append(sampleUop(i));
    }
    FileTrace t(path, true);
    DynUop d;
    for (int i = 0; i < 17; ++i)
        ASSERT_TRUE(t.next(d));
    EXPECT_EQ(t.produced(), 17u);
}

TEST(TraceIoTest, CapturedGeneratorReplaysIdentically)
{
    const std::string path = tmpPath("capture.emct");
    FunctionalMemory mem;
    SyntheticProgram gen(profileByName("mcf"), mem, 5);
    {
        CapturingTrace cap(&gen, path);
        DynUop d;
        for (int i = 0; i < 2000; ++i)
            ASSERT_TRUE(cap.next(d));
        cap.finish();
    }
    // Fresh generator with the same seed == the captured stream.
    FunctionalMemory mem2;
    SyntheticProgram gen2(profileByName("mcf"), mem2, 5);
    FileTrace t(path);
    for (int i = 0; i < 2000; ++i) {
        DynUop a, b;
        ASSERT_TRUE(t.next(a));
        ASSERT_TRUE(gen2.next(b));
        EXPECT_EQ(a.vaddr, b.vaddr);
        EXPECT_EQ(a.result, b.result);
        EXPECT_EQ(static_cast<int>(a.uop.op),
                  static_cast<int>(b.uop.op));
    }
}

// ---------------------------------------------------------------
// Chain wire codec
// ---------------------------------------------------------------

ChainRequest
buildTestChain()
{
    ChainRequest c;
    c.id = 42;
    c.core = 2;
    c.source_paddr_line = 0x7fc0;
    c.source_value = 0xabcdef;

    ChainUop src;
    src.d.uop.op = Opcode::kLoad;
    src.d.uop.dst = 1;
    src.d.uop.src1 = 1;
    src.d.vaddr = 0x7fc8;
    src.d.mem_value = 0xabcdef;
    src.is_source = true;
    src.epr_dst = 0;
    src.rob_seq = 100;
    c.uops.push_back(src);
    c.source_epr = 0;

    ChainUop add;
    add.d.uop.op = Opcode::kAdd;
    add.d.uop.dst = 2;
    add.d.uop.src1 = 1;
    add.d.uop.imm = 0x18;
    add.epr_dst = 1;
    add.epr_src1 = 0;
    add.rob_seq = 101;
    c.uops.push_back(add);

    ChainUop mix;
    mix.d.uop.op = Opcode::kXor;
    mix.d.uop.dst = 3;
    mix.d.uop.src1 = 2;
    mix.d.uop.src2 = 4;
    mix.epr_dst = 2;
    mix.epr_src1 = 1;
    mix.src2_live_in = true;
    mix.src2_val = 0x123456789abcdef0ull;
    mix.rob_seq = 102;
    c.uops.push_back(mix);
    c.live_in_count = 1;

    ChainUop wide;
    wide.d.uop.op = Opcode::kMov;
    wide.d.uop.dst = 5;
    wide.d.uop.imm = 0x40000000;  // does not fit 16 bits
    wide.epr_dst = 3;
    wide.rob_seq = 103;
    c.uops.push_back(wide);

    ChainUop ld;
    ld.d.uop.op = Opcode::kLoad;
    ld.d.uop.dst = 6;
    ld.d.uop.src1 = 2;
    ld.d.uop.imm = -8;
    ld.d.vaddr = 0xbeef00;
    ld.epr_dst = 4;
    ld.epr_src1 = 1;
    ld.rob_seq = 104;
    c.uops.push_back(ld);

    ChainUop st;
    st.d.uop.op = Opcode::kStore;
    st.d.uop.src1 = 2;
    st.d.uop.src2 = 6;
    st.epr_src1 = 1;
    st.epr_src2 = 4;
    st.is_spill_store = true;
    st.d.taken = false;
    st.rob_seq = 105;
    c.uops.push_back(st);

    ChainUop br;
    br.d.uop.op = Opcode::kBranch;
    br.d.uop.src1 = 2;
    br.epr_src1 = 1;
    br.d.taken = true;
    br.rob_seq = 106;
    c.uops.push_back(br);
    return c;
}

TEST(ChainCodecTest, SixBytesPerUop)
{
    const ChainRequest c = buildTestChain();
    EncodedChain enc;
    ASSERT_TRUE(encodeChain(c, enc));
    EXPECT_EQ(enc.uop_bytes.size(), 6 * c.uops.size());
    // One captured live-in plus one wide immediate.
    EXPECT_EQ(enc.live_ins.size(), 2u);
    EXPECT_EQ(enc.wireBytes(), 6 * c.uops.size() + 16);
}

TEST(ChainCodecTest, RoundTripPreservesExecutableFields)
{
    const ChainRequest c = buildTestChain();
    EncodedChain enc;
    ASSERT_TRUE(encodeChain(c, enc));
    const ChainRequest d = decodeChain(enc);

    ASSERT_EQ(d.uops.size(), c.uops.size());
    EXPECT_EQ(d.id, c.id);
    EXPECT_EQ(d.core, c.core);
    EXPECT_EQ(d.source_paddr_line, c.source_paddr_line);
    EXPECT_EQ(d.source_epr, c.source_epr);
    EXPECT_EQ(d.live_in_count, c.live_in_count + 0u);
    for (std::size_t i = 0; i < c.uops.size(); ++i) {
        const ChainUop &a = c.uops[i];
        const ChainUop &b = d.uops[i];
        EXPECT_EQ(b.d.uop.op, a.d.uop.op) << i;
        EXPECT_EQ(b.d.uop.imm, a.d.uop.imm) << i;
        EXPECT_EQ(b.epr_dst, a.epr_dst) << i;
        EXPECT_EQ(b.epr_src1, a.epr_src1) << i;
        EXPECT_EQ(b.epr_src2, a.epr_src2) << i;
        EXPECT_EQ(b.src1_live_in, a.src1_live_in) << i;
        EXPECT_EQ(b.src2_live_in, a.src2_live_in) << i;
        if (a.src2_live_in)
            EXPECT_EQ(b.src2_val, a.src2_val) << i;
        EXPECT_EQ(b.is_source, a.is_source) << i;
        EXPECT_EQ(b.is_spill_store, a.is_spill_store) << i;
        EXPECT_EQ(b.d.taken, a.d.taken) << i;
        EXPECT_EQ(b.rob_seq, a.rob_seq) << i;
    }
}

TEST(ChainCodecTest, NegativeImmediateInline)
{
    ChainRequest c = buildTestChain();
    EncodedChain enc;
    ASSERT_TRUE(encodeChain(c, enc));
    const ChainRequest d = decodeChain(enc);
    EXPECT_EQ(d.uops[4].d.uop.imm, -8);
}

TEST(ChainCodecTest, GeneratedChainsAlwaysEncodable)
{
    // Every chain the core generates for real workloads must fit the
    // paper's wire format (this is asserted in the System too; here
    // it is exercised directly via a quick simulation).
    SystemConfig cfg;
    cfg.emc_enabled = true;
    cfg.target_uops = 4000;
    cfg.max_cycles = 4'000'000;
    System sys(cfg, {"mcf", "omnetpp", "mcf", "omnetpp"});
    sys.run();  // emc_assert inside offloadChain would panic on failure
    EXPECT_GT(sys.dump().get("emc.chains_accepted"), 0.0);
}

} // namespace
} // namespace emc
