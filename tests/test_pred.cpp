/**
 * @file
 * Unit tests for the pluggable off-chip prediction subsystem
 * (src/pred, DESIGN.md §13): the table engine's bit-exact lift of the
 * paper's 3-bit PC-hashed logic, predict() retry purity, the
 * accuracy/coverage classification counters, perceptron learning and
 * its confidence-band training filter, warmTrain() state equivalence,
 * checkpoint round-trips that resume to identical predictions, the
 * factory, and the Pickle cross-core prefetcher built on top.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ckpt/serial.hh"
#include "pred/perceptron.hh"
#include "pred/pickle.hh"
#include "pred/predictor.hh"
#include "pred/table.hh"

namespace emc::pred
{
namespace
{

PredFeatures
feat(CoreId core, Addr pc, Addr line, Addr vaddr = kNoAddr)
{
    PredFeatures f;
    f.core = core;
    f.pc = pc;
    f.line = line;
    f.vaddr = vaddr;
    return f;
}

// --------------------------------------------------------------------
// Table engine: the paper's 3-bit saturating-counter logic, bit-exact
// --------------------------------------------------------------------

TEST(TablePredictorTest, SaturatesAtSevenAndFloorsAtZero)
{
    PredConfig cfg;  // kTable, 1024 entries, threshold 3
    TablePredictor p(cfg, 1);
    const Addr pc = 0x401000;

    for (int i = 0; i < 10; ++i) {
        PredFeatures f = feat(0, pc, 0x1000 + 64 * i);
        p.train(f, /*was_offchip=*/true);
    }
    EXPECT_EQ(p.counter(0, pc), 7u);  // saturated, not 10

    for (int i = 0; i < 20; ++i) {
        PredFeatures f = feat(0, pc, 0x1000 + 64 * i);
        p.train(f, /*was_offchip=*/false);
    }
    EXPECT_EQ(p.counter(0, pc), 0u);  // floored, not negative
}

TEST(TablePredictorTest, PredictsOffchipOnlyAboveThreshold)
{
    PredConfig cfg;
    TablePredictor p(cfg, 1);
    const Addr pc = 0x401000;

    // Counter 0..3: at or below the threshold, predicted on-chip.
    for (int i = 0; i < 4; ++i) {
        PredFeatures f = feat(0, pc, 0x1000);
        EXPECT_FALSE(p.predict(f)) << "counter " << i;
        p.train(f, true);
    }
    // Counter 4 > 3: off-chip from here on.
    PredFeatures f = feat(0, pc, 0x1000);
    EXPECT_EQ(p.counter(0, pc), 4u);
    EXPECT_TRUE(p.predict(f));
}

TEST(TablePredictorTest, CoresTrainIndependently)
{
    PredConfig cfg;
    TablePredictor p(cfg, 2);
    const Addr pc = 0x88;
    for (int i = 0; i < 5; ++i) {
        PredFeatures f = feat(0, pc, 0x2000);
        p.train(f, true);
    }
    EXPECT_EQ(p.counter(0, pc), 5u);
    EXPECT_EQ(p.counter(1, pc), 0u);
    PredFeatures f0 = feat(0, pc, 0x2000);
    PredFeatures f1 = feat(1, pc, 0x2000);
    EXPECT_TRUE(p.predict(f0));
    EXPECT_FALSE(p.predict(f1));
}

// --------------------------------------------------------------------
// Shared base-class contract
// --------------------------------------------------------------------

TEST(OffchipPredictorTest, PredictIsRetrySafe)
{
    PredConfig cfg;
    TablePredictor p(cfg, 1);
    PredFeatures t = feat(0, 0x10, 0x3000);
    p.train(t, true);

    // A caller blocked on backpressure re-predicts every cycle: the
    // answer and the engine tables must not move, only the counters.
    const std::uint8_t ctr_before = p.counter(0, 0x10);
    for (int i = 0; i < 8; ++i) {
        PredFeatures f = feat(0, 0x10, 0x3000);
        EXPECT_FALSE(p.predict(f));
    }
    EXPECT_EQ(p.counter(0, 0x10), ctr_before);
    EXPECT_EQ(p.stats().predictions, 8u);
    EXPECT_EQ(p.stats().predicted_offchip, 0u);

    // Same purity for the perceptron's weights.
    PerceptronPredictor q(PredConfig::perceptron(), 1);
    PredFeatures qt = feat(0, 0x10, 0x3000);
    q.train(qt, true);
    PredFeatures probe = feat(0, 0x10, 0x3000);
    q.predict(probe);
    const int sum_before = q.weightSum(probe);
    for (int i = 0; i < 8; ++i) {
        PredFeatures f = feat(0, 0x10, 0x3000);
        q.predict(f);
    }
    EXPECT_EQ(q.weightSum(probe), sum_before);
}

TEST(OffchipPredictorTest, TrainClassifiesAgainstCurrentOpinion)
{
    PredConfig cfg;
    TablePredictor p(cfg, 1);
    const Addr pc = 0x20;

    // Counter at 0 predicts on-chip; four off-chip outcomes are all
    // false negatives while the counter climbs 0->4.
    for (int i = 0; i < 4; ++i) {
        PredFeatures f = feat(0, pc, 0x4000);
        p.train(f, true);
    }
    EXPECT_EQ(p.stats().false_neg, 4u);

    // Counter 4 predicts off-chip: one true positive, then a hit
    // outcome is a false positive.
    PredFeatures f = feat(0, pc, 0x4000);
    p.train(f, true);
    EXPECT_EQ(p.stats().true_pos, 1u);
    f = feat(0, pc, 0x4000);
    p.train(f, false);
    EXPECT_EQ(p.stats().false_pos, 1u);

    // Back at 4 after the decrement... still off-chip; drive it down
    // to 3 and below and hits become true negatives.
    f = feat(0, pc, 0x4000);
    p.train(f, false);  // 4 -> 3, classified false_pos (ctr was 4)
    f = feat(0, pc, 0x4000);
    p.train(f, false);  // ctr 3 predicts on-chip: true_neg
    EXPECT_EQ(p.stats().true_neg, 1u);
    EXPECT_EQ(p.stats().trainings, 8u);

    const PredStats &s = p.stats();
    EXPECT_DOUBLE_EQ(s.accuracy(), 2.0 / 8.0);   // 1 TP + 1 TN of 8
    EXPECT_DOUBLE_EQ(s.coverage(), 1.0 / 5.0);   // 1 TP of 5 misses
}

TEST(OffchipPredictorTest, DerivedFeaturesTrackPagesAndHistory)
{
    PredConfig cfg;
    TablePredictor p(cfg, 1);

    PredFeatures f = feat(0, 0x30, 0x10000);
    p.predict(f);
    EXPECT_TRUE(f.first_access);  // nothing trained yet

    PredFeatures t = feat(0, 0x30, 0x10040);  // same 4 KB page
    p.train(t, true);

    PredFeatures g = feat(0, 0x30, 0x10080);
    p.predict(g);
    EXPECT_FALSE(g.first_access);  // page now in the filter
    EXPECT_NE(g.hist_hash, f.hist_hash);  // history ring advanced
}

TEST(OffchipPredictorTest, WarmTrainMatchesTrainWithoutStats)
{
    const PredConfig cfg = PredConfig::perceptron();
    PerceptronPredictor hot(cfg, 1);
    PerceptronPredictor warm(cfg, 1);

    // Identical mixed stream through train() and warmTrain().
    for (int i = 0; i < 200; ++i) {
        const Addr pc = 0x100 + (i % 7) * 8;
        const Addr line = 0x20000 + static_cast<Addr>(i) * 64;
        const bool miss = (i % 3) != 0;
        PredFeatures a = feat(0, pc, line);
        PredFeatures b = feat(0, pc, line);
        hot.train(a, miss);
        warm.warmTrain(b, miss);
    }
    EXPECT_EQ(warm.stats().trainings, 0u);  // warming contract
    EXPECT_GT(hot.stats().trainings, 0u);

    // Byte-identical predictor state => identical predictions.
    for (int i = 0; i < 50; ++i) {
        PredFeatures a = feat(0, 0x100 + (i % 7) * 8, 0x90000 + i * 64);
        PredFeatures b = a;
        EXPECT_EQ(hot.predict(a), warm.predict(b)) << "probe " << i;
    }
}

TEST(OffchipPredictorTest, OutOfRangeCoreAborts)
{
    PredConfig cfg;
    TablePredictor p(cfg, 2);
    PredFeatures f = feat(2, 0x10, 0x1000);  // one past the last core
    EXPECT_DEATH(p.predict(f), "core id out of range");
}

// --------------------------------------------------------------------
// Perceptron engine
// --------------------------------------------------------------------

TEST(PerceptronPredictorTest, LearnsAnOffchipStreamAndUnlearnsIt)
{
    PerceptronPredictor p(PredConfig::perceptron(), 1);
    const Addr pc = 0x700;

    PredFeatures probe = feat(0, pc, 0x50000);
    EXPECT_FALSE(p.predict(probe));  // zero weights: on-chip

    for (int i = 0; i < 30; ++i) {
        PredFeatures f = feat(0, pc, 0x50000 + i * 64);
        p.train(f, true);
    }
    probe = feat(0, pc, 0x50000 + 30 * 64);
    EXPECT_TRUE(p.predict(probe));

    for (int i = 0; i < 60; ++i) {
        PredFeatures f = feat(0, pc, 0x50000 + i * 64);
        p.train(f, false);
    }
    probe = feat(0, pc, 0x50000);
    EXPECT_FALSE(p.predict(probe));
}

TEST(PerceptronPredictorTest, ConfidenceBandStopsTraining)
{
    PredConfig cfg = PredConfig::perceptron();
    cfg.perc_training_threshold = 4;
    PerceptronPredictor p(cfg, 1);

    // Hammer one bundle with the same outcome: weights climb only
    // until the sum clears the confidence band, then freeze.
    PredFeatures probe = feat(0, 0x800, 0x60000);
    p.predict(probe);  // derive hist/first bits for weightSum
    int last = p.weightSum(probe);
    int frozen_at = -1;
    for (int i = 0; i < 40; ++i) {
        PredFeatures f = feat(0, 0x800, 0x60000);
        p.train(f, true);
        PredFeatures q = feat(0, 0x800, 0x60000);
        p.predict(q);
        const int sum = p.weightSum(q);
        if (sum == last && frozen_at < 0)
            frozen_at = i;
        last = sum;
    }
    ASSERT_GE(frozen_at, 0) << "weights never froze";
    EXPECT_GT(last, cfg.perc_activation + cfg.perc_training_threshold);
    // Well below the per-weight saturation ceiling: the band, not the
    // clamp, stopped training.
    EXPECT_LT(last, 5 * cfg.perc_weight_max);
}

TEST(PerceptronPredictorTest, WeightsSaturateAtConfiguredBounds)
{
    PredConfig cfg = PredConfig::perceptron();
    cfg.perc_weight_max = 3;
    cfg.perc_weight_min = -3;
    cfg.perc_training_threshold = 1000;  // band never stops training
    PerceptronPredictor p(cfg, 1);

    for (int i = 0; i < 50; ++i) {
        PredFeatures f = feat(0, 0x900, 0x70000);
        p.train(f, true);
    }
    PredFeatures probe = feat(0, 0x900, 0x70000);
    p.predict(probe);
    EXPECT_LE(p.weightSum(probe), 5 * 3);  // five features, each <= 3
}

// --------------------------------------------------------------------
// Checkpoint round-trips (satellite: save -> restore -> identical
// subsequent predictions)
// --------------------------------------------------------------------

/** Train @p n mixed events into @p p (deterministic stream). */
void
trainStream(OffchipPredictor &p, int n, unsigned cores)
{
    for (int i = 0; i < n; ++i) {
        PredFeatures f = feat(static_cast<CoreId>(i % cores),
                              0x1000 + (i % 11) * 4,
                              0x80000 + static_cast<Addr>(i) * 64,
                              (i % 2) ? 0x80000 + i * 64 + 8 : kNoAddr);
        p.train(f, (i % 5) < 3);
    }
}

/** Round-trip @p a into @p b and require identical behavior after. */
void
expectResumeIdentical(OffchipPredictor &a, OffchipPredictor &b,
                      unsigned cores)
{
    ckpt::Ar saver = ckpt::Ar::saver();
    a.ser(saver);
    ckpt::Ar loader = ckpt::Ar::loader(saver.takeBytes());
    b.ser(loader);
    EXPECT_TRUE(loader.exhausted());

    // Same continued train/predict stream through both: every
    // prediction and the final counters must agree.
    for (int i = 0; i < 300; ++i) {
        const CoreId core = static_cast<CoreId>(i % cores);
        const Addr pc = 0x1000 + (i % 13) * 4;
        const Addr line = 0xc0000 + static_cast<Addr>(i) * 64;
        PredFeatures fa = feat(core, pc, line);
        PredFeatures fb = feat(core, pc, line);
        ASSERT_EQ(a.predict(fa), b.predict(fb)) << "probe " << i;
        fa = feat(core, pc, line);
        fb = feat(core, pc, line);
        a.train(fa, (i % 4) == 0);
        b.train(fb, (i % 4) == 0);
    }
    EXPECT_EQ(a.stats().true_pos, b.stats().true_pos);
    EXPECT_EQ(a.stats().false_pos, b.stats().false_pos);
    EXPECT_EQ(a.stats().true_neg, b.stats().true_neg);
    EXPECT_EQ(a.stats().false_neg, b.stats().false_neg);
}

TEST(PredCkptTest, TableRoundTripResumesIdentically)
{
    PredConfig cfg;
    TablePredictor a(cfg, 2);
    trainStream(a, 500, 2);
    TablePredictor b(cfg, 2);
    expectResumeIdentical(a, b, 2);
    EXPECT_EQ(a.counter(0, 0x1000), b.counter(0, 0x1000));
}

TEST(PredCkptTest, PerceptronRoundTripResumesIdentically)
{
    const PredConfig cfg = PredConfig::perceptron();
    PerceptronPredictor a(cfg, 2);
    trainStream(a, 500, 2);
    PerceptronPredictor b(cfg, 2);
    expectResumeIdentical(a, b, 2);
    PredFeatures fa = feat(0, 0x1000, 0xd0000);
    PredFeatures fb = fa;
    a.predict(fa);
    b.predict(fb);
    EXPECT_EQ(a.weightSum(fa), b.weightSum(fb));
}

TEST(PredCkptTest, StatsSurviveTheRoundTrip)
{
    PredConfig cfg;
    TablePredictor a(cfg, 1);
    trainStream(a, 100, 1);
    ckpt::Ar saver = ckpt::Ar::saver();
    a.ser(saver);
    TablePredictor b(cfg, 1);
    ckpt::Ar loader = ckpt::Ar::loader(saver.takeBytes());
    b.ser(loader);
    EXPECT_EQ(a.stats().trainings, b.stats().trainings);
    EXPECT_EQ(a.stats().predictions, b.stats().predictions);
    EXPECT_DOUBLE_EQ(a.stats().accuracy(), b.stats().accuracy());
}

// --------------------------------------------------------------------
// Factory
// --------------------------------------------------------------------

TEST(PredFactoryTest, BuildsTheSelectedEngine)
{
    PredConfig t;
    auto table = makePredictor(t, 4);
    EXPECT_EQ(table->kind(), PredKind::kTable);
    EXPECT_STREQ(table->name(), "table");

    auto perc = makePredictor(PredConfig::perceptron(), 4);
    EXPECT_EQ(perc->kind(), PredKind::kPerceptron);
    EXPECT_STREQ(perc->name(), "perceptron");

    EXPECT_STREQ(predKindName(PredKind::kTable), "table");
    EXPECT_STREQ(predKindName(PredKind::kPerceptron), "perceptron");
}

// --------------------------------------------------------------------
// Pickle cross-core prefetcher
// --------------------------------------------------------------------

TEST(PicklePrefetcherTest, PushesRecordedSuccessorsForTheirCores)
{
    // Table engine for a deterministic warm-up: four miss trainings
    // flip a PC to predicted-off-chip.
    PredConfig cfg;  // kTable
    PicklePrefetcher p(/*num_cores=*/2, cfg);
    const Addr pc = 0x500;
    const Addr line_a = 0x100000;
    const Addr line_b = 0x200000;

    // Warm the internal predictor's per-core tables to counter 3:
    // still at the threshold, so nothing is recorded or emitted yet.
    for (int i = 0; i < 3; ++i) {
        p.observe(0, line_a, pc, /*miss=*/true, /*degree=*/4);
        p.observe(1, line_b, pc, /*miss=*/true, /*degree=*/4);
    }
    EXPECT_EQ(p.queued(), 0u);

    // Counter 4: A joins the off-chip stream (no successors yet).
    p.observe(0, line_a, pc, true, 4);
    EXPECT_EQ(p.queued(), 0u);

    // Core 1 touches B right after A: successor A->B recorded.
    p.observe(1, line_b, pc, true, 4);
    EXPECT_EQ(p.queued(), 0u);  // B has no successors yet

    // A again: push B on behalf of core 1 (cross-core), then B's
    // recorded successor A for core 0 — bounded by the degree.
    p.observe(0, line_a, pc, true, 2);
    PrefetchCandidate c;
    ASSERT_TRUE(p.nextCandidate(c));
    EXPECT_EQ(c.line_addr, line_b);
    EXPECT_EQ(c.core, 1u);
    ASSERT_TRUE(p.nextCandidate(c));
    EXPECT_EQ(c.line_addr, line_a);
    EXPECT_EQ(c.core, 0u);
    EXPECT_FALSE(p.nextCandidate(c));

    EXPECT_STREQ(p.name(), "pickle");
    EXPECT_GT(p.predictor().stats().trainings, 0u);
}

TEST(PicklePrefetcherTest, CkptRoundTripPreservesTablesAndQueue)
{
    PredConfig cfg;
    PicklePrefetcher a(1, cfg);
    const Addr pc = 0x600;
    for (int i = 0; i < 6; ++i)
        a.observe(0, 0x300000 + static_cast<Addr>(i % 3) * 0x1000,
                  pc, true, 2);

    ckpt::Ar saver = ckpt::Ar::saver();
    a.ckptSer(saver);
    PicklePrefetcher b(1, cfg);
    ckpt::Ar loader = ckpt::Ar::loader(saver.takeBytes());
    b.ckptSer(loader);
    EXPECT_TRUE(loader.exhausted());
    EXPECT_EQ(a.queued(), b.queued());

    // Identical continued streams stay in lockstep.
    for (int i = 0; i < 10; ++i) {
        const Addr line = 0x300000 + static_cast<Addr>(i % 3) * 0x1000;
        a.observe(0, line, pc, true, 2);
        b.observe(0, line, pc, true, 2);
    }
    PrefetchCandidate ca, cb;
    while (a.nextCandidate(ca)) {
        ASSERT_TRUE(b.nextCandidate(cb));
        EXPECT_EQ(ca.line_addr, cb.line_addr);
        EXPECT_EQ(ca.core, cb.core);
    }
    EXPECT_FALSE(b.nextCandidate(cb));
}

} // namespace
} // namespace emc::pred
