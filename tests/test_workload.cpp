/**
 * @file
 * Tests for the synthetic workload generator: profile registry,
 * functional-oracle consistency, pointer-ring structure, determinism
 * and kernel character (dependent-miss structure for chase-heavy
 * profiles, independence for streaming profiles).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/functional_memory.hh"
#include "workload/profile.hh"
#include "workload/synthetic.hh"

namespace emc
{
namespace
{

TEST(ProfileTest, RegistryComplete)
{
    // Paper Table 2: 8 high + 21 low intensity benchmarks, plus the
    // five irregular-kernel profiles (bfs/pagerank/hashjoin/btree/
    // embed; DESIGN.md §11).
    EXPECT_EQ(highIntensityNames().size(), 8u);
    EXPECT_EQ(lowIntensityNames().size(), 21u);
    EXPECT_EQ(irregularNames().size(), 5u);
    EXPECT_EQ(allProfiles().size(), 34u);
    for (const auto &name : highIntensityNames())
        EXPECT_TRUE(profileByName(name).high_intensity) << name;
    for (const auto &name : lowIntensityNames())
        EXPECT_FALSE(profileByName(name).high_intensity) << name;
    for (const auto &name : irregularNames())
        EXPECT_NO_THROW(profileByName(name)) << name;
}

TEST(ProfileTest, QuadWorkloadsMatchTable3)
{
    const auto &w = quadWorkloads();
    ASSERT_EQ(w.size(), 10u);
    for (const auto &mix : w) {
        ASSERT_EQ(mix.size(), 4u);
        // Each benchmark appears only once per mix (paper Section 5).
        std::set<std::string> uniq(mix.begin(), mix.end());
        EXPECT_EQ(uniq.size(), 4u);
        for (const auto &b : mix)
            EXPECT_TRUE(profileByName(b).high_intensity) << b;
    }
    EXPECT_EQ(quadWorkloadName(0), "H1");
    EXPECT_EQ(quadWorkloadName(9), "H10");
    // Spot-check H4 and H5 against the paper's table.
    EXPECT_EQ(w[3][0], "mcf");
    EXPECT_EQ(w[4], (std::vector<std::string>{"lbm", "mcf", "libquantum",
                                              "bwaves"}));
}

TEST(ProfileTest, McfIsChaseHeavy)
{
    const BenchmarkProfile &mcf = profileByName("mcf");
    EXPECT_GT(mcf.mix_chase, 0.5);
    EXPECT_GT(mcf.chase_streams, 1u);
    const BenchmarkProfile &lbm = profileByName("lbm");
    EXPECT_DOUBLE_EQ(lbm.mix_chase, 0.0);
}

TEST(SyntheticTest, Deterministic)
{
    FunctionalMemory m1, m2;
    SyntheticProgram a(profileByName("mcf"), m1, 42);
    SyntheticProgram b(profileByName("mcf"), m2, 42);
    for (int i = 0; i < 5000; ++i) {
        DynUop ua, ub;
        ASSERT_TRUE(a.next(ua));
        ASSERT_TRUE(b.next(ub));
        EXPECT_EQ(ua.uop.op, ub.uop.op);
        EXPECT_EQ(ua.result, ub.result);
        EXPECT_EQ(ua.vaddr, ub.vaddr);
    }
}

TEST(SyntheticTest, SeedsDiffer)
{
    FunctionalMemory m1, m2;
    SyntheticProgram a(profileByName("mcf"), m1, 1);
    SyntheticProgram b(profileByName("mcf"), m2, 2);
    int diff = 0;
    for (int i = 0; i < 2000; ++i) {
        DynUop ua, ub;
        a.next(ua);
        b.next(ub);
        diff += (ua.vaddr != ub.vaddr) ? 1 : 0;
    }
    EXPECT_GT(diff, 0);
}

/**
 * Replay the trace through an architectural interpreter and check
 * every oracle annotation — the ALU results, addresses and branch
 * directions must be self-consistent.
 */
TEST(SyntheticTest, OracleSelfConsistent)
{
    for (const char *name : {"mcf", "libquantum", "soplex", "gcc",
                             "bfs", "pagerank", "hashjoin", "btree",
                             "embed"}) {
        FunctionalMemory mem;
        SyntheticProgram prog(profileByName(name), mem, 7);
        std::uint64_t regs[kArchRegs] = {};
        for (int i = 0; i < 20000; ++i) {
            DynUop d;
            ASSERT_TRUE(prog.next(d));
            const std::uint64_t a =
                d.uop.hasSrc1() ? regs[d.uop.src1] : 0;
            const std::uint64_t b =
                d.uop.hasSrc2() ? regs[d.uop.src2] : 0;
            switch (d.uop.op) {
              case Opcode::kLoad:
                ASSERT_EQ(effectiveAddr(a, d.uop.imm), d.vaddr)
                    << name << " uop " << i;
                regs[d.uop.dst] = d.mem_value;
                ASSERT_EQ(d.result, d.mem_value);
                break;
              case Opcode::kStore:
                ASSERT_EQ(effectiveAddr(a, d.uop.imm), d.vaddr);
                ASSERT_EQ(b, d.mem_value);
                break;
              case Opcode::kBranch:
                ASSERT_EQ(evalBranch(a), d.taken);
                break;
              default:
                if (d.uop.hasDst()) {
                    ASSERT_EQ(evalAlu(d.uop.op, a, b, d.uop.imm),
                              d.result)
                        << name << " uop " << i << " "
                        << d.uop.toString();
                    regs[d.uop.dst] = d.result;
                }
                break;
            }
        }
    }
}

TEST(SyntheticTest, ChaseRingIsCyclicPermutation)
{
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("mcf");
    p.ws_bytes = 64 * 256;  // 256 nodes
    SyntheticProgram prog(p, mem, 3);
    // Follow next pointers from the first node: must visit every node
    // exactly once before returning.
    const Addr base = 0x10000000;
    Addr cur = mem.read(base);  // next of node at slot 0... start anywhere
    (void)cur;
    Addr start = base;
    Addr node = start;
    std::set<Addr> seen;
    for (int i = 0; i < 256; ++i) {
        ASSERT_TRUE(seen.insert(node).second) << "premature cycle";
        node = mem.read(node);
        ASSERT_GE(node, base);
        ASSERT_LT(node, base + 256 * kLineBytes);
        ASSERT_EQ(node % kLineBytes, 0u);
    }
    EXPECT_EQ(node, start);  // full cycle
    EXPECT_EQ(seen.size(), 256u);
}

TEST(SyntheticTest, ChasePageLocality)
{
    // Consecutive hops must revisit a bounded set of pages (the
    // block-local shuffle; see buildChaseRing).
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("mcf");
    p.ws_bytes = 1u << 22;
    SyntheticProgram prog(p, mem, 5);
    Addr node = 0x10000000;
    node = mem.read(node);
    std::set<Addr> pages;
    for (int hop = 0; hop < 300; ++hop) {
        pages.insert(pageNum(node));
        node = mem.read(node);
    }
    // 300 hops with 512-node blocks (8 pages each) touch at most a
    // handful of blocks.
    EXPECT_LE(pages.size(), 24u);
}

TEST(SyntheticTest, UopMixMatchesProfileClass)
{
    // lbm should emit mostly loads/stores over sequential lines;
    // a compute profile should be ALU-dominated.
    FunctionalMemory m1;
    SyntheticProgram lbm(profileByName("lbm"), m1, 11);
    std::map<Opcode, int> mix;
    for (int i = 0; i < 20000; ++i) {
        DynUop d;
        lbm.next(d);
        ++mix[d.uop.op];
    }
    EXPECT_GT(mix[Opcode::kLoad], 2000);
    EXPECT_GT(mix[Opcode::kStore], 500);

    FunctionalMemory m2;
    SyntheticProgram gamess(profileByName("gamess"), m2, 11);
    int alu = 0, memops = 0;
    for (int i = 0; i < 20000; ++i) {
        DynUop d;
        gamess.next(d);
        if (isMem(d.uop.op))
            ++memops;
        else if (!isBranch(d.uop.op))
            ++alu;
    }
    EXPECT_GT(alu, memops * 3);
}

TEST(SyntheticTest, FpProfilesEmitFpUops)
{
    FunctionalMemory mem;
    SyntheticProgram milc(profileByName("milc"), mem, 13);
    int fp = 0;
    for (int i = 0; i < 20000; ++i) {
        DynUop d;
        milc.next(d);
        if (d.uop.op == Opcode::kFpAdd || d.uop.op == Opcode::kFpMul)
            ++fp;
    }
    EXPECT_GT(fp, 500);
}

TEST(SyntheticTest, BranchesCarryMispredictFlags)
{
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("mcf");
    SyntheticProgram prog(p, mem, 17);
    int branches = 0, mispredicts = 0;
    for (int i = 0; i < 50000; ++i) {
        DynUop d;
        prog.next(d);
        if (isBranch(d.uop.op)) {
            ++branches;
            mispredicts += d.mispredicted ? 1 : 0;
        }
    }
    ASSERT_GT(branches, 500);
    const double rate = static_cast<double>(mispredicts) / branches;
    EXPECT_NEAR(rate, p.mispredict_rate, 0.03);
}

TEST(SyntheticTest, MultiStreamChaseUsesDistinctPointers)
{
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("mcf");
    ASSERT_GE(p.chase_streams, 2u);
    SyntheticProgram prog(p, mem, 19);
    std::set<std::uint8_t> chase_regs;
    for (int i = 0; i < 20000; ++i) {
        DynUop d;
        prog.next(d);
        // Chase hops are loads of the form  ptr = [ptr].
        if (isLoad(d.uop.op) && d.uop.dst == d.uop.src1)
            chase_regs.insert(d.uop.dst);
    }
    EXPECT_GE(chase_regs.size(), p.chase_streams);
}

TEST(SyntheticTest, SpillFillPairsMatch)
{
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("mcf");
    p.spill_rate = 1.0;  // force spills
    p.mix_chase = 1.0;
    p.mix_random = 0;
    p.mix_compute = 0;
    SyntheticProgram prog(p, mem, 23);
    // Every store must be followed (within a few uops) by a load of
    // the same address with the same value.
    std::vector<DynUop> win;
    for (int i = 0; i < 5000; ++i) {
        DynUop d;
        prog.next(d);
        win.push_back(d);
    }
    int pairs = 0;
    for (std::size_t i = 0; i < win.size(); ++i) {
        if (!isStore(win[i].uop.op))
            continue;
        for (std::size_t j = i + 1; j < std::min(i + 4, win.size()); ++j) {
            if (isLoad(win[j].uop.op) && win[j].vaddr == win[i].vaddr) {
                EXPECT_EQ(win[j].mem_value, win[i].mem_value);
                ++pairs;
                break;
            }
        }
    }
    EXPECT_GT(pairs, 100);
}

// --------------------------------------------------------------------
// Irregular kernels (irregular.cc): structure + kernel character
// --------------------------------------------------------------------

TEST(IrregularTest, GraphRowsPointIntoEdgeRegion)
{
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("bfs");
    p.ws_bytes = 1u << 20;
    SyntheticProgram prog(p, mem, 29);
    // Every row entry must hold a valid edge-array address, and every
    // edge a valid vertex id.
    const unsigned deg = p.graph_degree;
    for (std::uint64_t v = 0; v < 64; ++v) {
        const Addr row = mem.read(0x50000000 + v * 8);
        ASSERT_GE(row, Addr(0x58000000));
        ASSERT_EQ((row - 0x58000000) % (deg * 8), 0u);
        for (unsigned e = 0; e < deg; ++e) {
            const std::uint64_t target = mem.read(row + e * 8);
            // Targets index the row array (power-of-two vertex count).
            ASSERT_EQ(mem.read(0x50000000 + target * 8) % 8, 0u);
        }
    }
}

TEST(IrregularTest, HashChainsAreCyclicAndLineAligned)
{
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("hashjoin");
    p.ws_bytes = 1u << 20;
    SyntheticProgram prog(p, mem, 31);
    const unsigned chain = p.hash_chain;
    for (std::uint64_t b = 0; b < 64; ++b) {
        const Addr head = mem.read(0x60000000 + b * 8);
        ASSERT_EQ(head % kLineBytes, 0u);
        Addr node = head;
        std::set<Addr> seen;
        for (unsigned n = 0; n < chain; ++n) {
            ASSERT_TRUE(seen.insert(node).second)
                << "premature cycle in bucket " << b;
            ASSERT_GE(node, Addr(0x68000000));
            ASSERT_EQ(node % kLineBytes, 0u);
            node = mem.read(node);
        }
        EXPECT_EQ(node, head) << "chain of bucket " << b
                              << " does not close";
    }
}

TEST(IrregularTest, EmbedIndexIsSkewedTowardHotRows)
{
    FunctionalMemory mem;
    BenchmarkProfile p = profileByName("embed");
    SyntheticProgram prog(p, mem, 37);
    // Count index entries landing in the hot prefix (1/64th of the
    // table): must be roughly gather_hot_frac of them.
    std::uint64_t rows = 0, entries = 0;
    {
        // Recover layout the same way buildEmbedTable does.
        const unsigned lines = p.gather_lines;
        std::uint64_t pw = 64;
        while (pw * 2 <= p.ws_bytes / (lines * kLineBytes)
               && pw < (1ull << 20))
            pw *= 2;
        rows = pw;
        entries = std::min<std::uint64_t>(
            1ull << 16, std::max<std::uint64_t>(64, rows / 4));
    }
    const Addr hot_end =
        0x78000000
        + std::max<std::uint64_t>(1, rows / 64) * p.gather_lines
              * kLineBytes;
    std::uint64_t hot = 0;
    for (std::uint64_t i = 0; i < entries; ++i) {
        const Addr row = mem.read(0x70000000 + i * 8);
        ASSERT_GE(row, Addr(0x78000000));
        if (row < hot_end)
            ++hot;
    }
    const double frac = static_cast<double>(hot) / entries;
    EXPECT_NEAR(frac, p.gather_hot_frac, 0.05);
}

TEST(IrregularTest, KernelsEmitDependentLoadChains)
{
    // Every irregular profile must emit load-to-load address
    // dependences (the dependent-miss pattern the EMC targets):
    // a load whose address register was produced by an earlier load.
    for (const auto &name : irregularNames()) {
        FunctionalMemory mem;
        SyntheticProgram prog(profileByName(name), mem, 41);
        std::uint8_t last_load_dst = kNoReg;
        int dependent = 0;
        for (int i = 0; i < 20000; ++i) {
            DynUop d;
            prog.next(d);
            if (!isLoad(d.uop.op))
                continue;
            if (d.uop.src1 == last_load_dst)
                ++dependent;
            last_load_dst = d.uop.dst;
        }
        EXPECT_GT(dependent, 500) << name;
    }
}

} // namespace
} // namespace emc
