/**
 * @file
 * Unit tests for src/common: saturating counters, RNG determinism,
 * stats primitives and address helpers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace emc
{
namespace
{

TEST(TypesTest, LineAlignment)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_EQ(lineNum(128), 2u);
}

TEST(TypesTest, PageAlignment)
{
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_EQ(pageNum(8192), 2u);
}

TEST(TypesTest, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(64), 6u);
}

TEST(SatCounterTest, SaturatesAtBounds)
{
    SatCounter c(3, 0);
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 7u);
}

TEST(SatCounterTest, TopTwoBitsSemanticsFor3Bits)
{
    // Paper Section 4.2: trigger when either of the top two bits of
    // the 3-bit counter is set, i.e. value >= 2.
    SatCounter c(3, 0);
    EXPECT_FALSE(c.topTwoBitsSet());
    c.increment();  // 1
    EXPECT_FALSE(c.topTwoBitsSet());
    c.increment();  // 2 = 0b010
    EXPECT_TRUE(c.topTwoBitsSet());
    c.increment();  // 3
    EXPECT_TRUE(c.topTwoBitsSet());
    c.increment();  // 4 = 0b100
    EXPECT_TRUE(c.topTwoBitsSet());
    c.reset(1);
    EXPECT_FALSE(c.topTwoBitsSet());
}

TEST(SatCounterTest, ThresholdTest)
{
    SatCounter c(3, 4);
    EXPECT_TRUE(c.aboveThreshold(3));
    EXPECT_FALSE(c.aboveThreshold(4));
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(RngTest, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(StatsTest, ScalarAccumulates)
{
    Scalar s;
    s.add();
    s.add(2.5);
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, AverageMean)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    EXPECT_DOUBLE_EQ(a.mean(), 15.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(StatsTest, HistogramBuckets)
{
    Histogram h(4, 10.0);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100);  // overflow
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(StatsTest, HistogramPercentile)
{
    Histogram h(10, 10.0);
    for (int i = 0; i < 100; ++i)
        h.sample(i);  // uniform over [0, 100)
    // Rank-k sample lands in bucket k/10; percentile reports its
    // midpoint.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 45.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.10), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 95.0);
}

TEST(StatsTest, HistogramPercentileEmpty)
{
    Histogram h(4, 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 0.0);
}

TEST(StatsTest, HistogramPercentileOverflow)
{
    Histogram h(4, 10.0);
    h.sample(5);
    h.sample(500);
    h.sample(700);  // two of three samples past the last bucket
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.maxSample(), 700.0);
    // Median rank falls in-range; tail ranks land in the overflow and
    // must report the recorded max, not clamp to the bucket range.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 700.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.34), 5.0);
}

TEST(StatsTest, HistogramResetClearsMax)
{
    Histogram h(4, 10.0);
    h.sample(900);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.maxSample(), 0.0);
    h.sample(15);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 15.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 15.0);
}

TEST(StatsTest, StatDumpRoundTrip)
{
    StatDump d;
    d.put("a.b", 1.5);
    EXPECT_TRUE(d.has("a.b"));
    EXPECT_DOUBLE_EQ(d.get("a.b"), 1.5);
    EXPECT_DOUBLE_EQ(d.get("missing", -1), -1.0);
    EXPECT_NE(d.format().find("a.b"), std::string::npos);
}

} // namespace
} // namespace emc
