/**
 * @file
 * Stress and fuzz tests: randomized seeds, mixes and configurations.
 * The simulator's built-in oracle checking (every core and EMC value
 * is asserted against the generator's functional execution) turns
 * these into deep correctness tests — any renaming, forwarding,
 * live-in capture or protocol bug panics.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/system.hh"
#include "workload/profile.hh"

namespace emc
{
namespace
{

class SeedFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedFuzz, RandomMixWithEmcCompletes)
{
    Rng rng(GetParam());
    const auto &names = highIntensityNames();
    std::vector<std::string> mix;
    for (int i = 0; i < 4; ++i)
        mix.push_back(names[rng.below(names.size())]);

    SystemConfig cfg;
    cfg.seed = GetParam() * 31 + 7;
    cfg.emc_enabled = true;
    cfg.prefetch = static_cast<PrefetchConfig>(rng.below(4));
    cfg.target_uops = 3000 + rng.below(3000);
    cfg.max_cycles = 6'000'000;
    System sys(cfg, mix);
    sys.run();
    ASSERT_TRUE(sys.finished())
        << mix[0] << "+" << mix[1] << "+" << mix[2] << "+" << mix[3];
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(StressTest, TinyEmcStructuresStillCorrect)
{
    // Shrink every EMC structure to its minimum: halts and cancels
    // become common; the run must stay correct and complete.
    SystemConfig cfg;
    cfg.emc_enabled = true;
    cfg.emc.contexts = 1;
    cfg.emc.lsq_entries = 2;
    cfg.emc.tlb_entries = 2;
    cfg.emc.dcache_bytes = 256;
    cfg.emc.dcache_ways = 1;
    cfg.core.chain_max_uops = 4;
    cfg.target_uops = 5000;
    cfg.max_cycles = 6'000'000;
    System sys(cfg, {"mcf", "mcf", "omnetpp", "omnetpp"});
    sys.run();
    EXPECT_TRUE(sys.finished());
}

TEST(StressTest, TinyCoreWindowStillCorrect)
{
    SystemConfig cfg;
    cfg.emc_enabled = true;
    cfg.core.rob_size = 32;
    cfg.core.rs_size = 12;
    cfg.core.lq_size = 8;
    cfg.core.sq_size = 6;
    cfg.core.l1_mshrs = 2;
    cfg.target_uops = 4000;
    cfg.max_cycles = 8'000'000;
    System sys(cfg, {"mcf", "libquantum", "omnetpp", "soplex"});
    sys.run();
    EXPECT_TRUE(sys.finished());
}

TEST(StressTest, OneChannelHighContention)
{
    SystemConfig cfg;
    cfg.emc_enabled = true;
    cfg.dram.channels = 1;
    cfg.mc_queue_entries = 16;
    cfg.target_uops = 3000;
    cfg.max_cycles = 10'000'000;
    System sys(cfg, {"mcf", "lbm", "libquantum", "bwaves"});
    sys.run();
    EXPECT_TRUE(sys.finished());
}

TEST(StressTest, TinyLlcConstantEvictions)
{
    // Exercises back-invalidation, EMC directory invalidation and the
    // inclusive-hierarchy machinery under constant pressure.
    SystemConfig cfg;
    cfg.emc_enabled = true;
    cfg.llc_slice_bytes = 16 * 1024;
    cfg.prefetch = PrefetchConfig::kStream;
    cfg.target_uops = 4000;
    cfg.max_cycles = 8'000'000;
    System sys(cfg, {"mcf", "libquantum", "omnetpp", "lbm"});
    sys.run();
    EXPECT_TRUE(sys.finished());
}

TEST(StressTest, HighMispredictRateChains)
{
    // Frequent mispredicted branches inside chains: the EMC must halt
    // and the cores must recover, repeatedly.
    BenchmarkProfile p = profileByName("mcf");
    (void)p;  // profile is looked up inside System by name; here we
              // emulate the scenario with omnetpp (5% mispredicts)
              // under a tiny ROB so chains frequently span branches.
    SystemConfig cfg;
    cfg.emc_enabled = true;
    cfg.core.rob_size = 64;
    cfg.target_uops = 5000;
    cfg.max_cycles = 8'000'000;
    System sys(cfg, {"omnetpp", "omnetpp", "mcf", "mcf"});
    sys.run();
    EXPECT_TRUE(sys.finished());
    const StatDump d = sys.dump();
    // Some chains were halted for mispredicts or TLB misses and every
    // one of them recovered (the run finished with oracle checking).
    EXPECT_GE(d.get("emc.halts_mispredict")
                  + d.get("emc.halts_tlb")
                  + d.get("emc.halts_disambiguation"),
              0.0);
}

TEST(StressTest, LongRunStaysConsistent)
{
    SystemConfig cfg;
    cfg.emc_enabled = true;
    cfg.prefetch = PrefetchConfig::kGhb;
    cfg.target_uops = 40000;
    cfg.warmup_uops = 10000;
    cfg.max_cycles = 30'000'000;
    System sys(cfg, {"mcf", "omnetpp", "soplex", "libquantum"});
    sys.run();
    ASSERT_TRUE(sys.finished());
    const StatDump d = sys.dump();
    EXPECT_GT(d.get("emc.chains_completed"), 50.0);
    EXPECT_GT(d.get("emc.generated_misses"), 100.0);
}

} // namespace
} // namespace emc
