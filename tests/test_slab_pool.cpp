/**
 * @file
 * IdSlabPool edge cases that the event-queue tests only brush past:
 * growth across multiple fixed-size slabs, slot recycling under id
 * gaps, checkpoint roundtrips of the live set, and the leak-accounting
 * handshake with the src/check transaction-lifecycle checker (the
 * pool's live count is one side of checkLeaks(), and checkpoint
 * restore reseeds the checker to keep the equality meaningful).
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hh"
#include "check/checkers.hh"
#include "ckpt/serial.hh"
#include "common/slab_pool.hh"

using emc::IdSlabPool;

TEST(IdSlabPool, GrowsAcrossSlabs)
{
    // kSlabSize is 256: a few thousand concurrently-live objects span
    // many slabs, and every one must stay addressable and intact.
    IdSlabPool<std::uint64_t> pool;
    constexpr std::uint64_t kN = 3000;
    std::vector<std::uint64_t *> ptrs;
    for (std::uint64_t id = 1; id <= kN; ++id) {
        pool.create(id) = id * 7;
        ptrs.push_back(pool.find(id));
    }
    EXPECT_EQ(pool.size(), kN);
    EXPECT_GE(pool.capacity(), kN);
    for (std::uint64_t id = 1; id <= kN; ++id) {
        ASSERT_EQ(pool.find(id), ptrs[id - 1])
            << "growth moved id " << id;
        EXPECT_EQ(*pool.find(id), id * 7);
    }
    // Erase the front half: the id window advances, the back half
    // survives, and the freed slots are recycled before new slabs.
    for (std::uint64_t id = 1; id <= kN / 2; ++id)
        pool.erase(id);
    EXPECT_EQ(pool.size(), kN / 2);
    const std::size_t cap = pool.capacity();
    for (std::uint64_t id = kN + 1; id <= kN + kN / 2; ++id)
        pool.create(id) = id;
    EXPECT_EQ(pool.capacity(), cap) << "free slots were not recycled";
    for (std::uint64_t id = kN / 2 + 1; id <= kN; ++id)
        EXPECT_EQ(*pool.find(id), id * 7);
}

TEST(IdSlabPool, RecyclesIdsWithGapsAndOutOfOrderErase)
{
    IdSlabPool<int> pool;
    pool.create(10) = 1;
    pool.create(20) = 2;  // nine padded window entries between
    pool.create(21) = 3;
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(pool.find(15), nullptr);

    // Erasing the middle first leaves the window anchored at 10;
    // erasing 10 then advances past both retired ids in one step.
    pool.erase(20);
    EXPECT_EQ(pool.find(20), nullptr);
    ASSERT_NE(pool.find(10), nullptr);
    pool.erase(10);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(*pool.find(21), 3);

    // Ids below the window are a silent no-op (already retired).
    pool.erase(10);
    pool.erase(5);
    EXPECT_EQ(pool.size(), 1u);
    pool.erase(21);
    EXPECT_TRUE(pool.empty());

    // After full drain the pool accepts any higher id again.
    pool.create(1000) = 4;
    EXPECT_EQ(*pool.find(1000), 4);
}

TEST(IdSlabPool, CheckpointRoundtripPreservesLiveSet)
{
    IdSlabPool<std::uint64_t> pool;
    for (std::uint64_t id = 1; id <= 600; ++id)
        pool.create(id) = id * 11;
    for (std::uint64_t id = 1; id <= 600; id += 3)
        pool.erase(id);

    emc::ckpt::Ar save = emc::ckpt::Ar::saver();
    pool.ckptSave(save, [](emc::ckpt::Ar &a, std::uint64_t &v) {
        a.io(v);
    });

    IdSlabPool<std::uint64_t> loaded;
    loaded.create(9999);  // stale content the load must clear
    emc::ckpt::Ar load = emc::ckpt::Ar::loader(save.takeBytes());
    loaded.ckptLoad(load, [](emc::ckpt::Ar &a, std::uint64_t &v) {
        a.io(v);
    });
    EXPECT_TRUE(load.exhausted());

    EXPECT_EQ(loaded.size(), pool.size());
    EXPECT_EQ(loaded.find(9999), nullptr);
    for (std::uint64_t id = 1; id <= 600; ++id) {
        if (id % 3 == 1) {
            EXPECT_EQ(loaded.find(id), nullptr);
        } else {
            ASSERT_NE(loaded.find(id), nullptr) << "id " << id;
            EXPECT_EQ(*loaded.find(id), id * 11);
        }
    }
    // The restored pool keeps working: higher ids, recycling intact.
    loaded.create(601) = 5;
    EXPECT_EQ(loaded.size(), pool.size() + 1);
}

TEST(IdSlabPool, LeakAccountingAgreesWithLifecycleChecker)
{
    // The System feeds both sides of this equality: every txn create /
    // retire goes to the pool and the checker, and checkLeaks() at end
    // of run (or after a checkpoint restore's reseed) must see the
    // same live count on both.
    emc::check::CheckRegistry reg;
    std::vector<std::string> violations;
    reg.setHandler([&](const emc::check::Violation &v) {
        violations.push_back(v.format());
    });
    auto &tracker = static_cast<emc::check::TxnLifecycleChecker &>(
        reg.add(std::make_unique<emc::check::TxnLifecycleChecker>()));

    IdSlabPool<int> pool;
    for (std::uint64_t id = 1; id <= 40; ++id) {
        pool.create(id);
        tracker.onCreate(reg, id);
    }
    for (std::uint64_t id = 10; id <= 20; ++id) {
        pool.erase(id);
        tracker.onRetire(reg, id);
    }
    tracker.checkLeaks(reg, pool.size());
    EXPECT_TRUE(violations.empty()) << violations.front();

    // A pool erase the checker never saw is exactly a leak.
    pool.erase(30);
    tracker.checkLeaks(reg, pool.size());
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("live transaction count"),
              std::string::npos);

    // Checkpoint-restore path: reseed a fresh checker from the pool's
    // surviving ids (as System::ckptPayload does) and the accounting
    // holds again with no create/advance history.
    violations.clear();
    emc::check::CheckRegistry reg2;
    reg2.setHandler([&](const emc::check::Violation &v) {
        violations.push_back(v.format());
    });
    auto &seeded = static_cast<emc::check::TxnLifecycleChecker &>(
        reg2.add(std::make_unique<emc::check::TxnLifecycleChecker>()));
    for (std::uint64_t id = 1; id <= 40; ++id) {
        if (pool.find(id))
            seeded.reseed(id, id % 4);
    }
    seeded.setLastCreated(40);
    seeded.checkLeaks(reg2, pool.size());
    EXPECT_TRUE(violations.empty()) << violations.front();

    // The reseeded watermark still rejects stale ids...
    seeded.onCreate(reg2, 40);
    EXPECT_EQ(violations.size(), 1u);
    // ...and accepts the next fresh one.
    seeded.onCreate(reg2, 41);
    EXPECT_EQ(violations.size(), 1u);
}
