/**
 * @file
 * Unit tests for the stream, GHB G/DC and Markov prefetchers and the
 * FDP throttle.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "prefetch/ghb.hh"
#include "prefetch/markov.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/stream.hh"
#include "prefetch/stride.hh"

namespace emc
{
namespace
{

std::vector<Addr>
drain(Prefetcher &pf)
{
    std::vector<Addr> out;
    PrefetchCandidate c;
    while (pf.nextCandidate(c))
        out.push_back(c.line_addr);
    return out;
}

Addr
line(std::uint64_t n)
{
    return n << kLineShift;
}

// ---------------------------------------------------------------
// Stream prefetcher
// ---------------------------------------------------------------

TEST(StreamPfTest, DetectsAscendingStream)
{
    StreamPrefetcher pf(1);
    pf.observe(0, line(100), 0, true, 4);   // allocate
    pf.observe(0, line(101), 0, true, 4);   // direction
    pf.observe(0, line(102), 0, true, 4);   // armed: prefetches
    const auto cands = drain(pf);
    ASSERT_FALSE(cands.empty());
    for (Addr a : cands)
        EXPECT_GT(lineNum(a), 102u);
}

TEST(StreamPfTest, DetectsDescendingStream)
{
    StreamPrefetcher pf(1);
    pf.observe(0, line(500), 0, true, 4);
    pf.observe(0, line(499), 0, true, 4);
    pf.observe(0, line(498), 0, true, 4);
    const auto cands = drain(pf);
    ASSERT_FALSE(cands.empty());
    for (Addr a : cands)
        EXPECT_LT(lineNum(a), 498u);
}

TEST(StreamPfTest, RandomAccessesDoNotTrain)
{
    StreamPrefetcher pf(1);
    pf.observe(0, line(100), 0, true, 4);
    pf.observe(0, line(5000), 0, true, 4);
    pf.observe(0, line(90000), 0, true, 4);
    EXPECT_TRUE(drain(pf).empty());
}

TEST(StreamPfTest, RespectsDegree)
{
    StreamPrefetcher pf(1);
    pf.observe(0, line(10), 0, true, 2);
    pf.observe(0, line(11), 0, true, 2);
    pf.observe(0, line(12), 0, true, 2);
    EXPECT_LE(drain(pf).size(), 2u + 2u);  // arming emits at most 2x
}

TEST(StreamPfTest, PerCoreIsolation)
{
    StreamPrefetcher pf(2);
    pf.observe(0, line(10), 0, true, 4);
    pf.observe(1, line(11), 0, true, 4);
    pf.observe(0, line(12), 0, true, 4);  // not adjacent to core 0's 10
    // Interleaved cores must not accidentally arm a stream from mixed
    // accesses at the same addresses.
    pf.observe(1, line(13), 0, true, 4);
    // No strong assertion on emptiness (10->12 is within the window),
    // but candidates must carry the right core.
    PrefetchCandidate c;
    while (pf.nextCandidate(c))
        EXPECT_LT(c.core, 2u);
}

TEST(StreamPfTest, TracksManyConcurrentStreams)
{
    StreamPrefetcher pf(1, 32, 32);
    // Train 8 interleaved streams far apart.
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t s = 0; s < 8; ++s)
            pf.observe(0, line(s * 100000 + round), 0, true, 2);
    }
    const auto cands = drain(pf);
    std::set<std::uint64_t> regions;
    for (Addr a : cands)
        regions.insert(lineNum(a) / 100000);
    EXPECT_GE(regions.size(), 6u);
}

// ---------------------------------------------------------------
// Stride (Baer-Chen RPT)
// ---------------------------------------------------------------

TEST(StridePfTest, LearnsFixedStrideAfterConfirmation)
{
    StridePrefetcher pf(1);
    // Large stride (100 lines) that a stream window would never catch.
    pf.observe(0, line(0), 0x400, true, 2);      // initial
    pf.observe(0, line(100), 0x400, true, 2);    // transient
    pf.observe(0, line(200), 0x400, true, 2);    // steady -> prefetch
    const auto cands = drain(pf);
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_EQ(lineNum(cands[0]), 300u);
    EXPECT_EQ(lineNum(cands[1]), 400u);
}

TEST(StridePfTest, NegativeStride)
{
    StridePrefetcher pf(1);
    pf.observe(0, line(1000), 0x404, true, 1);
    pf.observe(0, line(900), 0x404, true, 1);
    pf.observe(0, line(800), 0x404, true, 1);
    const auto cands = drain(pf);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(lineNum(cands[0]), 700u);
}

TEST(StridePfTest, StrideChangeResetsToTransient)
{
    StridePrefetcher pf(1);
    pf.observe(0, line(0), 0x408, true, 2);
    pf.observe(0, line(10), 0x408, true, 2);
    pf.observe(0, line(20), 0x408, true, 2);
    drain(pf);
    pf.observe(0, line(25), 0x408, true, 2);  // break the stride
    EXPECT_TRUE(drain(pf).empty());
    pf.observe(0, line(30), 0x408, true, 2);  // re-confirmed: emits
    const auto cands = drain(pf);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(lineNum(cands[0]), 35u);  // new stride (5), not old (10)
}

TEST(StridePfTest, DistinctPcsLearnIndependently)
{
    StridePrefetcher pf(1);
    for (int i = 0; i < 4; ++i) {
        pf.observe(0, line(i * 7), 0x500, true, 1);
        pf.observe(0, line(1000 + i * 3), 0x504, true, 1);
    }
    const auto cands = drain(pf);
    bool saw7 = false, saw3 = false;
    for (Addr a : cands) {
        if (lineNum(a) == 3 * 7 + 7)
            saw7 = true;
        if (lineNum(a) == 1000 + 3 * 3 + 3)
            saw3 = true;
    }
    EXPECT_TRUE(saw7);
    EXPECT_TRUE(saw3);
}

TEST(StridePfTest, IgnoresPcZero)
{
    StridePrefetcher pf(1);
    for (int i = 0; i < 6; ++i)
        pf.observe(0, line(i * 4), 0, true, 4);
    EXPECT_TRUE(drain(pf).empty());
}

// ---------------------------------------------------------------
// GHB G/DC
// ---------------------------------------------------------------

TEST(GhbPfTest, LearnsRepeatingDeltaPattern)
{
    GhbPrefetcher pf(1, 256);
    // Miss stream with deltas +3, +5 repeating.
    std::uint64_t a = 1000;
    for (int i = 0; i < 12; ++i) {
        pf.observe(0, line(a), 0, true, 4);
        a += (i % 2) ? 5 : 3;
    }
    const auto cands = drain(pf);
    ASSERT_FALSE(cands.empty());
    // Predictions must follow the delta pattern from the current head.
    std::set<std::uint64_t> lines;
    for (Addr c : cands)
        lines.insert(lineNum(c));
    bool plausible = false;
    for (std::uint64_t l : lines) {
        if (l > a - 8 && l < a + 64)
            plausible = true;
    }
    EXPECT_TRUE(plausible);
}

TEST(GhbPfTest, IgnoresHits)
{
    GhbPrefetcher pf(1, 64);
    for (int i = 0; i < 10; ++i)
        pf.observe(0, line(100 + i), 0, false, 4);
    EXPECT_TRUE(drain(pf).empty());
}

TEST(GhbPfTest, NoPredictionWithoutHistory)
{
    GhbPrefetcher pf(1, 64);
    pf.observe(0, line(1), 0, true, 4);
    pf.observe(0, line(100), 0, true, 4);
    EXPECT_TRUE(drain(pf).empty());
}

TEST(GhbPfTest, BufferWrapInvalidatesStaleLinks)
{
    GhbPrefetcher pf(1, 8);  // tiny buffer forces wrap
    std::uint64_t a = 0;
    for (int i = 0; i < 64; ++i) {
        pf.observe(0, line(a), 0, true, 2);
        a += 7;
        drain(pf);  // discard, just exercising wrap safety
    }
    SUCCEED();  // no crash / no assert
}

// ---------------------------------------------------------------
// Markov
// ---------------------------------------------------------------

TEST(MarkovPfTest, RecallsSuccessor)
{
    MarkovPrefetcher pf(1);
    pf.observe(0, line(10), 0, true, 4);
    pf.observe(0, line(777), 0, true, 4);   // 10 -> 777 recorded
    pf.observe(0, line(5000), 0, true, 4);
    drain(pf);
    pf.observe(0, line(10), 0, true, 4);    // revisit 10
    const auto cands = drain(pf);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(lineNum(cands[0]), 777u);
}

TEST(MarkovPfTest, KeepsMultipleSuccessorsMru)
{
    MarkovPrefetcher pf(1, 1 << 20, 4);
    // 10 -> 20, then 10 -> 30: both successors remembered, 30 MRU.
    pf.observe(0, line(10), 0, true, 4);
    pf.observe(0, line(20), 0, true, 4);
    pf.observe(0, line(10), 0, true, 4);
    drain(pf);
    pf.observe(0, line(30), 0, true, 4);
    pf.observe(0, line(10), 0, true, 4);
    const auto cands = drain(pf);
    ASSERT_GE(cands.size(), 2u);
    EXPECT_EQ(lineNum(cands[0]), 30u);  // MRU first
}

TEST(MarkovPfTest, SuccessorListBounded)
{
    MarkovPrefetcher pf(1, 1 << 20, 2);
    for (std::uint64_t s = 0; s < 6; ++s) {
        pf.observe(0, line(10), 0, true, 8);
        drain(pf);
        pf.observe(0, line(100 + s), 0, true, 8);
        drain(pf);
    }
    pf.observe(0, line(10), 0, true, 8);
    EXPECT_LE(drain(pf).size(), 2u);
}

TEST(MarkovPfTest, TableCapacityEviction)
{
    MarkovPrefetcher pf(1, 4096, 4);  // tiny table
    const std::size_t cap = pf.tableEntries();
    // Fill way beyond capacity; no crash and old entries evicted.
    for (std::uint64_t i = 0; i < cap * 4; ++i) {
        pf.observe(0, line(i * 2), 0, true, 1);
        drain(pf);
    }
    SUCCEED();
}

// ---------------------------------------------------------------
// FDP throttle
// ---------------------------------------------------------------

TEST(FdpTest, DegreeRisesWithAccuracy)
{
    FdpThrottle fdp;
    const unsigned d0 = fdp.degree();
    for (int i = 0; i < 600; ++i) {
        fdp.issued(line(i));
        fdp.demandTouch(line(i));
    }
    EXPECT_GT(fdp.degree(), d0);
}

TEST(FdpTest, DegreeFallsWithInaccuracy)
{
    FdpThrottle fdp;
    // First rise…
    for (int i = 0; i < 600; ++i) {
        fdp.issued(line(i));
        fdp.demandTouch(line(i));
    }
    const unsigned high = fdp.degree();
    // …then pollute: no touches at all.
    for (int i = 1000; i < 2200; ++i)
        fdp.issued(line(i));
    EXPECT_LT(fdp.degree(), high);
    EXPECT_GE(fdp.degree(), 1u);
}

TEST(FdpTest, DegreeBounds)
{
    FdpThrottle fdp;
    for (int i = 0; i < 40000; ++i) {
        fdp.issued(line(i));
        fdp.demandTouch(line(i));
    }
    EXPECT_LE(fdp.degree(), 32u);
    FdpThrottle bad;
    for (int i = 0; i < 40000; ++i)
        bad.issued(line(i));
    EXPECT_GE(bad.degree(), 1u);
}

TEST(FdpTest, EvictionRemovesPending)
{
    FdpThrottle fdp;
    fdp.issued(line(5));
    EXPECT_TRUE(fdp.isPendingPrefetch(line(5)));
    fdp.evicted(line(5));
    EXPECT_FALSE(fdp.isPendingPrefetch(line(5)));
    fdp.demandTouch(line(5));  // no credit after eviction
    EXPECT_EQ(fdp.totalUseful(), 0u);
}

TEST(FdpTest, LatePrefetchesRampDegreeFaster)
{
    FdpThrottle slow, fast;
    // Both accurate; one also chronically late.
    for (int i = 0; i < 600; ++i) {
        slow.issued(line(i));
        slow.demandTouch(line(i));
        fast.issued(line(10000 + i));
        fast.lateHit(line(10000 + i));
        fast.demandTouch(line(10000 + i));
    }
    EXPECT_GE(fast.degree(), slow.degree());
    EXPECT_GT(fast.totalLate(), 0u);
}

TEST(FdpTest, PollutionThrottlesDown)
{
    FdpThrottle fdp;
    // Ramp up first.
    for (int i = 0; i < 600; ++i) {
        fdp.issued(line(i));
        fdp.demandTouch(line(i));
    }
    const unsigned high = fdp.degree();
    // Now every prefetch evicts a line that demand then misses on.
    for (int i = 0; i < 1200; ++i) {
        fdp.issued(line(5000 + i));
        fdp.demandTouch(line(5000 + i));  // accurate...
        fdp.prefetchEvictedVictim(line(90000 + i));
        fdp.demandMiss(line(90000 + i));  // ...but polluting
    }
    EXPECT_LT(fdp.degree(), high);
    EXPECT_GT(fdp.totalPolluted(), 0u);
}

TEST(FdpTest, VictimSetBounded)
{
    FdpThrottle fdp;
    for (int i = 0; i < 10000; ++i)
        fdp.prefetchEvictedVictim(line(i));
    // Old victims aged out: a demand miss on the first victim is no
    // longer attributed to pollution.
    EXPECT_FALSE(fdp.demandMiss(line(0)));
    EXPECT_TRUE(fdp.demandMiss(line(9999)));
}

TEST(FdpTest, AccuracyAccounting)
{
    FdpThrottle fdp;
    fdp.issued(line(1));
    fdp.issued(line(2));
    fdp.demandTouch(line(1));
    EXPECT_DOUBLE_EQ(fdp.accuracy(), 0.5);
}

} // namespace
} // namespace emc
