/**
 * @file
 * Unit tests for the virtual-memory substrate: page table, core TLB
 * and the EMC's per-core circular-buffer TLB (Section 4.1.4).
 */

#include <gtest/gtest.h>

#include <set>

#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace emc
{
namespace
{

TEST(PageTableTest, TranslationStable)
{
    PageTable pt(0, 1);
    const Addr p1 = pt.translate(0x12345678);
    const Addr p2 = pt.translate(0x12345678);
    EXPECT_EQ(p1, p2);
}

TEST(PageTableTest, OffsetPreserved)
{
    PageTable pt(0, 1);
    const Addr p = pt.translate(0x10000 + 0xabc);
    EXPECT_EQ(p & (kPageBytes - 1), 0xabcu);
}

TEST(PageTableTest, DistinctPagesDistinctFrames)
{
    PageTable pt(0, 1);
    std::set<Addr> frames;
    for (Addr v = 0; v < 64; ++v)
        frames.insert(pageNum(pt.translate(v * kPageBytes)));
    EXPECT_EQ(frames.size(), 64u);
}

TEST(PageTableTest, CoreSpacesDisjoint)
{
    PageTable a(0, 1), b(1, 1);
    const Addr pa = a.translate(0x1000);
    const Addr pb = b.translate(0x1000);
    EXPECT_NE(pageNum(pa), pageNum(pb));
}

TEST(PageTableTest, LookupPopulates)
{
    PageTable pt(2, 7);
    EXPECT_EQ(pt.mappedPages(), 0u);
    const Pte &pte = pt.lookup(5);
    EXPECT_TRUE(pte.valid);
    EXPECT_EQ(pte.vpage, 5u);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST(TlbTest, HitAfterMiss)
{
    PageTable pt(0, 1);
    Tlb tlb(4, 30);
    Cycle extra = 0;
    tlb.translate(pt, 0x5000, extra);
    EXPECT_EQ(extra, 30u);
    tlb.translate(pt, 0x5008, extra);
    EXPECT_EQ(extra, 0u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, LruEviction)
{
    PageTable pt(0, 1);
    Tlb tlb(2, 30);
    Cycle extra;
    tlb.translate(pt, 0x1000, extra);  // A
    tlb.translate(pt, 0x2000, extra);  // B
    tlb.translate(pt, 0x1000, extra);  // touch A
    EXPECT_EQ(extra, 0u);
    tlb.translate(pt, 0x3000, extra);  // evicts B
    tlb.translate(pt, 0x1000, extra);  // A still resident
    EXPECT_EQ(extra, 0u);
    tlb.translate(pt, 0x2000, extra);  // B was evicted
    EXPECT_EQ(extra, 30u);
}

TEST(EmcTlbTest, InsertAndLookup)
{
    EmcTlb tlb(4);
    Pte pte;
    pte.vpage = 7;
    pte.pframe = 1234;
    pte.valid = true;
    tlb.insert(pte);
    Addr frame = 0;
    EXPECT_TRUE(tlb.lookup(7, frame));
    EXPECT_EQ(frame, 1234u);
    EXPECT_FALSE(tlb.lookup(8, frame));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(EmcTlbTest, CircularReplacement)
{
    EmcTlb tlb(2);
    for (Addr v = 0; v < 3; ++v) {
        Pte p;
        p.vpage = v;
        p.pframe = 100 + v;
        p.valid = true;
        tlb.insert(p);
    }
    Addr f;
    EXPECT_FALSE(tlb.lookup(0, f));  // overwritten by vpage 2
    EXPECT_TRUE(tlb.lookup(1, f));
    EXPECT_TRUE(tlb.lookup(2, f));
}

TEST(EmcTlbTest, ResidenceBitSemantics)
{
    // resident() is the core-side check and must not perturb stats.
    EmcTlb tlb(4);
    Pte p;
    p.vpage = 3;
    p.pframe = 9;
    p.valid = true;
    tlb.insert(p);
    EXPECT_TRUE(tlb.resident(3));
    EXPECT_FALSE(tlb.resident(4));
    EXPECT_EQ(tlb.hits(), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
}

TEST(EmcTlbTest, ShootdownInvalidates)
{
    EmcTlb tlb(4);
    Pte p;
    p.vpage = 11;
    p.pframe = 42;
    p.valid = true;
    tlb.insert(p);
    ASSERT_TRUE(tlb.resident(11));
    tlb.shootdown(11);
    EXPECT_FALSE(tlb.resident(11));
    Addr f;
    EXPECT_FALSE(tlb.lookup(11, f));
}

TEST(EmcTlbTest, FlushClearsAll)
{
    EmcTlb tlb(4);
    for (Addr v = 0; v < 4; ++v) {
        Pte p;
        p.vpage = v;
        p.pframe = v;
        p.valid = true;
        tlb.insert(p);
    }
    tlb.flush();
    for (Addr v = 0; v < 4; ++v)
        EXPECT_FALSE(tlb.resident(v));
}

} // namespace
} // namespace emc
