/**
 * @file
 * End-to-end determinism: the same configuration must produce a
 * field-for-field identical StatDump whether the System runs alone,
 * again in the same process, or inside the parallel bench harness
 * with several runs in flight on worker threads. This is the
 * regression gate for the event-queue / cycle-skipping / txn-pool
 * fast paths — any tie-break or ordering change shows up here as a
 * stat mismatch long before it would be noticed in a figure.
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.hh"

using emc::StatDump;
using emc::SystemConfig;

namespace
{

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.prefetch = emc::PrefetchConfig::kGhb;
    cfg.emc_enabled = true;
    cfg.target_uops = 1500;
    cfg.warmup_uops = 750;
    return cfg;
}

std::vector<std::string>
testMix()
{
    // A heterogeneous mix touches more machinery (different traces,
    // different chain behavior per core) than a homogeneous one.
    return {"mcf", "libquantum", "omnetpp", "sphinx3"};
}

void
expectIdentical(const StatDump &a, const StatDump &b,
                const char *what)
{
    ASSERT_EQ(a.all().size(), b.all().size()) << what;
    auto ia = a.all().begin();
    auto ib = b.all().begin();
    for (; ia != a.all().end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first) << what;
        // Bit-identical, not approximately equal: the simulator is
        // deterministic, so any drift is a real ordering bug.
        EXPECT_EQ(ia->second, ib->second)
            << what << ": stat " << ia->first << " diverged";
    }
}

} // namespace

TEST(Determinism, RepeatedSequentialRunsAreIdentical)
{
    const StatDump first = emc::bench::run(testConfig(), testMix());
    const StatDump second = emc::bench::run(testConfig(), testMix());
    ASSERT_GT(first.all().size(), 10u);
    expectIdentical(first, second, "sequential re-run");
}

TEST(Determinism, ParallelHarnessMatchesSequential)
{
    const StatDump sequential =
        emc::bench::run(testConfig(), testMix());

    // Force 4 workers regardless of the host's core count so the
    // runs genuinely interleave, and include decoy jobs with a
    // different config to catch any cross-run state leakage.
    setenv("EMC_BENCH_THREADS", "4", 1);
    std::vector<emc::bench::RunJob> jobs;
    jobs.push_back({testConfig(), testMix()});
    SystemConfig decoy = testConfig();
    decoy.prefetch = emc::PrefetchConfig::kNone;
    jobs.push_back({decoy, testMix()});
    jobs.push_back({testConfig(), testMix()});
    jobs.push_back({decoy, testMix()});
    const std::vector<StatDump> res = emc::bench::runMany(jobs);
    unsetenv("EMC_BENCH_THREADS");

    ASSERT_EQ(res.size(), jobs.size());
    expectIdentical(sequential, res[0], "parallel run, job 0");
    expectIdentical(sequential, res[2], "parallel run, job 2");
    expectIdentical(res[1], res[3], "decoy config runs");
    // The decoy config must actually differ from the main one
    // (otherwise the leakage check above checks nothing).
    EXPECT_NE(sequential.get("prefetch.issued"),
              res[1].get("prefetch.issued"));
}

TEST(Determinism, CycleSkipDoesNotChangeAnyStat)
{
    const StatDump fast = emc::bench::run(testConfig(), testMix());
    setenv("EMC_NO_CYCLE_SKIP", "1", 1);
    const StatDump slow = emc::bench::run(testConfig(), testMix());
    unsetenv("EMC_NO_CYCLE_SKIP");
    expectIdentical(fast, slow, "cycle-skip vs cycle-by-cycle");
}
