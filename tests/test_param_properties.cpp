/**
 * @file
 * Parameterized property tests: invariants swept across geometries,
 * benchmark profiles and whole-system configurations.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "dram/dram_channel.hh"
#include "mem/functional_memory.hh"
#include "ring/ring.hh"
#include "sim/system.hh"
#include "workload/profile.hh"
#include "workload/synthetic.hh"

namespace emc
{
namespace
{

// ---------------------------------------------------------------
// Cache properties across geometries
// ---------------------------------------------------------------

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

TEST_P(CacheGeometry, OccupancyNeverExceedsCapacity)
{
    const auto [size, ways] = GetParam();
    Cache c(size, ways, "p");
    Rng rng(size + ways);
    for (int i = 0; i < 3000; ++i) {
        const Addr a = rng.below(1 << 16) << kLineShift;
        if (!c.peek(a))
            c.insert(a);
    }
    EXPECT_LE(c.validLines(), size / kLineBytes);
}

TEST_P(CacheGeometry, InsertedLineIsFindableUntilEvicted)
{
    const auto [size, ways] = GetParam();
    Cache c(size, ways, "p");
    Rng rng(7 * size + ways);
    std::set<Addr> present;
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(1 << 14) << kLineShift;
        if (!c.peek(a)) {
            Cache::Victim v = c.insert(a);
            if (v.valid)
                present.erase(v.addr);
            present.insert(lineAlign(a));
        }
    }
    for (Addr a : present)
        EXPECT_NE(c.peek(a), nullptr) << std::hex << a;
}

TEST_P(CacheGeometry, InvalidateThenMiss)
{
    const auto [size, ways] = GetParam();
    Cache c(size, ways, "p");
    c.insert(0x4000);
    EXPECT_TRUE(c.invalidate(0x4000).valid);
    EXPECT_EQ(c.access(0x4000), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1024u, 1u),
                      std::make_tuple(4096u, 4u),
                      std::make_tuple(4096u, 8u),
                      std::make_tuple(32768u, 8u),
                      std::make_tuple(1u << 20, 8u),
                      std::make_tuple(4096u, 64u)));

// ---------------------------------------------------------------
// DRAM properties across geometries
// ---------------------------------------------------------------

class DramGeometryP
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    DramGeometry
    geo() const
    {
        DramGeometry g;
        g.channels = std::get<0>(GetParam());
        g.ranks_per_channel = std::get<1>(GetParam());
        return g;
    }
};

TEST_P(DramGeometryP, MappingIsInjectivePerLine)
{
    const DramGeometry g = geo();
    // Distinct lines within a window map to distinct (ch, rank, bank,
    // row, col) tuples.
    std::set<std::tuple<unsigned, unsigned, unsigned, std::uint64_t,
                        unsigned>>
        seen;
    for (Addr line = 0; line < 4096; ++line) {
        const DramCoord c = mapAddress(line << kLineShift, g);
        EXPECT_TRUE(seen.emplace(c.channel, c.rank, c.bank, c.row,
                                 c.column)
                        .second)
            << "line " << line;
    }
}

TEST_P(DramGeometryP, AllReadsComplete)
{
    const DramGeometry g = geo();
    DramChannel chan(g, DramTiming{}, SchedPolicy::kBatch, 32, 4);
    unsigned done = 0;
    chan.setCallback([&](const MemRequest &) { ++done; });
    Rng rng(g.channels * 13 + g.ranks_per_channel);
    unsigned sent = 0;
    for (Cycle c = 1; c < 60000; ++c) {
        if (sent < 150 && rng.chance(0.03) && chan.canAccept()) {
            MemRequest r;
            r.paddr = rng.below(1 << 20) << kLineShift;
            r.core = static_cast<CoreId>(rng.below(4));
            r.token = sent;
            if (chan.enqueue(r, c))
                ++sent;
        }
        chan.tick(c);
    }
    EXPECT_EQ(done, sent);
}

INSTANTIATE_TEST_SUITE_P(Geometries, DramGeometryP,
                         ::testing::Combine(::testing::Values(1u, 2u,
                                                              4u),
                                            ::testing::Values(1u, 2u,
                                                              4u)));

// ---------------------------------------------------------------
// Ring properties across sizes
// ---------------------------------------------------------------

class RingSize : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RingSize, ConservationUnderLoad)
{
    const unsigned stops = GetParam();
    Ring ring(stops, false);
    unsigned delivered = 0;
    ring.setDeliver([&](const RingMsg &) { ++delivered; });
    Rng rng(stops);
    unsigned sent = 0;
    Cycle now = 1;
    for (; now < 4000; ++now) {
        if (rng.chance(0.4)) {
            RingMsg m;
            m.src = static_cast<unsigned>(rng.below(stops));
            m.dst = static_cast<unsigned>(
                (m.src + 1 + rng.below(stops - 1)) % stops);
            ring.send(m, now);
            ++sent;
        }
        ring.tick(now);
    }
    for (; ring.pending() > 0 && now < 8000; ++now)
        ring.tick(now);
    EXPECT_EQ(delivered, sent);
    EXPECT_EQ(ring.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSize,
                         ::testing::Values(2u, 3u, 5u, 9u, 10u, 16u));

// ---------------------------------------------------------------
// Generator properties across every benchmark profile
// ---------------------------------------------------------------

class EveryProfile : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryProfile, GeneratorInvariants)
{
    FunctionalMemory mem;
    SyntheticProgram prog(profileByName(GetParam()), mem, 99);
    std::uint64_t regs[kArchRegs] = {};
    int mem_ops = 0;
    for (int i = 0; i < 8000; ++i) {
        DynUop d;
        ASSERT_TRUE(prog.next(d));
        // Register indices in range.
        if (d.uop.hasDst())
            ASSERT_LT(d.uop.dst, kArchRegs);
        if (d.uop.hasSrc1())
            ASSERT_LT(d.uop.src1, kArchRegs);
        if (d.uop.hasSrc2())
            ASSERT_LT(d.uop.src2, kArchRegs);
        // Memory ops are 8-byte aligned and never split lines.
        if (isMem(d.uop.op)) {
            ++mem_ops;
            ASSERT_EQ(d.vaddr % 8, 0u);
            ASSERT_EQ(lineAlign(d.vaddr), lineAlign(d.vaddr + 7));
        }
        // Oracle self-consistency (architectural replay).
        const std::uint64_t a = d.uop.hasSrc1() ? regs[d.uop.src1] : 0;
        const std::uint64_t b = d.uop.hasSrc2() ? regs[d.uop.src2] : 0;
        switch (d.uop.op) {
          case Opcode::kLoad:
            ASSERT_EQ(effectiveAddr(a, d.uop.imm), d.vaddr);
            regs[d.uop.dst] = d.mem_value;
            break;
          case Opcode::kStore:
            ASSERT_EQ(effectiveAddr(a, d.uop.imm), d.vaddr);
            ASSERT_EQ(b, d.mem_value);
            break;
          case Opcode::kBranch:
            ASSERT_EQ(evalBranch(a), d.taken);
            break;
          default:
            if (d.uop.hasDst())
                regs[d.uop.dst] = d.result;
            break;
        }
    }
    EXPECT_GT(mem_ops, 0);
}

TEST_P(EveryProfile, RunsOnSingleCoreSystem)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.target_uops = 2500;
    cfg.max_cycles = 2'000'000;
    System sys(cfg, {GetParam()});
    sys.run();
    EXPECT_TRUE(sys.finished()) << GetParam();
    EXPECT_GT(sys.dump().get("core0.ipc"), 0.0);
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> v;
    for (const auto &p : allProfiles())
        v.push_back(p.name);
    return v;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EveryProfile,
                         ::testing::ValuesIn(allNames()));

// ---------------------------------------------------------------
// Whole-system properties across configurations
// ---------------------------------------------------------------

struct SysParam
{
    PrefetchConfig pf;
    bool emc;
    SchedPolicy sched;
};

class SystemMatrix : public ::testing::TestWithParam<SysParam>
{
};

TEST_P(SystemMatrix, CompletesWithSaneStats)
{
    const SysParam p = GetParam();
    SystemConfig cfg;
    cfg.prefetch = p.pf;
    cfg.emc_enabled = p.emc;
    cfg.sched = p.sched;
    cfg.target_uops = 4000;
    cfg.max_cycles = 4'000'000;
    System sys(cfg, {"mcf", "libquantum", "omnetpp", "bwaves"});
    sys.run();
    ASSERT_TRUE(sys.finished());
    const StatDump d = sys.dump();
    for (int i = 0; i < 4; ++i) {
        const std::string k = "core" + std::to_string(i) + ".";
        EXPECT_GT(d.get(k + "ipc"), 0.0);
        EXPECT_LE(d.get(k + "ipc"), 4.0);  // cannot beat issue width
        EXPECT_GE(d.get(k + "retired"), 4000.0);
    }
    EXPECT_GE(d.get("dram.row_conflict_rate"), 0.0);
    EXPECT_LE(d.get("dram.row_conflict_rate"), 1.0);
    EXPECT_GE(d.get("llc.dep_miss_frac"), 0.0);
    EXPECT_LE(d.get("llc.dep_miss_frac"), 1.0);
    if (p.emc) {
        EXPECT_GE(d.get("emc.chains_completed"), 0.0);
        EXPECT_GE(d.get("emc.dcache_hit_rate"), 0.0);
        EXPECT_LE(d.get("emc.dcache_hit_rate"), 1.0);
    }
    EXPECT_GT(d.get("energy.total_mj"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SystemMatrix,
    ::testing::Values(
        SysParam{PrefetchConfig::kNone, false, SchedPolicy::kBatch},
        SysParam{PrefetchConfig::kNone, true, SchedPolicy::kBatch},
        SysParam{PrefetchConfig::kGhb, false, SchedPolicy::kBatch},
        SysParam{PrefetchConfig::kGhb, true, SchedPolicy::kBatch},
        SysParam{PrefetchConfig::kStream, true, SchedPolicy::kBatch},
        SysParam{PrefetchConfig::kMarkovStream, true,
                 SchedPolicy::kBatch},
        SysParam{PrefetchConfig::kNone, true, SchedPolicy::kFrFcfs},
        SysParam{PrefetchConfig::kMarkovStream, false,
                 SchedPolicy::kFrFcfs}));

} // namespace
} // namespace emc
