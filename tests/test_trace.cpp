/**
 * @file
 * Tests for the observability subsystem (src/obs, DESIGN.md §6).
 *
 * Strategy mirrors test_invariants.cpp: tracing is observation-only,
 * so a traced run must render byte-identical statistics to an
 * untraced run of the same config. On top of that the exported
 * Chrome trace must be structurally valid (readTrace enforces span
 * nesting and cycle monotonicity), and `emctrace summarize` — which
 * shares readTrace — must rebuild exactly the phase histograms the
 * simulator exported as `phase.*` stats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/phase.hh"
#include "obs/trace_reader.hh"
#include "sim/system.hh"

namespace emc::obs
{
namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.target_uops = 3000;
    cfg.max_cycles = 3'000'000;
    cfg.emc_enabled = true;  // exercise EMC spans and chain offloads
    return cfg;
}

const std::vector<std::string> kWorkload{"mcf", "mcf", "mcf", "mcf"};

// --------------------------------------------------------------------
// JSON parser
// --------------------------------------------------------------------

TEST(JsonParserTest, ParsesNestedObject)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"ph":"b","ts":12,"args":{"dep":1,"name":"a\"b"},"arr":[1,2]})",
        v, err)) << err;
    EXPECT_EQ(v.stringOr("ph", ""), "b");
    EXPECT_DOUBLE_EQ(v.numberOr("ts", -1), 12.0);
    const JsonValue *args = v.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->numberOr("dep", 0), 1.0);
    EXPECT_EQ(args->stringOr("name", ""), "a\"b");
    const JsonValue *arr = v.find("arr");
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->arr.size(), 2u);
    EXPECT_DOUBLE_EQ(arr->arr[1].number, 2.0);
}

TEST(JsonParserTest, RejectsMalformed)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson(R"({"a":1,})", v, err));
    EXPECT_FALSE(parseJson(R"({"a")", v, err));
    EXPECT_FALSE(parseJson("{} trailing", v, err));
}

// --------------------------------------------------------------------
// Phase accumulator sampling rules
// --------------------------------------------------------------------

TEST(PhaseAccumulatorTest, SkipsPhasesWithMissingEndpoints)
{
    PhaseAccumulator acc;
    PhaseTimes t;
    t.created = 100;
    t.retire = 400;
    t.fill = 380;  // no llc_miss / dram_enqueue (EMC direct-DRAM path)
    acc.sample(PhaseClass::kEmc, t);
    EXPECT_EQ(acc.hist(PhaseClass::kEmc, kPhaseLookup).samples(), 0u);
    EXPECT_EQ(acc.hist(PhaseClass::kEmc, kPhaseXfer).samples(), 0u);
    EXPECT_EQ(acc.hist(PhaseClass::kEmc, kPhaseDram).samples(), 0u);
    EXPECT_EQ(acc.hist(PhaseClass::kEmc, kPhaseRet).samples(), 1u);
    EXPECT_EQ(acc.hist(PhaseClass::kEmc, kPhaseTotal).samples(), 1u);
    EXPECT_DOUBLE_EQ(acc.hist(PhaseClass::kEmc, kPhaseTotal).mean(),
                     300.0);
}

// --------------------------------------------------------------------
// End to end: traced run vs untraced run
// --------------------------------------------------------------------

TEST(TracedRunTest, DoesNotPerturbStats)
{
    const SystemConfig cfg = smallConfig();

    StatDump plain;
    {
        System sys(cfg, kWorkload);
        sys.run();
        plain = sys.dump();
    }

    SystemConfig traced_cfg = cfg;
    traced_cfg.trace_path = tempPath("identity.json");
    traced_cfg.trace_interval = 25000;
    StatDump traced;
    {
        System sys(traced_cfg, kWorkload);
        sys.run();
        traced = sys.dump();
    }

    // Observation only: the rendered stat output is byte-identical.
    EXPECT_EQ(plain.format(), traced.format());
}

TEST(TracedRunTest, ExportedTraceIsValid)
{
#ifndef EMC_SIM_TRACE
    GTEST_SKIP() << "trace hooks compiled out (EMC_SIM_TRACE=OFF)";
#endif
    SystemConfig cfg = smallConfig();
    cfg.trace_path = tempPath("valid.json");
    {
        System sys(cfg, kWorkload);
        sys.run();
    }

    const TraceSummary s = readTrace(cfg.trace_path);
    for (const auto &iss : s.issues)
        ADD_FAILURE() << "line " << iss.line << ": " << iss.message;
    EXPECT_TRUE(s.ok);
    EXPECT_GT(s.counts.spans, 0u);
    EXPECT_GE(s.counts.last_cycle, s.counts.first_cycle);
    // Every span opened was closed (readTrace flags leftovers), and
    // every lifecycle point fired at least once in an EMC-enabled run.
    using P = TracePoint;
    for (P p : {P::kCreated, P::kLlcMiss, P::kDramEnqueue, P::kFill,
                P::kRetire})
        EXPECT_GT(s.point_counts[static_cast<int>(p)], 0u)
            << tracePointName(p);
}

TEST(TracedRunTest, SummarizeAgreesWithExportedPhaseStats)
{
#ifndef EMC_SIM_TRACE
    GTEST_SKIP() << "trace hooks compiled out (EMC_SIM_TRACE=OFF)";
#endif
    // warmup_uops stays 0: the trace records from cycle 0 while stats
    // reset post-warmup, so agreement holds for unwarmed runs only.
    SystemConfig cfg = smallConfig();
    cfg.trace_path = tempPath("agree.json");

    StatDump d;
    {
        System sys(cfg, kWorkload);
        sys.run();
        d = sys.dump();
    }

    const TraceSummary s = readTrace(cfg.trace_path);
    ASSERT_TRUE(s.ok);

    for (int c = 0; c < 3; ++c) {
        const auto cls = static_cast<PhaseClass>(c);
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            const Histogram &h = s.phases.hist(cls, p);
            const std::string key = std::string("phase.")
                                    + phaseClassName(cls) + "."
                                    + phaseName(p);
            if (h.samples() == 0) {
                EXPECT_FALSE(d.has(key + "_samples")) << key;
                continue;
            }
            EXPECT_DOUBLE_EQ(d.get(key + "_samples"),
                             static_cast<double>(h.samples())) << key;
            EXPECT_DOUBLE_EQ(d.get(key + "_avg"), h.mean()) << key;
            EXPECT_DOUBLE_EQ(d.get(key + "_p50"), h.percentile(0.50))
                << key;
            EXPECT_DOUBLE_EQ(d.get(key + "_p95"), h.percentile(0.95))
                << key;
            EXPECT_DOUBLE_EQ(d.get(key + "_p99"), h.percentile(0.99))
                << key;
        }
    }
}

TEST(TracedRunTest, StreamerWritesMonotoneSnapshots)
{
    SystemConfig cfg = smallConfig();
    cfg.trace_path = tempPath("stream.json");
    cfg.trace_interval = 20000;
    StatDump d;
    {
        System sys(cfg, kWorkload);
        sys.run();
        d = sys.dump();
    }

    std::ifstream in(cfg.trace_path + ".jsonl");
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t lines = 0;
    double prev_cycle = -1;
    double last_cycles_stat = 0;
    while (std::getline(in, line)) {
        ++lines;
        JsonValue v;
        std::string err;
        ASSERT_TRUE(parseJson(line, v, err)) << err;
        const double cyc = v.numberOr("cycle", -1);
        EXPECT_GT(cyc, prev_cycle);
        prev_cycle = cyc;
        const JsonValue *stats = v.find("stats");
        ASSERT_NE(stats, nullptr);
        last_cycles_stat = stats->numberOr("system.cycles", -1);
    }
    EXPECT_GE(lines, 2u);  // at least one interval plus the final line
    // The last snapshot is the end-of-run dump.
    EXPECT_DOUBLE_EQ(last_cycles_stat, d.get("system.cycles"));
}

} // namespace
} // namespace emc::obs
