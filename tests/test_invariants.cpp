/**
 * @file
 * Tests for the runtime invariant checkers (src/check, DESIGN.md §5d).
 *
 * Strategy: install a collecting violation handler, deliberately feed
 * each checker corrupted state, and assert it fires with the right
 * diagnostic. A final test attaches the full checker set to a real
 * System run and asserts (a) zero violations and (b) stat output
 * identical to an unchecked run — the checkers observe, never perturb.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/check.hh"
#include "check/checkers.hh"
#include "emc/emc.hh"
#include "sim/system.hh"

namespace emc::check
{
namespace
{

/** Registry wired to a collector instead of the aborting default. */
class CollectingRegistry
{
  public:
    CollectingRegistry()
    {
        reg.setClock([this] { return now; });
        reg.setHandler([this](const Violation &v) {
            got.push_back(v);
        });
    }

    bool
    sawMessage(const std::string &needle) const
    {
        for (const auto &v : got) {
            if (v.message.find(needle) != std::string::npos)
                return true;
        }
        return false;
    }

    CheckRegistry reg;
    Cycle now = 100;
    std::vector<Violation> got;
};

TEST(ViolationTest, FormatReportsCycleComponentAndTxn)
{
    CollectingRegistry c;
    c.now = 42;
    c.reg.fail("txn_lifecycle", "mc0.ch1", 7, "something broke");
    ASSERT_EQ(c.got.size(), 1u);
    const std::string line = c.got[0].format();
    EXPECT_NE(line.find("42"), std::string::npos) << line;
    EXPECT_NE(line.find("mc0.ch1"), std::string::npos) << line;
    EXPECT_NE(line.find("txn 7"), std::string::npos) << line;
    EXPECT_NE(line.find("something broke"), std::string::npos) << line;
    EXPECT_EQ(c.reg.violationCount(), 1u);
}

// --------------------------------------------------------------------
// Event queue
// --------------------------------------------------------------------

TEST(EventQueueCheckerTest, ScheduleInThePastFires)
{
    CollectingRegistry c;
    EventQueueChecker ck;
    // requested == now: the schedule API would clamp it, but the raw
    // request is still a latent bug at the call site.
    ck.onPush(c.reg, /*requested=*/100, /*effective=*/101, /*now=*/100,
              /*type=*/3, /*token=*/55);
    ASSERT_FALSE(c.got.empty());
    EXPECT_TRUE(c.sawMessage("scheduled in the past"));
    EXPECT_EQ(c.got[0].txn, 55u);
}

TEST(EventQueueCheckerTest, CleanPushPopSequenceIsSilent)
{
    CollectingRegistry c;
    EventQueueChecker ck;
    ck.onPush(c.reg, 105, 105, 100, 1, 10);
    ck.onPush(c.reg, 105, 105, 100, 2, 11);  // same cycle, FIFO behind
    ck.onPush(c.reg, 103, 103, 100, 3, 12);
    EXPECT_EQ(ck.pendingMirror(), 3u);
    ck.onPop(c.reg, 103, 3, 12);
    ck.onPop(c.reg, 105, 1, 10);
    ck.onPop(c.reg, 105, 2, 11);
    EXPECT_TRUE(c.got.empty()) << c.got[0].format();
    ck.checkDrained(c.reg, 0);
    EXPECT_TRUE(c.got.empty());
}

TEST(EventQueueCheckerTest, FifoInversionWithinCycleFires)
{
    CollectingRegistry c;
    EventQueueChecker ck;
    ck.onPush(c.reg, 105, 105, 100, 1, 10);
    ck.onPush(c.reg, 105, 105, 100, 2, 11);
    ck.onPop(c.reg, 105, 2, 11);  // second-pushed popped first
    EXPECT_TRUE(c.sawMessage("FIFO order violated"));
}

TEST(EventQueueCheckerTest, PopWithoutPushFires)
{
    CollectingRegistry c;
    EventQueueChecker ck;
    ck.onPop(c.reg, 100, 1, 10);
    EXPECT_TRUE(c.sawMessage("no matching push"));
}

TEST(EventQueueCheckerTest, UndrainedQueueFailsConservation)
{
    CollectingRegistry c;
    EventQueueChecker ck;
    ck.onPush(c.reg, 105, 105, 100, 1, 10);
    ck.checkDrained(c.reg, 0);  // mirror says 1 pending, queue says 0
    EXPECT_TRUE(c.sawMessage("not conserved"));
}

// --------------------------------------------------------------------
// Transaction lifecycle
// --------------------------------------------------------------------

TEST(TxnLifecycleCheckerTest, HappyPathIsSilent)
{
    CollectingRegistry c;
    TxnLifecycleChecker ck;
    ck.onCreate(c.reg, 1);
    ck.onIssue(c.reg, 1);
    ck.onDramDone(c.reg, 1);
    ck.onFill(c.reg, 1);
    ck.onFill(c.reg, 1);  // slice fill then core fill
    ck.onRetire(c.reg, 1);
    EXPECT_TRUE(c.got.empty()) << c.got[0].format();
    ck.checkLeaks(c.reg, 0);
    EXPECT_TRUE(c.got.empty());
}

TEST(TxnLifecycleCheckerTest, DoubleRetireFires)
{
    CollectingRegistry c;
    TxnLifecycleChecker ck;
    ck.onCreate(c.reg, 9);
    ck.onRetire(c.reg, 9);
    ck.onRetire(c.reg, 9);  // double free of the slab slot
    ASSERT_FALSE(c.got.empty());
    EXPECT_TRUE(c.sawMessage("double-retire or missing create"));
    EXPECT_EQ(c.got[0].txn, 9u);
}

TEST(TxnLifecycleCheckerTest, IllegalTransitionFires)
{
    CollectingRegistry c;
    TxnLifecycleChecker ck;
    ck.onCreate(c.reg, 2);
    ck.onDramDone(c.reg, 2);  // skipped the MC-enqueue step
    EXPECT_TRUE(c.sawMessage("illegal state"));
}

TEST(TxnLifecycleCheckerTest, NonMonotonicIdsFire)
{
    CollectingRegistry c;
    TxnLifecycleChecker ck;
    ck.onCreate(c.reg, 5);
    ck.onCreate(c.reg, 4);  // slab pool hands out increasing ids
    EXPECT_TRUE(c.sawMessage("strictly increasing"));
}

TEST(TxnLifecycleCheckerTest, LeakedTransactionFailsPoolAccounting)
{
    CollectingRegistry c;
    TxnLifecycleChecker ck;
    ck.onCreate(c.reg, 1);
    ck.onCreate(c.reg, 2);
    ck.onRetire(c.reg, 1);
    EXPECT_EQ(ck.liveCount(), 1u);
    // Pool claims empty while the tracker still holds txn 2: leak.
    ck.checkLeaks(c.reg, 0);
    EXPECT_TRUE(c.sawMessage("live transaction count"));
}

// --------------------------------------------------------------------
// Retire order
// --------------------------------------------------------------------

TEST(RetireOrderCheckerTest, GapInSequenceFires)
{
    CollectingRegistry c;
    RetireOrderChecker ck;
    ck.onRetire(c.reg, 0, 1);
    ck.onRetire(c.reg, 0, 2);
    ck.onRetire(c.reg, 1, 1);  // other core has its own sequence
    EXPECT_TRUE(c.got.empty());
    ck.onRetire(c.reg, 0, 4);  // seq 3 skipped
    ASSERT_FALSE(c.got.empty());
    EXPECT_TRUE(c.sawMessage("out of order"));
    EXPECT_EQ(c.got[0].component, "core0.rob");
}

// --------------------------------------------------------------------
// Chain RRT/EPR discipline
// --------------------------------------------------------------------

/** Minimal well-formed chain: source load into EPR 0, one dependent. */
ChainRequest
validChain()
{
    ChainRequest chain;
    chain.id = 77;
    chain.source_epr = 0;

    ChainUop src;
    src.d.uop.op = Opcode::kLoad;
    src.d.uop.dst = 1;
    src.d.uop.src1 = 2;
    src.is_source = true;
    src.epr_dst = 0;
    chain.uops.push_back(src);

    ChainUop add;
    add.d.uop.op = Opcode::kAdd;
    add.d.uop.dst = 3;
    add.d.uop.src1 = 1;
    add.d.uop.src2 = 4;
    add.epr_src1 = 0;          // reads the source load's EPR
    add.src2_live_in = true;   // captured from the core PRF
    add.epr_dst = 1;
    chain.uops.push_back(add);

    chain.live_in_count = 1;
    return chain;
}

TEST(ValidateChainTest, WellFormedChainIsSilent)
{
    CollectingRegistry c;
    EXPECT_EQ(validateChain(validChain(), c.reg, "test"), 0u);
    EXPECT_TRUE(c.got.empty()) << c.got[0].format();
}

TEST(ValidateChainTest, DoubleMappedEprFires)
{
    CollectingRegistry c;
    ChainRequest chain = validChain();
    chain.uops[1].epr_dst = 0;  // collides with the source's EPR
    EXPECT_GT(validateChain(chain, c.reg, "test"), 0u);
    EXPECT_TRUE(c.sawMessage("double-maps EPR"));
    EXPECT_EQ(c.got[0].txn, 77u);
}

TEST(ValidateChainTest, UseBeforeDefFires)
{
    CollectingRegistry c;
    ChainRequest chain = validChain();
    chain.uops[1].epr_src1 = 5;  // no uop ever writes EPR 5
    EXPECT_GT(validateChain(chain, c.reg, "test"), 0u);
    EXPECT_TRUE(c.sawMessage("stale RRT mapping"));
}

TEST(ValidateChainTest, LeakedLiveInMappingFires)
{
    CollectingRegistry c;
    ChainRequest chain = validChain();
    // The wire header promises two live-ins but only one operand is
    // flagged: the live-in vector shipped to the EMC is incomplete.
    chain.live_in_count = 2;
    EXPECT_GT(validateChain(chain, c.reg, "test"), 0u);
    EXPECT_TRUE(c.sawMessage("live-in vector incomplete"));
}

TEST(ValidateChainTest, OutOfRangeEprFires)
{
    CollectingRegistry c;
    ChainRequest chain = validChain();
    chain.uops[1].epr_dst = kEmcPhysRegs;  // one past the register file
    EXPECT_GT(validateChain(chain, c.reg, "test"), 0u);
    EXPECT_TRUE(c.sawMessage("outside the register file"));
}

TEST(ValidateChainTest, UnmappedSourceEprFires)
{
    CollectingRegistry c;
    ChainRequest chain = validChain();
    chain.source_epr = 9;  // no source uop writes EPR 9
    EXPECT_GT(validateChain(chain, c.reg, "test"), 0u);
    EXPECT_TRUE(c.sawMessage("not the destination of any source uop"));
}

// --------------------------------------------------------------------
// EMC predictor-path bounds (core ids index per-core tables)
// --------------------------------------------------------------------

/** Null chip services: the bounds check fires before any port call. */
class NullEmcPort : public EmcPort
{
  public:
    bool
    emcDirectDram(CoreId, Addr, std::uint64_t) override
    {
        return true;
    }
    bool
    emcLlcQuery(CoreId, Addr, std::uint64_t, Addr) override
    {
        return true;
    }
    void
    emcLsqPopulate(CoreId, std::uint64_t, Addr, std::uint64_t) override
    {}
    void emcChainResult(const ChainResult &, unsigned) override {}
    Cycle now() const override { return 0; }
};

TEST(EmcPredBoundsTest, OutOfRangeCoreInMissPredUpdateAborts)
{
    // The train path once masked bad ids with core % num_cores_,
    // silently training the wrong core's table; now it must abort.
    NullEmcPort port;
    EmcConfig cfg;
    Emc emc(cfg, /*num_cores=*/2, &port);
    EXPECT_DEATH(emc.missPredUpdate(2, 0x100, 0x4000, true),
                 "core id out of range");
    EXPECT_DEATH(emc.warmMissPredUpdate(7, 0x100, 0x4000, false),
                 "core id out of range");
}

// --------------------------------------------------------------------
// End to end: the full checker set on a real simulation
// --------------------------------------------------------------------

TEST(SystemInvariantTest, CheckedRunIsCleanAndDoesNotPerturbStats)
{
    SystemConfig cfg;
    cfg.target_uops = 4000;
    cfg.max_cycles = 3'000'000;
    cfg.emc_enabled = true;  // exercise chain validation too

    StatDump plain;
    {
        System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
        sys.run();
        plain = sys.dump();
    }

    std::vector<Violation> got;
    StatDump checked;
    {
        System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
        sys.enableInvariantChecks();
        sys.checkRegistry()->setHandler([&](const Violation &v) {
            got.push_back(v);
        });
        sys.run();
        checked = sys.dump();
    }

    EXPECT_TRUE(got.empty()) << got[0].format();
    // Observation only: the rendered stat output is byte-identical.
    EXPECT_EQ(plain.format(), checked.format());
}

} // namespace
} // namespace emc::check
