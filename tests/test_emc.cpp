/**
 * @file
 * Unit tests for the EMC compute engine (Sections 4.1 and 4.3):
 * context lifecycle, out-of-order chain execution against the oracle,
 * the data-cache / miss-predictor / direct-DRAM load paths, LSQ
 * forwarding of register spills, branch-mispredict and TLB-miss
 * halts, cancellation and coherence hooks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "emc/emc.hh"

namespace emc
{
namespace
{

/** Captures EMC requests; the test decides when responses arrive. */
class FakeMc : public EmcPort
{
  public:
    struct MemReq
    {
        Addr line;
        std::uint64_t token;
        bool direct;
    };

    bool
    emcDirectDram(CoreId core, Addr line, std::uint64_t token) override
    {
        if (reject)
            return false;
        reqs.push_back({line, token, true});
        return true;
    }

    bool
    emcLlcQuery(CoreId core, Addr line, std::uint64_t token,
                Addr pc) override
    {
        if (reject)
            return false;
        reqs.push_back({line, token, false});
        return true;
    }

    void
    emcLsqPopulate(CoreId core, std::uint64_t rob_seq, Addr paddr,
                   std::uint64_t chain_id) override
    {
        lsq_msgs.push_back({rob_seq, paddr});
    }

    void
    emcChainResult(const ChainResult &result, unsigned bytes) override
    {
        results.push_back(result);
    }

    Cycle now() const override { return now_; }

    Cycle now_ = 0;
    bool reject = false;
    std::vector<MemReq> reqs;
    std::vector<std::pair<std::uint64_t, Addr>> lsq_msgs;
    std::vector<ChainResult> results;
};

/** Identity-mapped PTE helper. */
Pte
pte(Addr vpage)
{
    Pte p;
    p.vpage = vpage;
    p.pframe = vpage;  // identity mapping keeps paddr == vaddr
    p.valid = true;
    return p;
}

ChainUop
chainAlu(Opcode op, std::uint8_t dst, std::uint8_t s1, std::uint8_t s2,
         std::int64_t imm, std::uint64_t result, std::uint64_t seq)
{
    ChainUop u;
    u.d.uop.op = op;
    u.d.uop.dst = dst == kNoEpr ? kNoReg : 1;
    u.d.uop.src1 = s1 == kNoEpr ? kNoReg : 2;
    u.d.uop.src2 = s2 == kNoEpr ? kNoReg : 3;
    u.d.uop.imm = imm;
    u.d.result = result;
    u.epr_dst = dst;
    u.epr_src1 = s1;
    u.epr_src2 = s2;
    u.rob_seq = seq;
    return u;
}

/**
 * Build the canonical test chain:
 *   source: load E0 = [A]        (value = node_b)
 *   u1: add E1 = E0 + 8          (address of the dependent load)
 *   u2: load E2 = [E1]           (the dependent cache miss)
 */
ChainRequest
pointerChain(Addr src_vaddr, std::uint64_t node_b, std::uint64_t leaf)
{
    ChainRequest c;
    c.id = 1;
    c.core = 0;
    c.source_paddr_line = lineAlign(src_vaddr);
    c.source_value = node_b;
    c.source_epr = 0;

    ChainUop src;
    src.d.uop.op = Opcode::kLoad;
    src.d.uop.dst = 1;
    src.d.uop.src1 = 1;
    src.d.vaddr = src_vaddr;
    src.d.mem_value = node_b;
    src.d.result = node_b;
    src.is_source = true;
    src.epr_dst = 0;
    src.rob_seq = 10;
    c.uops.push_back(src);

    ChainUop u1 = chainAlu(Opcode::kAdd, 1, 0, kNoEpr, 8, node_b + 8, 11);
    c.uops.push_back(u1);

    ChainUop u2;
    u2.d.uop.op = Opcode::kLoad;
    u2.d.uop.dst = 2;
    u2.d.uop.src1 = 2;
    u2.d.vaddr = node_b + 8;
    u2.d.mem_value = leaf;
    u2.d.result = leaf;
    u2.epr_dst = 2;
    u2.epr_src1 = 1;
    u2.rob_seq = 12;
    c.uops.push_back(u2);

    c.source_pte = pte(pageNum(src_vaddr));
    c.pte_attached = true;
    return c;
}

struct EmcHarness
{
    explicit EmcHarness(EmcConfig cfg = {})
        : emc(cfg, 4, &mc)
    {}

    void
    run(unsigned cycles)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++mc.now_;
            emc.tick();
        }
    }

    /** Answer all outstanding memory requests. */
    void
    answerAll()
    {
        auto reqs = mc.reqs;
        mc.reqs.clear();
        for (const auto &r : reqs)
            emc.memResponse(r.token, true);
    }

    FakeMc mc;
    Emc emc;
};

TEST(EmcTest, ContextLifecycle)
{
    EmcHarness h;
    EXPECT_TRUE(h.emc.hasFreeContext());
    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    ASSERT_TRUE(h.emc.acceptChain(c, false));
    EXPECT_TRUE(h.emc.hasFreeContext());  // 2 contexts by default
    ChainRequest c2 = pointerChain(0x300000, 0x408000, 1);
    c2.id = 2;
    ASSERT_TRUE(h.emc.acceptChain(c2, false));
    EXPECT_FALSE(h.emc.hasFreeContext());
    ChainRequest c3 = pointerChain(0x500000, 0x608000, 2);
    c3.id = 3;
    EXPECT_FALSE(h.emc.acceptChain(c3, false));
    EXPECT_EQ(h.emc.stats().chains_rejected, 1u);
}

TEST(EmcTest, ExecutesChainAfterSourceArrives)
{
    EmcHarness h;
    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    // Pre-install the dependent load's PTE as well.
    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.tlbShootdown(0, 0);  // no-op; exercise the API
    // Nothing happens until the source fill.
    h.run(10);
    EXPECT_TRUE(h.mc.reqs.empty());

    // Install the dependent page then arm.
    ChainRequest c2 = pointerChain(0x208000, 0x100000, 0);
    (void)c2;
    // The dependent load's page (0x208000's page) needs a PTE; ship it
    // via a second accept's attached PTE trick is clumsy — instead the
    // fill path: arm and expect a TLB halt if absent. Here we want
    // success, so pre-insert through a chain whose attached PTE covers
    // that page: re-accept with both pages resident.
    h.emc.observeFill(lineAlign(0x100000));
    h.run(5);
    // The ALU op executed and the dependent load needed page
    // 0x208000: absent -> TLB halt is the expected outcome here.
    ASSERT_EQ(h.mc.results.size(), 1u);
    EXPECT_EQ(h.mc.results[0].outcome, ChainOutcome::kTlbMiss);
    EXPECT_EQ(h.emc.stats().halts_tlb, 1u);
}

/** Accept a chain with every needed PTE resident. */
struct ArmedHarness : EmcHarness
{
    ArmedHarness()
    {
        // Warm the TLB for both pages with a throwaway chain carrying
        // the dependent page's PTE.
        ChainRequest warm = pointerChain(0x208000, 0x100000, 0);
        warm.id = 99;
        warm.source_pte = pte(pageNum(0x208008));
        warm.pte_attached = true;
        EXPECT_TRUE(emc.acceptChain(warm, false));
        emc.cancelChain(99, ChainOutcome::kDisambiguation);
        mc.results.clear();

        chain = pointerChain(0x100000, 0x208000, 42);
        EXPECT_TRUE(emc.acceptChain(chain, false));
        emc.observeFill(lineAlign(0x100000));
    }

    ChainRequest chain;
};

TEST(EmcTest, DependentLoadIssuedAndCompleted)
{
    ArmedHarness h;
    h.run(5);
    // The dependent load reached memory (dcache miss, predictor cold
    // -> via-LLC query).
    ASSERT_EQ(h.mc.reqs.size(), 1u);
    EXPECT_EQ(h.mc.reqs[0].line, lineAlign(0x208008));
    EXPECT_FALSE(h.mc.reqs[0].direct);  // cold predictor: LLC query

    h.answerAll();
    h.run(5);
    ASSERT_EQ(h.mc.results.size(), 1u);
    const ChainResult &r = h.mc.results[0];
    EXPECT_EQ(r.outcome, ChainOutcome::kCompleted);
    // Live-outs: the add and the dependent load (source excluded).
    ASSERT_EQ(r.live_outs.size(), 2u);
    EXPECT_EQ(r.live_outs[0].value, 0x208008u);
    EXPECT_EQ(r.live_outs[1].value, 42u);
    EXPECT_TRUE(r.live_outs[1].is_mem);
    EXPECT_TRUE(r.live_outs[1].llc_miss);
    EXPECT_EQ(h.emc.stats().chains_completed, 1u);
}

TEST(EmcTest, LsqPopulateMessagesSent)
{
    ArmedHarness h;
    h.run(5);
    h.answerAll();
    h.run(5);
    // One memory op executed remotely -> one LSQ populate message.
    ASSERT_EQ(h.mc.lsq_msgs.size(), 1u);
    EXPECT_EQ(h.mc.lsq_msgs[0].first, 12u);  // the load's rob_seq
}

TEST(EmcTest, MissPredictorLearnsAndBypassesLlc)
{
    EmcConfig cfg;
    EmcHarness h(cfg);
    // Train: misses at this PC.
    for (int i = 0; i < 8; ++i)
        h.emc.missPredUpdate(0, 0x208, lineAlign(0x208008), true);

    // Warm the TLB, then run a chain whose dependent load carries the
    // trained PC.
    ChainRequest warm = pointerChain(0x208000, 0x100000, 0);
    warm.id = 99;
    warm.source_pte = pte(pageNum(0x208008));
    ASSERT_TRUE(h.emc.acceptChain(warm, false));
    h.emc.cancelChain(99, ChainOutcome::kDisambiguation);
    h.mc.results.clear();

    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    c.uops[2].d.uop.pc = 0x208;
    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.observeFill(lineAlign(0x100000));
    h.run(5);
    ASSERT_EQ(h.mc.reqs.size(), 1u);
    EXPECT_TRUE(h.mc.reqs[0].direct);
    EXPECT_EQ(h.emc.stats().direct_dram_loads, 1u);
}

TEST(EmcTest, MissPredictorDisabledAblation)
{
    EmcConfig cfg;
    cfg.miss_predictor_enabled = false;
    EmcHarness h(cfg);
    for (int i = 0; i < 8; ++i)
        h.emc.missPredUpdate(0, 0x208, lineAlign(0x208008), true);
    ChainRequest warm = pointerChain(0x208000, 0x100000, 0);
    warm.id = 99;
    warm.source_pte = pte(pageNum(0x208008));
    ASSERT_TRUE(h.emc.acceptChain(warm, false));
    h.emc.cancelChain(99, ChainOutcome::kDisambiguation);
    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    c.uops[2].d.uop.pc = 0x208;
    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.observeFill(lineAlign(0x100000));
    h.run(5);
    ASSERT_EQ(h.mc.reqs.size(), 1u);
    EXPECT_FALSE(h.mc.reqs[0].direct);  // everything queries the LLC
}

TEST(EmcTest, DcacheHitServesLoadLocally)
{
    ArmedHarness h;
    // The dependent line was recently transmitted from DRAM.
    h.emc.observeFill(lineAlign(0x208008));
    h.run(6);
    EXPECT_TRUE(h.mc.reqs.empty());
    ASSERT_EQ(h.mc.results.size(), 1u);
    EXPECT_EQ(h.mc.results[0].outcome, ChainOutcome::kCompleted);
    EXPECT_EQ(h.emc.stats().dcache_hits, 1u);
}

TEST(EmcTest, DcacheInvalidationDirectoryHook)
{
    EmcHarness h;
    h.emc.observeFill(0x40);
    EXPECT_NE(h.emc.dcache().peek(0x40), nullptr);
    h.emc.invalidateLine(0x40);
    EXPECT_EQ(h.emc.dcache().peek(0x40), nullptr);
}

TEST(EmcTest, MergesLoadsToSameLine)
{
    // Two dependent loads to the same line must produce one request.
    EmcHarness h;
    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    // Add a second load to the same line (offset 16).
    ChainUop u3;
    u3.d.uop.op = Opcode::kLoad;
    u3.d.uop.dst = 1;
    u3.d.uop.src1 = 2;
    u3.d.uop.imm = 8;
    u3.d.vaddr = 0x208010;
    u3.d.mem_value = 7;
    u3.d.result = 7;
    u3.epr_dst = 3;
    u3.epr_src1 = 1;
    u3.rob_seq = 13;
    c.uops.push_back(u3);
    c.source_pte = pte(pageNum(0x100000));

    ChainRequest warm = pointerChain(0x208000, 0x100000, 0);
    warm.id = 99;
    warm.source_pte = pte(pageNum(0x208008));
    ASSERT_TRUE(h.emc.acceptChain(warm, false));
    h.emc.cancelChain(99, ChainOutcome::kDisambiguation);
    h.mc.results.clear();

    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.observeFill(lineAlign(0x100000));
    h.run(6);
    EXPECT_EQ(h.mc.reqs.size(), 1u);
    EXPECT_EQ(h.emc.stats().merged_loads, 1u);
    h.answerAll();
    h.run(5);
    ASSERT_EQ(h.mc.results.size(), 1u);
    EXPECT_EQ(h.mc.results[0].outcome, ChainOutcome::kCompleted);
    EXPECT_EQ(h.mc.results[0].live_outs.size(), 3u);
}

TEST(EmcTest, SpillStoreForwardsToFillLoad)
{
    // Chain: source -> store [B] = E0 -> load E2 = [B]: the load must
    // forward from the EMC LSQ without a memory request.
    EmcHarness h;
    ChainRequest c;
    c.id = 5;
    c.core = 0;
    c.source_paddr_line = lineAlign(0x100000);
    c.source_value = 0xdead;
    c.source_epr = 0;

    ChainUop src;
    src.d.uop.op = Opcode::kLoad;
    src.d.uop.dst = 1;
    src.d.uop.src1 = 1;
    src.d.vaddr = 0x100000;
    src.d.mem_value = 0xdead;
    src.is_source = true;
    src.epr_dst = 0;
    src.rob_seq = 20;
    c.uops.push_back(src);

    ChainUop st;
    st.d.uop.op = Opcode::kStore;
    st.d.uop.src1 = 2;
    st.d.uop.src2 = 3;
    st.d.vaddr = 0x300040;
    st.d.mem_value = 0xdead;
    st.src1_live_in = true;
    st.src1_val = 0x300040;
    st.epr_src2 = 0;
    st.rob_seq = 21;
    st.is_spill_store = true;
    c.uops.push_back(st);
    c.live_in_count = 1;

    ChainUop fill;
    fill.d.uop.op = Opcode::kLoad;
    fill.d.uop.dst = 4;
    fill.d.uop.src1 = 2;
    fill.d.vaddr = 0x300040;
    fill.d.mem_value = 0xdead;
    fill.d.result = 0xdead;
    fill.src1_live_in = true;
    fill.src1_val = 0x300040;
    fill.epr_dst = 1;
    fill.rob_seq = 22;
    c.uops.push_back(fill);
    ++c.live_in_count;

    c.source_pte = pte(pageNum(0x100000));
    c.pte_attached = true;

    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.observeFill(lineAlign(0x100000));
    h.run(8);
    EXPECT_TRUE(h.mc.reqs.empty());
    EXPECT_EQ(h.emc.stats().lsq_forwards, 1u);
    EXPECT_EQ(h.emc.stats().stores_executed, 1u);
    ASSERT_EQ(h.mc.results.size(), 1u);
    EXPECT_EQ(h.mc.results[0].outcome, ChainOutcome::kCompleted);
}

TEST(EmcTest, BranchMispredictHalts)
{
    EmcHarness h;
    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    // Insert a mispredicted branch dependent on the source.
    ChainUop br;
    br.d.uop.op = Opcode::kBranch;
    br.d.uop.src1 = 1;
    br.d.taken = true;
    br.d.mispredicted = true;
    br.epr_src1 = 0;
    br.rob_seq = 15;
    c.uops.insert(c.uops.begin() + 1, br);
    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.observeFill(lineAlign(0x100000));
    h.run(5);
    ASSERT_EQ(h.mc.results.size(), 1u);
    EXPECT_EQ(h.mc.results[0].outcome, ChainOutcome::kMispredict);
    // Cancel notices echo every non-source uop for un-offloading.
    EXPECT_EQ(h.mc.results[0].live_outs.size(), c.uops.size() - 1);
    EXPECT_EQ(h.emc.stats().halts_mispredict, 1u);
    EXPECT_TRUE(h.emc.hasFreeContext());
}

TEST(EmcTest, CancelChainFreesContextAndIgnoresLateResponses)
{
    ArmedHarness h;
    h.run(5);
    ASSERT_EQ(h.mc.reqs.size(), 1u);
    h.emc.cancelChain(h.chain.id, ChainOutcome::kDisambiguation);
    // The ArmedHarness warm-up chain already counted one halt.
    EXPECT_EQ(h.emc.stats().halts_disambiguation, 2u);
    // Late memory response for the canceled chain must be ignored.
    h.answerAll();
    h.run(5);
    // Only the cancel notice, no completion.
    ASSERT_EQ(h.mc.results.size(), 1u);
    EXPECT_EQ(h.mc.results[0].outcome, ChainOutcome::kDisambiguation);
}

TEST(EmcTest, SourceAlreadyArrivedArmsImmediately)
{
    EmcHarness h;
    ChainRequest warm = pointerChain(0x208000, 0x100000, 0);
    warm.id = 99;
    warm.source_pte = pte(pageNum(0x208008));
    ASSERT_TRUE(h.emc.acceptChain(warm, false));
    h.emc.cancelChain(99, ChainOutcome::kDisambiguation);
    h.mc.results.clear();

    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    ASSERT_TRUE(h.emc.acceptChain(c, true));
    h.run(4);
    EXPECT_EQ(h.mc.reqs.size(), 1u);
}

TEST(EmcTest, OracleDivergencePanics)
{
    ArmedHarness h;
    SUCCEED();  // construction alone exercises the assert-free path

    EmcHarness bad;
    ChainRequest c = pointerChain(0x100000, 0x208000, 42);
    c.uops[1].d.result = 123;  // wrong oracle for the add
    ASSERT_TRUE(bad.emc.acceptChain(c, false));
    bad.emc.observeFill(lineAlign(0x100000));
    EXPECT_DEATH(bad.run(5), "diverged");
}

TEST(EmcTest, IssueWidthBoundsPerCycleExecution)
{
    // A chain of 6 independent ALU ops (all sources live-in) through a
    // 2-wide back-end takes at least 3 issue cycles.
    EmcConfig cfg;
    EmcHarness h(cfg);
    ChainRequest c;
    c.id = 7;
    c.core = 0;
    c.source_paddr_line = 0x40;
    c.source_value = 1;
    c.source_epr = 0;
    ChainUop src;
    src.d.uop.op = Opcode::kLoad;
    src.d.uop.dst = 1;
    src.d.uop.src1 = 1;
    src.d.vaddr = 0x40;
    src.d.mem_value = 1;
    src.is_source = true;
    src.epr_dst = 0;
    src.rob_seq = 1;
    c.uops.push_back(src);
    for (unsigned i = 0; i < 6; ++i) {
        ChainUop u = chainAlu(Opcode::kAdd, static_cast<std::uint8_t>(i + 1),
                              kNoEpr, kNoEpr, 5, 0, 30 + i);
        u.d.uop.src1 = 2;
        u.src1_live_in = true;
        u.src1_val = 10;
        u.d.result = 15;
        c.uops.push_back(u);
        ++c.live_in_count;
    }
    c.source_pte = pte(0);
    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.observeFill(0x40);
    h.run(2);
    EXPECT_TRUE(h.mc.results.empty());  // cannot finish in 2 cycles
    h.run(6);
    ASSERT_EQ(h.mc.results.size(), 1u);
}

TEST(EmcTest, FullUopBufferChainExecutes)
{
    // A maximum-size chain (16 uops: source + 15 dependent ALU ops in
    // a serial EPR chain) must execute to completion through the
    // 2-wide back-end and 8-entry RS window.
    EmcHarness h;
    ChainRequest c;
    c.id = 9;
    c.core = 0;
    c.source_paddr_line = 0x80;
    c.source_value = 5;
    c.source_epr = 0;
    ChainUop src;
    src.d.uop.op = Opcode::kLoad;
    src.d.uop.dst = 1;
    src.d.uop.src1 = 1;
    src.d.vaddr = 0x80;
    src.d.mem_value = 5;
    src.is_source = true;
    src.epr_dst = 0;
    src.rob_seq = 1;
    c.uops.push_back(src);
    std::uint64_t v = 5;
    for (unsigned i = 1; i < kChainMaxUops; ++i) {
        ChainUop u;
        u.d.uop.op = Opcode::kAdd;
        u.d.uop.dst = 2;
        u.d.uop.src1 = 2;
        u.d.uop.imm = 3;
        v += 3;
        u.d.result = v;
        u.epr_dst = static_cast<std::uint8_t>(i);
        u.epr_src1 = static_cast<std::uint8_t>(i - 1);
        u.rob_seq = 1 + i;
        c.uops.push_back(u);
    }
    c.source_pte = pte(0);
    ASSERT_TRUE(h.emc.acceptChain(c, false));
    h.emc.observeFill(0x80);
    h.run(40);
    ASSERT_EQ(h.mc.results.size(), 1u);
    const ChainResult &r = h.mc.results[0];
    EXPECT_EQ(r.outcome, ChainOutcome::kCompleted);
    ASSERT_EQ(r.live_outs.size(), kChainMaxUops - 1);
    EXPECT_EQ(r.live_outs.back().value, 5u + 3u * (kChainMaxUops - 1));
}

TEST(EmcTest, TwoContextsExecuteConcurrently)
{
    EmcHarness h;
    ChainRequest a = pointerChain(0x100000, 0x208000, 1);
    a.id = 1;
    ChainRequest b = pointerChain(0x300000, 0x208040, 2);
    b.id = 2;
    b.uops[2].d.vaddr = 0x208048;
    b.source_pte = pte(pageNum(0x300000));
    // Warm the dependent page for both.
    ChainRequest warm = pointerChain(0x208000, 0x100000, 0);
    warm.id = 99;
    warm.source_pte = pte(pageNum(0x208008));
    ASSERT_TRUE(h.emc.acceptChain(warm, false));
    h.emc.cancelChain(99, ChainOutcome::kDisambiguation);
    h.mc.results.clear();

    ASSERT_TRUE(h.emc.acceptChain(a, false));
    ASSERT_TRUE(h.emc.acceptChain(b, false));
    h.emc.observeFill(lineAlign(0x100000));
    h.emc.observeFill(lineAlign(0x300000));
    h.run(6);
    // Both contexts issued their dependent loads.
    EXPECT_EQ(h.mc.reqs.size(), 2u);
    h.answerAll();
    h.run(6);
    EXPECT_EQ(h.mc.results.size(), 2u);
    EXPECT_TRUE(h.emc.hasFreeContext());
}

TEST(EmcTest, StatsTrackUopsPerChain)
{
    ArmedHarness h;
    h.run(5);
    h.answerAll();
    h.run(5);
    EXPECT_DOUBLE_EQ(h.emc.stats().uops_per_chain.mean(), 3.0);
    EXPECT_GT(h.emc.stats().chain_exec_cycles.mean(), 0.0);
    EXPECT_EQ(h.emc.stats().live_outs_total, 2u);
}

} // namespace
} // namespace emc
