/**
 * @file
 * Integration tests: whole-chip simulations exercising every module
 * together, plus invariants that only hold end-to-end (inclusive
 * hierarchy, deadlock freedom, deterministic replay, EMC protocol
 * round trips, dual-MC scaling, prefetcher plumbing).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/system.hh"

namespace emc
{
namespace
{

SystemConfig
smallCfg()
{
    SystemConfig cfg;
    cfg.target_uops = 6000;
    cfg.max_cycles = 3'000'000;
    return cfg;
}

TEST(SystemTest, QuadCoreRunsToCompletion)
{
    System sys(smallCfg(), {"mcf", "libquantum", "omnetpp", "lbm"});
    sys.run();
    ASSERT_TRUE(sys.finished());
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GE(sys.core(i).retired(), 6000u);
}

TEST(SystemTest, DeterministicReplay)
{
    StatDump a, b;
    {
        System sys(smallCfg(), {"mcf", "mcf", "mcf", "mcf"});
        sys.run();
        a = sys.dump();
    }
    {
        System sys(smallCfg(), {"mcf", "mcf", "mcf", "mcf"});
        sys.run();
        b = sys.dump();
    }
    EXPECT_EQ(a.get("system.cycles"), b.get("system.cycles"));
    EXPECT_EQ(a.get("llc.demand_misses"), b.get("llc.demand_misses"));
    EXPECT_EQ(a.get("dram.reads"), b.get("dram.reads"));
}

TEST(SystemTest, EmcRunsAndCompletesChains)
{
    SystemConfig cfg = smallCfg();
    cfg.emc_enabled = true;
    System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
    sys.run();
    ASSERT_TRUE(sys.finished());
    const StatDump d = sys.dump();
    EXPECT_GT(d.get("emc.chains_accepted"), 0.0);
    EXPECT_GT(d.get("emc.chains_completed"), 0.0);
    EXPECT_GT(d.get("emc.generated_misses"), 0.0);
    EXPECT_GT(d.get("emc.miss_fraction"), 0.0);
    // EMC-issued misses observe lower latency than core-issued ones
    // (the paper's Figure 18 shape).
    EXPECT_LT(d.get("lat.emc_total"), d.get("lat.core_total"));
}

TEST(SystemTest, McfDependentMissFractionMatchesPaperShape)
{
    // Paper Figure 2: mcf has the highest dependent-miss fraction
    // (tens of percent); lbm has essentially none.
    System sys(smallCfg(), {"mcf", "lbm", "libquantum", "bwaves"});
    sys.run();
    const StatDump d = sys.dump();
    EXPECT_GT(d.get("core0.dep_miss_frac"), 0.3);
    EXPECT_LT(d.get("core1.dep_miss_frac"), 0.05);
    EXPECT_LT(d.get("core2.dep_miss_frac"), 0.05);
}

TEST(SystemTest, HighVsLowIntensityClassification)
{
    // Table 2's split must be reproduced by measured MPKI. Warmup
    // amortizes the cold-start misses of the cache-resident kernels.
    SystemConfig cfg = smallCfg();
    cfg.warmup_uops = 30000;
    cfg.target_uops = 10000;
    System hi(cfg, {"mcf", "libquantum", "lbm", "omnetpp"});
    hi.run();
    const StatDump dh = hi.dump();
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_GE(dh.get("core" + std::to_string(i) + ".mpki"), 10.0)
            << "high-intensity benchmark below 10 MPKI";
    }
    System lo(cfg, {"povray", "gamess", "sjeng", "calculix"});
    lo.run();
    const StatDump dl = lo.dump();
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_LT(dl.get("core" + std::to_string(i) + ".mpki"), 10.0)
            << "low-intensity benchmark above 10 MPKI";
    }
}

TEST(SystemTest, PrefetcherReducesStreamMisses)
{
    SystemConfig base = smallCfg();
    System nopf(base, {"libquantum", "libquantum", "libquantum",
                       "libquantum"});
    nopf.run();
    SystemConfig pf = base;
    pf.prefetch = PrefetchConfig::kStream;
    System stream(pf, {"libquantum", "libquantum", "libquantum",
                       "libquantum"});
    stream.run();
    // Streaming workloads must see a large LLC miss reduction.
    EXPECT_LT(stream.dump().get("llc.demand_misses"),
              0.7 * nopf.dump().get("llc.demand_misses"));
    EXPECT_GT(stream.dump().get("prefetch.issued"), 0.0);
}

TEST(SystemTest, PrefetchersBarelyCoverDependentMisses)
{
    // Paper Figure 3: dependent misses are hard to prefetch.
    SystemConfig cfg = smallCfg();
    cfg.prefetch = PrefetchConfig::kGhb;
    System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
    sys.run();
    const StatDump d = sys.dump();
    const double dep = d.get("llc.dep_misses")
                       + d.get("llc.dep_misses_covered_by_pf");
    if (dep > 0) {
        EXPECT_LT(d.get("llc.dep_misses_covered_by_pf") / dep, 0.35);
    }
}

TEST(SystemTest, IdealDependentHitsSpeedUpMcf)
{
    // Paper Figure 2's idealization: large gains for mcf.
    SystemConfig base = smallCfg();
    System b(base, {"mcf", "mcf", "mcf", "mcf"});
    b.run();
    SystemConfig ideal = base;
    ideal.ideal_dependent_hits = true;
    System i(ideal, {"mcf", "mcf", "mcf", "mcf"});
    i.run();
    EXPECT_GT(i.dump().get("system.ipc_sum"),
              1.2 * b.dump().get("system.ipc_sum"));
    EXPECT_GT(i.dump().get("llc.ideal_dep_hits_granted"), 0.0);
}

TEST(SystemTest, EightCoreSingleAndDualMc)
{
    SystemConfig cfg = smallCfg();
    cfg.target_uops = 3000;
    cfg.scaleToEightCores(false);
    cfg.emc_enabled = true;
    std::vector<std::string> w = {"mcf", "libquantum", "omnetpp", "lbm",
                                  "mcf", "libquantum", "omnetpp", "lbm"};
    System single(cfg, w);
    single.run();
    EXPECT_TRUE(single.finished());
    EXPECT_GT(single.dump().get("emc.chains_accepted"), 0.0);

    SystemConfig dual = smallCfg();
    dual.target_uops = 3000;
    dual.scaleToEightCores(true);
    dual.emc_enabled = true;
    System d(dual, w);
    d.run();
    EXPECT_TRUE(d.finished());
    EXPECT_GT(d.dump().get("emc.chains_accepted"), 0.0);
}

TEST(SystemTest, EnergyAccountingSane)
{
    System sys(smallCfg(), {"mcf", "libquantum", "omnetpp", "lbm"});
    sys.run();
    const StatDump d = sys.dump();
    EXPECT_GT(d.get("energy.total_mj"), 0.0);
    EXPECT_GT(d.get("energy.static_mj"), 0.0);
    EXPECT_GT(d.get("energy.dram_dynamic_mj"), 0.0);
    // Static power dominates at these short run lengths.
    EXPECT_GT(d.get("energy.static_mj"),
              d.get("energy.core_dynamic_mj"));
}

TEST(SystemTest, TrafficAccountingConsistent)
{
    SystemConfig cfg = smallCfg();
    cfg.prefetch = PrefetchConfig::kStream;
    cfg.emc_enabled = true;
    System sys(cfg, {"mcf", "libquantum", "omnetpp", "lbm"});
    sys.run();
    const StatDump d = sys.dump();
    // Every DRAM read/write belongs to an origin bucket; a handful of
    // requests may still be queued (un-issued) when the run ends.
    EXPECT_NEAR(d.get("traffic.total"),
                d.get("dram.reads") + d.get("dram.writes"), 300.0);
    EXPECT_GE(d.get("traffic.total"),
              d.get("dram.reads") + d.get("dram.writes"));
}

TEST(SystemTest, RowConflictRateReasonable)
{
    System sys(smallCfg(), {"mcf", "mcf", "mcf", "mcf"});
    sys.run();
    const double rate = sys.dump().get("dram.row_conflict_rate");
    EXPECT_GT(rate, 0.1);
    EXPECT_LE(rate, 1.0);
}

TEST(SystemTest, LatencyBreakdownAddsUp)
{
    System sys(smallCfg(), {"mcf", "omnetpp", "soplex", "sphinx3"});
    sys.run();
    const StatDump d = sys.dump();
    // Figure 1 split: on-chip + DRAM <= total (after-miss portion is a
    // subset of the full L1-to-L1 latency).
    EXPECT_GT(d.get("lat.core_dram"), 0.0);
    EXPECT_GT(d.get("lat.core_onchip"), 0.0);
    EXPECT_LE(d.get("lat.core_dram") + d.get("lat.core_onchip"),
              d.get("lat.core_total") + 1.0);
}

TEST(SystemTest, InclusiveHierarchyBackInvalidates)
{
    // Small LLC forces evictions; the run must stay functionally
    // correct (oracle asserts) and finish.
    SystemConfig cfg = smallCfg();
    cfg.llc_slice_bytes = 64 * 1024;
    cfg.target_uops = 4000;
    System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
    sys.run();
    EXPECT_TRUE(sys.finished());
}

TEST(SystemTest, EmcWithPrefetchingCoexists)
{
    SystemConfig cfg = smallCfg();
    cfg.emc_enabled = true;
    cfg.prefetch = PrefetchConfig::kGhb;
    System sys(cfg, {"mcf", "libquantum", "omnetpp", "bwaves"});
    sys.run();
    ASSERT_TRUE(sys.finished());
    const StatDump d = sys.dump();
    EXPECT_GT(d.get("emc.chains_completed"), 0.0);
    EXPECT_GT(d.get("prefetch.issued"), 0.0);
}

TEST(SystemTest, BatchVsFrFcfsBothComplete)
{
    for (SchedPolicy pol : {SchedPolicy::kBatch, SchedPolicy::kFrFcfs}) {
        SystemConfig cfg = smallCfg();
        cfg.sched = pol;
        cfg.target_uops = 4000;
        System sys(cfg, {"mcf", "libquantum", "omnetpp", "lbm"});
        sys.run();
        EXPECT_TRUE(sys.finished());
    }
}

TEST(SystemTest, TickOnceIsSafeStandalone)
{
    SystemConfig cfg = smallCfg();
    System sys(cfg, {"gcc", "gcc", "gcc", "gcc"});
    for (int i = 0; i < 1000; ++i)
        sys.tickOnce();
    EXPECT_EQ(sys.cycles(), 1000u);
    EXPECT_GT(sys.core(0).retired(), 0u);
}

TEST(SystemTest, EmcRecordsMissLinesWhenAsked)
{
    SystemConfig cfg = smallCfg();
    cfg.emc_enabled = true;
    cfg.record_emc_miss_lines = true;
    System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
    sys.run();
    EXPECT_FALSE(sys.emcMissLines().empty());
}

TEST(SystemTest, RingTrafficReportedAndEmcShareSane)
{
    SystemConfig cfg = smallCfg();
    cfg.emc_enabled = true;
    System sys(cfg, {"mcf", "mcf", "omnetpp", "omnetpp"});
    sys.run();
    const StatDump d = sys.dump();
    EXPECT_GT(d.get("ring.data_msgs"), 0.0);
    EXPECT_GT(d.get("ring.control_msgs"), 0.0);
    EXPECT_GT(d.get("ring.data_emc_msgs"), 0.0);
    EXPECT_LT(d.get("ring.data_emc_msgs"), d.get("ring.data_msgs"));
}

TEST(SystemTest, FdpSignalsPlumbed)
{
    // A streaming workload with prefetching produces useful and
    // (under DRAM contention) some late prefetches; counters must
    // move and stay consistent.
    SystemConfig cfg = smallCfg();
    cfg.prefetch = PrefetchConfig::kStream;
    cfg.target_uops = 8000;
    System sys(cfg, {"libquantum", "libquantum", "lbm", "lbm"});
    sys.run();
    const StatDump d = sys.dump();
    EXPECT_GT(d.get("prefetch.issued"), 0.0);
    EXPECT_GT(d.get("prefetch.useful"), 0.0);
    EXPECT_LE(d.get("prefetch.useful"), d.get("prefetch.issued"));
    EXPECT_GE(d.get("prefetch.late"), 0.0);
    EXPECT_GE(d.get("prefetch.polluted"), 0.0);
    EXPECT_GE(d.get("prefetch.degree"), 1.0);
    EXPECT_LE(d.get("prefetch.degree"), 32.0);
}

TEST(SystemTest, LatencyPercentilesOrdered)
{
    SystemConfig cfg = smallCfg();
    cfg.emc_enabled = true;
    System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
    sys.run();
    const StatDump d = sys.dump();
    ASSERT_TRUE(d.has("lat.core_p50"));
    EXPECT_LE(d.get("lat.core_p50"), d.get("lat.core_p90"));
    EXPECT_LE(d.get("lat.core_p90"), d.get("lat.core_p99"));
    if (d.has("lat.emc_p50")) {
        EXPECT_LE(d.get("lat.emc_p50"), d.get("lat.emc_p90"));
        // The EMC's median miss is at least as fast as the core's.
        EXPECT_LE(d.get("lat.emc_p50"), d.get("lat.core_p50") + 26.0);
    }
}

TEST(SystemTest, TlbShootdownInvalidatesEmcEntries)
{
    SystemConfig cfg = smallCfg();
    cfg.emc_enabled = true;
    System sys(cfg, {"mcf", "mcf", "mcf", "mcf"});
    sys.run();
    ASSERT_NE(sys.emc(), nullptr);
    // Find a resident page by probing recent chase pages, then shoot
    // it down and verify it is gone.
    bool found = false;
    for (Addr vp = pageNum(0x10000000);
         vp < pageNum(0x10000000) + 16384 && !found; ++vp) {
        if (sys.emc()->tlbResident(0, vp)) {
            found = true;
            sys.tlbShootdown(0, vp);
            EXPECT_FALSE(sys.emc()->tlbResident(0, vp));
        }
    }
    EXPECT_TRUE(found) << "no EMC TLB entries to shoot down";
}

TEST(SystemTest, JsonDumpWellFormedEnough)
{
    System sys(smallCfg(), {"gcc", "gcc", "gcc", "gcc"});
    sys.run();
    const std::string json = sys.dump().toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"system.cycles\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace
} // namespace emc
