/**
 * @file
 * Multi-process sharded sweep tests (DESIGN.md §9):
 *
 *  - job-indexed results independent of worker count and completion
 *    order, with %.17g stats surviving the pipe bit-exactly
 *  - failure semantics: abort-on-fail and collect-failures modes
 *  - worker death mid-job: the coordinator reaps, respawns and
 *    re-queues, and — composed with the EMC_CKPT_DIR autosave
 *    protocol — the killed job resumes from its checkpoint and the
 *    final stats match both an uninterrupted sharded run and the
 *    single-process runMany() path
 *  - protocol plumbing: parseStatsObject, interval-line forwarding
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "bench/bench_util.hh"
#include "sim/system.hh"
#include "sweep/sweep.hh"

using emc::StatDump;
using emc::System;
using emc::SystemConfig;
using emc::bench::RunJob;
using emc::sweep::runSharded;
using emc::sweep::runShardedReport;
using emc::sweep::ShardOptions;
using emc::sweep::ShardReport;

namespace
{

std::string
tmpDir(const std::string &name)
{
    const std::string d = testing::TempDir() + "emc_sweep_"
                          + std::to_string(::getpid()) + "_" + name;
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

void
touch(const std::string &path)
{
    std::ofstream(path) << "x\n";
}

/** Cheap dual-core sim jobs for the end-to-end tests. */
std::vector<RunJob>
smallJobs()
{
    std::vector<RunJob> jobs;
    for (int i = 0; i < 3; ++i) {
        RunJob j;
        j.cfg.num_cores = 2;
        j.cfg.emc_enabled = (i != 0);
        j.cfg.target_uops = 800;
        j.cfg.warmup_uops = 400;
        j.benchmarks = {"mcf", "sphinx3"};
        jobs.push_back(std::move(j));
    }
    return jobs;
}

void
expectSameStats(const std::vector<StatDump> &a,
                const std::vector<StatDump> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].all().size(), b[i].all().size())
            << what << ": job " << i << " stat count";
        auto ia = a[i].all().begin();
        auto ib = b[i].all().begin();
        for (; ia != a[i].all().end(); ++ia, ++ib) {
            EXPECT_EQ(ia->first, ib->first) << what;
            EXPECT_EQ(ia->second, ib->second)
                << what << ": job " << i << " stat " << ia->first;
        }
    }
}

} // namespace

TEST(Sweep, ResultsAreJobIndexedAtAnyWorkerCount)
{
    const auto fn = [](std::size_t job, std::FILE *) {
        StatDump d;
        d.put("job", static_cast<double>(job));
        d.put("val", 1.0 / (1.0 + static_cast<double>(job)));
        return d;
    };
    for (unsigned procs : {1u, 2u, 5u, 16u}) {
        const std::vector<StatDump> r = runSharded(9, procs, fn);
        ASSERT_EQ(r.size(), 9u) << "procs=" << procs;
        for (std::size_t j = 0; j < r.size(); ++j) {
            EXPECT_EQ(r[j].get("job"), static_cast<double>(j));
            EXPECT_EQ(r[j].get("val"),
                      1.0 / (1.0 + static_cast<double>(j)));
        }
    }
}

TEST(Sweep, DoublesSurviveThePipeBitExactly)
{
    const double uglies[] = {1.0 / 3.0, 1e-308, 123456789.123456789,
                             std::nextafter(1.0, 2.0), 0.1 + 0.2};
    const auto fn = [&](std::size_t job, std::FILE *) {
        StatDump d;
        for (std::size_t k = 0; k < std::size(uglies); ++k)
            d.put("u" + std::to_string(k), uglies[k]);
        d.put("scaled", uglies[job % std::size(uglies)] * job);
        return d;
    };
    const std::vector<StatDump> r = runSharded(4, 2, fn);
    for (std::size_t j = 0; j < r.size(); ++j) {
        for (std::size_t k = 0; k < std::size(uglies); ++k) {
            EXPECT_EQ(r[j].get("u" + std::to_string(k)), uglies[k])
                << "job " << j << " stat u" << k;
        }
        EXPECT_EQ(r[j].get("scaled"),
                  uglies[j % std::size(uglies)] * j);
    }
}

TEST(Sweep, ParseStatsObject)
{
    StatDump d;
    EXPECT_TRUE(emc::sweep::parseStatsObject("{}", d));
    EXPECT_TRUE(d.all().empty());
    EXPECT_TRUE(emc::sweep::parseStatsObject(
        "{\"a.b\":1.5,\"c\":-2e-3}", d));
    EXPECT_EQ(d.get("a.b"), 1.5);
    EXPECT_EQ(d.get("c"), -2e-3);
    StatDump bad;
    EXPECT_FALSE(emc::sweep::parseStatsObject("nope", bad));
    EXPECT_FALSE(emc::sweep::parseStatsObject("{\"x\":}", bad));
    EXPECT_FALSE(emc::sweep::parseStatsObject("{\"x\":1", bad));
}

TEST(Sweep, ReportedFailureAbortsByDefault)
{
    const auto fn = [](std::size_t job, std::FILE *) {
        if (job == 2)
            throw std::runtime_error("synthetic \"quoted\" boom");
        StatDump d;
        d.put("ok", 1);
        return d;
    };
    try {
        runSharded(5, 2, fn);
        FAIL() << "expected sweep::Error";
    } catch (const emc::sweep::Error &e) {
        EXPECT_NE(std::string(e.what()).find("job 2"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("\"quoted\""),
                  std::string::npos)
            << "escaped message must round-trip";
    }
}

TEST(Sweep, CollectedFailuresLeaveOtherJobsIntact)
{
    const auto fn = [](std::size_t job, std::FILE *) {
        if (job == 1 || job == 3)
            throw std::runtime_error("boom " + std::to_string(job));
        StatDump d;
        d.put("job", static_cast<double>(job));
        return d;
    };
    ShardOptions opt;
    opt.abort_on_fail = false;
    const ShardReport rep = runShardedReport(5, 3, fn, opt);
    ASSERT_EQ(rep.failures.size(), 2u);
    EXPECT_EQ(rep.failures[0].job, 1u);
    EXPECT_EQ(rep.failures[1].job, 3u);
    EXPECT_NE(rep.failures[1].what.find("boom 3"), std::string::npos);
    for (std::size_t j : {0u, 2u, 4u})
        EXPECT_EQ(rep.results[j].get("job"), static_cast<double>(j));
    EXPECT_TRUE(rep.results[1].all().empty());
}

TEST(Sweep, WorkerDeathReschedulesOntoFreshWorker)
{
    const std::string dir = tmpDir("death");
    const std::string marker = dir + "/died";
    const auto fn = [&](std::size_t job, std::FILE *) {
        if (job == 4 && !fileExists(marker)) {
            touch(marker);
            ::_exit(3); // die without a word: coordinator sees EOF
        }
        StatDump d;
        d.put("job", static_cast<double>(job));
        return d;
    };
    const ShardReport rep = runShardedReport(6, 2, fn);
    EXPECT_EQ(rep.worker_deaths, 1u);
    EXPECT_EQ(rep.jobs_requeued, 1u);
    EXPECT_GT(rep.workers_spawned, 2u);
    for (std::size_t j = 0; j < 6; ++j)
        EXPECT_EQ(rep.results[j].get("job"), static_cast<double>(j));
}

TEST(Sweep, RepeatedWorkerDeathExhaustsAttempts)
{
    const auto fn = [](std::size_t job, std::FILE *) -> StatDump {
        if (job == 0)
            ::_exit(3);
        StatDump d;
        d.put("job", static_cast<double>(job));
        return d;
    };
    ShardOptions opt;
    opt.max_attempts = 2;
    EXPECT_THROW(runShardedReport(2, 1, fn, opt), emc::sweep::Error);
}

TEST(Sweep, IntervalLinesAreForwardedVerbatim)
{
    const std::string dir = tmpDir("stream");
    const std::string path = dir + "/merged.jsonl";
    std::FILE *sink = std::fopen(path.c_str(), "w");
    ASSERT_NE(sink, nullptr);
    ShardOptions opt;
    opt.forward_intervals = sink;
    const auto fn = [](std::size_t job, std::FILE *msg) {
        std::fprintf(msg,
                     "{\"type\":\"interval\",\"job\":%zu,\"cycle\":10,"
                     "\"stats\":{\"x\":%zu}}\n",
                     job, job);
        std::fflush(msg);
        StatDump d;
        d.put("job", static_cast<double>(job));
        return d;
    };
    const ShardReport rep = runShardedReport(3, 2, fn, opt);
    std::fclose(sink);
    EXPECT_EQ(rep.interval_lines, 3u);
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_NE(line.find("\"type\":\"interval\""),
                  std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, 3u);
}

// The satellite end-to-end: a worker is killed mid-simulation after
// autosaving, the coordinator reschedules, the retry restores from
// the autosave, and the final stats are bit-identical to both an
// uninterrupted sharded run and single-process runMany().
TEST(Sweep, KilledSimJobResumesAndMatchesAllPaths)
{
    const std::vector<RunJob> jobs = smallJobs();

    // Reference 1: single-process, in-thread runMany().
    const std::vector<StatDump> base = emc::bench::runMany(jobs);

    // Reference 2: uninterrupted sharded run.
    setenv("EMC_BENCH_PROCS", "2", 1);
    const std::vector<StatDump> sharded = emc::bench::runMany(jobs);
    unsetenv("EMC_BENCH_PROCS");
    expectSameStats(base, sharded, "uninterrupted sharded");

    // Interrupted run: job 1's first worker simulates half-way, saves
    // a full checkpoint (the autosave protocol's file name), then
    // dies. The resume protocol in the retry must finish it.
    const std::string dir = tmpDir("ckpt");
    const std::string marker = dir + "/died";

    const auto fn = [&](std::size_t i, std::FILE *) {
        const std::string stem = dir + "/job" + std::to_string(i);
        if (i == 1 && !fileExists(marker)) {
            touch(marker);
            System sys(jobs[i].cfg, jobs[i].benchmarks);
            for (int t = 0; t < 3000; ++t)
                sys.tickOnce();
            sys.saveCheckpoint(stem + ".ckpt",
                               emc::ckpt::Level::kFull);
            ::_exit(3);
        }
        // The regular resume protocol (mirrors bench runJob).
        System sys(jobs[i].cfg, jobs[i].benchmarks);
        if (fileExists(stem + ".ckpt"))
            sys.restoreCheckpoint(stem + ".ckpt");
        sys.run();
        return sys.dump();
    };
    const ShardReport rep = runShardedReport(jobs.size(), 2, fn);
    EXPECT_EQ(rep.worker_deaths, 1u);
    EXPECT_EQ(rep.jobs_requeued, 1u);
    ASSERT_TRUE(fileExists(dir + "/job1.ckpt"))
        << "the dying worker must have left its autosave behind";
    expectSameStats(base, rep.results, "killed-and-resumed sharded");
}

// EMC_BENCH_PROCS applied to the real bench entry points must be
// byte-identical to the thread-pool path (the CI sweep job checks the
// same property over a whole bench binary's stdout).
TEST(Sweep, BenchEntryPointsMatchAcrossEngines)
{
    const std::vector<RunJob> jobs = smallJobs();
    const std::vector<StatDump> base = emc::bench::runMany(jobs);

    setenv("EMC_BENCH_PROCS", "3", 1);
    const std::vector<StatDump> p3 = emc::bench::runMany(jobs);
    const std::vector<StatDump> direct =
        emc::bench::runManySharded(jobs, 2);
    unsetenv("EMC_BENCH_PROCS");

    expectSameStats(base, p3, "procs=3");
    expectSameStats(base, direct, "runManySharded(2)");
}

TEST(Sweep, SampledSidecarResume)
{
    // Satellite: runManySampled() honors EMC_CKPT_DIR at job
    // granularity — second invocation reloads sidecars bit-exactly
    // without re-simulating.
    std::vector<RunJob> jobs = smallJobs();
    jobs.resize(2);
    for (RunJob &j : jobs) {
        j.cfg.target_uops = 4000;
        j.cfg.warmup_uops = 1000;
    }
    emc::SampleParams p;
    p.period = 1000;
    p.detail = 250;

    const std::vector<StatDump> fresh =
        emc::bench::runManySampled(jobs, p);

    const std::string dir = tmpDir("sampled");
    setenv("EMC_CKPT_DIR", dir.c_str(), 1);
    const std::vector<StatDump> first =
        emc::bench::runManySampled(jobs, p);
    ASSERT_TRUE(fileExists(dir + "/job0.sampled.stats"));
    ASSERT_TRUE(fileExists(dir + "/job1.sampled.stats"));
    const std::vector<StatDump> resumed =
        emc::bench::runManySampled(jobs, p);
    unsetenv("EMC_CKPT_DIR");

    expectSameStats(fresh, first, "sampled with sidecars");
    expectSameStats(first, resumed, "sampled resumed from sidecars");
}
