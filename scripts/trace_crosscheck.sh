#!/bin/bash
# Record/replay cross-check for the v2 trace frontend (DESIGN.md §11).
#
# For one profile per irregular-kernel family (graph, hash, gather):
#   1. record a trace with emctracegen,
#   2. structurally verify it (every checksum, every block),
#   3. replay it with `emcsim --trace-in` (workload name must come
#      from the container's provenance header, no --workload flag),
#   4. run the live generator at the same seed and uop budget,
#   5. diff the two full stat dumps — any divergence fails.
#
# Also proves the typed-error path: a truncated copy must make
# `emctracegen verify` exit non-zero with a byte offset, not crash.
#
# Usage: scripts/trace_crosscheck.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
EMCSIM="$BUILD/tools/emcsim"
TRACEGEN="$BUILD/tools/emctracegen"
UOPS=4000
SEED=24333
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

for profile in bfs hashjoin embed; do
    trace="$WORK/$profile.emct"

    # The core front-end fetches ahead of commit, so record a
    # comfortable multiple of the retire target.
    "$TRACEGEN" record --profile "$profile" --out "$trace" \
        --uops $((UOPS * 6)) --seed "$SEED" \
        --meta "trace_crosscheck.sh"
    "$TRACEGEN" verify "$trace"

    "$EMCSIM" --trace-in "$trace" --cores 1 --emc --uops "$UOPS" \
        --seed "$SEED" > "$WORK/$profile.replay.txt"
    "$EMCSIM" --workload "$profile" --cores 1 --emc --uops "$UOPS" \
        --seed "$SEED" > "$WORK/$profile.live.txt"

    if ! diff -u "$WORK/$profile.live.txt" \
            "$WORK/$profile.replay.txt" > "$WORK/$profile.diff"; then
        echo "FAIL: $profile: replayed stats diverge from live run"
        head -40 "$WORK/$profile.diff"
        exit 1
    fi
    echo "OK: $profile: replay stat-identical to live run"
done

# Typed-error path: truncation must be a clean, offset-bearing error.
full="$WORK/bfs.emct"
trunc="$WORK/bfs.truncated.emct"
head -c $(( $(stat -c%s "$full") - 17 )) "$full" > "$trunc"
if "$TRACEGEN" verify "$trunc" 2> "$WORK/trunc.err"; then
    echo "FAIL: verify accepted a truncated trace"
    exit 1
fi
grep -q "byte offset" "$WORK/trunc.err" || {
    echo "FAIL: truncation error carries no byte offset:"
    cat "$WORK/trunc.err"
    exit 1
}
echo "OK: truncated trace rejected with byte offset"

# The committed reference traces must stay structurally sound and
# carry their provenance.
for ref in traces/*.ref.emct; do
    "$TRACEGEN" verify "$ref"
    "$TRACEGEN" info "$ref" | grep -q "workload" || {
        echo "FAIL: $ref: no workload provenance"
        exit 1
    }
done
echo "trace_crosscheck.sh: all green"
