#!/bin/bash
# One-command verification: configure, build, run the full test suite
# and a smoke pass over the quickest benches. Exits non-zero on any
# failure. Use run_benches.sh for the full figure campaign.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

# Fast smoke of the harness itself.
./build/bench/table1_config > /dev/null
./build/examples/quickstart > /dev/null
EMC_SIM_UOPS=4000 ./build/bench/fig06_dependence_distance > /dev/null

echo "check.sh: all green"
