/**
 * @file
 * A small reusable worker-thread pool for fanning independent jobs
 * (whole-System bench runs, future sharded workloads) across hardware
 * threads. Deliberately minimal: submit closures, wait for all of
 * them; no futures-per-job, no work stealing.
 *
 * Thread count resolution order: explicit constructor argument, the
 * EMC_BENCH_THREADS environment variable, then the hardware
 * concurrency. A pool of one thread runs jobs inline on the calling
 * thread (no worker is spawned), so single-threaded runs behave
 * exactly like a plain loop.
 */

#ifndef EMC_COMMON_THREAD_POOL_HH
#define EMC_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emc
{

class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 resolves via defaultThreads()
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue a job. With one thread the job runs immediately on the
     * calling thread; otherwise a worker picks it up.
     */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void waitAll();

    unsigned threads() const { return threads_; }

    /**
     * EMC_BENCH_THREADS if set and positive, else the hardware
     * concurrency (at least 1).
     */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_work_;   ///< signals queued work
    std::condition_variable cv_idle_;   ///< signals all-done
    std::size_t in_flight_ = 0;         ///< queued + running jobs
    bool stopping_ = false;
};

} // namespace emc

#endif // EMC_COMMON_THREAD_POOL_HH
