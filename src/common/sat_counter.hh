/**
 * @file
 * Saturating counters, used by the dependent-miss trigger (Section 4.2)
 * and the EMC LLC hit/miss predictor (Section 4.3).
 */

#ifndef EMC_COMMON_SAT_COUNTER_HH
#define EMC_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/log.hh"

namespace emc
{

/** An n-bit up/down saturating counter. */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 3, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
        emc_assert(bits >= 1 && bits <= 16, "SatCounter bits out of range");
        emc_assert(initial <= max_, "SatCounter initial above max");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }

    /**
     * Paper trigger condition: "if either of the top 2-bits of the
     * saturating counter are set" — i.e. value >= max/4 + 1 for a 3-bit
     * counter this is value >= 2.
     */
    bool
    topTwoBitsSet() const
    {
        const unsigned top_two_mask = max_ & ~(max_ >> 2);
        return (value_ & top_two_mask) != 0;
    }

    /** Generic threshold test. */
    bool aboveThreshold(unsigned t) const { return value_ > t; }

    void reset(unsigned v = 0) { emc_assert(v <= max_, "reset"); value_ = v; }

    /** Checkpoint the counter value (width is configuration). */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(value_);
    }

  private:
    unsigned max_;  // ckpt-skip: (counter ceiling is config)
    unsigned value_;
};

} // namespace emc

#endif // EMC_COMMON_SAT_COUNTER_HH
