/**
 * @file
 * Lightweight statistics framework: named scalar counters, averages and
 * histograms collected into a registry so the benches can report them
 * uniformly.
 */

#ifndef EMC_COMMON_STATS_HH
#define EMC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace emc
{

/** A running scalar statistic (count or accumulated value). */
class Scalar
{
  public:
    void add(double v = 1.0) { value_ += v; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(value_);
    }

  private:
    double value_ = 0.0;
};

/** A running average: total / samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        total_ += v;
        ++count_;
    }

    double mean() const { return count_ ? total_ / count_ : 0.0; }
    double total() const { return total_; }
    std::uint64_t samples() const { return count_; }
    void reset() { total_ = 0.0; count_ = 0; }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(total_);
        ar.io(count_);
    }

  private:
    double total_ = 0.0;
    std::uint64_t count_ = 0;
};

/** A fixed-bucket histogram over [0, bucket_width * buckets). */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 32, double bucket_width = 1.0)
        : width_(bucket_width), counts_(buckets, 0), overflow_(0)
    {}

    void
    sample(double v)
    {
        total_ += v;
        ++samples_;
        if (v > max_)
            max_ = v;
        auto idx = static_cast<std::size_t>(v / width_);
        if (idx < counts_.size())
            ++counts_[idx];
        else
            ++overflow_;
    }

    double mean() const { return samples_ ? total_ / samples_ : 0.0; }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t buckets() const { return counts_.size(); }
    double bucketWidth() const { return width_; }

    /** Largest sample seen since the last reset (0 with no samples). */
    double maxSample() const { return max_; }

    /**
     * Estimate the @p q quantile (q in [0, 1]) from the buckets: the
     * midpoint of the bucket holding the rank-ceil(q * samples)
     * sample. Overflow-aware: a rank that lands past the last bucket
     * reports the largest recorded sample instead of silently
     * clamping to the histogram range.
     */
    double
    percentile(double q) const
    {
        if (samples_ == 0)
            return 0.0;
        const std::uint64_t want = static_cast<std::uint64_t>(
            q * static_cast<double>(samples_));
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < counts_.size(); ++b) {
            seen += counts_[b];
            if (seen >= want)
                return (static_cast<double>(b) + 0.5) * width_;
        }
        return max_;
    }

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        overflow_ = 0;
        total_ = 0;
        samples_ = 0;
        max_ = 0.0;
    }

    /** Checkpoint counts and accumulators (width/shape is config). */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(counts_);
        ar.io(overflow_);
        ar.io(total_);
        ar.io(samples_);
        ar.io(max_);
    }

  private:
    double width_;  // ckpt-skip: (bucket width is config)
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_;
    double total_ = 0.0;
    std::uint64_t samples_ = 0;
    double max_ = 0.0;
};

/**
 * A flat name -> value registry the System fills at the end of a run.
 * Keeping it a plain map keeps the bench harnesses trivial.
 */
class StatDump
{
  public:
    void put(const std::string &name, double v) { values_[name] = v; }

    double
    get(const std::string &name, double dflt = 0.0) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? dflt : it->second;
    }

    bool has(const std::string &name) const { return values_.count(name); }

    const std::map<std::string, double> &all() const { return values_; }

    /** Render "name = value" lines, one per stat, sorted by name. */
    std::string format() const;

    /** Render as a flat JSON object (machine-readable export). */
    std::string toJson() const;

  private:
    std::map<std::string, double> values_;
};

} // namespace emc

#endif // EMC_COMMON_STATS_HH
