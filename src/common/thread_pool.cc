#include "common/thread_pool.hh"

#include <cstdlib>

namespace emc
{

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("EMC_BENCH_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
    if (threads_ < 2)
        return;  // inline mode: no workers
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    waitAll();
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    cv_work_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (workers_.empty()) {
        job();
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    cv_work_.notify_one();
}

void
ThreadPool::waitAll()
{
    if (workers_.empty())
        return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_work_.wait(lk, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lk(mu_);
            --in_flight_;
            if (in_flight_ == 0)
                cv_idle_.notify_all();
        }
    }
}

} // namespace emc
