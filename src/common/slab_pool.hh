/**
 * @file
 * Slab allocator for short-lived objects keyed by a monotonically
 * increasing 64-bit id (the System's memory transactions). Objects
 * live in fixed-size slabs (stable addresses, reused through a free
 * list) and an id -> slot window replaces the former per-object
 * unordered_map: because ids are handed out in order and most objects
 * retire quickly, the window from the oldest live id to the newest is
 * short, making lookup an array index instead of a hash probe.
 */

#ifndef EMC_COMMON_SLAB_POOL_HH
#define EMC_COMMON_SLAB_POOL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/log.hh"

namespace emc
{

template <typename T>
class IdSlabPool
{
  public:
    /**
     * Allocate the object for @p id. Ids must be strictly increasing
     * across the pool's lifetime (the caller owns the counter).
     * @return reference valid until erase(id)
     */
    T &
    create(std::uint64_t id)
    {
        emc_assert(id >= base_ + window_.size(),
                   "IdSlabPool ids must be strictly increasing");
        if (window_.empty())
            base_ = id;
        // Ids are normally dense; tolerate gaps by padding.
        while (base_ + window_.size() < id)
            window_.push_back(kNoSlot);

        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = static_cast<std::uint32_t>(slot_count_++);
            if (slot % kSlabSize == 0)
                slabs_.push_back(std::make_unique<Entry[]>(kSlabSize));
        }
        window_.push_back(slot);
        Entry &e = entry(slot);
        e.live = true;
        e.value = T{};
        ++live_;
        return e.value;
    }

    /** @return the object for @p id, or nullptr if absent/erased */
    T *
    find(std::uint64_t id)
    {
        const std::uint32_t slot = slotOf(id);
        return slot == kNoSlot ? nullptr : &entry(slot).value;
    }

    const T *
    find(std::uint64_t id) const
    {
        const std::uint32_t slot = slotOf(id);
        return slot == kNoSlot ? nullptr : &entry(slot).value;
    }

    /** Release @p id's object (no-op when absent). */
    void
    erase(std::uint64_t id)
    {
        if (id < base_ || id - base_ >= window_.size())
            return;
        std::uint32_t &ref = window_[id - base_];
        if (ref == kNoSlot)
            return;
        entry(ref).live = false;
        free_.push_back(ref);
        ref = kNoSlot;
        --live_;
        // Advance the window past retired ids so it tracks the live
        // span rather than the full id history.
        while (!window_.empty() && window_.front() == kNoSlot) {
            window_.pop_front();
            ++base_;
        }
    }

    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }

    /** @return true if any live object satisfies @p pred */
    template <typename Pred>
    bool
    anyOf(Pred pred) const
    {
        std::size_t seen = 0;
        for (std::size_t s = 0; s < slot_count_ && seen < live_; ++s) {
            const Entry &e = entry(static_cast<std::uint32_t>(s));
            if (!e.live)
                continue;
            ++seen;
            if (pred(e.value))
                return true;
        }
        return false;
    }

    /** Peak concurrently-live objects (capacity actually allocated). */
    std::size_t capacity() const { return slot_count_; }

    /**
     * Checkpoint the live objects in id order. @p fn is called as
     * fn(ar, value) per live object and serializes the payload; slot
     * assignment is not preserved (ids are the stable identity).
     */
    template <class A, class Fn>
    void
    ckptSave(A &ar, Fn fn) const
    {
        std::uint64_t count = live_;
        ar.io(count);
        for (std::size_t i = 0; i < window_.size(); ++i) {
            const std::uint32_t slot = window_[i];
            if (slot == kNoSlot)
                continue;
            std::uint64_t id = base_ + i;
            ar.io(id);
            // Copy so fn can take a mutable reference on both paths.
            T tmp = entry(slot).value;
            fn(ar, tmp);
        }
    }

    /** Inverse of ckptSave: rebuilds the pool from scratch. */
    template <class A, class Fn>
    void
    ckptLoad(A &ar, Fn fn)
    {
        slabs_.clear();
        free_.clear();
        window_.clear();
        base_ = 0;
        slot_count_ = 0;
        live_ = 0;
        std::uint64_t count = 0;
        ar.io(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t id = 0;
            ar.io(id);
            T &v = create(id);
            fn(ar, v);
        }
    }

  private:
    static constexpr std::size_t kSlabSize = 256;
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    struct Entry
    {
        T value{};
        bool live = false;
    };

    Entry &
    entry(std::uint32_t slot)
    {
        return slabs_[slot / kSlabSize][slot % kSlabSize];
    }

    const Entry &
    entry(std::uint32_t slot) const
    {
        return slabs_[slot / kSlabSize][slot % kSlabSize];
    }

    std::uint32_t
    slotOf(std::uint64_t id) const
    {
        if (id < base_ || id - base_ >= window_.size())
            return kNoSlot;
        return window_[id - base_];
    }

    std::vector<std::unique_ptr<Entry[]>> slabs_;
    std::vector<std::uint32_t> free_;
    std::deque<std::uint32_t> window_;  ///< id - base_ -> slot
    std::uint64_t base_ = 0;
    std::size_t slot_count_ = 0;
    std::size_t live_ = 0;
};

} // namespace emc

#endif // EMC_COMMON_SLAB_POOL_HH
