/**
 * @file
 * Fundamental scalar types and small helpers shared by every module.
 */

#ifndef EMC_COMMON_TYPES_HH
#define EMC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace emc
{

/** Global simulation time, measured in core clock cycles (3.2 GHz). */
using Cycle = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** Identifier of a core in the simulated CMP. */
using CoreId = std::uint32_t;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid addresses. */
constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Cache line size used throughout the hierarchy (Table 1). */
constexpr std::uint32_t kLineBytes = 64;
constexpr std::uint32_t kLineShift = 6;

/** Page size used by the virtual memory system. */
constexpr std::uint32_t kPageBytes = 4096;
constexpr std::uint32_t kPageShift = 12;

/** Align @p a down to its cache line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Extract the line number of address @p a. */
constexpr Addr
lineNum(Addr a)
{
    return a >> kLineShift;
}

/** Align @p a down to its page base. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~static_cast<Addr>(kPageBytes - 1);
}

/** Extract the virtual/physical page number of @p a. */
constexpr Addr
pageNum(Addr a)
{
    return a >> kPageShift;
}

/** True if @p v is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr std::uint32_t
log2i(std::uint64_t v)
{
    std::uint32_t r = 0;
    while (v > 1) { v >>= 1; ++r; }
    return r;
}

} // namespace emc

#endif // EMC_COMMON_TYPES_HH
