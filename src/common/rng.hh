/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic decision in the simulator and the workload
 * generators draws from an explicitly seeded Rng so that runs are
 * bit-reproducible.
 */

#ifndef EMC_COMMON_RNG_HH
#define EMC_COMMON_RNG_HH

#include <cstdint>

#include "common/log.hh"

namespace emc
{

/** Small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to spread entropy across the state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        emc_assert(bound != 0, "Rng::below(0)");
        // Modulo bias is negligible for the bounds used here.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        emc_assert(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Checkpoint the full generator state (DESIGN.md §7). */
    template <class A>
    void
    ser(A &ar)
    {
        for (auto &word : state_)
            ar.io(word);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace emc

#endif // EMC_COMMON_RNG_HH
