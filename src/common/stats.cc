#include "common/stats.hh"

#include <cstdio>

namespace emc
{

std::string
StatDump::format() const
{
    std::string out;
    char line[256];
    for (const auto &[name, value] : values_) {
        std::snprintf(line, sizeof(line), "%-56s %18.6f\n",
                      name.c_str(), value);
        out += line;
    }
    return out;
}

std::string
StatDump::toJson() const
{
    std::string out = "{\n";
    char line[256];
    bool first = true;
    for (const auto &[name, value] : values_) {
        std::snprintf(line, sizeof(line), "%s  \"%s\": %.9g",
                      first ? "" : ",\n", name.c_str(), value);
        out += line;
        first = false;
    }
    out += "\n}\n";
    return out;
}

} // namespace emc
