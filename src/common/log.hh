/**
 * @file
 * Minimal gem5-style logging / assertion helpers.
 *
 * panic()  — simulator bug; aborts.
 * fatal()  — user/config error; exits with status 1.
 * warn()   — suspicious but survivable condition.
 * inform() — status message.
 */

#ifndef EMC_COMMON_LOG_HH
#define EMC_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace emc
{

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

inline void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace emc

#define emc_panic(msg) ::emc::panicImpl(__FILE__, __LINE__, (msg))
#define emc_fatal(msg) ::emc::fatalImpl(__FILE__, __LINE__, (msg))
#define emc_warn(msg) ::emc::warnImpl((msg))
#define emc_inform(msg) ::emc::informImpl((msg))

/** Invariant check that stays on in release builds. */
#define emc_assert(cond, msg) \
    do { \
        if (!(cond)) { \
            ::emc::panicImpl(__FILE__, __LINE__, \
                             std::string("assertion failed: ") + #cond + \
                             " — " + (msg)); \
        } \
    } while (0)

#endif // EMC_COMMON_LOG_HH
