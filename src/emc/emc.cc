#include "emc/emc.hh"

#include <algorithm>

#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace emc
{

namespace
{

/** Env-gated chain timeline debugging (EMC_CHAIN_DEBUG=1). */
bool
traceOn()
{
    static const bool on = std::getenv("EMC_CHAIN_DEBUG") != nullptr;
    return on;
}

/**
 * The EMC's legacy table knobs (miss_pred_entries/threshold) override
 * the generic predictor config so pre-zoo configurations and the
 * ablation sweeps keep selecting the exact same table.
 */
pred::PredConfig
emcPredConfig(const EmcConfig &cfg)
{
    pred::PredConfig p = cfg.pred;
    p.table_entries = cfg.miss_pred_entries;
    p.table_threshold = cfg.miss_pred_threshold;
    return p;
}

} // namespace

Emc::Emc(const EmcConfig &cfg, unsigned num_cores, EmcPort *port)
    : cfg_(cfg), num_cores_(num_cores), port_(port),
      contexts_(cfg.contexts),
      dcache_(cfg.dcache_bytes, cfg.dcache_ways, "emc_dcache"),
      pred_(pred::makePredictor(emcPredConfig(cfg), num_cores))
{
    for (unsigned c = 0; c < num_cores; ++c)
        tlbs_.emplace_back(cfg.tlb_entries);
    for (auto &ctx : contexts_) {
        ctx.prf.resize(kEmcPhysRegs);
    }
}

bool
Emc::hasFreeContext() const
{
    for (const auto &ctx : contexts_) {
        if (!ctx.busy)
            return true;
    }
    return false;
}

bool
Emc::acceptChain(const ChainRequest &chain, bool source_already_arrived)
{
    Context *free_ctx = nullptr;
    for (auto &ctx : contexts_) {
        if (!ctx.busy) {
            free_ctx = &ctx;
            break;
        }
    }
    if (!free_ctx) {
        ++stats_.chains_rejected;
        return false;
    }

    if (check_)
        check::validateChain(chain, *check_, "emc.accept");

    Context &c = *free_ctx;
    c.busy = true;
    c.armed = false;
    c.halted = false;
    c.chain = chain;
    c.state.assign(chain.uops.size(), UopState());
    for (auto &r : c.prf) {
        r.ready = false;
        r.value = 0;
    }
    c.lsq.clear();
    c.arm_cycle = kNoCycle;
    c.generation = generation_counter_++;

    // Install the shipped PTE (Section 4.1.4).
    if (chain.pte_attached)
        tlbs_[chain.core].insert(chain.source_pte);

    ++stats_.chains_accepted;
    stats_.uops_per_chain.sample(static_cast<double>(chain.uops.size()));
    if (traceOn()) {
        std::fprintf(stderr, "[%llu] chain %llu core%u accept uops=%zu "
                     "src_line=%llx pre_armed=%d\n",
                     (unsigned long long)port_->now(),
                     (unsigned long long)chain.id, chain.core,
                     chain.uops.size(),
                     (unsigned long long)chain.source_paddr_line,
                     source_already_arrived);
    }

    if (source_already_arrived)
        observeFill(chain.source_paddr_line);
    return true;
}

void
Emc::observeFill(Addr paddr_line)
{
    // Keep the most recent DRAM-to-chip lines in the EMC data cache.
    if (dcache_.peek(paddr_line) == nullptr)
        dcache_.insert(paddr_line);

    // Arm any context waiting for this fill as its source data.
    for (unsigned i = 0; i < contexts_.size(); ++i) {
        Context &c = contexts_[i];
        if (!c.busy || c.armed || c.halted)
            continue;
        if (c.chain.source_paddr_line != paddr_line)
            continue;
        c.armed = true;
        c.arm_cycle = port_->now();
        if (traceOn()) {
            std::fprintf(stderr, "[%llu] chain %llu arm\n",
                         (unsigned long long)port_->now(),
                         (unsigned long long)c.chain.id);
        }
        // Every source load's destination EPR receives its slice of
        // the arriving line (the MSHR wakes all merged loads at once).
        for (unsigned u = 0; u < c.chain.uops.size(); ++u) {
            ChainUop &cu = c.chain.uops[u];
            if (!cu.is_source)
                continue;
            c.state[u].issued = true;
            c.state[u].completed = true;
            c.state[u].value = cu.d.mem_value;
            if (cu.epr_dst != kNoEpr) {
                c.prf[cu.epr_dst].value = cu.d.mem_value;
                c.prf[cu.epr_dst].ready = true;
            }
        }
    }
}

bool
Emc::sourceReady(const Context &c, const ChainUop &cu, bool first_src,
                 std::uint64_t &value) const
{
    const std::uint8_t epr = first_src ? cu.epr_src1 : cu.epr_src2;
    const bool live_in = first_src ? cu.src1_live_in : cu.src2_live_in;
    const std::uint64_t captured = first_src ? cu.src1_val : cu.src2_val;
    const bool has =
        first_src ? cu.d.uop.hasSrc1() : cu.d.uop.hasSrc2();
    if (!has) {
        value = 0;
        return true;
    }
    if (live_in) {
        value = captured;
        return true;
    }
    emc_assert(epr != kNoEpr, "chain source neither EPR nor live-in");
    if (!c.prf[epr].ready)
        return false;
    value = c.prf[epr].value;
    return true;
}

bool
Emc::uopReady(const Context &c, unsigned idx, std::uint64_t &a,
              std::uint64_t &b) const
{
    const ChainUop &cu = c.chain.uops[idx];
    const UopState &st = c.state[idx];
    if (st.issued || st.completed)
        return false;
    return sourceReady(c, cu, true, a) && sourceReady(c, cu, false, b);
}

void
Emc::missPredUpdate(CoreId core, Addr pc, Addr paddr_line,
                    bool was_miss)
{
    emc_assert(core < num_cores_,
               "missPredUpdate: core id out of range");
    pred::PredFeatures f;
    f.core = core;
    f.pc = pc;
    f.line = paddr_line;
    pred_->train(f, was_miss);
}

void
Emc::warmMissPredUpdate(CoreId core, Addr pc, Addr paddr_line,
                        bool was_miss)
{
    emc_assert(core < num_cores_,
               "warmMissPredUpdate: core id out of range");
    pred::PredFeatures f;
    f.core = core;
    f.pc = pc;
    f.line = paddr_line;
    pred_->warmTrain(f, was_miss);
}

bool
Emc::issueUop(unsigned ctx_idx, unsigned uop_idx)
{
    Context &c = contexts_[ctx_idx];
    ChainUop &cu = c.chain.uops[uop_idx];
    UopState &st = c.state[uop_idx];
    const Cycle now = port_->now();

    std::uint64_t a = 0, b = 0;
    const bool ready = uopReady(c, uop_idx, a, b);
    emc_assert(ready, "issueUop on non-ready uop");

    switch (cu.d.uop.op) {
      case Opcode::kLoad: {
        const Addr vaddr = effectiveAddr(a, cu.d.uop.imm);
        emc_assert(vaddr == cu.d.vaddr,
                   "EMC load address diverged from oracle: "
                       + cu.d.uop.toString());

        // LSQ forwarding from an earlier spill store in this chain.
        for (const LsqEntry &le : c.lsq) {
            if (le.vaddr == vaddr) {
                st.issued = true;
                st.complete_cycle = now + 1;
                st.value = cu.d.mem_value;
                ++stats_.lsq_forwards;
                ++stats_.loads_executed;
                ++stats_.uops_executed;
                port_->emcLsqPopulate(c.chain.core, cu.rob_seq, vaddr,
                                      c.chain.id);
                return true;
            }
        }

        // Virtual address translation through the per-core EMC TLB.
        Addr pframe = kNoAddr;
        if (!tlbs_[c.chain.core].lookup(pageNum(vaddr), pframe)) {
            haltContext(ctx_idx, ChainOutcome::kTlbMiss);
            return true;
        }
        const Addr paddr = (pframe << kPageShift)
                           | (vaddr & (kPageBytes - 1));
        const Addr line = lineAlign(paddr);

        port_->emcLsqPopulate(c.chain.core, cu.rob_seq, paddr,
                              c.chain.id);

        // EMC data cache first (Section 4.1.3).
        if (dcache_.access(line) != nullptr) {
            ++stats_.dcache_hits;
            st.issued = true;
            st.complete_cycle = now + cfg_.dcache_latency;
            st.value = cu.d.mem_value;
            ++stats_.loads_executed;
            ++stats_.uops_executed;
            return true;
        }
        ++stats_.dcache_misses;

        // MSHR-style merging: a request for this line is already in
        // flight from the EMC (e.g. a node's pointer and a field on
        // the same line); piggyback instead of issuing again.
        auto wit = line_waiters_.find(line);
        if (wit != line_waiters_.end()) {
            wit->second.push_back({ctx_idx, uop_idx, c.generation, line});
            st.issued = true;
            st.mem_outstanding = true;
            st.value = cu.d.mem_value;
            ++stats_.loads_executed;
            ++stats_.uops_executed;
            ++stats_.merged_loads;
            return true;
        }

        // Predict LLC hit/miss to pick the path (Section 4.3).
        // predict() mutates nothing but its counters, so the
        // backpressure retry below may simply re-predict next cycle.
        bool predict_miss = false;
        if (cfg_.miss_predictor_enabled && cfg_.direct_dram) {
            emc_assert(c.chain.core < num_cores_,
                       "chain core id out of range");
            pred::PredFeatures f;
            f.core = c.chain.core;
            f.pc = cu.d.uop.pc;
            f.line = line;
            predict_miss = pred_->predict(f);
        }

        const std::uint64_t token = next_token_++;
        bool sent;
        if (predict_miss) {
            sent = port_->emcDirectDram(c.chain.core, line, token);
            if (sent)
                ++stats_.direct_dram_loads;
        } else {
            sent = port_->emcLlcQuery(c.chain.core, line, token,
                                      cu.d.uop.pc);
            if (sent)
                ++stats_.llc_query_loads;
        }
        if (!sent)
            return false;  // backpressure: retry next cycle

        if (traceOn()) {
            std::fprintf(stderr, "[%llu] chain %llu load uop%u line=%llx"
                         " %s\n",
                         (unsigned long long)now,
                         (unsigned long long)c.chain.id, uop_idx,
                         (unsigned long long)line,
                         predict_miss ? "direct" : "via-llc");
        }
        EMC_OBS_POINT(tracer_, obs::TracePoint::kEmcIssue, now,
                      c.chain.id, obs::Track::emcCtx(trace_mc_, ctx_idx),
                      line);
        tokens_[token] = {ctx_idx, uop_idx, c.generation, line};
        line_waiters_[line];  // open the merge window for this line
        st.issued = true;
        st.mem_outstanding = true;
        st.value = cu.d.mem_value;
        ++stats_.loads_executed;
        ++stats_.uops_executed;
        return true;
      }

      case Opcode::kStore: {
        const Addr vaddr = effectiveAddr(a, cu.d.uop.imm);
        emc_assert(vaddr == cu.d.vaddr,
                   "EMC store address diverged from oracle: "
                       + cu.d.uop.toString());
        emc_assert(b == cu.d.mem_value,
                   "EMC store data diverged from oracle: "
                       + cu.d.uop.toString());
        if (c.lsq.size() >= cfg_.lsq_entries) {
            // LSQ full: treat as a halt-worthy structural problem.
            haltContext(ctx_idx, ChainOutcome::kDisambiguation);
            return true;
        }
        c.lsq.push_back({vaddr, b});
        st.issued = true;
        st.complete_cycle = now + 1;
        st.value = b;
        ++stats_.stores_executed;
        ++stats_.uops_executed;
        port_->emcLsqPopulate(c.chain.core, cu.rob_seq, vaddr,
                              c.chain.id);
        return true;
      }

      case Opcode::kBranch: {
        // The EMC can detect a misprediction but cannot redirect: it
        // halts and lets the core re-execute the chain (Section 4.3).
        emc_assert(evalBranch(a) == cu.d.taken,
                   "EMC branch direction diverged from oracle");
        if (cu.d.mispredicted) {
            haltContext(ctx_idx, ChainOutcome::kMispredict);
            return true;
        }
        st.issued = true;
        st.complete_cycle = now + 1;
        st.value = a;
        ++stats_.uops_executed;
        return true;
      }

      default: {
        const std::uint64_t value = evalAlu(cu.d.uop.op, a, b,
                                            cu.d.uop.imm);
        emc_assert(!cu.d.uop.hasDst() || value == cu.d.result,
                   "EMC ALU result diverged from oracle: "
                       + cu.d.uop.toString());
        st.issued = true;
        st.complete_cycle = now + 1;
        st.value = value;
        ++stats_.uops_executed;
        return true;
      }
    }
}

void
Emc::completeUop(Context &c, unsigned idx, std::uint64_t value)
{
    UopState &st = c.state[idx];
    const ChainUop &cu = c.chain.uops[idx];
    st.completed = true;
    st.mem_outstanding = false;
    st.value = value;
    if (cu.epr_dst != kNoEpr) {
        c.prf[cu.epr_dst].value = value;
        c.prf[cu.epr_dst].ready = true;
    }
}

void
Emc::haltContext(unsigned ctx_idx, ChainOutcome reason)
{
    Context &c = contexts_[ctx_idx];
    c.halted = true;
    c.halt_reason = reason;
    switch (reason) {
      case ChainOutcome::kTlbMiss: ++stats_.halts_tlb; break;
      case ChainOutcome::kMispredict: ++stats_.halts_mispredict; break;
      case ChainOutcome::kDisambiguation:
        ++stats_.halts_disambiguation;
        break;
      default: break;
    }

    // Tell the core to re-execute the whole chain: echo every chain
    // uop's rob_seq so the core can un-offload them.
    ChainResult result;
    result.chain_id = c.chain.id;
    result.core = c.chain.core;
    result.outcome = reason;
    for (const ChainUop &cu : c.chain.uops) {
        if (cu.is_source)
            continue;
        LiveOut lo;
        lo.rob_seq = cu.rob_seq;
        result.live_outs.push_back(lo);
    }
    result.live_out_count = 1;  // a single small cancel message
    port_->emcChainResult(result, 8);

    c.busy = false;
}

void
Emc::finishContext(unsigned ctx_idx)
{
    Context &c = contexts_[ctx_idx];
    ++stats_.chains_completed;
    if (traceOn()) {
        std::fprintf(stderr, "[%llu] chain %llu finish (armed@%llu)\n",
                     (unsigned long long)port_->now(),
                     (unsigned long long)c.chain.id,
                     (unsigned long long)c.arm_cycle);
    }
    if (c.arm_cycle != kNoCycle) {
        stats_.chain_exec_cycles.sample(
            static_cast<double>(port_->now() - c.arm_cycle));
    }

    ChainResult result;
    result.chain_id = c.chain.id;
    result.core = c.chain.core;
    result.outcome = ChainOutcome::kCompleted;
    for (unsigned u = 0; u < c.chain.uops.size(); ++u) {
        const ChainUop &cu = c.chain.uops[u];
        if (cu.is_source)
            continue;  // completes at the core via its own fill
        LiveOut lo;
        lo.rob_seq = cu.rob_seq;
        lo.value = c.state[u].value;
        lo.is_mem = isMem(cu.d.uop.op);
        lo.is_store = isStore(cu.d.uop.op);
        lo.llc_miss = c.state[u].llc_miss;
        result.live_outs.push_back(lo);
        if (cu.epr_dst != kNoEpr || isStore(cu.d.uop.op))
            ++result.live_out_count;
    }
    stats_.live_outs_total += result.live_out_count;
    port_->emcChainResult(result, result.liveOutBytes());

    c.busy = false;
}

void
Emc::memResponse(std::uint64_t token, bool was_llc_miss)
{
    auto it = tokens_.find(token);
    if (it == tokens_.end())
        return;
    const TokenInfo info = it->second;
    tokens_.erase(it);

    auto finish = [&](const TokenInfo &ti) {
        Context &c = contexts_[ti.ctx];
        if (!c.busy || c.generation != ti.generation)
            return;  // chain canceled while the request was in flight
        UopState &st = c.state[ti.uop];
        if (!st.mem_outstanding)
            return;
        st.llc_miss = was_llc_miss;
        completeUop(c, ti.uop, st.value);
    };
    if (traceOn()) {
        std::fprintf(stderr, "[%llu] memresp line=%llx ctx=%u uop=%u\n",
                     (unsigned long long)port_->now(),
                     (unsigned long long)info.line, info.ctx, info.uop);
    }
    finish(info);

    // Wake every load merged onto this line.
    auto wit = line_waiters_.find(info.line);
    if (wit != line_waiters_.end()) {
        for (const TokenInfo &ti : wit->second)
            finish(ti);
        line_waiters_.erase(wit);
    }
}

void
Emc::cancelChain(std::uint64_t chain_id, ChainOutcome reason)
{
    for (unsigned i = 0; i < contexts_.size(); ++i) {
        Context &c = contexts_[i];
        if (c.busy && c.chain.id == chain_id) {
            haltContext(i, reason);
            return;
        }
    }
}

void
Emc::invalidateLine(Addr paddr_line)
{
    dcache_.invalidate(paddr_line);
}

void
Emc::warmInvalidateLine(Addr paddr_line)
{
    dcache_.warmInvalidate(paddr_line);
}

void
Emc::tlbShootdown(CoreId core, Addr vpage)
{
    tlbs_[core % num_cores_].shootdown(vpage);
}

bool
Emc::tlbResident(CoreId core, Addr vpage) const
{
    return tlbs_[core % num_cores_].resident(vpage);
}

void
Emc::selfCheck(check::CheckRegistry &reg) const
{
    auto bad = [&](std::uint64_t chain_id, const std::string &msg) {
        reg.fail("emc_state", "emc", chain_id, msg);
    };

    // Per-context structure.
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
        const Context &c = contexts_[i];
        if (!c.busy)
            continue;
        if (c.state.size() != c.chain.uops.size()) {
            bad(c.chain.id, "context " + std::to_string(i)
                + " uop-state size diverged from its chain");
        }
        if (c.lsq.size() > cfg_.lsq_entries)
            bad(c.chain.id, "context LSQ exceeds capacity");
        for (std::size_t u = 0; u < c.state.size(); ++u) {
            const UopState &st = c.state[u];
            if (st.completed && st.mem_outstanding) {
                bad(c.chain.id, "uop " + std::to_string(u)
                    + " both completed and memory-outstanding");
            }
            if ((st.completed || st.mem_outstanding) && !st.issued) {
                bad(c.chain.id, "uop " + std::to_string(u)
                    + " progressed without being issued");
            }
        }
    }

    // Token map vs. line-waiter map: every direct-issued request holds
    // exactly one token and opened exactly one merge window, and the
    // two maps are erased together on response — so the token lines
    // are a bijection onto the line_waiters_ keys.
    reg.expectEq("emc_state", "emc", tokens_.size(),
                 line_waiters_.size(),
                 "outstanding tokens vs. open merge windows");
    // lint-ok: unordered-iter (order-insensitive invariant scan)
    for (const auto &kv : tokens_) {
        const TokenInfo &info = kv.second;
        if (!line_waiters_.count(info.line)) {
            bad(kv.first, "token line has no merge window "
                "(token/line-waiter maps diverged)");
        }
        if (info.ctx >= contexts_.size()) {
            bad(kv.first, "token references invalid context");
            continue;
        }
        const Context &c = contexts_[info.ctx];
        if (!c.busy || c.generation != info.generation)
            continue;  // stale token of a canceled chain (legal)
        if (info.uop >= c.state.size()) {
            bad(c.chain.id, "token references uop out of range");
            continue;
        }
        const UopState &st = c.state[info.uop];
        if (!st.issued || st.completed || !st.mem_outstanding) {
            bad(c.chain.id, "token maps uop " + std::to_string(info.uop)
                + " whose state is not memory-outstanding "
                  "(leaked or double-mapped token)");
        }
    }

    // Leak detection in the other direction: every memory-outstanding
    // uop of a live chain must be reachable from a token or a merge
    // window, or its fill can never arrive.
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
        const Context &c = contexts_[i];
        if (!c.busy)
            continue;
        for (std::size_t u = 0; u < c.state.size(); ++u) {
            if (!c.state[u].mem_outstanding)
                continue;
            bool covered = false;
            // lint-ok: unordered-iter (order-insensitive invariant scan)
            for (const auto &kv : tokens_) {
                const TokenInfo &ti = kv.second;
                if (ti.ctx == i && ti.uop == u
                    && ti.generation == c.generation) {
                    covered = true;
                    break;
                }
            }
            // lint-ok: unordered-iter (order-insensitive invariant scan)
            for (const auto &kv : line_waiters_) {
                for (const TokenInfo &ti : kv.second) {
                    if (ti.ctx == i && ti.uop == u
                        && ti.generation == c.generation) {
                        covered = true;
                        break;
                    }
                }
            }
            if (!covered) {
                bad(c.chain.id, "uop " + std::to_string(u)
                    + " is memory-outstanding with no in-flight "
                      "request (leaked mapping)");
            }
        }
    }

    auto struct_fail = [&](const std::string &msg) {
        reg.fail("cache_state", "emc", 0, msg);
    };
    dcache_.checkConsistent(struct_fail);
}

void
Emc::tick()
{
    const Cycle now = port_->now();

    // Complete scheduled short-latency uops and finished contexts.
    for (unsigned i = 0; i < contexts_.size(); ++i) {
        Context &c = contexts_[i];
        if (!c.busy || c.halted)
            continue;
        bool all_done = c.armed;
        for (unsigned u = 0; u < c.state.size(); ++u) {
            UopState &st = c.state[u];
            if (st.issued && !st.completed && !st.mem_outstanding
                && st.complete_cycle <= now) {
                completeUop(c, u, st.value);
            }
            if (!st.completed)
                all_done = false;
        }
        if (all_done)
            finishContext(i);
    }

    // Issue up to issue_width ready uops across armed contexts; the
    // shared reservation station bounds how many waiting uops are
    // considered per cycle.
    unsigned issued = 0;
    unsigned considered = 0;
    for (unsigned i = 0; i < contexts_.size()
                         && issued < cfg_.issue_width; ++i) {
        Context &c = contexts_[i];
        if (!c.busy || !c.armed || c.halted)
            continue;
        for (unsigned u = 0; u < c.chain.uops.size()
                             && issued < cfg_.issue_width; ++u) {
            if (c.state[u].issued || c.state[u].completed)
                continue;
            if (++considered > cfg_.rs_entries)
                break;
            std::uint64_t a, b;
            if (!uopReady(c, u, a, b))
                continue;
            if (issueUop(i, u))
                ++issued;
            if (c.halted)
                break;
        }
    }
}

} // namespace emc
