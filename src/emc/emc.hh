/**
 * @file
 * The Enhanced Memory Controller's compute engine (Section 4.1/4.3).
 *
 * The EMC sits at the memory-controller ring stop. It has no
 * front-end: chains arrive pre-decoded and pre-renamed from the cores.
 * Per context it holds a 16-entry uop buffer, a 16-entry physical
 * register file and a live-in vector; the shared back-end is 2-wide
 * with an 8-entry reservation station, a small LSQ, a 4 KB data cache,
 * a 32-entry per-core TLB and a pluggable LLC hit/miss predictor
 * (src/pred, DESIGN.md §13; the paper's PC-hashed 3-bit table by
 * default) that lets predicted-miss loads bypass the LLC and go
 * straight to DRAM.
 */

#ifndef EMC_EMC_EMC_HH
#define EMC_EMC_EMC_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "check/checkers.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "emc/chain.hh"
#include "obs/obs.hh"
#include "pred/predictor.hh"
#include "vm/tlb.hh"

namespace emc
{

/** EMC configuration (Table 1 defaults for the quad-core system). */
struct EmcConfig
{
    unsigned contexts = 2;
    unsigned issue_width = 2;       ///< 2 ALUs
    unsigned rs_entries = 8;
    unsigned lsq_entries = 8;       ///< per context
    unsigned dcache_bytes = 4096;
    unsigned dcache_ways = 4;
    Cycle dcache_latency = 2;
    unsigned tlb_entries = 32;      ///< per core
    unsigned miss_pred_entries = 1024;
    unsigned miss_pred_threshold = 3;  ///< counter > t => predict miss
    bool direct_dram = true;        ///< bypass LLC on predicted miss
    bool miss_predictor_enabled = true;
    /// Off-chip prediction engine (DESIGN.md §13). The table knobs
    /// above override pred.table_entries/table_threshold so existing
    /// ablation sweeps keep working unchanged.
    pred::PredConfig pred;
};

/** EMC statistics (Figures 15, 17, 22 and Section 6.5). */
struct EmcStats
{
    std::uint64_t chains_accepted = 0;
    std::uint64_t chains_rejected = 0;
    std::uint64_t chains_completed = 0;
    std::uint64_t halts_tlb = 0;
    std::uint64_t halts_mispredict = 0;
    std::uint64_t halts_disambiguation = 0;
    std::uint64_t uops_executed = 0;
    std::uint64_t loads_executed = 0;
    std::uint64_t stores_executed = 0;
    std::uint64_t dcache_hits = 0;
    std::uint64_t dcache_misses = 0;
    std::uint64_t lsq_forwards = 0;
    std::uint64_t direct_dram_loads = 0;
    std::uint64_t llc_query_loads = 0;
    std::uint64_t merged_loads = 0;   ///< MSHR-merged onto in-flight line
    std::uint64_t bypass_mispredictions = 0;  ///< bypassed but LLC had it
    std::uint64_t live_outs_total = 0;
    Average chain_exec_cycles;    ///< arm -> completion
    Average uops_per_chain;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(chains_accepted);
        ar.io(chains_rejected);
        ar.io(chains_completed);
        ar.io(halts_tlb);
        ar.io(halts_mispredict);
        ar.io(halts_disambiguation);
        ar.io(uops_executed);
        ar.io(loads_executed);
        ar.io(stores_executed);
        ar.io(dcache_hits);
        ar.io(dcache_misses);
        ar.io(lsq_forwards);
        ar.io(direct_dram_loads);
        ar.io(llc_query_loads);
        ar.io(merged_loads);
        ar.io(bypass_mispredictions);
        ar.io(live_outs_total);
        ar.io(chain_exec_cycles);
        ar.io(uops_per_chain);
    }
};

/** Services the chip provides to the EMC (implemented by the System). */
class EmcPort
{
  public:
    virtual ~EmcPort() = default;

    /**
     * Issue a predicted-miss load directly to the local memory
     * controller (no ring, no LLC). Completion arrives via
     * Emc::memResponse(token).
     * @retval false MC queue full; the EMC retries next cycle
     */
    virtual bool emcDirectDram(CoreId core, Addr paddr_line,
                               std::uint64_t token) = 0;

    /**
     * Issue a predicted-hit load to the LLC over the control ring. On
     * an LLC miss the System forwards it to DRAM; either way
     * completion arrives via Emc::memResponse(token).
     * @retval false backpressure; retry next cycle
     */
    virtual bool emcLlcQuery(CoreId core, Addr paddr_line,
                             std::uint64_t token, Addr pc) = 0;

    /**
     * Notify the home core that a chain memory op executed (the LSQ
     * populate message of Section 4.3). Asynchronous; if the core
     * detects an ordering conflict the System cancels the chain via
     * Emc::cancelChain().
     */
    virtual void emcLsqPopulate(CoreId core, std::uint64_t rob_seq,
                                Addr paddr, std::uint64_t chain_id) = 0;

    /** Ship a chain result (live-outs or cancel notice) to the core. */
    virtual void emcChainResult(const ChainResult &result,
                                unsigned bytes) = 0;

    virtual Cycle now() const = 0;
};

/** The EMC compute engine. One instance per enhanced memory controller. */
class Emc
{
  public:
    /**
     * @param cfg configuration
     * @param num_cores cores served (TLBs and predictors are per core)
     * @param port chip services (not owned)
     */
    Emc(const EmcConfig &cfg, unsigned num_cores, EmcPort *port);

    /** Advance one cycle. */
    void tick();

    // ---- chain lifecycle ----

    /** True if a context is free to accept a chain. */
    bool hasFreeContext() const;

    /**
     * Accept a chain (called by the System after the transfer delay).
     * @param chain the chain
     * @param source_already_arrived the watched fill completed before
     *        the chain arrived; arm immediately
     * @retval false all contexts busy
     */
    bool acceptChain(const ChainRequest &chain,
                     bool source_already_arrived);

    /**
     * A DRAM fill for @p paddr_line reached this memory controller.
     * Arms any context waiting on it and refreshes the EMC data cache
     * (Section 4.1.3: the cache holds the most recent lines
     * transmitted from DRAM to the chip).
     */
    void observeFill(Addr paddr_line);

    /** Completion of an EMC-issued memory request. */
    void memResponse(std::uint64_t token, bool was_llc_miss);

    /** Cancel a running chain (disambiguation conflict at the core). */
    void cancelChain(std::uint64_t chain_id, ChainOutcome reason);

    // ---- coherence / virtual memory hooks ----

    /** LLC evicted/invalidated a line the EMC caches (directory bit). */
    void invalidateLine(Addr paddr_line);

    /** Stat-free invalidateLine() for the functional-warming path. */
    void warmInvalidateLine(Addr paddr_line);

    /** TLB shootdown for @p vpage of @p core. */
    void tlbShootdown(CoreId core, Addr vpage);

    /** Core-side residence check for the EMC TLB bit. */
    bool tlbResident(CoreId core, Addr vpage) const;

    /** Train the LLC hit/miss predictor (Section 4.3, [47]). */
    void missPredUpdate(CoreId core, Addr pc, Addr paddr_line,
                        bool was_miss);

    /** Stat-free missPredUpdate() for the functional-warming path. */
    void warmMissPredUpdate(CoreId core, Addr pc, Addr paddr_line,
                            bool was_miss);

    /** The off-chip predictor gating the LLC-bypass path. */
    const pred::OffchipPredictor &predictor() const { return *pred_; }

    /**
     * True when no context holds a chain: tick() is then a guaranteed
     * no-op (armed/halted work only exists inside a busy context).
     */
    bool
    idle() const
    {
        for (const auto &ctx : contexts_)
            if (ctx.busy)
                return false;
        return true;
    }

    const EmcStats &stats() const { return stats_; }

    /** Zero the statistics (post-warmup measurement start). */
    void
    resetStats()
    {
        stats_ = EmcStats{};
        pred_->resetStats();
    }
    const Cache &dcache() const { return dcache_; }
    const EmcConfig &config() const { return cfg_; }

    /**
     * Attach the invariant-check registry (null detaches). Enables
     * chain validation on accept plus the periodic selfCheck().
     */
    void setCheck(check::CheckRegistry *reg) { check_ = reg; }

    /**
     * Attach the lifecycle tracer (null detaches). Observation only;
     * emits an emc_issue instant per chain load sent to memory, on
     * the per-context track of memory controller @p mc.
     */
    void
    setTrace(obs::Tracer *t, unsigned mc)
    {
        tracer_ = t;
        trace_mc_ = mc;
    }

    /**
     * Deep structural self-check (periodic in checked runs): context
     * flag coherence, per-uop state vs. the token map (RRT/EPR leak
     * and double-map detection), token/line-waiter bijection, and the
     * data-cache tag store.
     */
    void selfCheck(check::CheckRegistry &reg) const;

    /** Checkpoint contexts, caches, predictors and the token maps. */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(contexts_);
        ar.io(dcache_);
        ar.io(tlbs_);
        ar.io(*pred_);
        ar.io(tokens_);
        ar.io(line_waiters_);
        ar.io(next_token_);
        ar.io(generation_counter_);
        ar.io(stats_);
    }

  private:
    /** One EMC physical register. */
    struct EprReg
    {
        std::uint64_t value = 0;
        bool ready = false;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(value);
            ar.io(ready);
        }
    };

    /** Dynamic state of one chain uop inside a context. */
    struct UopState
    {
        bool issued = false;
        bool completed = false;
        Cycle complete_cycle = kNoCycle;
        std::uint64_t value = 0;
        bool mem_outstanding = false;
        bool llc_miss = false;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(issued);
            ar.io(completed);
            ar.io(complete_cycle);
            ar.io(value);
            ar.io(mem_outstanding);
            ar.io(llc_miss);
        }
    };

    /** EMC LSQ entry (register spills awaiting fills). */
    struct LsqEntry
    {
        Addr vaddr = kNoAddr;
        std::uint64_t value = 0;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(vaddr);
            ar.io(value);
        }
    };

    /** One chain execution context (uop buffer + PRF + LSQ). */
    struct Context
    {
        bool busy = false;
        bool armed = false;
        bool halted = false;
        ChainOutcome halt_reason = ChainOutcome::kCompleted;
        ChainRequest chain;
        std::vector<UopState> state;
        std::vector<EprReg> prf;
        std::vector<LsqEntry> lsq;
        Cycle arm_cycle = kNoCycle;
        std::uint64_t generation = 0;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(busy);
            ar.io(armed);
            ar.io(halted);
            ar.io(halt_reason);
            ar.io(chain);
            ar.io(state);
            ar.io(prf);
            ar.io(lsq);
            ar.io(arm_cycle);
            ar.io(generation);
        }
    };

    /** Maps an outstanding memory token back to its chain uop. */
    struct TokenInfo
    {
        unsigned ctx = 0;
        unsigned uop = 0;
        std::uint64_t generation = 0;
        Addr line = kNoAddr;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(ctx);
            ar.io(uop);
            ar.io(generation);
            ar.io(line);
        }
    };

    bool sourceReady(const Context &c, const ChainUop &cu,
                     bool first_src, std::uint64_t &value) const;
    bool uopReady(const Context &c, unsigned idx,
                  std::uint64_t &a, std::uint64_t &b) const;
    bool issueUop(unsigned ctx_idx, unsigned uop_idx);
    void completeUop(Context &c, unsigned idx, std::uint64_t value);
    void finishContext(unsigned ctx_idx);
    void haltContext(unsigned ctx_idx, ChainOutcome reason);

    EmcConfig cfg_;       // ckpt-skip: (config, not state)
    unsigned num_cores_;  // ckpt-skip: (config, not state)
    EmcPort *port_;

    std::vector<Context> contexts_;
    Cache dcache_;
    std::vector<EmcTlb> tlbs_;                   ///< per core
    /// Off-chip predictor gating the LLC-bypass path (DESIGN.md §13).
    std::unique_ptr<pred::OffchipPredictor> pred_;
    std::unordered_map<std::uint64_t, TokenInfo> tokens_;
    /// line -> loads merged onto an outstanding request (MSHR-style)
    std::unordered_map<Addr, std::vector<TokenInfo>> line_waiters_;
    std::uint64_t next_token_ = 1;
    std::uint64_t generation_counter_ = 1;

    // Invariant checking (null when disabled; observation only)
    check::CheckRegistry *check_ = nullptr;
    obs::Tracer *tracer_ = nullptr;
    unsigned trace_mc_ = 0;  // ckpt-skip: (obs wiring)

    EmcStats stats_;
};

} // namespace emc

#endif // EMC_EMC_EMC_HH
