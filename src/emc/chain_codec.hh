/**
 * @file
 * Wire codec for dependence chains (Table 1: "Micro-op size: 6 bytes
 * in addition to any live-in source data").
 *
 * The codec packs exactly the fields the EMC needs to execute a chain
 * into 6 bytes per uop, with a live-in data vector of 8-byte words.
 * Immediates that fit 16 bits travel inline; wider immediates travel
 * through the live-in vector, matching the paper's Figure 9 where
 * immediates are shifted into the live-in source vector. The codec
 * both validates that our chains fit the paper's wire budget and
 * provides the exact transfer byte counts the interconnect model
 * charges.
 *
 * Simulator bookkeeping (ROB sequence numbers, oracle annotations)
 * deliberately does not travel on the wire; EncodedChain carries it
 * alongside so decode can rebuild a full ChainRequest for execution.
 */

#ifndef EMC_EMC_CHAIN_CODEC_HH
#define EMC_EMC_CHAIN_CODEC_HH

#include <cstdint>
#include <vector>

#include "emc/chain.hh"

namespace emc
{

/** A chain in wire form. */
struct EncodedChain
{
    std::vector<std::uint8_t> uop_bytes;   ///< 6 B per uop
    std::vector<std::uint64_t> live_ins;   ///< captured data + wide imms

    // Side-band bookkeeping (not charged as wire traffic).
    std::vector<std::uint64_t> rob_seqs;
    std::vector<DynUop> oracle;
    std::uint64_t chain_id = 0;
    CoreId core = 0;
    Addr source_paddr_line = kNoAddr;
    std::uint64_t source_value = 0;
    Pte source_pte;
    bool pte_attached = false;

    /** Bytes that actually cross the interconnect. */
    unsigned
    wireBytes() const
    {
        return static_cast<unsigned>(uop_bytes.size()
                                     + 8 * live_ins.size());
    }
};

/**
 * Encode @p chain. Fails (returns false) only if a uop cannot be
 * represented — which would mean the chain violates the paper's wire
 * format (a bug chain generation must not produce).
 */
bool encodeChain(const ChainRequest &chain, EncodedChain &out);

/** Decode back into an executable ChainRequest. */
ChainRequest decodeChain(const EncodedChain &enc);

} // namespace emc

#endif // EMC_EMC_CHAIN_CODEC_HH
