/**
 * @file
 * Dependence-chain types shared between the core's chain-generation
 * unit (Section 4.2) and the EMC's execution contexts (Section 4.3).
 */

#ifndef EMC_EMC_CHAIN_HH
#define EMC_EMC_CHAIN_HH

#include <cstdint>
#include <vector>

#include "isa/trace.hh"
#include "vm/page_table.hh"

namespace emc
{

/** Maximum uops per chain / EMC physical registers (Table 1). */
constexpr unsigned kChainMaxUops = 16;
constexpr unsigned kEmcPhysRegs = 16;

/** Sentinel EPR id. */
constexpr std::uint8_t kNoEpr = 0xff;

/**
 * One uop of a dependence chain after renaming onto the EMC register
 * space. Sources are either EPRs produced inside the chain or live-in
 * values captured from the core PRF at chain-generation time.
 */
struct ChainUop
{
    DynUop d;                    ///< decoded uop + oracle annotations
    std::uint8_t epr_dst = kNoEpr;
    std::uint8_t epr_src1 = kNoEpr; ///< kNoEpr => src1 is live-in/absent
    std::uint8_t epr_src2 = kNoEpr;
    bool src1_live_in = false;
    bool src2_live_in = false;
    std::uint64_t src1_val = 0;  ///< captured live-in value
    std::uint64_t src2_val = 0;
    std::uint64_t rob_seq = 0;   ///< home-core ROB sequence number
    bool is_source = false;      ///< the triggering source-miss load
    bool is_spill_store = false; ///< store classified as register spill

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(d);
        ar.io(epr_dst);
        ar.io(epr_src1);
        ar.io(epr_src2);
        ar.io(src1_live_in);
        ar.io(src2_live_in);
        ar.io(src1_val);
        ar.io(src2_val);
        ar.io(rob_seq);
        ar.io(is_source);
        ar.io(is_spill_store);
    }
};

/**
 * A complete chain shipped from a core to the EMC along with its
 * live-in data and the PTE of the source miss (Section 4.1.4).
 */
struct ChainRequest
{
    std::uint64_t id = 0;
    CoreId core = 0;
    Addr source_paddr_line = kNoAddr;  ///< fill that arms the context
    std::uint64_t source_value = 0;    ///< oracle data of the source load
    std::uint8_t source_epr = kNoEpr;  ///< EPR that receives the data
    std::vector<ChainUop> uops;        ///< <= kChainMaxUops
    unsigned live_in_count = 0;
    Pte source_pte;                    ///< shipped when not EMC-resident
    bool pte_attached = false;

    /** Wire size of the uops in bytes (6 B/uop, Table 1). */
    unsigned uopBytes() const
    {
        return 6 * static_cast<unsigned>(uops.size());
    }

    /** Wire size of the live-in data in bytes. */
    unsigned liveInBytes() const { return 8 * live_in_count; }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(id);
        ar.io(core);
        ar.io(source_paddr_line);
        ar.io(source_value);
        ar.io(source_epr);
        ar.io(uops);
        ar.io(live_in_count);
        ar.io(source_pte);
        ar.io(pte_attached);
    }
};

/** Why a chain finished at the EMC. */
enum class ChainOutcome : std::uint8_t
{
    kCompleted,       ///< all uops executed; live-outs returned
    kTlbMiss,         ///< EMC TLB missed; core must re-execute
    kMispredict,      ///< EMC detected a mispredicted branch
    kDisambiguation,  ///< memory-ordering conflict at the home core
};

/** One live-out register (or store notification) returned to the core. */
struct LiveOut
{
    std::uint64_t rob_seq = 0;
    std::uint64_t value = 0;
    bool is_mem = false;     ///< the producing uop was a load/store
    bool is_store = false;
    bool llc_miss = false;   ///< the EMC load missed the LLC (taint)

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(rob_seq);
        ar.io(value);
        ar.io(is_mem);
        ar.io(is_store);
        ar.io(llc_miss);
    }
};

/** Live-out package returned to the core on completion. */
struct ChainResult
{
    std::uint64_t chain_id = 0;
    CoreId core = 0;
    ChainOutcome outcome = ChainOutcome::kCompleted;
    std::vector<LiveOut> live_outs;
    unsigned live_out_count = 0;

    /** Wire size of the live-out data in bytes. */
    unsigned liveOutBytes() const { return 8 * live_out_count; }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(chain_id);
        ar.io(core);
        ar.io(outcome);
        ar.io(live_outs);
        ar.io(live_out_count);
    }
};

} // namespace emc

#endif // EMC_EMC_CHAIN_HH
