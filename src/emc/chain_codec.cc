#include "emc/chain_codec.hh"

#include <cstring>

#include "common/log.hh"

namespace emc
{

namespace
{

/**
 * 6-byte uop layout:
 *   byte 0: opcode (5 bits) | is_source (bit 5) | is_spill (bit 6)
 *           | imm_in_live_in (bit 7)
 *   byte 1: dst EPR (5 bits; 31 = none) | src1 kind (bits 5-6:
 *           0 none, 1 EPR, 2 live-in) | src2-kind low bit (bit 7)
 *   byte 2: src2 kind high bit (bit 0) | src1 index (5 bits, bits 1-5)
 *           | src2 index low 2 bits (bits 6-7)
 *   byte 3: src2 index high 3 bits (bits 0-2) | arch dst (bits 3-6)
 *           | taken (bit 7)
 *   bytes 4-5: 16-bit signed immediate, or the live-in slot of a wide
 *              immediate when imm_in_live_in is set
 */
constexpr unsigned kUopBytes = 6;
constexpr std::uint8_t kEprNone = 31;

enum SrcKind : unsigned
{
    kSrcNone = 0,
    kSrcEpr = 1,
    kSrcLiveIn = 2,
};

} // namespace

bool
encodeChain(const ChainRequest &chain, EncodedChain &out)
{
    out = EncodedChain{};
    out.chain_id = chain.id;
    out.core = chain.core;
    out.source_paddr_line = chain.source_paddr_line;
    out.source_value = chain.source_value;
    out.source_pte = chain.source_pte;
    out.pte_attached = chain.pte_attached;

    for (const ChainUop &cu : chain.uops) {
        std::uint8_t b[kUopBytes] = {};

        const auto op = static_cast<unsigned>(cu.d.uop.op);
        if (op >= 32)
            return false;
        b[0] = static_cast<std::uint8_t>(op);
        if (cu.is_source)
            b[0] |= 1u << 5;
        if (cu.is_spill_store)
            b[0] |= 1u << 6;

        // Immediate: inline if it fits 16 bits signed, else spill
        // into the live-in vector (Figure 9 semantics).
        std::uint16_t imm16 = 0;
        const std::int64_t imm = cu.d.uop.imm;
        if (imm >= -32768 && imm <= 32767) {
            imm16 = static_cast<std::uint16_t>(
                static_cast<std::int16_t>(imm));
        } else {
            b[0] |= 1u << 7;
            if (out.live_ins.size() > 0xffff)
                return false;
            imm16 = static_cast<std::uint16_t>(out.live_ins.size());
            out.live_ins.push_back(static_cast<std::uint64_t>(imm));
        }

        const std::uint8_t dst =
            cu.epr_dst == kNoEpr ? kEprNone : cu.epr_dst;
        if (dst != kEprNone && dst >= kEmcPhysRegs)
            return false;
        b[1] = dst & 0x1f;

        auto src_kind = [&](bool has, bool live_in,
                            std::uint8_t epr) -> unsigned {
            if (!has)
                return kSrcNone;
            return live_in ? kSrcLiveIn : (epr != kNoEpr ? kSrcEpr
                                                         : kSrcNone);
        };
        auto src_index = [&](bool live_in, std::uint8_t epr,
                             std::uint64_t value) -> unsigned {
            if (!live_in)
                return epr == kNoEpr ? 0 : epr;
            const unsigned slot =
                static_cast<unsigned>(out.live_ins.size());
            out.live_ins.push_back(value);
            return slot;
        };

        const unsigned k1 = src_kind(cu.d.uop.hasSrc1(),
                                     cu.src1_live_in, cu.epr_src1);
        const unsigned k2 = src_kind(cu.d.uop.hasSrc2(),
                                     cu.src2_live_in, cu.epr_src2);
        const unsigned i1 =
            k1 == kSrcNone
                ? 0
                : src_index(cu.src1_live_in, cu.epr_src1, cu.src1_val);
        const unsigned i2 =
            k2 == kSrcNone
                ? 0
                : src_index(cu.src2_live_in, cu.epr_src2, cu.src2_val);
        if (i1 >= 32 || i2 >= 32)
            return false;  // beyond the 5-bit wire index space

        b[1] |= static_cast<std::uint8_t>((k1 & 0x3) << 5);
        b[1] |= static_cast<std::uint8_t>((k2 & 0x1) << 7);
        b[2] = static_cast<std::uint8_t>((k2 >> 1) & 0x1);
        b[2] |= static_cast<std::uint8_t>((i1 & 0x1f) << 1);
        b[2] |= static_cast<std::uint8_t>((i2 & 0x3) << 6);
        b[3] = static_cast<std::uint8_t>((i2 >> 2) & 0x7);
        const std::uint8_t arch_dst =
            cu.d.uop.hasDst() ? cu.d.uop.dst : 0xf;
        if (cu.d.uop.hasDst() && arch_dst >= 0xf)
            return false;  // 15 arch regs encodable + "none"
        b[3] |= static_cast<std::uint8_t>((arch_dst & 0xf) << 3);
        if (cu.d.taken)
            b[3] |= 1u << 7;

        std::memcpy(b + 4, &imm16, 2);
        out.uop_bytes.insert(out.uop_bytes.end(), b, b + kUopBytes);

        out.rob_seqs.push_back(cu.rob_seq);
        out.oracle.push_back(cu.d);
    }
    return true;
}

ChainRequest
decodeChain(const EncodedChain &enc)
{
    ChainRequest chain;
    chain.id = enc.chain_id;
    chain.core = enc.core;
    chain.source_paddr_line = enc.source_paddr_line;
    chain.source_value = enc.source_value;
    chain.source_pte = enc.source_pte;
    chain.pte_attached = enc.pte_attached;

    const std::size_t n = enc.uop_bytes.size() / kUopBytes;
    emc_assert(enc.uop_bytes.size() % kUopBytes == 0,
               "truncated chain wire data");
    emc_assert(enc.rob_seqs.size() == n && enc.oracle.size() == n,
               "side-band bookkeeping out of sync");

    unsigned live_in_count = 0;
    for (std::size_t u = 0; u < n; ++u) {
        const std::uint8_t *b = enc.uop_bytes.data() + u * kUopBytes;
        ChainUop cu;
        cu.d = enc.oracle[u];  // oracle annotations ride side-band
        cu.rob_seq = enc.rob_seqs[u];

        cu.d.uop.op = static_cast<Opcode>(b[0] & 0x1f);
        cu.is_source = (b[0] >> 5) & 1;
        cu.is_spill_store = (b[0] >> 6) & 1;
        const bool imm_live_in = (b[0] >> 7) & 1;

        const std::uint8_t dst = b[1] & 0x1f;
        cu.epr_dst = dst == kEprNone ? kNoEpr : dst;

        const unsigned k1 = (b[1] >> 5) & 0x3;
        const unsigned k2 = ((b[1] >> 7) & 0x1)
                            | ((b[2] & 0x1) << 1);
        const unsigned i1 = (b[2] >> 1) & 0x1f;
        const unsigned i2 = ((b[2] >> 6) & 0x3) | ((b[3] & 0x7) << 2);

        cu.epr_src1 = kNoEpr;
        cu.epr_src2 = kNoEpr;
        cu.src1_live_in = false;
        cu.src2_live_in = false;
        if (k1 == kSrcEpr) {
            cu.epr_src1 = static_cast<std::uint8_t>(i1);
        } else if (k1 == kSrcLiveIn) {
            cu.src1_live_in = true;
            cu.src1_val = enc.live_ins.at(i1);
            ++live_in_count;
        }
        if (k2 == kSrcEpr) {
            cu.epr_src2 = static_cast<std::uint8_t>(i2);
        } else if (k2 == kSrcLiveIn) {
            cu.src2_live_in = true;
            cu.src2_val = enc.live_ins.at(i2);
            ++live_in_count;
        }

        std::uint16_t imm16;
        std::memcpy(&imm16, b + 4, 2);
        if (imm_live_in) {
            cu.d.uop.imm = static_cast<std::int64_t>(
                enc.live_ins.at(imm16));
        } else {
            cu.d.uop.imm = static_cast<std::int16_t>(imm16);
        }
        cu.d.taken = (b[3] >> 7) & 1;

        if (cu.is_source && cu.rob_seq != 0
            && chain.source_epr == kNoEpr) {
            chain.source_epr = cu.epr_dst;
        }
        chain.uops.push_back(cu);
    }
    // The primary source is the first source uop.
    for (const ChainUop &cu : chain.uops) {
        if (cu.is_source) {
            chain.source_epr = cu.epr_dst;
            break;
        }
    }
    chain.live_in_count = live_in_count;
    return chain;
}

} // namespace emc
