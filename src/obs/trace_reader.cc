#include "obs/trace_reader.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>

namespace emc::obs
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::kObject)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->kind == Kind::kNumber) ? v->number : dflt;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->kind == Kind::kString) ? v->str : dflt;
}

namespace
{

/** Recursive-descent parser over one in-memory JSON text. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        err_ = why + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("bad literal");
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::kString;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = JsonValue::Kind::kNull;
            return literal("null", 4);
          default: return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case 'r': out.push_back('\r'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u':
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                // The writer never emits non-ASCII; decode the low
                // byte only.
                out.push_back(static_cast<char>(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16)));
                pos_ += 4;
                break;
              default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        out.number = std::strtod(start, &end);
        if (end == start)
            return fail("bad number");
        out.kind = JsonValue::Kind::kNumber;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::kArray;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!parseValue(elem))
                return false;
            out.arr.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']'");
            skipWs();
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::kObject;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected member name");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':'");
            skipWs();
            JsonValue val;
            if (!parseValue(val))
                return false;
            out.obj.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

/** In-flight lifecycle span while scanning the file. */
struct OpenSpan
{
    Cycle created = 0;
    Cycle llc_miss = 0;
    Cycle dram_enqueue = 0;
    Cycle fill = 0;
    Cycle last = 0;  ///< cycle of the span's latest event
    double pid = 0;
    double tid = 0;
    std::uint8_t flags = 0;
};

/** Map a trace-event name back to its point-counter slot. */
int
pointIndex(const std::string &name)
{
    for (int i = 0; i < 10; ++i) {
        if (name == tracePointName(static_cast<TracePoint>(i)))
            return i;
    }
    return -1;
}

std::uint8_t
flagsOf(const JsonValue &ev)
{
    const JsonValue *args = ev.find("args");
    std::uint8_t flags = 0;
    if (!args)
        return flags;
    if (args->numberOr("dep", 0) != 0)
        flags |= kFlagDependent;
    if (args->numberOr("emc", 0) != 0)
        flags |= kFlagEmc;
    if (args->numberOr("pf", 0) != 0)
        flags |= kFlagPrefetch;
    if (args->numberOr("st", 0) != 0)
        flags |= kFlagStore;
    return flags;
}

} // namespace

TraceSummary
readTrace(const std::string &path, std::size_t max_issues)
{
    TraceSummary sum;
    auto issue = [&](std::size_t line, const std::string &msg) {
        if (sum.issues.size() < max_issues)
            sum.issues.push_back(TraceIssue{line, msg});
        ++sum.issue_total;
    };

    std::ifstream in(path);
    if (!in) {
        issue(0, "cannot open " + path);
        return sum;
    }

    std::string line;
    std::size_t lineno = 0;
    bool saw_header = false;
    bool saw_footer = false;
    bool saw_ts = false;
    Cycle prev_ts = 0;
    std::map<std::uint64_t, OpenSpan> open;

    while (std::getline(in, line)) {
        ++lineno;
        // Trim, drop the inter-event separator comma.
        std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        std::size_t e = line.find_last_not_of(" \t\r");
        std::string body = line.substr(b, e - b + 1);
        if (!saw_header) {
            if (body.find("\"traceEvents\"") == std::string::npos) {
                issue(lineno, "missing traceEvents header");
                return sum;
            }
            saw_header = true;
            continue;
        }
        if (body == "]}") {
            saw_footer = true;
            continue;
        }
        if (saw_footer) {
            issue(lineno, "content after closing ]}");
            continue;
        }
        if (!body.empty() && body.back() == ',')
            body.pop_back();

        JsonValue ev;
        std::string err;
        if (!parseJson(body, ev, err)
            || ev.kind != JsonValue::Kind::kObject) {
            issue(lineno, "bad JSON event: " + err);
            continue;
        }
        ++sum.counts.events;

        const std::string ph = ev.stringOr("ph", "");
        if (ph == "M") {
            ++sum.counts.meta;
            continue;
        }
        if (!ev.find("ts")) {
            issue(lineno, "event without ts");
            continue;
        }
        const Cycle ts = static_cast<Cycle>(ev.numberOr("ts", 0));
        if (!saw_ts) {
            sum.counts.first_cycle = ts;
            saw_ts = true;
        } else if (ts < prev_ts) {
            issue(lineno, "timestamps not monotone in file order");
        }
        prev_ts = ts;
        sum.counts.last_cycle = ts;

        const std::string name = ev.stringOr("name", "");
        if (ph == "i") {
            ++sum.counts.instants;
            int pi = pointIndex(name);
            if (pi >= 0)
                ++sum.point_counts[pi];
            continue;
        }
        if (ph != "b" && ph != "n" && ph != "e") {
            issue(lineno, "unexpected ph \"" + ph + "\"");
            continue;
        }

        const std::string id_str = ev.stringOr("id", "");
        const std::uint64_t id =
            std::strtoull(id_str.c_str(), nullptr, 0);
        if (id_str.empty()) {
            issue(lineno, "span event without id");
            continue;
        }
        auto it = open.find(id);
        if (ph == "b") {
            ++sum.counts.spans;
            ++sum.point_counts[static_cast<int>(TracePoint::kCreated)];
            if (it != open.end()) {
                issue(lineno, "span " + id_str + " opened twice");
                continue;
            }
            OpenSpan sp;
            sp.created = sp.last = ts;
            sp.pid = ev.numberOr("pid", -1);
            sp.tid = ev.numberOr("tid", -1);
            sp.flags = flagsOf(ev);
            open.emplace(id, sp);
            continue;
        }
        if (it == open.end()) {
            issue(lineno, "event for unopened span " + id_str);
            continue;
        }
        OpenSpan &sp = it->second;
        if (ev.numberOr("pid", -1) != sp.pid
            || ev.numberOr("tid", -1) != sp.tid) {
            issue(lineno, "span " + id_str + " changed track");
        }
        if (ts < sp.last)
            issue(lineno, "span " + id_str + " not monotone in cycle");
        sp.last = ts;
        if (ph == "n") {
            int pi = pointIndex(name);
            if (pi >= 0)
                ++sum.point_counts[pi];
            // Last occurrence wins, matching the simulator's
            // timestamp fields which hold the final value.
            if (name == "llc_miss")
                sp.llc_miss = ts;
            else if (name == "dram_enqueue")
                sp.dram_enqueue = ts;
            else if (name == "fill")
                sp.fill = ts;
            else
                issue(lineno, "unknown span annotation " + name);
            continue;
        }
        // ph == "e": the span retires.
        ++sum.point_counts[static_cast<int>(TracePoint::kRetire)];
        const JsonValue *args = ev.find("args");
        const bool truncated =
            args && args->numberOr("truncated", 0) != 0;
        if (truncated) {
            ++sum.counts.truncated;
        } else if (!(sp.flags & (kFlagPrefetch | kFlagStore))
                   && sp.fill != 0) {
            // Mirrors System::retireTxn: only demand lifecycles that
            // reached their fill contribute phase samples.
            PhaseTimes t;
            t.created = sp.created;
            t.llc_miss = sp.llc_miss;
            t.dram_enqueue = sp.dram_enqueue;
            t.fill = sp.fill;
            t.retire = ts;
            const PhaseClass cls =
                (sp.flags & kFlagEmc)
                    ? PhaseClass::kEmc
                    : ((sp.flags & kFlagDependent)
                           ? PhaseClass::kCoreDep
                           : PhaseClass::kCoreIndep);
            sum.phases.sample(cls, t);
        }
        open.erase(it);
    }

    if (!saw_header)
        issue(lineno, "empty or headerless file");
    if (!saw_footer)
        issue(lineno, "missing closing ]}");
    for (const auto &[id, sp] : open) {
        issue(lineno, "span 0x" + std::to_string(id)
                          + " never closed");
    }
    sum.ok = sum.issue_total == 0;
    return sum;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    JsonParser p(text, err);
    return p.parse(out);
}

} // namespace emc::obs
