/**
 * @file
 * Derived phase-latency histograms (DESIGN.md §6).
 *
 * A PhaseAccumulator decomposes every retired memory transaction into
 * lifecycle phases and histograms each one, split by transaction
 * class:
 *
 *   lookup  created      -> llc_miss      (core + LLC lookup path)
 *   xfer    llc_miss     -> dram_enqueue  (slice -> MC transfer/queue)
 *   dram    dram_enqueue -> fill          (DRAM queue + service)
 *   ret     fill         -> retire        (fill return + retire)
 *   total   created      -> retire        (end-to-end)
 *
 * Classes: core_indep (core-issued, address not tainted by a prior
 * miss), core_dep (core-issued dependent miss), emc (EMC-issued).
 * Prefetches and stores are excluded; a phase is only sampled when
 * both of its endpoints were actually reached (e.g. an EMC request
 * going straight to DRAM has no lookup/xfer phase).
 *
 * The accumulator is always on — it derives from transaction
 * timestamps the simulator already tracks — so traced and untraced
 * runs export identical statistics. tools/emctrace `summarize`
 * rebuilds the same histograms from an exported trace; the two agree
 * exactly (asserted in tests/test_trace.cpp).
 */

#ifndef EMC_OBS_PHASE_HH
#define EMC_OBS_PHASE_HH

#include <cstddef>

#include "common/stats.hh"
#include "common/types.hh"

namespace emc::obs
{

/** Transaction class a phase sample is attributed to. */
enum class PhaseClass : std::uint8_t
{
    kCoreIndep,  ///< core-issued, independent (untainted) miss
    kCoreDep,    ///< core-issued dependent miss
    kEmc,        ///< EMC-issued
};

/** Stable stat-key name for a class ("core_indep", ...). */
const char *phaseClassName(PhaseClass c);

/** Lifecycle phases (indices into PhaseAccumulator histograms). */
enum PhaseIndex : std::size_t
{
    kPhaseLookup = 0,
    kPhaseXfer,
    kPhaseDram,
    kPhaseRet,
    kPhaseTotal,
    kNumPhases,
};

/** Stable stat-key name for a phase ("lookup", ...). */
const char *phaseName(std::size_t phase);

/** Endpoint timestamps of one retired transaction (0 = not reached;
 *  created/retire are always reached). */
struct PhaseTimes
{
    Cycle created = 0;
    Cycle llc_miss = 0;
    Cycle dram_enqueue = 0;
    Cycle fill = 0;
    Cycle retire = 0;
};

/** Histogram parameters shared with tools/emctrace summarize. */
constexpr std::size_t kPhaseBuckets = 64;
constexpr double kPhaseBucketWidth = 32.0;

/** Per-class, per-phase latency histograms. */
class PhaseAccumulator
{
  public:
    PhaseAccumulator();

    /** Record one retired transaction (call at retire time). */
    void sample(PhaseClass cls, const PhaseTimes &t);

    /** Export `phase.<class>.<phase>_{avg,p50,p95,p99,samples}`. */
    void exportTo(StatDump &d) const;

    void reset();

    /** Direct histogram access (tests / summaries). */
    const Histogram &
    hist(PhaseClass cls, std::size_t phase) const
    {
        return hist_[static_cast<std::size_t>(cls)][phase];
    }

    template <class A>
    void
    ser(A &ar)
    {
        for (auto &row : hist_)
            for (auto &h : row)
                ar.io(h);
    }

  private:
    Histogram hist_[3][kNumPhases];
};

} // namespace emc::obs

#endif // EMC_OBS_PHASE_HH
