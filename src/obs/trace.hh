/**
 * @file
 * Transaction-lifecycle tracing (DESIGN.md §6).
 *
 * A Tracer records typed trace points — created, llc_miss,
 * chain_offloaded, emc_issue, dram_enqueue, row_act, fill, retire,
 * llc_evict, ring_msg — into a per-simulation ring buffer and exports
 * them as Chrome trace_event JSON (chrome://tracing /
 * ui.perfetto.dev). Each simulated agent gets its own track: one per
 * core, one per EMC plus one per EMC context, one per DRAM bank, and
 * one per ring.
 *
 * Hooks follow the src/check pattern: observation-only and reached
 * through the EMC_OBS_POINT macro (src/obs/obs.hh), which is a single
 * null test when no tracer is attached and compiles to nothing when
 * the EMC_SIM_TRACE CMake option is OFF. A run without a tracer is
 * byte-identical in statistics to the seed; a traced run differs only
 * in the file it writes.
 *
 * The buffer is a fixed-capacity ring owned by exactly one System
 * (simulations are single-threaded internally; the parallel bench
 * harness runs one Tracer per job), so recording needs no locks. When
 * the ring fills it is drained to the output file, so no event is
 * ever dropped and memory stays bounded.
 */

#ifndef EMC_OBS_TRACE_HH
#define EMC_OBS_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace emc::obs
{

/** Typed trace points emitted by the component hooks. */
enum class TracePoint : std::uint8_t
{
    kCreated,         ///< transaction left its requestor
    kLlcMiss,         ///< LLC slice lookup missed
    kChainOffloaded,  ///< core shipped a dependence chain to the EMC
    kEmcIssue,        ///< EMC context issued a chain memory op
    kDramEnqueue,     ///< request accepted into an MC channel queue
    kRowAct,          ///< DRAM bank row activation (empty or conflict)
    kFill,            ///< fill data produced (slice install / EMC data)
    kRetire,          ///< transaction retired and left the slab pool
    kLlcEvict,        ///< cache evicted a valid victim line
    kRingMsg,         ///< EMC-related data-ring message delivered
};

/** Stable lower-case name for a trace point ("llc_miss", ...). */
const char *tracePointName(TracePoint p);

/** Flag bits carried on kCreated (exported as span args). */
enum TraceFlags : std::uint8_t
{
    kFlagDependent = 1 << 0,  ///< address tainted by a prior miss
    kFlagEmc = 1 << 1,        ///< issued by an EMC
    kFlagPrefetch = 1 << 2,
    kFlagStore = 1 << 3,
};

/** Track kinds (one Chrome "process" per kind). */
enum class TrackKind : std::uint8_t
{
    kCore,      ///< per-core track (demand transactions, chains)
    kEmc,       ///< per-EMC / per-EMC-context track
    kDramBank,  ///< per-bank track (row activations)
    kRing,      ///< control / data ring tracks
};

/** Identity of the track an event belongs to. */
struct Track
{
    TrackKind kind = TrackKind::kCore;
    std::uint32_t index = 0;  ///< kind-specific flat track index

    static Track core(std::uint32_t c) { return {TrackKind::kCore, c}; }

    /** The MC-level EMC track (transactions issued by EMC @p mc). */
    static Track emc(std::uint32_t mc)
    {
        return {TrackKind::kEmc, mc * kEmcTrackStride};
    }

    /** The track of context @p ctx of EMC @p mc. */
    static Track emcCtx(std::uint32_t mc, std::uint32_t ctx)
    {
        return {TrackKind::kEmc, mc * kEmcTrackStride + 1 + ctx};
    }

    static Track bank(std::uint32_t flat_bank)
    {
        return {TrackKind::kDramBank, flat_bank};
    }

    static Track ring(bool is_data)
    {
        return {TrackKind::kRing, is_data ? 1u : 0u};
    }

    /// Sub-tracks reserved per EMC: 1 MC-level + up to 15 contexts.
    static constexpr std::uint32_t kEmcTrackStride = 16;
};

/** One recorded trace point (the ring-buffer element). */
struct TraceEvent
{
    Cycle cycle = 0;
    std::uint64_t id = 0;  ///< transaction / chain id (0: none)
    std::uint64_t arg = 0; ///< point-specific payload (line addr, ...)
    Track track;
    TracePoint point = TracePoint::kCreated;
    std::uint8_t flags = 0;
};

/** Static topology used to emit track-naming metadata. */
struct TraceTopology
{
    unsigned num_cores = 0;
    unsigned num_mcs = 0;
    unsigned emc_contexts = 0;  ///< per EMC (0 = no EMC)
    unsigned channels = 0;
    unsigned ranks_per_channel = 0;
    unsigned banks_per_rank = 0;
};

/**
 * Records trace points and exports Chrome trace_event JSON.
 *
 * Lifecycle spans: kCreated opens a nestable async span ("ph":"b",
 * cat "txn", id = transaction id) on the owning track, intermediate
 * points are async instants ("ph":"n") with the same id, and kRetire
 * closes it ("ph":"e"). Row activations, evictions, chain offloads
 * and ring deliveries are thread instants ("ph":"i"). Spans still
 * open when the simulation ends are closed at the final cycle so the
 * exported file always balances.
 */
class Tracer
{
  public:
    /**
     * @param path output file (Chrome trace JSON)
     * @param topo track topology (names the tracks in the viewer)
     * @param capacity ring-buffer capacity in events (drained to the
     *        file when full; larger buffers amortize formatting)
     */
    Tracer(const std::string &path, const TraceTopology &topo,
           std::size_t capacity = 1 << 16);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** True if the output file opened successfully. */
    bool ok() const { return out_ != nullptr; }

    /** Record one trace point (the hot path; called via EMC_OBS_POINT). */
    void
    record(TracePoint point, Cycle cycle, std::uint64_t id, Track track,
           std::uint64_t arg = 0, std::uint8_t flags = 0)
    {
        if (buf_.size() == capacity_)
            drain();
        buf_.push_back(TraceEvent{cycle, id, arg, track, point, flags});
    }

    /**
     * Close all open spans at @p final_cycle, flush and finish the
     * JSON document. Idempotent; also invoked by the destructor.
     */
    void finish(Cycle final_cycle);

    /** Events recorded so far (monotone; spans both buffer and file). */
    std::uint64_t recorded() const { return recorded_ + buf_.size(); }

  private:
    void drain();
    void writeEvent(const TraceEvent &ev);
    void writeMeta(const TraceTopology &topo);
    void emitJson(const char *ph, const char *name, const char *cat,
                  unsigned pid, std::uint32_t tid, Cycle ts,
                  std::uint64_t id, bool with_id, const TraceEvent &ev);
    unsigned pidOf(TrackKind kind) const;

    std::FILE *out_ = nullptr;
    std::size_t capacity_;
    std::vector<TraceEvent> buf_;
    std::uint64_t recorded_ = 0;
    bool first_event_ = true;
    bool finished_ = false;
    Cycle last_cycle_ = 0;

    /// Open lifecycle spans: id -> opening event (track + flags), so
    /// finish() can balance the file. Ordered map: closing order at
    /// finish() must not depend on hashing.
    std::map<std::uint64_t, TraceEvent> open_spans_;
};

} // namespace emc::obs

#endif // EMC_OBS_TRACE_HH
