#include "obs/stream.hh"

#include <cinttypes>

namespace emc::obs
{

void
writeStatsObject(std::FILE *out, const StatDump &d, int digits)
{
    std::fputc('{', out);
    bool first = true;
    for (const auto &[name, value] : d.all()) {
        std::fprintf(out, "%s\"%s\":%.*g", first ? "" : ",",
                     name.c_str(), digits, value);
        first = false;
    }
    std::fputc('}', out);
}

StatStreamer::StatStreamer(const std::string &path, Cycle interval)
    : interval_(interval < 1 ? 1 : interval)
{
    next_ = interval_;
    out_ = std::fopen(path.c_str(), "w");
}

StatStreamer::StatStreamer(std::FILE *out, Cycle interval,
                           std::string prefix)
    : out_(out),
      owns_(false),
      prefix_(std::move(prefix)),
      interval_(interval < 1 ? 1 : interval)
{
    next_ = interval_;
}

StatStreamer::~StatStreamer()
{
    if (out_ && owns_)
        std::fclose(out_);
    out_ = nullptr;
}

void
StatStreamer::writeLine(Cycle now, const StatDump &d)
{
    std::fprintf(out_, "{%s\"cycle\":%" PRIu64 ",\"stats\":",
                 prefix_.c_str(), static_cast<std::uint64_t>(now));
    writeStatsObject(out_, d, 9);
    std::fputs("}\n", out_);
    ++lines_;
}

void
StatStreamer::snapshot(Cycle now, const StatDump &d)
{
    if (!out_ || now < next_)
        return;
    writeLine(now, d);
    // Advance past `now` in whole intervals: a cycle-skipped idle
    // region yields one snapshot, not a burst of stale duplicates.
    next_ += ((now - next_) / interval_ + 1) * interval_;
}

void
StatStreamer::finish(Cycle now, const StatDump &d)
{
    if (!out_)
        return;
    writeLine(now, d);
    if (owns_)
        std::fclose(out_);
    else
        std::fflush(out_);
    out_ = nullptr;
}

} // namespace emc::obs
