#include "obs/stream.hh"

#include <cinttypes>

namespace emc::obs
{

StatStreamer::StatStreamer(const std::string &path, Cycle interval)
    : interval_(interval < 1 ? 1 : interval)
{
    next_ = interval_;
    out_ = std::fopen(path.c_str(), "w");
}

StatStreamer::~StatStreamer()
{
    if (out_) {
        std::fclose(out_);
        out_ = nullptr;
    }
}

void
StatStreamer::writeLine(Cycle now, const StatDump &d)
{
    std::fprintf(out_, "{\"cycle\":%" PRIu64 ",\"stats\":{",
                 static_cast<std::uint64_t>(now));
    bool first = true;
    for (const auto &[name, value] : d.all()) {
        std::fprintf(out_, "%s\"%s\":%.9g", first ? "" : ",",
                     name.c_str(), value);
        first = false;
    }
    std::fputs("}}\n", out_);
    ++lines_;
}

void
StatStreamer::snapshot(Cycle now, const StatDump &d)
{
    if (!out_ || now < next_)
        return;
    writeLine(now, d);
    // Advance past `now` in whole intervals: a cycle-skipped idle
    // region yields one snapshot, not a burst of stale duplicates.
    next_ += ((now - next_) / interval_ + 1) * interval_;
}

void
StatStreamer::finish(Cycle now, const StatDump &d)
{
    if (!out_)
        return;
    writeLine(now, d);
    std::fclose(out_);
    out_ = nullptr;
}

} // namespace emc::obs
