/**
 * @file
 * Trace-hook entry point (DESIGN.md §6).
 *
 * Every component trace hook goes through EMC_OBS_POINT — never call
 * Tracer::record directly from simulator code (tools/lint_sim.py
 * enforces this with the trace-hook rule). The macro is a single
 * predictable null test when no tracer is attached, and compiles to
 * nothing when the EMC_SIM_TRACE CMake option is OFF, so hook
 * arguments must be free of side effects: they are not evaluated in
 * a hook-stripped build.
 */

#ifndef EMC_OBS_OBS_HH
#define EMC_OBS_OBS_HH

#include "obs/trace.hh"

#ifdef EMC_SIM_TRACE
#define EMC_OBS_POINT(tracer, ...)                                     \
    do {                                                               \
        if (tracer)                                                    \
            (tracer)->record(__VA_ARGS__);                             \
    } while (0)
#else
#define EMC_OBS_POINT(tracer, ...)                                     \
    do {                                                               \
    } while (0)
#endif

#endif // EMC_OBS_OBS_HH
