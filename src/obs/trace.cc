#include "obs/trace.hh"

#include <cinttypes>

namespace emc::obs
{

const char *
tracePointName(TracePoint p)
{
    switch (p) {
      case TracePoint::kCreated: return "created";
      case TracePoint::kLlcMiss: return "llc_miss";
      case TracePoint::kChainOffloaded: return "chain_offloaded";
      case TracePoint::kEmcIssue: return "emc_issue";
      case TracePoint::kDramEnqueue: return "dram_enqueue";
      case TracePoint::kRowAct: return "row_act";
      case TracePoint::kFill: return "fill";
      case TracePoint::kRetire: return "retire";
      case TracePoint::kLlcEvict: return "llc_evict";
      case TracePoint::kRingMsg: return "ring_msg";
    }
    return "?";
}

namespace
{

/** Span name shown in the viewer, picked from the kCreated flags. */
const char *
spanName(std::uint8_t flags)
{
    if (flags & kFlagPrefetch)
        return "prefetch";
    if (flags & kFlagEmc)
        return "emc_miss";
    if (flags & kFlagStore)
        return "store";
    return "demand";
}

} // namespace

Tracer::Tracer(const std::string &path, const TraceTopology &topo,
               std::size_t capacity)
    : capacity_(capacity < 64 ? 64 : capacity)
{
    buf_.reserve(capacity_);
    out_ = std::fopen(path.c_str(), "w");
    if (!out_)
        return;
    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", out_);
    writeMeta(topo);
}

Tracer::~Tracer()
{
    finish(last_cycle_);
}

unsigned
Tracer::pidOf(TrackKind kind) const
{
    switch (kind) {
      case TrackKind::kCore: return 1;
      case TrackKind::kEmc: return 2;
      case TrackKind::kDramBank: return 3;
      case TrackKind::kRing: return 4;
    }
    return 0;
}

void
Tracer::writeMeta(const TraceTopology &topo)
{
    auto meta = [&](unsigned pid, std::uint32_t tid, const char *what,
                    const std::string &name) {
        std::fprintf(out_,
                     "%s{\"ph\":\"M\",\"pid\":%u,\"tid\":%" PRIu32
                     ",\"name\":\"%s\",\"args\":{\"name\":\"%s\"}}",
                     first_event_ ? "" : ",\n", pid, tid, what,
                     name.c_str());
        first_event_ = false;
    };
    auto process = [&](TrackKind kind, const std::string &name) {
        meta(pidOf(kind), 0, "process_name", name);
    };

    process(TrackKind::kCore, "cores");
    for (unsigned c = 0; c < topo.num_cores; ++c) {
        meta(pidOf(TrackKind::kCore), c, "thread_name",
             "core" + std::to_string(c));
    }
    if (topo.emc_contexts > 0) {
        process(TrackKind::kEmc, "emc");
        for (unsigned m = 0; m < topo.num_mcs; ++m) {
            meta(pidOf(TrackKind::kEmc), Track::emc(m).index,
                 "thread_name", "emc" + std::to_string(m));
            for (unsigned x = 0; x < topo.emc_contexts; ++x) {
                meta(pidOf(TrackKind::kEmc), Track::emcCtx(m, x).index,
                     "thread_name",
                     "emc" + std::to_string(m) + ".ctx"
                         + std::to_string(x));
            }
        }
    }
    process(TrackKind::kDramBank, "dram");
    for (unsigned ch = 0; ch < topo.channels; ++ch) {
        for (unsigned r = 0; r < topo.ranks_per_channel; ++r) {
            for (unsigned b = 0; b < topo.banks_per_rank; ++b) {
                const std::uint32_t flat =
                    (ch * topo.ranks_per_channel + r)
                        * topo.banks_per_rank
                    + b;
                meta(pidOf(TrackKind::kDramBank), flat, "thread_name",
                     "ch" + std::to_string(ch) + ".rk"
                         + std::to_string(r) + ".bk"
                         + std::to_string(b));
            }
        }
    }
    process(TrackKind::kRing, "ring");
    meta(pidOf(TrackKind::kRing), 0, "thread_name", "control");
    meta(pidOf(TrackKind::kRing), 1, "thread_name", "data");
}

void
Tracer::emitJson(const char *ph, const char *name, const char *cat,
                 unsigned pid, std::uint32_t tid, Cycle ts,
                 std::uint64_t id, bool with_id, const TraceEvent &ev)
{
    std::fprintf(out_,
                 "%s{\"ph\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\","
                 "\"pid\":%u,\"tid\":%" PRIu32 ",\"ts\":%" PRIu64,
                 first_event_ ? "" : ",\n", ph, name, cat, pid, tid,
                 static_cast<std::uint64_t>(ts));
    first_event_ = false;
    if (with_id)
        std::fprintf(out_, ",\"id\":\"0x%" PRIx64 "\"", id);
    if (ph[0] == 'i')
        std::fputs(",\"s\":\"t\"", out_);
    if (ph[0] == 'b') {
        std::fprintf(out_,
                     ",\"args\":{\"dep\":%u,\"emc\":%u,\"pf\":%u,"
                     "\"st\":%u}",
                     (ev.flags & kFlagDependent) ? 1u : 0u,
                     (ev.flags & kFlagEmc) ? 1u : 0u,
                     (ev.flags & kFlagPrefetch) ? 1u : 0u,
                     (ev.flags & kFlagStore) ? 1u : 0u);
    } else if (ev.arg != 0) {
        std::fprintf(out_, ",\"args\":{\"arg\":\"0x%" PRIx64 "\"}",
                     ev.arg);
    }
    std::fputs("}", out_);
}

void
Tracer::writeEvent(const TraceEvent &ev)
{
    const unsigned pid = pidOf(ev.track.kind);
    const std::uint32_t tid = ev.track.index;
    switch (ev.point) {
      case TracePoint::kCreated:
        emitJson("b", spanName(ev.flags), "txn", pid, tid, ev.cycle,
                 ev.id, true, ev);
        open_spans_[ev.id] = ev;
        break;
      case TracePoint::kRetire:
        emitJson("e", spanName(open_spans_.count(ev.id)
                                   ? open_spans_[ev.id].flags
                                   : ev.flags),
                 "txn", pid, tid, ev.cycle, ev.id, true, ev);
        open_spans_.erase(ev.id);
        break;
      case TracePoint::kLlcMiss:
      case TracePoint::kDramEnqueue:
      case TracePoint::kFill:
        emitJson("n", tracePointName(ev.point), "txn", pid, tid,
                 ev.cycle, ev.id, true, ev);
        break;
      case TracePoint::kChainOffloaded:
      case TracePoint::kEmcIssue:
      case TracePoint::kRowAct:
      case TracePoint::kLlcEvict:
      case TracePoint::kRingMsg:
        emitJson("i", tracePointName(ev.point), "sim", pid, tid,
                 ev.cycle, ev.id, false, ev);
        break;
    }
}

void
Tracer::drain()
{
    if (!out_) {
        buf_.clear();
        return;
    }
    for (const TraceEvent &ev : buf_) {
        last_cycle_ = ev.cycle;
        writeEvent(ev);
    }
    recorded_ += buf_.size();
    buf_.clear();
}

void
Tracer::finish(Cycle final_cycle)
{
    if (finished_)
        return;
    finished_ = true;
    drain();
    if (!out_)
        return;
    if (final_cycle < last_cycle_)
        final_cycle = last_cycle_;
    // Balance the file: close every span the simulation left open
    // (e.g. transactions still in flight when max_cycles hit).
    // Marked truncated so summaries can exclude them.
    for (const auto &[id, open] : open_spans_) {
        std::fprintf(out_,
                     "%s{\"ph\":\"e\",\"name\":\"%s\",\"cat\":\"txn\","
                     "\"pid\":%u,\"tid\":%" PRIu32 ",\"ts\":%" PRIu64
                     ",\"id\":\"0x%" PRIx64
                     "\",\"args\":{\"truncated\":1}}",
                     first_event_ ? "" : ",\n", spanName(open.flags),
                     pidOf(open.track.kind), open.track.index,
                     static_cast<std::uint64_t>(final_cycle), id);
        first_event_ = false;
    }
    open_spans_.clear();
    std::fputs("\n]}\n", out_);
    std::fclose(out_);
    out_ = nullptr;
}

} // namespace emc::obs
