/**
 * @file
 * Interval stat streaming (DESIGN.md §6).
 *
 * A StatStreamer snapshots the stat registry every N cycles into a
 * JSONL file — one self-contained JSON object per line, carrying the
 * snapshot cycle and the full flat name -> value map — so a run's
 * stats become a time series instead of a single end-of-run
 * aggregate. The System drives it from the event loop (cycle-skip
 * aware: a skipped idle region still produces its due snapshots) and
 * writes a final snapshot when the run ends.
 */

#ifndef EMC_OBS_STREAM_HH
#define EMC_OBS_STREAM_HH

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace emc::obs
{

/** Streams periodic StatDump snapshots as JSONL. */
class StatStreamer
{
  public:
    /**
     * @param path output file (one JSON object per line)
     * @param interval cycles between snapshots (>= 1)
     */
    StatStreamer(const std::string &path, Cycle interval);
    ~StatStreamer();

    StatStreamer(const StatStreamer &) = delete;
    StatStreamer &operator=(const StatStreamer &) = delete;

    /** True if the output file opened successfully. */
    bool ok() const { return out_ != nullptr; }

    /** First cycle at/after which the next snapshot is due. */
    Cycle nextDue() const { return next_; }

    /** Write one snapshot line and advance the schedule past @p now. */
    void snapshot(Cycle now, const StatDump &d);

    /** Write a final snapshot and close the file. Idempotent. */
    void finish(Cycle now, const StatDump &d);

    /** Snapshot lines written so far. */
    std::uint64_t lines() const { return lines_; }

  private:
    void writeLine(Cycle now, const StatDump &d);

    std::FILE *out_ = nullptr;
    Cycle interval_;
    Cycle next_;
    std::uint64_t lines_ = 0;
};

} // namespace emc::obs

#endif // EMC_OBS_STREAM_HH
