/**
 * @file
 * Interval stat streaming (DESIGN.md §6).
 *
 * A StatStreamer snapshots the stat registry every N cycles into a
 * JSONL file — one self-contained JSON object per line, carrying the
 * snapshot cycle and the full flat name -> value map — so a run's
 * stats become a time series instead of a single end-of-run
 * aggregate. The System drives it from the event loop (cycle-skip
 * aware: a skipped idle region still produces its due snapshots) and
 * writes a final snapshot when the run ends.
 *
 * A streamer can also ride an already-open FILE it does not own (the
 * sweep coordinator pipe, DESIGN.md §9): finish() then flushes instead
 * of closing, and an optional prefix string is spliced into each line
 * so multiplexed writers stay distinguishable.
 */

#ifndef EMC_OBS_STREAM_HH
#define EMC_OBS_STREAM_HH

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace emc::obs
{

/**
 * Write @p d to @p out as a JSON object `{"name":value,...}` with
 * @p digits significant digits (17 round-trips doubles bit-exactly,
 * 9 is the compact interval-stream precision). Shared by the stat
 * streamer and the sweep worker protocol so both sides agree on the
 * encoding.
 */
void writeStatsObject(std::FILE *out, const StatDump &d, int digits);

/** Streams periodic StatDump snapshots as JSONL. */
class StatStreamer
{
  public:
    /**
     * @param path output file (one JSON object per line)
     * @param interval cycles between snapshots (>= 1)
     */
    StatStreamer(const std::string &path, Cycle interval);

    /**
     * Stream onto an already-open @p out this streamer does NOT own:
     * finish() flushes instead of closing. @p prefix is emitted
     * verbatim after the opening brace of every line (e.g.
     * `"type":"interval","job":3,`), empty for none.
     */
    StatStreamer(std::FILE *out, Cycle interval, std::string prefix);

    ~StatStreamer();

    StatStreamer(const StatStreamer &) = delete;
    StatStreamer &operator=(const StatStreamer &) = delete;

    /** True if the output file opened successfully. */
    bool ok() const { return out_ != nullptr; }

    /** True when this streamer owns (and will close) its FILE. */
    bool ownsFile() const { return owns_; }

    /** First cycle at/after which the next snapshot is due. */
    Cycle nextDue() const { return next_; }

    /** Write one snapshot line and advance the schedule past @p now. */
    void snapshot(Cycle now, const StatDump &d);

    /** Write a final snapshot and close (or flush) the file. Idempotent. */
    void finish(Cycle now, const StatDump &d);

    /** Snapshot lines written so far. */
    std::uint64_t lines() const { return lines_; }

  private:
    void writeLine(Cycle now, const StatDump &d);

    std::FILE *out_ = nullptr;
    bool owns_ = true;
    std::string prefix_;
    Cycle interval_;
    Cycle next_;
    std::uint64_t lines_ = 0;
};

} // namespace emc::obs

#endif // EMC_OBS_STREAM_HH
