#include "obs/phase.hh"

#include <string>

namespace emc::obs
{

const char *
phaseClassName(PhaseClass c)
{
    switch (c) {
      case PhaseClass::kCoreIndep: return "core_indep";
      case PhaseClass::kCoreDep: return "core_dep";
      case PhaseClass::kEmc: return "emc";
    }
    return "?";
}

const char *
phaseName(std::size_t phase)
{
    switch (phase) {
      case kPhaseLookup: return "lookup";
      case kPhaseXfer: return "xfer";
      case kPhaseDram: return "dram";
      case kPhaseRet: return "ret";
      case kPhaseTotal: return "total";
    }
    return "?";
}

PhaseAccumulator::PhaseAccumulator()
{
    for (auto &per_class : hist_) {
        for (auto &h : per_class)
            h = Histogram(kPhaseBuckets, kPhaseBucketWidth);
    }
}

void
PhaseAccumulator::sample(PhaseClass cls, const PhaseTimes &t)
{
    auto &per_class = hist_[static_cast<std::size_t>(cls)];

    // A phase counts only when both endpoints were reached and are
    // ordered; created/retire are always reached, the intermediate
    // points report 0 when the transaction skipped them (e.g. EMC
    // requests going straight to DRAM never record llc_miss).
    auto span = [&](std::size_t phase, Cycle start, bool start_ok,
                    Cycle end, bool end_ok) {
        if (start_ok && end_ok && end >= start)
            per_class[phase].sample(static_cast<double>(end - start));
    };

    const bool has_miss = t.llc_miss != 0;
    const bool has_enq = t.dram_enqueue != 0;
    const bool has_fill = t.fill != 0;
    span(kPhaseLookup, t.created, true, t.llc_miss, has_miss);
    span(kPhaseXfer, t.llc_miss, has_miss, t.dram_enqueue, has_enq);
    span(kPhaseDram, t.dram_enqueue, has_enq, t.fill, has_fill);
    span(kPhaseRet, t.fill, has_fill, t.retire, true);
    span(kPhaseTotal, t.created, true, t.retire, true);
}

void
PhaseAccumulator::exportTo(StatDump &d) const
{
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            const Histogram &h = hist_[c][p];
            if (h.samples() == 0)
                continue;
            const std::string base =
                std::string("phase.")
                + phaseClassName(static_cast<PhaseClass>(c)) + "."
                + phaseName(p);
            d.put(base + "_avg", h.mean());
            d.put(base + "_p50", h.percentile(0.50));
            d.put(base + "_p95", h.percentile(0.95));
            d.put(base + "_p99", h.percentile(0.99));
            d.put(base + "_samples",
                  static_cast<double>(h.samples()));
        }
    }
}

void
PhaseAccumulator::reset()
{
    for (auto &per_class : hist_) {
        for (auto &h : per_class)
            h.reset();
    }
}

} // namespace emc::obs
