/**
 * @file
 * Reader side of the trace subsystem: a dependency-free JSON parser
 * plus validation and summarization of exported Chrome trace files.
 * Shared by the tools/emctrace CLI and tests/test_trace.cpp so both
 * apply identical rules; summarization feeds the same
 * PhaseAccumulator the simulator uses, which is what makes
 * `emctrace summarize` agree exactly with the exported `phase.*`
 * statistics.
 */

#ifndef EMC_OBS_TRACE_READER_HH
#define EMC_OBS_TRACE_READER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/phase.hh"
#include "obs/trace.hh"

namespace emc::obs
{

/** A parsed JSON value (minimal DOM; enough for trace events). */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    /** Object member lookup (nullptr if absent / not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key as a number, or @p dflt. */
    double numberOr(const std::string &key, double dflt) const;

    /** Member @p key as a string, or @p dflt. */
    std::string stringOr(const std::string &key,
                         const std::string &dflt) const;
};

/**
 * Parse @p text as one JSON value.
 * @return true on success; on failure @p err describes the problem.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &err);

/** One validation finding (line is 1-based in the trace file). */
struct TraceIssue
{
    std::size_t line = 0;
    std::string message;
};

/** Aggregate counts over one trace file. */
struct TraceCounts
{
    std::uint64_t events = 0;     ///< all trace events incl. metadata
    std::uint64_t meta = 0;       ///< "M" metadata records
    std::uint64_t spans = 0;      ///< lifecycle spans ("b" events)
    std::uint64_t truncated = 0;  ///< spans force-closed at end of run
    std::uint64_t instants = 0;   ///< "i" instants (row_act, ...)
    Cycle first_cycle = 0;
    Cycle last_cycle = 0;
};

/**
 * Result of reading a trace: counts, issues, and (optionally) the
 * phase histograms rebuilt from the complete, non-truncated,
 * non-prefetch, non-store lifecycle spans.
 */
struct TraceSummary
{
    bool ok = false;  ///< parsed and structurally valid
    TraceCounts counts;
    std::vector<TraceIssue> issues;    ///< first max_issues findings
    std::uint64_t issue_total = 0;     ///< all findings, incl. dropped
    PhaseAccumulator phases;
    /// Per-point event totals, keyed by tracePointName order.
    std::uint64_t point_counts[10] = {};
};

/**
 * Read, validate and summarize the Chrome trace at @p path.
 *
 * Validation: the file parses line by line as trace_event JSON; span
 * events ("b"/"n"/"e", cat "txn") are well-formed per id (open
 * before annotate/close, close exactly once, all on one track,
 * cycles monotone within the span) and globally monotone in file
 * order. Issues beyond @p max_issues are counted but not stored.
 */
TraceSummary readTrace(const std::string &path,
                       std::size_t max_issues = 20);

} // namespace emc::obs

#endif // EMC_OBS_TRACE_READER_HH
