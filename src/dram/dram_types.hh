/**
 * @file
 * DDR3 timing parameters, address mapping and the memory request
 * record shared between the memory controller, the DRAM channels and
 * the latency-attribution machinery.
 *
 * All timings are expressed in core cycles at 3.2 GHz. The DDR3-1600
 * bus runs at 800 MHz, so one bus cycle is 4 core cycles (Table 1:
 * CAS 13.75 ns = 44 core cycles, 8 banks/rank, 8 KB rows).
 */

#ifndef EMC_DRAM_DRAM_TYPES_HH
#define EMC_DRAM_DRAM_TYPES_HH

#include <cstdint>

#include "common/types.hh"

namespace emc
{

/** Who generated a memory request (drives stats and scheduling). */
enum class ReqOrigin : std::uint8_t
{
    kCoreDemand,  ///< demand miss issued by a core
    kEmcDemand,   ///< demand miss issued by the EMC (Section 4.3)
    kPrefetch,    ///< prefetcher-generated fill
    kWriteback,   ///< dirty eviction from the LLC
};

const char *reqOriginName(ReqOrigin o);

/** DDR3-1600-style timing, in core cycles (3.2 GHz core). */
struct DramTiming
{
    Cycle tCL = 44;     ///< CAS latency, 13.75 ns
    Cycle tRCD = 44;    ///< RAS-to-CAS
    Cycle tRP = 44;     ///< precharge
    Cycle tRAS = 112;   ///< activate-to-precharge
    Cycle tBurst = 16;  ///< 64 B over an 8 B DDR bus: 4 bus cycles
    Cycle tCCD = 16;    ///< CAS-to-CAS
    Cycle tWR = 48;     ///< write recovery
    Cycle tWTR = 24;    ///< write-to-read turnaround
    Cycle tRTP = 24;    ///< read-to-precharge
    Cycle tRRD = 20;    ///< activate-to-activate, same rank
    Cycle tFAW = 96;    ///< four-activate window
    Cycle tREFI = 24960; ///< refresh interval (7.8 us)
    Cycle tRFC = 512;   ///< refresh cycle time (160 ns)

    Cycle tRC() const { return tRAS + tRP; }
};

/** Geometry of the DRAM system (Table 1 defaults: quad-core). */
struct DramGeometry
{
    unsigned channels = 2;
    unsigned ranks_per_channel = 1;
    unsigned banks_per_rank = 8;
    unsigned row_bytes = 8192;

    unsigned linesPerRow() const { return row_bytes / kLineBytes; }
};

/**
 * Physical address decomposition. The mapping interleaves consecutive
 * cache lines across channels, then banks, so streaming traffic
 * spreads while a row still holds 128 consecutive same-channel lines.
 *
 * phys line number bits, low to high:
 *   [channel] [bank] [column-within-row] [rank] [row]
 */
struct DramCoord
{
    unsigned channel;
    unsigned rank;
    unsigned bank;
    std::uint64_t row;
    unsigned column;
};

DramCoord mapAddress(Addr paddr, const DramGeometry &geo);

/** Result category of a DRAM access (row-buffer outcome). */
enum class RowOutcome : std::uint8_t
{
    kHit,       ///< row already open
    kEmpty,     ///< bank idle, no row open
    kConflict,  ///< different row open: precharge + activate
};

/**
 * A request traveling from an LLC slice (or the EMC) through the
 * memory controller to DRAM and back. Cycle fields are filled in as
 * the request progresses so the benches can attribute latency the way
 * Figures 1, 18 and 19 do.
 */
struct MemRequest
{
    std::uint64_t id = 0;       ///< unique id assigned by the MC
    Addr paddr = kNoAddr;       ///< line-aligned physical address
    bool is_write = false;
    ReqOrigin origin = ReqOrigin::kCoreDemand;
    CoreId core = 0;            ///< requesting core (or home core for EMC)

    // --- latency attribution (core cycles) ---
    Cycle cycle_llc_miss = kNoCycle;  ///< LLC miss determined
    Cycle cycle_mc_enqueue = kNoCycle;///< entered the MC queue
    Cycle cycle_dram_issue = kNoCycle;///< selected by the scheduler
    Cycle cycle_dram_data = kNoCycle; ///< data at the MC pins
    Cycle cycle_done = kNoCycle;      ///< data delivered to requestor

    RowOutcome outcome = RowOutcome::kEmpty;

    /** Opaque token the owner uses to match completions. */
    std::uint64_t token = 0;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(id);
        ar.io(paddr);
        ar.io(is_write);
        ar.io(origin);
        ar.io(core);
        ar.io(cycle_llc_miss);
        ar.io(cycle_mc_enqueue);
        ar.io(cycle_dram_issue);
        ar.io(cycle_dram_data);
        ar.io(cycle_done);
        ar.io(outcome);
        ar.io(token);
    }
};

} // namespace emc

#endif // EMC_DRAM_DRAM_TYPES_HH
