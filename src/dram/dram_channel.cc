#include "dram/dram_channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace emc
{

const char *
reqOriginName(ReqOrigin o)
{
    switch (o) {
      case ReqOrigin::kCoreDemand: return "core";
      case ReqOrigin::kEmcDemand: return "emc";
      case ReqOrigin::kPrefetch: return "prefetch";
      case ReqOrigin::kWriteback: return "writeback";
    }
    return "?";
}

DramCoord
mapAddress(Addr paddr, const DramGeometry &geo)
{
    std::uint64_t line = lineNum(paddr);
    DramCoord c;
    c.channel = static_cast<unsigned>(line % geo.channels);
    line /= geo.channels;
    c.bank = static_cast<unsigned>(line % geo.banks_per_rank);
    line /= geo.banks_per_rank;
    const unsigned cols = geo.linesPerRow();
    c.column = static_cast<unsigned>(line % cols);
    line /= cols;
    c.rank = static_cast<unsigned>(line % geo.ranks_per_channel);
    line /= geo.ranks_per_channel;
    c.row = line;
    return c;
}

DramChannel::DramChannel(const DramGeometry &geo, const DramTiming &timing,
                         SchedPolicy policy, std::size_t queue_limit,
                         unsigned num_cores)
    : geo_(geo), t_(timing), policy_(policy), queue_limit_(queue_limit),
      num_cores_(num_cores),
      banks_(geo.ranks_per_channel * geo.banks_per_rank),
      next_refresh_(timing.tREFI),
      thread_rank_(num_cores, 0)
{
    emc_assert(queue_limit_ > 0, "DRAM queue limit must be positive");
}

const Bank &
DramChannel::bank(unsigned rank, unsigned b) const
{
    return banks_.at(rank * geo_.banks_per_rank + b);
}

Bank &
DramChannel::bankFor(const DramCoord &c)
{
    return banks_.at(c.rank * geo_.banks_per_rank + c.bank);
}

bool
DramChannel::enqueue(const MemRequest &req, Cycle now)
{
    Queued qe;
    qe.req = req;
    qe.req.cycle_mc_enqueue = now;
    if (req.is_write) {
        // Writes are buffered and drained lazily; the write queue is
        // effectively unbounded relative to the workload's needs but a
        // high watermark forces drains before it grows without bound.
        write_q_.push_back(qe);
        ++accepted_writes_;
        return true;
    }
    if (read_q_.size() >= queue_limit_)
        return false;
    read_q_.push_back(qe);
    ++accepted_reads_;
    return true;
}

void
DramChannel::maybeRefresh(Cycle now)
{
    if (now < next_refresh_)
        return;
    next_refresh_ += t_.tREFI;
    ++stats_.refreshes;
    for (auto &b : banks_)
        b.refresh(now, t_);
}

void
DramChannel::formBatch()
{
    // PAR-BS: when no marked requests remain, mark up to the marking
    // cap oldest requests per (thread, bank) and rank threads by their
    // total marked load (shortest job first).
    constexpr unsigned kMarkingCap = 5;
    marked_remaining_ = 0;

    // counts[core][bank] of marked requests.
    std::vector<std::vector<unsigned>> counts(
        num_cores_, std::vector<unsigned>(banks_.size(), 0));
    for (auto &qe : read_q_) {
        const DramCoord c = mapAddress(qe.req.paddr, geo_);
        const unsigned bank_idx = c.rank * geo_.banks_per_rank + c.bank;
        const CoreId core = qe.req.core % num_cores_;
        if (counts[core][bank_idx] < kMarkingCap) {
            qe.marked = true;
            ++counts[core][bank_idx];
            ++marked_remaining_;
        } else {
            qe.marked = false;
        }
    }

    // Thread ranking: max-bank-load primary, total secondary.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> load(num_cores_);
    for (unsigned core = 0; core < num_cores_; ++core) {
        std::uint64_t mx = 0, tot = 0;
        for (unsigned b = 0; b < banks_.size(); ++b) {
            mx = std::max<std::uint64_t>(mx, counts[core][b]);
            tot += counts[core][b];
        }
        load[core] = {mx, tot};
    }
    std::vector<unsigned> order(num_cores_);
    for (unsigned i = 0; i < num_cores_; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](unsigned a, unsigned b) {
                         return load[a] < load[b];
                     });
    for (unsigned pos = 0; pos < num_cores_; ++pos)
        thread_rank_[order[pos]] = pos;
}

int
DramChannel::pickFrFcfs(const std::deque<Queued> &q, Cycle now) const
{
    int best = -1;
    bool best_hit = false;
    for (std::size_t i = 0; i < q.size(); ++i) {
        const DramCoord c = mapAddress(q[i].req.paddr, geo_);
        const Bank &b = banks_[c.rank * geo_.banks_per_rank + c.bank];
        if (b.readyCycle() > now)
            continue;
        const bool hit = b.classify(c.row) == RowOutcome::kHit;
        if (best < 0 || (hit && !best_hit)) {
            best = static_cast<int>(i);
            best_hit = hit;
            if (hit)
                break;  // oldest row hit wins
        }
    }
    return best;
}

int
DramChannel::pickBatch(Cycle now)
{
    if (marked_remaining_ == 0 && !read_q_.empty())
        formBatch();

    // Priority: marked > row-hit > thread rank > age.
    int best = -1;
    auto better = [&](const Queued &a, const Queued &b) {
        if (a.marked != b.marked)
            return a.marked;
        const DramCoord ca = mapAddress(a.req.paddr, geo_);
        const DramCoord cb = mapAddress(b.req.paddr, geo_);
        const bool ha = banks_[ca.rank * geo_.banks_per_rank + ca.bank]
                            .classify(ca.row) == RowOutcome::kHit;
        const bool hb = banks_[cb.rank * geo_.banks_per_rank + cb.bank]
                            .classify(cb.row) == RowOutcome::kHit;
        if (ha != hb)
            return ha;
        const auto ra = thread_rank_[a.req.core % num_cores_];
        const auto rb = thread_rank_[b.req.core % num_cores_];
        if (ra != rb)
            return ra < rb;
        return a.req.cycle_mc_enqueue < b.req.cycle_mc_enqueue;
    };
    for (std::size_t i = 0; i < read_q_.size(); ++i) {
        const DramCoord c = mapAddress(read_q_[i].req.paddr, geo_);
        const Bank &b = banks_[c.rank * geo_.banks_per_rank + c.bank];
        if (b.readyCycle() > now)
            continue;
        if (best < 0 || better(read_q_[i], read_q_[best]))
            best = static_cast<int>(i);
    }
    return best;
}

void
DramChannel::applyActConstraints(const DramCoord &c, Cycle act_cycle)
{
    // tRRD between activates in the same rank; tFAW over four.
    for (unsigned b = 0; b < geo_.banks_per_rank; ++b) {
        auto &bank = banks_[c.rank * geo_.banks_per_rank + b];
        bank.blockActivateUntil(act_cycle + t_.tRRD);
    }
}

void
DramChannel::issue(Queued &qe, Cycle now, bool is_write)
{
    MemRequest &req = qe.req;
    const DramCoord c = mapAddress(req.paddr, geo_);
    Bank &bank = bankFor(c);

    RowOutcome outcome;
    Cycle data_start = bank.access(c.row, now, t_, is_write, outcome);
    data_start = std::max(data_start, bus_free_);
    const Cycle data_done = data_start + t_.tBurst;
    bus_free_ = data_done;
    stats_.busy_bus_cycles += t_.tBurst;

    if (outcome != RowOutcome::kHit) {
        applyActConstraints(c, bank.lastActivate());
        EMC_OBS_POINT(tracer_, obs::TracePoint::kRowAct, now, req.id,
                      obs::Track::bank(trace_bank_base_
                                       + c.rank * geo_.banks_per_rank
                                       + c.bank),
                      c.row);
    }

    req.cycle_dram_issue = now;
    req.cycle_dram_data = data_done;
    req.outcome = outcome;

    switch (outcome) {
      case RowOutcome::kHit: ++stats_.row_hits; break;
      case RowOutcome::kEmpty: ++stats_.row_empty; break;
      case RowOutcome::kConflict: ++stats_.row_conflicts; break;
    }

    if (is_write) {
        ++stats_.writes;
        ++issued_writes_;
    } else {
        ++stats_.reads;
        stats_.total_queue_wait +=
            static_cast<double>(now - req.cycle_mc_enqueue);
        stats_.total_service += static_cast<double>(data_done - now);
        ++stats_.read_samples;
        in_flight_.push_back(req);
    }
}

void
DramChannel::tick(Cycle now)
{
    maybeRefresh(now);

    // Deliver finished reads.
    for (std::size_t i = 0; i < in_flight_.size();) {
        if (in_flight_[i].cycle_dram_data <= now) {
            ++completed_reads_;
            if (callback_)
                callback_(in_flight_[i]);
            in_flight_[i] = in_flight_.back();
            in_flight_.pop_back();
        } else {
            ++i;
        }
    }

    // Write drain policy: drain when the write queue is deep or there
    // is nothing else to do.
    constexpr std::size_t kWriteHigh = 32;
    constexpr std::size_t kWriteLow = 8;
    if (draining_writes_ && write_q_.size() <= kWriteLow)
        draining_writes_ = false;
    if (!draining_writes_ && write_q_.size() >= kWriteHigh)
        draining_writes_ = true;

    const bool do_write =
        (draining_writes_ || read_q_.empty()) && !write_q_.empty();

    if (do_write) {
        const int idx = pickFrFcfs(write_q_, now);
        if (idx >= 0) {
            issue(write_q_[idx], now, true);
            write_q_.erase(write_q_.begin() + idx);
            return;
        }
    }

    if (!read_q_.empty()) {
        const int idx = policy_ == SchedPolicy::kFrFcfs
                            ? pickFrFcfs(read_q_, now)
                            : pickBatch(now);
        if (idx >= 0) {
            if (read_q_[idx].marked && marked_remaining_ > 0)
                --marked_remaining_;
            issue(read_q_[idx], now, false);
            read_q_.erase(read_q_.begin() + idx);
        }
    }
}

} // namespace emc
