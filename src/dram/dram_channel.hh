/**
 * @file
 * A DRAM channel: request queues, the scheduling policy (FR-FCFS or
 * PAR-BS batch scheduling as in the paper's baseline), ranks of banks,
 * a shared data bus and rank-level refresh.
 */

#ifndef EMC_DRAM_DRAM_CHANNEL_HH
#define EMC_DRAM_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/dram_types.hh"
#include "obs/obs.hh"

namespace emc
{

/** Scheduling policy for the memory controller. */
enum class SchedPolicy : std::uint8_t
{
    kFrFcfs,   ///< first-ready, first-come-first-served
    kBatch,    ///< parallelism-aware batch scheduling [42]
};

/** Aggregate per-channel statistics. */
struct DramChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_empty = 0;
    std::uint64_t row_conflicts = 0;
    std::uint64_t refreshes = 0;
    double total_queue_wait = 0;   ///< enqueue -> issue, reads only
    double total_service = 0;      ///< issue -> data, reads only
    std::uint64_t read_samples = 0;
    Cycle busy_bus_cycles = 0;

    double
    rowConflictRate() const
    {
        const auto total = row_hits + row_empty + row_conflicts;
        return total ? static_cast<double>(row_conflicts) / total : 0.0;
    }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(reads);
        ar.io(writes);
        ar.io(row_hits);
        ar.io(row_empty);
        ar.io(row_conflicts);
        ar.io(refreshes);
        ar.io(total_queue_wait);
        ar.io(total_service);
        ar.io(read_samples);
        ar.io(busy_bus_cycles);
    }
};

/**
 * One DDR3 channel with its queues and banks.
 *
 * Requests enter via enqueue(); each tick() the scheduler may issue
 * one request; completions are delivered through the callback the
 * owner registered. The in-flight list is drained in completion
 * order.
 */
class DramChannel
{
  public:
    using Callback = std::function<void(const MemRequest &)>;

    /**
     * @param geo DRAM geometry (this channel's ranks/banks)
     * @param timing DDR3 timings in core cycles
     * @param policy scheduling policy
     * @param queue_limit read-queue capacity (Table 1: 128 / #channels)
     * @param num_cores used by the batch scheduler's thread ranking
     */
    DramChannel(const DramGeometry &geo, const DramTiming &timing,
                SchedPolicy policy, std::size_t queue_limit,
                unsigned num_cores);

    /** @retval false if the read queue is full (caller must retry). */
    bool enqueue(const MemRequest &req, Cycle now);

    /** True if another read request can be accepted. */
    bool canAccept() const { return read_q_.size() < queue_limit_; }

    /** Advance one core cycle; delivers completions via the callback. */
    void tick(Cycle now);

    void setCallback(Callback cb) { callback_ = std::move(cb); }

    const DramChannelStats &stats() const { return stats_; }

    /** Zero the statistics (post-warmup measurement start). */
    void resetStats() { stats_ = DramChannelStats{}; }

    std::size_t readQueueDepth() const { return read_q_.size(); }
    std::size_t writeQueueDepth() const { return write_q_.size(); }

    /** True while any request is queued or in flight. */
    bool
    busy() const
    {
        return !read_q_.empty() || !write_q_.empty()
               || !in_flight_.empty();
    }

    /**
     * Next cycle at which tick() has a timed side effect even with no
     * requests anywhere: the refresh boundary (refresh fires and
     * counts as soon as now reaches it).
     */
    Cycle nextRefresh() const { return next_refresh_; }

    /** Expose bank state for tests. */
    const Bank &bank(unsigned rank, unsigned b) const;

    /**
     * Lifetime accept/complete counters for conservation checks.
     * Unlike stats(), these survive resetStats():
     *   acceptedReads − completedReads == readQueueDepth + inFlight
     *   acceptedWrites − issuedWrites == writeQueueDepth
     * (writes leave accounting at issue; they have no fill callback).
     */
    std::uint64_t acceptedReads() const { return accepted_reads_; }
    std::uint64_t completedReads() const { return completed_reads_; }
    std::uint64_t acceptedWrites() const { return accepted_writes_; }
    std::uint64_t issuedWrites() const { return issued_writes_; }
    std::size_t inFlight() const { return in_flight_.size(); }
    std::size_t queueLimit() const { return queue_limit_; }

    /**
     * Attach the lifecycle tracer (null detaches). Observation only;
     * emits a row_act instant per bank activate. @p first_flat_bank
     * is this channel's base in the system-wide flat bank numbering.
     */
    void
    setTrace(obs::Tracer *t, std::uint32_t first_flat_bank)
    {
        tracer_ = t;
        trace_bank_base_ = first_flat_bank;
    }

    /** Checkpoint queues, banks, timing state and counters. */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(banks_);
        ar.io(read_q_);
        ar.io(write_q_);
        ar.io(in_flight_);
        ar.io(bus_free_);
        ar.io(next_refresh_);
        ar.io(draining_writes_);
        ar.io(marked_remaining_);
        ar.io(thread_rank_);
        ar.io(stats_);
        ar.io(accepted_reads_);
        ar.io(completed_reads_);
        ar.io(accepted_writes_);
        ar.io(issued_writes_);
    }

  private:
    /** A queued request plus its PAR-BS batch mark. */
    struct Queued
    {
        MemRequest req;
        bool marked = false;   ///< in the current PAR-BS batch

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(req);
            ar.io(marked);
        }
    };

    void maybeRefresh(Cycle now);
    void formBatch();
    int pickFrFcfs(const std::deque<Queued> &q, Cycle now) const;
    int pickBatch(Cycle now);
    void issue(Queued &qe, Cycle now, bool is_write);
    Bank &bankFor(const DramCoord &c);
    void applyActConstraints(const DramCoord &c, Cycle act_cycle);

    DramGeometry geo_;    // ckpt-skip: (config, not state)
    DramTiming t_;        // ckpt-skip: (config, not state)
    SchedPolicy policy_;  // ckpt-skip: (config, not state)
    obs::Tracer *tracer_ = nullptr;
    std::uint32_t trace_bank_base_ = 0;  // ckpt-skip: (obs wiring)
    std::size_t queue_limit_;  // ckpt-skip: (config, not state)
    unsigned num_cores_;       // ckpt-skip: (config, not state)

    std::vector<Bank> banks_;          ///< [rank * banks_per_rank + bank]
    std::deque<Queued> read_q_;
    std::deque<Queued> write_q_;
    std::vector<MemRequest> in_flight_;

    Cycle bus_free_ = 0;
    Cycle next_refresh_ = 0;
    bool draining_writes_ = false;

    // PAR-BS state
    std::uint64_t marked_remaining_ = 0;
    std::vector<std::uint64_t> thread_rank_;  ///< lower = higher priority

    Callback callback_;
    DramChannelStats stats_;

    // Conservation counters (not reset with stats_).
    std::uint64_t accepted_reads_ = 0;
    std::uint64_t completed_reads_ = 0;
    std::uint64_t accepted_writes_ = 0;
    std::uint64_t issued_writes_ = 0;
};

} // namespace emc

#endif // EMC_DRAM_DRAM_CHANNEL_HH
