/**
 * @file
 * Per-bank DRAM state machine. Tracks the open row and the earliest
 * cycle at which the bank can begin servicing the next column access,
 * honoring tRAS/tRP/tRCD/tWR/tRTP and (at the rank level) tRRD/tFAW.
 */

#ifndef EMC_DRAM_BANK_HH
#define EMC_DRAM_BANK_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "dram/dram_types.hh"

namespace emc
{

/** One DRAM bank: open-row tracking plus timing bookkeeping. */
class Bank
{
  public:
    /** @return the row-buffer outcome if a request to @p row issued now. */
    RowOutcome
    classify(std::uint64_t row) const
    {
        if (!row_open_)
            return RowOutcome::kEmpty;
        return row == open_row_ ? RowOutcome::kHit : RowOutcome::kConflict;
    }

    bool rowOpen() const { return row_open_; }
    std::uint64_t openRow() const { return open_row_; }
    Cycle readyCycle() const { return ready_cycle_; }

    /**
     * Commit a column access to @p row starting no earlier than
     * @p earliest, returning the cycle at which data transfer may
     * begin (before bus arbitration).
     *
     * @param row target row
     * @param earliest lower bound (scheduler's issue cycle)
     * @param t timing parameters
     * @param is_write whether this is a write burst
     * @param outcome out: the row-buffer outcome used
     * @return first cycle data may be on the bus
     */
    Cycle
    access(std::uint64_t row, Cycle earliest, const DramTiming &t,
           bool is_write, RowOutcome &outcome)
    {
        Cycle start = std::max(earliest, ready_cycle_);
        outcome = classify(row);
        Cycle data_start;
        switch (outcome) {
          case RowOutcome::kHit:
            data_start = start + t.tCL;
            break;
          case RowOutcome::kEmpty:
            // Activate then CAS.
            start = std::max(start, act_allowed_);
            last_activate_ = start;
            data_start = start + t.tRCD + t.tCL;
            break;
          case RowOutcome::kConflict:
          default: {
            // Precharge (respecting tRAS), activate, CAS.
            const Cycle pre = std::max(start, last_activate_ + t.tRAS);
            Cycle act = pre + t.tRP;
            act = std::max(act, act_allowed_);
            last_activate_ = act;
            data_start = act + t.tRCD + t.tCL;
            break;
          }
        }
        row_open_ = true;
        open_row_ = row;
        // Earliest next column command to this bank.
        ready_cycle_ = data_start + (is_write ? t.tWR : t.tCCD);
        return data_start;
    }

    /** External constraint: no activate before @p c (tRRD/tFAW/refresh). */
    void
    blockActivateUntil(Cycle c)
    {
        act_allowed_ = std::max(act_allowed_, c);
    }

    /** Refresh closes the row and stalls the bank for tRFC. */
    void
    refresh(Cycle now, const DramTiming &t)
    {
        row_open_ = false;
        ready_cycle_ = std::max(ready_cycle_, now + t.tRFC);
        act_allowed_ = std::max(act_allowed_, now + t.tRFC);
    }

    Cycle lastActivate() const { return last_activate_; }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(row_open_);
        ar.io(open_row_);
        ar.io(ready_cycle_);
        ar.io(act_allowed_);
        ar.io(last_activate_);
    }

  private:
    bool row_open_ = false;
    std::uint64_t open_row_ = 0;
    Cycle ready_cycle_ = 0;
    Cycle act_allowed_ = 0;
    Cycle last_activate_ = 0;
};

} // namespace emc

#endif // EMC_DRAM_BANK_HH
