/**
 * @file
 * SyntheticProgram: a TraceSource that generates (and functionally
 * executes) a SPEC-flavored program on the fly.
 *
 * Seven kernels, mixed per BenchmarkProfile weights:
 *
 *  - chase:   walks a pre-built pointer ring through a large working
 *             set; every indirection is a potential dependent cache
 *             miss, with a few integer uops between indirections
 *             (the paper's Figure 5 pattern);
 *  - stream:  sequential loads/stores over large arrays;
 *  - random:  loads whose addresses come from register-only LCG
 *             arithmetic — misses, but *independent* ones;
 *  - compute: ILP-rich integer/FP ALU work;
 *  - graph:   CSR frontier walks — row-pointer load, edge loads, then
 *             vertex-value gathers (bfs, pagerank; irregular.cc);
 *  - hash:    bucket-chain / B-tree probes — hashed bucket head, then
 *             a serial next-pointer walk with key loads per node;
 *  - gather:  embedding-row gathers through a skewed (hot/cold)
 *             index array.
 *
 * The generator maintains architectural register values and a
 * FunctionalMemory, so every emitted DynUop carries oracle values that
 * the timing core and the EMC are checked against.
 */

#ifndef EMC_WORKLOAD_SYNTHETIC_HH
#define EMC_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "isa/trace.hh"
#include "mem/functional_memory.hh"
#include "workload/profile.hh"

namespace emc
{

/** Synthetic SPEC-like program generator / functional executor. */
class SyntheticProgram : public TraceSource
{
  public:
    /**
     * @param profile benchmark parameters
     * @param mem functional memory backing this program's address space
     * @param seed RNG seed (vary per core for heterogeneity)
     */
    SyntheticProgram(const BenchmarkProfile &profile, FunctionalMemory &mem,
                     std::uint64_t seed);

    bool next(DynUop &out) override;
    std::uint64_t produced() const override { return produced_; }

    /** Full generator state (the functional memory is saved by the
     *  owner alongside, as it is shared infrastructure). */
    void ckptSer(ckpt::Ar &ar) override;

    const BenchmarkProfile &profile() const { return profile_; }

  private:
    // Virtual-address layout of the program.
    static constexpr Addr kChaseBase = 0x10000000;
    static constexpr Addr kStreamBase = 0x20000000;
    static constexpr Addr kRandomBase = 0x30000000;
    static constexpr Addr kStackBase = 0x40000000;
    // Irregular-kernel regions (irregular.cc).
    static constexpr Addr kGraphRowBase = 0x50000000;   ///< CSR row ptrs
    static constexpr Addr kGraphEdgeBase = 0x58000000;  ///< edge targets
    static constexpr Addr kGraphValBase = 0x5c000000;   ///< vertex values
    static constexpr Addr kHashBucketBase = 0x60000000; ///< bucket heads
    static constexpr Addr kHashNodeBase = 0x68000000;   ///< chain nodes
    static constexpr Addr kEmbedIdxBase = 0x70000000;   ///< lookup indices
    static constexpr Addr kEmbedRowBase = 0x78000000;   ///< table rows

    // Architectural register conventions.
    static constexpr std::uint8_t kRegChasePtr = 1;
    static constexpr std::uint8_t kRegChasePtrB = 10;
    static constexpr std::uint8_t kRegChasePtrC = 13;
    static constexpr std::uint8_t kRegT2 = 2;
    static constexpr std::uint8_t kRegT3 = 3;
    static constexpr std::uint8_t kRegT4 = 4;
    static constexpr std::uint8_t kRegT5 = 5;
    static constexpr std::uint8_t kRegT6 = 6;
    static constexpr std::uint8_t kRegLcg = 7;
    static constexpr std::uint8_t kRegT8 = 8;
    static constexpr std::uint8_t kRegT9 = 9;
    static constexpr std::uint8_t kRegStreamIdx = 11;
    static constexpr std::uint8_t kRegT12 = 12;
    static constexpr std::uint8_t kRegAcc = 14;
    static constexpr std::uint8_t kRegSp = 15;

    void buildChaseRing();
    void emitInit();
    void genIteration();
    void genChase();
    void genStream();
    void genRandom();
    void genCompute();
    // Irregular kernels + their start-up structure builders
    // (irregular.cc).
    void buildGraph();
    void buildHashTable();
    void buildEmbedTable();
    void genGraph();
    void genHashProbe();
    void genGather();
    void maybeSpill();
    void emitBranch(std::uint8_t cond_reg, bool force_predictable);

    /** Emit + functionally execute one uop. */
    void push(Opcode op, std::uint8_t dst, std::uint8_t src1,
              std::uint8_t src2, std::int64_t imm);

    std::uint64_t regVal(std::uint8_t r) const;

    BenchmarkProfile profile_;
    FunctionalMemory &mem_;
    Rng rng_;

    std::uint64_t regs_[kArchRegs] = {};
    std::deque<DynUop> pending_;
    std::uint64_t produced_ = 0;
    std::uint64_t kernel_pc_base_ = 0x400000;
    std::uint64_t kernel_pc_off_ = 0;

    std::uint64_t chase_nodes_ = 0;
    unsigned chase_rr_ = 0;   ///< round-robin chase stream selector
    std::uint64_t stream_lines_ = 0;
    std::uint64_t stream_pos_ = 0;
    std::uint64_t random_mask_ = 0;
    std::uint64_t stack_pos_ = 0;
    std::vector<Addr> spill_slots_;  ///< outstanding spill addresses

    // Irregular-kernel layout (powers of two; rebuilt by the ctor)
    // and cursors (checkpointed).
    std::uint64_t graph_verts_ = 0;
    std::uint64_t hash_buckets_ = 0;
    std::uint64_t embed_rows_ = 0;
    std::uint64_t embed_idx_entries_ = 0;
    std::uint64_t embed_idx_pos_ = 0;
};

} // namespace emc

#endif // EMC_WORKLOAD_SYNTHETIC_HH
