/**
 * @file
 * Benchmark profiles: parameter sets that make the synthetic program
 * generator behave like the SPEC CPU2006 applications the paper
 * evaluates (Table 2's high/low memory-intensity split, Figure 2's
 * dependent-miss character). See DESIGN.md §4 for the substitution
 * rationale — we have no SPEC binaries, so each benchmark becomes a
 * generated program whose measured MPKI class and dependent-miss
 * fraction match the paper's characterization.
 */

#ifndef EMC_WORKLOAD_PROFILE_HH
#define EMC_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace emc
{

/** Knobs consumed by SyntheticProgram. Weights need not sum to 1. */
struct BenchmarkProfile
{
    std::string name;

    // Kernel mix weights.
    double mix_chase = 0.0;    ///< pointer chasing (dependent misses)
    double mix_stream = 0.0;   ///< sequential streaming
    double mix_random = 0.0;   ///< independent (data-independent) misses
    double mix_compute = 0.0;  ///< ILP-rich ALU work, few memory ops

    // Irregular-workload kernels (the trace-library families; each is
    // functionally executed against structures built at start-up).
    double mix_graph = 0.0;   ///< CSR frontier walks (bfs, pagerank)
    double mix_hash = 0.0;    ///< bucket-chain / B-tree probes
    double mix_gather = 0.0;  ///< embedding-row gathers (hot/cold skew)

    std::uint64_t ws_bytes = 1ull << 22;  ///< working-set footprint
    unsigned chase_streams = 1;     ///< independent pointer chains (MLP)
    unsigned chase_interop = 3;     ///< ALU uops between indirections
    unsigned chase_field_loads = 1; ///< extra dependent loads per node
    double fp_frac = 0.0;           ///< FP share of compute uops
    double store_frac = 0.15;       ///< store probability per iteration
    double spill_rate = 0.05;       ///< spill/fill pair rate (EMC stores)
    double mispredict_rate = 0.02;  ///< branch misprediction probability
    unsigned compute_ops = 8;       ///< uops per compute iteration
    bool high_intensity = false;    ///< paper Table 2 class

    // Irregular-kernel shape knobs (ignored unless the matching mix
    // weight is nonzero).
    unsigned graph_degree = 4;      ///< edges visited per frontier vertex
    unsigned hash_chain = 4;        ///< nodes walked per probe
    unsigned hash_node_fields = 1;  ///< extra field loads per node
    unsigned gather_lines = 2;      ///< lines fetched per embedding row
    double gather_hot_frac = 0.8;   ///< index skew toward the hot rows
};

/** Look up a profile by SPEC-style name ("mcf", "lbm", ...). */
const BenchmarkProfile &profileByName(const std::string &name);

/** All profiles, paper Table 2 order (high intensity first). */
const std::vector<BenchmarkProfile> &allProfiles();

/** The high-memory-intensity names (paper Table 2). */
const std::vector<std::string> &highIntensityNames();

/** The low-memory-intensity names (paper Table 2). */
const std::vector<std::string> &lowIntensityNames();

/**
 * The irregular-workload trace-library families (beyond the paper's
 * SPEC set): bfs, pagerank, hashjoin, btree, embed.
 */
const std::vector<std::string> &irregularNames();

/** The paper's Table 3 quad-core workload mixes H1..H10. */
const std::vector<std::vector<std::string>> &quadWorkloads();

/** Name of mix i (0-based) — "H1".."H10". */
std::string quadWorkloadName(std::size_t i);

} // namespace emc

#endif // EMC_WORKLOAD_PROFILE_HH
