#include "workload/synthetic.hh"

#include <algorithm>

#include "common/log.hh"
#include "ckpt/serial.hh"

namespace emc
{

SyntheticProgram::SyntheticProgram(const BenchmarkProfile &profile,
                                   FunctionalMemory &mem,
                                   std::uint64_t seed)
    : profile_(profile), mem_(mem), rng_(seed)
{
    // Size the chase ring and stream region from the working set.
    chase_nodes_ = std::max<std::uint64_t>(64, profile.ws_bytes / kLineBytes);
    chase_nodes_ = std::min<std::uint64_t>(chase_nodes_, 1ull << 20);
    stream_lines_ = std::max<std::uint64_t>(64,
                                            profile.ws_bytes / kLineBytes);
    stream_lines_ = std::min<std::uint64_t>(stream_lines_, 1ull << 20);

    // Random-kernel table: power-of-two span within the working set.
    std::uint64_t span = 1;
    while (span * 2 * kLineBytes <= profile.ws_bytes && span < (1u << 20))
        span *= 2;
    random_mask_ = span * kLineBytes - 1;

    if (profile.mix_chase > 0)
        buildChaseRing();
    if (profile.mix_graph > 0)
        buildGraph();
    if (profile.mix_hash > 0)
        buildHashTable();
    if (profile.mix_gather > 0)
        buildEmbedTable();
    emitInit();
}

void
SyntheticProgram::buildChaseRing()
{
    // Cyclic pointer chain over the node slots. The permutation is
    // random at cache-line granularity (every hop is a fresh line, so
    // it misses) but block-local at page granularity: real pointer
    // structures (e.g. mcf's arc arrays) are pool-allocated, so a
    // traversal revisits a bounded set of pages before moving on.
    // Blocks of 512 nodes span 8 pages — within the reach of the
    // 32-entry EMC TLB (Section 4.1.4) and a realistic core TLB.
    std::vector<std::uint32_t> order(chase_nodes_);
    for (std::uint64_t i = 0; i < chase_nodes_; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    constexpr std::uint64_t kBlockNodes = 512;
    // Shuffle whole blocks, then shuffle nodes within each block.
    const std::uint64_t blocks =
        (chase_nodes_ + kBlockNodes - 1) / kBlockNodes;
    std::vector<std::uint64_t> block_order(blocks);
    for (std::uint64_t b = 0; b < blocks; ++b)
        block_order[b] = b;
    for (std::uint64_t b = blocks - 1; b > 0; --b) {
        const std::uint64_t j = rng_.below(b + 1);
        std::swap(block_order[b], block_order[j]);
    }
    std::vector<std::uint32_t> shuffled;
    shuffled.reserve(chase_nodes_);
    for (std::uint64_t b = 0; b < blocks; ++b) {
        const std::uint64_t lo = block_order[b] * kBlockNodes;
        const std::uint64_t hi =
            std::min(lo + kBlockNodes, chase_nodes_);
        const std::size_t base = shuffled.size();
        for (std::uint64_t i = lo; i < hi; ++i)
            shuffled.push_back(order[i]);
        for (std::size_t i = shuffled.size() - 1; i > base; --i) {
            const std::size_t j = base + rng_.below(i - base + 1);
            std::swap(shuffled[i], shuffled[j]);
        }
    }
    order = std::move(shuffled);
    for (std::uint64_t i = 0; i < chase_nodes_; ++i) {
        const Addr node = kChaseBase + static_cast<Addr>(order[i])
                                           * kLineBytes;
        const Addr next = kChaseBase
                          + static_cast<Addr>(order[(i + 1) % chase_nodes_])
                                * kLineBytes;
        mem_.write(node, next);
        mem_.write(node + 8, rng_.next());
        mem_.write(node + 16, rng_.next());
    }
    // Start each independent chase stream at a different point of the
    // ring so concurrent traversals do not collide for the run lengths
    // simulated here (MLP, as in mcf's arc-list walks).
    const std::uint8_t chase_regs[3] = {kRegChasePtr, kRegChasePtrB,
                                        kRegChasePtrC};
    const unsigned streams =
        std::max(1u, std::min(3u, profile_.chase_streams));
    for (unsigned s = 0; s < streams; ++s) {
        const std::uint64_t start = (chase_nodes_ / streams) * s;
        regs_[chase_regs[s]] =
            kChaseBase + static_cast<Addr>(order[start]) * kLineBytes;
    }
}

std::uint64_t
SyntheticProgram::regVal(std::uint8_t r) const
{
    return r == kNoReg ? 0 : regs_[r];
}

void
SyntheticProgram::push(Opcode op, std::uint8_t dst, std::uint8_t src1,
                       std::uint8_t src2, std::int64_t imm)
{
    DynUop d;
    d.uop.op = op;
    d.uop.dst = dst;
    d.uop.src1 = src1;
    d.uop.src2 = src2;
    d.uop.imm = imm;
    // Stable static PCs: each kernel occupies its own code region and
    // every uop slot within an iteration keeps the same PC across
    // iterations, so PC-indexed structures (the EMC's LLC hit/miss
    // predictor, prefetcher tables) can learn.
    d.uop.pc = kernel_pc_base_ + 4 * kernel_pc_off_++;

    const std::uint64_t a = regVal(src1);
    const std::uint64_t b = regVal(src2);

    switch (op) {
      case Opcode::kLoad: {
        d.vaddr = effectiveAddr(a, imm);
        d.mem_value = mem_.read(d.vaddr);
        d.result = d.mem_value;
        if (dst != kNoReg)
            regs_[dst] = d.result;
        break;
      }
      case Opcode::kStore: {
        d.vaddr = effectiveAddr(a, imm);
        d.mem_value = b;
        mem_.write(d.vaddr, b);
        break;
      }
      case Opcode::kBranch: {
        d.taken = evalBranch(a);
        d.result = a;
        break;
      }
      default: {
        d.result = evalAlu(op, a, b, imm);
        if (dst != kNoReg)
            regs_[dst] = d.result;
        break;
      }
    }
    pending_.push_back(d);
}

void
SyntheticProgram::emitInit()
{
    kernel_pc_base_ = 0x400000;
    kernel_pc_off_ = 0;
    // Materialize base pointers and seeds with mov-immediates.
    const std::uint8_t chase_regs[3] = {kRegChasePtr, kRegChasePtrB,
                                        kRegChasePtrC};
    for (std::uint8_t r : chase_regs) {
        push(Opcode::kMov, r, kNoReg, kNoReg,
             static_cast<std::int64_t>(regs_[r] ? regs_[r] : kChaseBase));
    }
    push(Opcode::kMov, kRegLcg, kNoReg, kNoReg,
         static_cast<std::int64_t>(rng_.next() & 0xffffff));
    push(Opcode::kMov, kRegStreamIdx, kNoReg, kNoReg, 0);
    push(Opcode::kMov, kRegAcc, kNoReg, kNoReg, 0);
    push(Opcode::kMov, kRegSp, kNoReg, kNoReg,
         static_cast<std::int64_t>(kStackBase));
}

void
SyntheticProgram::emitBranch(std::uint8_t cond_reg, bool force_predictable)
{
    // The loop-control branch itself: strongly biased (taken), which
    // any predictor learns. Hard-to-predict control flow is modeled
    // by occasionally inserting a branch on data-dependent parity —
    // the accumulator mixes loaded values, so its low bit is
    // effectively random and a real predictor mispredicts it ~50% of
    // the time. The rate is tuned so the profile's intended
    // misprediction rate emerges from the hybrid predictor; the
    // sampled `mispredicted` flag is kept for runs with the predictor
    // disabled.
    if (!force_predictable
        && rng_.chance(2.0 * profile_.mispredict_rate)) {
        push(Opcode::kAnd, kRegT8, kRegAcc, kNoReg, 1);
        push(Opcode::kBranch, kNoReg, kRegT8, kNoReg, 0);
        pending_.back().mispredicted =
            rng_.chance(profile_.mispredict_rate);
    }
    push(Opcode::kBranch, kNoReg, cond_reg, kNoReg, 0);
    DynUop &d = pending_.back();
    if (!force_predictable)
        d.mispredicted = rng_.chance(profile_.mispredict_rate);
}

void
SyntheticProgram::maybeSpill()
{
    if (!rng_.chance(profile_.spill_rate))
        return;
    kernel_pc_base_ = 0x405000;
    kernel_pc_off_ = 0;
    // Register spill then a later fill from the same stack slot — the
    // pattern Section 4.3 supports at the EMC.
    const Addr slot = kStackBase + (stack_pos_++ % 512) * 8;
    push(Opcode::kAdd, kRegT6, kRegAcc, kNoReg, 1);
    push(Opcode::kMov, kRegT5, kNoReg, kNoReg,
         static_cast<std::int64_t>(slot));
    push(Opcode::kStore, kNoReg, kRegT5, kRegT6, 0);
    push(Opcode::kLoad, kRegT6, kRegT5, kNoReg, 0);
    push(Opcode::kAdd, kRegAcc, kRegAcc, kRegT6, 0);
}

void
SyntheticProgram::genChase()
{
    // Round-robin over the profile's independent chase streams; each
    // stream is a serial pointer chain, and interleaving them gives
    // the window memory-level parallelism (mcf walks many arcs).
    const std::uint8_t chase_regs[3] = {kRegChasePtr, kRegChasePtrB,
                                        kRegChasePtrC};
    const unsigned streams =
        std::max(1u, std::min(3u, profile_.chase_streams));
    const std::uint8_t ptr = chase_regs[chase_rr_ % streams];
    ++chase_rr_;
    kernel_pc_base_ = 0x401000 + 0x100 * (chase_rr_ % streams);
    kernel_pc_off_ = 0;
    // One pointer-chase step, shaped like the paper's Figure 5:
    //   load   ptr = [ptr]            <- source / dependent miss
    //   <interop ALU uops on ptr>
    //   load   rX = [ptr + 8]         <- dependent field load(s)
    //   add    acc += rX
    //   branch
    push(Opcode::kLoad, ptr, ptr, kNoReg, 0);

    // Integer uops between indirections (Figure 6's distance).
    std::uint8_t addr_reg = ptr;
    for (unsigned i = 0; i < profile_.chase_interop; ++i) {
        switch (i % 3) {
          case 0:
            push(Opcode::kMov, kRegT2, addr_reg, kNoReg, 0);
            addr_reg = kRegT2;
            break;
          case 1:
            push(Opcode::kAdd, kRegT3, addr_reg, kNoReg, 8);
            addr_reg = kRegT3;
            break;
          default:
            push(Opcode::kAdd, kRegAcc, kRegAcc, kNoReg, 1);
            break;
        }
    }

    for (unsigned f = 0; f < profile_.chase_field_loads; ++f) {
        const std::int64_t off = 8 + 8 * static_cast<std::int64_t>(f);
        const std::uint8_t base = addr_reg == ptr ? ptr : addr_reg;
        const std::int64_t imm = addr_reg == ptr ? off : off - 8;
        push(Opcode::kLoad, kRegT4, base, kNoReg, imm);
        push(Opcode::kXor, kRegAcc, kRegAcc, kRegT4, 0);
    }

    maybeSpill();
    emitBranch(ptr, false);
}

void
SyntheticProgram::genStream()
{
    kernel_pc_base_ = 0x402000;
    kernel_pc_off_ = 0;
    // A few consecutive lines of a streaming sweep.
    const unsigned lines = 2 + static_cast<unsigned>(rng_.below(3));
    for (unsigned i = 0; i < lines; ++i) {
        const Addr addr = kStreamBase
                          + (stream_pos_ % stream_lines_) * kLineBytes;
        ++stream_pos_;
        push(Opcode::kMov, kRegT12, kNoReg, kNoReg,
             static_cast<std::int64_t>(addr));
        push(Opcode::kLoad, kRegT3, kRegT12, kNoReg, 0);
        if (profile_.fp_frac > 0 && rng_.chance(profile_.fp_frac)) {
            push(Opcode::kFpAdd, kRegAcc, kRegAcc, kRegT3, 0);
        } else {
            push(Opcode::kAdd, kRegAcc, kRegAcc, kRegT3, 0);
        }
        if (rng_.chance(profile_.store_frac))
            push(Opcode::kStore, kNoReg, kRegT12, kRegAcc, 8);
    }
    emitBranch(kRegAcc, true);
}

void
SyntheticProgram::genRandom()
{
    kernel_pc_base_ = 0x403000;
    kernel_pc_off_ = 0;
    // Independent miss: the address derives from register-only LCG
    // arithmetic, so it never depends on a prior load's data.
    push(Opcode::kShl, kRegT8, kRegLcg, kNoReg, 13);
    push(Opcode::kXor, kRegLcg, kRegLcg, kRegT8, 0);
    push(Opcode::kShr, kRegT8, kRegLcg, kNoReg, 7);
    push(Opcode::kXor, kRegLcg, kRegLcg, kRegT8, 0);
    push(Opcode::kAnd, kRegT9, kRegLcg, kNoReg,
         static_cast<std::int64_t>(random_mask_ & ~0x3fULL));
    push(Opcode::kAdd, kRegT9, kRegT9, kNoReg,
         static_cast<std::int64_t>(kRandomBase));
    push(Opcode::kLoad, kRegT8, kRegT9, kNoReg, 0);
    push(Opcode::kAdd, kRegAcc, kRegAcc, kRegT8, 0);
    emitBranch(kRegLcg, true);
}

void
SyntheticProgram::genCompute()
{
    kernel_pc_base_ = 0x404000;
    kernel_pc_off_ = 0;
    // ILP-rich ALU work: two short independent chains.
    for (unsigned i = 0; i < profile_.compute_ops; ++i) {
        const bool fp = profile_.fp_frac > 0 && rng_.chance(profile_.fp_frac);
        const std::uint8_t dst = (i % 2) ? kRegT2 : kRegT3;
        const std::uint8_t src = (i % 2) ? kRegT2 : kRegT3;
        if (fp) {
            push(i % 4 == 0 ? Opcode::kFpMul : Opcode::kFpAdd,
                 dst, src, kRegAcc, 0);
        } else {
            switch (i % 4) {
              case 0: push(Opcode::kAdd, dst, src, kNoReg, 3); break;
              case 1: push(Opcode::kXor, dst, src, kRegAcc, 0); break;
              case 2: push(Opcode::kShl, dst, src, kNoReg, 1); break;
              default: push(Opcode::kSub, dst, src, kNoReg, 1); break;
            }
        }
    }
    push(Opcode::kAdd, kRegAcc, kRegAcc, kRegT2, 0);
    emitBranch(kRegAcc, true);
}

void
SyntheticProgram::genIteration()
{
    const double total = profile_.mix_chase + profile_.mix_stream
                         + profile_.mix_random + profile_.mix_compute
                         + profile_.mix_graph + profile_.mix_hash
                         + profile_.mix_gather;
    emc_assert(total > 0, "profile has no kernel weights");
    double pick = rng_.uniform() * total;
    if ((pick -= profile_.mix_chase) < 0)
        return genChase();
    if ((pick -= profile_.mix_stream) < 0)
        return genStream();
    if ((pick -= profile_.mix_random) < 0)
        return genRandom();
    if ((pick -= profile_.mix_graph) < 0)
        return genGraph();
    if ((pick -= profile_.mix_hash) < 0)
        return genHashProbe();
    if ((pick -= profile_.mix_gather) < 0)
        return genGather();
    genCompute();
}

bool
SyntheticProgram::next(DynUop &out)
{
    while (pending_.empty())
        genIteration();
    out = pending_.front();
    pending_.pop_front();
    ++produced_;
    return true;
}


void
SyntheticProgram::ckptSer(ckpt::Ar &ar)
{
    // Everything that evolves after construction. Layout parameters
    // (chase_nodes_, stream_lines_, random_mask_, pc base) and the
    // chase ring itself are rebuilt deterministically by the
    // constructor from the same profile and seed.
    ar.io(rng_);
    for (auto &r : regs_)
        ar.io(r);
    ar.io(pending_);
    ar.io(produced_);
    ar.io(kernel_pc_off_);
    ar.io(chase_rr_);
    ar.io(stream_pos_);
    ar.io(stack_pos_);
    ar.io(spill_slots_);
    ar.io(embed_idx_pos_);
}

} // namespace emc
