/**
 * @file
 * Irregular-workload kernels of SyntheticProgram (DESIGN.md §11): CSR
 * graph frontier walks, hash/B-tree bucket-chain probes, and
 * embedding-row gathers. Each kernel traverses a real data structure
 * built in functional memory at start-up, so its dependent misses are
 * genuine pointer-through-data dependences — the pattern the EMC
 * accelerates — rather than the abstract chase ring's.
 */

#include <algorithm>

#include "common/log.hh"
#include "workload/synthetic.hh"

namespace emc
{

namespace
{

/** Largest power of two <= max(x, 64), capped at 2^20. */
std::uint64_t
pow2Below(std::uint64_t x)
{
    std::uint64_t p = 64;
    while (p * 2 <= x && p < (1ull << 20))
        p *= 2;
    return p;
}

} // namespace

// --------------------------------------------------------------------
// Graph traversal (bfs, pagerank): fixed-degree CSR
// --------------------------------------------------------------------

void
SyntheticProgram::buildGraph()
{
    // Row array entry v holds the *address* of v's first edge (a
    // plain CSR offset would need a multiply the ISA lacks); edges
    // hold target vertex ids; the value array is one word per vertex.
    // Fixed out-degree keeps per-iteration uop counts (and so static
    // PCs) stable.
    const unsigned deg = std::max(1u, profile_.graph_degree);
    graph_verts_ =
        pow2Below(profile_.ws_bytes / (8 * (2 + deg)));
    for (std::uint64_t v = 0; v < graph_verts_; ++v) {
        const Addr row = kGraphEdgeBase + v * deg * 8;
        mem_.write(kGraphRowBase + v * 8, row);
        for (unsigned e = 0; e < deg; ++e) {
            // Community structure: most edges stay within a ±512
            // vertex window (the traversal revisits a bounded page
            // set, as with the chase ring's pool-allocated blocks);
            // a 20% tail of long-range edges keeps the frontier
            // moving across the whole graph.
            const std::uint64_t target =
                rng_.chance(0.2)
                    ? rng_.below(graph_verts_)
                    : (v + rng_.below(1024) - 512)
                          & (graph_verts_ - 1);
            mem_.write(row + e * 8, target);
        }
        mem_.write(kGraphValBase + v * 8, rng_.next());
    }
}

void
SyntheticProgram::genGraph()
{
    kernel_pc_base_ = 0x406000;
    kernel_pc_off_ = 0;
    const unsigned deg = std::max(1u, profile_.graph_degree);
    // One frontier step:
    //   row  = load rows[v & (verts-1)]      <- index load
    //   for each edge e:
    //     t   = load [row + 8e]              <- dependent edge load
    //     val = load values[t]               <- dependent gather
    //   v = t                                <- frontier advance
    // The mask keeps the vertex cursor valid even when another kernel
    // in the mix clobbers its register between iterations.
    push(Opcode::kShl, kRegT8, kRegT5, kNoReg, 3);
    push(Opcode::kAnd, kRegT8, kRegT8, kNoReg,
         static_cast<std::int64_t>(graph_verts_ * 8 - 1));
    push(Opcode::kLoad, kRegT9, kRegT8, kNoReg,
         static_cast<std::int64_t>(kGraphRowBase));
    for (unsigned e = 0; e < deg; ++e) {
        push(Opcode::kLoad, kRegT6, kRegT9, kNoReg,
             static_cast<std::int64_t>(8 * e));
        push(Opcode::kShl, kRegT2, kRegT6, kNoReg, 3);
        push(Opcode::kLoad, kRegT3, kRegT2, kNoReg,
             static_cast<std::int64_t>(kGraphValBase));
        if (profile_.fp_frac > 0 && rng_.chance(profile_.fp_frac))
            push(Opcode::kFpAdd, kRegAcc, kRegAcc, kRegT3, 0);
        else
            push(Opcode::kAdd, kRegAcc, kRegAcc, kRegT3, 0);
    }
    if (rng_.chance(profile_.store_frac)) {
        // Frontier-output store: mark the visited vertex's value.
        push(Opcode::kStore, kNoReg, kRegT2, kRegAcc,
             static_cast<std::int64_t>(kGraphValBase));
    }
    push(Opcode::kMov, kRegT5, kRegT6, kNoReg, 0);
    maybeSpill();
    emitBranch(kRegT5, false);
}

// --------------------------------------------------------------------
// Hash-join / B-tree probe (hashjoin, btree): bucket chains
// --------------------------------------------------------------------

void
SyntheticProgram::buildHashTable()
{
    // Every bucket heads a cyclic chain of `hash_chain` one-line
    // nodes ([next, key, payload, ...]); node slots are a random
    // permutation of the node region so the next-pointer walk misses
    // on every hop, like a heap-allocated chain after enough churn.
    const unsigned chain = std::max(1u, profile_.hash_chain);
    hash_buckets_ =
        pow2Below(profile_.ws_bytes / (8 + chain * kLineBytes));
    const std::uint64_t nodes = hash_buckets_ * chain;
    std::vector<std::uint32_t> slot(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        slot[i] = static_cast<std::uint32_t>(i);
    // Permute node slots within 512-slot (8-page) blocks only: every
    // next-pointer hop is a fresh line, but one probe's walk stays
    // inside a bounded page set — pool allocation, as in the chase
    // ring (and within reach of the 32-entry EMC TLB).
    constexpr std::uint64_t kBlockSlots = 512;
    for (std::uint64_t base = 0; base < nodes; base += kBlockSlots) {
        const std::uint64_t hi = std::min(base + kBlockSlots, nodes);
        for (std::uint64_t i = hi - 1; i > base; --i) {
            const std::uint64_t j = base + rng_.below(i - base + 1);
            std::swap(slot[i], slot[j]);
        }
    }
    for (std::uint64_t b = 0; b < hash_buckets_; ++b) {
        const std::uint64_t first = b * chain;
        mem_.write(kHashBucketBase + b * 8,
                   kHashNodeBase + Addr(slot[first]) * kLineBytes);
        for (unsigned n = 0; n < chain; ++n) {
            const Addr node =
                kHashNodeBase + Addr(slot[first + n]) * kLineBytes;
            const Addr next =
                kHashNodeBase
                + Addr(slot[first + (n + 1) % chain]) * kLineBytes;
            mem_.write(node, next);
            mem_.write(node + 8, rng_.next());   // key
            mem_.write(node + 16, rng_.next());  // payload
        }
    }
}

void
SyntheticProgram::genHashProbe()
{
    kernel_pc_base_ = 0x407000;
    kernel_pc_off_ = 0;
    const unsigned chain = std::max(1u, profile_.hash_chain);
    const unsigned fields = std::max(1u, profile_.hash_node_fields);
    // Probe: xorshift a fresh key, hash it to a bucket, load the head
    // pointer, then walk the chain — each hop loads the node's key
    // field(s) and its next pointer (the serial dependent-miss chain;
    // for btree the "chain" is the root-to-leaf path).
    push(Opcode::kShl, kRegT8, kRegLcg, kNoReg, 13);
    push(Opcode::kXor, kRegLcg, kRegLcg, kRegT8, 0);
    push(Opcode::kShr, kRegT8, kRegLcg, kNoReg, 7);
    push(Opcode::kXor, kRegLcg, kRegLcg, kRegT8, 0);
    push(Opcode::kShl, kRegT9, kRegLcg, kNoReg, 3);
    push(Opcode::kAnd, kRegT9, kRegT9, kNoReg,
         static_cast<std::int64_t>(hash_buckets_ * 8 - 1));
    push(Opcode::kLoad, kRegT2, kRegT9, kNoReg,
         static_cast<std::int64_t>(kHashBucketBase));
    for (unsigned n = 0; n < chain; ++n) {
        for (unsigned f = 0; f < fields; ++f) {
            push(Opcode::kLoad, kRegT3, kRegT2, kNoReg,
                 static_cast<std::int64_t>(8 + 8 * (f % 7)));
            push(Opcode::kXor, kRegAcc, kRegAcc, kRegT3, 0);
        }
        push(Opcode::kLoad, kRegT2, kRegT2, kNoReg, 0);
    }
    if (rng_.chance(profile_.store_frac)) {
        // Join-output store into the stack region.
        const Addr slot = kStackBase + 0x1000
                          + (stack_pos_++ % 512) * 8;
        push(Opcode::kMov, kRegT4, kNoReg, kNoReg,
             static_cast<std::int64_t>(slot));
        push(Opcode::kStore, kNoReg, kRegT4, kRegAcc, 0);
    }
    maybeSpill();
    emitBranch(kRegT2, false);
}

// --------------------------------------------------------------------
// Embedding gather (embed): skewed index array over a wide table
// --------------------------------------------------------------------

void
SyntheticProgram::buildEmbedTable()
{
    // The index array stores row *addresses* with hot/cold skew: a
    // small hot set (1/64th of the table) absorbs gather_hot_frac of
    // the lookups — the embedding-table popularity pattern. Row data
    // itself is read uninitialized (FunctionalMemory is deterministic)
    // so only the index array costs build time.
    const unsigned lines = std::max(1u, profile_.gather_lines);
    embed_rows_ =
        pow2Below(profile_.ws_bytes / (lines * kLineBytes));
    const std::uint64_t hot = std::max<std::uint64_t>(1, embed_rows_ / 64);
    embed_idx_entries_ = std::min<std::uint64_t>(
        1ull << 16, std::max<std::uint64_t>(64, embed_rows_ / 4));
    for (std::uint64_t i = 0; i < embed_idx_entries_; ++i) {
        const std::uint64_t row = rng_.chance(profile_.gather_hot_frac)
                                      ? rng_.below(hot)
                                      : rng_.below(embed_rows_);
        mem_.write(kEmbedIdxBase + i * 8,
                   kEmbedRowBase + Addr(row) * lines * kLineBytes);
    }
}

void
SyntheticProgram::genGather()
{
    kernel_pc_base_ = 0x408000;
    kernel_pc_off_ = 0;
    const unsigned lines = std::max(1u, profile_.gather_lines);
    // One lookup: sequential read of the next index entry, then fetch
    // the whole row it points at — address depends on the loaded
    // index, so cold rows are dependent misses.
    const Addr idx = kEmbedIdxBase
                     + (embed_idx_pos_++ % embed_idx_entries_) * 8;
    push(Opcode::kMov, kRegT8, kNoReg, kNoReg,
         static_cast<std::int64_t>(idx));
    push(Opcode::kLoad, kRegT9, kRegT8, kNoReg, 0);
    for (unsigned l = 0; l < lines; ++l) {
        push(Opcode::kLoad, kRegT3, kRegT9, kNoReg,
             static_cast<std::int64_t>(l * kLineBytes));
        if (profile_.fp_frac > 0 && rng_.chance(profile_.fp_frac))
            push(Opcode::kFpAdd, kRegAcc, kRegAcc, kRegT3, 0);
        else
            push(Opcode::kAdd, kRegAcc, kRegAcc, kRegT3, 0);
    }
    if (rng_.chance(profile_.store_frac)) {
        // Pooled-output store (reduction buffer in the stack region).
        const Addr slot = kStackBase + 0x2000
                          + (stack_pos_++ % 512) * 8;
        push(Opcode::kMov, kRegT4, kNoReg, kNoReg,
             static_cast<std::int64_t>(slot));
        push(Opcode::kStore, kNoReg, kRegT4, kRegAcc, 0);
    }
    emitBranch(kRegAcc, true);
}

} // namespace emc
