#include "workload/profile.hh"

#include "common/log.hh"

namespace emc
{

namespace
{

/**
 * Build the profile table. Parameters are tuned so that the measured
 * MPKI class (>=10 high / <10 low) and the rough dependent-miss
 * fraction match the paper's Figure 2 / Table 2 characterization:
 *
 *   mcf       — dominant pointer chasing, huge footprint, ~40% dep
 *   omnetpp   — pointer-heavy event queues, ~25% dep
 *   soplex    — sparse LP: mixed indirection + streaming, ~15% dep
 *   sphinx3   — acoustic scoring: streams + some indirection, ~12% dep
 *   bwaves    — FP stencil streams, ~0% dep
 *   milc      — FP lattice streams, ~0% dep
 *   libquantum— pure streaming over a large vector, ~0% dep
 *   lbm       — pure streaming writes/reads, ~0% dep
 *
 * Low-intensity benchmarks get small working sets and compute-heavy
 * mixes so they rarely miss the LLC.
 */
std::vector<BenchmarkProfile>
buildProfiles()
{
    std::vector<BenchmarkProfile> v;

    auto add = [&](BenchmarkProfile p) { v.push_back(std::move(p)); };

    // ---- high memory intensity (Table 2) ----
    {
        BenchmarkProfile p;
        p.name = "mcf";
        p.mix_chase = 0.70;
        p.mix_random = 0.10;
        p.mix_compute = 0.20;
        p.ws_bytes = 1ull << 25;  // 32 MB
        p.chase_streams = 3;      // arc-list traversal has real MLP
        p.chase_interop = 3;
        p.chase_field_loads = 1;
        p.store_frac = 0.10;
        p.spill_rate = 0.08;
        p.mispredict_rate = 0.06;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "omnetpp";
        p.mix_chase = 0.45;
        p.mix_random = 0.15;
        p.mix_compute = 0.40;
        p.ws_bytes = 1ull << 24;  // 16 MB
        p.chase_streams = 2;
        p.chase_interop = 4;
        p.chase_field_loads = 1;
        p.store_frac = 0.20;
        p.spill_rate = 0.06;
        p.mispredict_rate = 0.05;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "soplex";
        p.mix_chase = 0.22;
        p.mix_stream = 0.38;
        p.mix_random = 0.10;
        p.mix_compute = 0.30;
        p.ws_bytes = 1ull << 24;
        p.chase_interop = 4;
        p.fp_frac = 0.30;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "sphinx3";
        p.mix_chase = 0.15;
        p.mix_stream = 0.45;
        p.mix_compute = 0.40;
        p.ws_bytes = 1ull << 23;  // 8 MB
        p.chase_interop = 5;
        p.fp_frac = 0.40;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "bwaves";
        p.mix_stream = 0.70;
        p.mix_compute = 0.30;
        p.ws_bytes = 1ull << 24;
        p.fp_frac = 0.60;
        p.store_frac = 0.25;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "milc";
        p.mix_stream = 0.65;
        p.mix_random = 0.05;
        p.mix_compute = 0.30;
        p.ws_bytes = 1ull << 24;
        p.fp_frac = 0.65;
        p.store_frac = 0.25;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "libquantum";
        p.mix_stream = 0.85;
        p.mix_compute = 0.15;
        p.ws_bytes = 1ull << 25;
        p.store_frac = 0.30;
        p.mispredict_rate = 0.005;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "lbm";
        p.mix_stream = 0.90;
        p.mix_compute = 0.10;
        p.ws_bytes = 1ull << 25;
        p.fp_frac = 0.50;
        p.store_frac = 0.40;
        p.mispredict_rate = 0.002;
        p.high_intensity = true;
        add(p);
    }

    // ---- low memory intensity (Table 2) ----
    // Compute-dominated with small footprints; a handful keep a mild
    // streaming or chasing flavor (astar/xalancbmk chase pointers but
    // fit mostly in cache).
    struct LowSpec
    {
        const char *name;
        double chase, stream, compute;
        std::uint64_t ws;
        double fp;
    };
    // Working sets are cache-resident (the defining property of the
    // low-MPKI class): tiny kernels fit the L1, the larger ones fit
    // comfortably in the 4 MB LLC, so after warmup their MPKI is
    // below the paper's 10-MPKI threshold.
    const LowSpec lows[] = {
        {"calculix", 0.00, 0.10, 0.90, 1u << 13, 0.60},
        {"povray", 0.02, 0.05, 0.93, 1u << 13, 0.50},
        {"namd", 0.00, 0.15, 0.85, 1u << 13, 0.70},
        {"gamess", 0.00, 0.08, 0.92, 1u << 13, 0.60},
        {"perlbench", 0.06, 0.06, 0.88, 1u << 13, 0.00},
        {"tonto", 0.00, 0.10, 0.90, 1u << 14, 0.60},
        {"gromacs", 0.00, 0.15, 0.85, 1u << 14, 0.65},
        {"gobmk", 0.04, 0.05, 0.91, 1u << 14, 0.00},
        {"dealII", 0.03, 0.12, 0.85, 1u << 15, 0.40},
        {"sjeng", 0.03, 0.04, 0.93, 1u << 13, 0.00},
        {"gcc", 0.06, 0.08, 0.86, 1u << 15, 0.00},
        {"hmmer", 0.00, 0.20, 0.80, 1u << 14, 0.10},
        {"h264ref", 0.01, 0.20, 0.79, 1u << 15, 0.20},
        {"bzip2", 0.02, 0.25, 0.73, 1u << 15, 0.00},
        {"astar", 0.10, 0.05, 0.85, 1u << 13, 0.00},
        {"xalancbmk", 0.10, 0.06, 0.84, 1u << 13, 0.00},
        {"zeusmp", 0.00, 0.30, 0.70, 1u << 16, 0.60},
        {"cactusADM", 0.00, 0.30, 0.70, 1u << 16, 0.70},
        {"wrf", 0.00, 0.25, 0.75, 1u << 16, 0.60},
        {"GemsFDTD", 0.00, 0.35, 0.65, 1u << 16, 0.65},
        {"leslie3d", 0.00, 0.40, 0.60, 1u << 16, 0.60},
    };
    for (const auto &ls : lows) {
        BenchmarkProfile p;
        p.name = ls.name;
        p.mix_chase = ls.chase;
        p.mix_stream = ls.stream;
        p.mix_compute = ls.compute;
        p.ws_bytes = ls.ws;
        p.fp_frac = ls.fp;
        p.chase_interop = 4;
        p.high_intensity = false;
        add(p);
    }

    // ---- irregular-workload trace library (DESIGN.md §11) ----
    // Beyond the paper's SPEC set: kernel families whose dependent
    // misses come from real data structures (CSR graphs, bucket
    // chains, embedding tables) built and functionally executed at
    // start-up, not from an abstract pointer ring.
    {
        BenchmarkProfile p;
        p.name = "bfs";  // sparse frontier walk, few edges per vertex
        p.mix_graph = 0.85;
        p.mix_compute = 0.15;
        p.ws_bytes = 1ull << 25;
        p.graph_degree = 2;
        p.store_frac = 0.05;
        p.mispredict_rate = 0.08;  // data-dependent frontier tests
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "pagerank";  // denser rows + streaming rank updates
        p.mix_graph = 0.70;
        p.mix_stream = 0.20;
        p.mix_compute = 0.10;
        p.ws_bytes = 1ull << 25;
        p.graph_degree = 6;
        p.fp_frac = 0.30;
        p.store_frac = 0.15;
        p.mispredict_rate = 0.02;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "hashjoin";  // probe-side bucket-chain walks
        p.mix_hash = 0.80;
        p.mix_stream = 0.10;  // build-side scan flavor
        p.mix_compute = 0.10;
        p.ws_bytes = 1ull << 25;
        p.hash_chain = 4;
        p.hash_node_fields = 1;
        p.store_frac = 0.10;
        p.mispredict_rate = 0.04;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "btree";  // root-to-leaf probes, wide nodes
        p.mix_hash = 0.70;
        p.mix_compute = 0.30;
        p.ws_bytes = 1ull << 24;
        p.hash_chain = 3;        // tree levels per probe
        p.hash_node_fields = 2;  // key comparisons within a node
        p.mispredict_rate = 0.06;
        p.high_intensity = true;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "embed";  // embedding-table gathers, hot/cold skew
        p.mix_gather = 0.85;
        p.mix_compute = 0.15;
        p.ws_bytes = 1ull << 25;
        p.gather_lines = 2;
        p.gather_hot_frac = 0.85;
        p.fp_frac = 0.40;
        p.mispredict_rate = 0.01;
        p.high_intensity = true;
        add(p);
    }

    return v;
}

const std::vector<BenchmarkProfile> &
profiles()
{
    static const std::vector<BenchmarkProfile> v = buildProfiles();
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
allProfiles()
{
    return profiles();
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &p : profiles()) {
        if (p.name == name)
            return p;
    }
    emc_fatal("unknown benchmark profile: " + name);
}

const std::vector<std::string> &
highIntensityNames()
{
    static const std::vector<std::string> v = {
        "omnetpp", "milc", "soplex", "sphinx3",
        "bwaves", "libquantum", "lbm", "mcf",
    };
    return v;
}

const std::vector<std::string> &
lowIntensityNames()
{
    static const std::vector<std::string> v = {
        "calculix", "povray", "namd", "gamess", "perlbench", "tonto",
        "gromacs", "gobmk", "dealII", "sjeng", "gcc", "hmmer",
        "h264ref", "bzip2", "astar", "xalancbmk", "zeusmp",
        "cactusADM", "wrf", "GemsFDTD", "leslie3d",
    };
    return v;
}

const std::vector<std::string> &
irregularNames()
{
    static const std::vector<std::string> v = {
        "bfs", "pagerank", "hashjoin", "btree", "embed",
    };
    return v;
}

const std::vector<std::vector<std::string>> &
quadWorkloads()
{
    // Paper Table 3.
    static const std::vector<std::vector<std::string>> v = {
        {"bwaves", "lbm", "milc", "omnetpp"},               // H1
        {"soplex", "omnetpp", "bwaves", "libquantum"},      // H2
        {"sphinx3", "mcf", "omnetpp", "milc"},              // H3
        {"mcf", "sphinx3", "soplex", "libquantum"},         // H4
        {"lbm", "mcf", "libquantum", "bwaves"},             // H5
        {"lbm", "soplex", "mcf", "milc"},                   // H6
        {"bwaves", "libquantum", "sphinx3", "omnetpp"},     // H7
        {"omnetpp", "soplex", "mcf", "bwaves"},             // H8
        {"lbm", "mcf", "libquantum", "soplex"},             // H9
        {"libquantum", "bwaves", "soplex", "omnetpp"},      // H10
    };
    return v;
}

std::string
quadWorkloadName(std::size_t i)
{
    return "H" + std::to_string(i + 1);
}

} // namespace emc
