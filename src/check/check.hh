/**
 * @file
 * Runtime invariant-checking infrastructure (DESIGN.md §5d).
 *
 * A CheckRegistry owns a set of registered Checkers and funnels every
 * detected violation through a single failure handler. The simulator
 * components are instrumented with cheap observation hooks that are
 * only active when a registry is attached (System::enableInvariantChecks,
 * done automatically in -DEMC_SIM_CHECK=ON builds); checkers mirror
 * protocol state and cross-validate it against the components, so an
 * enabled checker never changes simulated behaviour or statistics.
 *
 * Violations report the cycle, the component and (where applicable)
 * the transaction id involved. The default handler prints the
 * violation and aborts; tests install a collecting handler instead.
 */

#ifndef EMC_CHECK_CHECK_HH
#define EMC_CHECK_CHECK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace emc::check
{

/** One detected invariant violation. */
struct Violation
{
    std::string checker;    ///< checker that fired (e.g. "event_queue")
    std::string component;  ///< component involved (e.g. "core0.rob")
    Cycle cycle = 0;        ///< global cycle at detection time
    std::uint64_t txn = 0;  ///< transaction id (0 = not applicable)
    std::string message;    ///< human-readable diagnostic

    /** One-line rendering used by the default handler and tests. */
    std::string format() const;
};

class Checker;

/**
 * Registry of runtime checkers plus the violation funnel. The owner
 * (the System) registers checkers, provides the clock, and drives the
 * per-tick / end-of-run hooks; components report through fail().
 */
class CheckRegistry
{
  public:
    using Handler = std::function<void(const Violation &)>;
    using Clock = std::function<Cycle()>;

    CheckRegistry();

    /** Clock source for violation timestamps. */
    void setClock(Clock c) { clock_ = std::move(c); }

    /**
     * Replace the failure handler. The default prints the violation to
     * stderr and aborts; tests install a collector so deliberately
     * corrupted state can be asserted on.
     */
    void setHandler(Handler h) { handler_ = std::move(h); }

    /** Register a checker (owned). @return the registered instance. */
    Checker &add(std::unique_ptr<Checker> c);

    /** Look up a registered checker by concrete type. */
    template <typename T>
    T *
    find() const
    {
        for (const auto &c : checkers_) {
            if (auto *t = dynamic_cast<T *>(c.get()))
                return t;
        }
        return nullptr;
    }

    const std::vector<std::unique_ptr<Checker>> &
    checkers() const
    {
        return checkers_;
    }

    /** Report a violation: builds the record and invokes the handler. */
    void fail(const std::string &checker, const std::string &component,
              std::uint64_t txn, const std::string &message);

    /**
     * Conservation helper: @p lhs must equal @p rhs.
     * @param what description of the conserved quantity
     */
    void expectEq(const std::string &checker,
                  const std::string &component, std::uint64_t lhs,
                  std::uint64_t rhs, const std::string &what);

    /** Run every registered checker's end-of-run pass. */
    void finalizeAll();

    /** Total violations reported so far. */
    std::uint64_t violationCount() const { return violations_; }

  private:
    Clock clock_;
    Handler handler_;
    std::vector<std::unique_ptr<Checker>> checkers_;
    std::uint64_t violations_ = 0;
};

/** Base class for registerable invariant checkers. */
class Checker
{
  public:
    explicit Checker(std::string name) : name_(std::move(name)) {}
    virtual ~Checker() = default;

    Checker(const Checker &) = delete;
    Checker &operator=(const Checker &) = delete;

    const std::string &name() const { return name_; }

    /** End-of-run consistency pass (leak detection and the like). */
    virtual void finalize(CheckRegistry &) {}

  private:
    std::string name_;
};

} // namespace emc::check

#endif // EMC_CHECK_CHECK_HH
