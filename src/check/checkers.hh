/**
 * @file
 * The concrete invariant checkers the System wires up (DESIGN.md §5d):
 *
 *  - EventQueueChecker: mirrors the calendar event queue with an
 *    ordered map and verifies pop order (ascending cycle, FIFO within
 *    a cycle) plus never-schedule-in-the-past.
 *  - TxnLifecycleChecker: explicit state machine over every memory
 *    transaction (created -> issued -> in-DRAM -> filled -> retired)
 *    with double-create / double-retire / illegal-transition detection
 *    and slab-pool leak accounting at end of run.
 *  - ConservationChecker: equality assertions over queue occupancy vs.
 *    send/deliver counters (rings, DRAM channels, the txn pool).
 *  - RetireOrderChecker: per-core in-order, gap-free ROB retirement.
 *  - validateChain(): RRT/EPR discipline of a shipped dependence chain
 *    (no double-map, no use of an unmapped EPR, live-in completeness).
 */

#ifndef EMC_CHECK_CHECKERS_HH
#define EMC_CHECK_CHECKERS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "check/check.hh"
#include "common/types.hh"
#include "emc/chain.hh"

namespace emc::check
{

/**
 * Mirrors the System's CalendarQueue with a std::map of FIFO buckets
 * and cross-checks every push/pop against it. Catches events scheduled
 * in the past, out-of-order pops, FIFO inversions within a cycle, and
 * pops with no matching push.
 */
class EventQueueChecker : public Checker
{
  public:
    EventQueueChecker() : Checker("event_queue") {}

    /**
     * Observe a push.
     * @param requested the caller-requested cycle (before clamping)
     * @param effective the cycle actually scheduled
     * @param now the current cycle
     * @param type event type tag (opaque)
     * @param token event payload token (opaque)
     */
    void onPush(CheckRegistry &reg, Cycle requested, Cycle effective,
                Cycle now, unsigned type, std::uint64_t token);

    /** Observe a pop; verifies it matches the mirror's front. */
    void onPop(CheckRegistry &reg, Cycle now, unsigned type,
               std::uint64_t token);

    /** Events the mirror believes are still pending. */
    std::size_t pendingMirror() const { return pending_; }

    /** End-of-run: @p actual_size must match the mirror. */
    void checkDrained(CheckRegistry &reg, std::size_t actual_size) const;

  private:
    struct Ev
    {
        unsigned type;
        std::uint64_t token;
    };

    std::map<Cycle, std::deque<Ev>> mirror_;
    std::size_t pending_ = 0;
    Cycle last_pop_cycle_ = 0;
};

/**
 * Transaction lifecycle state machine. The System reports every
 * create / MC-enqueue / DRAM-completion / fill / retire; the checker
 * enforces the legal transitions:
 *
 *   created -> issued | filled | retired
 *   issued  -> in-DRAM
 *   in-DRAM -> filled
 *   filled  -> filled | retired      (fill at slice, then at core)
 *
 * plus strictly-increasing ids on create (the slab pool's contract),
 * no double-create, and no transition on an unknown or already-retired
 * id (a double-retire of a pooled transaction shows up here).
 */
class TxnLifecycleChecker : public Checker
{
  public:
    TxnLifecycleChecker() : Checker("txn_lifecycle") {}

    void onCreate(CheckRegistry &reg, std::uint64_t id);
    void onIssue(CheckRegistry &reg, std::uint64_t id);
    void onDramDone(CheckRegistry &reg, std::uint64_t id);
    void onFill(CheckRegistry &reg, std::uint64_t id);
    void onRetire(CheckRegistry &reg, std::uint64_t id);

    /** Transactions the checker believes are live. */
    std::size_t liveCount() const { return live_.size(); }

    /**
     * Slab-pool leak check: the pool's live count must equal the
     * checker's. A transaction erased behind the checker's back (or
     * leaked past its retire hook) breaks the equality.
     */
    void checkLeaks(CheckRegistry &reg, std::size_t pool_live) const;

    /**
     * Checkpoint-restore reseeding: register a live transaction at a
     * given lifecycle stage without running the transition checks
     * (the saving run already validated them). Stages: 0 = created,
     * 1 = issued, 2 = in DRAM, 3 = filled.
     */
    void reseed(std::uint64_t id, unsigned stage);

    /** Restore the strictly-increasing-id watermark after reseeding. */
    void setLastCreated(std::uint64_t id) { last_created_ = id; }

  private:
    enum class State : std::uint8_t
    {
        kCreated,
        kIssued,
        kInDram,
        kFilled,
    };

    static const char *stateName(State s);
    void advance(CheckRegistry &reg, std::uint64_t id, State to,
                 const char *what);

    std::map<std::uint64_t, State> live_;
    std::uint64_t last_created_ = 0;
};

/**
 * Conservation checker: a thin namespace for occupancy-vs-counter
 * equalities. The System computes both sides (e.g. ring messages sent
 * minus delivered vs. messages physically in flight) and reports
 * mismatches through check().
 */
class ConservationChecker : public Checker
{
  public:
    ConservationChecker() : Checker("conservation") {}

    void
    check(CheckRegistry &reg, const std::string &component,
          std::uint64_t lhs, std::uint64_t rhs, const std::string &what)
    {
        reg.expectEq(name(), component, lhs, rhs, what);
    }
};

/**
 * Per-core retirement-order checker: ROB sequence numbers are handed
 * out densely at dispatch and the ROB retires strictly in order, so
 * every retired seq must be exactly the previous one plus one.
 */
class RetireOrderChecker : public Checker
{
  public:
    RetireOrderChecker() : Checker("retire_order") {}

    void onRetire(CheckRegistry &reg, unsigned core, std::uint64_t seq);

    /**
     * Checkpoint-restore reseeding: the next retire on @p core must be
     * @p last_seq + 1 (pass 0 for a core that has retired nothing).
     */
    void reseed(unsigned core, std::uint64_t last_seq) { last_[core] = last_seq; }

  private:
    std::map<unsigned, std::uint64_t> last_;
};

/**
 * Validate the RRT/EPR discipline of a dependence chain about to ship
 * to (or just accepted by) the EMC:
 *
 *  - every EPR reference is inside the register file (< kEmcPhysRegs)
 *  - no uop writes an EPR another uop already produced (double-map)
 *  - every EPR source reads an EPR produced by an earlier uop (a
 *    use-before-def means the core's RRT leaked a stale mapping)
 *  - every operand of a non-source uop is an EPR or a captured live-in
 *  - live_in_count matches the number of live-in operands (the wire
 *    live-in vector would otherwise be incomplete)
 *  - the source EPR is the destination of a source uop
 *
 * @return the number of violations reported
 */
unsigned validateChain(const ChainRequest &chain, CheckRegistry &reg,
                       const std::string &component);

} // namespace emc::check

#endif // EMC_CHECK_CHECKERS_HH
