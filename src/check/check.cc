#include "check/check.hh"

#include <cstdio>
#include <cstdlib>

namespace emc::check
{

std::string
Violation::format() const
{
    std::string s = "[cycle " + std::to_string(cycle) + "] "
                    + checker + " @ " + component;
    if (txn != 0)
        s += " txn " + std::to_string(txn);
    s += ": " + message;
    return s;
}

CheckRegistry::CheckRegistry()
{
    handler_ = [](const Violation &v) {
        std::fprintf(stderr, "invariant violation: %s\n",
                     v.format().c_str());
        std::abort();
    };
}

Checker &
CheckRegistry::add(std::unique_ptr<Checker> c)
{
    checkers_.push_back(std::move(c));
    return *checkers_.back();
}

void
CheckRegistry::fail(const std::string &checker,
                    const std::string &component, std::uint64_t txn,
                    const std::string &message)
{
    Violation v;
    v.checker = checker;
    v.component = component;
    v.cycle = clock_ ? clock_() : 0;
    v.txn = txn;
    v.message = message;
    ++violations_;
    handler_(v);
}

void
CheckRegistry::expectEq(const std::string &checker,
                        const std::string &component, std::uint64_t lhs,
                        std::uint64_t rhs, const std::string &what)
{
    if (lhs == rhs)
        return;
    fail(checker, component, 0,
         what + " not conserved: " + std::to_string(lhs)
             + " != " + std::to_string(rhs));
}

void
CheckRegistry::finalizeAll()
{
    for (auto &c : checkers_)
        c->finalize(*this);
}

} // namespace emc::check
