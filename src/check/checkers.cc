#include "check/checkers.hh"

#include <string>

#include "isa/uop.hh"

namespace emc::check
{

// --------------------------------------------------------------------
// EventQueueChecker
// --------------------------------------------------------------------

void
EventQueueChecker::onPush(CheckRegistry &reg, Cycle requested,
                          Cycle effective, Cycle now, unsigned type,
                          std::uint64_t token)
{
    if (requested <= now) {
        reg.fail(name(), "event_queue", token,
                 "event type " + std::to_string(type)
                     + " scheduled in the past (requested cycle "
                     + std::to_string(requested) + " <= now "
                     + std::to_string(now) + ")");
    }
    if (effective <= now) {
        reg.fail(name(), "event_queue", token,
                 "effective schedule cycle "
                     + std::to_string(effective)
                     + " not in the future of " + std::to_string(now));
    }
    mirror_[effective].push_back(Ev{type, token});
    ++pending_;
}

void
EventQueueChecker::onPop(CheckRegistry &reg, Cycle now, unsigned type,
                         std::uint64_t token)
{
    if (mirror_.empty()) {
        reg.fail(name(), "event_queue", token,
                 "pop of event type " + std::to_string(type)
                     + " with no matching push");
        return;
    }
    auto it = mirror_.begin();
    if (it->first > now) {
        reg.fail(name(), "event_queue", token,
                 "event popped at cycle " + std::to_string(now)
                     + " but earliest pending is cycle "
                     + std::to_string(it->first));
        return;
    }
    if (it->first < last_pop_cycle_) {
        reg.fail(name(), "event_queue", token,
                 "pop cycle " + std::to_string(it->first)
                     + " regressed below " + std::to_string(last_pop_cycle_));
    }
    last_pop_cycle_ = it->first;
    const Ev &front = it->second.front();
    if (front.type != type || front.token != token) {
        reg.fail(name(), "event_queue", token,
                 "FIFO order violated at cycle " + std::to_string(it->first)
                     + ": expected type " + std::to_string(front.type)
                     + " token " + std::to_string(front.token)
                     + ", popped type " + std::to_string(type));
    }
    it->second.pop_front();
    if (it->second.empty())
        mirror_.erase(it);
    --pending_;
}

void
EventQueueChecker::checkDrained(CheckRegistry &reg,
                                std::size_t actual_size) const
{
    reg.expectEq(name(), "event_queue", pending_, actual_size,
                 "pending event count (mirror vs. queue)");
}

// --------------------------------------------------------------------
// TxnLifecycleChecker
// --------------------------------------------------------------------

const char *
TxnLifecycleChecker::stateName(State s)
{
    switch (s) {
    case State::kCreated: return "created";
    case State::kIssued: return "issued";
    case State::kInDram: return "in-DRAM";
    case State::kFilled: return "filled";
    }
    return "?";
}

void
TxnLifecycleChecker::onCreate(CheckRegistry &reg, std::uint64_t id)
{
    if (live_.count(id)) {
        reg.fail(name(), "txn_pool", id,
                 "transaction created twice (still "
                     + std::string(stateName(live_[id])) + ")");
        return;
    }
    if (id <= last_created_) {
        reg.fail(name(), "txn_pool", id,
                 "transaction ids not strictly increasing (previous "
                     + std::to_string(last_created_) + ")");
    }
    last_created_ = id;
    live_[id] = State::kCreated;
}

void
TxnLifecycleChecker::advance(CheckRegistry &reg, std::uint64_t id,
                             State to, const char *what)
{
    auto it = live_.find(id);
    if (it == live_.end()) {
        reg.fail(name(), "txn_pool", id,
                 std::string(what)
                     + " of a transaction that is not live "
                       "(double-retire or missing create)");
        return;
    }
    const State from = it->second;
    bool ok = false;
    switch (to) {
    case State::kCreated:
        break;  // never a transition target
    case State::kIssued:
        ok = from == State::kCreated;
        break;
    case State::kInDram:
        ok = from == State::kIssued;
        break;
    case State::kFilled:
        // created -> filled covers MSHR-merged fills that never
        // reached a memory controller; filled -> filled covers the
        // LLC-slice fill followed by the core fill.
        ok = from == State::kCreated || from == State::kInDram
             || from == State::kFilled;
        break;
    }
    if (!ok) {
        reg.fail(name(), "txn_pool", id,
                 std::string(what) + " from illegal state "
                     + stateName(from));
        return;
    }
    it->second = to;
}

void
TxnLifecycleChecker::onIssue(CheckRegistry &reg, std::uint64_t id)
{
    advance(reg, id, State::kIssued, "MC enqueue");
}

void
TxnLifecycleChecker::onDramDone(CheckRegistry &reg, std::uint64_t id)
{
    advance(reg, id, State::kInDram, "DRAM completion");
}

void
TxnLifecycleChecker::onFill(CheckRegistry &reg, std::uint64_t id)
{
    advance(reg, id, State::kFilled, "fill");
}

void
TxnLifecycleChecker::onRetire(CheckRegistry &reg, std::uint64_t id)
{
    auto it = live_.find(id);
    if (it == live_.end()) {
        reg.fail(name(), "txn_pool", id,
                 "retire of a transaction that is not live "
                 "(double-retire or missing create)");
        return;
    }
    live_.erase(it);
}

void
TxnLifecycleChecker::reseed(std::uint64_t id, unsigned stage)
{
    State s = State::kCreated;
    switch (stage) {
    case 0: s = State::kCreated; break;
    case 1: s = State::kIssued; break;
    case 2: s = State::kInDram; break;
    default: s = State::kFilled; break;
    }
    live_[id] = s;
}

void
TxnLifecycleChecker::checkLeaks(CheckRegistry &reg,
                                std::size_t pool_live) const
{
    reg.expectEq(name(), "txn_pool", live_.size(), pool_live,
                 "live transaction count (tracker vs. slab pool)");
}

// --------------------------------------------------------------------
// RetireOrderChecker
// --------------------------------------------------------------------

void
RetireOrderChecker::onRetire(CheckRegistry &reg, unsigned core,
                             std::uint64_t seq)
{
    const std::string comp = "core" + std::to_string(core) + ".rob";
    auto it = last_.find(core);
    if (it != last_.end() && seq != it->second + 1) {
        reg.fail(name(), comp, 0,
                 "retired seq " + std::to_string(seq)
                     + " out of order (previous "
                     + std::to_string(it->second) + ")");
    }
    last_[core] = seq;
}

// --------------------------------------------------------------------
// validateChain
// --------------------------------------------------------------------

unsigned
validateChain(const ChainRequest &chain, CheckRegistry &reg,
              const std::string &component)
{
    unsigned violations = 0;
    auto bad = [&](const std::string &msg) {
        ++violations;
        reg.fail("chain_rrt", component, chain.id, msg);
    };

    // written[e] = true once some earlier uop produced EPR e.
    bool written[kEmcPhysRegs] = {};

    auto checkSrc = [&](std::size_t i, int which, std::uint8_t epr,
                        bool live_in, bool has_src) {
        const std::string where = "uop " + std::to_string(i) + " src"
                                  + std::to_string(which);
        if (epr != kNoEpr) {
            if (live_in) {
                bad(where + " both EPR-mapped and live-in");
                return;
            }
            if (epr >= kEmcPhysRegs) {
                bad(where + " references EPR " + std::to_string(epr)
                    + " outside the register file");
                return;
            }
            if (!written[epr]) {
                bad(where + " reads EPR " + std::to_string(epr)
                    + " before any uop defines it (stale RRT mapping)");
            }
            return;
        }
        if (has_src && !live_in && !chain.uops[i].is_source) {
            bad(where + " is neither an EPR nor a captured live-in");
        }
    };

    unsigned live_ins = 0;
    bool source_epr_defined = false;
    for (std::size_t i = 0; i < chain.uops.size(); ++i) {
        const ChainUop &cu = chain.uops[i];
        if (!cu.is_source) {
            checkSrc(i, 1, cu.epr_src1, cu.src1_live_in,
                     cu.d.uop.hasSrc1());
            checkSrc(i, 2, cu.epr_src2, cu.src2_live_in,
                     cu.d.uop.hasSrc2());
        }
        if (cu.src1_live_in)
            ++live_ins;
        if (cu.src2_live_in)
            ++live_ins;
        if (cu.epr_dst != kNoEpr) {
            if (cu.epr_dst >= kEmcPhysRegs) {
                bad("uop " + std::to_string(i) + " writes EPR "
                    + std::to_string(cu.epr_dst)
                    + " outside the register file");
            } else if (written[cu.epr_dst]) {
                bad("uop " + std::to_string(i) + " double-maps EPR "
                    + std::to_string(cu.epr_dst)
                    + " (already produced by an earlier uop)");
            } else {
                written[cu.epr_dst] = true;
            }
            if (cu.is_source && cu.epr_dst == chain.source_epr)
                source_epr_defined = true;
        }
    }

    if (live_ins != chain.live_in_count) {
        bad("live-in vector incomplete: " + std::to_string(live_ins)
            + " live-in operands but live_in_count is "
            + std::to_string(chain.live_in_count));
    }
    if (chain.source_epr != kNoEpr && !source_epr_defined) {
        bad("source EPR " + std::to_string(chain.source_epr)
            + " is not the destination of any source uop");
    }
    return violations;
}

} // namespace emc::check
