#include "trace/writer.hh"

#include <cstring>

#include "ckpt/ckpt.hh"

namespace emc::trace
{

namespace
{

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

} // namespace

Writer::Writer(const std::string &path, Provenance prov, bool compress,
               std::uint32_t block_uops)
    : path_(path),
      compress_(compress && ckpt::compressionAvailable()),
      block_uops_(block_uops == 0 ? kDefaultBlockUops : block_uops)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        throw Error("cannot open trace file for writing: " + path, 0);

    std::vector<std::uint8_t> h;
    h.insert(h.end(), kMagic, kMagic + 4);
    putU32(h, kVersion);
    putU64(h, 0);  // header_bytes, patched below once the size is known
    putU64(h, 0);  // uop_count      (patched in close)
    putU64(h, 0);  // block_count    (patched in close)
    putU64(h, 0);  // index_offset   (patched in close)
    putU64(h, prov.config_hash);
    putU64(h, prov.seed);
    putU32(h, block_uops_);
    putU32(h, compress_ ? kFlagDeflate : 0);
    putString(h, prov.workload);
    putString(h, prov.meta);
    const std::uint64_t hbytes = h.size();
    for (unsigned i = 0; i < 8; ++i)
        h[8 + i] = static_cast<std::uint8_t>(hbytes >> (8 * i));
    writeRaw(h.data(), h.size());

    codec_.saveState(block_entry_state_);
}

Writer::~Writer()
{
    // A destructor must not throw; an explicit close() surfaces
    // errors, abandoning an open writer leaves an unfinalized file
    // (index_offset 0) that readers reject with a typed error.
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
Writer::writeRaw(const void *bytes, std::size_t n)
{
    if (std::fwrite(bytes, 1, n, file_) != n) {
        const std::uint64_t at = offset_;
        std::fclose(file_);
        file_ = nullptr;
        throw Error("short write to trace file " + path_, at);
    }
    offset_ += n;
}

void
Writer::append(const DynUop &d)
{
    if (!file_)
        throw Error("append to a closed trace writer: " + path_,
                    offset_);
    codec_.encode(d, block_);
    ++block_count_uops_;
    ++count_;
    if (block_count_uops_ >= block_uops_)
        flushBlock();
}

void
Writer::flushBlock()
{
    if (block_count_uops_ == 0)
        return;

    // Raw payload: the codec entry state, then the encoded records.
    std::vector<std::uint8_t> raw;
    raw.reserve(8 * kCodecStateWords + block_.size());
    for (const std::uint64_t w : block_entry_state_)
        putU64(raw, w);
    raw.insert(raw.end(), block_.begin(), block_.end());

    std::vector<std::uint8_t> stored;
    std::uint8_t codec = kCodecRaw;
    if (compress_) {
        stored = ckpt::deflateBytes(raw.data(), raw.size());
        if (stored.size() < raw.size())
            codec = kCodecDeflate;
    }
    const std::vector<std::uint8_t> &body =
        codec == kCodecDeflate ? stored : raw;

    index_.push_back({offset_, count_ - block_count_uops_});

    std::vector<std::uint8_t> bh;
    putU32(bh, block_count_uops_);
    putU32(bh, static_cast<std::uint32_t>(raw.size()));
    putU32(bh, static_cast<std::uint32_t>(body.size()));
    bh.push_back(codec);
    putU64(bh, ckpt::fnv1a(raw.data(), raw.size()));
    writeRaw(bh.data(), bh.size());
    writeRaw(body.data(), body.size());

    block_.clear();
    block_count_uops_ = 0;
    codec_.saveState(block_entry_state_);
}

void
Writer::close()
{
    if (!file_)
        return;
    flushBlock();

    const std::uint64_t index_offset = offset_;
    std::vector<std::uint8_t> idx;
    idx.insert(idx.end(), kIndexMagic, kIndexMagic + 8);
    for (const IndexEntry &e : index_) {
        putU64(idx, e.offset);
        putU64(idx, e.first_uop);
    }
    writeRaw(idx.data(), idx.size());

    // Back-patch uop_count / block_count / index_offset (fixed
    // offsets 16/24/32, format.hh).
    std::vector<std::uint8_t> patch;
    putU64(patch, count_);
    putU64(patch, index_.size());
    putU64(patch, index_offset);
    if (std::fseek(file_, 16, SEEK_SET) != 0
        || std::fwrite(patch.data(), 1, patch.size(), file_)
               != patch.size()) {
        std::fclose(file_);
        file_ = nullptr;
        throw Error("header back-patch failed for " + path_, 16);
    }
    if (std::fclose(file_) != 0) {
        file_ = nullptr;
        throw Error("close failed for " + path_, offset_);
    }
    file_ = nullptr;
}

} // namespace emc::trace
