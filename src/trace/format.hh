/**
 * @file
 * The v2 binary uop-trace container (DESIGN.md §11).
 *
 * A v2 trace is a versioned, seekable, compressed container for
 * dynamic uop streams — the format every trace file in and out of the
 * simulator goes through (the fixed-record v1 dump of
 * src/isa/trace_io remains readable as a legacy input). Layout, all
 * multi-byte integers little-endian:
 *
 *   header:
 *     0  char[4] "EMCT"            (shared with v1)
 *     4  u32     version = 2       (v1 files carry 1 here)
 *     8  u64     header_bytes      (file offset of the first block)
 *    16  u64     uop_count         (back-patched at close)
 *    24  u64     block_count       (back-patched at close)
 *    32  u64     index_offset      (back-patched; 0 = never closed)
 *    40  u64     config_hash       (provenance)
 *    48  u64     seed              (provenance)
 *    56  u32     block_uops        (uops per full block)
 *    60  u32     flags             (bit0: blocks may be deflated)
 *    64  u32 len + bytes           workload name (provenance)
 *        u32 len + bytes           free-form meta (provenance)
 *
 *   blocks, each:
 *     u32 uop_count   u32 raw_bytes   u32 stored_bytes
 *     u8  codec       (0 raw, 1 deflate)
 *     u64 checksum    (fnv1a-64 of the raw payload)
 *     payload         (stored_bytes)
 *
 *   block raw payload: the codec entry state (16 architectural
 *   registers, previous pc/vaddr/load value — 19 u64) followed by
 *   uop_count delta/varint-encoded records (src/trace/codec.hh). A
 *   block decodes with no context from earlier blocks, which is what
 *   makes the seek index work.
 *
 *   index, at index_offset: char[8] "EMCTIDX\n", then one
 *   (u64 file_offset, u64 first_uop) pair per block.
 *
 * Readers hold one block at a time, so replay memory is O(block),
 * not O(trace).
 */

#ifndef EMC_TRACE_FORMAT_HH
#define EMC_TRACE_FORMAT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace emc::trace
{

/** Shared magic of every trace version (v1 wrote the same bytes). */
constexpr char kMagic[4] = {'E', 'M', 'C', 'T'};
/** Container version this subsystem writes. */
constexpr std::uint32_t kVersion = 2;
/** Marker opening the block seek index. */
constexpr char kIndexMagic[8] = {'E', 'M', 'C', 'T', 'I', 'D', 'X',
                                 '\n'};
/** Uops per full block (the last block of a file may be shorter). */
constexpr std::uint32_t kDefaultBlockUops = 4096;

/** Block payload codecs. */
constexpr std::uint8_t kCodecRaw = 0;
constexpr std::uint8_t kCodecDeflate = 1;

/** Header flag: some blocks may be deflate-compressed. */
constexpr std::uint32_t kFlagDeflate = 1u << 0;

/** Fixed-size prefix of the v2 header (before the two strings). */
constexpr std::size_t kHeaderFixedBytes = 64;
/** On-disk size of a block header. */
constexpr std::size_t kBlockHeaderBytes = 4 + 4 + 4 + 1 + 8;

/**
 * A trace I/O failure: what went wrong and the file byte offset of
 * the read/write that surfaced it. Readers and writers throw this for
 * short reads/writes, checksum mismatches and malformed structure
 * instead of dying fatally, so drivers and `emctracegen verify` can
 * report and recover.
 */
class Error : public std::runtime_error
{
  public:
    Error(const std::string &what, std::uint64_t offset)
        : std::runtime_error(what + " (at byte offset "
                             + std::to_string(offset) + ")"),
          offset_(offset)
    {}

    /** File byte offset of the failing access. */
    std::uint64_t offset() const { return offset_; }

  private:
    std::uint64_t offset_;
};

/** Workload provenance carried in every v2 header. */
struct Provenance
{
    /// Benchmark-profile name the stream was generated from; drivers
    /// replaying the trace label the core with this (never guessed).
    std::string workload;
    /// Free-form recording recipe, e.g. the emctracegen command line.
    std::string meta;
    /// Hash of the generating configuration (0 when not applicable).
    std::uint64_t config_hash = 0;
    /// Generator seed of the recorded stream.
    std::uint64_t seed = 0;
};

/** Parsed v2 header plus the v1 fields a probe can report. */
struct Info
{
    std::uint32_t version = 0;
    std::uint64_t uop_count = 0;
    std::uint64_t block_count = 0;   ///< 0 for v1
    std::uint32_t block_uops = 0;    ///< 0 for v1
    std::uint64_t index_offset = 0;  ///< 0 for v1 / unfinalized v2
    std::uint64_t header_bytes = 0;
    std::uint32_t flags = 0;
    std::uint64_t file_bytes = 0;
    Provenance provenance;           ///< empty for v1

    bool finalized() const { return version == 1 || index_offset != 0; }
};

/**
 * Probe @p path: magic, version, header fields, provenance. Works on
 * both v1 and v2 files without touching record data. Throws Error on
 * open failure or a malformed header.
 */
Info probeFile(const std::string &path);

// ---------------------------------------------------------------
// Varint / zigzag primitives shared by the writer and reader.
// ---------------------------------------------------------------

/** Append @p v LEB128-encoded to @p out. */
inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Zigzag-map a signed delta into varint-friendly space. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1)
           ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void
putZigzag(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putVarint(out, zigzag(v));
}

/**
 * Decode one LEB128 varint from @p buf at @p pos (advanced past the
 * encoding). @p base is the file offset of buf[0], used only to
 * report a precise offset when the buffer ends mid-varint.
 */
inline std::uint64_t
getVarint(const std::uint8_t *buf, std::size_t size, std::size_t &pos,
          std::uint64_t base)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        if (pos >= size)
            throw Error("trace record truncated mid-varint",
                        base + pos);
        const std::uint8_t byte = buf[pos++];
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            throw Error("trace varint overruns 64 bits", base + pos);
    }
}

inline std::int64_t
getZigzag(const std::uint8_t *buf, std::size_t size, std::size_t &pos,
          std::uint64_t base)
{
    return unzigzag(getVarint(buf, size, pos, base));
}

} // namespace emc::trace

#endif // EMC_TRACE_FORMAT_HH
