/**
 * @file
 * Streaming v2 trace reader (format.hh has the container layout).
 *
 * The reader conforms to TraceSource, holds exactly one decoded-from
 * block in memory (O(block), never O(trace) — multi-billion-uop
 * traces replay without loading), and uses the block seek index for
 * O(block) positioning: checkpoint restore and fast-forward skip
 * straight to a uop index instead of replaying the file. Every
 * structural problem — short read, bad magic, checksum mismatch,
 * truncation — surfaces as trace::Error with the failing byte offset.
 */

#ifndef EMC_TRACE_READER_HH
#define EMC_TRACE_READER_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "isa/trace.hh"
#include "trace/codec.hh"
#include "trace/format.hh"

namespace emc::trace
{

/** Replays a v2 container file as a TraceSource. */
class Reader : public TraceSource
{
  public:
    /**
     * Open and validate @p path: header, index presence, index magic.
     * @param loop restart from the beginning when exhausted
     * Throws Error on anything structurally wrong.
     */
    explicit Reader(const std::string &path, bool loop = false);
    ~Reader() override;

    Reader(const Reader &) = delete;
    Reader &operator=(const Reader &) = delete;

    bool next(DynUop &out) override;
    std::uint64_t produced() const override { return produced_; }

    /** O(block) restore: seeks instead of replaying the stream. */
    void ckptSer(ckpt::Ar &ar) override;

    /** Total records in the file. */
    std::uint64_t size() const { return info_.uop_count; }

    /** Header fields and provenance. */
    const Info &info() const { return info_; }

    /**
     * Position the stream so the next next() yields record
     * @p uop_index (clamped to [0, size()]): binary-search the block
     * index, load that block, decode-and-discard within it.
     */
    void seekTo(std::uint64_t uop_index);

  private:
    void readRaw(void *bytes, std::size_t n, std::uint64_t at,
                 const char *what);
    void loadBlock(std::size_t block_idx);

    std::FILE *file_ = nullptr;
    std::string path_;
    Info info_;
    bool loop_;

    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint64_t first_uop;
    };
    std::vector<IndexEntry> index_;

    // Current block (raw payload bytes + decode cursor).
    std::vector<std::uint8_t> raw_;
    std::size_t raw_pos_ = 0;        ///< cursor into raw_
    std::uint64_t raw_base_ = 0;     ///< file offset raw_[0] came from
    std::size_t block_idx_ = 0;      ///< index of the loaded block
    std::uint32_t block_uops_ = 0;   ///< records in the loaded block
    std::uint32_t block_read_ = 0;   ///< records consumed from it
    bool block_valid_ = false;

    Codec codec_;
    std::uint64_t pos_ = 0;       ///< absolute next-record index
    std::uint64_t produced_ = 0;  ///< total records handed out
};

/**
 * Open @p path as a TraceSource, dispatching on the container
 * version: v2 files get the streaming Reader, v1 files the legacy
 * fixed-record FileTrace of src/isa/trace_io. This is the only
 * sanctioned way for simulator code to consume a trace file. Throws
 * trace::Error on a missing file or unknown version.
 */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path,
                                           bool loop = false);

/**
 * Walk every block of a v2 file end to end: validate the header,
 * index, per-block checksums, record encodings and count agreement.
 * Returns the number of records decoded; throws trace::Error (with
 * byte offset) on the first structural problem. Backs
 * `emctracegen verify`.
 */
std::uint64_t verifyFile(const std::string &path);

} // namespace emc::trace

#endif // EMC_TRACE_READER_HH
