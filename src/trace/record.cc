#include "trace/record.hh"

#include "ckpt/ckpt.hh"
#include "mem/functional_memory.hh"
#include "trace/writer.hh"
#include "workload/profile.hh"
#include "workload/synthetic.hh"

namespace emc::trace
{

std::uint64_t
recordProfile(const RecordSpec &spec)
{
    const BenchmarkProfile &prof = profileByName(spec.profile);
    FunctionalMemory mem;
    SyntheticProgram gen(prof, mem,
                         generatorSeed(spec.base_seed, spec.core));

    Provenance prov;
    prov.workload = prof.name;
    prov.meta = spec.meta;
    prov.seed = spec.base_seed;
    // Provenance hash over everything that determines the stream, so
    // two traces with equal hashes decode to equal records.
    std::uint64_t h = ckpt::fnv1a(
        reinterpret_cast<const std::uint8_t *>(prof.name.data()),
        prof.name.size());
    const std::uint64_t fields[3] = {spec.base_seed, spec.core,
                                     spec.uops};
    prov.config_hash =
        ckpt::fnv1a(reinterpret_cast<const std::uint8_t *>(fields),
                    sizeof fields, h);

    Writer w(spec.path, prov, spec.compress, spec.block_uops);
    DynUop d;
    for (std::uint64_t i = 0; i < spec.uops && gen.next(d); ++i)
        w.append(d);
    w.close();
    return w.written();
}

} // namespace emc::trace
