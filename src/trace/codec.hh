/**
 * @file
 * Delta/varint record codec of the v2 trace container.
 *
 * The encoder exploits the fact that a DynUop's oracle annotations
 * are mostly *re-derivable*: the generator produced them by
 * functionally executing the uop against architectural register
 * state, and the codec carries that same state (16 registers plus
 * pc/vaddr/load-value history). Each side replays the uop's
 * semantics — evalAlu for ALU results, effectiveAddr for memory
 * addresses, the source-register value for branch results — and a
 * field is written to the stream only when the record disagrees with
 * the derivation (a flag bit marks it explicit). For generated
 * streams nearly everything derives, so a record costs ~6–10 bytes
 * before deflate versus 46 in the v1 fixed layout; for arbitrary
 * records (fuzzed streams, foreign tools) every field falls back to
 * explicit and the round trip is still bit-exact.
 *
 * Both sides update their register state from the record's *actual*
 * values, so encoder and decoder stay in lockstep even across
 * explicit-fallback records. Blocks snapshot this state in their
 * payload header, which is what makes every block independently
 * decodable (seekable).
 */

#ifndef EMC_TRACE_CODEC_HH
#define EMC_TRACE_CODEC_HH

#include <cstdint>
#include <vector>

#include "isa/trace.hh"
#include "trace/format.hh"

namespace emc::trace
{

/** Number of u64 words a block payload's entry-state snapshot holds. */
constexpr std::size_t kCodecStateWords = kArchRegs + 3;

/**
 * The shared encode/decode state machine. One instance per stream
 * direction; reset to a block's entry snapshot when seeking.
 */
class Codec
{
  public:
    /** Append @p d's encoding to @p out and update the state. */
    void encode(const DynUop &d, std::vector<std::uint8_t> &out);

    /**
     * Decode one record from @p buf at @p pos (advanced) and update
     * the state. @p base is the file offset of buf[0] for error
     * reporting. Throws Error on a truncated or malformed record.
     */
    void decode(const std::uint8_t *buf, std::size_t size,
                std::size_t &pos, std::uint64_t base, DynUop &out);

    /** Snapshot the state words (block payload entry header). */
    void saveState(std::uint64_t (&words)[kCodecStateWords]) const;

    /** Restore a snapshot taken by saveState(). */
    void loadState(const std::uint64_t (&words)[kCodecStateWords]);

  private:
    /// Flag bits of the per-record flags byte.
    static constexpr std::uint8_t kFlagTaken = 1u << 0;
    static constexpr std::uint8_t kFlagMispredicted = 1u << 1;
    static constexpr std::uint8_t kFlagExplicitResult = 1u << 2;
    static constexpr std::uint8_t kFlagExplicitVaddr = 1u << 3;
    static constexpr std::uint8_t kFlagExplicitMemValue = 1u << 4;

    struct Derived
    {
        std::uint64_t result;
        Addr vaddr;
        std::uint64_t mem_value;
        bool mem_value_known;  ///< false for loads (fresh data)
    };

    Derived derive(const DynUop &d) const;
    void update(const DynUop &d);

    std::uint64_t regs_[kArchRegs] = {};
    std::uint64_t prev_pc_ = 0;
    std::uint64_t prev_vaddr_ = 0;
    std::uint64_t prev_load_ = 0;
};

} // namespace emc::trace

#endif // EMC_TRACE_CODEC_HH
