#include "trace/reader.hh"

#include <algorithm>
#include <cstring>

#include "ckpt/ckpt.hh"
#include "ckpt/serial.hh"
#include "isa/trace_io.hh"

namespace emc::trace
{

namespace
{

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** RAII FILE handle for the probe/verify helpers. */
struct File
{
    explicit File(const std::string &path)
        : f(std::fopen(path.c_str(), "rb"))
    {
        if (!f)
            throw Error("cannot open trace file: " + path, 0);
    }
    ~File()
    {
        if (f)
            std::fclose(f);
    }
    std::FILE *f;
};

void
readAt(std::FILE *f, std::uint64_t at, void *bytes, std::size_t n,
       const char *what)
{
    if (std::fseek(f, static_cast<long>(at), SEEK_SET) != 0
        || std::fread(bytes, 1, n, f) != n)
        throw Error(std::string("short read (") + what + ")", at);
}

std::uint64_t
fileSize(std::FILE *f)
{
    std::fseek(f, 0, SEEK_END);
    return static_cast<std::uint64_t>(std::ftell(f));
}

Info
probeOpen(std::FILE *f, const std::string &path)
{
    Info info;
    info.file_bytes = fileSize(f);

    std::uint8_t head[8];
    readAt(f, 0, head, sizeof head, "header magic");
    if (std::memcmp(head, kMagic, 4) != 0)
        throw Error("not an EMCT trace file: " + path, 0);
    info.version = getU32(head + 4);

    if (info.version == 1) {
        // Legacy fixed-record dump: magic, u32 version, u64 count.
        std::uint8_t cnt[8];
        readAt(f, 8, cnt, sizeof cnt, "v1 record count");
        info.uop_count = getU64(cnt);
        info.header_bytes = 16;
        return info;
    }
    if (info.version != kVersion)
        throw Error("unsupported trace version "
                        + std::to_string(info.version) + " in " + path,
                    4);

    std::uint8_t fixed[kHeaderFixedBytes];
    readAt(f, 0, fixed, sizeof fixed, "v2 header");
    info.header_bytes = getU64(fixed + 8);
    info.uop_count = getU64(fixed + 16);
    info.block_count = getU64(fixed + 24);
    info.index_offset = getU64(fixed + 32);
    info.provenance.config_hash = getU64(fixed + 40);
    info.provenance.seed = getU64(fixed + 48);
    info.block_uops = getU32(fixed + 56);
    info.flags = getU32(fixed + 60);

    if (info.header_bytes < kHeaderFixedBytes + 8
        || info.header_bytes > info.file_bytes)
        throw Error("v2 header length out of range", 8);
    std::vector<std::uint8_t> tail(info.header_bytes
                                   - kHeaderFixedBytes);
    readAt(f, kHeaderFixedBytes, tail.data(), tail.size(),
           "v2 header strings");
    std::size_t p = 0;
    auto getString = [&](const char *what) {
        if (p + 4 > tail.size())
            throw Error(std::string("v2 header truncated (") + what
                            + ")",
                        kHeaderFixedBytes + p);
        const std::uint32_t len = getU32(tail.data() + p);
        p += 4;
        if (p + len > tail.size())
            throw Error(std::string("v2 header truncated (") + what
                            + ")",
                        kHeaderFixedBytes + p);
        std::string s(tail.begin() + static_cast<std::ptrdiff_t>(p),
                      tail.begin()
                          + static_cast<std::ptrdiff_t>(p + len));
        p += len;
        return s;
    };
    info.provenance.workload = getString("workload");
    info.provenance.meta = getString("meta");
    return info;
}

} // namespace

Info
probeFile(const std::string &path)
{
    File f(path);
    return probeOpen(f.f, path);
}

Reader::Reader(const std::string &path, bool loop)
    : path_(path), loop_(loop)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        throw Error("cannot open trace file: " + path, 0);
    try {
        info_ = probeOpen(file_, path);
        if (info_.version != kVersion)
            throw Error("Reader needs a v2 trace (openTraceFile() "
                        "dispatches v1 files): "
                            + path,
                        4);
        if (!info_.finalized())
            throw Error("trace was never finalized (writer did not "
                        "close cleanly): "
                            + path,
                        32);

        // Load and validate the seek index.
        if (info_.index_offset + 8
                + 16 * info_.block_count > info_.file_bytes)
            throw Error("seek index overruns the file",
                        info_.index_offset);
        std::uint8_t magic[8];
        readAt(file_, info_.index_offset, magic, sizeof magic,
               "index magic");
        if (std::memcmp(magic, kIndexMagic, 8) != 0)
            throw Error("bad seek-index magic", info_.index_offset);
        std::vector<std::uint8_t> idx(16 * info_.block_count);
        readAt(file_, info_.index_offset + 8, idx.data(), idx.size(),
               "seek index");
        index_.resize(info_.block_count);
        std::uint64_t prev_uop = 0;
        for (std::size_t i = 0; i < index_.size(); ++i) {
            index_[i].offset = getU64(idx.data() + 16 * i);
            index_[i].first_uop = getU64(idx.data() + 16 * i + 8);
            if (index_[i].offset < info_.header_bytes
                || index_[i].offset >= info_.index_offset
                || (i > 0 && index_[i].first_uop <= prev_uop))
                throw Error("seek index entry "
                                + std::to_string(i)
                                + " is inconsistent",
                            info_.index_offset + 8 + 16 * i);
            prev_uop = index_[i].first_uop;
        }
        if (!index_.empty() && index_[0].first_uop != 0)
            throw Error("seek index does not start at record 0",
                        info_.index_offset + 8);
    } catch (...) {
        std::fclose(file_);
        file_ = nullptr;
        throw;
    }
}

Reader::~Reader()
{
    if (file_)
        std::fclose(file_);
}

void
Reader::readRaw(void *bytes, std::size_t n, std::uint64_t at,
                const char *what)
{
    readAt(file_, at, bytes, n, what);
}

void
Reader::loadBlock(std::size_t block_idx)
{
    const IndexEntry &e = index_[block_idx];
    const std::uint64_t expect_uops =
        (block_idx + 1 < index_.size()
             ? index_[block_idx + 1].first_uop
             : info_.uop_count)
        - e.first_uop;

    std::uint8_t bh[kBlockHeaderBytes];
    readRaw(bh, sizeof bh, e.offset, "block header");
    const std::uint32_t uops = getU32(bh);
    const std::uint32_t raw_bytes = getU32(bh + 4);
    const std::uint32_t stored_bytes = getU32(bh + 8);
    const std::uint8_t codec = bh[12];
    const std::uint64_t checksum = getU64(bh + 13);

    if (uops != expect_uops)
        throw Error("block record count disagrees with the seek index",
                    e.offset);
    if (codec != kCodecRaw && codec != kCodecDeflate)
        throw Error("unknown block codec "
                        + std::to_string(codec),
                    e.offset + 12);

    const std::uint64_t body_at = e.offset + kBlockHeaderBytes;
    std::vector<std::uint8_t> body(stored_bytes);
    readRaw(body.data(), body.size(), body_at, "block payload");
    if (codec == kCodecDeflate) {
        try {
            raw_ = ckpt::inflateBytes(body.data(), body.size(),
                                      raw_bytes);
        } catch (const ckpt::Error &err) {
            throw Error(std::string("block inflate failed: ")
                            + err.what(),
                        body_at);
        }
    } else {
        if (stored_bytes != raw_bytes)
            throw Error("raw block sizes disagree", e.offset + 4);
        raw_ = std::move(body);
    }
    if (ckpt::fnv1a(raw_.data(), raw_.size()) != checksum)
        throw Error("block checksum mismatch (trace corrupt)",
                    body_at);
    if (raw_.size() < 8 * kCodecStateWords)
        throw Error("block payload shorter than its entry state",
                    body_at);

    std::uint64_t state[kCodecStateWords];
    for (std::size_t i = 0; i < kCodecStateWords; ++i)
        state[i] = getU64(raw_.data() + 8 * i);
    codec_.loadState(state);

    raw_pos_ = 8 * kCodecStateWords;
    raw_base_ = body_at;  // offsets reported against the stored body
    block_idx_ = block_idx;
    block_uops_ = uops;
    block_read_ = 0;
    block_valid_ = true;
}

bool
Reader::next(DynUop &out)
{
    if (pos_ >= info_.uop_count) {
        if (!loop_ || info_.uop_count == 0)
            return false;
        seekTo(0);
    }
    if (!block_valid_ || block_read_ >= block_uops_) {
        const std::size_t idx = block_valid_ ? block_idx_ + 1 : 0;
        if (idx >= index_.size())
            throw Error("record index "
                            + std::to_string(pos_)
                            + " has no covering block",
                        info_.index_offset);
        // Entering the next block sequentially: the codec state is
        // already correct, but reloading from the snapshot keeps the
        // sequential and seek paths on one code path.
        loadBlock(idx);
    }
    codec_.decode(raw_.data(), raw_.size(), raw_pos_, raw_base_, out);
    ++block_read_;
    ++pos_;
    ++produced_;
    return true;
}

void
Reader::seekTo(std::uint64_t uop_index)
{
    uop_index = std::min(uop_index, info_.uop_count);
    if (uop_index == info_.uop_count) {
        pos_ = uop_index;
        block_valid_ = false;
        return;
    }
    // Last block whose first_uop <= uop_index.
    std::size_t lo = 0, hi = index_.size();
    while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (index_[mid].first_uop <= uop_index)
            lo = mid;
        else
            hi = mid;
    }
    loadBlock(lo);
    pos_ = index_[lo].first_uop;
    DynUop scratch;
    while (pos_ < uop_index) {
        codec_.decode(raw_.data(), raw_.size(), raw_pos_, raw_base_,
                      scratch);
        ++block_read_;
        ++pos_;
    }
}

void
Reader::ckptSer(ckpt::Ar &ar)
{
    std::uint64_t produced = produced_;
    ar.io(produced);
    if (ar.loading()) {
        // O(block) restore: seek straight to the stream position (v1
        // FileTrace replays the whole prefix here).
        if (info_.uop_count == 0 && produced != 0)
            throw ckpt::Error("checkpointed position in an empty "
                              "trace");
        if (info_.uop_count != 0)
            seekTo(produced % info_.uop_count);
        produced_ = produced;
        if (produced > pos_ && !loop_)
            throw ckpt::Error("trace file shorter than checkpointed "
                              "position");
    }
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path, bool loop)
{
    const Info info = probeFile(path);
    if (info.version == 1)
        return std::make_unique<FileTrace>(path, loop);
    return std::make_unique<Reader>(path, loop);
}

std::uint64_t
verifyFile(const std::string &path)
{
    Reader r(path);
    DynUop d;
    std::uint64_t n = 0;
    while (r.next(d))
        ++n;
    if (n != r.size())
        throw Error("record count disagrees with the header ("
                        + std::to_string(n) + " decoded, header says "
                        + std::to_string(r.size()) + ")",
                    16);
    return n;
}

} // namespace emc::trace
