/**
 * @file
 * Profile recording: run a synthetic benchmark generator standalone
 * and stream its dynamic uops into a v2 trace container. Shared by
 * `emctracegen record`, the record/replay identity tests, and the
 * committed reference-trace recipes — one implementation so every
 * producer derives the generator seed exactly the way the System
 * does.
 */

#ifndef EMC_TRACE_RECORD_HH
#define EMC_TRACE_RECORD_HH

#include <cstdint>
#include <string>

#include "trace/format.hh"

namespace emc::trace
{

/**
 * The per-core generator seed the System derives from the global
 * config seed. Recording with this (same base seed, same core index)
 * makes the recorded stream bit-identical to what a live run's core
 * @p core would have consumed — the foundation of the record/replay
 * stat-identity guarantee.
 */
inline std::uint64_t
generatorSeed(std::uint64_t base_seed, unsigned core)
{
    return base_seed * 977 + core * 131;
}

/** What to record; recordProfile() fills the container header. */
struct RecordSpec
{
    std::string profile;        ///< benchmark profile name ("mcf", "bfs")
    std::string path;           ///< output .emct file
    std::uint64_t uops = 0;     ///< records to capture (must be > 0)
    std::uint64_t base_seed = 0x5eed;  ///< global seed (emcsim --seed)
    unsigned core = 0;          ///< core slot the trace will replay on
    bool compress = true;       ///< deflate blocks when zlib is built in
    std::uint32_t block_uops = kDefaultBlockUops;
    std::string meta;           ///< free-form note stored in the header
};

/**
 * Execute @p spec.uops iterations of the named profile's generator
 * (fresh functional memory, System-equivalent seed) into a finalized
 * v2 trace at @p spec.path. Returns the number of records written.
 * Throws trace::Error on I/O failure and emc::FatalError on an
 * unknown profile name.
 */
std::uint64_t recordProfile(const RecordSpec &spec);

} // namespace emc::trace

#endif // EMC_TRACE_RECORD_HH
