/**
 * @file
 * Streaming v2 trace writer (format.hh has the container layout).
 *
 * Appends are O(1) memory: records accumulate into one block buffer,
 * and a full block is delta/varint-encoded, deflate-compressed (when
 * the build has zlib and compression is on) and flushed. close()
 * writes the seek index and back-patches the header counts. All I/O
 * failures throw trace::Error with the failing byte offset — a
 * half-written file is recognizable (index_offset stays 0) but never
 * takes the producing process down.
 */

#ifndef EMC_TRACE_WRITER_HH
#define EMC_TRACE_WRITER_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "isa/trace.hh"
#include "trace/codec.hh"
#include "trace/format.hh"

namespace emc::trace
{

/** Streams dynamic uops into a v2 container file. */
class Writer
{
  public:
    /**
     * Open @p path for writing (truncates) and write the header.
     * @param prov workload provenance stored in the header
     * @param compress deflate blocks (ignored in zlib-less builds)
     * @param block_uops records per block (tests shrink this to force
     *        block-boundary coverage)
     */
    explicit Writer(const std::string &path, Provenance prov = {},
                    bool compress = true,
                    std::uint32_t block_uops = kDefaultBlockUops);
    ~Writer();

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    /** Append one dynamic uop. */
    void append(const DynUop &d);

    /** Flush the tail block, write the index, patch the header. */
    void close();

    std::uint64_t written() const { return count_; }

  private:
    void writeRaw(const void *bytes, std::size_t n);
    void flushBlock();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t offset_ = 0;  ///< current file write offset
    bool compress_;
    std::uint32_t block_uops_;

    Codec codec_;
    std::uint64_t block_entry_state_[kCodecStateWords] = {};
    std::vector<std::uint8_t> block_;  ///< encoded records, current block
    std::uint32_t block_count_uops_ = 0;

    struct IndexEntry
    {
        std::uint64_t offset;
        std::uint64_t first_uop;
    };
    std::vector<IndexEntry> index_;

    std::uint64_t count_ = 0;
};

/**
 * A pass-through TraceSource that records everything it forwards into
 * a v2 trace — the capture path of `emcsim --capture` wraps each
 * core's generator with one of these. finish() must be called before
 * the file is complete (the System does so when the run ends).
 */
class Recorder : public TraceSource
{
  public:
    Recorder(TraceSource *inner, const std::string &path,
             Provenance prov, bool compress = true)
        : inner_(inner), writer_(path, std::move(prov), compress)
    {}

    bool
    next(DynUop &out) override
    {
        if (!inner_->next(out))
            return false;
        writer_.append(out);
        return true;
    }

    std::uint64_t produced() const override
    {
        return inner_->produced();
    }

    void finish() { writer_.close(); }

  private:
    TraceSource *inner_;
    Writer writer_;
};

} // namespace emc::trace

#endif // EMC_TRACE_WRITER_HH
