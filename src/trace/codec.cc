#include "trace/codec.hh"

namespace emc::trace
{

Codec::Derived
Codec::derive(const DynUop &d) const
{
    const std::uint64_t a =
        d.uop.src1 == kNoReg ? 0 : regs_[d.uop.src1 % kArchRegs];
    const std::uint64_t b =
        d.uop.src2 == kNoReg ? 0 : regs_[d.uop.src2 % kArchRegs];

    Derived out;
    switch (d.uop.op) {
      case Opcode::kLoad:
        out.vaddr = effectiveAddr(a, d.uop.imm);
        out.mem_value = 0;
        out.mem_value_known = false;  // fresh data, always explicit
        out.result = d.mem_value;     // loads define dst = mem value
        break;
      case Opcode::kStore:
        out.vaddr = effectiveAddr(a, d.uop.imm);
        out.mem_value = b;
        out.mem_value_known = true;
        out.result = 0;
        break;
      case Opcode::kBranch:
        out.vaddr = kNoAddr;
        out.mem_value = 0;
        out.mem_value_known = true;
        out.result = a;
        break;
      default:
        out.vaddr = kNoAddr;
        out.mem_value = 0;
        out.mem_value_known = true;
        out.result = evalAlu(d.uop.op, a, b, d.uop.imm);
        break;
    }
    return out;
}

void
Codec::update(const DynUop &d)
{
    // Mirror the generator's functional execution, but from the
    // record's *actual* values so both codec directions stay in sync
    // even when a field fell back to explicit encoding.
    prev_pc_ = d.uop.pc;
    if (isMem(d.uop.op))
        prev_vaddr_ = d.vaddr;
    if (isLoad(d.uop.op))
        prev_load_ = d.mem_value;
    if (d.uop.dst != kNoReg && !isStore(d.uop.op)
        && !isBranch(d.uop.op)) {
        regs_[d.uop.dst % kArchRegs] = d.result;
    }
}

void
Codec::encode(const DynUop &d, std::vector<std::uint8_t> &out)
{
    const Derived dv = derive(d);

    std::uint8_t flags = 0;
    if (d.taken)
        flags |= kFlagTaken;
    if (d.mispredicted)
        flags |= kFlagMispredicted;
    // For loads the result derivation (result == mem_value) is only
    // usable once mem_value itself is decoded, which the decoder does
    // first — the ordering below keeps that dependency acyclic.
    if (d.result != dv.result)
        flags |= kFlagExplicitResult;
    if (d.vaddr != dv.vaddr)
        flags |= kFlagExplicitVaddr;
    const bool explicit_mem =
        !dv.mem_value_known || d.mem_value != dv.mem_value;
    if (explicit_mem)
        flags |= kFlagExplicitMemValue;

    out.push_back(static_cast<std::uint8_t>(d.uop.op));
    out.push_back(flags);
    out.push_back(d.uop.dst);
    out.push_back(d.uop.src1);
    out.push_back(d.uop.src2);
    putZigzag(out, d.uop.imm);
    putZigzag(out, static_cast<std::int64_t>(d.uop.pc - prev_pc_));
    if (explicit_mem) {
        // Loads delta well against the previous loaded value (pointer
        // rings and table rows cluster); anything else is rare enough
        // to take the same path.
        putZigzag(out,
                  static_cast<std::int64_t>(d.mem_value - prev_load_));
    }
    if (flags & kFlagExplicitResult)
        putVarint(out, d.result);
    if (flags & kFlagExplicitVaddr) {
        putZigzag(out,
                  static_cast<std::int64_t>(d.vaddr - prev_vaddr_));
    }

    update(d);
}

void
Codec::decode(const std::uint8_t *buf, std::size_t size,
              std::size_t &pos, std::uint64_t base, DynUop &out)
{
    if (pos + 5 > size)
        throw Error("trace record truncated", base + pos);
    out.uop.op = static_cast<Opcode>(buf[pos++]);
    const std::uint8_t flags = buf[pos++];
    out.uop.dst = buf[pos++];
    out.uop.src1 = buf[pos++];
    out.uop.src2 = buf[pos++];
    out.uop.imm = getZigzag(buf, size, pos, base);
    out.uop.pc =
        prev_pc_
        + static_cast<std::uint64_t>(getZigzag(buf, size, pos, base));

    const Derived dv = derive(out);
    out.taken = flags & kFlagTaken;
    out.mispredicted = flags & kFlagMispredicted;
    out.mem_value =
        (flags & kFlagExplicitMemValue)
            ? prev_load_ + static_cast<std::uint64_t>(
                               getZigzag(buf, size, pos, base))
            : dv.mem_value;
    if (flags & kFlagExplicitResult) {
        out.result = getVarint(buf, size, pos, base);
    } else {
        // The load-result derivation refers to the record's own
        // mem_value, decoded just above.
        out.result =
            isLoad(out.uop.op) ? out.mem_value : dv.result;
    }
    out.vaddr =
        (flags & kFlagExplicitVaddr)
            ? prev_vaddr_ + static_cast<std::uint64_t>(
                                getZigzag(buf, size, pos, base))
            : dv.vaddr;

    update(out);
}

void
Codec::saveState(std::uint64_t (&words)[kCodecStateWords]) const
{
    for (unsigned i = 0; i < kArchRegs; ++i)
        words[i] = regs_[i];
    words[kArchRegs + 0] = prev_pc_;
    words[kArchRegs + 1] = prev_vaddr_;
    words[kArchRegs + 2] = prev_load_;
}

void
Codec::loadState(const std::uint64_t (&words)[kCodecStateWords])
{
    for (unsigned i = 0; i < kArchRegs; ++i)
        regs_[i] = words[i];
    prev_pc_ = words[kArchRegs + 0];
    prev_vaddr_ = words[kArchRegs + 1];
    prev_load_ = words[kArchRegs + 2];
}

} // namespace emc::trace
