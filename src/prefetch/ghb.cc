#include "prefetch/ghb.hh"

#include "ckpt/serial.hh"

namespace emc
{

GhbPrefetcher::GhbPrefetcher(unsigned num_cores, unsigned buffer_entries)
    : buffer_entries_(buffer_entries), cores_(num_cores)
{
    for (auto &pc : cores_)
        pc.buffer.resize(buffer_entries);
}

bool
GhbPrefetcher::live(const PerCore &pc, std::uint32_t idx) const
{
    if (idx == kNoLink || idx >= buffer_entries_)
        return false;
    if (!pc.buffer[idx].valid)
        return false;
    // An index is stale once the FIFO has wrapped past it. Compute the
    // insertion age of the slot relative to the current head.
    const std::uint64_t slots_behind =
        (pc.head + buffer_entries_ - idx - 1) % buffer_entries_;
    return slots_behind < std::min<std::uint64_t>(pc.inserted,
                                                  buffer_entries_);
}

void
GhbPrefetcher::observe(CoreId core, Addr line_addr, Addr pc_addr, bool miss,
                       unsigned degree)
{
    if (!miss)
        return;  // G/DC trains on the miss stream only
    PerCore &pc = cores_[core];
    const std::uint64_t line = lineNum(line_addr);

    std::int64_t delta = 0;
    if (pc.have_last)
        delta = static_cast<std::int64_t>(line)
                - static_cast<std::int64_t>(pc.last_line);

    // Push the miss into the history buffer; link by delta-pair key.
    const std::uint32_t slot = pc.head;
    pc.head = (pc.head + 1) % buffer_entries_;
    ++pc.inserted;
    Entry &e = pc.buffer[slot];
    e.line = line;
    e.valid = true;
    e.prev = kNoLink;

    if (pc.have_last && pc.have_delta) {
        const std::uint64_t k = key(pc.last_delta, delta);
        auto it = pc.index.find(k);
        if (it != pc.index.end() && live(pc, it->second))
            e.prev = it->second;
        pc.index[k] = slot;

        // Predict: walk forward from the previous occurrence of this
        // delta context, replaying the deltas that followed it.
        if (e.prev != kNoLink) {
            std::uint64_t predicted = line;
            std::uint32_t walk = e.prev;
            for (unsigned i = 0; i < degree; ++i) {
                const std::uint32_t next = (walk + 1) % buffer_entries_;
                if (!live(pc, next) || next == slot)
                    break;
                const std::int64_t d =
                    static_cast<std::int64_t>(pc.buffer[next].line)
                    - static_cast<std::int64_t>(pc.buffer[walk].line);
                const std::int64_t pl =
                    static_cast<std::int64_t>(predicted) + d;
                if (pl < 0)
                    break;
                predicted = static_cast<std::uint64_t>(pl);
                emit(core, predicted << kLineShift);
                walk = next;
            }
        }
    }

    if (pc.have_last) {
        pc.last_delta = delta;
        pc.have_delta = true;
    }
    pc.last_line = line;
    pc.have_last = true;
}

void
GhbPrefetcher::ckptSer(ckpt::Ar &ar)
{
    serQueue(ar);
    ar.io(cores_);
}

} // namespace emc
