/**
 * @file
 * PC-indexed stride prefetcher (Baer-Chen style, the paper's
 * reference [6] class). Each static load learns its own stride via a
 * reference prediction table; confirmed strides prefetch ahead by the
 * FDP-controlled degree. Complements the region-based stream engine:
 * stride catches large fixed strides that fall outside a stream
 * window.
 */

#ifndef EMC_PREFETCH_STRIDE_HH
#define EMC_PREFETCH_STRIDE_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace emc
{

/** Reference-prediction-table stride prefetcher. */
class StridePrefetcher : public Prefetcher
{
  public:
    /**
     * @param num_cores cores sharing the engine (tables are per core)
     * @param table_entries reference prediction table size
     */
    StridePrefetcher(unsigned num_cores, unsigned table_entries = 256);

    void observe(CoreId core, Addr line_addr, Addr pc, bool miss,
                 unsigned degree) override;

    const char *name() const override { return "stride"; }

    void ckptSer(ckpt::Ar &ar) override;

  private:
    /** RPT entry confidence state. */
    enum class State : std::uint8_t
    {
        kInitial,    ///< first sighting
        kTransient,  ///< one stride observed, unconfirmed
        kSteady,     ///< stride confirmed; prefetching
    };

    /** One reference-prediction-table entry. */
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t last_line = 0;
        std::int64_t stride = 0;
        State state = State::kInitial;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(valid);
            ar.io(tag);
            ar.io(last_line);
            ar.io(stride);
            ar.io(state);
        }
    };

    std::size_t
    index(Addr pc) const
    {
        return (pc >> 2) % entries_;
    }

    unsigned entries_;
    std::vector<std::vector<Entry>> tables_;  ///< [core][entry]
};

} // namespace emc

#endif // EMC_PREFETCH_STRIDE_HH
