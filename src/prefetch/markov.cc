#include "prefetch/markov.hh"

#include "ckpt/serial.hh"

#include <algorithm>

namespace emc
{

MarkovPrefetcher::MarkovPrefetcher(unsigned num_cores,
                                   std::size_t table_bytes,
                                   unsigned successors)
    : successors_(successors), cores_(num_cores)
{
    // Entry cost: ~8 B tag + 8 B per successor slot.
    const std::size_t entry_bytes = 8 + 8 * static_cast<std::size_t>(
                                             successors);
    max_entries_ = std::max<std::size_t>(16,
                                         table_bytes / entry_bytes
                                             / num_cores);
}

void
MarkovPrefetcher::touchLru(PerCore &pc, std::uint64_t key)
{
    auto it = pc.lru_pos.find(key);
    if (it != pc.lru_pos.end()) {
        pc.lru.splice(pc.lru.begin(), pc.lru, it->second);
        return;
    }
    // New key: evict the table's LRU entry if at capacity.
    if (pc.table.size() >= max_entries_ && !pc.lru.empty()) {
        const std::uint64_t victim = pc.lru.back();
        pc.lru.pop_back();
        pc.lru_pos.erase(victim);
        pc.table.erase(victim);
    }
    pc.lru.push_front(key);
    pc.lru_pos[key] = pc.lru.begin();
}

void
MarkovPrefetcher::observe(CoreId core, Addr line_addr, Addr pc_addr,
                          bool miss, unsigned degree)
{
    if (!miss)
        return;  // Markov correlates the miss stream
    PerCore &pc = cores_[core];
    const std::uint64_t line = lineNum(line_addr);

    // Train: record this miss as a successor of the previous one.
    if (pc.have_last && pc.last_line != line) {
        touchLru(pc, pc.last_line);
        Entry &e = pc.table[pc.last_line];
        auto pos = std::find(e.succ.begin(), e.succ.end(), line);
        if (pos != e.succ.end())
            e.succ.erase(pos);
        e.succ.insert(e.succ.begin(), line);
        if (e.succ.size() > successors_)
            e.succ.resize(successors_);
    }
    pc.last_line = line;
    pc.have_last = true;

    // Predict: prefetch the recorded successors of this miss address.
    auto it = pc.table.find(line);
    if (it != pc.table.end()) {
        touchLru(pc, line);
        const unsigned n = std::min<unsigned>(
            degree, static_cast<unsigned>(it->second.succ.size()));
        for (unsigned i = 0; i < n; ++i)
            emit(core, it->second.succ[i] << kLineShift);
    }
}

void
MarkovPrefetcher::ckptSer(ckpt::Ar &ar)
{
    serQueue(ar);
    ar.io(cores_);
}

} // namespace emc
