#include "prefetch/stream.hh"

#include "ckpt/serial.hh"

#include <cstdlib>

namespace emc
{

StreamPrefetcher::StreamPrefetcher(unsigned num_cores,
                                   unsigned streams_per_core,
                                   unsigned distance)
    : streams_per_core_(streams_per_core), distance_(distance),
      streams_(num_cores, std::vector<Stream>(streams_per_core))
{
}

StreamPrefetcher::Stream *
StreamPrefetcher::findStream(CoreId core, std::uint64_t line)
{
    // A stream matches if the access lands within a small window ahead
    // of (or behind, for descending streams) the last observed line.
    constexpr std::int64_t kWindow = 6;
    for (auto &s : streams_[core]) {
        if (s.state == State::kInvalid)
            continue;
        const std::int64_t delta = static_cast<std::int64_t>(line)
                                   - static_cast<std::int64_t>(s.last_line);
        if (delta == 0)
            continue;
        if (s.state == State::kAllocated) {
            if (std::llabs(delta) <= kWindow)
                return &s;
        } else if ((delta > 0) == (s.direction > 0)
                   && std::llabs(delta) <= kWindow) {
            return &s;
        }
    }
    return nullptr;
}

StreamPrefetcher::Stream *
StreamPrefetcher::allocStream(CoreId core, std::uint64_t line)
{
    Stream *victim = nullptr;
    for (auto &s : streams_[core]) {
        if (s.state == State::kInvalid) {
            victim = &s;
            break;
        }
        if (!victim || s.lru < victim->lru)
            victim = &s;
    }
    victim->state = State::kAllocated;
    victim->last_line = line;
    victim->next_fetch = line;
    victim->direction = 1;
    victim->lru = ++lru_tick_;
    return victim;
}

void
StreamPrefetcher::observe(CoreId core, Addr line_addr, Addr pc, bool miss,
                          unsigned degree)
{
    const std::uint64_t line = lineNum(line_addr);
    Stream *s = findStream(core, line);
    if (!s) {
        if (miss)
            allocStream(core, line);
        return;
    }

    s->lru = ++lru_tick_;
    const std::int64_t delta = static_cast<std::int64_t>(line)
                               - static_cast<std::int64_t>(s->last_line);

    switch (s->state) {
      case State::kAllocated:
        // First confirming access determines the direction.
        s->direction = delta > 0 ? 1 : -1;
        s->state = State::kTraining;
        s->last_line = line;
        break;
      case State::kTraining:
        // Second confirming access arms the stream.
        s->state = State::kMonitoring;
        s->last_line = line;
        s->next_fetch = line + s->direction;
        [[fallthrough]];
      case State::kMonitoring: {
        s->last_line = line;
        // Keep the prefetch frontier `distance_` lines ahead, issuing
        // up to `degree` lines per trigger.
        const std::int64_t frontier_limit =
            static_cast<std::int64_t>(line)
            + s->direction * static_cast<std::int64_t>(distance_);
        unsigned issued = 0;
        while (issued < degree) {
            const std::int64_t next =
                static_cast<std::int64_t>(s->next_fetch);
            const bool within = s->direction > 0 ? next <= frontier_limit
                                                 : next >= frontier_limit;
            if (!within || next < 0)
                break;
            emit(core, static_cast<Addr>(next) << kLineShift);
            s->next_fetch = static_cast<std::uint64_t>(
                next + s->direction);
            ++issued;
        }
        break;
      }
      default:
        break;
    }
}

void
StreamPrefetcher::ckptSer(ckpt::Ar &ar)
{
    serQueue(ar);
    ar.io(streams_);
    ar.io(lru_tick_);
}

} // namespace emc
