/**
 * @file
 * Global History Buffer prefetcher with Global/Delta-Correlation
 * indexing (GHB G/DC, Nesbit & Smith [43]) — the strongest prefetcher
 * in the paper's evaluation. 1k-entry buffer per core, ~12 KB total.
 */

#ifndef EMC_PREFETCH_GHB_HH
#define EMC_PREFETCH_GHB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace emc
{

/**
 * GHB G/DC: the history buffer is a FIFO of the global miss-address
 * stream; the index table is keyed by the pair of most recent address
 * deltas. On a miss, the last delta pair locates the previous
 * occurrence of the same delta context; the deltas that followed it
 * then predict the upcoming addresses.
 */
class GhbPrefetcher : public Prefetcher
{
  public:
    /**
     * @param num_cores cores (each has its own buffer + index table)
     * @param buffer_entries GHB depth (paper: 1024)
     */
    GhbPrefetcher(unsigned num_cores, unsigned buffer_entries = 1024);

    void observe(CoreId core, Addr line_addr, Addr pc, bool miss,
                 unsigned degree) override;

    const char *name() const override { return "ghb"; }

    void ckptSer(ckpt::Ar &ar) override;

  private:
    /** One history-buffer slot, linked to its delta-context twin. */
    struct Entry
    {
        std::uint64_t line = 0;
        std::uint32_t prev = kNoLink;  ///< previous entry with same key
        bool valid = false;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(line);
            ar.io(prev);
            ar.io(valid);
        }
    };

    static constexpr std::uint32_t kNoLink = 0xffffffffu;

    /** Per-core buffer, index table and delta context. */
    struct PerCore
    {
        std::vector<Entry> buffer;
        std::uint32_t head = 0;            ///< next slot to write
        std::uint64_t inserted = 0;        ///< total pushes (age check)
        std::unordered_map<std::uint64_t, std::uint32_t> index;
        std::uint64_t last_line = 0;
        std::int64_t last_delta = 0;
        bool have_last = false;
        bool have_delta = false;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(buffer);
            ar.io(head);
            ar.io(inserted);
            ar.io(index);
            ar.io(last_line);
            ar.io(last_delta);
            ar.io(have_last);
            ar.io(have_delta);
        }
    };

    static std::uint64_t
    key(std::int64_t d1, std::int64_t d2)
    {
        return (static_cast<std::uint64_t>(d1) * 0x9e3779b97f4a7c15ULL)
               ^ static_cast<std::uint64_t>(d2);
    }

    /** True if GHB slot @p idx still holds live history. */
    bool live(const PerCore &pc, std::uint32_t idx) const;

    unsigned buffer_entries_;
    std::vector<PerCore> cores_;
};

} // namespace emc

#endif // EMC_PREFETCH_GHB_HH
