/**
 * @file
 * Stream prefetcher modeled after the IBM POWER4-style engine used in
 * the paper: 32 stream entries per core, prefetch distance 32 lines,
 * degree governed by FDP.
 */

#ifndef EMC_PREFETCH_STREAM_HH
#define EMC_PREFETCH_STREAM_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace emc
{

/** POWER4-style multi-stream sequential prefetcher. */
class StreamPrefetcher : public Prefetcher
{
  public:
    /**
     * @param num_cores cores sharing the engine (streams are per core)
     * @param streams_per_core number of concurrent streams tracked
     * @param distance prefetch distance in lines
     */
    StreamPrefetcher(unsigned num_cores, unsigned streams_per_core = 32,
                     unsigned distance = 32);

    void observe(CoreId core, Addr line_addr, Addr pc, bool miss,
                 unsigned degree) override;

    const char *name() const override { return "stream"; }

    void ckptSer(ckpt::Ar &ar) override;

  private:
    /** Stream training state machine. */
    enum class State { kInvalid, kAllocated, kTraining, kMonitoring };

    /** One tracked stream. */
    struct Stream
    {
        State state = State::kInvalid;
        std::uint64_t last_line = 0;   ///< last line observed
        std::uint64_t next_fetch = 0;  ///< next line to prefetch
        int direction = 1;
        std::uint64_t lru = 0;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(state);
            ar.io(last_line);
            ar.io(next_fetch);
            ar.io(direction);
            ar.io(lru);
        }
    };

    Stream *findStream(CoreId core, std::uint64_t line);
    Stream *allocStream(CoreId core, std::uint64_t line);

    unsigned streams_per_core_;
    unsigned distance_;
    std::vector<std::vector<Stream>> streams_;  ///< [core][entry]
    std::uint64_t lru_tick_ = 0;
};

} // namespace emc

#endif // EMC_PREFETCH_STREAM_HH
