/**
 * @file
 * Markov prefetcher (Joseph & Grunwald [25]): a large correlation
 * table mapping a miss address to the addresses that historically
 * followed it. Paper configuration: 1 MB table, 4 successor addresses
 * per entry; always paired with the stream prefetcher in evaluation.
 */

#ifndef EMC_PREFETCH_MARKOV_HH
#define EMC_PREFETCH_MARKOV_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace emc
{

/** Correlation-table Markov prefetcher trained on the LLC miss stream. */
class MarkovPrefetcher : public Prefetcher
{
  public:
    /**
     * @param num_cores cores (correlation state is per core)
     * @param table_bytes correlation table capacity (paper: 1 MB)
     * @param successors successor slots per entry (paper: 4)
     */
    MarkovPrefetcher(unsigned num_cores,
                     std::size_t table_bytes = 1 << 20,
                     unsigned successors = 4);

    void observe(CoreId core, Addr line_addr, Addr pc, bool miss,
                 unsigned degree) override;

    const char *name() const override { return "markov"; }

    std::size_t tableEntries() const { return max_entries_; }

    void ckptSer(ckpt::Ar &ar) override;

  private:
    /** Correlation-table entry: MRU-ordered successor lines. */
    struct Entry
    {
        std::vector<std::uint64_t> succ;  ///< MRU-ordered successor lines

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(succ);
        }
    };

    /** Per-core correlation table with LRU bookkeeping. */
    struct PerCore
    {
        std::unordered_map<std::uint64_t, Entry> table;
        std::list<std::uint64_t> lru;  ///< front = most recent key
        std::unordered_map<std::uint64_t,
                           std::list<std::uint64_t>::iterator> lru_pos;
        std::uint64_t last_line = 0;
        bool have_last = false;

        /** lru_pos is an iterator cache: rebuilt from lru on load. */
        template <class A>
        void
        ser(A &ar)
        {
            ar.io(table);
            ar.io(lru);
            ar.io(last_line);
            ar.io(have_last);
            if (ar.loading()) {
                lru_pos.clear();
                for (auto it = lru.begin(); it != lru.end(); ++it)
                    lru_pos[*it] = it;
            }
        }
    };

    void touchLru(PerCore &pc, std::uint64_t key);

    std::size_t max_entries_;
    unsigned successors_;
    std::vector<PerCore> cores_;
};

} // namespace emc

#endif // EMC_PREFETCH_MARKOV_HH
