/**
 * @file
 * Prefetcher interface plus the Feedback-Directed Prefetching (FDP)
 * throttle [57] that all configurations in the paper use: dynamic
 * degree 1-32, prefetching into the LLC.
 */

#ifndef EMC_PREFETCH_PREFETCHER_HH
#define EMC_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace emc
{

namespace ckpt
{
class Ar;
} // namespace ckpt

/** A candidate prefetch produced by a prefetching engine. */
struct PrefetchCandidate
{
    Addr line_addr = kNoAddr;  ///< physical line address to fetch
    CoreId core = 0;           ///< core whose stream trained it

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(line_addr);
        ar.io(core);
    }
};

/**
 * Base class for prefetching engines. Engines observe the LLC access
 * stream (the paper's prefetchers train below the core caches and fill
 * into the LLC) and push candidates into an internal queue that the
 * system drains subject to the FDP degree.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe an LLC access.
     * @param core requesting core
     * @param line_addr physical line address
     * @param pc static PC of the triggering load (0 if unknown)
     * @param miss whether the access missed the LLC
     * @param degree current FDP degree (max candidates to emit)
     */
    virtual void observe(CoreId core, Addr line_addr, Addr pc, bool miss,
                         unsigned degree) = 0;

    /** Pop the next candidate. @retval false when the queue is empty. */
    bool
    nextCandidate(PrefetchCandidate &out)
    {
        if (queue_.empty())
            return false;
        out = queue_.front();
        queue_.pop_front();
        return true;
    }

    virtual const char *name() const = 0;

    std::size_t queued() const { return queue_.size(); }

    /**
     * Checkpoint the engine's training state and candidate queue
     * (both directions). Implementations call serQueue() plus their
     * own table serialization.
     */
    virtual void ckptSer(ckpt::Ar &ar) = 0;

  protected:
    /** Emit a candidate (deduplicated against the current queue tail). */
    void
    emit(CoreId core, Addr line_addr)
    {
        if (queue_.size() >= kMaxQueue)
            return;
        queue_.push_back({lineAlign(line_addr), core});
    }

    /** Serialize the shared candidate queue (call from ckptSer). */
    template <class A>
    void
    serQueue(A &ar)
    {
        ar.io(queue_);
    }

  private:
    static constexpr std::size_t kMaxQueue = 256;
    std::deque<PrefetchCandidate> queue_;
};

/**
 * Feedback-Directed Prefetching throttle [57]. Tracks three signals
 * over fixed intervals of issued prefetches and adjusts the degree in
 * [1, 32]:
 *
 *  - accuracy: prefetched lines touched by demand before eviction
 *    (tracked with a prefetched-line set);
 *  - lateness: demand arrived while the prefetch was still in flight
 *    (useful but not timely — argues for *more* aggressiveness);
 *  - pollution: demand misses on lines a prefetch fill evicted
 *    (tracked with a bounded victim set — argues for less).
 */
class FdpThrottle
{
  public:
    FdpThrottle() = default;

    unsigned degree() const { return degree_; }

    /** A prefetch request was issued to memory. */
    void
    issued(Addr line_addr)
    {
        ++interval_issued_;
        ++total_issued_;
        pending_.insert(lineNum(line_addr));
        maybeAdapt();
    }

    /** A demand access touched @p line_addr in the LLC. */
    void
    demandTouch(Addr line_addr)
    {
        auto it = pending_.find(lineNum(line_addr));
        if (it != pending_.end()) {
            pending_.erase(it);
            ++interval_useful_;
            ++total_useful_;
        }
    }

    /** The LLC evicted @p line_addr (unused prefetch dies here). */
    void
    evicted(Addr line_addr)
    {
        pending_.erase(lineNum(line_addr));
    }

    /** True if @p line_addr is an un-touched prefetched line. */
    bool
    isPendingPrefetch(Addr line_addr) const
    {
        return pending_.count(lineNum(line_addr)) != 0;
    }

    /** A demand merged onto a prefetch still in flight (late). */
    void
    lateHit(Addr line_addr)
    {
        ++interval_late_;
        ++total_late_;
        // A late prefetch still becomes useful when its fill lands;
        // no pending_ bookkeeping needed here.
        (void)line_addr;
    }

    /** A prefetch fill evicted @p victim_line from the LLC. */
    void
    prefetchEvictedVictim(Addr victim_line)
    {
        const Addr ln = lineNum(victim_line);
        if (victims_.insert(ln).second) {
            victim_order_.push_back(ln);
            if (victim_order_.size() > kVictimCap) {
                victims_.erase(victim_order_.front());
                victim_order_.pop_front();
            }
        }
    }

    /** A demand miss occurred on @p line_addr. @retval polluted */
    bool
    demandMiss(Addr line_addr)
    {
        const Addr ln = lineNum(line_addr);
        auto it = victims_.find(ln);
        if (it == victims_.end())
            return false;
        victims_.erase(it);
        ++interval_polluted_;
        ++total_polluted_;
        return true;
    }

    std::uint64_t totalIssued() const { return total_issued_; }
    std::uint64_t totalUseful() const { return total_useful_; }
    std::uint64_t totalLate() const { return total_late_; }
    std::uint64_t totalPolluted() const { return total_polluted_; }

    /**
     * Checkpoint the full throttle state. victims_ and victim_order_
     * genuinely diverge (demandMiss erases only the set), so both are
     * serialized verbatim rather than rebuilding one from the other.
     */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(degree_);
        ar.io(interval_issued_);
        ar.io(interval_useful_);
        ar.io(interval_late_);
        ar.io(interval_polluted_);
        ar.io(total_issued_);
        ar.io(total_useful_);
        ar.io(total_late_);
        ar.io(total_polluted_);
        ar.io(pending_);
        ar.io(victims_);
        ar.io(victim_order_);
    }

    double
    accuracy() const
    {
        return total_issued_
                   ? static_cast<double>(total_useful_) / total_issued_
                   : 0.0;
    }

  private:
    void
    maybeAdapt()
    {
        constexpr std::uint64_t kInterval = 512;
        if (interval_issued_ < kInterval)
            return;
        const double acc =
            static_cast<double>(interval_useful_) / interval_issued_;
        const double late =
            static_cast<double>(interval_late_) / interval_issued_;
        const double poll =
            static_cast<double>(interval_polluted_) / interval_issued_;
        // FDP policy: polluting prefetchers throttle down regardless;
        // accurate ones ramp up, faster when also late (the fills are
        // wanted but not arriving soon enough).
        if (poll > 0.25) {
            degree_ = std::max(1u, degree_ / 2);
        } else if (acc > 0.75) {
            degree_ = std::min(32u, late > 0.25 ? degree_ * 4
                                                : degree_ * 2);
        } else if (acc < 0.40) {
            degree_ = std::max(1u, degree_ / 2);
        }
        interval_issued_ = 0;
        interval_useful_ = 0;
        interval_late_ = 0;
        interval_polluted_ = 0;
    }

    static constexpr std::size_t kVictimCap = 4096;

    unsigned degree_ = 4;
    std::uint64_t interval_issued_ = 0;
    std::uint64_t interval_useful_ = 0;
    std::uint64_t interval_late_ = 0;
    std::uint64_t interval_polluted_ = 0;
    std::uint64_t total_issued_ = 0;
    std::uint64_t total_useful_ = 0;
    std::uint64_t total_late_ = 0;
    std::uint64_t total_polluted_ = 0;
    std::unordered_set<Addr> pending_;
    std::unordered_set<Addr> victims_;
    std::deque<Addr> victim_order_;
};

} // namespace emc

#endif // EMC_PREFETCH_PREFETCHER_HH
