#include "prefetch/stride.hh"

#include "ckpt/serial.hh"

namespace emc
{

StridePrefetcher::StridePrefetcher(unsigned num_cores,
                                   unsigned table_entries)
    : entries_(table_entries),
      tables_(num_cores, std::vector<Entry>(table_entries))
{
}

void
StridePrefetcher::observe(CoreId core, Addr line_addr, Addr pc,
                          bool miss, unsigned degree)
{
    if (pc == 0)
        return;  // no static identity to learn from
    Entry &e = tables_[core][index(pc)];
    const std::uint64_t line = lineNum(line_addr);
    const Addr tag = pc;

    if (!e.valid || e.tag != tag) {
        e.valid = true;
        e.tag = tag;
        e.last_line = line;
        e.stride = 0;
        e.state = State::kInitial;
        return;
    }

    const std::int64_t delta = static_cast<std::int64_t>(line)
                               - static_cast<std::int64_t>(e.last_line);
    e.last_line = line;
    if (delta == 0)
        return;  // same line; nothing learned

    switch (e.state) {
      case State::kInitial:
        e.stride = delta;
        e.state = State::kTransient;
        break;
      case State::kTransient:
        if (delta != e.stride) {
            e.stride = delta;
            break;
        }
        e.state = State::kSteady;
        [[fallthrough]];
      case State::kSteady:
        if (delta != e.stride) {
            e.state = State::kTransient;
            e.stride = delta;
            break;
        }
        for (unsigned i = 1; i <= degree; ++i) {
            const std::int64_t target =
                static_cast<std::int64_t>(line)
                + e.stride * static_cast<std::int64_t>(i);
            if (target < 0)
                break;
            emit(core, static_cast<Addr>(target) << kLineShift);
        }
        break;
    }
}

void
StridePrefetcher::ckptSer(ckpt::Ar &ar)
{
    serQueue(ar);
    ar.io(tables_);
}

} // namespace emc
