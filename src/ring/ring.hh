/**
 * @file
 * Bidirectional slotted ring interconnect (Section 4, Table 1).
 *
 * The chip has two rings: an 8-byte control ring and a 64-byte data
 * ring, each bidirectional with 1-cycle links. Every core shares a
 * ring stop with its LLC slice; the memory controller (and the EMC)
 * occupies one additional stop. A message picks the direction with the
 * shorter hop count and rides slots that advance one stop per cycle;
 * injection waits for an empty passing slot, which is where
 * contention shows up.
 */

#ifndef EMC_RING_RING_HH
#define EMC_RING_RING_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "obs/obs.hh"

namespace emc
{

/** Message classes carried by the rings. */
enum class MsgType : std::uint8_t
{
    // control ring (8 B)
    kMemRead,        ///< core -> LLC slice demand read
    kLlcMissToMc,    ///< LLC slice -> MC miss request
    kLsqPopulate,    ///< EMC -> core memory-op notification (Section 4.3)
    kEmcLlcQuery,    ///< EMC -> LLC slice load that predicted hit
    kControlMisc,    ///< grants/acks/invalidate traffic
    // data ring (64 B)
    kFillToSlice,    ///< MC -> LLC slice fill data
    kFillToCore,     ///< LLC slice -> core fill data
    kWriteback,      ///< LLC -> MC dirty eviction / L1 write-through data
    kChainTransfer,  ///< core -> EMC dependence chain + live-ins
    kLiveOut,        ///< EMC -> core live-out registers / store data
    kEmcFillReply,   ///< cross-MC fill data to the issuing EMC (§4.4)
    kDataMisc,
};

/** True for message types that ride the 64-byte data ring. */
constexpr bool
isDataMsg(MsgType t)
{
    switch (t) {
      case MsgType::kFillToSlice:
      case MsgType::kFillToCore:
      case MsgType::kWriteback:
      case MsgType::kChainTransfer:
      case MsgType::kLiveOut:
      case MsgType::kEmcFillReply:
      case MsgType::kDataMisc:
        return true;
      default:
        return false;
    }
}

/** A message in flight on a ring. */
struct RingMsg
{
    MsgType type = MsgType::kControlMisc;
    unsigned src = 0;       ///< source stop
    unsigned dst = 0;       ///< destination stop
    std::uint64_t token = 0;///< owner-defined payload handle
    Cycle injected = kNoCycle;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(type);
        ar.io(src);
        ar.io(dst);
        ar.io(token);
        ar.io(injected);
    }
};

/** Aggregate ring statistics (Section 6.5 reports these). */
struct RingStats
{
    std::uint64_t control_msgs = 0;
    std::uint64_t data_msgs = 0;
    std::uint64_t control_emc_msgs = 0;  ///< EMC-related control traffic
    std::uint64_t data_emc_msgs = 0;     ///< EMC-related data traffic
    double total_latency = 0;            ///< inject -> eject, all msgs
    std::uint64_t delivered = 0;
    std::uint64_t inject_stalls = 0;     ///< cycles a message waited to inject

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(control_msgs);
        ar.io(data_msgs);
        ar.io(control_emc_msgs);
        ar.io(data_emc_msgs);
        ar.io(total_latency);
        ar.io(delivered);
        ar.io(inject_stalls);
    }
};

/**
 * One bidirectional slotted ring. Both directions have #stops slots;
 * slots advance one stop per cycle. tick() moves slots, ejects
 * arrivals (via the delivery callback) and injects queued messages
 * into empty slots.
 */
class Ring
{
  public:
    using Deliver = std::function<void(const RingMsg &)>;

    /**
     * @param stops number of ring stops
     * @param is_data true for the data ring (stats bucketing)
     */
    Ring(unsigned stops, bool is_data);

    /** Queue a message for injection at its source stop. */
    void send(const RingMsg &msg, Cycle now);

    /** Advance one cycle. */
    void tick(Cycle now);

    void setDeliver(Deliver d) { deliver_ = std::move(d); }

    const RingStats &stats() const { return stats_; }
    unsigned stops() const { return stops_; }

    /** Zero the statistics (post-warmup measurement start). */
    void resetStats() { stats_ = RingStats{}; }

    /** Hop distance with the shorter direction. */
    unsigned
    distance(unsigned a, unsigned b) const
    {
        const unsigned fwd = (b + stops_ - a) % stops_;
        const unsigned bwd = (a + stops_ - b) % stops_;
        return std::min(fwd, bwd);
    }

    /** Messages currently in flight or waiting (for tests). */
    std::size_t pending() const;

    /**
     * Lifetime send/deliver counters for conservation checks. Unlike
     * stats(), these survive resetStats() so sent − delivered always
     * equals pending().
     */
    std::uint64_t sentTotal() const { return sent_total_; }
    std::uint64_t deliveredTotal() const { return delivered_total_; }

    /**
     * Attach the lifecycle tracer (null detaches). Observation only;
     * emits a ring_msg instant per EMC-related message delivery.
     */
    void
    setTrace(obs::Tracer *t)
    {
        tracer_ = t;
    }

    /** Checkpoint slot occupancy, inject queues and counters. */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(cw_.slots);
        ar.io(ccw_.slots);
        ar.io(inject_q_);
        ar.io(stats_);
        ar.io(sent_total_);
        ar.io(delivered_total_);
    }

  private:
    /** One rotating slot of a ring direction. */
    struct Slot
    {
        bool busy = false;
        RingMsg msg;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(busy);
            ar.io(msg);
        }
    };

    /** One rotation direction of the ring. */
    struct Direction
    {
        // slots_[i] is the slot currently at stop i.
        std::vector<Slot> slots;
        int step;  ///< +1 or -1 stop per cycle
    };

    void advance(Direction &dir, Cycle now);
    void inject(Cycle now);

    unsigned stops_;  // ckpt-skip: (topology is config)
    bool is_data_;    // ckpt-skip: (topology is config)
    Direction cw_;   ///< clockwise
    Direction ccw_;  ///< counter-clockwise
    std::vector<std::deque<RingMsg>> inject_q_;  ///< per stop
    Deliver deliver_;
    obs::Tracer *tracer_ = nullptr;
    RingStats stats_;
    std::uint64_t sent_total_ = 0;
    std::uint64_t delivered_total_ = 0;
};

} // namespace emc

#endif // EMC_RING_RING_HH
