#include "ring/ring.hh"

namespace emc
{

Ring::Ring(unsigned stops, bool is_data)
    : stops_(stops), is_data_(is_data), inject_q_(stops)
{
    emc_assert(stops >= 2, "ring needs at least two stops");
    cw_.slots.resize(stops);
    cw_.step = 1;
    ccw_.slots.resize(stops);
    ccw_.step = -1;
}

void
Ring::send(const RingMsg &msg, Cycle now)
{
    emc_assert(msg.src < stops_ && msg.dst < stops_, "bad ring stop");
    emc_assert(msg.src != msg.dst,
               "same-stop messages bypass the ring (1-cycle local path)");
    RingMsg m = msg;
    m.injected = now;
    inject_q_[m.src].push_back(m);
    ++sent_total_;
    if (is_data_) {
        ++stats_.data_msgs;
        if (m.type == MsgType::kChainTransfer || m.type == MsgType::kLiveOut)
            ++stats_.data_emc_msgs;
    } else {
        ++stats_.control_msgs;
        if (m.type == MsgType::kLsqPopulate || m.type == MsgType::kEmcLlcQuery)
            ++stats_.control_emc_msgs;
    }
}

std::size_t
Ring::pending() const
{
    std::size_t n = 0;
    for (const auto &q : inject_q_)
        n += q.size();
    for (const auto &s : cw_.slots)
        n += s.busy ? 1 : 0;
    for (const auto &s : ccw_.slots)
        n += s.busy ? 1 : 0;
    return n;
}

void
Ring::advance(Direction &dir, Cycle now)
{
    // Rotate slot contents by one stop, then eject arrivals.
    std::vector<Slot> next(stops_);
    for (unsigned i = 0; i < stops_; ++i) {
        if (!dir.slots[i].busy)
            continue;
        const unsigned ni = (i + stops_ + dir.step) % stops_;
        next[ni] = dir.slots[i];
    }
    dir.slots = std::move(next);
    for (unsigned i = 0; i < stops_; ++i) {
        Slot &s = dir.slots[i];
        if (s.busy && s.msg.dst == i) {
            stats_.total_latency +=
                static_cast<double>(now - s.msg.injected);
            ++stats_.delivered;
            ++delivered_total_;
            switch (s.msg.type) {
              case MsgType::kChainTransfer:
              case MsgType::kLiveOut:
              case MsgType::kEmcFillReply:
              case MsgType::kLsqPopulate:
              case MsgType::kEmcLlcQuery:
                EMC_OBS_POINT(tracer_, obs::TracePoint::kRingMsg, now,
                              s.msg.token, obs::Track::ring(is_data_),
                              s.msg.token);
                break;
              default:
                break;
            }
            if (deliver_)
                deliver_(s.msg);
            s.busy = false;
        }
    }
}

void
Ring::inject(Cycle now)
{
    for (unsigned stop = 0; stop < stops_; ++stop) {
        auto &q = inject_q_[stop];
        while (!q.empty()) {
            RingMsg &m = q.front();
            // Choose the shorter direction; tie goes clockwise.
            const unsigned fwd = (m.dst + stops_ - stop) % stops_;
            const unsigned bwd = (stop + stops_ - m.dst) % stops_;
            Direction &primary = fwd <= bwd ? cw_ : ccw_;
            Direction &secondary = fwd <= bwd ? ccw_ : cw_;
            if (!primary.slots[stop].busy) {
                primary.slots[stop].busy = true;
                primary.slots[stop].msg = m;
                q.pop_front();
            } else if (!secondary.slots[stop].busy && fwd == bwd) {
                secondary.slots[stop].busy = true;
                secondary.slots[stop].msg = m;
                q.pop_front();
            } else {
                ++stats_.inject_stalls;
                break;  // head-of-line blocks this stop this cycle
            }
        }
    }
}

void
Ring::tick(Cycle now)
{
    advance(cw_, now);
    advance(ccw_, now);
    inject(now);
}

} // namespace emc
