/**
 * @file
 * Coordinator/worker implementation for runSharded() (sweep.hh).
 *
 * This file is the one place in the tree allowed to spawn processes
 * (tools/lint_sim.py `process-spawn`): every fork is paired with a
 * waitpid and every pipe end has a single owner, so process plumbing
 * stays auditable in one translation unit.
 */

#include "sweep/sweep.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/stream.hh"

namespace emc::sweep
{

namespace
{

/** JSON-escape @p s onto @p out (quotes, backslashes, control). */
void
writeEscaped(std::FILE *out, const char *s)
{
    for (; *s; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        if (c == '"' || c == '\\')
            std::fprintf(out, "\\%c", c);
        else if (c == '\n')
            std::fputs("\\n", out);
        else if (c < 0x20)
            std::fprintf(out, "\\u%04x", c);
        else
            std::fputc(c, out);
    }
}

/** Write all of @p s to @p fd; EPIPE and friends are the caller's
 *  problem and surface later as EOF on the worker's message pipe. */
void
writeAll(int fd, const char *s, std::size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, s, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        s += w;
        n -= static_cast<std::size_t>(w);
    }
}

/** Extract the u64 following `"key":` in @p line; false if absent. */
bool
findU64(const char *line, const char *key, std::uint64_t &out)
{
    const std::string pat = std::string("\"") + key + "\":";
    const char *p = std::strstr(line, pat.c_str());
    if (!p)
        return false;
    p += pat.size();
    char *end = nullptr;
    out = std::strtoull(p, &end, 10);
    return end != p;
}

/** Unescape the JSON string following `"what":"` in @p line. */
std::string
findWhat(const char *line)
{
    const char *p = std::strstr(line, "\"what\":\"");
    if (!p)
        return "(no failure message)";
    p += 8;
    std::string out;
    for (; *p && *p != '"'; ++p) {
        if (*p == '\\' && p[1] != '\0') {
            ++p;
            out.push_back(*p == 'n' ? '\n' : *p);
        } else {
            out.push_back(*p);
        }
    }
    return out;
}

/** One forked worker as the coordinator sees it. */
struct Worker
{
    pid_t pid = -1;
    int job_w = -1;  ///< coordinator writes job indices here
    int msg_r = -1;  ///< coordinator reads JSONL results here
    std::string buf; ///< partial-line accumulator
    long job = -1;   ///< outstanding job index, -1 when idle
};

void
closeParentEnds(const std::vector<Worker> &workers)
{
    for (const Worker &w : workers) {
        if (w.job_w >= 0)
            ::close(w.job_w);
        if (w.msg_r >= 0)
            ::close(w.msg_r);
    }
}

/** Fork one worker serving @p fn; registers it in @p workers. */
void
spawnWorker(std::vector<Worker> &workers, const JobFn &fn)
{
    int job_pipe[2];
    int msg_pipe[2];
    if (::pipe(job_pipe) != 0)
        throw Error("sweep: pipe() failed: "
                    + std::string(std::strerror(errno)));
    if (::pipe(msg_pipe) != 0) {
        ::close(job_pipe[0]);
        ::close(job_pipe[1]);
        throw Error("sweep: pipe() failed: "
                    + std::string(std::strerror(errno)));
    }

    // Anything buffered in this process would otherwise be flushed
    // once per child too.
    std::fflush(nullptr);

    const pid_t pid = ::fork(); // lint-ok: process-spawn (the sweep coordinator itself)
    if (pid < 0) {
        ::close(job_pipe[0]);
        ::close(job_pipe[1]);
        ::close(msg_pipe[0]);
        ::close(msg_pipe[1]);
        throw Error("sweep: fork() failed: "
                    + std::string(std::strerror(errno)));
    }

    if (pid == 0) {
        // Child: drop every coordinator-side fd — inherited write
        // ends of *other* workers' message pipes would otherwise keep
        // those pipes open past their workers' deaths and defeat EOF
        // detection.
        closeParentEnds(workers);
        ::close(job_pipe[1]);
        ::close(msg_pipe[0]);
        std::signal(SIGPIPE, SIG_IGN);
        runWorkerLoop(job_pipe[0], msg_pipe[1], fn);
        std::fflush(nullptr);
        ::_exit(0);
    }

    ::close(job_pipe[0]);
    ::close(msg_pipe[1]);
    Worker w;
    w.pid = pid;
    w.job_w = job_pipe[1];
    w.msg_r = msg_pipe[0];
    workers.push_back(std::move(w));
}

void
reapWorker(Worker &w)
{
    if (w.job_w >= 0)
        ::close(w.job_w);
    if (w.msg_r >= 0)
        ::close(w.msg_r);
    w.job_w = w.msg_r = -1;
    if (w.pid > 0) {
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        w.pid = -1;
    }
}

/** Abort path: terminate every live worker promptly and reap it. */
void
killAll(std::vector<Worker> &workers)
{
    for (Worker &w : workers) {
        if (w.pid > 0)
            ::kill(w.pid, SIGTERM);
    }
    for (Worker &w : workers)
        reapWorker(w);
}

/** RAII SIGPIPE suppression: a worker dying between our poll() and a
 *  job-dispatch write must not kill the coordinator process. */
class ScopedIgnoreSigpipe
{
  public:
    ScopedIgnoreSigpipe() { prev_ = std::signal(SIGPIPE, SIG_IGN); }
    ~ScopedIgnoreSigpipe() { std::signal(SIGPIPE, prev_); }

  private:
    void (*prev_)(int);
};

} // namespace

bool
parseStatsObject(const char *s, StatDump &out)
{
    while (*s && *s != '{')
        ++s;
    if (*s != '{')
        return false;
    ++s;
    if (*s == '}')
        return true;
    while (true) {
        if (*s != '"')
            return false;
        ++s;
        const char *e = std::strchr(s, '"');
        if (!e)
            return false;
        const std::string name(s, e);
        s = e + 1;
        if (*s != ':')
            return false;
        ++s;
        char *end = nullptr;
        const double v = std::strtod(s, &end);
        if (end == s)
            return false;
        out.put(name, v);
        s = end;
        if (*s == ',') {
            ++s;
            continue;
        }
        return *s == '}';
    }
}

std::size_t
runWorkerLoop(int job_fd, int msg_fd, const JobFn &fn)
{
    std::FILE *in = ::fdopen(job_fd, "r");
    std::FILE *msg = ::fdopen(msg_fd, "w");
    if (!in || !msg) {
        if (in)
            std::fclose(in);
        if (msg)
            std::fclose(msg);
        return 0;
    }

    std::size_t served = 0;
    char line[64];
    while (std::fgets(line, sizeof line, in)) {
        if (line[0] == 'q')
            break;
        char *end = nullptr;
        const unsigned long long j = std::strtoull(line, &end, 10);
        if (end == line)
            break;
        try {
            StatDump d = fn(static_cast<std::size_t>(j), msg);
            std::fprintf(msg, "{\"type\":\"done\",\"job\":%llu,"
                              "\"stats\":",
                         j);
            obs::writeStatsObject(msg, d, 17);
            std::fputs("}\n", msg);
        } catch (const std::exception &e) {
            std::fprintf(msg,
                         "{\"type\":\"fail\",\"job\":%llu,\"what\":\"",
                         j);
            writeEscaped(msg, e.what());
            std::fputs("\"}\n", msg);
        }
        std::fflush(msg);
        ++served;
    }
    std::fclose(in);
    std::fclose(msg);
    return served;
}

ShardReport
runShardedReport(std::size_t num_jobs, unsigned procs, const JobFn &fn,
                 const ShardOptions &opt)
{
    ShardReport rep;
    rep.results.resize(num_jobs);
    if (num_jobs == 0)
        return rep;

    const unsigned nproc = std::max<unsigned>(
        1, std::min<std::size_t>(procs == 0 ? 1 : procs, num_jobs));
    const unsigned max_attempts = std::max(1u, opt.max_attempts);

    ScopedIgnoreSigpipe no_sigpipe;

    std::deque<std::size_t> queue;
    for (std::size_t j = 0; j < num_jobs; ++j)
        queue.push_back(j);
    std::vector<unsigned> attempts(num_jobs, 0);
    std::vector<bool> done(num_jobs, false);
    std::size_t completed = 0;

    std::vector<Worker> workers;
    workers.reserve(nproc);

    const auto dispatch = [&](Worker &w) {
        if (queue.empty()) {
            writeAll(w.job_w, "q\n", 2);
            return;
        }
        const std::size_t j = queue.front();
        queue.pop_front();
        ++attempts[j];
        w.job = static_cast<long>(j);
        char buf[32];
        const int n =
            std::snprintf(buf, sizeof buf, "%zu\n", j);
        writeAll(w.job_w, buf, static_cast<std::size_t>(n));
    };

    try {
        for (unsigned i = 0; i < nproc; ++i) {
            spawnWorker(workers, fn);
            ++rep.workers_spawned;
            dispatch(workers.back());
        }

        const auto handleLine = [&](Worker &w, const char *line) {
            if (std::strstr(line, "\"type\":\"interval\"")) {
                ++rep.interval_lines;
                if (opt.forward_intervals) {
                    std::fputs(line, opt.forward_intervals);
                    std::fputc('\n', opt.forward_intervals);
                }
                return;
            }
            std::uint64_t j = 0;
            if (std::strstr(line, "\"type\":\"fail\"")) {
                findU64(line, "job", j);
                if (opt.abort_on_fail) {
                    throw Error("sweep job " + std::to_string(j)
                                + " failed: " + findWhat(line));
                }
                if (j < num_jobs && !done[j]) {
                    rep.failures.push_back({static_cast<std::size_t>(j),
                                            findWhat(line)});
                    done[j] = true;
                    ++completed;
                }
                w.job = -1;
                dispatch(w);
                return;
            }
            if (!std::strstr(line, "\"type\":\"done\""))
                throw Error(std::string("sweep: malformed worker "
                                        "message: ")
                            + line);
            if (!findU64(line, "job", j) || j >= num_jobs)
                throw Error("sweep: done message with bad job index");
            StatDump d;
            const char *stats = std::strstr(line, "\"stats\":");
            if (!stats || !parseStatsObject(stats + 8, d))
                throw Error("sweep: unparseable stats for job "
                            + std::to_string(j));
            if (!done[j]) {
                // A job can complete twice when its first worker died
                // after finishing the work but before the coordinator
                // read the result; runs are deterministic per index,
                // so first result wins and the duplicate is dropped.
                done[j] = true;
                rep.results[j] = std::move(d);
                ++completed;
            }
            w.job = -1;
            dispatch(w);
        };

        while (completed < num_jobs) {
            std::vector<struct pollfd> fds;
            std::vector<std::size_t> fd_worker;
            for (std::size_t i = 0; i < workers.size(); ++i) {
                if (workers[i].msg_r < 0)
                    continue;
                fds.push_back({workers[i].msg_r, POLLIN, 0});
                fd_worker.push_back(i);
            }
            if (fds.empty())
                throw Error("sweep: all workers exited with "
                            + std::to_string(num_jobs - completed)
                            + " jobs unfinished");

            int pr = ::poll(fds.data(),
                            static_cast<nfds_t>(fds.size()), -1);
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                throw Error("sweep: poll() failed: "
                            + std::string(std::strerror(errno)));
            }

            for (std::size_t k = 0; k < fds.size(); ++k) {
                if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                Worker &w = workers[fd_worker[k]];
                char chunk[4096];
                const ssize_t n =
                    ::read(w.msg_r, chunk, sizeof chunk);
                if (n > 0) {
                    w.buf.append(chunk,
                                 static_cast<std::size_t>(n));
                    std::size_t nl;
                    while ((nl = w.buf.find('\n'))
                           != std::string::npos) {
                        const std::string line =
                            w.buf.substr(0, nl);
                        w.buf.erase(0, nl + 1);
                        handleLine(w, line.c_str());
                    }
                    continue;
                }
                if (n < 0 && (errno == EINTR || errno == EAGAIN))
                    continue;

                // EOF (or read error): the worker is gone. A clean
                // quit leaves no outstanding job; a death mid-job
                // re-queues the job and replaces the worker.
                const long orphan = w.job;
                reapWorker(w);
                if (orphan < 0)
                    continue;
                ++rep.worker_deaths;
                const auto j = static_cast<std::size_t>(orphan);
                if (attempts[j] >= max_attempts) {
                    throw Error(
                        "sweep job " + std::to_string(j)
                        + " lost its worker "
                        + std::to_string(attempts[j])
                        + " times; giving up");
                }
                queue.push_front(j);
                ++rep.jobs_requeued;
                spawnWorker(workers, fn);
                ++rep.workers_spawned;
                dispatch(workers.back());
            }
        }

        for (Worker &w : workers) {
            if (w.job_w >= 0)
                writeAll(w.job_w, "q\n", 2);
        }
        for (Worker &w : workers)
            reapWorker(w);
        std::sort(rep.failures.begin(), rep.failures.end(),
                  [](const JobFailure &a, const JobFailure &b) {
                      return a.job < b.job;
                  });
    } catch (...) {
        killAll(workers);
        throw;
    }

    return rep;
}

std::vector<StatDump>
runSharded(std::size_t num_jobs, unsigned procs, const JobFn &fn,
           const ShardOptions &opt)
{
    return runShardedReport(num_jobs, procs, fn, opt).results;
}

} // namespace emc::sweep
