/**
 * @file
 * Multi-process sharded sweep coordinator (DESIGN.md §9).
 *
 * runSharded() fans a set of index-identified jobs out over forked
 * worker processes. Workers are forked, not exec'd: every job closure
 * (configs, workloads, a shared warm checkpoint image) stays in
 * memory and is copy-on-write shared with each worker, so a sweep
 * that warms once pays the warmup RSS once no matter how many
 * processes run it.
 *
 * Protocol (one coordinator, N workers, two pipes per worker):
 *  - coordinator -> worker: one ASCII job index per line; the single
 *    letter "q" asks the worker to exit cleanly.
 *  - worker -> coordinator: JSONL, one self-contained object per
 *    line, distinguished by "type":
 *      {"type":"done","job":J,"stats":{...}}   final stats, %.17g
 *                                              (bit-exact doubles)
 *      {"type":"fail","job":J,"what":"..."}    job threw; message is
 *                                              JSON-escaped
 *      {"type":"interval","job":J,"cycle":C,"stats":{...}}
 *                                              optional mid-run
 *                                              snapshots at %.9g,
 *                                              written by an
 *                                              obs::StatStreamer
 *                                              riding the same pipe
 *
 * Scheduling is dynamic self-scheduling: each idle worker receives
 * the next unclaimed job, so long jobs do not convoy short ones.
 * Results are collected by job index, which makes the output
 * byte-identical to a single-process run at any worker count — order
 * of completion never leaks into order of results.
 *
 * Fault handling: a worker that dies mid-job (EOF on its message
 * pipe) is reaped and respawned, and the orphaned job is re-queued,
 * up to `max_attempts` tries per job. Jobs must therefore be
 * idempotent-or-resumable; the bench runner's EMC_CKPT_DIR sidecar
 * protocol provides exactly that. A job that *reports* failure (threw
 * an exception) aborts the sweep, matching the in-process thread-pool
 * semantics.
 */

#ifndef EMC_SWEEP_SWEEP_HH
#define EMC_SWEEP_SWEEP_HH

#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace emc::sweep
{

/** Coordinator/worker protocol or process-management failure. */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * One job: run shard @p job and return its final stats. @p msg is the
 * worker's message pipe — a job may attach interval streaming to it
 * (System::enableStatStream with an `"type":"interval","job":J,`
 * prefix) but must not write non-JSONL bytes to it.
 */
using JobFn = std::function<StatDump(std::size_t job, std::FILE *msg)>;

struct ShardOptions
{
    /** Max tries per job before the sweep fails (>= 1). */
    unsigned max_attempts = 3;

    /**
     * When set, every "interval" line workers emit is forwarded here
     * verbatim (the coordinator's merged JSONL stream). "done"/"fail"
     * lines are consumed by the coordinator, not forwarded.
     */
    std::FILE *forward_intervals = nullptr;

    /**
     * true (default): the first "fail" message aborts the sweep with
     * a sweep::Error, matching runMany()'s throwing overload. false:
     * failures are collected in ShardReport::failures, the failed
     * job's result slot stays default-constructed, and the sweep runs
     * on — the failure-collecting runMany() semantics.
     */
    bool abort_on_fail = true;
};

/** One job that reported an exception (abort_on_fail == false). */
struct JobFailure
{
    std::size_t job;
    std::string what;
};

/** What a sharded run did, beyond its results. */
struct ShardReport
{
    std::vector<StatDump> results;   ///< indexed by job
    std::vector<JobFailure> failures;///< job-index-sorted reported fails
    unsigned workers_spawned = 0;    ///< initial + respawned
    unsigned worker_deaths = 0;      ///< EOFs with a job outstanding
    unsigned jobs_requeued = 0;      ///< jobs rescheduled after death
    std::uint64_t interval_lines = 0;///< interval lines seen
};

/**
 * Run jobs [0, num_jobs) across @p procs forked workers (clamped to
 * [1, num_jobs]) and return per-job results plus fault accounting.
 * Throws sweep::Error when a job fails (after retries for worker
 * deaths, immediately for reported exceptions). Must be called from a
 * process with no live sim threads (bench thread pools are per-call,
 * so any bench call site qualifies).
 */
ShardReport runShardedReport(std::size_t num_jobs, unsigned procs,
                             const JobFn &fn,
                             const ShardOptions &opt = {});

/** runShardedReport() reduced to its results. */
std::vector<StatDump> runSharded(std::size_t num_jobs, unsigned procs,
                                 const JobFn &fn,
                                 const ShardOptions &opt = {});

/**
 * Worker side of the protocol: serve job indices from @p job_fd,
 * writing results to @p msg_fd, until "q" or EOF. Exposed for the
 * coordinator's forked children and for tests; normal callers use
 * runSharded(). Returns the number of jobs served.
 */
std::size_t runWorkerLoop(int job_fd, int msg_fd, const JobFn &fn);

/**
 * Parse the flat {"name":value,...} object at @p s into @p out.
 * Returns false on malformed input. Exposed for tests and for
 * emcsweep's JSONL consumers.
 */
bool parseStatsObject(const char *s, StatDump &out);

} // namespace emc::sweep

#endif // EMC_SWEEP_SWEEP_HH
