/**
 * @file
 * Fast-forward functional warming and SMARTS-style interval sampling
 * (DESIGN.md §8).
 *
 * Everything in this file runs *outside* simulated time: no event is
 * scheduled, no cycle passes and no statistic is touched (the
 * fastwarm-timing lint rule enforces this). The only state that
 * advances is the warmable set — architectural registers, branch
 * predictors, TLB residency, L1/LLC tags+metadata and the EMC miss
 * predictors — via the warm*() hooks on Core, Cache, Tlb and Emc.
 *
 * runSampled() is the exception that proves the rule: it alternates
 * fast-forwarded gaps with ordinary detailed windows (tickOnce), and
 * all timing/stat mutation happens inside those windows through the
 * same code paths run() uses.
 */

#include "sim/system.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/log.hh"

namespace emc
{

// --------------------------------------------------------------------
// Fast-forward
// --------------------------------------------------------------------

/**
 * WarmPort adapter: a core's functional L1-miss/store stream lands at
 * the owning LLC slice, exactly where requestLine()/storeThrough()
 * would deliver it in detailed simulation.
 */
class LlcWarmPort : public WarmPort
{
  public:
    explicit LlcWarmPort(System &sys) : sys_(sys) {}

    void
    warmLine(CoreId core, Addr paddr_line, Addr pc,
             bool is_store) override
    {
        sys_.warmLineAtLlc(core, paddr_line, pc, is_store);
    }

  private:
    System &sys_;
};

void
System::warmLineAtLlc(CoreId core, Addr paddr_line, Addr pc,
                      bool is_store)
{
    // Mirrors handleSliceLookup / handleSliceStore / insertIntoLlc /
    // handleFillAtSlice with every timing, stat, traffic, FDP and
    // trace side effect removed. Prefetchers are deliberately not
    // trained here — they are timing-coupled (degree throttling reacts
    // to lateness/pollution that only exists in simulated time), so
    // they warm during detailed windows only.
    const unsigned slice = sliceOf(paddr_line);
    CacheLineMeta *meta = slices_[slice]->warmAccess(paddr_line);
    const bool hit = meta != nullptr;

    // The EMC hit/miss predictor trains on non-store demand lookups
    // (observeAtLlc); keep its training stream identical. The warm
    // variant applies the same table/history mutations stat-free.
    if (!is_store && !emcs_.empty()) {
        for (auto &e : emcs_)
            e->warmMissPredUpdate(core, pc, paddr_line, !hit);
    }

    if (hit) {
        if (is_store)
            meta->dirty = true;          // write-through store hit
        else
            meta->presence |= (1u << core);  // fill reaches the L1
        return;
    }

    // Miss: in detailed simulation the line is fetched from DRAM and
    // installed (fetch-on-write for stores); presence is set when the
    // fill passes the slice on its way to a loading core.
    CacheLineMeta nm;
    nm.dirty = is_store;
    if (!is_store)
        nm.presence = 1u << core;
    const Cache::Victim victim =
        slices_[slice]->warmInsert(paddr_line, nm);
    if (victim.valid) {
        // Inclusive hierarchy: back-invalidate L1 (and EMC dcache)
        // copies, as insertIntoLlc does. The victim's writeback has no
        // destination here — there is no DRAM in the fast path — and
        // functional memory already holds every committed value.
        if (victim.meta.emc && !emcs_.empty()) {
            for (auto &e : emcs_)
                e->warmInvalidateLine(victim.addr);
        }
        for (unsigned c = 0; c < cfg_.num_cores; ++c) {
            if (victim.meta.presence & (1u << c))
                cores_[c]->warmInvalidateL1(victim.addr);
        }
    }
}

std::uint64_t
System::fastForward(std::uint64_t uops_per_core)
{
    return fastForward(
        std::vector<std::uint64_t>(cfg_.num_cores, uops_per_core));
}

std::uint64_t
System::fastForward(const std::vector<std::uint64_t> &uops_per_core)
{
    emc_assert(uops_per_core.size() == cfg_.num_cores,
               "fastForward needs one uop count per core");
    LlcWarmPort port(*this);
    std::vector<std::uint64_t> left = uops_per_core;
    std::uint64_t consumed = 0;
    // Round-robin one uop per core so cores interleave at the shared
    // LLC roughly as they would in detailed simulation (LRU and victim
    // choice are interleaving-sensitive).
    bool any = true;
    while (any) {
        any = false;
        for (unsigned i = 0; i < cfg_.num_cores; ++i) {
            if (left[i] == 0)
                continue;
            if (cores_[i]->warmStep(port)) {
                --left[i];
                ++consumed;
                any = true;
            } else {
                left[i] = 0;
            }
        }
    }
    return consumed;
}

std::vector<std::uint8_t>
System::fastwarmCheckpointBytes()
{
    ckptRefuseIfObserved("fastwarm checkpoint");
    if (cfg_.warmup_uops == 0) {
        throw ckpt::Error(
            "fastwarm checkpoint needs cfg.warmup_uops > 0");
    }
    if (warmed_up_ || now_ != 0) {
        throw ckpt::Error("fastwarm checkpoint must be taken on a "
                          "fresh System");
    }
    fastForward(cfg_.warmup_uops);
    // Nothing is in flight — no drain needed; the image is assembled
    // exactly as a detailed warmup checkpoint would be and restores
    // through the same path.
    return warmupImageBytes();
}

// --------------------------------------------------------------------
// SMARTS-style sampled simulation
// --------------------------------------------------------------------

SampledStats
System::runSampled(const SampleParams &p)
{
    emc_assert(p.detail > 0 && p.detail <= p.period,
               "sample detail must be in (0, period]");
    sampled_ = SampledStats{};

    if (!warmed_up_) {
        if (cfg_.warmup_uops > 0)
            fastForward(cfg_.warmup_uops);
        resetMeasurement();
        warmed_up_ = true;
    }

    const Histogram &dep = phases_.hist(obs::PhaseClass::kCoreDep,
                                        obs::PhaseIndex::kPhaseTotal);

    std::uint64_t covered = 0;  // uops per core handled so far
    while (covered < cfg_.target_uops && now_ < cfg_.max_cycles) {
        const std::uint64_t detail =
            std::min<std::uint64_t>(p.detail, cfg_.target_uops - covered);

        // Detailed window: simulate until every core retires `detail`
        // more uops. IPC is measured over the pre-drain span so the
        // fetch-gated drain tail doesn't deflate it; the
        // dependent-miss latency delta is read after the drain so
        // misses in flight at the window edge land in this window.
        std::vector<std::uint64_t> goal(cfg_.num_cores);
        std::uint64_t start_retired = 0;
        for (unsigned i = 0; i < cfg_.num_cores; ++i) {
            goal[i] = cores_[i]->retired() + detail;
            start_retired += cores_[i]->retired();
        }
        auto window_done = [&] {
            for (unsigned i = 0; i < cfg_.num_cores; ++i) {
                if (cores_[i]->retired() < goal[i])
                    return false;
            }
            return true;
        };
        const double dep_sum0 = dep.mean() * dep.samples();
        const std::uint64_t dep_n0 = dep.samples();
        const Cycle win_start = now_;

        for (auto &c : cores_)
            c->pauseFetch(false);
        while (!window_done() && now_ < cfg_.max_cycles) {
            maybeSkipIdle();
            tickOnce();
        }

        const Cycle win_cycles = now_ - win_start;
        std::uint64_t end_retired = 0;
        for (unsigned i = 0; i < cfg_.num_cores; ++i)
            end_retired += cores_[i]->retired();
        if (win_cycles > 0) {
            sampled_.window_ipc.push_back(
                static_cast<double>(end_retired - start_retired)
                / static_cast<double>(win_cycles));
        }

        drainInFlight();  // leaves fetch gated for the fast-forward

        const std::uint64_t dep_n1 = dep.samples();
        if (dep_n1 > dep_n0) {
            sampled_.window_dep_lat.push_back(
                (dep.mean() * dep_n1 - dep_sum0)
                / static_cast<double>(dep_n1 - dep_n0));
        }
        ++sampled_.windows;
        covered += detail;

        // Fast-forward across the rest of the sampling period.
        if (covered >= cfg_.target_uops)
            break;
        const std::uint64_t gap = std::min<std::uint64_t>(
            p.period - detail, cfg_.target_uops - covered);
        if (gap > 0) {
            fastForward(gap);
            covered += gap;
        }
    }

    for (auto &c : cores_)
        c->pauseFetch(false);
    // Freeze per-core finish snapshots so dump() reports the detailed
    // windows' aggregate (retired() only advances in detailed time).
    for (unsigned i = 0; i < cfg_.num_cores; ++i) {
        if (!snapshotted_[i]) {
            snapshotted_[i] = true;
            finish_cycle_[i] = now_;
            finish_snapshot_[i] = cores_[i]->stats();
        }
    }

    sampled_.ipc_mean = sampleMean(sampled_.window_ipc);
    sampled_.ipc_ci95 = ciHalfWidth95(sampled_.window_ipc);
    sampled_.dep_lat_mean = sampleMean(sampled_.window_dep_lat);
    sampled_.dep_lat_ci95 = ciHalfWidth95(sampled_.window_dep_lat);

    if (check_)
        finalizeChecks();
    return sampled_;
}

// --------------------------------------------------------------------
// Validation-mode comparison
// --------------------------------------------------------------------

namespace
{

/// (core, virtual line/page address) — the space where program-order
/// and execute-order runs agree (physical frames are first-touch
/// ordered and so differ between the two).
using CoreLine = std::pair<unsigned, Addr>;

/** Global pframe -> vpage reverse map (frames are core-disjoint). */
std::unordered_map<Addr, Addr>
frameToVpage(const System &s)
{
    std::unordered_map<Addr, Addr> rev;
    for (unsigned i = 0; i < s.config().num_cores; ++i) {
        s.pageTable(i).forEachMapping(
            [&](Addr vpage, Addr pframe) { rev.emplace(pframe, vpage); });
    }
    return rev;
}

/** Translate a physical line address back to (owning core, vline). */
bool
virtLineOf(const std::unordered_map<Addr, Addr> &rev, Addr paddr_line,
           CoreLine *out)
{
    const Addr pframe = pageNum(paddr_line);
    const auto it = rev.find(pframe);
    if (it == rev.end())
        return false;
    // allocFrame() embeds the owning core in frame bits [28, ...).
    out->first = static_cast<unsigned>(pframe >> 28);
    out->second =
        (it->second << kPageShift) | (paddr_line & (kPageBytes - 1));
    return true;
}

std::set<CoreLine>
tlbSet(const System &s)
{
    std::set<CoreLine> out;
    for (unsigned i = 0; i < s.config().num_cores; ++i) {
        for (Addr vp : s.core(i).tlb().residentPages())
            out.emplace(i, vp);
    }
    return out;
}

std::set<CoreLine>
l1Set(const System &s, const std::unordered_map<Addr, Addr> &rev)
{
    std::set<CoreLine> out;
    for (unsigned i = 0; i < s.config().num_cores; ++i) {
        s.core(i).l1d().forEachValidLine(
            [&](Addr line, const CacheLineMeta &) {
                CoreLine cl;
                if (virtLineOf(rev, line, &cl))
                    out.insert({i, cl.second});
            });
    }
    return out;
}

std::set<CoreLine>
llcSet(const System &s, const std::unordered_map<Addr, Addr> &rev)
{
    std::set<CoreLine> out;
    for (unsigned i = 0; i < s.config().num_cores; ++i) {
        s.llcSlice(i).forEachValidLine(
            [&](Addr line, const CacheLineMeta &) {
                CoreLine cl;
                if (virtLineOf(rev, line, &cl))
                    out.insert(cl);
            });
    }
    return out;
}

double
jaccard(const std::set<CoreLine> &a, const std::set<CoreLine> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    std::size_t inter = 0;
    for (const auto &x : a)
        inter += b.count(x);
    return static_cast<double>(inter)
           / static_cast<double>(a.size() + b.size() - inter);
}

std::vector<std::uint8_t>
bpBytes(const HybridBranchPredictor &bp)
{
    // Compare the *warmable* predictor image — tables, chooser and
    // history. The stats counters are masked: detailed warming counts
    // lookups while functional warming must not touch statistics
    // (DESIGN.md §8), and the counters are measurement artifacts, not
    // predictor state.
    HybridBranchPredictor copy = bp;
    copy.resetStats();
    ckpt::Ar ar = ckpt::Ar::saver();
    ar.io(copy);
    return ar.takeBytes();
}

} // namespace

WarmStateDiff
compareWarmState(const System &a, const System &b)
{
    emc_assert(a.config().num_cores == b.config().num_cores,
               "compareWarmState needs equal core counts");
    WarmStateDiff d;

    d.bp_equal = true;
    for (unsigned i = 0; i < a.config().num_cores; ++i) {
        if (bpBytes(a.core(i).branchPredictor())
            != bpBytes(b.core(i).branchPredictor())) {
            d.bp_equal = false;
            break;
        }
    }

    const auto rev_a = frameToVpage(a);
    const auto rev_b = frameToVpage(b);

    d.tlb_jaccard = jaccard(tlbSet(a), tlbSet(b));

    const auto l1a = l1Set(a, rev_a);
    const auto l1b = l1Set(b, rev_b);
    d.l1_jaccard = jaccard(l1a, l1b);
    d.l1_lines_a = l1a.size();
    d.l1_lines_b = l1b.size();

    const auto llca = llcSet(a, rev_a);
    const auto llcb = llcSet(b, rev_b);
    d.llc_jaccard = jaccard(llca, llcb);
    d.llc_lines_a = llca.size();
    d.llc_lines_b = llcb.size();

    return d;
}

// --------------------------------------------------------------------
// Small statistics helpers
// --------------------------------------------------------------------

double
sampleMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
ciHalfWidth95(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0;
    const double m = sampleMean(xs);
    double ss = 0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    const double sd = std::sqrt(ss / static_cast<double>(n - 1));
    return 1.96 * sd / std::sqrt(static_cast<double>(n));
}

} // namespace emc
