/**
 * @file
 * Calendar (timing-wheel) event queue for the System's cycle-driven
 * event loop. Replaces the former std::multimap<Cycle, Event>: events
 * within a fixed near-future horizon land in per-cycle buckets (O(1)
 * push/pop, no node allocation); events beyond the horizon fall back
 * to a binary heap and are drained as the wheel reaches them.
 *
 * Ordering contract (identical to the multimap): events pop in
 * ascending cycle order, FIFO among events scheduled for the same
 * cycle. FIFO across the bucket/heap split holds because an event for
 * cycle C can only be heap-resident if it was pushed before the wheel
 * window reached C — i.e. before every bucket-resident event for C —
 * and the heap breaks cycle ties by a global push sequence number.
 *
 * Pushing for a cycle at or before the current extraction cycle clamps
 * to the extraction cycle: the wheel never travels backwards. (The
 * System additionally clamps schedules to now+1; see
 * System::schedule.)
 */

#ifndef EMC_SIM_EVENT_QUEUE_HH
#define EMC_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace emc
{

template <typename T>
class CalendarQueue
{
  public:
    /** @param bucket_bits log2 of the wheel size (horizon in cycles) */
    explicit CalendarQueue(unsigned bucket_bits = 10)
        : mask_((std::size_t{1} << bucket_bits) - 1),
          buckets_(std::size_t{1} << bucket_bits)
    {}

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Schedule @p payload for cycle @p when (clamped to >= cursor). */
    void
    push(Cycle when, const T &payload)
    {
        if (when < cur_)
            when = cur_;
        ++size_;
        if (when - cur_ > mask_) {
            heap_.push_back({when, next_seq_++, payload});
            std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
            return;
        }
        Bucket &b = buckets_[when & mask_];
        if (b.cycle != when) {
            // Stale content from a prior lap was fully consumed when
            // the cursor passed it; reuse the storage.
            b.items.clear();
            b.pos = 0;
            b.cycle = when;
        }
        b.items.push_back(payload);
    }

    /**
     * Pop the oldest event with cycle <= @p now into @p out.
     * @retval false nothing is due at or before @p now
     */
    bool
    popUpTo(Cycle now, T &out)
    {
        while (cur_ <= now) {
            // Heap events for the current cycle predate every bucket
            // event for it (see header comment): drain them first.
            if (!heap_.empty() && heap_.front().cycle <= cur_) {
                std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
                out = std::move(heap_.back().payload);
                heap_.pop_back();
                --size_;
                return true;
            }
            Bucket &b = buckets_[cur_ & mask_];
            if (b.cycle == cur_ && b.pos < b.items.size()) {
                out = b.items[b.pos++];
                --size_;
                return true;
            }
            if (b.cycle == cur_) {
                b.items.clear();
                b.pos = 0;
                b.cycle = kNoCycle;
            }
            ++cur_;
        }
        return false;
    }

    /**
     * Earliest scheduled cycle (kNoCycle when empty). Used by the
     * idle-cycle skip to bound how far the clock may jump.
     */
    Cycle
    nextCycle() const
    {
        if (size_ == 0)
            return kNoCycle;
        Cycle best = heap_.empty() ? kNoCycle : heap_.front().cycle;
        // The wheel holds size_ - heap_.size() events somewhere in
        // [cur_, cur_ + mask_]; scan forward until one is found.
        if (size_ > heap_.size()) {
            for (Cycle c = cur_;; ++c) {
                const Bucket &b = buckets_[c & mask_];
                if (b.cycle == c && b.pos < b.items.size()) {
                    best = std::min(best, c);
                    break;
                }
            }
        }
        return best;
    }

    /** Current extraction cycle (tests). */
    Cycle cursor() const { return cur_; }

    /**
     * Checkpoint all pending events in pop order. @p fn is called as
     * fn(ar, cycle, event) and serializes the payload. Draining a copy
     * preserves the exact (cycle, FIFO) pop order, which ckptLoad then
     * reproduces by pushing in sequence.
     */
    template <class A, class Fn>
    void
    ckptSave(A &ar, Fn fn) const
    {
        CalendarQueue copy = *this;
        std::uint64_t n = size_;
        ar.io(n);
        std::uint64_t cur = cur_;
        ar.io(cur);
        while (!copy.empty()) {
            Cycle c = copy.nextCycle();
            T ev{};
            const bool ok = copy.popUpTo(c, ev);
            emc_assert(ok, "CalendarQueue ckptSave drain");
            ar.io(c);
            fn(ar, c, ev);
        }
    }

    /** Inverse of ckptSave: rebuilds the queue from scratch. */
    template <class A, class Fn>
    void
    ckptLoad(A &ar, Fn fn)
    {
        for (Bucket &b : buckets_) {
            b.cycle = kNoCycle;
            b.pos = 0;
            b.items.clear();
        }
        heap_.clear();
        size_ = 0;
        next_seq_ = 0;
        std::uint64_t n = 0;
        ar.io(n);
        std::uint64_t cur = 0;
        ar.io(cur);
        cur_ = cur;
        for (std::uint64_t i = 0; i < n; ++i) {
            Cycle c = kNoCycle;
            ar.io(c);
            T ev{};
            fn(ar, c, ev);
            push(c, ev);
        }
    }

  private:
    struct Bucket
    {
        Cycle cycle = kNoCycle;   ///< cycle the content belongs to
        std::size_t pos = 0;      ///< next unconsumed item
        std::vector<T> items;
    };

    struct HeapEntry
    {
        Cycle cycle;
        std::uint64_t seq;
        T payload;
    };

    /** Min-heap comparator: later (cycle, seq) sorts lower. */
    struct HeapLater
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            return a.seq > b.seq;
        }
    };

    std::size_t mask_;
    std::vector<Bucket> buckets_;
    std::vector<HeapEntry> heap_;
    Cycle cur_ = 0;
    std::uint64_t next_seq_ = 0;
    std::size_t size_ = 0;
};

} // namespace emc

#endif // EMC_SIM_EVENT_QUEUE_HH
