#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"
#include "prefetch/ghb.hh"
#include "prefetch/markov.hh"
#include "emc/chain_codec.hh"
#include "pred/pickle.hh"
#include "prefetch/stream.hh"
#include "prefetch/stride.hh"
#include "trace/record.hh"

namespace emc
{

const char *
prefetchConfigName(PrefetchConfig p)
{
    switch (p) {
      case PrefetchConfig::kNone: return "none";
      case PrefetchConfig::kGhb: return "ghb";
      case PrefetchConfig::kStream: return "stream";
      case PrefetchConfig::kMarkovStream: return "markov+stream";
      case PrefetchConfig::kStride: return "stride";
      case PrefetchConfig::kPickle: return "pickle";
    }
    return "?";
}

void
SystemConfig::scaleToEightCores(bool dual_mc)
{
    num_cores = 8;
    num_mcs = dual_mc ? 2 : 1;
    dram.channels = 4;
    mc_queue_entries = 256;
    // Table 1: 8-core EMC has 4 contexts total (2 per EMC when dual).
    emc.contexts = dual_mc ? 2 : 4;
}

std::uint64_t
targetUopsFromEnv(std::uint64_t dflt)
{
    const char *env = std::getenv("EMC_SIM_UOPS");
    if (!env)
        return dflt;
    const long long v = std::atoll(env);
    return v > 0 ? static_cast<std::uint64_t>(v) : dflt;
}

/** Per-EMC port adapter: tags calls with the owning MC's index. */
struct EmcPortAdapter : EmcPort
{
    System *sys;
    unsigned mc;

    EmcPortAdapter(System *s, unsigned m) : sys(s), mc(m) {}

    bool
    emcDirectDram(CoreId core, Addr paddr_line,
                  std::uint64_t token) override
    {
        return sys->emcDirectDram(mc, core, paddr_line, token);
    }

    bool
    emcLlcQuery(CoreId core, Addr paddr_line, std::uint64_t token,
                Addr pc) override
    {
        return sys->emcLlcQuery(mc, core, paddr_line, token, pc);
    }

    void
    emcLsqPopulate(CoreId core, std::uint64_t rob_seq, Addr paddr,
                   std::uint64_t chain_id) override
    {
        sys->emcLsqPopulate(mc, core, rob_seq, paddr, chain_id);
    }

    void
    emcChainResult(const ChainResult &result, unsigned bytes) override
    {
        sys->emcChainResult(mc, result, bytes);
    }

    Cycle now() const override { return sys->now(); }
};

System::System(const SystemConfig &cfg,
               const std::vector<std::string> &benchmarks)
    : cfg_(cfg),
      control_ring_(cfg.num_cores + cfg.num_mcs, false),
      data_ring_(cfg.num_cores + cfg.num_mcs, true),
      benchmark_names_(benchmarks)
{
    emc_assert(benchmarks.size() == cfg.num_cores,
               "need one benchmark per core");
    emc_assert(cfg.num_mcs == 1 || cfg.num_mcs == 2,
               "1 or 2 memory controllers supported");
    emc_assert(cfg.dram.channels % cfg.num_mcs == 0,
               "channels must split evenly across MCs");

    // Programs, page tables, cores.
    CoreConfig core_cfg = cfg.core;
    core_cfg.emc_enabled = cfg.emc_enabled;
    for (unsigned i = 0; i < cfg.num_cores; ++i) {
        memories_.push_back(std::make_unique<FunctionalMemory>());
        page_tables_.push_back(
            std::make_unique<PageTable>(i, cfg.seed + i));
        std::unique_ptr<TraceSource> src;
        if (i < cfg.trace_files.size() && !cfg.trace_files[i].empty()) {
            // Replay a captured trace (looping so long runs and
            // warmup never exhaust it). Dispatches on the container
            // version: v2 gets the streaming trace::Reader, v1 the
            // legacy FileTrace.
            src = trace::openTraceFile(cfg.trace_files[i], true);
        } else {
            src = std::make_unique<SyntheticProgram>(
                profileByName(benchmarks[i]), *memories_.back(),
                trace::generatorSeed(cfg.seed, i));
        }
        if (!cfg.capture_prefix.empty()) {
            auto inner = std::move(src);
            trace::Provenance prov;
            prov.workload = benchmarks[i];
            prov.meta = "emcsim --capture";
            prov.config_hash =
                ckpt::fullConfigHash(cfg, benchmarks);
            prov.seed = cfg.seed;
            auto cap = std::make_unique<trace::Recorder>(
                inner.get(),
                cfg.capture_prefix + ".core" + std::to_string(i)
                    + ".emct",
                prov);
            capture_inner_.push_back(std::move(inner));
            capture_recorders_.push_back(cap.get());
            src = std::move(cap);
        }
        programs_.push_back(std::move(src));
        cores_.push_back(std::make_unique<Core>(
            i, core_cfg, programs_.back().get(),
            page_tables_.back().get(), this));
    }

    // LLC slices.
    for (unsigned i = 0; i < cfg.num_cores; ++i) {
        slices_.push_back(std::make_unique<Cache>(
            cfg.llc_slice_bytes, cfg.llc_ways, "llc_slice"));
        slice_next_free_.push_back(0);
    }

    // Memory controllers, channels, EMCs.
    const unsigned ch_per_mc = cfg.dram.channels / cfg.num_mcs;
    const std::size_t q_per_ch =
        std::max<std::size_t>(8, cfg.mc_queue_entries / cfg.dram.channels);
    channels_.resize(cfg.num_mcs);
    for (unsigned m = 0; m < cfg.num_mcs; ++m) {
        for (unsigned c = 0; c < ch_per_mc; ++c) {
            auto ch = std::make_unique<DramChannel>(
                cfg.dram, cfg.timing, cfg.sched, q_per_ch,
                cfg.num_cores);
            const unsigned mc_idx = m;
            ch->setCallback([this, mc_idx](const MemRequest &req) {
                handleDramDone(mc_idx, req);
            });
            channels_[m].push_back(std::move(ch));
        }
        if (cfg.emc_enabled) {
            emc_ports_.push_back(
                std::make_unique<EmcPortAdapter>(this, m));
            emcs_.push_back(std::make_unique<Emc>(
                cfg.emc, cfg.num_cores, emc_ports_.back().get()));
        }
    }

    // Prefetchers.
    switch (cfg.prefetch) {
      case PrefetchConfig::kNone:
        break;
      case PrefetchConfig::kGhb:
        prefetchers_.push_back(
            std::make_unique<GhbPrefetcher>(cfg.num_cores, 1024));
        break;
      case PrefetchConfig::kStream:
        prefetchers_.push_back(
            std::make_unique<StreamPrefetcher>(cfg.num_cores, 32, 32));
        break;
      case PrefetchConfig::kMarkovStream:
        prefetchers_.push_back(
            std::make_unique<MarkovPrefetcher>(cfg.num_cores));
        prefetchers_.push_back(
            std::make_unique<StreamPrefetcher>(cfg.num_cores, 32, 32));
        break;
      case PrefetchConfig::kStride:
        prefetchers_.push_back(
            std::make_unique<StridePrefetcher>(cfg.num_cores));
        break;
      case PrefetchConfig::kPickle:
        prefetchers_.push_back(
            std::make_unique<pred::PicklePrefetcher>(cfg.num_cores));
        break;
    }

    // Ring delivery dispatch: translate message type to event handler.
    auto dispatch = [this](const RingMsg &msg) {
        switch (msg.type) {
          case MsgType::kMemRead:
            handleSliceArrive(msg.token);
            break;
          case MsgType::kLlcMissToMc:
          case MsgType::kControlMisc:
            handleMcEnqueue(msg.token);
            break;
          case MsgType::kFillToSlice:
            handleFillAtSlice(msg.token);
            break;
          case MsgType::kFillToCore:
            handleFillAtCore(msg.token);
            break;
          case MsgType::kWriteback:
            handleSliceStore(msg.token);
            break;
          case MsgType::kChainTransfer:
            handleChainArrive(msg.token);
            break;
          case MsgType::kLiveOut:
            handleChainResult(msg.token);
            break;
          case MsgType::kLsqPopulate:
            handleLsqPopulate(msg.token);
            break;
          case MsgType::kEmcLlcQuery:
            handleEmcQueryArrive(msg.token);
            break;
          case MsgType::kDataMisc:
            handleEmcQueryReply(msg.token);
            break;
          case MsgType::kEmcFillReply:
            handleEmcDirectReply(msg.token);
            break;
        }
    };
    control_ring_.setDeliver(dispatch);
    data_ring_.setDeliver(dispatch);

    finish_cycle_.assign(cfg.num_cores, kNoCycle);
    finish_snapshot_.resize(cfg.num_cores);
    snapshotted_.assign(cfg.num_cores, false);

    // Escape hatch for A/B timing comparisons: force cycle-by-cycle
    // ticking even across provably idle gaps.
    cycle_skip_enabled_ = std::getenv("EMC_NO_CYCLE_SKIP") == nullptr;

#ifdef EMC_SIM_CHECK
    enableInvariantChecks();
#endif

    if (!cfg.trace_path.empty()) {
        enableTracing(cfg.trace_path, cfg.trace_buffer_events,
                      cfg.trace_interval);
    }
}

System::~System()
{
    // Finalize any capture files a completed run() has not already
    // closed (close() is idempotent). Swallow I/O errors — destructors
    // must not throw; an unfinalizable file is left with its
    // index_offset 0 marker and readers reject it with a typed error.
    for (trace::Recorder *rec : capture_recorders_) {
        try {
            rec->finish();
        } catch (const trace::Error &e) {
            emc_warn(std::string("trace capture finalize failed: ")
                     + e.what());
        }
    }
}

// --------------------------------------------------------------------
// Runtime invariant checking (DESIGN.md §5d)
// --------------------------------------------------------------------

void
System::enableInvariantChecks()
{
    if (check_)
        return;
    check_ = std::make_unique<check::CheckRegistry>();
    check_->setClock([this] { return now_; });
    ck_events_ = static_cast<check::EventQueueChecker *>(
        &check_->add(std::make_unique<check::EventQueueChecker>()));
    ck_txns_ = static_cast<check::TxnLifecycleChecker *>(
        &check_->add(std::make_unique<check::TxnLifecycleChecker>()));
    ck_conserve_ = static_cast<check::ConservationChecker *>(
        &check_->add(std::make_unique<check::ConservationChecker>()));
    ck_retire_ = static_cast<check::RetireOrderChecker *>(
        &check_->add(std::make_unique<check::RetireOrderChecker>()));
    for (auto &c : cores_)
        c->setCheck(check_.get(), ck_retire_);
    for (auto &e : emcs_)
        e->setCheck(check_.get());
}

void
System::runPerTickChecks()
{
    // Cheap O(#rings + #channels) conservation equalities, every tick.
    ck_conserve_->check(*check_, "control_ring",
                        control_ring_.sentTotal()
                            - control_ring_.deliveredTotal(),
                        control_ring_.pending(), "messages in flight");
    ck_conserve_->check(*check_, "data_ring",
                        data_ring_.sentTotal()
                            - data_ring_.deliveredTotal(),
                        data_ring_.pending(), "messages in flight");
    for (std::size_t m = 0; m < channels_.size(); ++m) {
        for (std::size_t c = 0; c < channels_[m].size(); ++c) {
            const DramChannel &ch = *channels_[m][c];
            const std::string comp = "mc" + std::to_string(m)
                                     + ".ch" + std::to_string(c);
            ck_conserve_->check(*check_, comp,
                                ch.acceptedReads() - ch.completedReads(),
                                ch.readQueueDepth() + ch.inFlight(),
                                "read requests in flight");
            ck_conserve_->check(*check_, comp,
                                ch.acceptedWrites() - ch.issuedWrites(),
                                ch.writeQueueDepth(),
                                "buffered writes");
            if (ch.readQueueDepth() > ch.queueLimit()) {
                check_->fail("conservation", comp, 0,
                             "read queue exceeds its credit limit");
            }
        }
    }
    ck_txns_->checkLeaks(*check_, txns_.size());
    ck_events_->checkDrained(*check_, events_.size());

    if (now_ >= next_deep_check_) {
        runDeepChecks();
        next_deep_check_ = now_ + 2048;
    }
}

void
System::runDeepChecks()
{
    for (auto &c : cores_)
        c->selfCheck(*check_);
    for (auto &e : emcs_)
        e->selfCheck(*check_);
    for (std::size_t i = 0; i < slices_.size(); ++i) {
        slices_[i]->checkConsistent([&](const std::string &msg) {
            check_->fail("cache_state",
                         "slice" + std::to_string(i), 0, msg);
        });
    }
    // Every transaction merged onto an in-flight fill must still be
    // live in the pool, or its wakeup would be lost.
    // lint-ok: unordered-iter (order-insensitive invariant scan)
    for (const auto &kv : pending_fills_) {
        for (std::uint64_t id : kv.second) {
            if (!txns_.find(id)) {
                check_->fail("txn_lifecycle", "pending_fills", id,
                             "merged transaction no longer live in "
                             "the slab pool");
            }
        }
    }
}

void
System::finalizeChecks()
{
    runDeepChecks();
    ck_txns_->checkLeaks(*check_, txns_.size());
    ck_events_->checkDrained(*check_, events_.size());
    check_->finalizeAll();
}

// --------------------------------------------------------------------
// Observability (DESIGN.md §6)
// --------------------------------------------------------------------

void
System::enableStatStream(std::FILE *out, Cycle interval,
                         const std::string &prefix)
{
    if (interval == 0 || !out) {
        streamer_.reset();
        return;
    }
    streamer_ =
        std::make_unique<obs::StatStreamer>(out, interval, prefix);
    // A worker attaching mid-run (after a checkpoint restore) emits
    // its first line at the next tick; snapshot() then realigns the
    // schedule past now() in whole intervals.
}

void
System::enableTracing(const std::string &trace_path,
                      std::size_t buffer_events, Cycle stream_interval)
{
    if (tracer_)
        return;
#ifndef EMC_SIM_TRACE
    emc_warn("trace hooks compiled out (EMC_SIM_TRACE=OFF); the trace "
             "file will contain no events");
#endif
    obs::TraceTopology topo;
    topo.num_cores = cfg_.num_cores;
    topo.num_mcs = cfg_.num_mcs;
    topo.emc_contexts = cfg_.emc_enabled ? cfg_.emc.contexts : 0;
    topo.channels = cfg_.dram.channels;
    topo.ranks_per_channel = cfg_.dram.ranks_per_channel;
    topo.banks_per_rank = cfg_.dram.banks_per_rank;
    tracer_ = std::make_unique<obs::Tracer>(trace_path, topo,
                                            buffer_events);
    if (!tracer_->ok())
        emc_warn("cannot open trace file " + trace_path);

    for (auto &c : cores_)
        c->setTrace(tracer_.get());
    for (unsigned m = 0; m < emcs_.size(); ++m)
        emcs_[m]->setTrace(tracer_.get(), m);
    const unsigned ch_per_mc = cfg_.dram.channels / cfg_.num_mcs;
    const unsigned banks_per_ch =
        cfg_.dram.ranks_per_channel * cfg_.dram.banks_per_rank;
    for (unsigned m = 0; m < cfg_.num_mcs; ++m) {
        for (unsigned c = 0; c < ch_per_mc; ++c) {
            channels_[m][c]->setTrace(
                tracer_.get(), (m * ch_per_mc + c) * banks_per_ch);
        }
    }
    for (unsigned i = 0; i < slices_.size(); ++i)
        slices_[i]->setTrace(tracer_.get(), obs::Track::core(i), &now_);
    control_ring_.setTrace(tracer_.get());
    data_ring_.setTrace(tracer_.get());

    if (stream_interval > 0) {
        streamer_ = std::make_unique<obs::StatStreamer>(
            trace_path + ".jsonl", stream_interval);
        if (!streamer_->ok())
            emc_warn("cannot open stat stream " + trace_path + ".jsonl");
    }
}

obs::Track
System::trackOf(const Txn &txn) const
{
    if (txn.is_emc || txn.emc_llc_fill_only)
        return obs::Track::emc(txn.emc_owner);
    return obs::Track::core(txn.core);
}

std::uint8_t
System::txnFlags(const Txn &txn) const
{
    std::uint8_t f = 0;
    if (txn.addr_tainted)
        f |= obs::kFlagDependent;
    if (txn.is_emc)
        f |= obs::kFlagEmc;
    if (txn.is_prefetch)
        f |= obs::kFlagPrefetch;
    if (txn.for_store)
        f |= obs::kFlagStore;
    return f;
}

void
System::retireTxn(Txn &txn)
{
    // Phase attribution (always on; exported as `phase.*`). Only
    // transactions that produced a DRAM fill count — the same rule
    // tools/emctrace applies to the trace ("has a fill annotation"),
    // which is what keeps `emctrace summarize` exact against these
    // histograms.
    if (!txn.is_prefetch && !txn.is_hermes && !txn.for_store
        && txn.t_fill != kNoCycle) {
        obs::PhaseTimes t;
        t.created = txn.t_start;
        t.llc_miss = txn.t_llc_miss == kNoCycle ? 0 : txn.t_llc_miss;
        t.dram_enqueue =
            txn.t_mc_enqueue == kNoCycle ? 0 : txn.t_mc_enqueue;
        t.fill = txn.t_fill;
        t.retire = now_;
        const obs::PhaseClass cls =
            (txn.is_emc || txn.emc_llc_fill_only)
                ? obs::PhaseClass::kEmc
                : (txn.addr_tainted ? obs::PhaseClass::kCoreDep
                                    : obs::PhaseClass::kCoreIndep);
        phases_.sample(cls, t);
    }
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kRetire, now_,
                  txn.id, trackOf(txn));
    if (ck_txns_)
        ck_txns_->onRetire(*check_, txn.id);
    txns_.erase(txn.id);
}

// --------------------------------------------------------------------
// Topology helpers
// --------------------------------------------------------------------

unsigned
System::sliceOf(Addr line) const
{
    // Hash the line number across slices (avoid striding artifacts).
    const std::uint64_t h = lineNum(line) * 0x9e3779b97f4a7c15ULL;
    return static_cast<unsigned>(h >> 40) % cfg_.num_cores;
}

unsigned
System::mcOfChannel(unsigned channel) const
{
    const unsigned ch_per_mc = cfg_.dram.channels / cfg_.num_mcs;
    return channel / ch_per_mc;
}

unsigned
System::mcOfLine(Addr line) const
{
    return mcOfChannel(mapAddress(line, cfg_.dram).channel);
}

void
System::schedule(Cycle when, EvType type, std::uint64_t token)
{
    const Cycle effective = std::max(when, now_ + 1);
    if (ck_events_) {
        ck_events_->onPush(*check_, when, effective, now_,
                           static_cast<unsigned>(type), token);
    }
    // lint-ok: event-push (this is the schedule API itself)
    events_.push(effective, Event{type, token});
}

void
System::routeControl(unsigned src, unsigned dst, MsgType mtype,
                     std::uint64_t token, EvType ev)
{
    if (src == dst) {
        schedule(now_ + 1, ev, token);
        return;
    }
    RingMsg msg;
    msg.type = mtype;
    msg.src = src;
    msg.dst = dst;
    msg.token = token;
    control_ring_.send(msg, now_);
}

void
System::routeData(unsigned src, unsigned dst, MsgType mtype,
                  std::uint64_t token, EvType ev)
{
    if (src == dst) {
        schedule(now_ + 1, ev, token);
        return;
    }
    RingMsg msg;
    msg.type = mtype;
    msg.src = src;
    msg.dst = dst;
    msg.token = token;
    data_ring_.send(msg, now_);
}

Cycle
System::sliceReady(unsigned slice)
{
    // Each slice accepts a new lookup every other cycle.
    Cycle start = std::max(now_, slice_next_free_[slice]);
    slice_next_free_[slice] = start + 2;
    return start + cfg_.llc_latency;
}

// --------------------------------------------------------------------
// CorePort
// --------------------------------------------------------------------

bool
System::requestLine(CoreId core, Addr paddr_line, Addr pc, bool for_store,
                    bool addr_tainted)
{
    Txn txn;
    txn.id = next_txn_++;
    txn.core = core;
    txn.line = paddr_line;
    txn.pc = pc;
    txn.for_store = for_store;
    txn.addr_tainted = addr_tainted;
    txn.t_start = now_;
    txns_.create(txn.id) = txn;
    if (ck_txns_)
        ck_txns_->onCreate(*check_, txn.id);
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kCreated, now_,
                  txn.id, trackOf(txn), txn.line, txnFlags(txn));
    ++outstanding_demand_lines_[paddr_line];

    const unsigned slice = sliceOf(paddr_line);
    routeControl(stopOfCore(core), stopOfCore(slice), MsgType::kMemRead,
                 txn.id, EvType::kSliceArrive);
    return true;
}

void
System::hermesProbe(CoreId core, Addr paddr_line, Addr pc)
{
    ++hermes_probes_issued_;

    // A fill for the line is already in flight (demand, prefetch, EMC
    // or an earlier probe): the probe adds nothing, drop it.
    if (pending_fills_.count(paddr_line)) {
        ++hermes_probes_suppressed_;
        return;
    }

    // Off-critical-path inclusive-LLC presence filter (the same cheap
    // peek the EMC bypass uses): a resident line means the prediction
    // was wrong and the demand will hit — no DRAM traffic.
    const unsigned slice = sliceOf(paddr_line);
    if (slices_[slice]->peek(paddr_line) != nullptr) {
        ++hermes_probes_llc_hit_;
        return;
    }

    Txn txn;
    txn.id = next_txn_++;
    txn.core = core;
    txn.line = paddr_line;
    txn.pc = pc;
    txn.is_hermes = true;
    txn.llc_missed = true;
    txn.t_start = now_;
    txn.t_llc_miss = now_;
    txns_.create(txn.id) = txn;
    if (ck_txns_)
        ck_txns_->onCreate(*check_, txn.id);
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kCreated, now_,
                  txn.id, trackOf(txn), txn.line, txnFlags(txn));

    // Open the cross-agent MSHR window so the demand merges onto this
    // probe's fill at the slice, and head straight for the home MC —
    // the whole point is skipping the ring+LLC walk.
    hermes_probe_lines_[paddr_line] = HermesProbe{now_, false};
    pending_fills_[paddr_line];
    routeControl(stopOfCore(core), stopOfMc(mcOfLine(paddr_line)),
                 MsgType::kControlMisc, txn.id, EvType::kMcEnqueue);
}

void
System::storeThrough(CoreId core, Addr paddr_line)
{
    Txn txn;
    txn.id = next_txn_++;
    txn.core = core;
    txn.line = paddr_line;
    txn.for_store = true;
    txn.t_start = now_;
    txns_.create(txn.id) = txn;
    if (ck_txns_)
        ck_txns_->onCreate(*check_, txn.id);
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kCreated, now_,
                  txn.id, trackOf(txn), txn.line, txnFlags(txn));

    const unsigned slice = sliceOf(paddr_line);
    routeData(stopOfCore(core), stopOfCore(slice), MsgType::kWriteback,
              txn.id, EvType::kSliceStore);
}

bool
System::offloadChain(const ChainRequest &chain)
{
    // The chain targets the EMC co-located with the MC owning the
    // source miss's channel (dual-MC case, Section 4.4).
    if (emcs_.empty())
        return false;
    const unsigned mc = mcOfLine(chain.source_paddr_line)
                        % static_cast<unsigned>(emcs_.size());
    if (!emcs_[mc]->hasFreeContext())
        return false;

    if (check_)
        check::validateChain(chain, *check_, "core" +
                             std::to_string(chain.core) + ".offload");

    const std::uint64_t id = next_msg_id_++;
    // Charge the exact wire size of the paper's 6-byte uop format
    // plus the live-in vector (the codec also validates that the
    // chain fits the format at all).
    EncodedChain enc;
    const bool encodable = encodeChain(chain, enc);
    emc_assert(encodable, "chain generation produced an unencodable "
                          "chain");
    const unsigned bytes = enc.wireBytes();
    const unsigned msgs =
        std::max(1u, (bytes + kLineBytes - 1) / kLineBytes);
    chains_in_flight_[id] = {chain, msgs};
    for (unsigned m = 0; m < msgs; ++m) {
        routeData(stopOfCore(chain.core), stopOfMc(mc),
                  MsgType::kChainTransfer, id, EvType::kChainArrive);
    }
    return true;
}

void
System::tlbShootdown(CoreId core, Addr vpage)
{
    for (auto &e : emcs_)
        e->tlbShootdown(core, vpage);
}

bool
System::emcTlbResident(CoreId core, Addr vpage)
{
    for (auto &e : emcs_) {
        if (e->tlbResident(core, vpage))
            return true;
    }
    return false;
}

// --------------------------------------------------------------------
// EmcPort entry points (via adapters)
// --------------------------------------------------------------------

bool
System::emcDirectDram(unsigned from_mc, CoreId core, Addr paddr_line,
                      std::uint64_t token)
{
    Txn txn;
    txn.id = next_txn_++;
    txn.core = core;
    txn.line = paddr_line;
    txn.is_emc = true;
    txn.emc_token = token;
    txn.emc_owner = from_mc;
    txn.t_start = now_;

    // Off-critical-path inclusive-LLC probe: was the bypass correct?
    const unsigned slice = sliceOf(paddr_line);
    const bool in_llc = slices_[slice]->peek(paddr_line) != nullptr;
    txn.llc_missed = !in_llc;
    if (in_llc)
        ++emc_bypass_wrong_;

    Txn &slot = txns_.create(txn.id);
    slot = txn;
    if (ck_txns_)
        ck_txns_->onCreate(*check_, txn.id);
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kCreated, now_,
                  txn.id, trackOf(txn), txn.line, txnFlags(txn));
    if (tryMergeFill(slot))
        return true;  // piggybacks on an in-flight fill
    pending_fills_[txn.line];

    // Cross-channel dependencies go MC-to-MC directly, cutting the
    // core out of the path (Section 4.4).
    const unsigned home_mc = mcOfLine(paddr_line);
    routeControl(stopOfMc(from_mc), stopOfMc(home_mc),
                 MsgType::kControlMisc, txn.id, EvType::kMcEnqueue);
    return true;
}

bool
System::emcLlcQuery(unsigned from_mc, CoreId core, Addr paddr_line,
                    std::uint64_t token, Addr pc)
{
    Txn txn;
    txn.id = next_txn_++;
    txn.core = core;
    txn.line = paddr_line;
    txn.pc = pc;
    txn.is_emc = true;
    txn.emc_via_llc = true;
    txn.emc_token = token;
    txn.emc_owner = from_mc;
    txn.t_start = now_;
    txns_.create(txn.id) = txn;
    if (ck_txns_)
        ck_txns_->onCreate(*check_, txn.id);
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kCreated, now_,
                  txn.id, trackOf(txn), txn.line, txnFlags(txn));

    const unsigned slice = sliceOf(paddr_line);
    routeControl(stopOfMc(from_mc), stopOfCore(slice),
                 MsgType::kEmcLlcQuery, txn.id, EvType::kEmcQueryArrive);
    return true;
}

void
System::emcLsqPopulate(unsigned from_mc, CoreId core,
                       std::uint64_t rob_seq, Addr paddr,
                       std::uint64_t chain_id)
{
    const std::uint64_t id = next_msg_id_++;
    lsq_msgs_[id] = {core, rob_seq, paddr, chain_id};
    routeControl(stopOfMc(from_mc), stopOfCore(core),
                 MsgType::kLsqPopulate, id, EvType::kLsqPopulate);
}

void
System::emcChainResult(unsigned from_mc, const ChainResult &result,
                       unsigned bytes)
{
    const std::uint64_t id = next_msg_id_++;
    const unsigned msgs =
        std::max(1u, (bytes + kLineBytes - 1) / kLineBytes);
    results_in_flight_[id] = {result, msgs};
    for (unsigned m = 0; m < msgs; ++m) {
        routeData(stopOfMc(from_mc), stopOfCore(result.core),
                  MsgType::kLiveOut, id, EvType::kChainResult);
    }
}

// --------------------------------------------------------------------
// Event handlers
// --------------------------------------------------------------------

void
System::handleSliceArrive(std::uint64_t token)
{
    const Txn *tp = txns_.find(token);
    if (!tp)
        return;
    const unsigned slice = sliceOf(tp->line);
    schedule(sliceReady(slice), EvType::kSliceLookup, token);
}

void
System::observeAtLlc(Txn &txn, bool hit)
{
    // Train prefetchers on the demand stream at the LLC and feed the
    // EMC's hit/miss predictor.
    if (!txn.is_prefetch) {
        for (auto &pf : prefetchers_)
            pf->observe(txn.core, txn.line, txn.pc, !hit, fdp_.degree());
        if (!emcs_.empty() && !txn.for_store) {
            for (auto &e : emcs_)
                e->missPredUpdate(txn.core, txn.pc, txn.line, !hit);
        }
    }
    if (hit && fdp_.isPendingPrefetch(txn.line)) {
        ++demand_hits_on_prefetch_;
        if (txn.addr_tainted)
            ++dep_misses_covered_by_pf_;
        fdp_.demandTouch(txn.line);
    }
}

void
System::handleSliceLookup(std::uint64_t token)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;
    const unsigned slice = sliceOf(txn.line);
    ++llc_total_accesses_;

    const bool hit = slices_[slice]->access(txn.line) != nullptr;
    ++llc_demand_accesses_;
    observeAtLlc(txn, hit);

    if (hit) {
        finalizeToCore(txn, slice);
        return;
    }

    // Figure 2's idealization: dependent misses become LLC hits.
    if (cfg_.ideal_dependent_hits && txn.addr_tainted) {
        ++ideal_dep_hits_granted_;
        if (slices_[slice]->peek(txn.line) == nullptr)
            insertIntoLlc(txn);
        finalizeToCore(txn, slice);
        return;
    }

    txn.llc_missed = true;
    txn.t_llc_miss = now_;
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kLlcMiss, now_,
                  txn.id, trackOf(txn), txn.line);
    ++llc_demand_misses_;
    if (txn.addr_tainted)
        ++llc_dep_misses_;
    fdp_.demandMiss(txn.line);  // pollution check
    if (outstanding_prefetch_lines_.count(txn.line))
        fdp_.lateHit(txn.line);  // useful but untimely
    cores_[txn.core]->llcMissDetermined(txn.line);

    if (tryMergeFill(txn)) {
        // Merged onto an in-flight Hermes probe: the demand inherits
        // the probe's DRAM head start (launched at dispatch, before
        // the ring+LLC walk this request just finished).
        auto hp = hermes_probe_lines_.find(txn.line);
        if (hp != hermes_probe_lines_.end()) {
            hp->second.used = true;
            ++hermes_merged_demands_;
            hermes_saved_cycles_ += now_ - hp->second.start;
        }
        return;
    }
    pending_fills_[txn.line];
    routeControl(stopOfCore(slice), stopOfMc(mcOfLine(txn.line)),
                 MsgType::kLlcMissToMc, token, EvType::kMcEnqueue);
}

void
System::finalizeToCore(Txn &txn, unsigned slice)
{
    routeData(stopOfCore(slice), stopOfCore(txn.core),
              MsgType::kFillToCore, txn.id, EvType::kFillAtCore);
}

void
System::handleSliceStore(std::uint64_t token)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;
    const unsigned slice = sliceOf(txn.line);
    ++llc_total_accesses_;

    CacheLineMeta *meta = slices_[slice]->access(txn.line);
    observeAtLlc(txn, meta != nullptr);
    if (meta) {
        meta->dirty = true;
        retireTxn(txn);
        return;
    }
    // Fetch-on-write: read the line from DRAM, then install dirty.
    txn.llc_missed = true;
    txn.t_llc_miss = now_;
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kLlcMiss, now_,
                  txn.id, trackOf(txn), txn.line);
    if (tryMergeFill(txn))
        return;
    pending_fills_[txn.line];
    routeControl(stopOfCore(slice), stopOfMc(mcOfLine(txn.line)),
                 MsgType::kLlcMissToMc, token, EvType::kMcEnqueue);
}

void
System::handleMcEnqueue(std::uint64_t token)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;

    const DramCoord coord = mapAddress(txn.line, cfg_.dram);
    const unsigned mc = mcOfChannel(coord.channel);
    const unsigned ch_per_mc = cfg_.dram.channels / cfg_.num_mcs;
    DramChannel &ch = *channels_[mc][coord.channel % ch_per_mc];

    MemRequest req;
    req.id = txn.id;
    req.token = txn.id;
    req.paddr = txn.line;
    req.is_write = false;
    req.core = txn.core;
    req.cycle_llc_miss = txn.t_llc_miss;
    if (txn.is_emc)
        req.origin = ReqOrigin::kEmcDemand;
    else if (txn.is_prefetch)
        req.origin = ReqOrigin::kPrefetch;
    else
        req.origin = ReqOrigin::kCoreDemand;

    if (!ch.enqueue(req, now_)) {
        // Queue full: retry shortly (models MC backpressure).
        schedule(now_ + 4, EvType::kMcEnqueue, token);
        return;
    }
    txn.t_mc_enqueue = now_;
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kDramEnqueue, now_,
                  txn.id, trackOf(txn), txn.line);
    if (ck_txns_)
        ck_txns_->onIssue(*check_, txn.id);
    if (txn.is_hermes) {
        // Rides the core-demand DRAM priority class but is accounted
        // separately: probe traffic is the cost knob of Hermes.
        ++traffic_.hermes;
    } else {
        switch (req.origin) {
          case ReqOrigin::kCoreDemand: ++traffic_.core_demand; break;
          case ReqOrigin::kEmcDemand: ++traffic_.emc_demand; break;
          case ReqOrigin::kPrefetch: ++traffic_.prefetch; break;
          case ReqOrigin::kWriteback: ++traffic_.writeback; break;
        }
    }
}

void
System::handleDramDone(unsigned mc, const MemRequest &req)
{
    Txn *tp = txns_.find(req.token);
    if (!tp)
        return;
    Txn &txn = *tp;
    txn.t_dram_issue = req.cycle_dram_issue;
    txn.t_dram_data = req.cycle_dram_data;
    if (ck_txns_)
        ck_txns_->onDramDone(*check_, txn.id);

    // The EMC at this controller snoops every arriving fill
    // (Section 4.1.3) and may be waiting on it as chain source data.
    if (!emcs_.empty())
        emcs_[mc % emcs_.size()]->observeFill(txn.line);

    if (txn.is_emc) {
        ++emc_generated_misses_;
        if (cfg_.record_emc_miss_lines)
            emc_miss_lines_.insert(txn.line);
        if (txn.t_mc_enqueue != kNoCycle
            && txn.t_dram_issue != kNoCycle) {
            lat_queue_emc_.sample(
                static_cast<double>(txn.t_dram_issue - txn.t_mc_enqueue));
        }
        if (txn.emc_owner == mc) {
            lat_total_emc_.sample(
                static_cast<double>(now_ - txn.t_start));
            hist_lat_emc_.sample(
                static_cast<double>(now_ - txn.t_start));
            emcs_[txn.emc_owner]->memResponse(txn.emc_token, true);
        } else {
            // Cross-MC: data rides the ring to the issuing EMC.
            const std::uint64_t id = next_msg_id_++;
            emc_replies_[id] = {txn.emc_owner, txn.emc_token};
            // Remember start for latency sampling.
            emc_reply_start_[id] = txn.t_start;
            routeData(stopOfMc(mc), stopOfMc(txn.emc_owner),
                      MsgType::kEmcFillReply, id,
                      EvType::kEmcDirectReply);
        }
        // The EMC has its data the moment the burst completes at the
        // controller.
        txn.t_fill = now_;
        EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kFill, now_,
                      txn.id, trackOf(txn), txn.line);
        // Remaining work for this txn: fill the LLC (inclusive).
        txn.is_emc = false;
        txn.emc_llc_fill_only = true;
    }

    const unsigned slice = sliceOf(txn.line);
    routeData(stopOfMc(mc), stopOfCore(slice), MsgType::kFillToSlice,
              req.token, EvType::kFillAtSlice);
}


bool
System::tryMergeFill(Txn &txn)
{
    auto it = pending_fills_.find(txn.line);
    if (it == pending_fills_.end())
        return false;
    it->second.push_back(txn.id);
    return true;
}

void
System::dispatchMergedFill(std::uint64_t token, unsigned slice)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;
    txn.t_fill = now_;
    if (ck_txns_)
        ck_txns_->onFill(*check_, txn.id);
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kFill, now_, txn.id,
                  trackOf(txn), txn.line);
    if (txn.is_prefetch) {
        outstanding_prefetch_lines_.erase(txn.line);
        retireTxn(txn);
        return;
    }
    if (txn.is_emc) {
        // The merged EMC load completes as the shared fill passes.
        lat_total_emc_.sample(static_cast<double>(now_ - txn.t_start));
        emcs_[txn.emc_owner]->memResponse(txn.emc_token, true);
        retireTxn(txn);
        return;
    }
    if (txn.for_store) {
        if (CacheLineMeta *m = slices_[slice]->peek(txn.line))
            m->dirty = true;
        retireTxn(txn);
        return;
    }
    if (CacheLineMeta *m = slices_[slice]->peek(txn.line))
        m->presence |= (1u << txn.core);
    routeData(stopOfCore(slice), stopOfCore(txn.core),
              MsgType::kFillToCore, token, EvType::kFillAtCore);
}

void
System::insertIntoLlc(Txn &txn)
{
    const unsigned slice = sliceOf(txn.line);
    if (CacheLineMeta *existing = slices_[slice]->peek(txn.line)) {
        if (txn.for_store)
            existing->dirty = true;
        return;
    }
    CacheLineMeta meta;
    meta.dirty = txn.for_store;
    Cache::Victim victim = slices_[slice]->insert(txn.line, meta);
    ++llc_total_accesses_;
    if (victim.valid) {
        fdp_.evicted(victim.addr);
        if (txn.is_prefetch)
            fdp_.prefetchEvictedVictim(victim.addr);
        if (victim.meta.emc && !emcs_.empty()) {
            for (auto &e : emcs_)
                e->invalidateLine(victim.addr);
        }
        // Inclusive hierarchy: back-invalidate L1 copies.
        for (unsigned c = 0; c < cfg_.num_cores; ++c) {
            if (victim.meta.presence & (1u << c))
                cores_[c]->invalidateL1(victim.addr);
        }
        if (victim.meta.dirty) {
            const DramCoord coord = mapAddress(victim.addr, cfg_.dram);
            const unsigned mc = mcOfChannel(coord.channel);
            const unsigned ch_per_mc =
                cfg_.dram.channels / cfg_.num_mcs;
            MemRequest wb;
            wb.paddr = victim.addr;
            wb.is_write = true;
            wb.origin = ReqOrigin::kWriteback;
            wb.core = txn.core;
            channels_[mc][coord.channel % ch_per_mc]->enqueue(wb, now_);
            ++traffic_.writeback;
        }
    }
}

void
System::handleFillAtSlice(std::uint64_t token)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;
    const unsigned slice = sliceOf(txn.line);
    txn.t_fill = now_;
    if (ck_txns_)
        ck_txns_->onFill(*check_, txn.id);
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kFill, now_, txn.id,
                  trackOf(txn), txn.line);

    insertIntoLlc(txn);

    // Wake every transaction merged onto this fill and close the
    // window (cross-agent MSHR semantics).
    auto pit = pending_fills_.find(txn.line);
    if (pit != pending_fills_.end()) {
        const std::vector<std::uint64_t> merged = std::move(pit->second);
        pending_fills_.erase(pit);
        for (std::uint64_t m : merged)
            dispatchMergedFill(m, slice);
        if (!txns_.find(token))
            return;
    }

    if (txn.is_hermes) {
        // The probe's work is done once the line is in the LLC and
        // every merged demand has been dispatched above. Classify it:
        // a demand merged onto the fill (useful) or nothing wanted the
        // line before it arrived (useless — mispredicted or too late).
        auto hp = hermes_probe_lines_.find(txn.line);
        if (hp != hermes_probe_lines_.end()) {
            if (hp->second.used)
                ++hermes_probes_useful_;
            else
                ++hermes_probes_useless_;
            hermes_probe_lines_.erase(hp);
        }
        retireTxn(txn);
        return;
    }
    if (txn.is_prefetch) {
        outstanding_prefetch_lines_.erase(txn.line);
        fdp_.issued(txn.line);
        if (cfg_.record_prefetch_lines)
            prefetch_lines_.insert(txn.line);
        retireTxn(txn);
        return;
    }
    if (txn.emc_llc_fill_only) {
        // Mark the EMC directory bit: the EMC data cache holds it.
        if (CacheLineMeta *m = slices_[slice]->peek(txn.line))
            m->emc = true;
        retireTxn(txn);
        return;
    }
    if (txn.for_store) {
        retireTxn(txn);
        return;
    }

    if (CacheLineMeta *m = slices_[slice]->peek(txn.line))
        m->presence |= (1u << txn.core);
    routeData(stopOfCore(slice), stopOfCore(txn.core),
              MsgType::kFillToCore, token, EvType::kFillAtCore);
}

void
System::handleFillAtCore(std::uint64_t token)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;
    txn.t_done = now_;
    if (ck_txns_)
        ck_txns_->onFill(*check_, txn.id);

    const unsigned slice = sliceOf(txn.line);
    if (CacheLineMeta *m = slices_[slice]->peek(txn.line))
        m->presence |= (1u << txn.core);

    finalizeDemand(txn);
    cores_[txn.core]->fillArrived(txn.line, txn.llc_missed);

    auto oit = outstanding_demand_lines_.find(txn.line);
    if (oit != outstanding_demand_lines_.end()) {
        if (--oit->second == 0)
            outstanding_demand_lines_.erase(oit);
    }
    retireTxn(txn);
}

void
System::finalizeDemand(Txn &txn)
{
    if (!txn.llc_missed)
        return;
    const double total = static_cast<double>(txn.t_done - txn.t_start);
    lat_total_core_.sample(total);
    hist_lat_core_.sample(total);

    if (txn.t_dram_data == kNoCycle || txn.t_dram_issue == kNoCycle)
        return;
    const double dram =
        static_cast<double>(txn.t_dram_data - txn.t_dram_issue);
    const double after_miss =
        static_cast<double>(txn.t_done - txn.t_llc_miss);
    lat_dram_core_.sample(dram);
    lat_onchip_core_.sample(std::max(0.0, after_miss - dram));
    if (txn.t_mc_enqueue != kNoCycle) {
        lat_queue_core_.sample(
            static_cast<double>(txn.t_dram_issue - txn.t_mc_enqueue));
        const double to_mc =
            static_cast<double>(txn.t_mc_enqueue - txn.t_start);
        lat_ring_core_.sample(
            std::max(0.0, to_mc - static_cast<double>(cfg_.llc_latency))
            + static_cast<double>(txn.t_done - txn.t_dram_data));
        lat_llcpath_core_.sample(static_cast<double>(cfg_.llc_latency));
    }
}

void
System::handleChainArrive(std::uint64_t token)
{
    auto it = chains_in_flight_.find(token);
    if (it == chains_in_flight_.end())
        return;
    if (--it->second.msgs_remaining > 0)
        return;
    ChainRequest chain = std::move(it->second.chain);
    chains_in_flight_.erase(it);

    const unsigned mc = mcOfLine(chain.source_paddr_line)
                        % static_cast<unsigned>(emcs_.size());
    // The context must arm when the source fill crosses the MC. If
    // every transaction for the line has already passed DRAM (or none
    // exists), that observeFill has fired — possibly while this chain
    // was still on the ring — so arm immediately. Transactions merged
    // onto another agent's in-flight fill (cross-agent MSHR waiters,
    // e.g. a demand riding a Hermes probe) never pass DRAM themselves
    // and must not keep the chain waiting for a fill that already
    // crossed the controller.
    const auto pend = pending_fills_.find(chain.source_paddr_line);
    const bool source_arrived = !txns_.anyOf([&](const Txn &t) {
        if (t.line != chain.source_paddr_line || t.is_prefetch
            || t.t_dram_data != kNoCycle || t.t_fill != kNoCycle)
            return false;
        if (pend != pending_fills_.end()) {
            const auto &waiters = pend->second;
            if (std::find(waiters.begin(), waiters.end(), t.id)
                != waiters.end())
                return false;
        }
        return true;
    });

    if (!emcs_[mc]->acceptChain(chain, source_arrived)) {
        // Raced out of contexts: bounce a cancel back to the core.
        ChainResult res;
        res.chain_id = chain.id;
        res.core = chain.core;
        res.outcome = ChainOutcome::kDisambiguation;
        for (const ChainUop &cu : chain.uops) {
            if (cu.is_source)
                continue;
            LiveOut lo;
            lo.rob_seq = cu.rob_seq;
            res.live_outs.push_back(lo);
        }
        emcChainResult(mc, res, 8);
    }
}

void
System::handleLsqPopulate(std::uint64_t token)
{
    auto it = lsq_msgs_.find(token);
    if (it == lsq_msgs_.end())
        return;
    const LsqMsg msg = it->second;
    lsq_msgs_.erase(it);

    const bool conflict =
        cores_[msg.core]->lsqPopulate(msg.rob_seq, msg.paddr);
    if (conflict) {
        for (auto &e : emcs_)
            e->cancelChain(msg.chain_id, ChainOutcome::kDisambiguation);
    }
}

void
System::handleChainResult(std::uint64_t token)
{
    auto it = results_in_flight_.find(token);
    if (it == results_in_flight_.end())
        return;
    if (--it->second.msgs_remaining > 0)
        return;
    ChainResult res = std::move(it->second.result);
    results_in_flight_.erase(it);
    cores_[res.core]->chainResult(res);
}

void
System::handleEmcQueryArrive(std::uint64_t token)
{
    const Txn *tp = txns_.find(token);
    if (!tp)
        return;
    const unsigned slice = sliceOf(tp->line);
    schedule(sliceReady(slice), EvType::kEmcQueryLookup, token);
}

void
System::handleEmcQueryLookup(std::uint64_t token)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;
    const unsigned slice = sliceOf(txn.line);
    ++llc_total_accesses_;

    const bool hit = slices_[slice]->access(txn.line) != nullptr;
    observeAtLlc(txn, hit);

    if (hit) {
        routeData(stopOfCore(slice), stopOfMc(txn.emc_owner),
                  MsgType::kDataMisc, token, EvType::kEmcQueryReply);
        return;
    }
    txn.llc_missed = true;
    txn.t_llc_miss = now_;
    EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kLlcMiss, now_,
                  txn.id, trackOf(txn), txn.line);
    if (cfg_.record_emc_miss_lines)
        emc_miss_lines_.insert(txn.line);
    if (tryMergeFill(txn))
        return;
    pending_fills_[txn.line];
    routeControl(stopOfCore(slice), stopOfMc(mcOfLine(txn.line)),
                 MsgType::kLlcMissToMc, token, EvType::kMcEnqueue);
}

void
System::handleEmcQueryReply(std::uint64_t token)
{
    Txn *tp = txns_.find(token);
    if (!tp)
        return;
    Txn &txn = *tp;
    lat_total_emc_.sample(static_cast<double>(now_ - txn.t_start));
    emcs_[txn.emc_owner]->memResponse(txn.emc_token, false);
    retireTxn(txn);
}

void
System::handleEmcDirectReply(std::uint64_t token)
{
    auto it = emc_replies_.find(token);
    if (it == emc_replies_.end())
        return;
    const EmcReply reply = it->second;
    emc_replies_.erase(it);
    auto sit = emc_reply_start_.find(token);
    if (sit != emc_reply_start_.end()) {
        lat_total_emc_.sample(static_cast<double>(now_ - sit->second));
        emc_reply_start_.erase(sit);
    }
    emcs_[reply.owner]->memResponse(reply.emc_token, true);
}

// --------------------------------------------------------------------
// Prefetch candidate drain
// --------------------------------------------------------------------

void
System::drainPrefetchers()
{
    for (auto &pf : prefetchers_) {
        PrefetchCandidate cand;
        unsigned budget = 4;
        while (budget > 0 && pf->nextCandidate(cand)) {
            --budget;
            const Addr line = cand.line_addr;
            const unsigned slice = sliceOf(line);
            if (slices_[slice]->peek(line) != nullptr)
                continue;
            if (outstanding_prefetch_lines_.count(line))
                continue;
            if (outstanding_demand_lines_.count(line))
                continue;
            if (pending_fills_.count(line))
                continue;

            Txn txn;
            txn.id = next_txn_++;
            txn.core = cand.core;
            txn.line = line;
            txn.is_prefetch = true;
            txn.t_start = now_;
            txn.t_llc_miss = now_;
            txns_.create(txn.id) = txn;
            if (ck_txns_)
                ck_txns_->onCreate(*check_, txn.id);
            EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kCreated,
                          now_, txn.id, trackOf(txn), txn.line,
                          txnFlags(txn));
            EMC_OBS_POINT(tracer_.get(), obs::TracePoint::kLlcMiss,
                          now_, txn.id, trackOf(txn), txn.line);
            outstanding_prefetch_lines_.insert(line);
            pending_fills_[line];

            routeControl(stopOfCore(slice), stopOfMc(mcOfLine(line)),
                         MsgType::kLlcMissToMc, txn.id,
                         EvType::kMcEnqueue);
        }
    }
}

// --------------------------------------------------------------------
// Main loop
// --------------------------------------------------------------------

void
System::processEvents()
{
    Event ev;
    while (events_.popUpTo(now_, ev)) {
        if (ck_events_) {
            ck_events_->onPop(*check_, now_,
                              static_cast<unsigned>(ev.type), ev.token);
        }
        switch (ev.type) {
          case EvType::kSliceArrive: handleSliceArrive(ev.token); break;
          case EvType::kSliceLookup: handleSliceLookup(ev.token); break;
          case EvType::kSliceStore: handleSliceStore(ev.token); break;
          case EvType::kMcEnqueue: handleMcEnqueue(ev.token); break;
          case EvType::kFillAtSlice: handleFillAtSlice(ev.token); break;
          case EvType::kFillAtCore: handleFillAtCore(ev.token); break;
          case EvType::kChainArrive: handleChainArrive(ev.token); break;
          case EvType::kLsqPopulate: handleLsqPopulate(ev.token); break;
          case EvType::kChainResult: handleChainResult(ev.token); break;
          case EvType::kEmcQueryArrive:
            handleEmcQueryArrive(ev.token);
            break;
          case EvType::kEmcQueryLookup:
            handleEmcQueryLookup(ev.token);
            break;
          case EvType::kEmcQueryReply:
            handleEmcQueryReply(ev.token);
            break;
          case EvType::kEmcDirectReply:
            handleEmcDirectReply(ev.token);
            break;
        }
    }
}

void
System::maybeSnapshotCore(unsigned i)
{
    if (snapshotted_[i])
        return;
    if (cfg_.warmup_uops > 0 && !warmed_up_)
        return;
    if (cores_[i]->retired() < cfg_.target_uops)
        return;
    snapshotted_[i] = true;
    finish_cycle_[i] = now_;
    finish_snapshot_[i] = cores_[i]->stats();
}

bool
System::finished() const
{
    for (unsigned i = 0; i < cfg_.num_cores; ++i) {
        if (!snapshotted_[i])
            return false;
    }
    return true;
}

void
System::tickOnce()
{
    ++now_;
    processEvents();
    for (auto &mc : channels_) {
        for (auto &ch : mc)
            ch->tick(now_);
    }
    for (auto &e : emcs_)
        e->tick();
    control_ring_.tick(now_);
    data_ring_.tick(now_);
    for (unsigned i = 0; i < cfg_.num_cores; ++i) {
        cores_[i]->tick();
        maybeSnapshotCore(i);
    }
    drainPrefetchers();
    if (check_)
        runPerTickChecks();
}

bool
System::allRetired(std::uint64_t target) const
{
    for (unsigned i = 0; i < cfg_.num_cores; ++i) {
        if (cores_[i]->retired() < target)
            return false;
    }
    return true;
}

void
System::resetMeasurement()
{
    for (auto &c : cores_)
        c->resetStats();
    for (auto &mcv : channels_) {
        for (auto &ch : mcv)
            ch->resetStats();
    }
    for (auto &e : emcs_)
        e->resetStats();
    control_ring_.resetStats();
    data_ring_.resetStats();
    traffic_ = TrafficStats{};
    lat_total_core_ = Average{};
    lat_total_emc_ = Average{};
    lat_onchip_core_ = Average{};
    lat_dram_core_ = Average{};
    lat_queue_core_ = Average{};
    lat_queue_emc_ = Average{};
    lat_ring_core_ = Average{};
    lat_llcpath_core_ = Average{};
    hist_lat_core_.reset();
    hist_lat_emc_.reset();
    phases_.reset();
    llc_demand_accesses_ = 0;
    llc_demand_misses_ = 0;
    llc_dep_misses_ = 0;
    dep_misses_covered_by_pf_ = 0;
    demand_hits_on_prefetch_ = 0;
    emc_generated_misses_ = 0;
    emc_bypass_wrong_ = 0;
    llc_total_accesses_ = 0;
    ideal_dep_hits_granted_ = 0;
    hermes_probes_issued_ = 0;
    hermes_probes_suppressed_ = 0;
    hermes_probes_llc_hit_ = 0;
    hermes_probes_useful_ = 0;
    hermes_probes_useless_ = 0;
    hermes_merged_demands_ = 0;
    hermes_saved_cycles_ = 0;
    warmup_end_cycle_ = now_;
}

Cycle
System::quiescentUntil() const
{
    // Any component with per-cycle work forces cycle-by-cycle
    // ticking. Checks are ordered cheapest / most-likely-busy first
    // so the common (busy) case costs a few loads per tick.
    for (const auto &mcv : channels_) {
        for (const auto &ch : mcv) {
            if (ch->busy())
                return 0;
        }
    }
    if (control_ring_.pending() != 0 || data_ring_.pending() != 0)
        return 0;
    for (const auto &pf : prefetchers_) {
        if (pf->queued() != 0)
            return 0;
    }
    for (const auto &e : emcs_) {
        if (!e->idle())
            return 0;
    }

    Cycle t = kNoCycle;
    for (const auto &c : cores_) {
        const Cycle ct = c->quiescentUntil();
        if (ct == 0)
            return 0;
        t = std::min(t, ct);
    }
    // Everything is idle: bound the jump by the next event and by
    // each channel's refresh boundary (an idle channel still
    // refreshes on schedule, and the refresh must fire on its exact
    // cycle).
    t = std::min(t, events_.nextCycle());
    for (const auto &mcv : channels_) {
        for (const auto &ch : mcv)
            t = std::min(t, ch->nextRefresh());
    }
    return t;
}

void
System::maybeSkipIdle()
{
    if (!cycle_skip_enabled_ || now_ < next_skip_check_)
        return;
    const Cycle target = std::min(quiescentUntil(), cfg_.max_cycles);
    if (target <= now_ + 1) {
        // Busy, or the next tick is already the wakeup. Back off so
        // the quiescence scan doesn't tax memory-bound phases where
        // the machine is never idle; skipping is purely an
        // optimization, so deferring the next attempt never changes
        // any stat (only shortens the windows we manage to skip).
        // The backoff doubles per consecutive failure (up to the cap)
        // so phases that never go idle converge to one scan per 4096
        // cycles instead of one per 16, and resets as soon as a skip
        // succeeds so bursty-idle phases keep skipping promptly.
        next_skip_check_ = now_ + skip_backoff_;
        skip_backoff_ = std::min(skip_backoff_ * 2, kSkipBackoffMax);
        return;
    }
    skip_backoff_ = kSkipBackoffMin;
    const std::uint64_t n = target - (now_ + 1);
    now_ += n;
    for (auto &c : cores_)
        c->skipIdleCycles(n);
}

void
System::run()
{
    if (cfg_.warmup_uops > 0 && !warmed_up_) {
        while (!allRetired(cfg_.warmup_uops) && now_ < cfg_.max_cycles) {
            maybeSkipIdle();
            tickOnce();
            if (streamer_ && now_ >= streamer_->nextDue())
                streamer_->snapshot(now_, dump());
            maybeCheckpoint();
        }
        resetMeasurement();
        warmed_up_ = true;
    }
    while (!finished() && now_ < cfg_.max_cycles) {
        maybeSkipIdle();
        tickOnce();
        if (streamer_ && now_ >= streamer_->nextDue())
            streamer_->snapshot(now_, dump());
        maybeCheckpoint();
    }
    if (!finished()) {
        emc_warn("simulation hit max_cycles before all cores finished");
        for (unsigned i = 0; i < cfg_.num_cores; ++i)
            maybeSnapshotCore(i);
    }
    if (check_)
        finalizeChecks();
    if (streamer_)
        streamer_->finish(now_, dump());
    if (tracer_)
        tracer_->finish(now_);
    // Finalize capture files (write the seek index, patch counts) so
    // the recorded traces are complete the moment the run ends.
    for (trace::Recorder *rec : capture_recorders_)
        rec->finish();
}

// --------------------------------------------------------------------
// Statistics dump
// --------------------------------------------------------------------

StatDump
System::dump() const
{
    StatDump d;
    d.put("system.cycles", static_cast<double>(now_));
    d.put("system.num_cores", cfg_.num_cores);

    double ws_ipc_sum = 0;
    EnergyEvents ev;
    for (unsigned i = 0; i < cfg_.num_cores; ++i) {
        const CoreStats &cs =
            snapshotted_[i] ? finish_snapshot_[i] : cores_[i]->stats();
        const std::string p = "core" + std::to_string(i) + ".";
        // cs.cycles counts ticks since the last stats reset, so IPC is
        // measured over the post-warmup window.
        const double cycles = static_cast<double>(cs.cycles);
        const double ipc =
            cycles > 0 ? static_cast<double>(cs.retired_uops) / cycles
                       : 0.0;
        d.put(p + "ipc", ipc);
        d.put(p + "retired", static_cast<double>(cs.retired_uops));
        d.put(p + "cycles", cycles);
        d.put(p + "llc_misses", static_cast<double>(cs.llc_misses));
        d.put(p + "dependent_llc_misses",
              static_cast<double>(cs.dependent_llc_misses));
        d.put(p + "mpki",
              cs.retired_uops
                  ? 1000.0 * cs.llc_misses / cs.retired_uops
                  : 0.0);
        d.put(p + "dep_miss_frac",
              cs.llc_misses ? static_cast<double>(cs.dependent_llc_misses)
                                  / cs.llc_misses
                            : 0.0);
        d.put(p + "dep_distance", cs.dep_distance.mean());
        d.put(p + "full_window_stalls",
              static_cast<double>(cs.full_window_stall_cycles));
        d.put(p + "chains_generated",
              static_cast<double>(cs.chains_generated));
        d.put(p + "chain_uops_avg",
              cs.chains_generated
                  ? static_cast<double>(cs.chain_uops_total)
                        / cs.chains_generated
                  : 0.0);
        d.put(p + "chain_live_ins_avg",
              cs.chains_generated
                  ? static_cast<double>(cs.chain_live_ins_total)
                        / cs.chains_generated
                  : 0.0);
        d.put(p + "branches", static_cast<double>(cs.branches));
        d.put(p + "mispredicts", static_cast<double>(cs.mispredicts));
        ws_ipc_sum += ipc;

        ev.uops_executed += cs.uops_executed;
        ev.fp_uops += cs.fp_uops_executed;
        ev.cdb_broadcasts += cs.cdb_broadcasts;
        ev.rob_reads += cs.rob_chain_reads;
        ev.rrt_accesses += cs.rrt_reads + cs.rrt_writes;
        ev.l1_accesses += cs.l1d_hits + cs.l1d_misses;
    }
    d.put("system.ipc_sum", ws_ipc_sum);

    // LLC aggregates.
    d.put("llc.demand_accesses",
          static_cast<double>(llc_demand_accesses_));
    d.put("llc.demand_misses", static_cast<double>(llc_demand_misses_));
    d.put("llc.dep_misses", static_cast<double>(llc_dep_misses_));
    d.put("llc.dep_miss_frac",
          llc_demand_misses_
              ? static_cast<double>(llc_dep_misses_) / llc_demand_misses_
              : 0.0);
    d.put("llc.demand_hits_on_prefetch",
          static_cast<double>(demand_hits_on_prefetch_));
    d.put("llc.dep_misses_covered_by_pf",
          static_cast<double>(dep_misses_covered_by_pf_));
    d.put("llc.ideal_dep_hits_granted",
          static_cast<double>(ideal_dep_hits_granted_));
    d.put("prefetch.degree", fdp_.degree());
    d.put("prefetch.issued", static_cast<double>(fdp_.totalIssued()));
    d.put("prefetch.useful", static_cast<double>(fdp_.totalUseful()));
    d.put("prefetch.late", static_cast<double>(fdp_.totalLate()));
    d.put("prefetch.polluted",
          static_cast<double>(fdp_.totalPolluted()));
    d.put("prefetch.accuracy", fdp_.accuracy());

    // Miss-latency distribution percentiles (25-cycle buckets).
    auto percentile = [](const Histogram &h, double q) {
        const std::uint64_t want = static_cast<std::uint64_t>(
            q * static_cast<double>(h.samples()));
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < h.buckets(); ++b) {
            seen += h.bucket(b);
            if (seen >= want)
                return (static_cast<double>(b) + 0.5) * h.bucketWidth();
        }
        return static_cast<double>(h.buckets()) * h.bucketWidth();
    };
    if (hist_lat_core_.samples() > 0) {
        d.put("lat.core_p50", percentile(hist_lat_core_, 0.50));
        d.put("lat.core_p90", percentile(hist_lat_core_, 0.90));
        d.put("lat.core_p99", percentile(hist_lat_core_, 0.99));
    }
    if (hist_lat_emc_.samples() > 0) {
        d.put("lat.emc_p50", percentile(hist_lat_emc_, 0.50));
        d.put("lat.emc_p90", percentile(hist_lat_emc_, 0.90));
        d.put("lat.emc_p99", percentile(hist_lat_emc_, 0.99));
    }

    // DRAM aggregates.
    std::uint64_t row_hits = 0, row_empty = 0, row_conf = 0;
    std::uint64_t reads = 0, writes = 0, refreshes = 0;
    double queue_wait = 0, service = 0;
    std::uint64_t read_samples = 0;
    for (const auto &mcv : channels_) {
        for (const auto &ch : mcv) {
            const DramChannelStats &cs = ch->stats();
            row_hits += cs.row_hits;
            row_empty += cs.row_empty;
            row_conf += cs.row_conflicts;
            reads += cs.reads;
            writes += cs.writes;
            refreshes += cs.refreshes;
            queue_wait += cs.total_queue_wait;
            service += cs.total_service;
            read_samples += cs.read_samples;
        }
    }
    d.put("dram.reads", static_cast<double>(reads));
    d.put("dram.writes", static_cast<double>(writes));
    d.put("dram.row_hits", static_cast<double>(row_hits));
    d.put("dram.row_empty", static_cast<double>(row_empty));
    d.put("dram.row_conflicts", static_cast<double>(row_conf));
    const std::uint64_t row_total = row_hits + row_empty + row_conf;
    d.put("dram.row_conflict_rate",
          row_total ? static_cast<double>(row_conf) / row_total : 0.0);
    d.put("dram.avg_queue_wait",
          read_samples ? queue_wait / read_samples : 0.0);
    d.put("dram.avg_service",
          read_samples ? service / read_samples : 0.0);

    // Traffic by origin.
    d.put("traffic.core_demand",
          static_cast<double>(traffic_.core_demand));
    d.put("traffic.emc_demand", static_cast<double>(traffic_.emc_demand));
    d.put("traffic.prefetch", static_cast<double>(traffic_.prefetch));
    d.put("traffic.writeback", static_cast<double>(traffic_.writeback));
    d.put("traffic.hermes", static_cast<double>(traffic_.hermes));
    d.put("traffic.total", static_cast<double>(traffic_.total()));

    // Latency attribution.
    d.put("lat.core_total", lat_total_core_.mean());
    d.put("lat.core_onchip", lat_onchip_core_.mean());
    d.put("lat.core_dram", lat_dram_core_.mean());
    d.put("lat.core_queue", lat_queue_core_.mean());
    d.put("lat.core_ring", lat_ring_core_.mean());
    d.put("lat.core_llcpath", lat_llcpath_core_.mean());
    d.put("lat.emc_total", lat_total_emc_.mean());
    d.put("lat.emc_queue", lat_queue_emc_.mean());
    d.put("lat.emc_samples",
          static_cast<double>(lat_total_emc_.samples()));
    d.put("lat.core_samples",
          static_cast<double>(lat_total_core_.samples()));

    // Phase-latency decomposition (DESIGN.md §6; always on).
    phases_.exportTo(d);

    // EMC aggregates.
    d.put("emc.generated_misses",
          static_cast<double>(emc_generated_misses_));
    const double all_misses = static_cast<double>(llc_demand_misses_)
                              + static_cast<double>(emc_generated_misses_);
    d.put("emc.miss_fraction",
          all_misses > 0 ? emc_generated_misses_ / all_misses : 0.0);
    d.put("emc.bypass_wrong", static_cast<double>(emc_bypass_wrong_));
    if (!emcs_.empty()) {
        EmcStats agg;
        double uops_per_chain = 0, exec_cycles = 0;
        std::uint64_t upc_samples = 0, exec_samples = 0;
        for (const auto &e : emcs_) {
            const EmcStats &s = e->stats();
            agg.chains_accepted += s.chains_accepted;
            agg.chains_completed += s.chains_completed;
            agg.chains_rejected += s.chains_rejected;
            agg.halts_tlb += s.halts_tlb;
            agg.halts_mispredict += s.halts_mispredict;
            agg.halts_disambiguation += s.halts_disambiguation;
            agg.uops_executed += s.uops_executed;
            agg.loads_executed += s.loads_executed;
            agg.stores_executed += s.stores_executed;
            agg.dcache_hits += s.dcache_hits;
            agg.dcache_misses += s.dcache_misses;
            agg.lsq_forwards += s.lsq_forwards;
            agg.direct_dram_loads += s.direct_dram_loads;
            agg.llc_query_loads += s.llc_query_loads;
            agg.live_outs_total += s.live_outs_total;
            uops_per_chain += s.uops_per_chain.total();
            upc_samples += s.uops_per_chain.samples();
            exec_cycles += s.chain_exec_cycles.total();
            exec_samples += s.chain_exec_cycles.samples();
        }
        d.put("emc.chains_accepted",
              static_cast<double>(agg.chains_accepted));
        d.put("emc.chains_completed",
              static_cast<double>(agg.chains_completed));
        d.put("emc.chains_rejected",
              static_cast<double>(agg.chains_rejected));
        d.put("emc.halts_tlb", static_cast<double>(agg.halts_tlb));
        d.put("emc.halts_mispredict",
              static_cast<double>(agg.halts_mispredict));
        d.put("emc.halts_disambiguation",
              static_cast<double>(agg.halts_disambiguation));
        d.put("emc.uops_executed",
              static_cast<double>(agg.uops_executed));
        d.put("emc.loads", static_cast<double>(agg.loads_executed));
        d.put("emc.stores", static_cast<double>(agg.stores_executed));
        d.put("emc.dcache_hits", static_cast<double>(agg.dcache_hits));
        d.put("emc.dcache_misses",
              static_cast<double>(agg.dcache_misses));
        const double dc_total = static_cast<double>(agg.dcache_hits)
                                + static_cast<double>(agg.dcache_misses);
        d.put("emc.dcache_hit_rate",
              dc_total > 0 ? agg.dcache_hits / dc_total : 0.0);
        d.put("emc.lsq_forwards", static_cast<double>(agg.lsq_forwards));
        d.put("emc.direct_dram_loads",
              static_cast<double>(agg.direct_dram_loads));
        d.put("emc.llc_query_loads",
              static_cast<double>(agg.llc_query_loads));
        d.put("emc.live_outs", static_cast<double>(agg.live_outs_total));
        d.put("emc.uops_per_chain",
              upc_samples ? uops_per_chain / upc_samples : 0.0);
        d.put("emc.chain_exec_cycles",
              exec_samples ? exec_cycles / exec_samples : 0.0);

        ev.emc_uops = agg.uops_executed;
        ev.emc_dcache_accesses = agg.dcache_hits + agg.dcache_misses;

        // Off-chip predictor quality at the EMC (src/pred; DESIGN.md
        // §13). Aggregated over EMCs like the emc.* block above.
        pred::PredStats ps;
        for (const auto &e : emcs_) {
            const pred::PredStats &s = e->predictor().stats();
            ps.predictions += s.predictions;
            ps.predicted_offchip += s.predicted_offchip;
            ps.trainings += s.trainings;
            ps.true_pos += s.true_pos;
            ps.false_pos += s.false_pos;
            ps.true_neg += s.true_neg;
            ps.false_neg += s.false_neg;
        }
        d.put("pred.emc.engine",
              static_cast<double>(
                  static_cast<unsigned>(emcs_[0]->predictor().kind())));
        d.put("pred.emc.predictions",
              static_cast<double>(ps.predictions));
        d.put("pred.emc.predicted_offchip",
              static_cast<double>(ps.predicted_offchip));
        d.put("pred.emc.trainings", static_cast<double>(ps.trainings));
        d.put("pred.emc.true_pos", static_cast<double>(ps.true_pos));
        d.put("pred.emc.false_pos", static_cast<double>(ps.false_pos));
        d.put("pred.emc.true_neg", static_cast<double>(ps.true_neg));
        d.put("pred.emc.false_neg", static_cast<double>(ps.false_neg));
        d.put("pred.emc.accuracy", ps.accuracy());
        d.put("pred.emc.coverage", ps.coverage());
        // Each correct LLC bypass skips the slice lookup on the miss
        // path — the latency win the 3-bit table buys (Section 4.3).
        const double bypass_right =
            static_cast<double>(agg.direct_dram_loads)
            - static_cast<double>(emc_bypass_wrong_);
        d.put("pred.emc.bypass_cycles_saved",
              std::max(0.0, bypass_right)
                  * static_cast<double>(cfg_.llc_latency));
    }

    // Core-side Hermes probes (DESIGN.md §13).
    if (cfg_.core.hermes_enabled) {
        pred::PredStats ps;
        for (const auto &c : cores_) {
            if (const pred::OffchipPredictor *hp = c->hermesPredictor()) {
                const pred::PredStats &s = hp->stats();
                ps.predictions += s.predictions;
                ps.predicted_offchip += s.predicted_offchip;
                ps.trainings += s.trainings;
                ps.true_pos += s.true_pos;
                ps.false_pos += s.false_pos;
                ps.true_neg += s.true_neg;
                ps.false_neg += s.false_neg;
            }
        }
        d.put("pred.hermes.predictions",
              static_cast<double>(ps.predictions));
        d.put("pred.hermes.predicted_offchip",
              static_cast<double>(ps.predicted_offchip));
        d.put("pred.hermes.trainings",
              static_cast<double>(ps.trainings));
        d.put("pred.hermes.true_pos", static_cast<double>(ps.true_pos));
        d.put("pred.hermes.false_pos",
              static_cast<double>(ps.false_pos));
        d.put("pred.hermes.true_neg", static_cast<double>(ps.true_neg));
        d.put("pred.hermes.false_neg",
              static_cast<double>(ps.false_neg));
        d.put("pred.hermes.accuracy", ps.accuracy());
        d.put("pred.hermes.coverage", ps.coverage());
        d.put("hermes.probes_issued",
              static_cast<double>(hermes_probes_issued_));
        d.put("hermes.probes_suppressed",
              static_cast<double>(hermes_probes_suppressed_));
        d.put("hermes.probes_llc_hit",
              static_cast<double>(hermes_probes_llc_hit_));
        d.put("hermes.probes_useful",
              static_cast<double>(hermes_probes_useful_));
        d.put("hermes.probes_useless",
              static_cast<double>(hermes_probes_useless_));
        d.put("hermes.merged_demands",
              static_cast<double>(hermes_merged_demands_));
        d.put("hermes.saved_cycles",
              static_cast<double>(hermes_saved_cycles_));
        d.put("hermes.avg_head_start",
              hermes_merged_demands_
                  ? static_cast<double>(hermes_saved_cycles_)
                        / hermes_merged_demands_
                  : 0.0);
    }

    // Ring aggregates (Section 6.5).
    const RingStats &cr = control_ring_.stats();
    const RingStats &dr = data_ring_.stats();
    d.put("ring.control_msgs", static_cast<double>(cr.control_msgs));
    d.put("ring.data_msgs", static_cast<double>(dr.data_msgs));
    d.put("ring.control_emc_msgs",
          static_cast<double>(cr.control_emc_msgs));
    d.put("ring.data_emc_msgs", static_cast<double>(dr.data_emc_msgs));
    d.put("ring.avg_latency",
          (cr.delivered + dr.delivered)
              ? (cr.total_latency + dr.total_latency)
                    / (cr.delivered + dr.delivered)
              : 0.0);

    // Energy.
    ev.llc_accesses = llc_total_accesses_;
    ev.ring_control_hops = cr.control_msgs * 2;  // avg hops charged
    ev.ring_data_hops = dr.data_msgs * 2;
    ev.dram_activates = row_empty + row_conf;
    ev.dram_bursts = reads + writes;
    ev.dram_refreshes = refreshes;
    ev.total_cycles = now_ - warmup_end_cycle_;

    EnergyModel model(cfg_.energy, cfg_.num_cores,
                      static_cast<double>(cfg_.llc_slice_bytes)
                          * cfg_.num_cores / (1 << 20),
                      cfg_.dram.channels, cfg_.emc_enabled, cfg_.num_mcs);
    const EnergyBreakdown eb = model.compute(ev);
    d.put("energy.core_dynamic_mj", eb.core_dynamic_mj);
    d.put("energy.uncore_dynamic_mj", eb.uncore_dynamic_mj);
    d.put("energy.dram_dynamic_mj", eb.dram_dynamic_mj);
    d.put("energy.emc_dynamic_mj", eb.emc_dynamic_mj);
    d.put("energy.static_mj", eb.static_mj);
    d.put("energy.total_mj", eb.totalMj());

    // Sampled-simulation summary (populated by runSampled()).
    if (sampled_.windows > 0) {
        d.put("sampled.windows", static_cast<double>(sampled_.windows));
        d.put("sampled.ipc_mean", sampled_.ipc_mean);
        d.put("sampled.ipc_ci95", sampled_.ipc_ci95);
        d.put("sampled.dep_lat_mean", sampled_.dep_lat_mean);
        d.put("sampled.dep_lat_ci95", sampled_.dep_lat_ci95);
    }

    return d;
}

} // namespace emc
