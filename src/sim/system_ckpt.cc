/**
 * @file
 * System-level checkpoint/restore (DESIGN.md §7).
 *
 * Everything here walks state the components already know how to
 * serialize (their ser()/ckptSer()/ckptSave() hooks); this file owns
 * only the section layout, the two checkpoint levels, the warmup
 * drain and the checker reseeding that makes a restored machine pass
 * the full invariant suite.
 */

#include "sim/system.hh"

#include "common/log.hh"

namespace emc
{

// --------------------------------------------------------------------
// Payload layout
// --------------------------------------------------------------------

void
System::ckptPayload(ckpt::Ar &ar, ckpt::Level level,
                    std::vector<ckpt::Section> *toc)
{
    // Each section opens with an 8-byte marker so a load that drifts
    // out of alignment fails at the next boundary with a clear offset
    // instead of deserializing garbage.
    auto section = [&](const char *name, auto &&body) {
        ckpt::Section s;
        s.name = name;
        s.offset = ar.pos();
        ar.marker(name);
        body();
        s.length = ar.pos() - s.offset;
        if (toc)
            toc->push_back(s);
    };

    auto workload = [&] {
        for (auto &m : memories_)
            ar.io(*m);
        for (auto &pt : page_tables_)
            ar.io(*pt);
        for (auto &p : programs_)
            p->ckptSer(ar);
    };

    if (level == ckpt::Level::kWarmup) {
        // Warmup level: only state meaningful across differing
        // EMC/prefetcher/DRAM configurations. Taken at a drained
        // quiescent point, so no transaction, event, ring or chain
        // state exists to capture.
        section("meta", [&] { ar.io(benchmark_names_); });
        section("workload", workload);
        section("warmcore", [&] {
            for (auto &c : cores_)
                c->serWarm(ar);
        });
        section("llc", [&] {
            for (auto &sl : slices_)
                ar.io(*sl);
        });
        return;
    }

    section("meta", [&] {
        ar.io(now_);
        ar.io(warmed_up_);
        ar.io(warmup_end_cycle_);
        ar.io(next_skip_check_);
        ar.io(skip_backoff_);
        ar.io(next_deep_check_);
        ar.io(traffic_);
        ar.io(finish_cycle_);
        ar.io(finish_snapshot_);
        ar.io(snapshotted_);
        ar.io(emc_miss_lines_);
        ar.io(prefetch_lines_);
        ar.io(lat_total_core_);
        ar.io(lat_total_emc_);
        ar.io(lat_onchip_core_);
        ar.io(lat_dram_core_);
        ar.io(lat_queue_core_);
        ar.io(lat_queue_emc_);
        ar.io(lat_ring_core_);
        ar.io(lat_llcpath_core_);
        ar.io(hist_lat_core_);
        ar.io(hist_lat_emc_);
        ar.io(phases_);
        ar.io(llc_demand_accesses_);
        ar.io(llc_demand_misses_);
        ar.io(llc_dep_misses_);
        ar.io(dep_misses_covered_by_pf_);
        ar.io(demand_hits_on_prefetch_);
        ar.io(emc_generated_misses_);
        ar.io(emc_bypass_wrong_);
        ar.io(llc_total_accesses_);
        ar.io(ideal_dep_hits_granted_);
        ar.io(hermes_probe_lines_);
        ar.io(hermes_probes_issued_);
        ar.io(hermes_probes_suppressed_);
        ar.io(hermes_probes_llc_hit_);
        ar.io(hermes_probes_useful_);
        ar.io(hermes_probes_useless_);
        ar.io(hermes_merged_demands_);
        ar.io(hermes_saved_cycles_);
    });
    section("workload", workload);
    section("cores", [&] {
        for (auto &c : cores_)
            ar.io(*c);
    });
    section("llc", [&] {
        for (auto &sl : slices_)
            ar.io(*sl);
        ar.io(slice_next_free_);
    });
    section("dram", [&] {
        for (auto &mcv : channels_) {
            for (auto &ch : mcv)
                ar.io(*ch);
        }
    });
    section("ring", [&] {
        ar.io(control_ring_);
        ar.io(data_ring_);
    });
    section("emc", [&] {
        for (auto &e : emcs_)
            ar.io(*e);
    });
    section("prefetch", [&] {
        for (auto &pf : prefetchers_)
            pf->ckptSer(ar);
        ar.io(fdp_);
        ar.io(outstanding_prefetch_lines_);
    });
    section("txns", [&] {
        ar.io(next_txn_);
        if (ar.saving()) {
            txns_.ckptSave(ar, [](ckpt::Ar &a, Txn &t) { a.io(t); });
        } else {
            txns_.ckptLoad(ar, [&](ckpt::Ar &a, Txn &t) {
                a.io(t);
                if (ck_txns_) {
                    // Reseed the lifecycle checker at the stage the
                    // transaction's own timestamps prove it reached
                    // (t_fill is set for merged/EMC fills whose onFill
                    // hook is still pending; filled->filled is legal).
                    unsigned stage = 0;
                    if (t.t_fill != kNoCycle)
                        stage = 3;
                    else if (t.t_dram_data != kNoCycle)
                        stage = 2;
                    else if (t.t_mc_enqueue != kNoCycle)
                        stage = 1;
                    ck_txns_->reseed(t.id, stage);
                }
            });
            if (ck_txns_)
                ck_txns_->setLastCreated(next_txn_ - 1);
        }
        ar.io(outstanding_demand_lines_);
        ar.io(pending_fills_);
    });
    section("chains", [&] {
        ar.io(next_msg_id_);
        ar.io(chains_in_flight_);
        ar.io(results_in_flight_);
        ar.io(lsq_msgs_);
        ar.io(emc_replies_);
        ar.io(emc_reply_start_);
    });
    section("events", [&] {
        if (ar.saving()) {
            events_.ckptSave(ar, [](ckpt::Ar &a, Cycle, Event &ev) {
                a.io(ev);
            });
        } else {
            events_.ckptLoad(ar, [&](ckpt::Ar &a, Cycle c, Event &ev) {
                a.io(ev);
                // Rebuild the event-queue checker's mirror. Every
                // surviving event was scheduled after the restored
                // now_, so the never-in-the-past check holds.
                if (ck_events_) {
                    ck_events_->onPush(*check_, c, c, now_,
                                       static_cast<unsigned>(ev.type),
                                       ev.token);
                }
            });
        }
    });

    if (ar.loading() && ck_retire_) {
        for (unsigned i = 0; i < cfg_.num_cores; ++i)
            ck_retire_->reseed(i, cores_[i]->ckptLastRetiredSeq());
    }
}

// --------------------------------------------------------------------
// Save
// --------------------------------------------------------------------

void
System::ckptRefuseIfObserved(const char *what) const
{
    // A streamer on a borrowed FILE (the sweep worker pipe) is exempt:
    // that stream is declared best-effort, so resumed runs may repeat
    // interval lines instead of blocking checkpoints.
    if (tracer_ || (streamer_ && streamer_->ownsFile())) {
        throw ckpt::Error(
            std::string(what)
            + " refused: a tracer or stat streamer is attached and "
              "its file offsets are not restorable");
    }
    if (!cfg_.capture_prefix.empty()) {
        throw ckpt::Error(std::string(what)
                          + " refused: trace capture is active");
    }
}

std::vector<std::uint8_t>
System::saveCheckpointBytes(ckpt::Level level)
{
    if (level == ckpt::Level::kWarmup)
        return warmupCheckpointBytes();
    ckptRefuseIfObserved("checkpoint save");
    ckpt::Ar ar = ckpt::Ar::saver();
    ckpt::Header h;
    h.level = ckpt::Level::kFull;
    h.config_hash = ckpt::fullConfigHash(cfg_, benchmark_names_);
    ckptPayload(ar, ckpt::Level::kFull, &h.sections);
    return ckpt::assemble(h, ar.takeBytes());
}

void
System::saveCheckpoint(const std::string &path, ckpt::Level level)
{
    ckpt::writeFile(path, saveCheckpointBytes(level), ckpt_compress_);
}

void
System::ckptDrainForWarmup()
{
    drainInFlight();
}

void
System::drainInFlight()
{
    for (auto &c : cores_)
        c->pauseFetch(true);

    auto quiescent = [&] {
        for (const auto &c : cores_) {
            if (!c->ckptQuiescent())
                return false;
        }
        if (txns_.size() != 0 || events_.size() != 0)
            return false;
        if (control_ring_.pending() != 0 || data_ring_.pending() != 0)
            return false;
        for (const auto &mcv : channels_) {
            for (const auto &ch : mcv) {
                if (ch->busy())
                    return false;
            }
        }
        for (const auto &e : emcs_) {
            if (!e->idle())
                return false;
        }
        for (const auto &pf : prefetchers_) {
            if (pf->queued() != 0)
                return false;
        }
        return chains_in_flight_.empty() && results_in_flight_.empty()
               && lsq_msgs_.empty() && emc_replies_.empty()
               && pending_fills_.empty()
               && outstanding_demand_lines_.empty()
               && outstanding_prefetch_lines_.empty();
    };

    // Every in-flight structure has bounded forward progress once
    // fetch is gated, so the drain is short; the cap turns a machine
    // wedge (a simulator bug) into a diagnosable error instead of a
    // hang.
    const Cycle limit = now_ + 2'000'000;
    while (!quiescent()) {
        if (now_ >= limit) {
            throw ckpt::Error("machine failed to drain to a quiescent "
                              "point for a warmup checkpoint");
        }
        tickOnce();
    }
}

std::vector<std::uint8_t>
System::warmupCheckpointBytes()
{
    ckptRefuseIfObserved("warmup checkpoint");
    if (cfg_.warmup_uops == 0) {
        throw ckpt::Error(
            "warmup checkpoint needs cfg.warmup_uops > 0");
    }
    if (warmed_up_) {
        throw ckpt::Error("warmup checkpoint must be taken before "
                          "measurement starts");
    }

    // Finish (or run) the warmup phase, then drain to quiescence.
    // This perturbs *this* System's subsequent timing (extra drain
    // cycles, gated fetch); savers are expected to be dedicated
    // warmup runs that are discarded afterwards.
    while (!allRetired(cfg_.warmup_uops) && now_ < cfg_.max_cycles) {
        maybeSkipIdle();
        tickOnce();
    }
    if (!allRetired(cfg_.warmup_uops))
        throw ckpt::Error("hit max_cycles before warmup completed");
    ckptDrainForWarmup();

    std::vector<std::uint8_t> bytes = warmupImageBytes();
    for (auto &c : cores_)
        c->pauseFetch(false);
    return bytes;
}

std::vector<std::uint8_t>
System::warmupImageBytes()
{
    ckpt::Ar ar = ckpt::Ar::saver();
    ckpt::Header h;
    h.level = ckpt::Level::kWarmup;
    h.config_hash = ckpt::warmupConfigHash(cfg_, benchmark_names_);
    ckptPayload(ar, ckpt::Level::kWarmup, &h.sections);
    return ckpt::assemble(h, ar.takeBytes());
}

// --------------------------------------------------------------------
// Restore
// --------------------------------------------------------------------

void
System::restoreCheckpointBytes(const std::vector<std::uint8_t> &bytes)
{
    ckptRefuseIfObserved("checkpoint restore");
    if (now_ != 0) {
        throw ckpt::Error(
            "checkpoint restore target has already run; restore into "
            "a freshly constructed System");
    }

    std::size_t payload_off = 0;
    const ckpt::Header h = ckpt::parseHeader(bytes, &payload_off);
    if (h.level == ckpt::Level::kFull) {
        if (h.config_hash != ckpt::fullConfigHash(cfg_, benchmark_names_)) {
            throw ckpt::Error(
                "full checkpoint configuration mismatch: a full-level "
                "restore requires an identically configured System");
        }
    } else {
        if (h.config_hash
            != ckpt::warmupConfigHash(cfg_, benchmark_names_)) {
            throw ckpt::Error(
                "warmup checkpoint incompatible: core count, LLC/L1/TLB "
                "geometry, seed or benchmarks differ");
        }
    }

    // parseHeader above already CRC-validated the payload; borrow the
    // payload bytes in place instead of re-parsing and copying ~100 MB
    // (the bulk of restore wall time on big images).
    ckpt::Ar ar = ckpt::Ar::loaderView(bytes.data() + payload_off,
                                       bytes.size() - payload_off);
    ckptPayload(ar, h.level, nullptr);
    if (!ar.exhausted())
        throw ckpt::Error("checkpoint payload has trailing bytes");

    if (h.level == ckpt::Level::kWarmup) {
        // The machine is warm and quiescent: start the measured phase
        // exactly as run() would after an in-process warmup.
        warmed_up_ = true;
        resetMeasurement();
    }
    if (check_)
        runDeepChecks();
}

void
System::restoreCheckpoint(const std::string &path)
{
    restoreCheckpointBytes(ckpt::readFile(path));
}

// --------------------------------------------------------------------
// In-run triggers
// --------------------------------------------------------------------

void
System::scheduleCheckpoint(const std::string &path, Cycle at,
                           ckpt::Level level)
{
    ckpt_path_ = path;
    ckpt_at_ = at;
    ckpt_level_ = level;
}

void
System::setAutosave(const std::string &path, Cycle interval)
{
    if (interval == 0) {
        autosave_path_.clear();
        autosave_interval_ = 0;
        next_autosave_ = kNoCycle;
        return;
    }
    autosave_path_ = path;
    autosave_sink_ = nullptr;
    autosave_interval_ = interval;
    next_autosave_ = now_ + interval;
}

void
System::setAutosave(
    std::function<void(std::vector<std::uint8_t> &&)> sink,
    Cycle interval)
{
    if (interval == 0 || !sink) {
        autosave_path_.clear();
        autosave_sink_ = nullptr;
        autosave_interval_ = 0;
        next_autosave_ = kNoCycle;
        return;
    }
    autosave_path_.clear();
    autosave_sink_ = std::move(sink);
    autosave_interval_ = interval;
    next_autosave_ = now_ + interval;
}

void
System::maybeCheckpoint()
{
    if (!ckpt_path_.empty() && now_ >= ckpt_at_) {
        const std::string path = ckpt_path_;
        ckpt_path_.clear();
        ckpt_at_ = kNoCycle;
        saveCheckpoint(path, ckpt_level_);
    }
    if (!autosave_path_.empty() && now_ >= next_autosave_) {
        saveCheckpoint(autosave_path_, ckpt::Level::kFull);
        next_autosave_ = now_ + autosave_interval_;
    }
    if (autosave_sink_ && now_ >= next_autosave_) {
        autosave_sink_(saveCheckpointBytes(ckpt::Level::kFull));
        next_autosave_ = now_ + autosave_interval_;
    }
}

} // namespace emc
