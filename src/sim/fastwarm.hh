/**
 * @file
 * Fast-forward functional warming + SMARTS-style interval sampling
 * (DESIGN.md §8).
 *
 * The fast path consumes the same workload uop streams as detailed
 * simulation but updates only *functional* and *warmable* state:
 * architectural registers, branch-predictor tables, TLB residency,
 * L1/LLC tags+metadata and the EMC miss predictor. No ROB, MSHR, ring,
 * DRAM or event-queue state is touched and no cycle passes — which is
 * what buys the >=10x throughput (bench/micro_fastwarm) and what the
 * fastwarm-timing lint rule enforces.
 *
 * The structs here parameterize System::fastForward()/runSampled()
 * (defined in fastwarm.cc) and carry the validation-mode comparison
 * between a fast-warmed and a detailed-warmed machine.
 */

#ifndef EMC_SIM_FASTWARM_HH
#define EMC_SIM_FASTWARM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace emc
{

class System;

/** SMARTS-style sampling parameters (per-core uop counts). */
struct SampleParams
{
    /// Total uops per core per window (detailed prefix + fast-forward
    /// remainder).
    std::uint64_t period = 10000;
    /// Uops per core simulated in detail at the head of each window.
    std::uint64_t detail = 1000;
};

/** Per-window measurements and their 95% confidence intervals. */
struct SampledStats
{
    std::uint64_t windows = 0;

    /// Aggregate IPC (sum of per-core retired / window cycles) of each
    /// detailed window, and its mean +- half-width.
    std::vector<double> window_ipc;
    double ipc_mean = 0;
    double ipc_ci95 = 0;

    /// Mean dependent-miss end-to-end latency of each detailed window
    /// (windows with no dependent miss contribute no sample).
    std::vector<double> window_dep_lat;
    double dep_lat_mean = 0;
    double dep_lat_ci95 = 0;
};

/**
 * Validation-mode comparison of the warmable state of two machines
 * (DESIGN.md §8). Physical frame assignment is first-touch-ordered and
 * the two paths touch pages in different orders, so cache and TLB
 * contents are compared in *virtual* space via each core's page table;
 * the branch predictor sees the identical dispatched prefix in both
 * paths and must match bit-for-bit.
 */
struct WarmStateDiff
{
    bool bp_equal = false;      ///< predictor images byte-identical
    double tlb_jaccard = 0;     ///< resident-vpage set overlap
    double l1_jaccard = 0;      ///< (core, virtual line) set overlap
    double llc_jaccard = 0;     ///< (core, virtual line) set overlap
    std::size_t l1_lines_a = 0, l1_lines_b = 0;
    std::size_t llc_lines_a = 0, llc_lines_b = 0;
};

/**
 * Compare the warmable state of @p a (e.g. detailed-warmed) and @p b
 * (e.g. fast-warmed). Both must have the same core count and geometry.
 */
WarmStateDiff compareWarmState(const System &a, const System &b);

/** Mean of @p xs (0 when empty). */
double sampleMean(const std::vector<double> &xs);

/**
 * Half-width of the 95% confidence interval of the mean of @p xs
 * (1.96 * s / sqrt(n); 0 when n < 2).
 */
double ciHalfWidth95(const std::vector<double> &xs);

} // namespace emc

#endif // EMC_SIM_FASTWARM_HH
