/**
 * @file
 * The System assembles the whole chip of Figure 7 / Figure 11: cores
 * with their LLC slices on a bidirectional ring, one or two memory
 * controllers (each optionally enhanced with an EMC compute engine),
 * DDR3 channels behind them, and the prefetchers that train at the
 * LLC. It implements CorePort (and a per-EMC port adapter), owns the
 * global clock, and produces the StatDump the benches consume.
 */

#ifndef EMC_SIM_SYSTEM_HH
#define EMC_SIM_SYSTEM_HH

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/checkers.hh"
#include "ckpt/ckpt.hh"
#include "common/slab_pool.hh"
#include "obs/obs.hh"
#include "obs/phase.hh"
#include "obs/stream.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "emc/emc.hh"
#include "mem/functional_memory.hh"
#include "prefetch/prefetcher.hh"
#include "ring/ring.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fastwarm.hh"
#include "isa/trace_io.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"
#include "workload/synthetic.hh"

namespace emc
{

/** Per-origin DRAM traffic counters (bandwidth accounting, §6.6). */
struct TrafficStats
{
    std::uint64_t core_demand = 0;
    std::uint64_t emc_demand = 0;
    std::uint64_t prefetch = 0;
    std::uint64_t writeback = 0;
    std::uint64_t hermes = 0;   ///< core-side speculative DRAM probes

    std::uint64_t
    total() const
    {
        return core_demand + emc_demand + prefetch + writeback + hermes;
    }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(core_demand);
        ar.io(emc_demand);
        ar.io(prefetch);
        ar.io(writeback);
        ar.io(hermes);
    }
};

/** The simulated chip. */
class System : public CorePort
{
  public:
    /**
     * @param cfg system configuration
     * @param benchmarks one profile name per core
     */
    System(const SystemConfig &cfg,
           const std::vector<std::string> &benchmarks);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run until every core reaches its uop target (or max_cycles). */
    void run();

    // ---- functional warming + sampling (DESIGN.md §8; fastwarm.cc) --

    /**
     * Fast-forward every core by up to @p uops_per_core uops through
     * the functional-warming path: architectural registers, branch
     * predictors, TLBs, L1s, LLC and the EMC miss predictors advance;
     * no cycle passes and no timing state is touched. The machine must
     * be quiescent (freshly constructed, or drained between sample
     * windows). @return uops actually consumed, summed over cores.
     */
    std::uint64_t fastForward(std::uint64_t uops_per_core);

    /**
     * Per-core variant: core i consumes up to @p uops_per_core[i]
     * uops. Validation mode uses this to replay the exact dispatched
     * count of a detailed warmup, which can differ across cores.
     */
    std::uint64_t
    fastForward(const std::vector<std::uint64_t> &uops_per_core);

    /**
     * Produce a warmup-level checkpoint image by fast-forwarding
     * cfg.warmup_uops uops per core instead of running detailed
     * warmup. Identical container format/compatibility rules to
     * warmupCheckpointBytes(); must be called on a fresh System.
     */
    std::vector<std::uint8_t> fastwarmCheckpointBytes();

    /**
     * SMARTS-style sampled run: after (fast) warmup, alternate
     * detailed windows of p.detail uops per core with fast-forwarded
     * gaps of p.period - p.detail uops per core, until cfg.target_uops
     * total uops per core are covered. Per-window aggregate IPC and
     * dependent-miss latency are accumulated and reported with 95%
     * confidence intervals (also exported as `sampled.*` stats).
     */
    SampledStats runSampled(const SampleParams &p);

    /** Results of the last runSampled() (windows == 0 before one). */
    const SampledStats &sampled() const { return sampled_; }

    /** Advance a single cycle (tests). */
    void tickOnce();

    /** Collect every statistic the benches need. */
    StatDump dump() const;

    // ---- CorePort ----
    bool requestLine(CoreId core, Addr paddr_line, Addr pc,
                     bool for_store, bool addr_tainted) override;
    void hermesProbe(CoreId core, Addr paddr_line, Addr pc) override;
    void storeThrough(CoreId core, Addr paddr_line) override;
    bool offloadChain(const ChainRequest &chain) override;
    bool emcTlbResident(CoreId core, Addr vpage) override;
    Cycle now() const override { return now_; }

    // ---- accessors for tests and benches ----
    const Core &core(unsigned i) const { return *cores_[i]; }
    Core &mutableCore(unsigned i) { return *cores_[i]; }
    const Emc *emc(unsigned mc = 0) const
    {
        return emcs_.empty() ? nullptr : emcs_[mc].get();
    }
    const SystemConfig &config() const { return cfg_; }
    Cycle cycles() const { return now_; }
    const TrafficStats &traffic() const { return traffic_; }
    const std::set<Addr> &emcMissLines() const
    {
        return emc_miss_lines_;
    }
    const std::set<Addr> &prefetchLines() const
    {
        return prefetch_lines_;
    }
    bool finished() const;
    Cycle coreFinishCycle(unsigned i) const { return finish_cycle_[i]; }
    const Cache &llcSlice(unsigned i) const { return *slices_[i]; }
    const PageTable &pageTable(unsigned i) const
    {
        return *page_tables_[i];
    }
    /** Uops produced so far by core @p i's trace source. */
    std::uint64_t uopsProduced(unsigned i) const
    {
        return programs_[i]->produced();
    }

    /**
     * OS-initiated TLB shootdown for @p vpage of @p core: invalidates
     * the mapping in every EMC TLB (the per-PTE residence bit the
     * paper adds makes this targeted in hardware; Section 4.1.4).
     */
    void tlbShootdown(CoreId core, Addr vpage);

    /**
     * Attach the runtime invariant checkers (DESIGN.md §5d). Called
     * automatically from the constructor in -DEMC_SIM_CHECK=ON builds;
     * tests may call it in any build, but only before the first
     * transaction is created (i.e. before run()/tickOnce()).
     * Observation only: enabling it never changes simulated behaviour
     * or statistics. Idempotent.
     */
    void enableInvariantChecks();

    /** The attached check registry (null when checks are disabled). */
    check::CheckRegistry *checkRegistry() { return check_.get(); }

    /**
     * Attach the transaction-lifecycle tracer (DESIGN.md §6). Called
     * automatically from the constructor when cfg.trace_path is set;
     * tests may call it directly, but only before run()/tickOnce().
     * Observation only: a traced run's statistics are byte-identical
     * to an untraced one. Idempotent.
     *
     * @param trace_path Chrome trace_event JSON output file
     * @param buffer_events tracer ring-buffer capacity
     * @param stream_interval when > 0, also stream a stat snapshot
     *        every this many cycles to "<trace_path>.jsonl"
     */
    void enableTracing(const std::string &trace_path,
                       std::size_t buffer_events = 1 << 16,
                       Cycle stream_interval = 0);

    /** The attached tracer (null when tracing is disabled). */
    obs::Tracer *tracer() { return tracer_.get(); }

    /**
     * Stream interval stat snapshots onto an already-open @p out that
     * this System does NOT own (the sweep worker pipe, DESIGN.md §9):
     * one JSONL object every @p interval cycles, each line opening
     * with the verbatim @p prefix (e.g. `"type":"interval","job":3,`).
     * Unlike a file-backed streamer this does not make the run
     * checkpoint-refusing: the stream is best-effort observational, so
     * a crash-resumed run may re-emit interval lines consumers must
     * tolerate. @p interval 0 detaches.
     */
    void enableStatStream(std::FILE *out, Cycle interval,
                          const std::string &prefix);

    /** Always-on phase-latency histograms (exported as `phase.*`). */
    const obs::PhaseAccumulator &phases() const { return phases_; }

    // ---- checkpoint / restore (DESIGN.md §7; src/ckpt) ----

    /**
     * Serialize the machine to an in-memory checkpoint image.
     * kFull captures complete state between ticks; kWarmup runs (or
     * finishes) the warmup phase, drains the machine to a quiescent
     * point and captures only the warmed state (see
     * warmupCheckpointBytes()). Refused (ckpt::Error) while a tracer,
     * stat streamer or trace capture is attached — their file offsets
     * are not restorable.
     */
    std::vector<std::uint8_t> saveCheckpointBytes(ckpt::Level level);

    /** saveCheckpointBytes() + atomic write to @p path. */
    void saveCheckpoint(const std::string &path, ckpt::Level level);

    /**
     * Warmup-level image: runs the configured warmup (cfg.warmup_uops
     * must be > 0) if it has not happened yet, pauses fetch, drains
     * every in-flight transaction and captures functional memory, page
     * tables, workload generators, per-core architectural state with
     * warmed L1/TLB/branch predictors, and the LLC contents. The image
     * is restorable into Systems with differing EMC / prefetcher /
     * DRAM configurations (warmupConfigHash governs compatibility).
     */
    std::vector<std::uint8_t> warmupCheckpointBytes();

    /**
     * Restore a checkpoint image into this freshly constructed System
     * (full level: nothing may have run yet and the configuration must
     * hash-match; warmup level: the "fit" subset must match, and the
     * System resumes measurement from a warmed state). Throws
     * ckpt::Error on format, version or configuration mismatch.
     */
    void restoreCheckpointBytes(const std::vector<std::uint8_t> &bytes);

    /** readFile() + restoreCheckpointBytes(). */
    void restoreCheckpoint(const std::string &path);

    /**
     * Arrange for run() to save a checkpoint to @p path at the first
     * tick with now() >= @p at (one-shot; observation only — the
     * saving run's statistics are unperturbed).
     */
    void scheduleCheckpoint(const std::string &path, Cycle at,
                            ckpt::Level level = ckpt::Level::kFull);

    /**
     * Arrange for run() to overwrite @p path with a full checkpoint
     * every @p interval cycles (crash-resumable runs; atomic rename
     * keeps the file valid at all times). @p interval 0 disables.
     */
    void setAutosave(const std::string &path, Cycle interval);

    /**
     * Autosave variant that hands each full checkpoint image to
     * @p sink instead of a file path — the hook the sweep runner uses
     * to autosave into a content-addressed ckpt::Store. The sink runs
     * between ticks with the machine quiescent; it must not touch the
     * System. @p interval 0 (or a null sink) disables.
     */
    void setAutosave(std::function<void(std::vector<std::uint8_t> &&)>
                         sink,
                     Cycle interval);

    /**
     * Deflate-compress checkpoint images this System writes to disk
     * (saveCheckpoint, scheduled/autosaved saves). Reads are always
     * transparent. Throws ckpt::Error at save time if the build lacks
     * zlib (ckpt::compressionAvailable()).
     */
    void setCkptCompress(bool on) { ckpt_compress_ = on; }

  private:
    friend struct EmcPortAdapter;

    // ---- internal event machinery ----
    enum class EvType : std::uint8_t
    {
        kSliceArrive,       ///< request reaches its LLC slice stop
        kSliceLookup,       ///< LLC slice tag lookup completes
        kSliceStore,        ///< write-through store reaches its slice
        kMcEnqueue,         ///< request enters an MC's channel queue
        kFillAtSlice,       ///< DRAM fill reaches the LLC slice
        kFillAtCore,        ///< fill data reaches the requesting core
        kChainArrive,       ///< chain transfer fully received at EMC
        kLsqPopulate,       ///< EMC memory-op notification at the core
        kChainResult,       ///< live-outs / cancel reach the core
        kEmcQueryArrive,    ///< EMC predicted-hit load at slice stop
        kEmcQueryLookup,    ///< ... its tag lookup completes
        kEmcQueryReply,     ///< LLC hit data back at the EMC
        kEmcDirectReply,    ///< cross-MC fill data reaches its EMC
    };

    /** A scheduled continuation. */
    struct Event
    {
        EvType type;
        std::uint64_t token;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(type);
            ar.io(token);
        }
    };

    /** One outstanding memory transaction. */
    struct Txn
    {
        std::uint64_t id = 0;
        CoreId core = 0;
        Addr line = kNoAddr;
        Addr pc = 0;
        bool for_store = false;
        bool addr_tainted = false;
        bool is_prefetch = false;
        bool is_hermes = false;     ///< core-side speculative DRAM probe
        bool is_emc = false;        ///< issued by an EMC
        bool emc_via_llc = false;   ///< EMC predicted-hit query path
        bool emc_llc_fill_only = false;  ///< remaining work: LLC fill
        bool llc_missed = false;
        std::uint64_t emc_token = 0;
        unsigned emc_owner = 0;     ///< EMC index that issued it

        Cycle t_start = kNoCycle;       ///< left the requestor
        Cycle t_llc_miss = kNoCycle;    ///< slice lookup missed
        Cycle t_mc_enqueue = kNoCycle;
        Cycle t_dram_issue = kNoCycle;
        Cycle t_dram_data = kNoCycle;
        Cycle t_fill = kNoCycle;        ///< fill data produced
        Cycle t_done = kNoCycle;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(id);
            ar.io(core);
            ar.io(line);
            ar.io(pc);
            ar.io(for_store);
            ar.io(addr_tainted);
            ar.io(is_prefetch);
            ar.io(is_hermes);
            ar.io(is_emc);
            ar.io(emc_via_llc);
            ar.io(emc_llc_fill_only);
            ar.io(llc_missed);
            ar.io(emc_token);
            ar.io(emc_owner);
            ar.io(t_start);
            ar.io(t_llc_miss);
            ar.io(t_mc_enqueue);
            ar.io(t_dram_issue);
            ar.io(t_dram_data);
            ar.io(t_fill);
            ar.io(t_done);
        }
    };

    /** A chain mid-transfer on the data ring. */
    struct InFlightChain
    {
        ChainRequest chain;
        unsigned msgs_remaining = 0;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(chain);
            ar.io(msgs_remaining);
        }
    };

    /** A chain result mid-transfer on the data ring. */
    struct InFlightResult
    {
        ChainResult result;
        unsigned msgs_remaining = 0;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(result);
            ar.io(msgs_remaining);
        }
    };

    /** An EMC LSQ-populate notification in flight. */
    struct LsqMsg
    {
        CoreId core;
        std::uint64_t rob_seq;
        Addr paddr;
        std::uint64_t chain_id;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(core);
            ar.io(rob_seq);
            ar.io(paddr);
            ar.io(chain_id);
        }
    };

    /** A cross-MC fill reply heading to its issuing EMC. */
    struct EmcReply
    {
        unsigned owner;
        std::uint64_t emc_token;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(owner);
            ar.io(emc_token);
        }
    };

    // ---- EmcPort entry points (called through the adapters) ----
    bool emcDirectDram(unsigned from_mc, CoreId core, Addr paddr_line,
                       std::uint64_t token);
    bool emcLlcQuery(unsigned from_mc, CoreId core, Addr paddr_line,
                     std::uint64_t token, Addr pc);
    void emcLsqPopulate(unsigned from_mc, CoreId core,
                        std::uint64_t rob_seq, Addr paddr,
                        std::uint64_t chain_id);
    void emcChainResult(unsigned from_mc, const ChainResult &result,
                        unsigned bytes);

    // Topology helpers.
    unsigned sliceOf(Addr line) const;
    unsigned stopOfCore(CoreId c) const { return c; }
    unsigned stopOfMc(unsigned mc) const { return cfg_.num_cores + mc; }
    unsigned mcOfChannel(unsigned channel) const;
    unsigned mcOfLine(Addr line) const;

    void schedule(Cycle when, EvType type, std::uint64_t token);
    void routeControl(unsigned src, unsigned dst, MsgType mtype,
                      std::uint64_t token, EvType ev);
    void routeData(unsigned src, unsigned dst, MsgType mtype,
                   std::uint64_t token, EvType ev);

    void processEvents();
    void resetMeasurement();

    /**
     * Cycles the whole chip can provably skip: 0 when any component
     * has per-cycle work, else the earliest future cycle at which
     * anything (an event, a core wakeup, a DRAM refresh) happens.
     * run() uses this to jump the clock across dead time without
     * changing any observable statistic.
     */
    Cycle quiescentUntil() const;

    /** Jump the clock over a quiescent gap (no-op when busy). */
    void maybeSkipIdle();
    bool allRetired(std::uint64_t target) const;
    void handleSliceArrive(std::uint64_t token);
    void handleSliceLookup(std::uint64_t token);
    void handleSliceStore(std::uint64_t token);
    void handleMcEnqueue(std::uint64_t token);
    void handleFillAtSlice(std::uint64_t token);
    void handleFillAtCore(std::uint64_t token);
    void handleChainArrive(std::uint64_t token);
    void handleLsqPopulate(std::uint64_t token);
    void handleChainResult(std::uint64_t token);
    void handleEmcQueryArrive(std::uint64_t token);
    void handleEmcQueryLookup(std::uint64_t token);
    void handleEmcQueryReply(std::uint64_t token);
    void handleEmcDirectReply(std::uint64_t token);

    void handleDramDone(unsigned mc, const MemRequest &req);
    void insertIntoLlc(Txn &txn);

    /**
     * Retire @p txn: sample its phase latencies (always-on), emit the
     * kRetire trace point, notify the lifecycle checker, and release
     * the slab-pool slot. The single exit path for every transaction.
     */
    void retireTxn(Txn &txn);

    /** The trace track a transaction's lifecycle events live on. */
    obs::Track trackOf(const Txn &txn) const;

    /** The kCreated flag bits describing @p txn. */
    std::uint8_t txnFlags(const Txn &txn) const;
    void drainPrefetchers();
    void observeAtLlc(Txn &txn, bool hit);
    void finalizeToCore(Txn &txn, unsigned slice);
    void finalizeDemand(Txn &txn);
    void maybeSnapshotCore(unsigned i);

    Cycle sliceReady(unsigned slice);

    SystemConfig cfg_;
    Cycle now_ = 0;
    bool warmed_up_ = false;
    Cycle warmup_end_cycle_ = 0;

    // Programs and cores.
    std::vector<std::unique_ptr<FunctionalMemory>> memories_;
    std::vector<std::unique_ptr<PageTable>> page_tables_;
    std::vector<std::unique_ptr<TraceSource>> programs_;
    std::vector<std::unique_ptr<TraceSource>> capture_inner_;
    std::vector<trace::Recorder *> capture_recorders_;  ///< owned by programs_
    std::vector<std::unique_ptr<Core>> cores_;

    // Interconnect.
    Ring control_ring_;
    Ring data_ring_;

    std::vector<std::string> benchmark_names_;

    // LLC slices (slice i shares core i's ring stop).
    std::vector<std::unique_ptr<Cache>> slices_;
    std::vector<Cycle> slice_next_free_;

    // Memory controllers, channels, EMCs (and their port adapters).
    std::vector<std::vector<std::unique_ptr<DramChannel>>> channels_;
    std::vector<std::unique_ptr<EmcPort>> emc_ports_;
    std::vector<std::unique_ptr<Emc>> emcs_;

    // Prefetching.
    std::vector<std::unique_ptr<Prefetcher>> prefetchers_;
    FdpThrottle fdp_;
    std::unordered_set<Addr> outstanding_prefetch_lines_;

    // Transactions and in-flight protocol state. Txn ids are handed
    // out sequentially (DRAM FCFS tie-breaks depend on them), which is
    // exactly the contract the slab pool's id window wants.
    IdSlabPool<Txn> txns_;
    std::uint64_t next_txn_ = 1;
    CalendarQueue<Event> events_;
    bool cycle_skip_enabled_ = true;  ///< EMC_NO_CYCLE_SKIP clears it
    Cycle next_skip_check_ = 0;       ///< backoff after failed skips
    /// Adaptive failed-skip backoff: doubles per consecutive failed
    /// attempt up to the cap, resets on a successful skip, so phases
    /// that never go idle stop paying for the quiescence scan.
    Cycle skip_backoff_ = kSkipBackoffMin;
    static constexpr Cycle kSkipBackoffMin = 16;
    static constexpr Cycle kSkipBackoffMax = 4096;
    std::unordered_map<std::uint64_t, InFlightChain> chains_in_flight_;
    std::unordered_map<std::uint64_t, InFlightResult> results_in_flight_;
    std::unordered_map<std::uint64_t, LsqMsg> lsq_msgs_;
    std::unordered_map<std::uint64_t, EmcReply> emc_replies_;
    std::unordered_map<std::uint64_t, Cycle> emc_reply_start_;
    std::uint64_t next_msg_id_ = 1;
    std::unordered_map<Addr, unsigned> outstanding_demand_lines_;
    /// Cross-agent MSHR at the LLC: line -> txns merged onto the
    /// in-flight fill (primary txn excluded). Prevents the core, the
    /// EMC and the prefetchers from fetching the same line twice.
    std::unordered_map<Addr, std::vector<std::uint64_t>> pending_fills_;

    /** Register @p txn against an in-flight fill. @retval true merged. */
    bool tryMergeFill(Txn &txn);
    void dispatchMergedFill(std::uint64_t token, unsigned slice);

    // Hermes core-side probes (DESIGN.md §13). A probe opens the
    // cross-agent MSHR window for its line, so the demand walking the
    // L1->ring->LLC path merges onto the probe's fill at the slice and
    // inherits its DRAM head start. Ordered map: checkpoint images and
    // drain order must not depend on hashing.

    /** One in-flight speculative probe. */
    struct HermesProbe
    {
        Cycle start = 0;    ///< probe launch (head-start accounting)
        bool used = false;  ///< a demand merged onto this probe's fill

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(start);
            ar.io(used);
        }
    };
    std::map<Addr, HermesProbe> hermes_probe_lines_;
    std::uint64_t hermes_probes_issued_ = 0;
    std::uint64_t hermes_probes_suppressed_ = 0;  ///< fill in flight
    std::uint64_t hermes_probes_llc_hit_ = 0;     ///< filtered by peek
    std::uint64_t hermes_probes_useful_ = 0;
    std::uint64_t hermes_probes_useless_ = 0;
    std::uint64_t hermes_merged_demands_ = 0;
    std::uint64_t hermes_saved_cycles_ = 0;  ///< head start of merges

    // Bookkeeping for benches. The line sets are ordered: benches
    // iterate them when producing output, and iteration order must not
    // depend on hashing.
    TrafficStats traffic_;
    std::vector<Cycle> finish_cycle_;
    std::vector<CoreStats> finish_snapshot_;
    std::vector<bool> snapshotted_;
    std::set<Addr> emc_miss_lines_;
    std::set<Addr> prefetch_lines_;

    // Latency attribution accumulators.
    Average lat_total_core_;     ///< L1-miss issue -> data at core
    Average lat_total_emc_;      ///< EMC issue -> data at EMC
    Average lat_onchip_core_;    ///< Figure 1 on-chip component
    Average lat_dram_core_;      ///< Figure 1 DRAM component
    Average lat_queue_core_;     ///< MC queue wait, core requests
    Average lat_queue_emc_;
    Average lat_ring_core_;      ///< interconnect portion, core reqs
    Average lat_llcpath_core_;   ///< LLC lookup + fill-path portion
    Histogram hist_lat_core_{40, 25.0};  ///< miss-latency distribution
    Histogram hist_lat_emc_{40, 25.0};

    // Runtime invariant checking (null unless enabled). The raw
    // pointers cache the registered checkers so the per-event hooks
    // are a single null test when disabled.
    void runPerTickChecks();
    void runDeepChecks();
    void finalizeChecks();
    std::unique_ptr<check::CheckRegistry> check_;
    check::EventQueueChecker *ck_events_ = nullptr;
    check::TxnLifecycleChecker *ck_txns_ = nullptr;
    check::ConservationChecker *ck_conserve_ = nullptr;
    check::RetireOrderChecker *ck_retire_ = nullptr;
    Cycle next_deep_check_ = 0;

    // Checkpoint / restore (DESIGN.md §7; implemented in
    // system_ckpt.cc). ckptPayload() walks every serialized component
    // in section order, symmetrically for save and load.
    void ckptPayload(ckpt::Ar &ar, ckpt::Level level,
                     std::vector<ckpt::Section> *toc);
    void ckptRefuseIfObserved(const char *what) const;
    void ckptDrainForWarmup();
    /** Tick with fetch gated until every in-flight structure drains. */
    void drainInFlight();
    /** Assemble a warmup-level image from the current (drained) state. */
    std::vector<std::uint8_t> warmupImageBytes();
    void maybeCheckpoint();
    std::string ckpt_path_;
    Cycle ckpt_at_ = kNoCycle;
    ckpt::Level ckpt_level_ = ckpt::Level::kFull;
    std::string autosave_path_;
    std::function<void(std::vector<std::uint8_t> &&)> autosave_sink_;
    Cycle autosave_interval_ = 0;
    Cycle next_autosave_ = kNoCycle;
    bool ckpt_compress_ = false;

    // Functional warming + sampling (DESIGN.md §8; fastwarm.cc).
    friend class LlcWarmPort;
    /** WarmPort sink: LLC tag/metadata update for one warm access. */
    void warmLineAtLlc(CoreId core, Addr paddr_line, Addr pc,
                       bool is_store);
    SampledStats sampled_;

    // Observability (DESIGN.md §6). The tracer is null unless enabled
    // (hooks are then a single null test each); the phase accumulator
    // is always on so traced and untraced runs export identical stats.
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::StatStreamer> streamer_;
    obs::PhaseAccumulator phases_;

    // Aggregate counters.
    std::uint64_t llc_demand_accesses_ = 0;
    std::uint64_t llc_demand_misses_ = 0;
    std::uint64_t llc_dep_misses_ = 0;
    std::uint64_t dep_misses_covered_by_pf_ = 0;
    std::uint64_t demand_hits_on_prefetch_ = 0;
    std::uint64_t emc_generated_misses_ = 0;
    std::uint64_t emc_bypass_wrong_ = 0;
    std::uint64_t llc_total_accesses_ = 0;  ///< energy accounting
    std::uint64_t ideal_dep_hits_granted_ = 0;
};

} // namespace emc

#endif // EMC_SIM_SYSTEM_HH
