/**
 * @file
 * Whole-system configuration mirroring the paper's Table 1, plus the
 * experiment knobs the benches use (ideal-dependent-hit mode for
 * Figure 2, channel/rank sweeps for Figure 20, EMC ablations).
 */

#ifndef EMC_SIM_CONFIG_HH
#define EMC_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/core.hh"
#include "dram/dram_channel.hh"
#include "emc/emc.hh"
#include "energy/energy_model.hh"

namespace emc
{

/** Prefetcher configurations evaluated in the paper. */
enum class PrefetchConfig : std::uint8_t
{
    kNone,
    kGhb,           ///< GHB G/DC
    kStream,        ///< POWER4-style stream
    kMarkovStream,  ///< Markov + stream (always paired, Section 5)
    kStride,        ///< PC-indexed stride (extra baseline, [6] class)
    kPickle,        ///< predicted-miss cross-core correlator (§13)
};

const char *prefetchConfigName(PrefetchConfig p);

/** Full system configuration. */
struct SystemConfig
{
    unsigned num_cores = 4;
    unsigned num_mcs = 1;          ///< 1, or 2 for Figure 11(b)
    CoreConfig core;

    // Shared LLC: one slice per core (Table 1).
    std::size_t llc_slice_bytes = 1 << 20;
    unsigned llc_ways = 8;
    Cycle llc_latency = 18;

    // DRAM (quad-core defaults: 2 channels, 1 rank, 8 banks).
    DramGeometry dram;
    DramTiming timing;
    SchedPolicy sched = SchedPolicy::kBatch;
    std::size_t mc_queue_entries = 128;  ///< split across channels

    PrefetchConfig prefetch = PrefetchConfig::kNone;

    bool emc_enabled = false;
    EmcConfig emc;

    EnergyParams energy;

    /// Per-core retired-uop target ("at least 50M instructions" in the
    /// paper; scaled down for tractable runs, overridable via env).
    std::uint64_t target_uops = 120000;
    /// Uops retired per core before statistics start (cache warmup).
    std::uint64_t warmup_uops = 0;
    std::uint64_t seed = 0x5eed;
    Cycle max_cycles = 400'000'000;

    /// Figure 2 experiment: dependent misses become LLC hits.
    bool ideal_dependent_hits = false;

    /// Figure 21 cross-run bookkeeping.
    bool record_emc_miss_lines = false;
    bool record_prefetch_lines = false;

    /// Replay these trace files (one per core) instead of generating
    /// synthetic programs. Empty entries fall back to the generator.
    std::vector<std::string> trace_files;
    /// Capture each core's uop stream to "<prefix>.core<i>.emct".
    std::string capture_prefix;

    /// Observability (DESIGN.md §6): write a Chrome trace_event JSON
    /// of every transaction lifecycle here (empty = tracing off).
    std::string trace_path;
    /// Tracer ring-buffer capacity in events (drained to the file
    /// when full, so no event is ever dropped).
    std::size_t trace_buffer_events = 1 << 16;
    /// When > 0 (and trace_path is set), also snapshot the stat
    /// registry every this many cycles to "<trace_path>.jsonl".
    Cycle trace_interval = 0;

    /** Convenience: 8-core scaling per Table 1. */
    void scaleToEightCores(bool dual_mc);
};

/**
 * Read the per-core uop target: EMC_SIM_UOPS env var if set, else the
 * supplied default. Benches use this so full runs can be lengthened.
 */
std::uint64_t targetUopsFromEnv(std::uint64_t dflt);

} // namespace emc

#endif // EMC_SIM_CONFIG_HH
