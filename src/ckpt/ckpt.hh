/**
 * @file
 * Checkpoint file container (DESIGN.md §7).
 *
 * Layout (all words 64-bit little-endian, via ckpt::Ar):
 *
 *   magic "EMCKPT1\n" (8 raw bytes)
 *   header length in bytes (u64)
 *   header: version, level, config hash, payload CRC, section TOC
 *   payload: the serialized System state; each section opens with an
 *            8-byte marker that load() re-validates
 *
 * On-disk images may additionally be wrapped in a deflate container
 * (zlib builds only):
 *
 *   magic "EMCKPTZ\n" (8 raw bytes)
 *   raw image size in bytes (u64, little-endian)
 *   deflate stream of the EMCKPT1 image above
 *
 * readFile() inflates transparently, so every consumer (restore,
 * emcckpt, bench resume) reads both formats; compression is opt-in at
 * write time (writeFile(..., compress=true)).
 *
 * Two checkpoint levels:
 *
 *   kFull    complete machine state. Restore requires an identically
 *            configured System (enforced via the config hash) and
 *            continues the run exactly: stats at the end of a
 *            restored run are byte-identical to an uninterrupted one.
 *   kWarmup  warmed state only: functional memory, page tables,
 *            workload generators, per-core architectural registers,
 *            branch predictors, L1/TLB and LLC contents. Restorable
 *            into differing EMC/prefetcher/DRAM configurations, so
 *            sweeps warm once and fork N config points.
 *
 * tools/emcckpt operates on the header/TOC/payload bytes alone — this
 * library deliberately has no System dependency.
 */

#ifndef EMC_CKPT_CKPT_HH
#define EMC_CKPT_CKPT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/serial.hh"

namespace emc
{
struct SystemConfig;
}

namespace emc::ckpt
{

constexpr std::uint32_t kVersion = 3;
constexpr char kMagic[8] = {'E', 'M', 'C', 'K', 'P', 'T', '1', '\n'};
/// Outer magic of a deflate-compressed image.
constexpr char kZMagic[8] = {'E', 'M', 'C', 'K', 'P', 'T', 'Z', '\n'};

/** Checkpoint completeness level (see file header). */
enum class Level : std::uint32_t
{
    kFull = 0,
    kWarmup = 1,
};

const char *levelName(Level l);

/** One named span of the payload (offsets relative to the payload). */
struct Section
{
    std::string name;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(name);
        ar.io(offset);
        ar.io(length);
    }
};

/** Parsed checkpoint header. */
struct Header
{
    std::uint32_t version = kVersion;
    Level level = Level::kFull;
    std::uint64_t config_hash = 0;
    std::uint64_t payload_crc = 0;
    std::vector<Section> sections;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(version);
        ar.io(level);
        ar.io(config_hash);
        ar.io(payload_crc);
        ar.io(sections);
    }
};

/** FNV-1a 64 over @p n bytes, continuing from @p h. */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t n,
                    std::uint64_t h = 14695981039346656037ULL);

/**
 * Hash of every simulation-affecting configuration field (obs-only
 * knobs — trace path/interval/buffer, capture prefix — excluded, as
 * are the dump-time-only energy parameters). Full-level restore
 * requires an exact match.
 */
std::uint64_t fullConfigHash(const SystemConfig &cfg,
                             const std::vector<std::string> &benchmarks);

/**
 * Hash of the minimal "fit" set a warmup-level restore needs to agree
 * on: core count, LLC/L1/TLB geometry, branch-predictor use, seed and
 * the benchmark names. Deliberately excludes EMC, prefetcher, DRAM
 * and chain-generation knobs so ablation sweeps can fork one warmup
 * snapshot across config points.
 */
std::uint64_t warmupConfigHash(const SystemConfig &cfg,
                               const std::vector<std::string> &benchmarks);

/** Assemble a complete file image (computes the payload CRC). */
std::vector<std::uint8_t> assemble(Header h,
                                   const std::vector<std::uint8_t> &payload);

/**
 * Parse and validate a file image: magic, version, and (unless
 * @p skip_crc) the payload CRC. @p payload_offset receives the byte
 * offset of the payload within @p file. Throws ckpt::Error.
 */
Header parseHeader(const std::vector<std::uint8_t> &file,
                   std::size_t *payload_offset = nullptr,
                   bool skip_crc = false);

/** Split a validated file image into its payload bytes. */
std::vector<std::uint8_t> payloadOf(const std::vector<std::uint8_t> &file);

/** True when this build can produce compressed images (zlib). */
bool compressionAvailable();

/**
 * Deflate @p raw into a bare zlib stream (no container framing —
 * callers that need self-description store the raw size themselves,
 * as the EMCKPTZ container and the src/trace block format do). Throws
 * ckpt::Error when the build lacks zlib (compressionAvailable()).
 */
std::vector<std::uint8_t>
deflateBytes(const std::uint8_t *raw, std::size_t n);

/**
 * Inflate a bare zlib stream produced by deflateBytes() back into
 * exactly @p raw_size bytes. Throws ckpt::Error on a corrupt stream,
 * a size mismatch, or a zlib-less build.
 */
std::vector<std::uint8_t>
inflateBytes(const std::uint8_t *z, std::size_t n, std::size_t raw_size);

/** True when @p bytes carries the compressed-image outer magic. */
bool isCompressedImage(const std::vector<std::uint8_t> &bytes);

/**
 * Wrap a raw EMCKPT1 image in the EMCKPTZ deflate container. Throws
 * ckpt::Error when the build lacks zlib (compressionAvailable()).
 */
std::vector<std::uint8_t>
compressImage(const std::vector<std::uint8_t> &raw);

/**
 * Inflate an EMCKPTZ container back to the raw image; bytes without
 * the EMCKPTZ magic pass through unchanged. Throws ckpt::Error on a
 * corrupt stream, or on any compressed image in a zlib-less build.
 */
std::vector<std::uint8_t>
maybeDecompressImage(std::vector<std::uint8_t> bytes);

/**
 * Atomic write: to "<path>.tmp", then rename over @p path. With
 * @p compress, the image is deflate-wrapped first (zlib builds only).
 */
void writeFile(const std::string &path,
               const std::vector<std::uint8_t> &bytes,
               bool compress = false);

/**
 * Read a whole file, transparently inflating compressed images.
 * Throws ckpt::Error on open/read failure.
 */
std::vector<std::uint8_t> readFile(const std::string &path);

} // namespace emc::ckpt

#endif // EMC_CKPT_CKPT_HH
