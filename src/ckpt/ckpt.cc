/**
 * @file
 * Checkpoint container implementation: file assembly/parsing, the
 * payload CRC and the two config-compatibility hashes.
 */

#include "ckpt/ckpt.hh"

#include <cstdio>
#include <cstring>

#ifdef EMC_HAVE_ZLIB
#include <zlib.h>
#endif

#include "sim/config.hh"

namespace emc::ckpt
{

const char *
levelName(Level l)
{
    switch (l) {
      case Level::kFull:
        return "full";
      case Level::kWarmup:
        return "warmup";
    }
    return "unknown";
}

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n, std::uint64_t h)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

namespace
{

/** Field-by-field config hashing (order defines the hash). */
class HashAcc
{
  public:
    void
    u(std::uint64_t v)
    {
        std::uint8_t b[8];
        for (unsigned i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        h_ = fnv1a(b, 8, h_);
    }

    void
    s(const std::string &v)
    {
        u(v.size());
        h_ = fnv1a(reinterpret_cast<const std::uint8_t *>(v.data()),
                   v.size(), h_);
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 14695981039346656037ULL;
};

void
hashPred(HashAcc &a, const pred::PredConfig &p)
{
    a.u(static_cast<std::uint64_t>(p.kind));
    a.u(p.table_entries);
    a.u(p.table_threshold);
    a.u(p.perc_entries);
    a.u(static_cast<std::uint64_t>(p.perc_weight_min));
    a.u(static_cast<std::uint64_t>(p.perc_weight_max));
    a.u(static_cast<std::uint64_t>(p.perc_activation));
    a.u(static_cast<std::uint64_t>(p.perc_training_threshold));
    a.u(p.history_len);
}

void
hashCore(HashAcc &a, const CoreConfig &c)
{
    a.u(c.fetch_width);
    a.u(c.issue_width);
    a.u(c.retire_width);
    a.u(c.rob_size);
    a.u(c.rs_size);
    a.u(c.lq_size);
    a.u(c.sq_size);
    a.u(c.phys_regs);
    a.u(c.l1d_bytes);
    a.u(c.l1d_ways);
    a.u(c.l1d_latency);
    a.u(c.l1_mshrs);
    a.u(c.mispredict_penalty);
    a.u(c.tlb_walk_latency);
    a.u(c.tlb_entries);
    a.u(c.use_branch_predictor);
    a.u(c.runahead_enabled);
    a.u(c.runahead_max_uops);
    a.u(c.emc_enabled);
    a.u(c.hermes_enabled);
    hashPred(a, c.hermes_pred);
    a.u(c.chain_max_uops);
    a.u(c.chain_max_indirection);
}

void
hashDram(HashAcc &a, const DramGeometry &g, const DramTiming &t)
{
    a.u(g.channels);
    a.u(g.ranks_per_channel);
    a.u(g.banks_per_rank);
    a.u(g.row_bytes);
    a.u(t.tCL);
    a.u(t.tRCD);
    a.u(t.tRP);
    a.u(t.tRAS);
    a.u(t.tBurst);
    a.u(t.tCCD);
    a.u(t.tWR);
    a.u(t.tWTR);
    a.u(t.tRTP);
    a.u(t.tRRD);
    a.u(t.tFAW);
    a.u(t.tREFI);
    a.u(t.tRFC);
}

void
hashEmc(HashAcc &a, const EmcConfig &e)
{
    a.u(e.contexts);
    a.u(e.issue_width);
    a.u(e.rs_entries);
    a.u(e.lsq_entries);
    a.u(e.dcache_bytes);
    a.u(e.dcache_ways);
    a.u(e.dcache_latency);
    a.u(e.tlb_entries);
    a.u(e.miss_pred_entries);
    a.u(e.miss_pred_threshold);
    a.u(e.direct_dram);
    a.u(e.miss_predictor_enabled);
    hashPred(a, e.pred);
}

} // namespace

std::uint64_t
fullConfigHash(const SystemConfig &cfg,
               const std::vector<std::string> &benchmarks)
{
    HashAcc a;
    a.u(cfg.num_cores);
    a.u(cfg.num_mcs);
    hashCore(a, cfg.core);
    a.u(cfg.llc_slice_bytes);
    a.u(cfg.llc_ways);
    a.u(cfg.llc_latency);
    hashDram(a, cfg.dram, cfg.timing);
    a.u(static_cast<std::uint64_t>(cfg.sched));
    a.u(cfg.mc_queue_entries);
    a.u(static_cast<std::uint64_t>(cfg.prefetch));
    a.u(cfg.emc_enabled);
    hashEmc(a, cfg.emc);
    a.u(cfg.target_uops);
    a.u(cfg.warmup_uops);
    a.u(cfg.seed);
    a.u(cfg.max_cycles);
    a.u(cfg.ideal_dependent_hits);
    a.u(cfg.record_emc_miss_lines);
    a.u(cfg.record_prefetch_lines);
    a.u(cfg.trace_files.size());
    for (const auto &f : cfg.trace_files)
        a.s(f);
    a.u(benchmarks.size());
    for (const auto &b : benchmarks)
        a.s(b);
    return a.value();
}

std::uint64_t
warmupConfigHash(const SystemConfig &cfg,
                 const std::vector<std::string> &benchmarks)
{
    HashAcc a;
    a.u(cfg.num_cores);
    a.u(cfg.llc_slice_bytes);
    a.u(cfg.llc_ways);
    a.u(cfg.core.l1d_bytes);
    a.u(cfg.core.l1d_ways);
    a.u(cfg.core.tlb_entries);
    a.u(cfg.core.use_branch_predictor);
    a.u(cfg.seed);
    a.u(cfg.trace_files.size());
    for (const auto &f : cfg.trace_files)
        a.s(f);
    a.u(benchmarks.size());
    for (const auto &b : benchmarks)
        a.s(b);
    return a.value();
}

std::vector<std::uint8_t>
assemble(Header h, const std::vector<std::uint8_t> &payload)
{
    h.version = kVersion;
    h.payload_crc = fnv1a(payload.data(), payload.size());

    Ser har = Ar::saver();
    har.io(h);
    const std::vector<std::uint8_t> hb = har.takeBytes();

    std::vector<std::uint8_t> out;
    out.reserve(8 + 8 + hb.size() + payload.size());
    out.insert(out.end(), kMagic, kMagic + 8);
    const std::uint64_t hlen = hb.size();
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(hlen >> (8 * i)));
    out.insert(out.end(), hb.begin(), hb.end());
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

Header
parseHeader(const std::vector<std::uint8_t> &file,
            std::size_t *payload_offset, bool skip_crc)
{
    if (file.size() < 16
        || std::memcmp(file.data(), kMagic, 8) != 0) {
        throw Error("not a checkpoint file (bad magic)");
    }
    std::uint64_t hlen = 0;
    for (unsigned i = 0; i < 8; ++i)
        hlen |= static_cast<std::uint64_t>(file[8 + i]) << (8 * i);
    if (16 + hlen > file.size())
        throw Error("checkpoint header truncated");

    Header h;
    {
        Deser har = Ar::loader(std::vector<std::uint8_t>(
            file.begin() + 16,
            file.begin() + 16 + static_cast<std::size_t>(hlen)));
        har.io(h);
    }
    if (h.version != kVersion) {
        throw Error("unsupported checkpoint version "
                    + std::to_string(h.version) + " (tool supports "
                    + std::to_string(kVersion) + ")");
    }
    const std::size_t poff = 16 + static_cast<std::size_t>(hlen);
    if (payload_offset != nullptr)
        *payload_offset = poff;
    if (!skip_crc) {
        const std::uint64_t crc =
            fnv1a(file.data() + poff, file.size() - poff);
        if (crc != h.payload_crc) {
            throw Error("checkpoint payload CRC mismatch (file "
                        "corrupt or truncated)");
        }
    }
    return h;
}

std::vector<std::uint8_t>
payloadOf(const std::vector<std::uint8_t> &file)
{
    std::size_t poff = 0;
    (void)parseHeader(file, &poff);
    return {file.begin() + static_cast<std::ptrdiff_t>(poff), file.end()};
}

bool
compressionAvailable()
{
#ifdef EMC_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

bool
isCompressedImage(const std::vector<std::uint8_t> &bytes)
{
    return bytes.size() >= 16
           && std::memcmp(bytes.data(), kZMagic, 8) == 0;
}

std::vector<std::uint8_t>
deflateBytes(const std::uint8_t *raw, std::size_t n)
{
#ifdef EMC_HAVE_ZLIB
    uLongf zlen = compressBound(static_cast<uLong>(n));
    std::vector<std::uint8_t> out(zlen);
    const int rc = compress2(out.data(), &zlen, raw,
                             static_cast<uLong>(n),
                             Z_DEFAULT_COMPRESSION);
    if (rc != Z_OK)
        throw Error("deflate failed");
    out.resize(zlen);
    return out;
#else
    (void)raw;
    (void)n;
    throw Error("compression unavailable: built without zlib");
#endif
}

std::vector<std::uint8_t>
inflateBytes(const std::uint8_t *z, std::size_t n, std::size_t raw_size)
{
#ifdef EMC_HAVE_ZLIB
    std::vector<std::uint8_t> raw(raw_size);
    uLongf got = static_cast<uLongf>(raw_size);
    const int rc = uncompress(raw.data(), &got, z,
                              static_cast<uLong>(n));
    if (rc != Z_OK || got != raw_size)
        throw Error("inflate failed (stream corrupt or truncated)");
    return raw;
#else
    (void)z;
    (void)n;
    (void)raw_size;
    throw Error("compressed data needs a zlib-enabled build");
#endif
}

std::vector<std::uint8_t>
compressImage(const std::vector<std::uint8_t> &raw)
{
    std::vector<std::uint8_t> z = deflateBytes(raw.data(), raw.size());
    std::vector<std::uint8_t> out(16 + z.size());
    std::memcpy(out.data(), kZMagic, 8);
    const std::uint64_t rawlen = raw.size();
    for (unsigned i = 0; i < 8; ++i)
        out[8 + i] = static_cast<std::uint8_t>(rawlen >> (8 * i));
    std::memcpy(out.data() + 16, z.data(), z.size());
    return out;
}

std::vector<std::uint8_t>
maybeDecompressImage(std::vector<std::uint8_t> bytes)
{
    if (!isCompressedImage(bytes))
        return bytes;
    std::uint64_t rawlen = 0;
    for (unsigned i = 0; i < 8; ++i)
        rawlen |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
    try {
        return inflateBytes(bytes.data() + 16, bytes.size() - 16,
                            rawlen);
    } catch (const Error &) {
        throw Error("inflate of compressed checkpoint failed (file "
                    "corrupt or truncated)");
    }
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes,
          bool compress)
{
    std::vector<std::uint8_t> zimg;
    const std::vector<std::uint8_t> &img =
        compress ? (zimg = compressImage(bytes)) : bytes;
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        throw Error("cannot open '" + tmp + "' for writing");
    const std::size_t wrote =
        img.empty() ? 0 : std::fwrite(img.data(), 1, img.size(), f);
    const bool ok = (wrote == img.size()) && (std::fclose(f) == 0);
    if (!ok) {
        std::remove(tmp.c_str());
        throw Error("short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw Error("cannot rename '" + tmp + "' to '" + path + "'");
    }
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw Error("cannot open checkpoint '" + path + "'");
    std::vector<std::uint8_t> out;
    // Size the buffer once and read in a single pass; checkpoint
    // images run to ~100 MB, so incremental vector growth over small
    // reads costs real restore time. Unseekable inputs (pipes) fall
    // back to chunked reads.
    long size = -1;
    if (std::fseek(f, 0, SEEK_END) == 0) {
        size = std::ftell(f);
        if (std::fseek(f, 0, SEEK_SET) != 0)
            size = -1;
    }
    if (size > 0) {
        out.resize(static_cast<std::size_t>(size));
        const std::size_t got =
            std::fread(out.data(), 1, out.size(), f);
        out.resize(got);
    }
    std::uint8_t buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err)
        throw Error("read error on checkpoint '" + path + "'");
    return maybeDecompressImage(std::move(out));
}

} // namespace emc::ckpt
