/**
 * @file
 * Content-addressed checkpoint store implementation (store.hh).
 */

#include "ckpt/store.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include <unistd.h>

#include "ckpt/ckpt.hh"

namespace emc::ckpt
{

namespace fs = std::filesystem;

namespace
{

constexpr char kManifestMagic[] = "EMCSTOR1";
constexpr std::uint32_t kManifestVersion = 1;

/** One chunk of a stored image, in reassembly order. */
struct ChunkRef
{
    std::uint64_t hash = 0;
    std::uint64_t length = 0;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(hash);
        ar.io(length);
    }
};

struct Manifest
{
    std::uint32_t version = kManifestVersion;
    std::uint64_t image_bytes = 0;
    std::vector<ChunkRef> chunks;

    template <class A>
    void
    ser(A &ar)
    {
        ar.marker(kManifestMagic);
        ar.io(version);
        ar.io(image_bytes);
        ar.io(chunks);
    }
};

void
validateName(const std::string &name)
{
    bool ok = !name.empty() && name != "." && name != "..";
    for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.'
              || c == '_' || c == '-')) {
            ok = false;
        }
    }
    if (!ok) {
        throw Error("invalid store image name '" + name
                    + "' (use [A-Za-z0-9._-])");
    }
}

Manifest
loadManifest(const std::string &path)
{
    Manifest m;
    Deser ar = Ar::loader(readFile(path));
    ar.io(m);
    if (m.version != kManifestVersion) {
        throw Error("unsupported store manifest version "
                    + std::to_string(m.version));
    }
    if (!ar.exhausted())
        throw Error("store manifest has trailing bytes: " + path);
    return m;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Atomically publish an object file. Concurrent sweep workers put
 * into one store, so the temp name must be writer-unique (a shared
 * name lets one writer truncate another's in-flight bytes), and
 * losing the rename race is success: objects are content-addressed,
 * so whatever landed at @p path has the same bytes.
 */
void
writeObject(const std::string &path,
            const std::vector<std::uint8_t> &bytes)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        throw Error("cannot open '" + tmp + "' for writing");
    const std::size_t wrote =
        bytes.empty() ? 0
                      : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool ok = (wrote == bytes.size()) && (std::fclose(f) == 0);
    if (!ok) {
        std::remove(tmp.c_str());
        throw Error("short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        std::error_code ec;
        if (!fs::exists(path, ec))
            throw Error("cannot rename '" + tmp + "' to '" + path
                        + "'");
    }
}

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
chunkSpans(const std::vector<std::uint8_t> &image)
{
    // Section-aware spans for checkpoint images (see store.hh); a
    // parse failure means "some other blob" and gets one flat span.
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    try {
        std::size_t payload_off = 0;
        const Header h = parseHeader(image, &payload_off, true);
        spans.emplace_back(0, payload_off);
        for (const Section &s : h.sections) {
            spans.emplace_back(payload_off
                                   + static_cast<std::size_t>(s.offset),
                               static_cast<std::size_t>(s.length));
        }
        // Tolerate payload bytes past the TOC (future sections).
        std::size_t covered = payload_off;
        for (const Section &s : h.sections)
            covered += static_cast<std::size_t>(s.length);
        if (covered < image.size())
            spans.emplace_back(covered, image.size() - covered);
        return spans;
    } catch (const Error &) {
        spans.clear();
        spans.emplace_back(0, image.size());
        return spans;
    }
}

Store::Store(std::string dir, std::size_t chunk_bytes)
    : dir_(std::move(dir)),
      chunk_bytes_(chunk_bytes < 4096 ? 4096 : chunk_bytes)
{
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / "objects", ec);
    if (ec) {
        throw Error("cannot create store directory '" + dir_
                    + "': " + ec.message());
    }
}

std::string
Store::manifestPath(const std::string &name) const
{
    return dir_ + "/" + name + ".manifest";
}

std::string
Store::objectPath(std::uint64_t hash, std::uint64_t length) const
{
    return dir_ + "/objects/" + hex16(hash) + "-" + hex16(length);
}

StorePut
Store::put(const std::string &name,
           const std::vector<std::uint8_t> &image)
{
    validateName(name);
    const std::vector<std::uint8_t> raw = maybeDecompressImage(image);

    StorePut out;
    out.image_bytes = raw.size();

    Manifest m;
    m.image_bytes = raw.size();
    for (const auto &[span_off, span_len] : chunkSpans(raw)) {
        for (std::size_t off = 0; off < span_len;
             off += chunk_bytes_) {
            const std::size_t len =
                std::min(chunk_bytes_, span_len - off);
            const std::uint8_t *p = raw.data() + span_off + off;
            const std::uint64_t h = fnv1a(p, len);
            m.chunks.push_back({h, len});
            ++out.chunks;

            const std::string opath = objectPath(h, len);
            std::error_code ec;
            if (fs::exists(opath, ec)) {
                ++out.reused_chunks;
                out.reused_bytes += len;
                continue;
            }
            std::vector<std::uint8_t> chunk(p, p + len);
            if (compressionAvailable())
                chunk = compressImage(chunk);
            writeObject(opath, chunk);
            ++out.new_chunks;
            out.new_bytes += chunk.size();
        }
    }

    Ser ar = Ar::saver();
    ar.io(m);
    const std::vector<std::uint8_t> mb = ar.takeBytes();
    writeFile(manifestPath(name), mb);
    out.new_bytes += mb.size();
    return out;
}

std::vector<std::uint8_t>
Store::get(const std::string &name) const
{
    validateName(name);
    if (!has(name)) {
        throw Error("store has no image named '" + name + "' in "
                    + dir_);
    }
    const Manifest m = loadManifest(manifestPath(name));
    std::vector<std::uint8_t> out;
    out.reserve(static_cast<std::size_t>(m.image_bytes));
    for (const ChunkRef &c : m.chunks) {
        std::vector<std::uint8_t> chunk;
        try {
            chunk = readFile(objectPath(c.hash, c.length));
        } catch (const Error &) {
            throw;
        } catch (const std::exception &) {
            // A corrupted EMCKPTZ wrapper can fail before the hash
            // check (e.g. bad_alloc from a garbage length field);
            // report it as the store corruption it is.
            throw Error("store object " + hex16(c.hash)
                        + " is corrupt (container unreadable)");
        }
        if (chunk.size() != c.length
            || fnv1a(chunk.data(), chunk.size()) != c.hash) {
            throw Error("store object " + hex16(c.hash)
                        + " is corrupt (hash/length mismatch)");
        }
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    if (out.size() != m.image_bytes) {
        throw Error("store image '" + name
                    + "' reassembled to the wrong size");
    }
    return out;
}

bool
Store::has(const std::string &name) const
{
    std::error_code ec;
    return fs::exists(manifestPath(name), ec);
}

void
Store::remove(const std::string &name)
{
    validateName(name);
    std::error_code ec;
    fs::remove(manifestPath(name), ec);
}

std::vector<std::string>
Store::names() const
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        const fs::path p = e.path();
        if (p.extension() == ".manifest")
            out.push_back(p.stem().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

StoreStats
Store::stats() const
{
    StoreStats s;
    for (const std::string &n : names()) {
        ++s.manifests;
        std::error_code ec;
        s.manifest_bytes += fs::file_size(manifestPath(n), ec);
        s.logical_bytes += loadManifest(manifestPath(n)).image_bytes;
    }
    std::error_code ec;
    for (const auto &e :
         fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
        // Published objects only — not .tmp.PID files from writers
        // that died mid-put (gc() reclaims those).
        if (!e.is_regular_file()
            || e.path().filename().string().find('.')
                   != std::string::npos) {
            continue;
        }
        ++s.objects;
        s.object_bytes += e.file_size();
    }
    return s;
}

std::uint64_t
Store::gc()
{
    std::set<std::string> live;
    for (const std::string &n : names()) {
        for (const ChunkRef &c : loadManifest(manifestPath(n)).chunks)
            live.insert(hex16(c.hash) + "-" + hex16(c.length));
    }
    std::uint64_t freed = 0;
    std::error_code ec;
    std::vector<fs::path> dead;
    for (const auto &e :
         fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
        if (e.is_regular_file()
            && live.find(e.path().filename().string()) == live.end()) {
            dead.push_back(e.path());
        }
    }
    for (const fs::path &p : dead) {
        std::error_code fec;
        const std::uint64_t sz = fs::file_size(p, fec);
        if (fs::remove(p, fec))
            freed += sz;
    }
    return freed;
}

} // namespace emc::ckpt
