/**
 * @file
 * Checkpoint serialization archive (DESIGN.md §7).
 *
 * A single concrete archive class, ckpt::Ar, works in either save or
 * load direction; `Ser` and `Deser` are aliases for call sites that
 * want the direction in the name. Components expose
 *
 *     template <class A> void ser(A &ar) { ar.io(field_); ... }
 *
 * defined inline in their class bodies. Because the method is a
 * template and the dispatch helper is a *member* of Ar (a dependent
 * call, resolved at instantiation time), component headers need no
 * ckpt include and no forward declaration — only translation units
 * that actually save/load pull in this header.
 *
 * Encoding: every scalar is one 64-bit little-endian word (bools,
 * enums and narrower integers widen; doubles are bit-cast, so values
 * round-trip exactly). Containers are length-prefixed; unordered
 * containers are written in sorted key order so the byte stream is
 * independent of hash seeding and insertion history. The format
 * trades space for byte-level determinism and simplicity — checkpoint
 * files are transient artifacts, not archives.
 *
 * Errors are recoverable by design: a truncated or corrupt stream
 * throws ckpt::Error instead of calling emc_fatal, so `emcckpt
 * verify` can exit nonzero, bench::runMany can fail one job without
 * losing the batch, and tests can EXPECT_THROW.
 */

#ifndef EMC_CKPT_SERIAL_HH
#define EMC_CKPT_SERIAL_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace emc::ckpt
{

/** Recoverable checkpoint I/O / validation failure. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/** Bidirectional binary archive (see file header for the contract). */
class Ar
{
  public:
    /** An archive that appends to an internal byte buffer. */
    static Ar
    saver()
    {
        return Ar(true, {});
    }

    /** An archive that consumes @p bytes from the front. */
    static Ar
    loader(std::vector<std::uint8_t> bytes)
    {
        Ar ar(false, std::move(bytes));
        ar.rd_ = ar.buf_.data();
        ar.rd_size_ = ar.buf_.size();
        return ar;
    }

    /**
     * A loading archive that borrows @p n bytes at @p data instead of
     * owning a copy — restore paths hand whole ~100 MB images through
     * here, where the copy is measurable. The caller keeps the bytes
     * alive for the archive's lifetime.
     */
    static Ar
    loaderView(const std::uint8_t *data, std::size_t n)
    {
        Ar ar(false, {});
        ar.rd_ = data;
        ar.rd_size_ = n;
        return ar;
    }

    bool saving() const { return saving_; }
    bool loading() const { return !saving_; }

    /** Bytes written so far (save) / consumed so far (load). */
    std::uint64_t pos() const { return pos_; }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    std::vector<std::uint8_t>
    takeBytes()
    {
        return std::move(buf_);
    }

    /** True when a loading archive consumed every byte. */
    bool exhausted() const { return loading() && pos_ == rd_size_; }

    /**
     * The primitive: one 64-bit little-endian word. Loading past the
     * end of the stream throws ckpt::Error.
     */
    void
    raw64(std::uint64_t &v)
    {
        // On little-endian hosts the wire format (64-bit LE words) is
        // the in-memory representation, so whole words move with
        // memcpy; the shift loops are the byte-order-independent
        // fallback. Either path produces the identical byte stream.
        if (saving_) {
            std::uint8_t b[8];
            if constexpr (std::endian::native == std::endian::little) {
                std::memcpy(b, &v, 8);
            } else {
                for (unsigned i = 0; i < 8; ++i)
                    b[i] = static_cast<std::uint8_t>(v >> (8 * i));
            }
            buf_.insert(buf_.end(), b, b + 8);
            pos_ += 8;
            return;
        }
        if (pos_ + 8 > rd_size_) {
            throw Error("checkpoint truncated: need 8 bytes at offset "
                        + std::to_string(pos_) + " of "
                        + std::to_string(rd_size_));
        }
        std::uint64_t w = 0;
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(&w, rd_ + pos_, 8);
        } else {
            for (unsigned i = 0; i < 8; ++i)
                w |= static_cast<std::uint64_t>(rd_[pos_ + i]) << (8 * i);
        }
        pos_ += 8;
        v = w;
    }

    /**
     * Write (save) or validate (load) an 8-byte tag. A mismatch on
     * load means the stream is misaligned or from a different layout
     * and throws.
     */
    void
    marker(const char *tag)
    {
        const std::uint64_t want = packTag(tag);
        std::uint64_t got = want;
        raw64(got);
        if (loading() && got != want) {
            throw Error(std::string("checkpoint marker mismatch: "
                                    "expected '")
                        + tag + "' at offset "
                        + std::to_string(pos_ - 8));
        }
    }

    /** First 8 bytes of @p tag packed little-endian (zero padded). */
    static std::uint64_t
    packTag(const char *tag)
    {
        std::uint64_t w = 0;
        for (unsigned i = 0; i < 8 && tag[i] != '\0'; ++i) {
            w |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(tag[i]))
                 << (8 * i);
        }
        return w;
    }

    // ---- dispatch -----------------------------------------------------

    /**
     * Serialize one value. Classes with a `ser(A&)` member delegate to
     * it; scalars widen to one raw64 word. Raw pointers are rejected
     * at compile time: host addresses must never reach a checkpoint.
     */
    template <class T>
    void
    io(T &v)
    {
        static_assert(!std::is_pointer_v<T>,
                      "checkpoints must not contain raw pointers");
        if constexpr (requires(T &t, Ar &a) { t.ser(a); }) {
            v.ser(*this);
        } else if constexpr (std::is_same_v<T, bool>) {
            std::uint64_t w = v ? 1 : 0;
            raw64(w);
            if (loading())
                v = (w != 0);
        } else if constexpr (std::is_enum_v<T>) {
            using U = std::underlying_type_t<T>;
            std::uint64_t w =
                static_cast<std::uint64_t>(static_cast<U>(v));
            raw64(w);
            if (loading())
                v = static_cast<T>(static_cast<U>(w));
        } else if constexpr (std::is_floating_point_v<T>) {
            static_assert(sizeof(T) == sizeof(std::uint64_t),
                          "only 64-bit floating point is supported");
            std::uint64_t w = std::bit_cast<std::uint64_t>(v);
            raw64(w);
            if (loading())
                v = std::bit_cast<T>(w);
        } else if constexpr (std::is_integral_v<T>) {
            std::uint64_t w = static_cast<std::uint64_t>(v);
            raw64(w);
            if (loading())
                v = static_cast<T>(w);
        } else {
            // Dependent-false: fires only when this branch is
            // instantiated (C++20 has no static_assert(false) here).
            static_assert(!std::is_same_v<T, T>,
                          "no serialization defined for this type");
        }
    }

    // ---- container overloads ------------------------------------------

    void
    io(std::string &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (loading())
            v.assign(static_cast<std::size_t>(n), '\0');
        for (std::size_t i = 0; i < v.size(); i += 8) {
            std::uint64_t w = 0;
            if (saving_) {
                for (std::size_t j = 0; j < 8 && i + j < v.size(); ++j) {
                    w |= static_cast<std::uint64_t>(
                             static_cast<std::uint8_t>(v[i + j]))
                         << (8 * j);
                }
            }
            raw64(w);
            if (loading()) {
                for (std::size_t j = 0; j < 8 && i + j < v.size(); ++j)
                    v[i + j] = static_cast<char>((w >> (8 * j)) & 0xff);
            }
        }
    }

    template <class T>
    void
    io(std::vector<T> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (loading()) {
            v.clear();
            v.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : v)
            io(e);
    }

    /**
     * Bulk path for word vectors: the element encoding is exactly the
     * little-endian in-memory layout, so the whole payload moves as
     * one memcpy on little-endian hosts (byte stream unchanged).
     */
    void
    io(std::vector<std::uint64_t> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if constexpr (std::endian::native == std::endian::little) {
            const std::size_t len = static_cast<std::size_t>(n) * 8;
            if (saving_) {
                const auto *p =
                    reinterpret_cast<const std::uint8_t *>(v.data());
                // lint-ok: ckpt-field (byte view, not a host address)
                buf_.insert(buf_.end(), p, p + len);
                pos_ += len;
                return;
            }
            if (pos_ + len > rd_size_) {
                throw Error(
                    "checkpoint truncated: need "
                    + std::to_string(len) + " bytes at offset "
                    + std::to_string(pos_) + " of "
                    + std::to_string(rd_size_));
            }
            v.resize(static_cast<std::size_t>(n));
            if (len != 0)
                std::memcpy(v.data(), rd_ + pos_, len);
            pos_ += len;
            return;
        }
        if (loading()) {
            v.clear();
            v.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : v)
            io(e);
    }

    void
    io(std::vector<bool> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (loading())
            v.assign(static_cast<std::size_t>(n), false);
        for (std::size_t i = 0; i < v.size(); ++i) {
            bool b = v[i];
            io(b);
            if (loading())
                v[i] = b;
        }
    }

    template <class T>
    void
    io(std::deque<T> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (loading()) {
            v.clear();
            v.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : v)
            io(e);
    }

    template <class T>
    void
    io(std::list<T> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (loading()) {
            v.clear();
            v.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : v)
            io(e);
    }

    template <class A, class B>
    void
    io(std::pair<A, B> &v)
    {
        io(v.first);
        io(v.second);
    }

    template <class K, class V>
    void
    io(std::map<K, V> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (saving_) {
            for (auto &kv : v) {
                K k = kv.first;
                io(k);
                io(kv.second);
            }
            return;
        }
        v.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            K k{};
            V val{};
            io(k);
            io(val);
            v.emplace(std::move(k), std::move(val));
        }
    }

    template <class K>
    void
    io(std::set<K> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (saving_) {
            for (const K &kc : v) {
                K k = kc;
                io(k);
            }
            return;
        }
        v.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            K k{};
            io(k);
            v.insert(std::move(k));
        }
    }

    /** Unordered maps are written in sorted key order (determinism). */
    template <class K, class V>
    void
    io(std::unordered_map<K, V> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (saving_) {
            std::vector<K> keys;
            keys.reserve(v.size());
            for (const auto &kv : v)
                keys.push_back(kv.first);
            std::sort(keys.begin(), keys.end());
            for (K &k : keys) {
                io(k);
                io(v.at(k));
            }
            return;
        }
        v.clear();
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            K k{};
            V val{};
            io(k);
            io(val);
            v.emplace(std::move(k), std::move(val));
        }
    }

    template <class K>
    void
    io(std::unordered_set<K> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (saving_) {
            std::vector<K> keys(v.begin(), v.end());
            std::sort(keys.begin(), keys.end());
            for (K &k : keys)
                io(k);
            return;
        }
        v.clear();
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            K k{};
            io(k);
            v.insert(std::move(k));
        }
    }

  private:
    Ar(bool saving, std::vector<std::uint8_t> bytes)
        : saving_(saving), buf_(std::move(bytes))
    {}

    bool saving_;
    std::vector<std::uint8_t> buf_;
    /// Loading source: buf_'s bytes (owning) or a borrowed span.
    const std::uint8_t *rd_ = nullptr;
    std::size_t rd_size_ = 0;
    std::uint64_t pos_ = 0;
};

/** Direction-named aliases (the visitor API's save/load spellings). */
using Ser = Ar;
using Deser = Ar;

/** Convenience: serialize @p v into a fresh byte buffer. */
template <class T>
std::vector<std::uint8_t>
save(T &v)
{
    Ser ar = Ar::saver();
    ar.io(v);
    return ar.takeBytes();
}

/** Convenience: deserialize @p v from @p bytes. */
template <class T>
void
load(T &v, std::vector<std::uint8_t> bytes)
{
    Deser ar = Ar::loader(std::move(bytes));
    ar.io(v);
}

} // namespace emc::ckpt

#endif // EMC_CKPT_SERIAL_HH
