/**
 * @file
 * Content-addressed checkpoint store (DESIGN.md §9).
 *
 * A Store turns a directory into a deduplicated home for checkpoint
 * images. Images are split into content-hashed chunks; each distinct
 * chunk is written once to `<dir>/objects/<hash>-<len>` (deflate
 * compressed in zlib builds, raw otherwise — the chunk container is
 * the same EMCKPTZ framing readFile() already inflates transparently)
 * and a small manifest `<dir>/<name>.manifest` lists the chunk
 * sequence that reassembles the image.
 *
 * Chunking is *section-aware*: when the image parses as an EMCKPT1
 * checkpoint, the chunk stream restarts at the header boundary and at
 * every payload-section boundary from the TOC. Config-point images of
 * one sweep differ only in a few sections (EMC, prefetcher, cores)
 * while the dominant ones (functional memory, page tables, workload)
 * are byte-identical after a shared warmup — restarting chunks per
 * section keeps those shared bytes aligned, so every config point
 * after the first stores only its small delta. Non-checkpoint byte
 * blobs fall back to straight fixed-size chunking.
 *
 * Determinism contract: get(name) returns exactly the raw
 * (decompressed) bytes that were put(); chunk hashes are re-verified
 * on read so a corrupt or truncated object fails loudly instead of
 * reassembling garbage. Like the rest of src/ckpt, a store is a
 * transient artifact of one simulator version, not an archive format.
 */

#ifndef EMC_CKPT_STORE_HH
#define EMC_CKPT_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/serial.hh"

namespace emc::ckpt
{

/** Outcome of one Store::put() (all sizes in bytes). */
struct StorePut
{
    std::uint64_t image_bytes = 0;    ///< raw image size
    std::uint64_t chunks = 0;         ///< chunks the image split into
    std::uint64_t new_chunks = 0;     ///< chunks not previously stored
    std::uint64_t reused_chunks = 0;  ///< chunks deduplicated away
    std::uint64_t new_bytes = 0;      ///< on-disk bytes this put added
    std::uint64_t reused_bytes = 0;   ///< raw bytes covered by reuse
};

/** Aggregate store accounting (Store::stats()). */
struct StoreStats
{
    std::uint64_t manifests = 0;      ///< images in the store
    std::uint64_t objects = 0;        ///< distinct chunks on disk
    std::uint64_t object_bytes = 0;   ///< on-disk chunk bytes
    std::uint64_t manifest_bytes = 0; ///< on-disk manifest bytes
    std::uint64_t logical_bytes = 0;  ///< sum of raw image sizes

    /** Total on-disk footprint. */
    std::uint64_t
    storedBytes() const
    {
        return object_bytes + manifest_bytes;
    }
};

class Store
{
  public:
    /**
     * Open (creating directories as needed) the store at @p dir.
     * @p chunk_bytes is the chunking granularity for images written
     * through this handle; reads accept any granularity.
     */
    explicit Store(std::string dir, std::size_t chunk_bytes = 1 << 16);

    /**
     * Store @p image under @p name (names are restricted to
     * [A-Za-z0-9._-]; no path separators). EMCKPTZ-compressed images
     * are inflated first so dedup always runs over raw bytes. An
     * existing manifest of the same name is replaced atomically.
     */
    StorePut put(const std::string &name,
                 const std::vector<std::uint8_t> &image);

    /**
     * Reassemble the raw image stored under @p name, re-verifying
     * every chunk hash. Throws ckpt::Error when absent or corrupt.
     */
    std::vector<std::uint8_t> get(const std::string &name) const;

    /** True when a manifest for @p name exists. */
    bool has(const std::string &name) const;

    /** Drop @p name's manifest (chunks stay until gc()). */
    void remove(const std::string &name);

    /** Sorted names of every stored image. */
    std::vector<std::string> names() const;

    /** Current accounting over manifests and objects. */
    StoreStats stats() const;

    /**
     * Delete every object no manifest references.
     * @return on-disk bytes freed.
     */
    std::uint64_t gc();

    const std::string &dir() const { return dir_; }

  private:
    std::string manifestPath(const std::string &name) const;
    std::string objectPath(std::uint64_t hash,
                           std::uint64_t length) const;

    std::string dir_;
    std::size_t chunk_bytes_;
};

/**
 * Chunk-boundary plan for @p image: section-aware spans for EMCKPT1
 * images, one whole-buffer span otherwise (see file header). Exposed
 * for `emcckpt diff`, which reports section-level shared-vs-unique
 * bytes with the exact chunking the store would use.
 */
std::vector<std::pair<std::size_t, std::size_t>>
chunkSpans(const std::vector<std::uint8_t> &image);

} // namespace emc::ckpt

#endif // EMC_CKPT_STORE_HH
