/**
 * @file
 * McPAT/CACTI-flavored event-energy model (Section 5 of the paper
 * models chip energy with McPAT and DRAM power with CACTI; we use
 * order-of-magnitude per-event energies and per-structure static
 * powers with the same accounting rules).
 *
 * Accounting rules mirrored from the paper:
 *  - shared structures (LLC, ring, MC, EMC, DRAM) dissipate static
 *    power until the completion of the entire workload;
 *  - each core's dynamic event counters stop at its own completion;
 *  - the chain-generation unit charges one extra CDB broadcast per
 *    chain uop (pseudo wake-up), an RRT read per source operand, an
 *    RRT write per destination and one ROB read per transmitted uop;
 *  - EMC static power models a stripped-down core: no front-end, no
 *    FP pipeline, no rename tables (10.4% of a full core).
 */

#ifndef EMC_ENERGY_ENERGY_MODEL_HH
#define EMC_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace emc
{

/** Per-event dynamic energies (nJ) and static powers (W). */
struct EnergyParams
{
    // Core dynamic events (nJ).
    double uop_exec = 0.08;
    double fp_uop_extra = 0.12;
    double cdb_broadcast = 0.01;
    double rob_read = 0.004;
    double rrt_access = 0.002;
    double l1_access = 0.02;

    // Uncore dynamic events (nJ).
    double llc_access = 0.35;
    double ring_hop_control = 0.03;
    double ring_hop_data = 0.12;

    // DRAM dynamic events (nJ).
    double dram_activate = 2.5;
    double dram_rw_burst = 4.0;
    double dram_refresh = 30.0;

    // EMC dynamic events (nJ) — lightweight 2-wide back-end.
    double emc_uop_exec = 0.03;
    double emc_dcache_access = 0.01;

    // Static powers (W) at 3.2 GHz.
    double core_static_w = 1.8;
    double llc_static_w_per_mb = 0.25;
    double ring_static_w = 0.3;
    double mc_static_w = 0.4;
    double emc_static_w = 0.1872;  ///< 10.4% of a core (paper §6.6)
    double dram_static_w_per_channel = 0.9;
};

/** Event totals the System hands to the model at the end of a run. */
struct EnergyEvents
{
    // Cores (summed over cores; counters stop at each core's finish).
    std::uint64_t uops_executed = 0;
    std::uint64_t fp_uops = 0;
    std::uint64_t cdb_broadcasts = 0;
    std::uint64_t rob_reads = 0;
    std::uint64_t rrt_accesses = 0;
    std::uint64_t l1_accesses = 0;

    // Uncore.
    std::uint64_t llc_accesses = 0;
    std::uint64_t ring_control_hops = 0;
    std::uint64_t ring_data_hops = 0;

    // DRAM.
    std::uint64_t dram_activates = 0;
    std::uint64_t dram_bursts = 0;
    std::uint64_t dram_refreshes = 0;

    // EMC.
    std::uint64_t emc_uops = 0;
    std::uint64_t emc_dcache_accesses = 0;

    // Durations.
    Cycle total_cycles = 0;       ///< whole-workload completion
    double clock_ghz = 3.2;
};

/** Breakdown of one run's energy (mJ). */
struct EnergyBreakdown
{
    double core_dynamic_mj = 0;
    double uncore_dynamic_mj = 0;
    double dram_dynamic_mj = 0;
    double emc_dynamic_mj = 0;
    double static_mj = 0;

    double totalMj() const
    {
        return core_dynamic_mj + uncore_dynamic_mj + dram_dynamic_mj
               + emc_dynamic_mj + static_mj;
    }
};

/** The energy model: pure function of events and parameters. */
class EnergyModel
{
  public:
    /**
     * @param params per-event energies / static powers
     * @param num_cores cores on the chip
     * @param llc_mb total LLC capacity in MB
     * @param channels DRAM channels
     * @param emc_present EMC static power included
     * @param num_mcs memory controllers
     */
    EnergyModel(const EnergyParams &params, unsigned num_cores,
                double llc_mb, unsigned channels, bool emc_present,
                unsigned num_mcs = 1)
        : p_(params), num_cores_(num_cores), llc_mb_(llc_mb),
          channels_(channels), emc_present_(emc_present),
          num_mcs_(num_mcs)
    {}

    /** Compute the energy breakdown for @p ev. */
    EnergyBreakdown compute(const EnergyEvents &ev) const;

    const EnergyParams &params() const { return p_; }

  private:
    EnergyParams p_;
    unsigned num_cores_;
    double llc_mb_;
    unsigned channels_;
    bool emc_present_;
    unsigned num_mcs_;
};

} // namespace emc

#endif // EMC_ENERGY_ENERGY_MODEL_HH
