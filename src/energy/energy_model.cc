#include "energy/energy_model.hh"

namespace emc
{

EnergyBreakdown
EnergyModel::compute(const EnergyEvents &ev) const
{
    constexpr double kNjToMj = 1e-6;
    EnergyBreakdown out;

    out.core_dynamic_mj =
        kNjToMj
        * (static_cast<double>(ev.uops_executed) * p_.uop_exec
           + static_cast<double>(ev.fp_uops) * p_.fp_uop_extra
           + static_cast<double>(ev.cdb_broadcasts) * p_.cdb_broadcast
           + static_cast<double>(ev.rob_reads) * p_.rob_read
           + static_cast<double>(ev.rrt_accesses) * p_.rrt_access
           + static_cast<double>(ev.l1_accesses) * p_.l1_access);

    out.uncore_dynamic_mj =
        kNjToMj
        * (static_cast<double>(ev.llc_accesses) * p_.llc_access
           + static_cast<double>(ev.ring_control_hops)
                 * p_.ring_hop_control
           + static_cast<double>(ev.ring_data_hops) * p_.ring_hop_data);

    out.dram_dynamic_mj =
        kNjToMj
        * (static_cast<double>(ev.dram_activates) * p_.dram_activate
           + static_cast<double>(ev.dram_bursts) * p_.dram_rw_burst
           + static_cast<double>(ev.dram_refreshes) * p_.dram_refresh);

    out.emc_dynamic_mj =
        kNjToMj
        * (static_cast<double>(ev.emc_uops) * p_.emc_uop_exec
           + static_cast<double>(ev.emc_dcache_accesses)
                 * p_.emc_dcache_access);

    const double seconds =
        static_cast<double>(ev.total_cycles) / (ev.clock_ghz * 1e9);
    double static_w = num_cores_ * p_.core_static_w
                      + llc_mb_ * p_.llc_static_w_per_mb
                      + p_.ring_static_w + num_mcs_ * p_.mc_static_w
                      + channels_ * p_.dram_static_w_per_channel;
    if (emc_present_)
        static_w += num_mcs_ * p_.emc_static_w;
    out.static_mj = static_w * seconds * 1e3;

    return out;
}

} // namespace emc
