#include "core/branch_predictor.hh"

#include "common/log.hh"

namespace emc
{

HybridBranchPredictor::HybridBranchPredictor(unsigned table_bits,
                                             unsigned history_bits)
    : mask_((1u << table_bits) - 1),
      history_mask_((1ull << history_bits) - 1),
      bimodal_(1u << table_bits, 2),
      gshare_(1u << table_bits, 2),
      chooser_(1u << table_bits, 2)
{
    emc_assert(history_bits <= table_bits,
               "history longer than the gshare index");
}

bool
HybridBranchPredictor::predictAndUpdate(Addr pc, bool taken)
{
    return update(pc, taken, &stats_);
}

void
HybridBranchPredictor::warmUpdate(Addr pc, bool taken)
{
    // Same training, no counters: stats would otherwise accumulate
    // during functional warming, which runs outside simulated time.
    update(pc, taken, nullptr);
}

bool
HybridBranchPredictor::update(Addr pc, bool taken,
                              BranchPredictorStats *stats)
{
    if (stats)
        ++stats->lookups;

    std::uint8_t &b = bimodal_[bimodalIndex(pc)];
    std::uint8_t &g = gshare_[gshareIndex(pc)];
    std::uint8_t &ch = chooser_[bimodalIndex(pc)];

    const bool bim_pred = predictCounter(b);
    const bool gsh_pred = predictCounter(g);
    const bool use_gshare = ch >= 2;
    const bool pred = use_gshare ? gsh_pred : bim_pred;
    if (stats) {
        if (use_gshare)
            ++stats->gshare_used;
        else
            ++stats->bimodal_used;
    }

    // Chooser trains toward whichever component was right (only when
    // they disagree).
    if (bim_pred != gsh_pred)
        train(ch, gsh_pred == taken);

    train(b, taken);
    train(g, taken);
    ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & history_mask_;

    const bool mispredict = pred != taken;
    if (mispredict && stats)
        ++stats->mispredicts;
    return mispredict;
}

} // namespace emc
