#include "core/branch_predictor.hh"

#include "common/log.hh"

namespace emc
{

HybridBranchPredictor::HybridBranchPredictor(unsigned table_bits,
                                             unsigned history_bits)
    : mask_((1u << table_bits) - 1),
      history_mask_((1ull << history_bits) - 1),
      bimodal_(1u << table_bits, 2),
      gshare_(1u << table_bits, 2),
      chooser_(1u << table_bits, 2)
{
    emc_assert(history_bits <= table_bits,
               "history longer than the gshare index");
}

bool
HybridBranchPredictor::predictAndUpdate(Addr pc, bool taken)
{
    ++stats_.lookups;

    std::uint8_t &b = bimodal_[bimodalIndex(pc)];
    std::uint8_t &g = gshare_[gshareIndex(pc)];
    std::uint8_t &ch = chooser_[bimodalIndex(pc)];

    const bool bim_pred = predictCounter(b);
    const bool gsh_pred = predictCounter(g);
    const bool use_gshare = ch >= 2;
    const bool pred = use_gshare ? gsh_pred : bim_pred;
    if (use_gshare)
        ++stats_.gshare_used;
    else
        ++stats_.bimodal_used;

    // Chooser trains toward whichever component was right (only when
    // they disagree).
    if (bim_pred != gsh_pred)
        train(ch, gsh_pred == taken);

    train(b, taken);
    train(g, taken);
    ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & history_mask_;

    const bool mispredict = pred != taken;
    if (mispredict)
        ++stats_.mispredicts;
    return mispredict;
}

} // namespace emc
