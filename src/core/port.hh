/**
 * @file
 * Interfaces between an out-of-order core and the rest of the chip.
 * The System (src/sim) implements CorePort; the core implements the
 * notification entry points declared on the Core class itself.
 */

#ifndef EMC_CORE_PORT_HH
#define EMC_CORE_PORT_HH

#include <cstdint>

#include "common/types.hh"
#include "emc/chain.hh"

namespace emc
{

/** Services the chip provides to a core. */
class CorePort
{
  public:
    virtual ~CorePort() = default;

    /**
     * Issue a demand line-fill request after an L1D miss. The System
     * routes it over the control ring to the owning LLC slice and, on
     * an LLC miss, onward to the memory controller. Completion is
     * delivered via Core::fillArrived().
     *
     * @param core requesting core
     * @param paddr_line line-aligned physical address
     * @param pc static PC of the triggering load (miss predictor)
     * @param for_store fetch-on-write triggered by a store drain
     * @param addr_tainted the address derived from an earlier LLC miss
     *                     (dependent-miss bookkeeping, Figure 2)
     * @retval false transient backpressure; the core retries next cycle
     */
    virtual bool requestLine(CoreId core, Addr paddr_line, Addr pc,
                             bool for_store, bool addr_tainted) = 0;

    /**
     * Write-through store data to the LLC (fire-and-forget; rides the
     * data ring and may trigger a fetch-on-write at the LLC).
     */
    virtual void storeThrough(CoreId core, Addr paddr_line) = 0;

    /**
     * Launch a speculative DRAM probe for a load the core-side
     * off-chip predictor expects to miss the LLC (Hermes, DESIGN.md
     * §13). Fire-and-forget and off the critical path: the demand
     * request issued via requestLine() proceeds unchanged and merges
     * with the probe's fill at the memory controller if the
     * prediction was right. Default no-op so simple harnesses and
     * tests need not care.
     *
     * @param core probing core
     * @param paddr_line line-aligned physical address of the load
     * @param pc static PC of the load (predictor training key)
     */
    virtual void hermesProbe(CoreId core, Addr paddr_line, Addr pc)
    {
        (void)core;
        (void)paddr_line;
        (void)pc;
    }

    /**
     * Offer a generated dependence chain to the EMC.
     * @retval false no free EMC context (or EMC disabled); the core
     *               abandons this generation attempt
     */
    virtual bool offloadChain(const ChainRequest &chain) = 0;

    /**
     * True if the PTE for @p vpage of @p core is currently resident in
     * the EMC TLB (the core-side residence bit, Section 4.1.4).
     */
    virtual bool emcTlbResident(CoreId core, Addr vpage) = 0;

    /** Current global cycle. */
    virtual Cycle now() const = 0;
};

} // namespace emc

#endif // EMC_CORE_PORT_HH
