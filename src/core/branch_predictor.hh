/**
 * @file
 * Hybrid branch predictor (Table 1: "hybrid branch predictor"):
 * a gshare component (global history XOR PC), a bimodal component
 * (per-PC 2-bit counters) and a per-PC chooser that learns which
 * component to trust — the classic McFarling combining predictor.
 *
 * The simulator is trace-driven, so the predictor is consulted at
 * dispatch and trained with the oracle direction immediately; a
 * misprediction stalls the front-end until the branch resolves plus
 * the redirect penalty (wrong-path fetch is not modeled).
 */

#ifndef EMC_CORE_BRANCH_PREDICTOR_HH
#define EMC_CORE_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace emc
{

/** Statistics for one predictor instance. */
struct BranchPredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t gshare_used = 0;
    std::uint64_t bimodal_used = 0;

    double
    mispredictRate() const
    {
        return lookups ? static_cast<double>(mispredicts) / lookups
                       : 0.0;
    }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(lookups);
        ar.io(mispredicts);
        ar.io(gshare_used);
        ar.io(bimodal_used);
    }
};

/** McFarling-style hybrid (gshare + bimodal + chooser). */
class HybridBranchPredictor
{
  public:
    /**
     * @param table_bits log2 of each table's entry count
     * @param history_bits global history length (<= table_bits)
     */
    explicit HybridBranchPredictor(unsigned table_bits = 12,
                                   unsigned history_bits = 12);

    /**
     * Predict and immediately train on the oracle direction.
     * @param pc static PC of the branch
     * @param taken actual direction
     * @retval true the prediction was wrong (mispredict)
     */
    bool predictAndUpdate(Addr pc, bool taken);

    /**
     * Functional-warming variant of predictAndUpdate(): identical
     * table, chooser and history training — a fast-warmed predictor is
     * byte-exact with a detail-warmed one — but no stats counters,
     * because fastwarm runs outside simulated time (DESIGN.md §8).
     */
    void warmUpdate(Addr pc, bool taken);

    const BranchPredictorStats &stats() const { return stats_; }

    void resetStats() { stats_ = BranchPredictorStats{}; }

    /** Current global history (tests). */
    std::uint64_t history() const { return ghr_; }

    /** Checkpoint tables, history and stats (geometry is config). */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(bimodal_);
        ar.io(gshare_);
        ar.io(chooser_);
        ar.io(ghr_);
        ar.io(stats_);
    }

  private:
    bool update(Addr pc, bool taken, BranchPredictorStats *stats);

    static bool predictCounter(std::uint8_t c) { return c >= 2; }

    static void
    train(std::uint8_t &c, bool taken)
    {
        if (taken) {
            if (c < 3)
                ++c;
        } else if (c > 0) {
            --c;
        }
    }

    std::size_t
    bimodalIndex(Addr pc) const
    {
        return (pc >> 2) & mask_;
    }

    std::size_t
    gshareIndex(Addr pc) const
    {
        return ((pc >> 2) ^ ghr_) & mask_;
    }

    std::size_t mask_;            // ckpt-skip: (derived from config)
    std::uint64_t history_mask_;  // ckpt-skip: (derived from config)
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;  ///< >=2 -> use gshare
    std::uint64_t ghr_ = 0;
    BranchPredictorStats stats_;
};

} // namespace emc

#endif // EMC_CORE_BRANCH_PREDICTOR_HH
