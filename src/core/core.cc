#include "core/core.hh"

#include <algorithm>
#include <unordered_set>
#include <cstdio>

#include "common/log.hh"

namespace emc
{

namespace
{

/** Taint propagation depth cap: beyond this many ALU ops the value is
 *  no longer considered "derived from" the miss (see DESIGN.md §5). */
constexpr std::uint32_t kTaintDepthCap = 32;

constexpr std::uint16_t kNoPreg = 0xffff;

} // namespace

Core::Core(CoreId id, const CoreConfig &cfg, TraceSource *trace,
           PageTable *pt, CorePort *port)
    : id_(id), cfg_(cfg), trace_(trace), pt_(pt), port_(port),
      prf_(cfg.phys_regs), rat_(kArchRegs),
      l1d_(cfg.l1d_bytes, cfg.l1d_ways, "l1d"),
      mshrs_(cfg.l1_mshrs),
      tlb_(cfg.tlb_entries, cfg.tlb_walk_latency),
      hermes_(cfg.hermes_enabled
                  ? pred::makePredictor(cfg.hermes_pred, 1)
                  : nullptr)
{
    emc_assert(cfg.phys_regs > kArchRegs + cfg.rob_size / 2,
               "too few physical registers");
    // Map arch regs to the first physical registers; the rest go to
    // the free list.
    for (unsigned a = 0; a < kArchRegs; ++a) {
        rat_[a] = static_cast<std::uint16_t>(a);
        prf_[a].ready = true;
        prf_[a].value = 0;
    }
    for (unsigned p = cfg.phys_regs; p > kArchRegs; --p)
        free_list_.push_back(static_cast<std::uint16_t>(p - 1));
}

Core::RobEntry *
Core::bySeq(std::uint64_t seq)
{
    if (rob_.empty())
        return nullptr;
    const std::uint64_t head_seq = rob_.front().seq;
    if (seq < head_seq)
        return nullptr;
    const std::uint64_t idx = seq - head_seq;
    if (idx >= rob_.size())
        return nullptr;
    RobEntry &e = rob_[idx];
    emc_assert(e.seq == seq, "ROB seq indexing broken");
    return &e;
}

void
Core::tick()
{
    now_ = port_->now();
    ++stats_.cycles;
    retireStage();
    completeStage();
    issueStage();
    fetchRenameDispatch();
    drainStoreBuffer();
    if (in_runahead_)
        runaheadStep();
}

bool
Core::stalledOnMissHead() const
{
    // Mirrors the full-window-stall trigger in retireStage.
    if (rob_.empty())
        return false;
    if (!(robFull() || rs_occupancy_ >= cfg_.rs_size))
        return false;
    const RobEntry &head = rob_.front();
    return isLoad(head.d.uop.op) && !head.completed
           && head.mem_outstanding && head.llc_miss;
}

Cycle
Core::quiescentUntil() const
{
    // Any pipeline stage that would change state this cycle means the
    // core is busy. The checks shadow tick()'s stages in order.
    if (in_runahead_)
        return 0;
    if (!rob_.empty() && rob_.front().completed)
        return 0;  // retirement can proceed
    if (!ready_q_.empty() || !retry_q_.empty())
        return 0;  // issue/execute has work
    if (!store_buffer_.empty())
        return 0;  // post-retire store drain

    // Fetch is quiescent only when the next uop is already known (the
    // deferred slot) and provably resource-blocked; pulling from the
    // trace or replay queue mutates state.
    if (!fetch_blocked_) {
        if (!have_deferred_uop_)
            return 0;
        const DynUop &d = deferred_uop_;
        const bool blocked =
            robFull() || rs_occupancy_ >= cfg_.rs_size
            || (isLoad(d.uop.op) && lq_occupancy_ >= cfg_.lq_size)
            || (isStore(d.uop.op) && sq_.size() >= cfg_.sq_size)
            || (d.uop.hasDst() && free_list_.empty());
        if (!blocked)
            return 0;
    }

    // The full-window stall path runs side effects every cycle unless
    // they already fired for this head: chain generation is a no-op
    // only once a chain is in flight or the head was already tried,
    // and runahead entry can trigger on any stalled cycle.
    if (stalledOnMissHead()) {
        if (cfg_.runahead_enabled)
            return 0;
        if (cfg_.emc_enabled && !chain_in_progress_
            && rob_.front().seq != last_chain_source_seq_)
            return 0;
    }

    // Otherwise the core only acts again at one of its timed wakeups.
    Cycle t = kNoCycle;
    if (chain_in_progress_)
        t = std::min(t, chain_send_cycle_);
    if (fetch_blocked_ && fetch_resume_ != 0)
        t = std::min(t, fetch_resume_);
    // lint-ok: unordered-iter (min over keys is order-insensitive)
    for (const auto &kv : complete_at_)
        t = std::min(t, kv.first);
    if (!counter_updates_.empty())
        t = std::min(t, counter_updates_.front().first);
    return t;
}

void
Core::skipIdleCycles(std::uint64_t n)
{
    // Keep now_ in sync so event handlers (fill arrival, chain
    // results) that run before the next tick() see the same clock they
    // would have under cycle-by-cycle ticking.
    now_ += n;
    stats_.cycles += n;
    // The stall predicate is stable across skipped cycles (nothing
    // the skip bypasses can change it), so bulk-account the counter
    // retireStage would have bumped each cycle.
    if (stalledOnMissHead())
        stats_.full_window_stall_cycles += n;
}

// --------------------------------------------------------------------
// Functional warming (DESIGN.md §8)
// --------------------------------------------------------------------

bool
Core::warmStep(WarmPort &port)
{
    emc_assert(ckptQuiescent(),
               "warmStep on a core with in-flight pipeline state");

    // Consume the parked front-end uop first so a detailed run can
    // hand over mid-fetch (its deferred uop was produced but never
    // dispatched, so the predictor/TLB/cache have not seen it yet).
    DynUop d;
    if (have_deferred_uop_) {
        d = deferred_uop_;
        have_deferred_uop_ = false;
    } else if (!trace_->next(d)) {
        return false;
    }

    // Architectural register write, in place: the fast path never
    // renames, so the RAT keeps its identity mapping and serWarm()'s
    // read-through-the-RAT view sees exactly these values.
    if (d.uop.hasDst()) {
        PhysReg &pr = prf_[rat_[d.uop.dst]];
        pr.value = isLoad(d.uop.op) ? d.mem_value : d.result;
        pr.ready = true;
        pr.taint = false;
        pr.taint_depth = 0;
        pr.taint_src = 0;
    }

    // Branches train the predictor once per dispatched branch, exactly
    // as fetchRenameDispatch does — same prefix, same tables, but no
    // stats counters (warming is outside simulated time).
    if (isBranch(d.uop.op) && cfg_.use_branch_predictor)
        bp_.warmUpdate(d.uop.pc, d.taken);

    if (isLoad(d.uop.op)) {
        const Addr paddr = tlb_.warmTranslate(*pt_, d.vaddr);
        const Addr line = lineAlign(paddr);
        if (l1d_.warmAccess(line) == nullptr) {
            // Mirror the fill path: the returning line is inserted
            // into the L1; the victim is dropped (write-through L1,
            // stale LLC presence bits are benign).
            l1d_.warmInsert(line);
            port.warmLine(id_, line, d.uop.pc, false);
        }
    } else if (isStore(d.uop.op)) {
        const Addr paddr = tlb_.warmTranslate(*pt_, d.vaddr);
        const Addr line = lineAlign(paddr);
        // Write-through, no-write-allocate: no L1 state changes
        // (drainStoreBuffer only peeks), every store goes out.
        port.warmLine(id_, line, d.uop.pc, true);
    }
    return true;
}

// --------------------------------------------------------------------
// Fetch / rename / dispatch
// --------------------------------------------------------------------

void
Core::fetchRenameDispatch()
{
    if (fetch_blocked_) {
        // Stalled behind a mispredicted branch; resume after it
        // resolves plus the redirect penalty.
        if (fetch_resume_ != 0 && now_ >= fetch_resume_) {
            fetch_blocked_ = false;
            fetch_resume_ = 0;
        } else {
            return;
        }
    }

    // Checkpoint drain: branch-resolution unblocking above still runs
    // (quiescence requires !fetch_blocked_), but no new uops enter.
    if (fetch_paused_)
        return;

    for (unsigned n = 0; n < cfg_.fetch_width; ++n) {
        DynUop d;
        if (have_deferred_uop_) {
            d = deferred_uop_;
        } else if (!replay_q_.empty()) {
            // Replay uops consumed during a runahead episode.
            d = replay_q_.front();
            replay_q_.pop_front();
            have_deferred_uop_ = true;
            deferred_uop_ = d;
        } else if (!trace_->next(d)) {
            return;  // trace exhausted
        } else {
            have_deferred_uop_ = true;
            deferred_uop_ = d;
        }

        // Resource checks (defer the uop if anything is full).
        if (robFull() || rs_occupancy_ >= cfg_.rs_size)
            return;
        if (isLoad(d.uop.op) && lq_occupancy_ >= cfg_.lq_size)
            return;
        if (isStore(d.uop.op) && sq_.size() >= cfg_.sq_size)
            return;
        if (d.uop.hasDst() && free_list_.empty())
            return;

        have_deferred_uop_ = false;

        RobEntry e;
        e.d = d;
        e.seq = next_seq_++;

        // Rename sources through the RAT.
        e.src1_preg = d.uop.hasSrc1() ? rat_[d.uop.src1] : kNoPreg;
        e.src2_preg = d.uop.hasSrc2() ? rat_[d.uop.src2] : kNoPreg;

        // Allocate a new physical register for the destination.
        if (d.uop.hasDst()) {
            e.prev_dst_preg = rat_[d.uop.dst];
            e.dst_preg = free_list_.back();
            free_list_.pop_back();
            rat_[d.uop.dst] = e.dst_preg;
            PhysReg &pr = prf_[e.dst_preg];
            pr.ready = false;
            pr.taint = false;
            pr.taint_depth = 0;
            pr.taint_src = 0;
        }

        e.in_rs = true;
        ++rs_occupancy_;

        // Count unready sources and register for wakeup.
        unsigned pending = 0;
        for (std::uint16_t src : {e.src1_preg, e.src2_preg}) {
            if (src != kNoPreg && !prf_[src].ready) {
                ++pending;
                preg_waiters_[src].push_back(e.seq);
            }
        }
        pending_srcs_[e.seq] = pending;

        if (isLoad(d.uop.op))
            ++lq_occupancy_;
        if (isStore(d.uop.op)) {
            StoreQueueEntry sqe;
            sqe.seq = e.seq;
            sq_.push_back(sqe);
        }
        if (isBranch(d.uop.op)) {
            ++stats_.branches;
            if (cfg_.use_branch_predictor) {
                // Consult the hybrid predictor; override the trace's
                // sampled flag with the real outcome.
                e.d.mispredicted =
                    bp_.predictAndUpdate(d.uop.pc, d.taken);
            }
            if (e.d.mispredicted) {
                ++stats_.mispredicts;
                fetch_blocked_ = true;
                fetch_block_seq_ = e.seq;
                fetch_resume_ = 0;
            }
        }

        rob_.push_back(e);
        if (pending == 0)
            ready_q_.push_back(e.seq);

        if (fetch_blocked_)
            return;  // nothing past the mispredicted branch
    }
}

// --------------------------------------------------------------------
// Issue / execute
// --------------------------------------------------------------------

void
Core::wakeup(std::uint16_t preg)
{
    auto it = preg_waiters_.find(preg);
    if (it == preg_waiters_.end())
        return;
    for (std::uint64_t seq : it->second) {
        auto pit = pending_srcs_.find(seq);
        if (pit == pending_srcs_.end())
            continue;
        emc_assert(pit->second > 0, "wakeup underflow");
        if (--pit->second == 0)
            ready_q_.push_back(seq);
    }
    preg_waiters_.erase(it);
}

void
Core::issueStage()
{
    // Move this cycle's retries to the front of consideration.
    if (!retry_q_.empty()) {
        for (auto rit = retry_q_.rbegin(); rit != retry_q_.rend(); ++rit)
            ready_q_.push_front(*rit);
        retry_q_.clear();
    }

    unsigned issued = 0;
    std::size_t scanned = 0;
    while (issued < cfg_.issue_width && scanned < ready_q_.size()) {
        const std::uint64_t seq = ready_q_[scanned];
        RobEntry *e = bySeq(seq);
        if (!e || e->issued || e->completed) {
            ready_q_.erase(ready_q_.begin() + scanned);
            continue;
        }
        if (e->offloaded) {
            // Offloaded uops execute at the EMC; drop them from the
            // ready queue (chainResult re-queues them on cancel).
            ready_q_.erase(ready_q_.begin() + scanned);
            continue;
        }

        bool ok = true;
        switch (e->d.uop.op) {
          case Opcode::kLoad:
            ok = tryExecuteLoad(*e);
            break;
          case Opcode::kStore:
            executeStore(*e);
            break;
          default:
            executeAlu(*e);
            break;
        }

        if (ok) {
            e->issued = true;
            if (e->in_rs) {
                e->in_rs = false;
                emc_assert(rs_occupancy_ > 0, "RS underflow");
                --rs_occupancy_;
            }
            ++issued;
            ready_q_.erase(ready_q_.begin() + scanned);
        } else {
            // Structural hazard (MSHR/ring backpressure): retry.
            retry_q_.push_back(seq);
            ready_q_.erase(ready_q_.begin() + scanned);
        }
    }
}

void
Core::executeAlu(RobEntry &e)
{
    const std::uint64_t a =
        e.src1_preg != kNoPreg ? prf_[e.src1_preg].value : 0;
    const std::uint64_t b =
        e.src2_preg != kNoPreg ? prf_[e.src2_preg].value : 0;
    std::uint64_t value = 0;
    if (e.d.uop.op != Opcode::kNop)
        value = evalAlu(e.d.uop.op, a, b, e.d.uop.imm);
    emc_assert(!e.d.uop.hasDst() || value == e.d.result,
               "core ALU result diverged from oracle: " + e.d.uop.toString());
    scheduleComplete(e, now_ + execLatency(e.d.uop.op), value);
    ++stats_.uops_executed;
    if (e.d.uop.op == Opcode::kFpAdd || e.d.uop.op == Opcode::kFpMul
        || e.d.uop.op == Opcode::kVecOp) {
        ++stats_.fp_uops_executed;
    }
}

bool
Core::tryExecuteLoad(RobEntry &e)
{
    const std::uint64_t base =
        e.src1_preg != kNoPreg ? prf_[e.src1_preg].value : 0;
    const Addr vaddr = effectiveAddr(base, e.d.uop.imm);
    emc_assert(vaddr == e.d.vaddr,
               "load address diverged from oracle: " + e.d.uop.toString());

    Cycle walk = 0;
    const Addr paddr = tlb_.translate(*pt_, vaddr, walk);
    e.paddr = paddr;

    // Address-taint bookkeeping for dependent-miss identification.
    if (e.src1_preg != kNoPreg && prf_[e.src1_preg].taint) {
        e.addr_tainted = true;
        e.taint_depth_at_exec = prf_[e.src1_preg].taint_depth;
        e.addr_taint_src = prf_[e.src1_preg].taint_src;
    }

    // Conservative memory disambiguation: the core has no replay
    // machinery, so a load waits until every older store has computed
    // its address, then forwards on a match.
    for (auto it = sq_.rbegin(); it != sq_.rend(); ++it) {
        if (it->seq >= e.seq)
            continue;
        if (!it->addr_known) {
            // Offloaded stores resolve at the EMC; younger loads may
            // bypass them (the LSQ-populate conflict check cancels the
            // chain on a real collision).
            RobEntry *st = bySeq(it->seq);
            if (st && st->offloaded)
                continue;
            return false;  // retry once the store resolves
        }
        if (it->vaddr == vaddr) {
            scheduleComplete(e, now_ + 1 + walk, e.d.mem_value);
            ++stats_.uops_executed;
            return true;
        }
    }

    const Addr line = lineAlign(paddr);
    if (l1d_.access(line) != nullptr) {
        ++stats_.l1d_hits;
        scheduleComplete(e, now_ + cfg_.l1d_latency + walk, e.d.mem_value);
        ++stats_.uops_executed;
        return true;
    }

    // L1 miss: allocate an MSHR and send the request out.
    if (mshrs_.has(line)) {
        ++stats_.l1d_misses;
        mshrs_.allocate(line, e.seq);
        e.mem_outstanding = true;
        ++stats_.uops_executed;
        return true;
    }
    if (mshrs_.full())
        return false;
    if (!port_->requestLine(id_, line, e.d.uop.pc, false, e.addr_tainted))
        return false;
    ++stats_.l1d_misses;
    mshrs_.allocate(line, e.seq);
    e.mem_outstanding = true;
    ++stats_.uops_executed;
    maybeHermesProbe(line, e.d.uop.pc, vaddr);
    return true;
}

void
Core::maybeHermesProbe(Addr paddr_line, Addr pc, Addr vaddr)
{
    if (!hermes_)
        return;
    // One prediction per in-flight line: a secondary access rides the
    // first access's probe (and its training outcome).
    if (hermes_pending_.count(paddr_line))
        return;
    pred::PredFeatures f;
    f.core = 0;  // per-core predictor instance
    f.pc = pc;
    f.line = paddr_line;
    f.vaddr = vaddr;
    const bool predicted = hermes_->predict(f);
    hermes_pending_.emplace(paddr_line,
                            HermesPending{pc, vaddr, predicted});
    if (predicted)
        port_->hermesProbe(id_, paddr_line, pc);
}

void
Core::executeStore(RobEntry &e)
{
    const std::uint64_t base =
        e.src1_preg != kNoPreg ? prf_[e.src1_preg].value : 0;
    const std::uint64_t data =
        e.src2_preg != kNoPreg ? prf_[e.src2_preg].value : 0;
    const Addr vaddr = effectiveAddr(base, e.d.uop.imm);
    emc_assert(vaddr == e.d.vaddr,
               "store address diverged from oracle: " + e.d.uop.toString());
    emc_assert(data == e.d.mem_value,
               "store data diverged from oracle: " + e.d.uop.toString());

    Cycle walk = 0;
    const Addr paddr = tlb_.translate(*pt_, vaddr, walk);
    e.paddr = paddr;

    for (auto &sqe : sq_) {
        if (sqe.seq == e.seq) {
            sqe.vaddr = vaddr;
            sqe.paddr = paddr;
            sqe.value = data;
            sqe.addr_known = true;
            break;
        }
    }
    scheduleComplete(e, now_ + 1 + walk, data);
    ++stats_.uops_executed;
}

void
Core::scheduleComplete(RobEntry &e, Cycle when, std::uint64_t value)
{
    e.ready_cycle = when;
    e.pending_value = value;
    complete_at_[when].push_back(e.seq);
}

// --------------------------------------------------------------------
// Complete (writeback) stage
// --------------------------------------------------------------------

void
Core::completeStage()
{
    auto it = complete_at_.find(now_);
    if (it != complete_at_.end()) {
        for (std::uint64_t seq : it->second) {
            RobEntry *e = bySeq(seq);
            if (!e || e->completed)
                continue;
            completeEntry(*e, e->pending_value, false);
        }
        complete_at_.erase(it);
    }

    // Deferred dependent-miss counter updates (see header comment in
    // recordMissDependence).
    while (!counter_updates_.empty()
           && counter_updates_.front().first <= now_) {
        const std::uint64_t src_seq = counter_updates_.front().second;
        counter_updates_.pop_front();
        auto sit = source_dep_seen_.find(src_seq);
        if (sit != source_dep_seen_.end()) {
            if (sit->second)
                dep_counter_.increment();
            else
                dep_counter_.decrement();
            source_dep_seen_.erase(sit);
        }
    }

    // Ship a finished chain once its generation cycles have elapsed.
    if (chain_in_progress_ && now_ >= chain_send_cycle_) {
        chain_in_progress_ = false;
        if (!port_->offloadChain(pending_chain_)) {
            ++stats_.chains_rejected_no_context;
            unOffloadChain(pending_chain_);
        } else {
            EMC_OBS_POINT(tracer_, obs::TracePoint::kChainOffloaded,
                          now_, pending_chain_.id,
                          obs::Track::core(id_),
                          pending_chain_.uops.size());
            ++stats_.chains_generated;
            stats_.chain_uops_total += pending_chain_.uops.size();
            stats_.chain_live_ins_total += pending_chain_.live_in_count;
            for (const ChainUop &cu : pending_chain_.uops) {
                if (cu.is_source) {
                    offload_chain_source_[pending_chain_.id] = cu.rob_seq;
                    break;
                }
            }
        }
    }
}

void
Core::completeEntry(RobEntry &e, std::uint64_t value, bool from_emc)
{
    emc_assert(!e.completed, "double completion");
    e.completed = true;
    e.mem_outstanding = false;

    // Belt-and-braces exit for runahead: the blocking load completing
    // always ends the episode (covers the same-cycle fill race).
    if (in_runahead_ && isLoad(e.d.uop.op) && e.paddr != kNoAddr
        && lineAlign(e.paddr) == runahead_blocking_line_) {
        exitRunahead(runahead_blocking_line_);
    }

    if (e.d.uop.hasDst()) {
        PhysReg &pr = prf_[e.dst_preg];
        emc_assert(value == e.d.result,
                   "completion value diverged from oracle: "
                       + e.d.uop.toString());
        pr.value = value;
        pr.ready = true;
        setTaintFromSources(e, pr);
        ++stats_.cdb_broadcasts;
        wakeup(e.dst_preg);
    }
    pending_srcs_.erase(e.seq);

    if (isBranch(e.d.uop.op) && e.d.mispredicted
        && fetch_blocked_ && fetch_block_seq_ == e.seq) {
        fetch_resume_ = now_ + cfg_.mispredict_penalty;
    }

    if (from_emc) {
        e.completed_by_emc = true;
        ++stats_.offloaded_uops_completed_remotely;
    }
}

void
Core::setTaintFromSources(const RobEntry &e, PhysReg &dst)
{
    if (isLoad(e.d.uop.op)) {
        // A load's destination taint reflects its own LLC miss status,
        // set in fillArrived; hits clear the taint.
        dst.taint = e.llc_miss;
        dst.taint_depth = 0;
        dst.taint_src = e.seq;
        return;
    }
    // ALU ops propagate the deeper of their source taints, capped.
    dst.taint = false;
    std::uint32_t depth = 0;
    std::uint64_t src = 0;
    for (std::uint16_t s : {e.src1_preg, e.src2_preg}) {
        if (s == kNoPreg)
            continue;
        const PhysReg &pr = prf_[s];
        if (pr.taint && pr.taint_depth >= depth) {
            dst.taint = true;
            depth = pr.taint_depth;
            src = pr.taint_src;
        }
    }
    if (dst.taint) {
        dst.taint_depth = depth + 1;
        dst.taint_src = src;
        if (dst.taint_depth > kTaintDepthCap)
            dst.taint = false;
    }
}

// --------------------------------------------------------------------
// Retire stage + full-window stall detection
// --------------------------------------------------------------------

void
Core::retireStage()
{
    full_window_stall_ = false;

    for (unsigned n = 0; n < cfg_.retire_width && !rob_.empty(); ++n) {
        RobEntry &head = rob_.front();
        if (!head.completed)
            break;

        if (isStore(head.d.uop.op)) {
            // Move the store to the post-retire drain buffer.
            emc_assert(!sq_.empty() && sq_.front().seq == head.seq,
                       "SQ out of sync with ROB");
            StoreQueueEntry sqe = sq_.front();
            sq_.pop_front();
            sqe.retired = true;
            store_buffer_.push_back(sqe);
        }
        if (isLoad(head.d.uop.op)) {
            emc_assert(lq_occupancy_ > 0, "LQ underflow");
            --lq_occupancy_;
            // Source-miss bookkeeping for the 3-bit trigger counter.
            // Loads executed remotely at the EMC do not update it:
            // the core cannot observe their dependents (the chain
            // result already credited the chain's source).
            if (head.llc_miss && !head.completed_by_emc)
                recordMissDependence(head);
        }
        if (head.prev_dst_preg != kNoPreg && head.d.uop.hasDst())
            free_list_.push_back(head.prev_dst_preg);

        if (ck_retire_)
            ck_retire_->onRetire(*check_, id_, head.seq);
        ++stats_.retired_uops;
        rob_.pop_front();
    }

    // Full-window stall: the window (ROB, or the RS clogged with
    // miss-dependent uops) is full and the head is an outstanding load
    // known to have missed the LLC (Section 4.2's trigger).
    const bool window_full = robFull()
                             || rs_occupancy_ >= cfg_.rs_size;
    if (!rob_.empty() && window_full) {
        RobEntry &head = rob_.front();
        if (isLoad(head.d.uop.op) && !head.completed
            && head.mem_outstanding && head.llc_miss) {
            full_window_stall_ = true;
            ++stats_.full_window_stall_cycles;
            if (cfg_.emc_enabled)
                maybeGenerateChain();
            if (cfg_.runahead_enabled && !in_runahead_)
                maybeEnterRunahead(head);
        }
    }
}

void
Core::recordMissDependence(const RobEntry &head)
{
    // The counter decision for this source miss fires a fixed delay
    // after retirement, giving dependent loads time to reach their own
    // LLC miss determination. See DESIGN.md §5.
    if (!source_dep_seen_.count(head.seq))
        source_dep_seen_[head.seq] = false;
    counter_updates_.emplace_back(now_ + 200, head.seq);
}

// --------------------------------------------------------------------
// Chain generation (Section 4.2, Algorithm 1)
// --------------------------------------------------------------------

void
Core::maybeGenerateChain()
{
    RobEntry &head = rob_.front();
    if (chain_in_progress_ || head.seq == last_chain_source_seq_)
        return;
    last_chain_source_seq_ = head.seq;

    if (!dep_counter_.topTwoBitsSet()) {
        ++stats_.chains_rejected_counter;
        if (std::getenv("EMC_CHAIN_DEBUG")) {
            std::fprintf(stderr, "[%llu] core%u trigger: counter low "
                         "(%u)\n", (unsigned long long)now_, id_,
                         dep_counter_.value());
        }
        return;
    }

    ChainRequest chain;
    if (!buildChain(head, chain)) {
        if (std::getenv("EMC_CHAIN_DEBUG")) {
            std::fprintf(stderr, "[%llu] core%u trigger: no chain for "
                         "head %s\n", (unsigned long long)now_, id_,
                         head.d.uop.toString().c_str());
        }
        return;
    }

    // Generation costs one cycle per chain uop (the per-cycle pseudo
    // wake-up walk of Figure 9), then the chain ships to the EMC.
    pending_chain_ = std::move(chain);
    chain_in_progress_ = true;
    chain_send_cycle_ = now_ + pending_chain_.uops.size();
    stats_.chain_gen_cycles += pending_chain_.uops.size();
}

bool
Core::buildChain(RobEntry &source, ChainRequest &chain)
{
    emc_assert(isLoad(source.d.uop.op), "chain source must be a load");

    chain.id = next_chain_id_++;
    chain.core = id_;
    chain.source_paddr_line = lineAlign(source.paddr);
    chain.source_value = source.d.mem_value;

    // Register Remapping Table: core preg -> EMC preg.
    std::unordered_map<std::uint16_t, std::uint8_t> rrt;
    std::uint8_t next_epr = 0;

    // Process the source uops. The head is the miss blocking
    // retirement; every other in-flight load waiting on the *same
    // line* (MSHR-merged, e.g. a pointer and a field of one node)
    // receives its data in the same fill, so the MSHR wake-up
    // broadcasts all of their destination tags (multiple levels of
    // indirection, Section 4.2).
    const Addr src_line = lineAlign(source.paddr);
    // The walk runs with a larger tentative budget; the slice filter
    // below prunes non-address-generating uops before the hardware
    // caps (16 uops / 16 EPRs) are enforced on what actually ships.
    const unsigned walk_uops = 4 * cfg_.chain_max_uops;
    const unsigned walk_eprs = 4 * kEmcPhysRegs;
    std::vector<std::uint8_t> walk_epr_alloc;
    std::unordered_set<std::uint64_t> source_seqs;
    for (std::size_t i = 0; i < rob_.size()
                            && chain.uops.size() + 1 < walk_uops
                            && next_epr < walk_eprs; ++i) {
        RobEntry &e = rob_[i];
        if (!isLoad(e.d.uop.op) || e.completed || e.offloaded)
            continue;
        const bool is_head = e.seq == source.seq;
        if (!is_head
            && !(e.issued && e.mem_outstanding && e.paddr != kNoAddr
                 && lineAlign(e.paddr) == src_line)) {
            continue;
        }
        ChainUop su;
        su.d = e.d;
        su.rob_seq = e.seq;
        su.is_source = true;
        su.epr_dst = next_epr;
        rrt[e.dst_preg] = next_epr++;
        ++stats_.rrt_writes;
        ++stats_.cdb_broadcasts;
        ++stats_.rob_chain_reads;
        chain.uops.push_back(su);
        source_seqs.insert(e.seq);
        if (is_head)
            chain.source_epr = su.epr_dst;
    }

    std::vector<std::uint64_t> marked;

    for (std::size_t i = 1;
         i < rob_.size() && chain.uops.size() < walk_uops; ++i) {
        RobEntry &e = rob_[i];
        if (e.completed || e.issued || e.offloaded)
            continue;
        if (source_seqs.count(e.seq))
            continue;
        if (!emcAllowed(e.d.uop.op))
            continue;

        const bool has1 = e.src1_preg != kNoPreg;
        const bool has2 = e.src2_preg != kNoPreg;
        const bool dep1 = has1 && rrt.count(e.src1_preg);
        const bool dep2 = has2 && rrt.count(e.src2_preg);
        stats_.rrt_reads += (has1 ? 1 : 0) + (has2 ? 1 : 0);
        if (!dep1 && !dep2)
            continue;  // not woken by the pseudo-broadcast walk
        const bool ok1 = !has1 || dep1 || prf_[e.src1_preg].ready;
        const bool ok2 = !has2 || dep2 || prf_[e.src2_preg].ready;
        if (!ok1 || !ok2)
            continue;

        ChainUop cu;
        cu.d = e.d;
        cu.rob_seq = e.seq;

        if (isStore(e.d.uop.op)) {
            // Stores join the chain only as register spills: a later
            // load in the window reads the same address (Section 4.3).
            bool spill = false;
            for (std::size_t j = i + 1; j < rob_.size(); ++j) {
                const RobEntry &l = rob_[j];
                if (isLoad(l.d.uop.op) && l.d.vaddr == e.d.vaddr) {
                    spill = true;
                    break;
                }
            }
            if (!spill)
                continue;
            cu.is_spill_store = true;
        }

        if (dep1) {
            cu.epr_src1 = rrt[e.src1_preg];
        } else if (has1) {
            cu.src1_live_in = true;
            cu.src1_val = prf_[e.src1_preg].value;
            ++chain.live_in_count;
        }
        if (dep2) {
            cu.epr_src2 = rrt[e.src2_preg];
        } else if (has2) {
            cu.src2_live_in = true;
            cu.src2_val = prf_[e.src2_preg].value;
            ++chain.live_in_count;
        }

        if (e.d.uop.hasDst()) {
            if (next_epr >= walk_eprs)
                break;
            cu.epr_dst = static_cast<std::uint8_t>(next_epr);
            rrt[e.dst_preg] = static_cast<std::uint8_t>(next_epr++);
            ++stats_.rrt_writes;
        }

        ++stats_.cdb_broadcasts;  // pseudo wake-up tag broadcast
        ++stats_.rob_chain_reads;
        chain.uops.push_back(cu);
        marked.push_back(e.seq);
    }

    if (marked.empty())
        return false;  // no dependent work worth shipping

    // Filter the chain to the operations required to generate the
    // dependent memory accesses (Section 4.1.2): keep memory ops,
    // branches and their transitive register ancestors; pure-compute
    // dependents stay at the core and complete off the live-outs.
    {
        std::vector<bool> keep(chain.uops.size(), false);
        std::vector<bool> needed_epr(walk_eprs, false);
        for (std::size_t i = chain.uops.size(); i-- > 0;) {
            const ChainUop &cu = chain.uops[i];
            bool k = cu.is_source || isMem(cu.d.uop.op)
                     || isBranch(cu.d.uop.op);
            if (!k && cu.epr_dst != kNoEpr && needed_epr[cu.epr_dst])
                k = true;
            if (k) {
                if (cu.epr_src1 != kNoEpr)
                    needed_epr[cu.epr_src1] = true;
                if (cu.epr_src2 != kNoEpr)
                    needed_epr[cu.epr_src2] = true;
            }
            keep[i] = k;
        }

        // Rebuild the chain with compact EPR numbering, enforcing
        // the hardware caps (Table 1) on the filtered chain.
        std::vector<std::uint8_t> remap(walk_eprs, kNoEpr);
        std::vector<ChainUop> kept;
        unsigned live_ins = 0;
        bool has_dependent_mem = false;
        std::unordered_set<std::uint64_t> kept_seqs;
        std::unordered_set<Addr> dep_lines;
        std::uint8_t epr = 0;
        for (std::size_t i = 0; i < chain.uops.size(); ++i) {
            if (!keep[i])
                continue;
            if (kept.size() >= cfg_.chain_max_uops)
                break;
            ChainUop cu = chain.uops[i];
            if (cu.d.uop.hasDst() && epr >= kEmcPhysRegs)
                break;
            // Bound the chase depth: stop once the chain already
            // covers chain_max_indirection new lines and this load
            // would open another one.
            if (!cu.is_source && isLoad(cu.d.uop.op)) {
                const Addr l = lineAlign(cu.d.vaddr);
                if (!dep_lines.count(l)
                    && dep_lines.size() >= cfg_.chain_max_indirection) {
                    break;
                }
                dep_lines.insert(l);
            }
            if (cu.epr_src1 != kNoEpr)
                cu.epr_src1 = remap[cu.epr_src1];
            if (cu.epr_src2 != kNoEpr)
                cu.epr_src2 = remap[cu.epr_src2];
            if (cu.epr_dst != kNoEpr) {
                remap[cu.epr_dst] = epr;
                cu.epr_dst = epr++;
            }
            if (cu.src1_live_in)
                ++live_ins;
            if (cu.src2_live_in)
                ++live_ins;
            if (!cu.is_source && isMem(cu.d.uop.op))
                has_dependent_mem = true;
            if (cu.is_source && cu.rob_seq == source.seq)
                chain.source_epr = cu.epr_dst;
            kept.push_back(cu);
            if (!cu.is_source)
                kept_seqs.insert(cu.rob_seq);
        }
        if (!has_dependent_mem)
            return false;  // nothing latency-critical to accelerate
        chain.uops = std::move(kept);
        chain.live_in_count = live_ins;
        marked.assign(kept_seqs.begin(), kept_seqs.end());
    }

    // Attach the source PTE when the EMC TLB does not hold it.
    const Addr vpage = pageNum(source.d.vaddr);
    if (!port_->emcTlbResident(id_, vpage)) {
        chain.source_pte = pt_->lookup(vpage);
        chain.pte_attached = true;
    }

    for (std::uint64_t seq : marked) {
        RobEntry *e = bySeq(seq);
        e->offloaded = true;
        if (e->in_rs) {
            e->in_rs = false;
            emc_assert(rs_occupancy_ > 0, "RS underflow (chain)");
            --rs_occupancy_;
        }
    }
    return true;
}

void
Core::unOffloadChain(const ChainRequest &chain)
{
    for (const ChainUop &cu : chain.uops) {
        if (cu.is_source)
            continue;
        RobEntry *e = bySeq(cu.rob_seq);
        if (!e || e->completed)
            continue;
        e->offloaded = false;
        e->in_rs = true;
        ++rs_occupancy_;  // may transiently overshoot on cancel
        auto pit = pending_srcs_.find(e->seq);
        if (pit != pending_srcs_.end() && pit->second == 0)
            ready_q_.push_back(e->seq);
    }
}

// --------------------------------------------------------------------
// Notifications from the System
// --------------------------------------------------------------------

void
Core::fillArrived(Addr paddr_line, bool was_llc_miss)
{
    // Train the Hermes predictor on the ground-truth LLC outcome with
    // the exact feature bundle recorded at predict time.
    auto hp = hermes_pending_.find(paddr_line);
    if (hp != hermes_pending_.end()) {
        if (hermes_) {
            pred::PredFeatures f;
            f.core = 0;
            f.pc = hp->second.pc;
            f.line = paddr_line;
            f.vaddr = hp->second.vaddr;
            hermes_->train(f, was_llc_miss);
        }
        hermes_pending_.erase(hp);
    }

    // Fill into the L1 (write-through L1 lines are never dirty).
    if (l1d_.peek(paddr_line) == nullptr)
        l1d_.insert(paddr_line);

    if (in_runahead_ && paddr_line == runahead_blocking_line_)
        exitRunahead(paddr_line);

    std::vector<std::uint64_t> waiters;
    if (!mshrs_.complete(paddr_line, waiters))
        return;  // e.g. fetch-on-write fills with no register consumers
    for (std::uint64_t seq : waiters) {
        RobEntry *e = bySeq(seq);
        if (!e || e->completed || e->offloaded)
            continue;
        e->llc_miss = e->llc_miss || was_llc_miss;
        scheduleComplete(*e, now_ + 1, e->d.mem_value);
    }
}

void
Core::llcMissDetermined(Addr paddr_line)
{
    auto it = fill_waiters_.find(paddr_line);
    (void)it;
    // Mark every waiting load as an LLC miss; classify the requester.
    bool counted = false;
    for (auto &e : rob_) {
        if (!e.mem_outstanding || e.completed)
            continue;
        if (e.paddr == kNoAddr || lineAlign(e.paddr) != paddr_line)
            continue;
        if (!isLoad(e.d.uop.op))
            continue;
        e.llc_miss = true;
        if (!counted) {
            counted = true;
            ++stats_.llc_misses;
            if (e.addr_tainted) {
                ++stats_.dependent_llc_misses;
                stats_.dep_distance.sample(
                    static_cast<double>(e.taint_depth_at_exec));
                auto sit = source_dep_seen_.find(e.addr_taint_src);
                if (sit != source_dep_seen_.end()) {
                    if (!sit->second) {
                        sit->second = true;
                        dep_counter_.increment();
                    }
                } else {
                    source_dep_seen_[e.addr_taint_src] = true;
                    dep_counter_.increment();
                }
            }
        }
    }
}

void
Core::chainResult(const ChainResult &result)
{
    // Dependent misses executed at the EMC are still dependent misses
    // of the program: feed them into the 3-bit trigger counter so the
    // counter tracks ground truth rather than only core-visible
    // misses (otherwise chaining would starve itself).
    std::uint64_t src_seq = 0;
    auto oit = offload_chain_source_.find(result.chain_id);
    if (oit != offload_chain_source_.end()) {
        src_seq = oit->second;
        offload_chain_source_.erase(oit);
    }
    if (result.outcome == ChainOutcome::kCompleted) {
        bool any_dep_miss = false;
        for (const LiveOut &lo : result.live_outs) {
            if (lo.is_mem && !lo.is_store && lo.llc_miss)
                any_dep_miss = true;
        }
        if (any_dep_miss) {
            auto sit = source_dep_seen_.find(src_seq);
            if (sit != source_dep_seen_.end()) {
                if (!sit->second) {
                    sit->second = true;
                    dep_counter_.increment();
                }
            } else {
                source_dep_seen_[src_seq] = true;
                dep_counter_.increment();
            }
        }
    }

    if (result.outcome != ChainOutcome::kCompleted) {
        ++stats_.chain_results_canceled;
        // Reconstruct the chain membership from the live-outs the EMC
        // echoes back (every chain uop's rob_seq is echoed on cancel).
        for (const LiveOut &lo : result.live_outs) {
            RobEntry *e = bySeq(lo.rob_seq);
            if (!e || e->completed || !e->offloaded)
                continue;
            e->offloaded = false;
            e->in_rs = true;
            ++rs_occupancy_;
            auto pit = pending_srcs_.find(e->seq);
            if (pit != pending_srcs_.end() && pit->second == 0)
                ready_q_.push_back(e->seq);
        }
        return;
    }

    ++stats_.chain_results_ok;
    for (const LiveOut &lo : result.live_outs) {
        RobEntry *e = bySeq(lo.rob_seq);
        if (!e || e->completed)
            continue;
        emc_assert(e->offloaded, "live-out for non-offloaded uop");
        if (isLoad(e->d.uop.op))
            e->llc_miss = lo.llc_miss;
        if (isStore(e->d.uop.op)) {
            // Populate the SQ entry so the post-retire drain works.
            for (auto &sqe : sq_) {
                if (sqe.seq == e->seq) {
                    sqe.vaddr = e->d.vaddr;
                    sqe.paddr = pt_->translate(e->d.vaddr);
                    sqe.value = e->d.mem_value;
                    sqe.addr_known = true;
                    break;
                }
            }
            completeEntry(*e, lo.value, true);
        } else {
            completeEntry(*e, lo.value, true);
        }
    }
}

bool
Core::lsqPopulate(std::uint64_t rob_seq, Addr paddr)
{
    // The EMC executed a memory op; check for an ordering conflict: an
    // older, non-offloaded store to the same address whose data the
    // EMC could not have seen.
    RobEntry *e = bySeq(rob_seq);
    if (!e)
        return false;
    for (const auto &sqe : sq_) {
        if (sqe.seq >= rob_seq)
            break;
        if (!sqe.addr_known)
            continue;
        if (lineAlign(sqe.paddr) == lineAlign(paddr)) {
            RobEntry *st = bySeq(sqe.seq);
            if (st && !st->offloaded && !st->completed)
                return true;  // conflict: cancel the chain
            if (st && !st->offloaded && st->completed
                && sqe.vaddr == e->d.vaddr) {
                // Same-address completed store not in the chain: the
                // EMC read DRAM, not the forwarded value -> conflict.
                return true;
            }
        }
    }
    return false;
}

void
Core::invalidateL1(Addr paddr_line)
{
    l1d_.invalidate(paddr_line);
}

void
Core::warmInvalidateL1(Addr paddr_line)
{
    l1d_.warmInvalidate(paddr_line);
}

// --------------------------------------------------------------------
// Store drain (write-through L1)
// --------------------------------------------------------------------

// --------------------------------------------------------------------
// Runahead execution (optional baseline, Mutlu et al. [38])
// --------------------------------------------------------------------

void
Core::maybeEnterRunahead(const RobEntry &head)
{
    // The fill may already be en route to the register file (it can
    // land in the L1 the same cycle the stall is inspected).
    if (head.ready_cycle != kNoCycle
        || l1d_.peek(lineAlign(head.paddr)) != nullptr) {
        return;
    }
    in_runahead_ = true;
    runahead_blocking_line_ = lineAlign(head.paddr);
    runahead_budget_ = cfg_.runahead_max_uops;
    runahead_lines_.clear();
    ++stats_.runahead_episodes;

    // Shadow validity: everything the window already computed is
    // valid; the destinations of outstanding miss loads are INV.
    for (bool &v : runahead_valid_)
        v = true;
    for (const RobEntry &e : rob_) {
        if (isLoad(e.d.uop.op) && !e.completed)
            runahead_valid_[e.d.uop.dst] = false;
        else if (e.d.uop.hasDst() && !e.completed)
            runahead_valid_[e.d.uop.dst] = false;
    }
}

void
Core::runaheadStep()
{
    // Pre-execute up to fetch_width future uops per cycle with the
    // invalid-value dataflow. Uops are kept for replay after exit.
    for (unsigned n = 0; n < cfg_.fetch_width && in_runahead_; ++n) {
        if (runahead_budget_ == 0)
            return;  // budget exhausted; stay stalled until the fill
        DynUop d;
        if (!trace_->next(d))
            return;
        replay_q_.push_back(d);
        --runahead_budget_;
        ++stats_.runahead_uops;

        const bool s1 = !d.uop.hasSrc1() || runahead_valid_[d.uop.src1];
        const bool s2 = !d.uop.hasSrc2() || runahead_valid_[d.uop.src2];
        const bool inputs_valid = s1 && s2;

        if (isLoad(d.uop.op)) {
            if (!inputs_valid) {
                // A dependent load: its address is INV. Runahead must
                // drop it — this is precisely what the EMC accelerates.
                runahead_valid_[d.uop.dst] = false;
                ++stats_.runahead_dropped_loads;
                continue;
            }
            runahead_valid_[d.uop.dst] = true;
            Cycle walk = 0;
            const Addr paddr = tlb_.translate(*pt_, d.vaddr, walk);
            const Addr line = lineAlign(paddr);
            if (l1d_.peek(line) != nullptr || mshrs_.has(line)
                || runahead_lines_.count(line)) {
                continue;
            }
            if (port_->requestLine(id_, line, d.uop.pc, false, false)) {
                runahead_lines_.insert(line);
                ++stats_.runahead_prefetches;
            }
            continue;
        }
        if (isStore(d.uop.op) || isBranch(d.uop.op))
            continue;  // stores do not commit; branches follow the trace
        if (d.uop.hasDst())
            runahead_valid_[d.uop.dst] = inputs_valid;
    }
}

void
Core::exitRunahead(Addr filled_line)
{
    in_runahead_ = false;
    runahead_blocking_line_ = kNoAddr;
    runahead_lines_.clear();
}

void
Core::debugDump() const
{
    std::fprintf(stderr,
                 "core%u @%llu: rob=%zu rs=%u lq=%u sq=%zu sb=%zu "
                 "readyq=%zu retired=%llu fetch_blocked=%d "
                 "chain_in_progress=%d\n",
                 id_, static_cast<unsigned long long>(now_), rob_.size(),
                 rs_occupancy_, lq_occupancy_, sq_.size(),
                 store_buffer_.size(), ready_q_.size(),
                 static_cast<unsigned long long>(stats_.retired_uops),
                 fetch_blocked_, chain_in_progress_);
    for (std::size_t i = 0; i < rob_.size() && i < 6; ++i) {
        const RobEntry &e = rob_[i];
        std::fprintf(stderr,
                     "  rob[%zu] seq=%llu %s issued=%d comp=%d offl=%d "
                     "memout=%d llcmiss=%d pend=%u\n",
                     i, static_cast<unsigned long long>(e.seq),
                     e.d.uop.toString().c_str(), e.issued, e.completed,
                     e.offloaded, e.mem_outstanding, e.llc_miss,
                     pending_srcs_.count(e.seq)
                         ? pending_srcs_.at(e.seq)
                         : 999);
    }
}

void
Core::selfCheck(check::CheckRegistry &reg) const
{
    const std::string comp = "core" + std::to_string(id_);
    auto bad = [&](const std::string &msg) {
        reg.fail("core_state", comp, 0, msg);
    };

    // ROB: sequence numbers are dense (seq-indexed lookup depends on
    // it) and the load-queue occupancy counter matches the ROB.
    unsigned loads = 0;
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        if (rob_[i].seq != rob_.front().seq + i) {
            bad("ROB seq not dense at index " + std::to_string(i));
            break;
        }
    }
    for (const RobEntry &e : rob_)
        loads += isLoad(e.d.uop.op) ? 1 : 0;
    if (loads != lq_occupancy_) {
        bad("LQ occupancy " + std::to_string(lq_occupancy_)
            + " != ROB load count " + std::to_string(loads));
    }

    // Register file: the free list holds each preg at most once, and
    // no RAT mapping points into the free list.
    std::vector<bool> free_set(cfg_.phys_regs, false);
    for (std::uint16_t p : free_list_) {
        if (p >= cfg_.phys_regs) {
            bad("free list holds out-of-range preg " + std::to_string(p));
            continue;
        }
        if (free_set[p])
            bad("preg " + std::to_string(p) + " on the free list twice");
        free_set[p] = true;
    }
    if (free_list_.size() >= cfg_.phys_regs)
        bad("free list larger than the register file");
    for (unsigned a = 0; a < kArchRegs; ++a) {
        const std::uint16_t p = rat_[a];
        if (p >= cfg_.phys_regs) {
            bad("RAT maps arch reg " + std::to_string(a)
                + " to out-of-range preg " + std::to_string(p));
        } else if (free_set[p]) {
            bad("RAT maps arch reg " + std::to_string(a)
                + " to freed preg " + std::to_string(p));
        }
    }

    // Store queue: program order means strictly increasing seqs.
    for (std::size_t i = 1; i < sq_.size(); ++i) {
        if (sq_[i].seq <= sq_[i - 1].seq) {
            bad("SQ seqs not strictly increasing at index "
                + std::to_string(i));
            break;
        }
    }
    if (sq_.size() > cfg_.sq_size)
        bad("SQ occupancy exceeds capacity");

    auto struct_fail = [&](const std::string &msg) {
        reg.fail("cache_state", comp, 0, msg);
    };
    l1d_.checkConsistent(struct_fail);
    mshrs_.checkConsistent(struct_fail);
}

void
Core::drainStoreBuffer()
{
    if (store_buffer_.empty())
        return;
    StoreQueueEntry &sqe = store_buffer_.front();
    emc_assert(sqe.addr_known, "retired store without an address");
    const Addr line = lineAlign(sqe.paddr);
    // Write-through, no-write-allocate L1.
    l1d_.peek(line);  // write hits update in place; nothing to model
    port_->storeThrough(id_, line);
    store_buffer_.pop_front();
}

} // namespace emc
