/**
 * @file
 * Trace-driven out-of-order core model: 4-wide issue, 256-entry ROB,
 * 92-entry reservation station, LSQ with store forwarding, 256-entry
 * physical register file, CDB wakeup, in-order retirement (Table 1).
 *
 * The core also hosts the paper's chain-generation unit (Section 4.2):
 * on a full-window stall caused by an LLC miss at the head of the ROB,
 * a forward dataflow walk renames the dependent uops onto EMC physical
 * registers through the Register Remapping Table and ships the chain
 * to the EMC.
 *
 * Functional correctness is enforced: ALU uops are evaluated against
 * the trace oracle; any divergence is a simulator bug and panics.
 */

#ifndef EMC_CORE_CORE_HH
#define EMC_CORE_CORE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/cache.hh"
#include "check/checkers.hh"
#include "common/sat_counter.hh"
#include "core/branch_predictor.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/port.hh"
#include "emc/chain.hh"
#include "isa/trace.hh"
#include "obs/obs.hh"
#include "pred/predictor.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace emc
{

/** Static configuration of one core (Table 1 defaults). */
struct CoreConfig
{
    unsigned fetch_width = 4;
    unsigned issue_width = 4;
    unsigned retire_width = 4;
    unsigned rob_size = 256;
    unsigned rs_size = 92;
    unsigned lq_size = 64;
    unsigned sq_size = 36;
    unsigned phys_regs = 256;
    unsigned l1d_bytes = 32 * 1024;
    unsigned l1d_ways = 8;
    Cycle l1d_latency = 3;
    unsigned l1_mshrs = 16;
    Cycle mispredict_penalty = 14;
    Cycle tlb_walk_latency = 30;
    unsigned tlb_entries = 64;
    /// Use the hybrid branch predictor (Table 1). When disabled the
    /// generator's sampled mispredict flags are used instead.
    bool use_branch_predictor = true;
    /// Runahead execution [38]: on a full-window stall, pre-execute
    /// the instruction stream with an invalid-value dataflow to issue
    /// future *independent* misses early. Dependent misses are dropped
    /// (their addresses are invalid) — the gap the EMC fills.
    bool runahead_enabled = false;
    unsigned runahead_max_uops = 512;  ///< per-episode budget
    bool emc_enabled = false;
    /// Hermes-style off-chip prediction at the core (DESIGN.md §13):
    /// every demand load consults an off-chip predictor at dispatch
    /// and, when predicted to miss the LLC, launches a speculative
    /// DRAM probe in parallel with the L1→ring→LLC walk. Independent
    /// of (and composable with) EMC chain offload.
    bool hermes_enabled = false;
    /// Predictor engine driving the core-side probes (perceptron by
    /// default, matching Hermes; kTable gives a PC-hash baseline).
    pred::PredConfig hermes_pred = pred::PredConfig::perceptron();
    unsigned chain_max_uops = kChainMaxUops;
    /// New cache lines a chain may chase beyond its sources. Deeper
    /// chains hold an EMC context through more serialized DRAM trips
    /// and delay the (batched) live-outs; depth 1 reproduces the
    /// paper's reported ~9-uop average chains (Figure 22) and performs
    /// best (see bench/ablation_emc_params).
    unsigned chain_max_indirection = 1;
};

/** Per-core statistics consumed by the benches. */
struct CoreStats
{
    std::uint64_t retired_uops = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l1d_hits = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t llc_misses = 0;           ///< demand loads missing LLC
    std::uint64_t dependent_llc_misses = 0; ///< tainted-address misses
    std::uint64_t full_window_stall_cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    // Runahead execution (optional baseline)
    std::uint64_t runahead_episodes = 0;
    std::uint64_t runahead_uops = 0;
    std::uint64_t runahead_prefetches = 0;
    std::uint64_t runahead_dropped_loads = 0;  ///< invalid address

    // Chain generation (Section 4.2)
    std::uint64_t chains_generated = 0;
    std::uint64_t chains_rejected_no_context = 0;
    std::uint64_t chains_rejected_counter = 0;
    std::uint64_t chain_uops_total = 0;
    std::uint64_t chain_live_ins_total = 0;
    std::uint64_t chain_gen_cycles = 0;
    std::uint64_t chain_results_ok = 0;
    std::uint64_t chain_results_canceled = 0;
    std::uint64_t offloaded_uops_completed_remotely = 0;

    // Dependence-distance tracking (Figure 6)
    Average dep_distance;

    // Energy-relevant event counters (Section 5)
    std::uint64_t cdb_broadcasts = 0;
    std::uint64_t rrt_reads = 0;
    std::uint64_t rrt_writes = 0;
    std::uint64_t rob_chain_reads = 0;
    std::uint64_t uops_executed = 0;
    std::uint64_t fp_uops_executed = 0;

    double ipc() const
    {
        return cycles ? static_cast<double>(retired_uops) / cycles : 0.0;
    }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(retired_uops);
        ar.io(cycles);
        ar.io(l1d_hits);
        ar.io(l1d_misses);
        ar.io(llc_misses);
        ar.io(dependent_llc_misses);
        ar.io(full_window_stall_cycles);
        ar.io(branches);
        ar.io(mispredicts);
        ar.io(runahead_episodes);
        ar.io(runahead_uops);
        ar.io(runahead_prefetches);
        ar.io(runahead_dropped_loads);
        ar.io(chains_generated);
        ar.io(chains_rejected_no_context);
        ar.io(chains_rejected_counter);
        ar.io(chain_uops_total);
        ar.io(chain_live_ins_total);
        ar.io(chain_gen_cycles);
        ar.io(chain_results_ok);
        ar.io(chain_results_canceled);
        ar.io(offloaded_uops_completed_remotely);
        ar.io(dep_distance);
        ar.io(cdb_broadcasts);
        ar.io(rrt_reads);
        ar.io(rrt_writes);
        ar.io(rob_chain_reads);
        ar.io(uops_executed);
        ar.io(fp_uops_executed);
    }
};

/**
 * Chip services a functionally-warming core needs (DESIGN.md §8): the
 * LLC-and-beyond side of a warm access. Deliberately tiny — the fast
 * path has no timing, so there is nothing to request or wait for.
 */
class WarmPort
{
  public:
    virtual ~WarmPort() = default;

    /**
     * An access left this core during functional warming: a load that
     * missed L1, or any store (write-through). The implementation
     * touches LLC tags/metadata only.
     */
    virtual void warmLine(CoreId core, Addr paddr_line, Addr pc,
                          bool is_store) = 0;
};

/**
 * One out-of-order core. The System drives it via tick() and delivers
 * memory-system events through the notification methods.
 */
class Core
{
  public:
    /**
     * @param id core id
     * @param cfg configuration
     * @param trace instruction source (not owned)
     * @param pt this program's page table (not owned)
     * @param port chip services (not owned)
     */
    Core(CoreId id, const CoreConfig &cfg, TraceSource *trace,
         PageTable *pt, CorePort *port);

    /** Advance one cycle. */
    void tick();

    /**
     * Idle-cycle skip support (see DESIGN.md, "Event-queue and
     * cycle-skipping invariants"). Reports whether tick() would be a
     * pure bookkeeping no-op right now, and if so until when.
     *
     * @return 0 when the core may do real work this cycle; otherwise
     *         the earliest future cycle at which it can act on its own
     *         (kNoCycle when it can only be woken externally)
     */
    Cycle quiescentUntil() const;

    /**
     * Account @p n skipped quiescent cycles: exactly the per-cycle
     * counter updates tick() would have made (cycle count, and the
     * full-window stall counter when the stall condition holds).
     * Only valid while quiescentUntil() != 0.
     */
    void skipIdleCycles(std::uint64_t n);

    // ---- notifications from the System ----

    /**
     * A line fill reached this core.
     * @param paddr_line the filled line
     * @param was_llc_miss the request had missed the LLC (taints dest)
     */
    void fillArrived(Addr paddr_line, bool was_llc_miss);

    /** The LLC determined that an outstanding request missed. */
    void llcMissDetermined(Addr paddr_line);

    /** Chain finished at the EMC (completed or canceled). */
    void chainResult(const ChainResult &result);

    /**
     * EMC executed a memory op of an offloaded chain; the core
     * populates the LSQ entry and checks for ordering conflicts.
     * @retval true a disambiguation conflict exists (cancel the chain)
     */
    bool lsqPopulate(std::uint64_t rob_seq, Addr paddr);

    /** Back-invalidate an L1 line (LLC eviction, inclusive hierarchy). */
    void invalidateL1(Addr paddr_line);

    /** Stat-free invalidateL1() for the functional-warming path. */
    void warmInvalidateL1(Addr paddr_line);

    // ---- functional warming (DESIGN.md §8) ----

    /**
     * Consume and functionally "dispatch" one uop from the trace:
     * architectural register values, branch predictor, TLB and L1 tags
     * are updated exactly as the detailed pipeline would in program
     * order, but no ROB/RS/LSQ/MSHR state is built and no cycle
     * passes. Accesses that leave the core go to @p port. Must only be
     * called on a quiescent core (ckptQuiescent()).
     *
     * @retval false the trace is exhausted (nothing consumed)
     */
    bool warmStep(WarmPort &port);

    // ---- accessors ----

    const CoreStats &stats() const { return stats_; }
    CoreStats &mutableStats() { return stats_; }

    /** Zero the statistics (post-warmup measurement start). */
    void
    resetStats()
    {
        stats_ = CoreStats{};
        if (hermes_)
            hermes_->resetStats();
    }
    std::uint64_t retired() const { return stats_.retired_uops; }
    bool fullWindowStalled() const { return full_window_stall_; }
    CoreId id() const { return id_; }
    const Cache &l1d() const { return l1d_; }
    const Tlb &tlb() const { return tlb_; }
    const CoreConfig &config() const { return cfg_; }

    /** A fetched-but-undispatched uop is parked in the front-end. */
    bool hasDeferredUop() const { return have_deferred_uop_; }

    /** The dependent-miss trigger counter (tests). */
    const SatCounter &depMissCounter() const { return dep_counter_; }

    /** Print pipeline state (diagnosing stalls). */
    void debugDump() const;

    /** The hybrid branch predictor (tests / stats). */
    const HybridBranchPredictor &branchPredictor() const { return bp_; }

    /**
     * The core-side Hermes off-chip predictor (stats / tests); null
     * unless cfg.hermes_enabled.
     */
    const pred::OffchipPredictor *
    hermesPredictor() const
    {
        return hermes_.get();
    }

    /**
     * Attach the invariant-check registry (null detaches). Observation
     * only; never changes pipeline behaviour or statistics.
     */
    void
    setCheck(check::CheckRegistry *reg, check::RetireOrderChecker *retire)
    {
        check_ = reg;
        ck_retire_ = retire;
    }

    /**
     * Attach the lifecycle tracer (null detaches). Observation only;
     * emits a chain_offloaded instant when a chain ships to the EMC.
     */
    void
    setTrace(obs::Tracer *t)
    {
        tracer_ = t;
    }

    /**
     * Deep structural self-check (periodic in checked runs): ROB seq
     * density, free-list/RAT consistency, LQ/SQ accounting, L1 tag
     * store and MSHR structure.
     */
    void selfCheck(check::CheckRegistry &reg) const;

    // ---- checkpoint/restore (DESIGN.md §7) ----

    /** Full-level checkpoint: every dynamic field of the pipeline. */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(now_);
        ar.io(rob_);
        ar.io(next_seq_);
        ar.io(prf_);
        ar.io(rat_);
        ar.io(free_list_);
        ar.io(rs_occupancy_);
        ar.io(lq_occupancy_);
        ar.io(sq_);
        ar.io(store_buffer_);
        ar.io(l1d_);
        ar.io(mshrs_);
        ar.io(tlb_);
        ar.io(bp_);
        ar.io(ready_q_);
        ar.io(retry_q_);
        ar.io(preg_waiters_);
        ar.io(pending_srcs_);
        ar.io(complete_at_);
        ar.io(counter_updates_);
        ar.io(fill_waiters_);
        ar.io(in_runahead_);
        ar.io(runahead_blocking_line_);
        ar.io(runahead_budget_);
        for (bool &v : runahead_valid_)
            ar.io(v);
        ar.io(runahead_lines_);
        ar.io(replay_q_);
        ar.io(fetch_blocked_);
        ar.io(fetch_block_seq_);
        ar.io(fetch_resume_);
        ar.io(fetch_paused_);
        ar.io(have_deferred_uop_);
        ar.io(deferred_uop_);
        ar.io(full_window_stall_);
        ar.io(dep_counter_);
        ar.io(chain_in_progress_);
        ar.io(chain_send_cycle_);
        ar.io(pending_chain_);
        ar.io(next_chain_id_);
        ar.io(last_chain_source_seq_);
        ar.io(source_dep_seen_);
        ar.io(offload_chain_source_);
        // Predictor tables ride full-level images so a restored run
        // replays bit-identical probe decisions (null iff disabled,
        // which is part of the config hash).
        if (hermes_)
            ar.io(*hermes_);
        ar.io(hermes_pending_);
        ar.io(stats_);
    }

    /**
     * Warmup-level checkpoint: only state meaningful across differing
     * back-end configs — architectural register values, the deferred
     * front-end uop, warmed L1/TLB/branch-predictor contents and the
     * dependent-miss trigger counter. Valid only while ckptQuiescent();
     * restores into a freshly constructed core (sequence numbers and
     * stats restart, which is exactly what resetMeasurement wants).
     */
    template <class A>
    void
    serWarm(A &ar)
    {
        for (unsigned r = 0; r < kArchRegs; ++r) {
            std::uint64_t v = prf_[rat_[r]].value;
            ar.io(v);
            if (ar.loading()) {
                PhysReg &p = prf_[rat_[r]];
                p.value = v;
                p.ready = true;
                p.taint = false;
                p.taint_depth = 0;
                p.taint_src = 0;
            }
        }
        ar.io(have_deferred_uop_);
        ar.io(deferred_uop_);
        ar.io(bp_);
        ar.io(l1d_);
        ar.io(tlb_);
        ar.io(dep_counter_);
    }

    /**
     * True when the pipeline holds no in-flight work, so a
     * warmup-level snapshot loses nothing (the deferred uop is
     * carried explicitly).
     */
    bool
    ckptQuiescent() const
    {
        return rob_.empty() && sq_.empty() && store_buffer_.empty()
               && replay_q_.empty() && counter_updates_.empty()
               && mshrs_.size() == 0 && !in_runahead_
               && !chain_in_progress_ && !fetch_blocked_
               && hermes_pending_.empty();
    }

    /**
     * Gate fetch/rename/dispatch without disturbing the rest of the
     * pipeline: in-flight work drains while no new uops enter. Used to
     * reach ckptQuiescent() at a warmup checkpoint boundary.
     */
    void pauseFetch(bool paused) { fetch_paused_ = paused; }

    /** Seq of the last retired uop (reseeds the retire-order checker). */
    std::uint64_t
    ckptLastRetiredSeq() const
    {
        return rob_.empty() ? next_seq_ - 1 : rob_.front().seq - 1;
    }

  private:
    // ---- dynamic uop state in the ROB ----

    /** One reorder-buffer entry (all per-uop dynamic state). */
    struct RobEntry
    {
        DynUop d;
        std::uint64_t seq = 0;
        std::uint16_t dst_preg = 0xffff;
        std::uint16_t src1_preg = 0xffff;
        std::uint16_t src2_preg = 0xffff;
        std::uint16_t prev_dst_preg = 0xffff;
        bool in_rs = false;
        bool issued = false;
        bool completed = false;
        bool offloaded = false;    ///< shipped to the EMC
        bool completed_by_emc = false;
        bool mem_outstanding = false;
        Addr paddr = kNoAddr;
        bool llc_miss = false;     ///< this load missed the LLC
        bool addr_tainted = false; ///< address derived from an LLC miss
        std::uint32_t taint_depth_at_exec = 0;
        std::uint64_t addr_taint_src = 0;  ///< seq of the source miss
        Cycle ready_cycle = kNoCycle;      ///< completion schedule
        std::uint64_t pending_value = 0;   ///< value written at complete

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(d);
            ar.io(seq);
            ar.io(dst_preg);
            ar.io(src1_preg);
            ar.io(src2_preg);
            ar.io(prev_dst_preg);
            ar.io(in_rs);
            ar.io(issued);
            ar.io(completed);
            ar.io(offloaded);
            ar.io(completed_by_emc);
            ar.io(mem_outstanding);
            ar.io(paddr);
            ar.io(llc_miss);
            ar.io(addr_tainted);
            ar.io(taint_depth_at_exec);
            ar.io(addr_taint_src);
            ar.io(ready_cycle);
            ar.io(pending_value);
        }
    };

    /** A physical register: value, readiness and miss taint. */
    struct PhysReg
    {
        std::uint64_t value = 0;
        bool ready = true;
        bool taint = false;        ///< derived from outstanding LLC miss
        std::uint32_t taint_depth = 0;
        std::uint64_t taint_src = 0;  ///< seq of the originating miss

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(value);
            ar.io(ready);
            ar.io(taint);
            ar.io(taint_depth);
            ar.io(taint_src);
        }
    };

    /** A store-queue entry (also used by the post-retire drain). */
    struct StoreQueueEntry
    {
        std::uint64_t seq = 0;
        Addr vaddr = kNoAddr;
        Addr paddr = kNoAddr;
        bool addr_known = false;
        std::uint64_t value = 0;
        bool retired = false;   ///< waiting in post-retire drain

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(seq);
            ar.io(vaddr);
            ar.io(paddr);
            ar.io(addr_known);
            ar.io(value);
            ar.io(retired);
        }
    };

    // ---- pipeline stages (called in reverse order from tick) ----
    void retireStage();
    void completeStage();
    void issueStage();
    void fetchRenameDispatch();
    void drainStoreBuffer();

    // ---- helpers ----
    RobEntry *bySeq(std::uint64_t seq);
    bool robFull() const { return rob_.size() >= cfg_.rob_size; }
    bool stalledOnMissHead() const;
    void wakeup(std::uint16_t preg);
    void executeAlu(RobEntry &e);
    bool tryExecuteLoad(RobEntry &e);
    void executeStore(RobEntry &e);
    void scheduleComplete(RobEntry &e, Cycle when, std::uint64_t value);
    void completeEntry(RobEntry &e, std::uint64_t value, bool from_emc);
    void setTaintFromSources(const RobEntry &e, PhysReg &dst);
    void recordMissDependence(const RobEntry &e);

    // ---- runahead execution ----
    void maybeEnterRunahead(const RobEntry &head);
    void runaheadStep();
    void exitRunahead(Addr filled_line);

    // ---- chain generation (Section 4.2) ----
    void maybeGenerateChain();
    bool buildChain(RobEntry &source, ChainRequest &chain);
    void unOffloadChain(const ChainRequest &chain);

    // ---- Hermes off-chip prediction (DESIGN.md §13) ----

    /**
     * A demand load left the core: consult the off-chip predictor,
     * record the outcome for training at fill time, and launch a
     * speculative DRAM probe when a miss is predicted.
     */
    void maybeHermesProbe(Addr paddr_line, Addr pc, Addr vaddr);

    /** Feature bundle recorded at predict so train sees it verbatim. */
    struct HermesPending
    {
        Addr pc = 0;
        Addr vaddr = kNoAddr;
        bool predicted = false;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(pc);
            ar.io(vaddr);
            ar.io(predicted);
        }
    };

    CoreId id_;       // ckpt-skip: (identity is config)
    CoreConfig cfg_;  // ckpt-skip: (config, not state)
    TraceSource *trace_;
    PageTable *pt_;
    CorePort *port_;

    Cycle now_ = 0;

    std::deque<RobEntry> rob_;
    std::uint64_t next_seq_ = 1;
    std::vector<PhysReg> prf_;
    std::vector<std::uint16_t> rat_;       ///< arch -> phys
    std::vector<std::uint16_t> free_list_;
    unsigned rs_occupancy_ = 0;
    unsigned lq_occupancy_ = 0;

    std::deque<StoreQueueEntry> sq_;       ///< program-order stores
    std::deque<StoreQueueEntry> store_buffer_;  ///< post-retire drain

    Cache l1d_;
    MshrFile mshrs_;
    Tlb tlb_;
    HybridBranchPredictor bp_;

    // Scheduling machinery (kept O(1)-amortized per cycle).
    std::deque<std::uint64_t> ready_q_;    ///< seqs ready to issue
    std::vector<std::uint64_t> retry_q_;   ///< structural-hazard retries
    std::unordered_map<std::uint16_t,
                       std::vector<std::uint64_t>> preg_waiters_;
    std::unordered_map<std::uint64_t, unsigned> pending_srcs_;
    std::unordered_map<Cycle, std::vector<std::uint64_t>> complete_at_;
    std::deque<std::pair<Cycle, std::uint64_t>> counter_updates_;

    /// line paddr -> seqs of loads waiting on the fill
    std::unordered_map<Addr, std::vector<std::uint64_t>> fill_waiters_;

    // Runahead state
    bool in_runahead_ = false;
    Addr runahead_blocking_line_ = kNoAddr;
    unsigned runahead_budget_ = 0;
    bool runahead_valid_[kArchRegs] = {};
    std::unordered_set<Addr> runahead_lines_;
    std::deque<DynUop> replay_q_;   ///< uops consumed during runahead

    // Front-end state
    bool fetch_paused_ = false;    ///< checkpoint drain gate
    bool fetch_blocked_ = false;
    std::uint64_t fetch_block_seq_ = 0;    ///< mispredicted branch seq
    Cycle fetch_resume_ = 0;
    bool have_deferred_uop_ = false;
    DynUop deferred_uop_;

    // Full-window stall / chain generation state
    bool full_window_stall_ = false;
    SatCounter dep_counter_{3, 0};
    bool chain_in_progress_ = false;
    Cycle chain_send_cycle_ = kNoCycle;
    ChainRequest pending_chain_;
    std::uint64_t next_chain_id_ = 1;
    std::uint64_t last_chain_source_seq_ = 0;

    /// Core-side off-chip predictor; null unless cfg.hermes_enabled.
    std::unique_ptr<pred::OffchipPredictor> hermes_;
    /// line paddr -> features recorded at predict, trained at fill
    std::map<Addr, HermesPending> hermes_pending_;

    /// source-miss seq -> saw a dependent miss (for the 3-bit counter)
    std::unordered_map<std::uint64_t, bool> source_dep_seen_;
    /// chain id -> source-miss seq, for counter updates on live-outs
    std::unordered_map<std::uint64_t, std::uint64_t> offload_chain_source_;

    // Invariant checking (null when disabled; observation only)
    check::CheckRegistry *check_ = nullptr;
    obs::Tracer *tracer_ = nullptr;
    check::RetireOrderChecker *ck_retire_ = nullptr;

    CoreStats stats_;
};

} // namespace emc

#endif // EMC_CORE_CORE_HH
