/**
 * @file
 * Binary trace capture and replay.
 *
 * A captured trace freezes a workload (including its oracle values)
 * so runs are reproducible across machines, shareable, and decoupled
 * from the generator. The format is a fixed-size little-endian record
 * per dynamic uop behind a small header.
 */

#ifndef EMC_ISA_TRACE_IO_HH
#define EMC_ISA_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>

#include "isa/trace.hh"

namespace emc
{

/** Magic bytes + format version of the trace file header. */
constexpr char kTraceMagic[4] = {'E', 'M', 'C', 'T'};
constexpr std::uint32_t kTraceVersion = 1;

/** Streams dynamic uops into a trace file. */
class TraceWriter
{
  public:
    /** Open @p path for writing; truncates. Fails fatally on error. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one dynamic uop. */
    void append(const DynUop &d);

    /** Finalize the header (record count) and close. */
    void close();

    std::uint64_t written() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/** Replays a trace file as a TraceSource. */
class FileTrace : public TraceSource
{
  public:
    /**
     * Open @p path. Fails fatally on a missing file or bad header.
     * @param loop restart from the beginning when exhausted
     */
    explicit FileTrace(const std::string &path, bool loop = false);
    ~FileTrace() override;

    FileTrace(const FileTrace &) = delete;
    FileTrace &operator=(const FileTrace &) = delete;

    bool next(DynUop &out) override;
    std::uint64_t produced() const override { return produced_; }

    /** Restores by replaying the file up to the saved position. */
    void ckptSer(ckpt::Ar &ar) override;

    /** Total records in the file. */
    std::uint64_t size() const { return total_; }

  private:
    void rewindToRecords();

    std::FILE *file_ = nullptr;
    std::uint64_t total_ = 0;
    std::uint64_t read_ = 0;
    std::uint64_t produced_ = 0;
    bool loop_;
};

/**
 * A pass-through TraceSource that captures everything it forwards —
 * wrap a generator with this to record a run (emcsim --capture).
 */
class CapturingTrace : public TraceSource
{
  public:
    CapturingTrace(TraceSource *inner, const std::string &path)
        : inner_(inner), writer_(path)
    {}

    bool
    next(DynUop &out) override
    {
        if (!inner_->next(out))
            return false;
        writer_.append(out);
        return true;
    }

    std::uint64_t produced() const override
    {
        return inner_->produced();
    }

    void finish() { writer_.close(); }

  private:
    TraceSource *inner_;
    TraceWriter writer_;
};

} // namespace emc

#endif // EMC_ISA_TRACE_IO_HH
