/**
 * @file
 * Dynamic micro-op trace record and trace-source interface.
 *
 * The workload generator functionally executes the program it emits,
 * so every dynamic uop carries oracle values (result, effective
 * address, branch direction). The timing simulator re-executes the
 * uops through real register files and asserts agreement — this is the
 * correctness net that keeps the EMC's remote execution honest.
 */

#ifndef EMC_ISA_TRACE_HH
#define EMC_ISA_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/uop.hh"

namespace emc
{

namespace ckpt
{
class Ar;
} // namespace ckpt

/** One dynamic instance of a uop with generator-oracle annotations. */
struct DynUop
{
    Uop uop;

    /// Oracle result value of the destination register (if any).
    std::uint64_t result = 0;
    /// Oracle effective virtual address for loads/stores.
    Addr vaddr = kNoAddr;
    /// Oracle loaded/stored value for loads/stores.
    std::uint64_t mem_value = 0;
    /// Oracle branch direction.
    bool taken = false;
    /// Whether the front-end mispredicts this branch instance.
    bool mispredicted = false;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(uop);
        ar.io(result);
        ar.io(vaddr);
        ar.io(mem_value);
        ar.io(taken);
        ar.io(mispredicted);
    }
};

/**
 * A pull-based source of dynamic uops. Cores consume one stream each.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fetch the next dynamic uop.
     * @param out the uop record to fill
     * @retval true a uop was produced
     * @retval false the trace is exhausted
     */
    virtual bool next(DynUop &out) = 0;

    /** Total uops produced so far. */
    virtual std::uint64_t produced() const = 0;

    /**
     * Checkpoint/restore the source's dynamic state through @p ar
     * (both directions; ar.loading() distinguishes them). The default
     * refuses with ckpt::Error — sources that cannot be restored
     * exactly (e.g. capture wrappers) inherit it.
     */
    virtual void ckptSer(ckpt::Ar &ar);
};

/** A TraceSource that replays an in-memory vector (used by tests). */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<DynUop> uops)
        : uops_(std::move(uops))
    {}

    bool
    next(DynUop &out) override
    {
        if (pos_ >= uops_.size())
            return false;
        out = uops_[pos_++];
        return true;
    }

    std::uint64_t produced() const override { return pos_; }

    void ckptSer(ckpt::Ar &ar) override;

  private:
    std::vector<DynUop> uops_;  ///< immutable content: not checkpointed
    std::size_t pos_ = 0;
};

} // namespace emc

#endif // EMC_ISA_TRACE_HH
