/**
 * @file
 * Dynamic micro-op trace record and trace-source interface.
 *
 * The workload generator functionally executes the program it emits,
 * so every dynamic uop carries oracle values (result, effective
 * address, branch direction). The timing simulator re-executes the
 * uops through real register files and asserts agreement — this is the
 * correctness net that keeps the EMC's remote execution honest.
 */

#ifndef EMC_ISA_TRACE_HH
#define EMC_ISA_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/uop.hh"

namespace emc
{

/** One dynamic instance of a uop with generator-oracle annotations. */
struct DynUop
{
    Uop uop;

    /// Oracle result value of the destination register (if any).
    std::uint64_t result = 0;
    /// Oracle effective virtual address for loads/stores.
    Addr vaddr = kNoAddr;
    /// Oracle loaded/stored value for loads/stores.
    std::uint64_t mem_value = 0;
    /// Oracle branch direction.
    bool taken = false;
    /// Whether the front-end mispredicts this branch instance.
    bool mispredicted = false;
};

/**
 * A pull-based source of dynamic uops. Cores consume one stream each.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fetch the next dynamic uop.
     * @param out the uop record to fill
     * @retval true a uop was produced
     * @retval false the trace is exhausted
     */
    virtual bool next(DynUop &out) = 0;

    /** Total uops produced so far. */
    virtual std::uint64_t produced() const = 0;
};

/** A TraceSource that replays an in-memory vector (used by tests). */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<DynUop> uops)
        : uops_(std::move(uops))
    {}

    bool
    next(DynUop &out) override
    {
        if (pos_ >= uops_.size())
            return false;
        out = uops_[pos_++];
        return true;
    }

    std::uint64_t produced() const override { return pos_; }

  private:
    std::vector<DynUop> uops_;
    std::size_t pos_ = 0;
};

} // namespace emc

#endif // EMC_ISA_TRACE_HH
