#include "isa/trace_io.hh"

#include <cstring>

#include "common/log.hh"
#include "ckpt/serial.hh"

namespace emc
{

void
TraceSource::ckptSer(ckpt::Ar &)
{
    throw ckpt::Error("this trace source is not checkpointable");
}

void
VectorTrace::ckptSer(ckpt::Ar &ar)
{
    ar.io(pos_);
}

namespace
{

/** On-disk record: fixed 46-byte little-endian layout. */
struct PackedUop
{
    std::uint8_t op;
    std::uint8_t dst;
    std::uint8_t src1;
    std::uint8_t src2;
    std::int64_t imm;
    std::uint64_t pc;
    std::uint64_t result;
    std::uint64_t vaddr;
    std::uint64_t mem_value;
    std::uint8_t taken;
    std::uint8_t mispredicted;
};

constexpr std::size_t kRecordBytes = 4 + 5 * 8 + 2;

void
pack(const DynUop &d, unsigned char *buf)
{
    buf[0] = static_cast<std::uint8_t>(d.uop.op);
    buf[1] = d.uop.dst;
    buf[2] = d.uop.src1;
    buf[3] = d.uop.src2;
    std::memcpy(buf + 4, &d.uop.imm, 8);
    std::memcpy(buf + 12, &d.uop.pc, 8);
    std::memcpy(buf + 20, &d.result, 8);
    std::memcpy(buf + 28, &d.vaddr, 8);
    std::memcpy(buf + 36, &d.mem_value, 8);
    buf[44] = d.taken ? 1 : 0;
    buf[45] = d.mispredicted ? 1 : 0;
}

void
unpack(const unsigned char *buf, DynUop &d)
{
    d.uop.op = static_cast<Opcode>(buf[0]);
    d.uop.dst = buf[1];
    d.uop.src1 = buf[2];
    d.uop.src2 = buf[3];
    std::memcpy(&d.uop.imm, buf + 4, 8);
    std::memcpy(&d.uop.pc, buf + 12, 8);
    std::memcpy(&d.result, buf + 20, 8);
    std::memcpy(&d.vaddr, buf + 28, 8);
    std::memcpy(&d.mem_value, buf + 36, 8);
    d.taken = buf[44] != 0;
    d.mispredicted = buf[45] != 0;
}

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        emc_fatal("cannot open trace file for writing: " + path);
    Header h;
    std::memcpy(h.magic, kTraceMagic, 4);
    h.version = kTraceVersion;
    h.count = 0;  // back-patched in close()
    if (std::fwrite(&h, sizeof(h), 1, file_) != 1)
        emc_fatal("trace header write failed: " + path);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const DynUop &d)
{
    emc_assert(file_ != nullptr, "append after close");
    unsigned char buf[kRecordBytes];
    pack(d, buf);
    if (std::fwrite(buf, kRecordBytes, 1, file_) != 1)
        emc_fatal("trace record write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    Header h;
    std::memcpy(h.magic, kTraceMagic, 4);
    h.version = kTraceVersion;
    h.count = count_;
    std::fseek(file_, 0, SEEK_SET);
    if (std::fwrite(&h, sizeof(h), 1, file_) != 1)
        emc_fatal("trace header rewrite failed");
    std::fclose(file_);
    file_ = nullptr;
}

FileTrace::FileTrace(const std::string &path, bool loop) : loop_(loop)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        emc_fatal("cannot open trace file: " + path);
    Header h;
    if (std::fread(&h, sizeof(h), 1, file_) != 1)
        emc_fatal("trace header read failed: " + path);
    if (std::memcmp(h.magic, kTraceMagic, 4) != 0)
        emc_fatal("not an EMCT trace file: " + path);
    if (h.version != kTraceVersion)
        emc_fatal("unsupported trace version in " + path);
    total_ = h.count;
}

FileTrace::~FileTrace()
{
    if (file_)
        std::fclose(file_);
}

void
FileTrace::rewindToRecords()
{
    std::fseek(file_, sizeof(Header), SEEK_SET);
    read_ = 0;
}

void
FileTrace::ckptSer(ckpt::Ar &ar)
{
    std::uint64_t produced = produced_;
    ar.io(produced);
    if (ar.loading()) {
        // Replaying from the start reproduces read_ and the file
        // offset exactly, including any loop wraparounds.
        rewindToRecords();
        produced_ = 0;
        DynUop scratch;
        for (std::uint64_t i = 0; i < produced; ++i) {
            if (!next(scratch))
                throw ckpt::Error(
                    "trace file shorter than checkpointed position");
        }
    }
}

bool
FileTrace::next(DynUop &out)
{
    if (read_ >= total_) {
        if (!loop_ || total_ == 0)
            return false;
        rewindToRecords();
    }
    unsigned char buf[kRecordBytes];
    if (std::fread(buf, kRecordBytes, 1, file_) != 1)
        return false;
    unpack(buf, out);
    ++read_;
    ++produced_;
    return true;
}

} // namespace emc
