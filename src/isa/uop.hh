/**
 * @file
 * The micro-op ISA shared by the out-of-order core and the EMC.
 *
 * The EMC executes only a subset of the core's uops (Table 1):
 * integer add/subtract/move/load/store and logical
 * and/or/xor/not/shift/sign-extend. Floating point, vector and other
 * opcodes mark a uop as not EMC-eligible; they execute at the core
 * only and terminate dataflow walks through themselves.
 */

#ifndef EMC_ISA_UOP_HH
#define EMC_ISA_UOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace emc
{

/** Architectural register count visible to generated programs. */
constexpr unsigned kArchRegs = 16;

/** Sentinel meaning "operand not used". */
constexpr std::uint8_t kNoReg = 0xff;

/** Micro-op opcodes. */
enum class Opcode : std::uint8_t
{
    kAdd,       ///< dst = src1 + src2/imm
    kSub,       ///< dst = src1 - src2/imm
    kMov,       ///< dst = src1 (or imm when src1 absent)
    kAnd,       ///< dst = src1 & src2/imm
    kOr,        ///< dst = src1 | src2/imm
    kXor,       ///< dst = src1 ^ src2/imm
    kNot,       ///< dst = ~src1
    kShl,       ///< dst = src1 << (imm & 63)
    kShr,       ///< dst = src1 >> (imm & 63)
    kSext,      ///< dst = sign-extend low 32 bits of src1
    kLoad,      ///< dst = mem[src1 + imm]
    kStore,     ///< mem[src1 + imm] = src2
    kBranch,    ///< conditional branch, taken iff src1 != 0
    kFpAdd,     ///< floating-point op (core only; opaque semantics)
    kFpMul,     ///< floating-point op (core only; opaque semantics)
    kVecOp,     ///< vector op (core only; opaque semantics)
    kNop,       ///< no operation
};

const char *opcodeName(Opcode op);

/** True for opcodes the EMC back-end may execute (Table 1). */
constexpr bool
emcAllowed(Opcode op)
{
    switch (op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMov:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kNot:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kSext:
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kBranch:
        return true;
      default:
        return false;
    }
}

constexpr bool
isLoad(Opcode op)
{
    return op == Opcode::kLoad;
}

constexpr bool
isStore(Opcode op)
{
    return op == Opcode::kStore;
}

constexpr bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

constexpr bool
isBranch(Opcode op)
{
    return op == Opcode::kBranch;
}

/** Execution latency at a core ALU, in cycles (memory ops excluded). */
constexpr unsigned
execLatency(Opcode op)
{
    switch (op) {
      case Opcode::kFpAdd: return 4;
      case Opcode::kFpMul: return 6;
      case Opcode::kVecOp: return 4;
      default: return 1;
    }
}

/**
 * A static micro-op as produced by the workload generator: opcode,
 * architectural operands, and an immediate. Dynamic state (values,
 * renamed registers, timing) lives in the core's ROB entries.
 */
struct Uop
{
    Opcode op = Opcode::kNop;
    std::uint8_t dst = kNoReg;   ///< architectural destination
    std::uint8_t src1 = kNoReg;  ///< architectural source 1
    std::uint8_t src2 = kNoReg;  ///< architectural source 2
    std::int64_t imm = 0;        ///< immediate operand
    std::uint64_t pc = 0;        ///< static program counter (hashing)

    bool hasDst() const { return dst != kNoReg; }
    bool hasSrc1() const { return src1 != kNoReg; }
    bool hasSrc2() const { return src2 != kNoReg; }

    std::string toString() const;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(op);
        ar.io(dst);
        ar.io(src1);
        ar.io(src2);
        ar.io(imm);
        ar.io(pc);
    }
};

/**
 * Pure functional semantics of a non-memory uop.
 *
 * @param op the opcode (must not be a load/store)
 * @param a value of src1 (0 if unused)
 * @param b value of src2 (0 if unused)
 * @param imm immediate operand
 * @return the destination value
 */
std::uint64_t evalAlu(Opcode op, std::uint64_t a, std::uint64_t b,
                      std::int64_t imm);

/** Branch direction semantics: taken iff the condition value != 0. */
inline bool
evalBranch(std::uint64_t cond)
{
    return cond != 0;
}

/** Effective address of a memory uop. */
inline Addr
effectiveAddr(std::uint64_t base, std::int64_t imm)
{
    return static_cast<Addr>(base + static_cast<std::uint64_t>(imm));
}

} // namespace emc

#endif // EMC_ISA_UOP_HH
