#include "isa/uop.hh"

#include <cstdio>

#include "common/log.hh"

namespace emc
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kAdd: return "add";
      case Opcode::kSub: return "sub";
      case Opcode::kMov: return "mov";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kNot: return "not";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kSext: return "sext";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kBranch: return "branch";
      case Opcode::kFpAdd: return "fpadd";
      case Opcode::kFpMul: return "fpmul";
      case Opcode::kVecOp: return "vecop";
      case Opcode::kNop: return "nop";
    }
    return "?";
}

std::string
Uop::toString() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s dst=%d src1=%d src2=%d imm=%lld pc=%llx",
                  opcodeName(op), dst == kNoReg ? -1 : dst,
                  src1 == kNoReg ? -1 : src1, src2 == kNoReg ? -1 : src2,
                  static_cast<long long>(imm),
                  static_cast<unsigned long long>(pc));
    return buf;
}

std::uint64_t
evalAlu(Opcode op, std::uint64_t a, std::uint64_t b, std::int64_t imm)
{
    const auto uimm = static_cast<std::uint64_t>(imm);
    switch (op) {
      case Opcode::kAdd: return a + (b ? b : 0) + uimm;
      case Opcode::kSub: return a - b - uimm;
      case Opcode::kMov: return a + uimm;
      case Opcode::kAnd: return a & (b | uimm);
      case Opcode::kOr: return a | b | uimm;
      case Opcode::kXor: return a ^ b ^ uimm;
      case Opcode::kNot: return ~a;
      case Opcode::kShl: return a << (uimm & 63);
      case Opcode::kShr: return a >> (uimm & 63);
      case Opcode::kSext:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(
                static_cast<std::int32_t>(a & 0xffffffffu)));
      case Opcode::kBranch: return a;
      case Opcode::kNop: return 0;
      case Opcode::kFpAdd:
      case Opcode::kFpMul:
      case Opcode::kVecOp:
        // Opaque but deterministic mixing so FP dataflow stays
        // reproducible without modeling IEEE semantics.
        return (a * 0x9e3779b97f4a7c15ULL) ^ (b + uimm);
      default:
        emc_panic("evalAlu on memory opcode");
    }
}

} // namespace emc
