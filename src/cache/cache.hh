/**
 * @file
 * Generic set-associative cache with true-LRU replacement, used for
 * the L1 data caches, the LLC slices and the EMC's 4 KB data cache.
 *
 * The LLC is inclusive; each line carries per-core presence bits plus
 * the extra EMC directory bit the paper adds (Section 4.1.3) so the
 * coherence machinery knows which lines the EMC data cache holds.
 */

#ifndef EMC_CACHE_CACHE_HH
#define EMC_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "obs/obs.hh"

namespace emc
{

/** Metadata stored with every cache line. */
struct CacheLineMeta
{
    bool dirty = false;
    std::uint32_t presence = 0;  ///< per-core L1 presence bits (LLC only)
    bool emc = false;            ///< EMC directory bit (LLC only)

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(dirty);
        ar.io(presence);
        ar.io(emc);
    }
};

/** Statistics for one cache instance. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;
    std::uint64_t invalidations = 0;

    double
    hitRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(hits);
        ar.io(misses);
        ar.io(evictions);
        ar.io(dirty_evictions);
        ar.io(invalidations);
    }
};

/**
 * Set-associative cache over line-aligned addresses.
 * Timing (access latency, ports) lives with the owner; this class is
 * the state: tags, LRU and metadata.
 */
class Cache
{
  public:
    /** Result of an insertion. */
    struct Victim
    {
        bool valid = false;  ///< an existing line was evicted
        Addr addr = kNoAddr; ///< line address of the victim
        CacheLineMeta meta;
    };

    /**
     * @param size_bytes total capacity
     * @param ways associativity
     * @param name for diagnostics
     */
    Cache(std::size_t size_bytes, unsigned ways, const char *name);

    /**
     * Probe for @p addr. Updates LRU and hit/miss stats.
     * @retval nullptr on miss, else the line's metadata (mutable)
     */
    CacheLineMeta *access(Addr addr);

    /** Probe without disturbing LRU or stats (coherence snoops). */
    CacheLineMeta *peek(Addr addr);
    const CacheLineMeta *peek(Addr addr) const;

    /**
     * Functional-warming probe (DESIGN.md §8): updates LRU exactly as
     * access() would — so the replacement state a fast-forwarded run
     * leaves behind matches a detailed run's — but touches no hit/miss
     * statistics. Fastwarm code must use this instead of access().
     * @retval nullptr on miss, else the line's metadata (mutable)
     */
    CacheLineMeta *warmAccess(Addr addr);

    /**
     * Insert the line for @p addr (must not be present), evicting the
     * LRU way if the set is full.
     */
    Victim insert(Addr addr, const CacheLineMeta &meta = {});

    /**
     * Functional-warming insert: identical tag/LRU/victim behaviour to
     * insert(), but no eviction statistics and no trace hook (fastwarm
     * runs outside simulated time, so an llc_evict instant would carry
     * a meaningless cycle).
     */
    Victim warmInsert(Addr addr, const CacheLineMeta &meta = {});

    /** Remove the line for @p addr if present. @return its metadata. */
    Victim invalidate(Addr addr);

    /**
     * Functional-warming invalidate: identical tag behaviour to
     * invalidate(), but no invalidation statistics — fastwarm's
     * back-invalidations happen outside simulated time.
     */
    Victim warmInvalidate(Addr addr);

    const CacheStats &stats() const { return stats_; }
    std::size_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    const char *name() const { return name_; }

    /** Count of valid lines (tests / occupancy studies). */
    std::size_t validLines() const;

    /**
     * Enumerate every valid line as (line address, metadata). Used by
     * the fastwarm validation mode to compare tag state between a
     * fast-warmed and a detailed-warmed machine.
     */
    void forEachValidLine(
        const std::function<void(Addr, const CacheLineMeta &)> &fn) const;

    /**
     * Tag-store structural check: no set may hold the same tag in two
     * valid ways. @p fail receives a diagnostic per violation; the
     * callback form keeps this library free of a checker dependency.
     */
    void checkConsistent(
        const std::function<void(const std::string &)> &fail) const;

    /**
     * Attach the lifecycle tracer (null detaches). Observation only;
     * emits an llc_evict instant on @p track per valid victim. The
     * cache has no clock of its own, so @p clock points at the owning
     * System's cycle counter.
     */
    void
    setTrace(obs::Tracer *t, obs::Track track, const Cycle *clock)
    {
        tracer_ = t;
        trace_track_ = track;
        trace_clock_ = clock;
    }

    /** Checkpoint tags, LRU state and stats (geometry is config). */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(lines_);
        ar.io(lru_tick_);
        ar.io(stats_);
    }

  private:
    /** One tag-store entry. */
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lru = 0;   ///< larger = more recent
        CacheLineMeta meta;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(valid);
            ar.io(tag);
            ar.io(lru);
            ar.io(meta);
        }
    };

    std::size_t setIndex(Addr addr) const { return lineNum(addr) % sets_; }
    Addr tagOf(Addr addr) const { return lineNum(addr) / sets_; }

    std::size_t sets_;  // ckpt-skip: (geometry is config)
    unsigned ways_;     // ckpt-skip: (geometry is config)
    const char *name_;
    std::vector<Line> lines_;   ///< sets_ * ways_, row-major by set
    std::uint64_t lru_tick_ = 0;
    CacheStats stats_;
    obs::Tracer *tracer_ = nullptr;
    obs::Track trace_track_{};  // ckpt-skip: (obs wiring, reattached)
    const Cycle *trace_clock_ = nullptr;
};

/**
 * Miss Status Holding Registers: track outstanding line fills and the
 * consumers (tokens) waiting on each.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::size_t entries) : capacity_(entries) {}

    /** True if a fill for @p line_addr is already outstanding. */
    bool
    has(Addr line_addr) const
    {
        return find(line_addr) >= 0;
    }

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }

    /**
     * Allocate (or merge into) the entry for @p line_addr.
     * @param token consumer to wake on fill
     * @retval true a new entry was allocated (caller issues the fill)
     * @retval false merged into an existing entry
     */
    bool
    allocate(Addr line_addr, std::uint64_t token)
    {
        const int idx = find(line_addr);
        if (idx >= 0) {
            entries_[idx].tokens.push_back(token);
            return false;
        }
        emc_assert(!full(), "MSHR allocate on full file");
        entries_.push_back({line_addr, {token}});
        return true;
    }

    /**
     * Complete the fill for @p line_addr.
     * @param tokens out: all waiting consumers
     * @retval true an entry existed
     */
    bool
    complete(Addr line_addr, std::vector<std::uint64_t> &tokens)
    {
        const int idx = find(line_addr);
        if (idx < 0)
            return false;
        tokens = std::move(entries_[idx].tokens);
        entries_[idx] = entries_.back();
        entries_.pop_back();
        return true;
    }

    /**
     * Structural check: occupancy within capacity, one entry per line
     * address, and no entry without a waiting consumer (an entry that
     * lost its tokens can never be completed meaningfully).
     */
    void
    checkConsistent(
        const std::function<void(const std::string &)> &fail) const
    {
        if (entries_.size() > capacity_) {
            fail("MSHR occupancy " + std::to_string(entries_.size())
                 + " exceeds capacity " + std::to_string(capacity_));
        }
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].tokens.empty()) {
                fail("MSHR entry for line "
                     + std::to_string(entries_[i].line_addr)
                     + " has no waiting consumers");
            }
            for (std::size_t j = i + 1; j < entries_.size(); ++j) {
                if (entries_[i].line_addr == entries_[j].line_addr) {
                    fail("duplicate MSHR entries for line "
                         + std::to_string(entries_[i].line_addr));
                }
            }
        }
    }

    /** Checkpoint outstanding fills (capacity is config). */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(entries_);
    }

  private:
    /** One outstanding fill and its waiting consumers. */
    struct Entry
    {
        Addr line_addr;
        std::vector<std::uint64_t> tokens;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(line_addr);
            ar.io(tokens);
        }
    };

    int
    find(Addr line_addr) const
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].line_addr == line_addr)
                return static_cast<int>(i);
        }
        return -1;
    }

    std::size_t capacity_;  // ckpt-skip: (capacity is config)
    std::vector<Entry> entries_;
};

} // namespace emc

#endif // EMC_CACHE_CACHE_HH
