#include "cache/cache.hh"

namespace emc
{

Cache::Cache(std::size_t size_bytes, unsigned ways, const char *name)
    : ways_(ways), name_(name)
{
    emc_assert(ways >= 1, "cache needs at least one way");
    emc_assert(size_bytes % (static_cast<std::size_t>(ways) * kLineBytes)
                   == 0,
               "cache size must be a multiple of ways * line size");
    sets_ = size_bytes / (static_cast<std::size_t>(ways) * kLineBytes);
    emc_assert(sets_ >= 1, "cache needs at least one set");
    lines_.resize(sets_ * ways_);
}

CacheLineMeta *
Cache::access(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lru_tick_;
            ++stats_.hits;
            return &line.meta;
        }
    }
    ++stats_.misses;
    return nullptr;
}

CacheLineMeta *
Cache::peek(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (line.valid && line.tag == tag)
            return &line.meta;
    }
    return nullptr;
}

const CacheLineMeta *
Cache::peek(Addr addr) const
{
    return const_cast<Cache *>(this)->peek(addr);
}

CacheLineMeta *
Cache::warmAccess(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lru_tick_;
            return &line.meta;
        }
    }
    return nullptr;
}

Cache::Victim
Cache::insert(Addr addr, const CacheLineMeta &meta)
{
    emc_assert(peek(addr) == nullptr, "insert of already-present line");
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);

    // Prefer an invalid way; otherwise evict true-LRU.
    Line *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }

    Victim out;
    if (victim->valid) {
        out.valid = true;
        // Reconstruct the victim's line address from tag and set.
        out.addr = (victim->tag * sets_ + set) << kLineShift;
        out.meta = victim->meta;
        ++stats_.evictions;
        if (victim->meta.dirty)
            ++stats_.dirty_evictions;
        EMC_OBS_POINT(tracer_, obs::TracePoint::kLlcEvict,
                      trace_clock_ ? *trace_clock_ : 0, out.addr,
                      trace_track_, out.addr);
    }

    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++lru_tick_;
    victim->meta = meta;
    return out;
}

Cache::Victim
Cache::warmInsert(Addr addr, const CacheLineMeta &meta)
{
    emc_assert(peek(addr) == nullptr, "insert of already-present line");
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);

    Line *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }

    Victim out;
    if (victim->valid) {
        out.valid = true;
        out.addr = (victim->tag * sets_ + set) << kLineShift;
        out.meta = victim->meta;
    }

    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++lru_tick_;
    victim->meta = meta;
    return out;
}

Cache::Victim
Cache::invalidate(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Victim out;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (line.valid && line.tag == tag) {
            out.valid = true;
            out.addr = lineAlign(addr);
            out.meta = line.meta;
            line.valid = false;
            ++stats_.invalidations;
            return out;
        }
    }
    return out;
}

Cache::Victim
Cache::warmInvalidate(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Victim out;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (line.valid && line.tag == tag) {
            out.valid = true;
            out.addr = lineAlign(addr);
            out.meta = line.meta;
            line.valid = false;
            return out;
        }
    }
    return out;
}

std::size_t
Cache::validLines() const
{
    std::size_t n = 0;
    for (const auto &line : lines_)
        n += line.valid ? 1 : 0;
    return n;
}

void
Cache::forEachValidLine(
    const std::function<void(Addr, const CacheLineMeta &)> &fn) const
{
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned w = 0; w < ways_; ++w) {
            const Line &line = lines_[set * ways_ + w];
            if (line.valid)
                fn((line.tag * sets_ + set) << kLineShift, line.meta);
        }
    }
}

void
Cache::checkConsistent(
    const std::function<void(const std::string &)> &fail) const
{
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned w = 0; w < ways_; ++w) {
            const Line &a = lines_[set * ways_ + w];
            if (!a.valid)
                continue;
            for (unsigned v = w + 1; v < ways_; ++v) {
                const Line &b = lines_[set * ways_ + v];
                if (b.valid && b.tag == a.tag) {
                    fail(std::string(name_) + ": set "
                         + std::to_string(set) + " holds tag "
                         + std::to_string(a.tag)
                         + " in two valid ways");
                }
            }
        }
    }
}

} // namespace emc
