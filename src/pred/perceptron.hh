/**
 * @file
 * Hermes-style multi-feature hashed perceptron off-chip predictor
 * (Bera et al., MICRO 2022, arXiv 2209.00188; hashing idiom after
 * Virtuoso's hashed_perceptron_branch_predictor).
 *
 * Each feature hashes into its own table of saturating integer
 * weights; the prediction is the sign of the weight sum against an
 * activation threshold, and training nudges every selected weight
 * toward the observed outcome when the prediction was wrong or the
 * sum fell inside the low-confidence band.
 */

#ifndef EMC_PRED_PERCEPTRON_HH
#define EMC_PRED_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "pred/predictor.hh"

namespace emc::pred
{

/** Multi-feature hashed perceptron (per-feature weight tables). */
class PerceptronPredictor final : public OffchipPredictor
{
  public:
    PerceptronPredictor(const PredConfig &cfg, unsigned num_cores);

    const char *name() const override { return "perceptron"; }

    void ser(ckpt::Ar &ar) override;

    /** Weight sum for a derived bundle (test/debug hook). */
    int weightSum(const PredFeatures &f) const;

  protected:
    bool predictRaw(const PredFeatures &f) const override;
    void update(const PredFeatures &f, bool was_offchip) override;

  private:
    /** The hashed features, one weight table each. */
    enum Feature : unsigned
    {
        kFeatPc = 0,       ///< load PC
        kFeatPcPage,       ///< PC x physical page of the line
        kFeatPcOffset,     ///< PC x cacheline offset within the page
        kFeatHist,         ///< hash of the last-N trained PCs
        kFeatFirst,        ///< PC x first-access bit (x byte offset)
        kNumFeatures
    };

    std::uint64_t featureVal(unsigned feat,
                             const PredFeatures &f) const;
    unsigned row(unsigned feat, const PredFeatures &f) const;

    std::vector<std::vector<std::int16_t>> weights_;  ///< per feature
};

} // namespace emc::pred

#endif // EMC_PRED_PERCEPTRON_HH
