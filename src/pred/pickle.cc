#include "pred/pickle.hh"

namespace emc::pred
{

PicklePrefetcher::PicklePrefetcher(unsigned num_cores,
                                   const PredConfig &cfg,
                                   std::size_t table_entries)
    : pred_(makePredictor(cfg, num_cores)),
      table_(table_entries)
{}

std::size_t
PicklePrefetcher::slot(Addr line) const
{
    return static_cast<std::size_t>(
               (lineNum(line) * 0x9e3779b97f4a7c15ULL) >> 24)
           % table_.size();
}

void
PicklePrefetcher::observe(CoreId core, Addr line_addr, Addr pc,
                          bool miss, unsigned degree)
{
    // Train on every LLC outcome, then ask whether this access is
    // part of the off-chip stream worth correlating/prefetching.
    PredFeatures ft;
    ft.core = core;
    ft.pc = pc;
    ft.line = line_addr;
    pred_->train(ft, miss);

    PredFeatures fp;
    fp.core = core;
    fp.pc = pc;
    fp.line = line_addr;
    if (!pred_->predict(fp))
        return;

    // Record the predicted-miss successor chain (line A was followed
    // by line B, touched by core C — possibly a different core).
    if (have_last_ && last_line_ != line_addr)
        table_[slot(last_line_)] = {line_addr, core, true};
    have_last_ = true;
    last_line_ = line_addr;

    // Push the recorded successors of this line, bounded by the FDP
    // degree; each lands in the LLC on behalf of its recorded core.
    Addr cur = line_addr;
    for (unsigned i = 0; i < degree; ++i) {
        const Succ &s = table_[slot(cur)];
        if (!s.valid || s.line == cur)
            break;
        emit(s.core, s.line);
        cur = s.line;
    }
}

void
PicklePrefetcher::ckptSer(ckpt::Ar &ar)
{
    serQueue(ar);
    pred_->ser(ar);
    ar.io(table_);
    ar.io(last_line_);
    ar.io(have_last_);
}

} // namespace emc::pred
