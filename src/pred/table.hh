/**
 * @file
 * The paper's LLC hit/miss predictor (Section 4.3, after [47]):
 * per-core PC-hashed tables of 3-bit saturating counters,
 * incremented on an LLC miss and decremented on a hit; a load whose
 * counter exceeds the threshold is predicted off-chip. This is the
 * exact logic previously embedded in Emc, lifted behind the
 * OffchipPredictor interface bit-identically (same hash, same
 * saturation, same threshold compare).
 */

#ifndef EMC_PRED_TABLE_HH
#define EMC_PRED_TABLE_HH

#include <cstdint>
#include <vector>

#include "pred/predictor.hh"

namespace emc::pred
{

/** PC-hashed 3-bit saturating-counter hit/miss table. */
class TablePredictor final : public OffchipPredictor
{
  public:
    TablePredictor(const PredConfig &cfg, unsigned num_cores);

    const char *name() const override { return "table"; }

    void ser(ckpt::Ar &ar) override;

    /** Current counter for @p pc on @p core (test/debug hook). */
    std::uint8_t counter(CoreId core, Addr pc) const;

  protected:
    bool predictRaw(const PredFeatures &f) const override;
    void update(const PredFeatures &f, bool was_offchip) override;

  private:
    unsigned index(Addr pc) const;

    std::vector<std::vector<std::uint8_t>> table_;  ///< per core
};

} // namespace emc::pred

#endif // EMC_PRED_TABLE_HH
