#include "pred/perceptron.hh"

#include <cstdlib>

namespace emc::pred
{

namespace
{

constexpr std::uint64_t kHashMul = 0x9e3779b97f4a7c15ULL;

} // namespace

PerceptronPredictor::PerceptronPredictor(const PredConfig &cfg,
                                         unsigned num_cores)
    : OffchipPredictor(cfg, num_cores),
      weights_(kNumFeatures,
               std::vector<std::int16_t>(cfg.perc_entries, 0))
{}

std::uint64_t
PerceptronPredictor::featureVal(unsigned feat,
                                const PredFeatures &f) const
{
    const std::uint64_t page = pageNum(f.line);
    const std::uint64_t line_off = (f.line >> kLineShift)
                                   & ((kPageBytes >> kLineShift) - 1);
    const std::uint64_t byte_off =
        f.vaddr != kNoAddr ? (f.vaddr & (kLineBytes - 1)) : 0;
    switch (feat) {
      case kFeatPc:
        return f.pc;
      case kFeatPcPage:
        return f.pc ^ (page * kHashMul);
      case kFeatPcOffset:
        return (f.pc << 6) ^ line_off;
      case kFeatHist:
        return f.hist_hash;
      case kFeatFirst:
        return (f.pc << 7) ^ (byte_off << 1)
               ^ (f.first_access ? 1 : 0);
    }
    return 0;
}

unsigned
PerceptronPredictor::row(unsigned feat, const PredFeatures &f) const
{
    const std::uint64_t h =
        (featureVal(feat, f) + feat * 0x100000001b3ULL + f.core)
        * kHashMul;
    return static_cast<unsigned>(h >> 32) % cfg_.perc_entries;
}

int
PerceptronPredictor::weightSum(const PredFeatures &f) const
{
    int sum = 0;
    for (unsigned feat = 0; feat < kNumFeatures; ++feat)
        sum += weights_[feat][row(feat, f)];
    return sum;
}

bool
PerceptronPredictor::predictRaw(const PredFeatures &f) const
{
    return weightSum(f) >= cfg_.perc_activation;
}

void
PerceptronPredictor::update(const PredFeatures &f, bool was_offchip)
{
    const int sum = weightSum(f);
    const bool guessed = sum >= cfg_.perc_activation;
    // Perceptron training rule: adjust on a mispredict, or when the
    // sum sits inside the low-confidence band around the activation
    // threshold.
    if (guessed == was_offchip
        && std::abs(sum - cfg_.perc_activation)
               > cfg_.perc_training_threshold) {
        return;
    }
    const int delta = was_offchip ? 1 : -1;
    for (unsigned feat = 0; feat < kNumFeatures; ++feat) {
        std::int16_t &w = weights_[feat][row(feat, f)];
        const int next = w + delta;
        if (next < cfg_.perc_weight_min || next > cfg_.perc_weight_max)
            continue;
        w = static_cast<std::int16_t>(next);
    }
}

void
PerceptronPredictor::ser(ckpt::Ar &ar)
{
    OffchipPredictor::ser(ar);
    ar.io(weights_);
}

} // namespace emc::pred
