/**
 * @file
 * Pluggable off-chip (LLC hit/miss) prediction subsystem
 * (DESIGN.md §13).
 *
 * The paper's EMC gates its LLC-bypass path on a PC-hashed 3-bit
 * table (Section 4.3). This interface lifts that decision behind a
 * common OffchipPredictor so alternative engines — notably a
 * Hermes-style multi-feature hashed perceptron (Bera et al., MICRO
 * 2022) — plug into the same attach points: the EMC's bypass choice,
 * a core-side speculative DRAM probe at load dispatch, and the
 * Pickle-style cross-core prefetcher.
 *
 * Contract:
 *  - predict() is state-pure apart from the prediction counters: it
 *    never touches tables, history or the first-access filter, so a
 *    caller that hits backpressure may simply re-predict next cycle.
 *  - train() classifies the outcome against the predictor's *current*
 *    opinion (true/false positive/negative counters), then applies
 *    the engine update and the shared feature bookkeeping.
 *  - warmTrain() applies exactly the same table/history/filter
 *    mutations as train() but touches no statistics, so the
 *    functional-warming path (DESIGN.md §8) produces byte-identical
 *    predictor state without violating the warming contract.
 *  - An attach point must present the same feature availability at
 *    predict and train time (e.g. the core records the vaddr of an
 *    in-flight line and replays it when the fill trains; the EMC
 *    supplies no vaddr at either site). Mixing availability would
 *    train different weight rows than the ones predictions read.
 */

#ifndef EMC_PRED_PREDICTOR_HH
#define EMC_PRED_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/serial.hh"
#include "common/types.hh"

namespace emc::pred
{

/**
 * The feature bundle a prediction or training event is made from.
 * Callers fill core/pc/line (and vaddr when the attach point has it
 * at both predict and train time); the predictor base derives
 * hist_hash and first_access from its own per-core tracking.
 */
struct PredFeatures
{
    CoreId core = 0;         ///< index into per-core tracking state
    Addr pc = 0;             ///< static PC of the load
    Addr line = 0;           ///< physical line address
    Addr vaddr = kNoAddr;    ///< virtual address (kNoAddr if unknown)
    std::uint64_t hist_hash = 0;  ///< derived: last-N trained-PC hash
    bool first_access = false;    ///< derived: first touch of the page
};

/** Accuracy/coverage counters every predictor maintains. */
struct PredStats
{
    std::uint64_t predictions = 0;       ///< predict() calls
    std::uint64_t predicted_offchip = 0; ///< predictions that said miss
    std::uint64_t trainings = 0;         ///< train() calls
    std::uint64_t true_pos = 0;   ///< said off-chip, was off-chip
    std::uint64_t false_pos = 0;  ///< said off-chip, was a hit
    std::uint64_t true_neg = 0;   ///< said hit, was a hit
    std::uint64_t false_neg = 0;  ///< said hit, was off-chip

    /** Fraction of training outcomes the predictor called right. */
    double
    accuracy() const
    {
        const double n = static_cast<double>(trainings);
        return n > 0 ? (true_pos + true_neg) / n : 0.0;
    }

    /** Fraction of actual off-chip misses it predicted off-chip. */
    double
    coverage() const
    {
        const double misses =
            static_cast<double>(true_pos + false_neg);
        return misses > 0 ? true_pos / misses : 0.0;
    }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(predictions);
        ar.io(predicted_offchip);
        ar.io(trainings);
        ar.io(true_pos);
        ar.io(false_pos);
        ar.io(true_neg);
        ar.io(false_neg);
    }
};

/** Available prediction engines. */
enum class PredKind : std::uint8_t
{
    kTable,       ///< the paper's PC-hashed 3-bit table (Section 4.3)
    kPerceptron,  ///< Hermes-style multi-feature hashed perceptron
};

const char *predKindName(PredKind k);

/** Configuration for any engine (unused knobs are ignored). */
struct PredConfig
{
    PredKind kind = PredKind::kTable;

    // Table engine (defaults mirror EmcConfig's predictor knobs).
    unsigned table_entries = 1024;
    unsigned table_threshold = 3;  ///< counter > t => predict off-chip

    // Perceptron engine.
    unsigned perc_entries = 2048;   ///< rows per feature table
    int perc_weight_min = -32;      ///< saturating weight floor
    int perc_weight_max = 31;       ///< saturating weight ceiling
    int perc_activation = 2;        ///< sum >= tau_act => off-chip
    int perc_training_threshold = 16;  ///< train when |sum-tau| <= theta

    // Shared feature derivation.
    unsigned history_len = 4;  ///< last-N trained PCs in hist_hash

    /** Convenience: a config selecting the perceptron engine. */
    static PredConfig
    perceptron()
    {
        PredConfig c;
        c.kind = PredKind::kPerceptron;
        return c;
    }
};

/** Base class: shared feature derivation, stats and training flow. */
class OffchipPredictor
{
  public:
    OffchipPredictor(const PredConfig &cfg, unsigned num_cores);
    virtual ~OffchipPredictor() = default;

    /**
     * Predict whether the load described by @p f goes off-chip.
     * Fills the derived fields of @p f; mutates nothing but the
     * prediction counters (safe to call again on a retry).
     */
    bool predict(PredFeatures &f);

    /** Train on the actual LLC outcome (@p was_offchip = LLC miss). */
    void train(PredFeatures &f, bool was_offchip);

    /** Stat-free train() for the functional-warming path. */
    void warmTrain(PredFeatures &f, bool was_offchip);

    const PredStats &stats() const { return stats_; }
    void resetStats() { stats_ = PredStats{}; }

    virtual const char *name() const = 0;
    PredKind kind() const { return cfg_.kind; }
    const PredConfig &config() const { return cfg_; }

    /** Checkpoint the shared tracking state plus the engine tables. */
    virtual void ser(ckpt::Ar &ar);

  protected:
    /** Engine decision on a fully derived feature bundle. */
    virtual bool predictRaw(const PredFeatures &f) const = 0;

    /** Engine table update on a fully derived feature bundle. */
    virtual void update(const PredFeatures &f, bool was_offchip) = 0;

    const PredConfig cfg_;
    const unsigned num_cores_;

  private:
    void fillDerived(PredFeatures &f) const;
    void applyTrain(PredFeatures &f, bool was_offchip);
    std::uint64_t histHash(CoreId core) const;
    unsigned pageIndex(Addr line) const;

    /// Per-core ring of the last history_len trained PCs.
    std::vector<std::vector<std::uint64_t>> history_;
    std::vector<std::uint32_t> hist_pos_;
    /// Per-core hashed page filter backing the first-access bit.
    std::vector<std::vector<std::uint8_t>> page_seen_;

    PredStats stats_;
};

/** Build the engine selected by @p cfg. */
std::unique_ptr<OffchipPredictor> makePredictor(const PredConfig &cfg,
                                                unsigned num_cores);

} // namespace emc::pred

#endif // EMC_PRED_PREDICTOR_HH
