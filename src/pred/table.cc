#include "pred/table.hh"

namespace emc::pred
{

TablePredictor::TablePredictor(const PredConfig &cfg,
                               unsigned num_cores)
    : OffchipPredictor(cfg, num_cores),
      table_(num_cores,
             std::vector<std::uint8_t>(cfg.table_entries, 0))
{}

unsigned
TablePredictor::index(Addr pc) const
{
    return static_cast<unsigned>((pc * 0x9e3779b97f4a7c15ULL) >> 40)
           % cfg_.table_entries;
}

std::uint8_t
TablePredictor::counter(CoreId core, Addr pc) const
{
    return table_[core][index(pc)];
}

bool
TablePredictor::predictRaw(const PredFeatures &f) const
{
    return table_[f.core][index(f.pc)] > cfg_.table_threshold;
}

void
TablePredictor::update(const PredFeatures &f, bool was_offchip)
{
    std::uint8_t &ctr = table_[f.core][index(f.pc)];
    if (was_offchip) {
        if (ctr < 7)
            ++ctr;
    } else if (ctr > 0) {
        --ctr;
    }
}

void
TablePredictor::ser(ckpt::Ar &ar)
{
    OffchipPredictor::ser(ar);
    ar.io(table_);
}

} // namespace emc::pred
