/**
 * @file
 * Pickle-style cross-core LLC prefetcher (Nguyen et al., arXiv
 * 2511.19973): an off-chip predictor watches the LLC access stream,
 * and the addresses it flags as off-chip form a correlated stream —
 * consecutive predicted-miss lines are recorded in a successor table
 * together with the core that touched them, so a later predicted
 * miss on the first line pushes the successors into the LLC on
 * behalf of whichever core historically needed them (a cross-core
 * push when the recorded core differs from the trigger).
 */

#ifndef EMC_PRED_PICKLE_HH
#define EMC_PRED_PICKLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "pred/predictor.hh"
#include "prefetch/prefetcher.hh"

namespace emc::pred
{

/** Predicted-miss-driven cross-core LLC prefetcher. */
class PicklePrefetcher final : public Prefetcher
{
  public:
    /**
     * @param num_cores cores sharing the LLC
     * @param cfg engine for the internal off-chip predictor
     *        (defaults to the Hermes-style perceptron)
     * @param table_entries successor-table capacity
     */
    explicit PicklePrefetcher(
        unsigned num_cores,
        const PredConfig &cfg = PredConfig::perceptron(),
        std::size_t table_entries = 4096);

    void observe(CoreId core, Addr line_addr, Addr pc, bool miss,
                 unsigned degree) override;

    const char *name() const override { return "pickle"; }

    void ckptSer(ckpt::Ar &ar) override;

    /** The internal predictor (accuracy/coverage counters). */
    const OffchipPredictor &predictor() const { return *pred_; }

  private:
    /** Successor-table entry: the line+core that followed a key. */
    struct Succ
    {
        std::uint64_t line = 0;
        CoreId core = 0;
        bool valid = false;

        template <class A>
        void
        ser(A &ar)
        {
            ar.io(line);
            ar.io(core);
            ar.io(valid);
        }
    };

    std::size_t slot(Addr line) const;

    std::unique_ptr<OffchipPredictor> pred_;
    std::vector<Succ> table_;
    std::uint64_t last_line_ = 0;
    bool have_last_ = false;
};

} // namespace emc::pred

#endif // EMC_PRED_PICKLE_HH
