#include "pred/predictor.hh"

#include "common/log.hh"
#include "pred/perceptron.hh"
#include "pred/table.hh"

namespace emc::pred
{

namespace
{

/// Fibonacci-hash multiplier shared by every engine (same constant
/// the original EMC table used, so the table lift stays bit-exact).
constexpr std::uint64_t kHashMul = 0x9e3779b97f4a7c15ULL;

/// Hashed-page filter size for the first-access bit (per core).
constexpr unsigned kPageFilterEntries = 4096;

} // namespace

const char *
predKindName(PredKind k)
{
    switch (k) {
      case PredKind::kTable: return "table";
      case PredKind::kPerceptron: return "perceptron";
    }
    return "?";
}

OffchipPredictor::OffchipPredictor(const PredConfig &cfg,
                                   unsigned num_cores)
    : cfg_(cfg), num_cores_(num_cores),
      history_(num_cores, std::vector<std::uint64_t>(
                              cfg.history_len > 0 ? cfg.history_len : 1,
                              0)),
      hist_pos_(num_cores, 0),
      page_seen_(num_cores,
                 std::vector<std::uint8_t>(kPageFilterEntries, 0))
{
    emc_assert(num_cores > 0, "predictor needs at least one core");
}

unsigned
OffchipPredictor::pageIndex(Addr line) const
{
    return static_cast<unsigned>((pageNum(line) * kHashMul) >> 40)
           % kPageFilterEntries;
}

std::uint64_t
OffchipPredictor::histHash(CoreId core) const
{
    // Fold the ring oldest-first so the hash is position-sensitive
    // and independent of where the write cursor currently points.
    const std::vector<std::uint64_t> &ring = history_[core];
    const std::uint32_t pos = hist_pos_[core];
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < ring.size(); ++i) {
        const std::uint64_t pc = ring[(pos + i) % ring.size()];
        h = (h ^ pc) * kHashMul;
    }
    return h;
}

void
OffchipPredictor::fillDerived(PredFeatures &f) const
{
    emc_assert(f.core < num_cores_,
               "predictor feature bundle: core id out of range");
    f.hist_hash = histHash(f.core);
    f.first_access = page_seen_[f.core][pageIndex(f.line)] == 0;
}

bool
OffchipPredictor::predict(PredFeatures &f)
{
    fillDerived(f);
    const bool offchip = predictRaw(f);
    ++stats_.predictions;
    if (offchip)
        ++stats_.predicted_offchip;
    return offchip;
}

void
OffchipPredictor::train(PredFeatures &f, bool was_offchip)
{
    // Classify against the predictor's current opinion before the
    // update below shifts it.
    fillDerived(f);
    const bool guessed = predictRaw(f);
    ++stats_.trainings;
    if (guessed && was_offchip)
        ++stats_.true_pos;
    else if (guessed)
        ++stats_.false_pos;
    else if (was_offchip)
        ++stats_.false_neg;
    else
        ++stats_.true_neg;
    applyTrain(f, was_offchip);
}

void
OffchipPredictor::warmTrain(PredFeatures &f, bool was_offchip)
{
    applyTrain(f, was_offchip);
}

void
OffchipPredictor::applyTrain(PredFeatures &f, bool was_offchip)
{
    fillDerived(f);
    update(f, was_offchip);
    std::vector<std::uint64_t> &ring = history_[f.core];
    ring[hist_pos_[f.core]] = f.pc;
    hist_pos_[f.core] =
        static_cast<std::uint32_t>((hist_pos_[f.core] + 1) % ring.size());
    page_seen_[f.core][pageIndex(f.line)] = 1;
}

void
OffchipPredictor::ser(ckpt::Ar &ar)
{
    ar.io(history_);
    ar.io(hist_pos_);
    ar.io(page_seen_);
    ar.io(stats_);
}

std::unique_ptr<OffchipPredictor>
makePredictor(const PredConfig &cfg, unsigned num_cores)
{
    switch (cfg.kind) {
      case PredKind::kTable:
        return std::make_unique<TablePredictor>(cfg, num_cores);
      case PredKind::kPerceptron:
        return std::make_unique<PerceptronPredictor>(cfg, num_cores);
    }
    emc_fatal("unknown predictor kind");
    return nullptr;
}

} // namespace emc::pred
