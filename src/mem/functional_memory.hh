/**
 * @file
 * Sparse functional memory backing the simulated address spaces.
 *
 * The timing model never reads data out of the DRAM model — values
 * come from here, keyed by virtual address, one address space per
 * core (multi-programmed SPEC-style mixes have disjoint spaces).
 */

#ifndef EMC_MEM_FUNCTIONAL_MEMORY_HH
#define EMC_MEM_FUNCTIONAL_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/log.hh"
#include "common/types.hh"

namespace emc
{

/**
 * Word-granular sparse memory. Addresses are 8-byte aligned internally
 * (the generated programs only do aligned 64-bit accesses).
 */
class FunctionalMemory
{
  public:
    /** Read the 64-bit word at @p addr (zero if never written). */
    std::uint64_t
    read(Addr addr) const
    {
        auto it = words_.find(wordIndex(addr));
        return it == words_.end() ? 0 : it->second;
    }

    /** Write the 64-bit word at @p addr. */
    void
    write(Addr addr, std::uint64_t value)
    {
        words_[wordIndex(addr)] = value;
    }

    /** Number of distinct words ever written. */
    std::size_t footprintWords() const { return words_.size(); }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(words_);
    }

  private:
    static Addr
    wordIndex(Addr addr)
    {
        return addr >> 3;
    }

    std::unordered_map<Addr, std::uint64_t> words_;
};

} // namespace emc

#endif // EMC_MEM_FUNCTIONAL_MEMORY_HH
