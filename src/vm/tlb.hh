/**
 * @file
 * Core TLB (fixed-latency page walk on miss) and the EMC's small
 * per-core circular-buffer TLB described in Section 4.1.4.
 */

#ifndef EMC_VM_TLB_HH
#define EMC_VM_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "vm/page_table.hh"

namespace emc
{

/**
 * A simple fully-associative LRU TLB used at the cores. Misses pay a
 * fixed page-walk latency (the walk's memory traffic is not modeled;
 * it is off the critical path for the phenomena studied here).
 */
class Tlb
{
  public:
    explicit Tlb(std::size_t entries = 64, Cycle walk_latency = 30)
        : entries_(entries), walk_latency_(walk_latency)
    {}

    /**
     * Translate through the TLB.
     * @param pt the backing page table
     * @param vaddr the virtual address
     * @param extra_latency out: 0 on hit, walk latency on miss
     * @return the physical address
     */
    Addr
    translate(PageTable &pt, Addr vaddr, Cycle &extra_latency)
    {
        const Addr vp = pageNum(vaddr);
        auto it = map_.find(vp);
        if (it != map_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);
            extra_latency = 0;
        } else {
            ++misses_;
            extra_latency = walk_latency_;
            insert(vp);
        }
        return pt.translate(vaddr);
    }

    /**
     * Functional-warming translate (DESIGN.md §8): identical LRU and
     * residency behaviour to translate(), but no hit/miss counters and
     * no walk latency — fastwarm runs outside simulated time.
     */
    Addr
    warmTranslate(PageTable &pt, Addr vaddr)
    {
        const Addr vp = pageNum(vaddr);
        auto it = map_.find(vp);
        if (it != map_.end())
            lru_.splice(lru_.begin(), lru_, it->second);
        else
            insert(vp);
        return pt.translate(vaddr);
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /**
     * The resident virtual pages, MRU first (fastwarm validation
     * compares the resident sets of a fast-warmed and a detailed-warmed
     * TLB).
     */
    const std::list<Addr> &residentPages() const { return lru_; }

    /**
     * Checkpoint the LRU stack and counters; the address -> node map
     * is an iterator cache rebuilt from the list on load.
     */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(lru_);
        ar.io(hits_);
        ar.io(misses_);
        if (ar.loading()) {
            map_.clear();
            for (auto it = lru_.begin(); it != lru_.end(); ++it)
                map_[*it] = it;
        }
    }

  private:
    void
    insert(Addr vp)
    {
        if (lru_.size() >= entries_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
        lru_.push_front(vp);
        map_[vp] = lru_.begin();
    }

    std::size_t entries_;  // ckpt-skip: (capacity is config)
    Cycle walk_latency_;   // ckpt-skip: (latency is config)
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * EMC TLB: one 32-entry circular buffer per core caching the PTEs of
 * the last pages the EMC accessed on that core's behalf (Section
 * 4.1.4). The EMC never walks page tables: a miss halts the chain and
 * the core re-executes it. The core tracks which of its PTEs are
 * resident here (the "EMC-resident" bit) so it can attach the source
 * miss PTE to an outgoing chain when needed, and so TLB shootdowns can
 * invalidate EMC entries.
 */
class EmcTlb
{
  public:
    explicit EmcTlb(std::size_t entries = 32)
        : entries_(entries), buffer_(entries)
    {}

    /** Look up the frame for @p vpage. @retval false on EMC-TLB miss. */
    bool
    lookup(Addr vpage, Addr &pframe)
    {
        for (const auto &pte : buffer_) {
            if (pte.valid && pte.vpage == vpage) {
                pframe = pte.pframe;
                ++hits_;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    /** True if the PTE for @p vpage is resident (no stats side effect). */
    bool
    resident(Addr vpage) const
    {
        for (const auto &pte : buffer_) {
            if (pte.valid && pte.vpage == vpage)
                return true;
        }
        return false;
    }

    /** Insert a PTE shipped from the core (circular replacement). */
    void
    insert(const Pte &pte)
    {
        buffer_[head_] = pte;
        head_ = (head_ + 1) % entries_;
    }

    /** Shootdown: invalidate the mapping for @p vpage if present. */
    void
    shootdown(Addr vpage)
    {
        for (auto &pte : buffer_) {
            if (pte.valid && pte.vpage == vpage)
                pte.valid = false;
        }
    }

    void
    flush()
    {
        for (auto &pte : buffer_)
            pte.valid = false;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(buffer_);
        ar.io(head_);
        ar.io(hits_);
        ar.io(misses_);
    }

  private:
    std::size_t entries_;  // ckpt-skip: (capacity is config)
    std::vector<Pte> buffer_;
    std::size_t head_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace emc

#endif // EMC_VM_TLB_HH
