/**
 * @file
 * Per-core page table with allocate-on-first-touch and a page-frame
 * allocator that scatters frames so physical addresses spread across
 * DRAM channels/banks the way a real OS allocation would.
 */

#ifndef EMC_VM_PAGE_TABLE_HH
#define EMC_VM_PAGE_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace emc
{

/** A page table entry as shipped to TLBs (and to the EMC TLB). */
struct Pte
{
    Addr vpage = kNoAddr;
    Addr pframe = kNoAddr;
    bool valid = false;

    template <class A>
    void
    ser(A &ar)
    {
        ar.io(vpage);
        ar.io(pframe);
        ar.io(valid);
    }
};

/**
 * Single-level logical page table (the walk latency is modeled by the
 * TLB, not by the table itself).
 */
class PageTable
{
  public:
    /**
     * @param core the owning core (frames are tagged with it so
     *             distinct programs never collide in physical space)
     * @param seed RNG seed for frame scattering
     */
    PageTable(CoreId core, std::uint64_t seed)
        : core_(core), rng_(seed ^ (0xabcdULL + core))
    {}

    /** Translate @p vaddr, allocating a frame on first touch. */
    Addr
    translate(Addr vaddr)
    {
        const Addr vp = pageNum(vaddr);
        const Pte &pte = lookup(vp);
        return (pte.pframe << kPageShift) | (vaddr & (kPageBytes - 1));
    }

    /** Find (or create) the PTE covering @p vpage. */
    const Pte &
    lookup(Addr vpage)
    {
        auto it = table_.find(vpage);
        if (it == table_.end()) {
            Pte pte;
            pte.vpage = vpage;
            pte.pframe = allocFrame();
            pte.valid = true;
            it = table_.emplace(vpage, pte).first;
        }
        return it->second;
    }

    std::size_t mappedPages() const { return table_.size(); }

    /**
     * Enumerate every mapping as (vpage, pframe). Allocation order is
     * first-touch order, which differs between program-order (fastwarm)
     * and execute-order (detailed) runs — so fastwarm validation uses
     * this to compare cache contents in *virtual* space, where the two
     * agree (DESIGN.md §8).
     */
    void
    forEachMapping(const std::function<void(Addr, Addr)> &fn) const
    {
        for (const auto &kv : sortedMappings())
            fn(kv.first, kv.second);
    }

    /** All (vpage, pframe) pairs in ascending vpage order. */
    std::vector<std::pair<Addr, Addr>>
    sortedMappings() const
    {
        std::vector<std::pair<Addr, Addr>> out;
        out.reserve(table_.size());
        // lint-ok: unordered-iter (results are sorted before use)
        for (const auto &[vp, pte] : table_)
            out.emplace_back(vp, pte.pframe);
        std::sort(out.begin(), out.end());
        return out;
    }

    /** Checkpoint mappings and the frame allocator state. */
    template <class A>
    void
    ser(A &ar)
    {
        ar.io(rng_);
        ar.io(next_seq_);
        ar.io(table_);
    }

  private:
    /**
     * Allocate the next physical frame. Frames interleave a sequential
     * component (locality) with random bits (bank/row scatter), and
     * embed the core id high in the address so address spaces are
     * disjoint across cores.
     */
    Addr
    allocFrame()
    {
        const Addr seq = next_seq_++;
        const Addr scatter = rng_.below(8);
        // Keep core spaces in disjoint 1 TB regions.
        return (static_cast<Addr>(core_) << 28) | (seq * 8 + scatter);
    }

    CoreId core_;  // ckpt-skip: (identity is config)
    Rng rng_;
    Addr next_seq_ = 1;
    std::unordered_map<Addr, Pte> table_;
};

} // namespace emc

#endif // EMC_VM_PAGE_TABLE_HH
