/**
 * @file
 * Example: using the library as a design-space exploration tool.
 * Sweeps the EMC context count and the chain-length cap on a
 * dependent-miss-heavy homogeneous workload (4x mcf) and prints the
 * resulting performance / coverage / occupancy trade-off — the kind
 * of sensitivity analysis the paper says drove its Table 1 choices.
 */

#include <cstdio>

#include "sim/system.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;

    const std::vector<std::string> mix = {"mcf", "mcf", "mcf", "mcf"};

    SystemConfig base;
    base.target_uops = targetUopsFromEnv(20000);
    base.warmup_uops = base.target_uops / 2;

    System bsys(base, mix);
    bsys.run();
    const StatDump db = bsys.dump();
    const double base_ipc = db.get("system.ipc_sum");

    std::printf("EMC design space on 4 x mcf "
                "(baseline sum-IPC %.4f)\n\n",
                base_ipc);
    std::printf("%-10s %-10s %9s %10s %10s %10s\n", "contexts",
                "chain-cap", "speedup", "emc-frac", "chains",
                "exec-cyc");

    for (unsigned contexts : {1u, 2u, 4u}) {
        for (unsigned cap : {8u, 12u, 16u}) {
            SystemConfig cfg = base;
            cfg.emc_enabled = true;
            cfg.emc.contexts = contexts;
            cfg.core.chain_max_uops = cap;
            System sys(cfg, mix);
            sys.run();
            const StatDump d = sys.dump();
            std::printf("%-10u %-10u %+8.2f%% %9.1f%% %10.0f %10.0f\n",
                        contexts, cap,
                        100 * (d.get("system.ipc_sum") / base_ipc - 1),
                        100 * d.get("emc.miss_fraction"),
                        d.get("emc.chains_accepted"),
                        d.get("emc.chain_exec_cycles"));
        }
    }

    std::printf("\nreading guide: more contexts raise chain throughput"
                " (coverage); longer\nchains cover more hops per"
                " offload but occupy a context longer — the\nsweet"
                " spot depends on the workload's miss rate and DRAM"
                " contention.\n");
    return 0;
}
