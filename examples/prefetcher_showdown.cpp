/**
 * @file
 * Example: prefetchers versus the EMC on a heterogeneous mix. Shows
 * the paper's central comparison — prefetchers help streaming
 * benchmarks but barely touch dependent misses (and burn bandwidth),
 * while the EMC accelerates exactly the misses prefetchers cannot
 * predict. The two compose.
 */

#include <cmath>
#include <cstdio>

#include "sim/system.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;

    const std::vector<std::string> mix =
        quadWorkloads()[3];  // H4: mcf+sphinx3+soplex+libquantum

    SystemConfig base;
    base.target_uops = targetUopsFromEnv(25000);
    base.warmup_uops = base.target_uops / 2;

    std::printf("prefetcher showdown on H4 (mcf sphinx3 soplex "
                "libquantum)\n\n");
    std::printf("%-18s %8s %8s %9s %10s %9s\n", "config", "perf",
                "mcf-ipc", "traffic", "dep-cover", "energy");

    System b(base, mix);
    b.run();
    const StatDump db = b.dump();
    const double traffic0 = db.get("traffic.total");
    const double energy0 = db.get("energy.total_mj");

    struct Config
    {
        const char *name;
        PrefetchConfig pf;
        bool emc;
    };
    const Config configs[] = {
        {"no-pf", PrefetchConfig::kNone, false},
        {"ghb", PrefetchConfig::kGhb, false},
        {"stream", PrefetchConfig::kStream, false},
        {"markov+stream", PrefetchConfig::kMarkovStream, false},
        {"emc", PrefetchConfig::kNone, true},
        {"ghb+emc", PrefetchConfig::kGhb, true},
    };

    for (const Config &c : configs) {
        SystemConfig cfg = base;
        cfg.prefetch = c.pf;
        cfg.emc_enabled = c.emc;
        System s(cfg, mix);
        s.run();
        const StatDump d = s.dump();
        double perf = 1;
        {
            double log_sum = 0;
            for (int i = 0; i < 4; ++i) {
                const std::string k = "core" + std::to_string(i)
                                      + ".ipc";
                log_sum += std::log(d.get(k) / db.get(k));
            }
            perf = std::exp(log_sum / 4);
        }
        const double dep_total = d.get("llc.dep_misses")
                                 + d.get("llc.dep_misses_covered_by_pf");
        std::printf("%-18s %8.3f %8.4f %+8.1f%% %9.1f%% %+8.1f%%\n",
                    c.name, perf, d.get("core0.ipc"),
                    100 * (d.get("traffic.total") / traffic0 - 1),
                    dep_total > 0
                        ? 100 * d.get("llc.dep_misses_covered_by_pf")
                              / dep_total
                        : 0.0,
                    100 * (d.get("energy.total_mj") / energy0 - 1));
    }

    std::printf("\nreading guide: prefetchers raise traffic and cover"
                " few dependent misses;\nthe EMC serves dependent"
                " misses directly with little extra traffic, and\n"
                "composes with GHB prefetching.\n");
    return 0;
}
