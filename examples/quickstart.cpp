/**
 * @file
 * Quickstart: build a quad-core system running four copies of mcf (the
 * paper's most dependent-miss-heavy benchmark), once without and once
 * with the Enhanced Memory Controller, and print the headline numbers:
 * IPC, the fraction of LLC misses the EMC generates, and the latency
 * advantage of EMC-issued misses.
 */

#include <cstdio>

#include "sim/system.hh"

int
main()
{
    using namespace emc;

    const std::vector<std::string> workload = {"mcf", "mcf", "mcf",
                                               "mcf"};

    SystemConfig base;
    base.target_uops = targetUopsFromEnv(30000);
    base.warmup_uops = base.target_uops / 2;

    std::printf("quickstart: 4 x mcf, %llu uops/core\n",
                static_cast<unsigned long long>(base.target_uops));

    SystemConfig with_emc = base;
    with_emc.emc_enabled = true;

    System sys_base(base, workload);
    sys_base.run();
    const StatDump d0 = sys_base.dump();

    System sys_emc(with_emc, workload);
    sys_emc.run();
    const StatDump d1 = sys_emc.dump();

    const double ipc0 = d0.get("system.ipc_sum");
    const double ipc1 = d1.get("system.ipc_sum");
    std::printf("\n%-34s %12s %12s\n", "metric", "baseline", "with EMC");
    std::printf("%-34s %12.4f %12.4f\n", "sum of core IPCs", ipc0, ipc1);
    std::printf("%-34s %12.0f %12.0f\n", "LLC demand misses",
                d0.get("llc.demand_misses"), d1.get("llc.demand_misses"));
    std::printf("%-34s %12.3f %12.3f\n", "dependent-miss fraction",
                d0.get("llc.dep_miss_frac"), d1.get("llc.dep_miss_frac"));
    std::printf("%-34s %12s %12.0f\n", "chains executed at EMC", "-",
                d1.get("emc.chains_completed"));
    std::printf("%-34s %12s %12.3f\n", "EMC share of all misses", "-",
                d1.get("emc.miss_fraction"));
    std::printf("%-34s %12.1f %12.1f\n", "avg core miss latency (cyc)",
                d0.get("lat.core_total"), d1.get("lat.core_total"));
    std::printf("%-34s %12s %12.1f\n", "avg EMC miss latency (cyc)", "-",
                d1.get("lat.emc_total"));
    std::printf("\nspeedup with EMC: %.2f%%\n",
                ipc0 > 0 ? 100.0 * (ipc1 / ipc0 - 1.0) : 0.0);
    return 0;
}
