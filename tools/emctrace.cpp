/**
 * @file
 * emctrace — validate and summarize exported transaction traces
 * (DESIGN.md §6).
 *
 *   emctrace check     run.json          structural validation
 *   emctrace summarize run.json          phase-latency percentiles
 *   emctrace diff      a.json b.json     side-by-side phase deltas
 *
 * `summarize` rebuilds the simulator's phase histograms from the
 * trace (same bucketing, same sampling rules — see obs/phase.hh), so
 * its numbers agree exactly with the run's exported `phase.*` stats.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace_reader.hh"

namespace
{

using namespace emc;
using namespace emc::obs;

void
usage()
{
    std::printf(
        "emctrace — transaction-trace validation and summaries\n"
        "\n"
        "  emctrace check FILE        validate structure; nonzero exit\n"
        "                             on any finding\n"
        "  emctrace summarize FILE    per-class, per-phase latency\n"
        "                             samples/avg/p50/p95/p99\n"
        "  emctrace diff A B          phase-latency deltas B vs A\n");
}

void
printCounts(const TraceSummary &s)
{
    std::printf("events    %llu (%llu meta, %llu instants)\n",
                (unsigned long long)s.counts.events,
                (unsigned long long)s.counts.meta,
                (unsigned long long)s.counts.instants);
    std::printf("spans     %llu (%llu truncated at end of run)\n",
                (unsigned long long)s.counts.spans,
                (unsigned long long)s.counts.truncated);
    std::printf("cycles    %llu .. %llu\n",
                (unsigned long long)s.counts.first_cycle,
                (unsigned long long)s.counts.last_cycle);
    for (int p = 0; p < 10; ++p) {
        if (s.point_counts[p] == 0)
            continue;
        std::printf("  %-16s %llu\n",
                    tracePointName(static_cast<TracePoint>(p)),
                    (unsigned long long)s.point_counts[p]);
    }
}

int
cmdCheck(const std::string &path)
{
    const TraceSummary s = readTrace(path);
    printCounts(s);
    for (const auto &iss : s.issues)
        std::printf("issue @%zu: %s\n", iss.line, iss.message.c_str());
    if (s.issue_total > s.issues.size())
        std::printf("... and %llu more issues\n",
                    (unsigned long long)(s.issue_total - s.issues.size()));
    std::printf("%s: %s\n", path.c_str(), s.ok ? "OK" : "INVALID");
    return s.ok ? 0 : 1;
}

void
printPhases(const PhaseAccumulator &ph)
{
    std::printf("%-12s %-8s %10s %10s %10s %10s %10s\n", "class",
                "phase", "samples", "avg", "p50", "p95", "p99");
    for (int c = 0; c < 3; ++c) {
        const auto cls = static_cast<PhaseClass>(c);
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            const Histogram &h = ph.hist(cls, p);
            if (h.samples() == 0)
                continue;
            std::printf("%-12s %-8s %10llu %10.1f %10.1f %10.1f %10.1f\n",
                        phaseClassName(cls), phaseName(p),
                        (unsigned long long)h.samples(), h.mean(),
                        h.percentile(0.50), h.percentile(0.95),
                        h.percentile(0.99));
        }
    }
}

int
cmdSummarize(const std::string &path)
{
    const TraceSummary s = readTrace(path);
    if (!s.ok) {
        std::fprintf(stderr, "%s: trace invalid; run `emctrace check`\n",
                     path.c_str());
        return 1;
    }
    printCounts(s);
    std::printf("\n");
    printPhases(s.phases);
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    const TraceSummary a = readTrace(path_a);
    const TraceSummary b = readTrace(path_b);
    if (!a.ok || !b.ok) {
        std::fprintf(stderr, "invalid trace: %s\n",
                     (!a.ok ? path_a : path_b).c_str());
        return 1;
    }
    std::printf("%-12s %-8s %12s %12s %9s\n", "class", "phase",
                "avg(A)", "avg(B)", "delta");
    for (int c = 0; c < 3; ++c) {
        const auto cls = static_cast<PhaseClass>(c);
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            const Histogram &ha = a.phases.hist(cls, p);
            const Histogram &hb = b.phases.hist(cls, p);
            if (ha.samples() == 0 && hb.samples() == 0)
                continue;
            const double ma = ha.mean();
            const double mb = hb.mean();
            std::printf("%-12s %-8s %12.1f %12.1f ", phaseClassName(cls),
                        phaseName(p), ma, mb);
            if (ma > 0)
                std::printf("%+8.1f%%\n", 100.0 * (mb - ma) / ma);
            else
                std::printf("%9s\n", "n/a");
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    if (cmd == "check" && argc == 3)
        return cmdCheck(argv[2]);
    if (cmd == "summarize" && argc == 3)
        return cmdSummarize(argv[2]);
    if (cmd == "diff" && argc == 4)
        return cmdDiff(argv[2], argv[3]);
    usage();
    return 2;
}
