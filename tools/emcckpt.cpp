/**
 * @file
 * emcckpt — inspect checkpoint files without running the simulator.
 *
 *   emcckpt info FILE          header, level, hashes, section table
 *   emcckpt verify FILE        full parse incl. payload CRC; exit 0/1
 *   emcckpt diff FILE FILE     compare headers and per-section bytes
 *
 * Operates on the container bytes alone (src/ckpt has no System
 * dependency), so it works on images from any build of the simulator
 * with the same format version.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/ckpt.hh"

namespace
{

using namespace emc::ckpt;

void
usage()
{
    std::fprintf(stderr,
                 "usage: emcckpt info FILE\n"
                 "       emcckpt verify FILE\n"
                 "       emcckpt diff FILE FILE\n");
}

void
printHeader(const std::string &path, const Header &h,
            std::size_t file_bytes, std::size_t payload_bytes)
{
    std::printf("%s:\n", path.c_str());
    std::printf("  version:     %u\n", h.version);
    std::printf("  level:       %s\n", levelName(h.level));
    std::printf("  config hash: %016llx\n",
                static_cast<unsigned long long>(h.config_hash));
    std::printf("  payload crc: %016llx\n",
                static_cast<unsigned long long>(h.payload_crc));
    std::printf("  size:        %zu bytes (%zu payload)\n", file_bytes,
                payload_bytes);
    std::printf("  %-10s %12s %12s\n", "section", "offset", "bytes");
    for (const Section &s : h.sections) {
        std::printf("  %-10s %12llu %12llu\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.length));
    }
}

int
cmdInfo(const std::string &path)
{
    // Skip the CRC so info still prints the header of an image whose
    // payload is damaged; verify is the integrity check.
    const std::vector<std::uint8_t> file = readFile(path);
    std::size_t payload_at = 0;
    const Header h = parseHeader(file, &payload_at, true);
    printHeader(path, h, file.size(), file.size() - payload_at);
    return 0;
}

int
cmdVerify(const std::string &path)
{
    const std::vector<std::uint8_t> file = readFile(path);
    const Header h = parseHeader(file);
    std::size_t payload_at = 0;
    parseHeader(file, &payload_at, true);
    const std::size_t payload_bytes = file.size() - payload_at;
    // The TOC must tile the payload: contiguous, in order, no gaps.
    std::uint64_t expect = 0;
    for (const Section &s : h.sections) {
        if (s.offset != expect) {
            std::fprintf(stderr,
                         "%s: section %s at offset %llu, expected"
                         " %llu\n",
                         path.c_str(), s.name.c_str(),
                         static_cast<unsigned long long>(s.offset),
                         static_cast<unsigned long long>(expect));
            return 1;
        }
        expect = s.offset + s.length;
    }
    if (expect != payload_bytes) {
        std::fprintf(stderr,
                     "%s: sections cover %llu of %zu payload bytes\n",
                     path.c_str(),
                     static_cast<unsigned long long>(expect),
                     payload_bytes);
        return 1;
    }
    std::printf("%s: OK (version %u, %s level, %zu bytes, %zu"
                " sections)\n",
                path.c_str(), h.version, levelName(h.level),
                file.size(), h.sections.size());
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    const std::vector<std::uint8_t> fa = readFile(path_a);
    const std::vector<std::uint8_t> fb = readFile(path_b);
    std::size_t pa = 0, pb = 0;
    const Header ha = parseHeader(fa, &pa, true);
    const Header hb = parseHeader(fb, &pb, true);

    int diffs = 0;
    auto field = [&](const char *what, std::uint64_t a,
                     std::uint64_t b) {
        if (a == b)
            return;
        ++diffs;
        std::printf("%-12s %016llx vs %016llx\n", what,
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
    };
    field("version", ha.version, hb.version);
    field("level", static_cast<std::uint64_t>(ha.level),
          static_cast<std::uint64_t>(hb.level));
    field("config hash", ha.config_hash, hb.config_hash);
    field("payload crc", ha.payload_crc, hb.payload_crc);

    // Per-section byte comparison so a divergence names the subsystem
    // (and the first differing byte) instead of just "files differ".
    for (const Section &sa : ha.sections) {
        const Section *sb = nullptr;
        for (const Section &s : hb.sections) {
            if (s.name == sa.name)
                sb = &s;
        }
        if (!sb) {
            ++diffs;
            std::printf("section %-8s only in %s\n", sa.name.c_str(),
                        path_a.c_str());
            continue;
        }
        if (sa.length != sb->length) {
            ++diffs;
            std::printf("section %-8s %llu vs %llu bytes\n",
                        sa.name.c_str(),
                        static_cast<unsigned long long>(sa.length),
                        static_cast<unsigned long long>(sb->length));
            continue;
        }
        const std::uint8_t *a = fa.data() + pa + sa.offset;
        const std::uint8_t *b = fb.data() + pb + sb->offset;
        for (std::uint64_t i = 0; i < sa.length; ++i) {
            if (a[i] != b[i]) {
                ++diffs;
                std::printf("section %-8s differs at payload byte"
                            " %llu\n",
                            sa.name.c_str(),
                            static_cast<unsigned long long>(
                                sa.offset + i));
                break;
            }
        }
    }
    for (const Section &sb : hb.sections) {
        bool found = false;
        for (const Section &s : ha.sections) {
            if (s.name == sb.name)
                found = true;
        }
        if (!found) {
            ++diffs;
            std::printf("section %-8s only in %s\n", sb.name.c_str(),
                        path_b.c_str());
        }
    }
    if (diffs == 0) {
        std::printf("identical (%zu bytes)\n", fa.size());
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "info" && argc == 3)
            return cmdInfo(argv[2]);
        if (cmd == "verify" && argc == 3)
            return cmdVerify(argv[2]);
        if (cmd == "diff" && argc == 4)
            return cmdDiff(argv[2], argv[3]);
    } catch (const Error &e) {
        std::fprintf(stderr, "emcckpt: %s\n", e.what());
        return 1;
    }
    usage();
    return 2;
}
