/**
 * @file
 * emcckpt — inspect checkpoint files without running the simulator.
 *
 *   emcckpt info FILE          header, level, hashes, section table
 *   emcckpt verify FILE        full parse incl. payload CRC; exit 0/1
 *   emcckpt diff FILE FILE     compare headers and per-section bytes,
 *                              with chunk-level shared/unique deltas
 *                              (the store's dedup granularity)
 *   emcckpt store DIR put NAME FILE    add an image to a store
 *   emcckpt store DIR get NAME FILE    reassemble an image
 *   emcckpt store DIR ls               list stored images
 *   emcckpt store DIR stats            dedup accounting
 *   emcckpt store DIR gc               drop unreferenced chunks
 *
 * Operates on the container bytes alone (src/ckpt has no System
 * dependency), so it works on images from any build of the simulator
 * with the same format version.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/ckpt.hh"
#include "ckpt/store.hh"

namespace
{

using namespace emc::ckpt;

void
usage()
{
    std::fprintf(stderr,
                 "usage: emcckpt info FILE\n"
                 "       emcckpt verify FILE\n"
                 "       emcckpt diff FILE FILE\n"
                 "       emcckpt store DIR put NAME FILE\n"
                 "       emcckpt store DIR get NAME FILE\n"
                 "       emcckpt store DIR ls\n"
                 "       emcckpt store DIR stats\n"
                 "       emcckpt store DIR gc\n");
}

/** 64 KB chunk hashes of @p n bytes at @p p (the store granularity). */
std::set<std::pair<std::uint64_t, std::uint64_t>>
chunkSet(const std::uint8_t *p, std::uint64_t n)
{
    constexpr std::uint64_t kChunk = 1 << 16;
    std::set<std::pair<std::uint64_t, std::uint64_t>> out;
    for (std::uint64_t off = 0; off < n; off += kChunk) {
        const std::uint64_t len = std::min(kChunk, n - off);
        out.insert({fnv1a(p + off, len), len});
    }
    return out;
}

/** Bytes of [@p p, @p p + @p n) whose chunks also appear in @p ref. */
std::uint64_t
sharedBytes(
    const std::set<std::pair<std::uint64_t, std::uint64_t>> &ref,
    const std::uint8_t *p, std::uint64_t n)
{
    constexpr std::uint64_t kChunk = 1 << 16;
    std::uint64_t shared = 0;
    for (std::uint64_t off = 0; off < n; off += kChunk) {
        const std::uint64_t len = std::min(kChunk, n - off);
        if (ref.count({fnv1a(p + off, len), len}))
            shared += len;
    }
    return shared;
}

void
printHeader(const std::string &path, const Header &h,
            std::size_t file_bytes, std::size_t payload_bytes)
{
    std::printf("%s:\n", path.c_str());
    std::printf("  version:     %u\n", h.version);
    std::printf("  level:       %s\n", levelName(h.level));
    std::printf("  config hash: %016llx\n",
                static_cast<unsigned long long>(h.config_hash));
    std::printf("  payload crc: %016llx\n",
                static_cast<unsigned long long>(h.payload_crc));
    std::printf("  size:        %zu bytes (%zu payload)\n", file_bytes,
                payload_bytes);
    std::printf("  %-10s %12s %12s\n", "section", "offset", "bytes");
    for (const Section &s : h.sections) {
        std::printf("  %-10s %12llu %12llu\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.length));
    }
}

int
cmdInfo(const std::string &path)
{
    // Skip the CRC so info still prints the header of an image whose
    // payload is damaged; verify is the integrity check.
    const std::vector<std::uint8_t> file = readFile(path);
    std::size_t payload_at = 0;
    const Header h = parseHeader(file, &payload_at, true);
    printHeader(path, h, file.size(), file.size() - payload_at);
    return 0;
}

int
cmdVerify(const std::string &path)
{
    const std::vector<std::uint8_t> file = readFile(path);
    const Header h = parseHeader(file);
    std::size_t payload_at = 0;
    parseHeader(file, &payload_at, true);
    const std::size_t payload_bytes = file.size() - payload_at;
    // The TOC must tile the payload: contiguous, in order, no gaps.
    std::uint64_t expect = 0;
    for (const Section &s : h.sections) {
        if (s.offset != expect) {
            std::fprintf(stderr,
                         "%s: section %s at offset %llu, expected"
                         " %llu\n",
                         path.c_str(), s.name.c_str(),
                         static_cast<unsigned long long>(s.offset),
                         static_cast<unsigned long long>(expect));
            return 1;
        }
        expect = s.offset + s.length;
    }
    if (expect != payload_bytes) {
        std::fprintf(stderr,
                     "%s: sections cover %llu of %zu payload bytes\n",
                     path.c_str(),
                     static_cast<unsigned long long>(expect),
                     payload_bytes);
        return 1;
    }
    std::printf("%s: OK (version %u, %s level, %zu bytes, %zu"
                " sections)\n",
                path.c_str(), h.version, levelName(h.level),
                file.size(), h.sections.size());
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    const std::vector<std::uint8_t> fa = readFile(path_a);
    const std::vector<std::uint8_t> fb = readFile(path_b);
    std::size_t pa = 0, pb = 0;
    const Header ha = parseHeader(fa, &pa, true);
    const Header hb = parseHeader(fb, &pb, true);

    int diffs = 0;
    auto field = [&](const char *what, std::uint64_t a,
                     std::uint64_t b) {
        if (a == b)
            return;
        ++diffs;
        std::printf("%-12s %016llx vs %016llx\n", what,
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
    };
    field("version", ha.version, hb.version);
    field("level", static_cast<std::uint64_t>(ha.level),
          static_cast<std::uint64_t>(hb.level));
    field("config hash", ha.config_hash, hb.config_hash);
    field("payload crc", ha.payload_crc, hb.payload_crc);

    // Per-section byte comparison so a divergence names the subsystem
    // (and the first differing byte) instead of just "files differ".
    for (const Section &sa : ha.sections) {
        const Section *sb = nullptr;
        for (const Section &s : hb.sections) {
            if (s.name == sa.name)
                sb = &s;
        }
        if (!sb) {
            ++diffs;
            std::printf("section %-8s only in %s\n", sa.name.c_str(),
                        path_a.c_str());
            continue;
        }
        const std::uint8_t *a = fa.data() + pa + sa.offset;
        const std::uint8_t *b = fb.data() + pb + sb->offset;
        if (sa.length != sb->length) {
            ++diffs;
            const std::uint64_t shared =
                sharedBytes(chunkSet(a, sa.length), b, sb->length);
            std::printf("section %-8s %llu vs %llu bytes "
                        "(%llu shared, %llu unique)\n",
                        sa.name.c_str(),
                        static_cast<unsigned long long>(sa.length),
                        static_cast<unsigned long long>(sb->length),
                        static_cast<unsigned long long>(shared),
                        static_cast<unsigned long long>(sb->length
                                                        - shared));
            continue;
        }
        for (std::uint64_t i = 0; i < sa.length; ++i) {
            if (a[i] != b[i]) {
                ++diffs;
                // Chunk-level delta at the store's dedup granularity:
                // how much of this section the store would still
                // share between the two images.
                const std::uint64_t shared = sharedBytes(
                    chunkSet(a, sa.length), b, sb->length);
                std::printf("section %-8s differs at payload byte"
                            " %llu (%llu of %llu bytes shared,"
                            " %llu unique)\n",
                            sa.name.c_str(),
                            static_cast<unsigned long long>(
                                sa.offset + i),
                            static_cast<unsigned long long>(shared),
                            static_cast<unsigned long long>(
                                sa.length),
                            static_cast<unsigned long long>(
                                sa.length - shared));
                break;
            }
        }
    }
    for (const Section &sb : hb.sections) {
        bool found = false;
        for (const Section &s : ha.sections) {
            if (s.name == sb.name)
                found = true;
        }
        if (!found) {
            ++diffs;
            std::printf("section %-8s only in %s\n", sb.name.c_str(),
                        path_b.c_str());
        }
    }
    if (diffs == 0) {
        std::printf("identical (%zu bytes)\n", fa.size());
        return 0;
    }

    // Whole-image delta at store granularity: what a content-addressed
    // store would pay to keep both images.
    const std::uint64_t shared = sharedBytes(
        chunkSet(fa.data(), fa.size()), fb.data(), fb.size());
    std::printf("delta: %s shares %llu of %zu bytes with %s"
                " (%llu unique, %.1f%% dedup)\n",
                path_b.c_str(),
                static_cast<unsigned long long>(shared), fb.size(),
                path_a.c_str(),
                static_cast<unsigned long long>(fb.size() - shared),
                fb.empty() ? 0.0 : 100.0 * shared / fb.size());
    return 1;
}

int
cmdStore(int argc, char **argv)
{
    // argv: store DIR SUB [ARGS...]
    if (argc < 4) {
        usage();
        return 2;
    }
    const std::string dir = argv[2];
    const std::string sub = argv[3];
    emc::ckpt::Store store(dir);

    if (sub == "put" && argc == 6) {
        const StorePut p = store.put(argv[4], readFile(argv[5]));
        std::printf("%s: %llu bytes in %llu chunks, %llu new"
                    " (%llu bytes written), %llu reused"
                    " (%llu bytes deduplicated)\n",
                    argv[4],
                    static_cast<unsigned long long>(p.image_bytes),
                    static_cast<unsigned long long>(p.chunks),
                    static_cast<unsigned long long>(p.new_chunks),
                    static_cast<unsigned long long>(p.new_bytes),
                    static_cast<unsigned long long>(p.reused_chunks),
                    static_cast<unsigned long long>(p.reused_bytes));
        return 0;
    }
    if (sub == "get" && argc == 6) {
        writeFile(argv[5], store.get(argv[4]));
        std::printf("%s -> %s\n", argv[4], argv[5]);
        return 0;
    }
    if (sub == "ls" && argc == 4) {
        for (const std::string &n : store.names())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    if (sub == "stats" && argc == 4) {
        const StoreStats s = store.stats();
        std::printf("images:        %llu\n",
                    static_cast<unsigned long long>(s.manifests));
        std::printf("chunks:        %llu\n",
                    static_cast<unsigned long long>(s.objects));
        std::printf("logical bytes: %llu\n",
                    static_cast<unsigned long long>(s.logical_bytes));
        std::printf("stored bytes:  %llu (%llu objects + %llu"
                    " manifests)\n",
                    static_cast<unsigned long long>(s.storedBytes()),
                    static_cast<unsigned long long>(s.object_bytes),
                    static_cast<unsigned long long>(s.manifest_bytes));
        if (s.storedBytes() > 0) {
            std::printf("reduction:     %.2fx\n",
                        static_cast<double>(s.logical_bytes)
                            / static_cast<double>(s.storedBytes()));
        }
        return 0;
    }
    if (sub == "gc" && argc == 4) {
        std::printf("freed %llu bytes\n",
                    static_cast<unsigned long long>(store.gc()));
        return 0;
    }
    usage();
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "info" && argc == 3)
            return cmdInfo(argv[2]);
        if (cmd == "verify" && argc == 3)
            return cmdVerify(argv[2]);
        if (cmd == "diff" && argc == 4)
            return cmdDiff(argv[2], argv[3]);
        if (cmd == "store")
            return cmdStore(argc, argv);
    } catch (const Error &e) {
        std::fprintf(stderr, "emcckpt: %s\n", e.what());
        return 1;
    }
    usage();
    return 2;
}
