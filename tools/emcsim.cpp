/**
 * @file
 * emcsim — command-line driver for the simulator.
 *
 * Runs any mix of benchmark profiles under any of the paper's
 * configurations and prints (or exports) the full statistics dump.
 *
 *   emcsim --workload mcf,sphinx3,soplex,libquantum --emc --pf ghb
 *   emcsim --mix H4 --emc --uops 50000 --warmup 25000 --csv out.csv
 *   emcsim --workload mcf --cores 1 --runahead --stats lat,emc
 *   emcsim --list
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/ckpt.hh"
#include "sim/system.hh"
#include "trace/format.hh"
#include "workload/profile.hh"

namespace
{

using namespace emc;

void
usage()
{
    std::printf(
        "emcsim — Enhanced Memory Controller simulator driver\n"
        "\n"
        "workload selection (one of):\n"
        "  --workload a,b,c,...   benchmark per core (repeat last to"
        " fill)\n"
        "  --mix H1..H10          a paper Table 3 mix\n"
        "  --list                 list benchmark profiles and mixes\n"
        "\n"
        "configuration:\n"
        "  --cores N              core count (default 4; 8 supported)\n"
        "  --dual-mc              two memory controllers (8-core)\n"
        "  --pf none|ghb|stream|markov|stride|pickle  prefetcher\n"
        "  --emc                  enable the Enhanced Memory"
        " Controller\n"
        "  --runahead             enable runahead execution\n"
        "\n"
        "off-chip prediction (DESIGN.md §13):\n"
        "  --predictor table|perceptron\n"
        "                         EMC LLC-bypass predictor engine\n"
        "                         (default table, the paper's 3-bit"
        " PC\n"
        "                         hash; perceptron is Hermes-style)\n"
        "  --hermes               core-side off-chip prediction:"
        " loads\n"
        "                         predicted to miss launch"
        " speculative\n"
        "                         DRAM probes at dispatch\n"
        "  --perc-entries N       perceptron weight rows per feature\n"
        "                         (default 2048)\n"
        "  --perc-activation N    perceptron activation threshold\n"
        "                         (default 2)\n"
        "  --perc-theta N         perceptron training threshold\n"
        "                         (default 16)\n"
        "  --ideal-dep-hits       Figure 2 idealization\n"
        "  --channels N --ranks N DRAM geometry\n"
        "  --sched batch|frfcfs   memory scheduler (default batch)\n"
        "  --emc-contexts N       EMC issue contexts\n"
        "  --chain-cap N          max uops per chain\n"
        "  --indirection N        max new lines per chain\n"
        "\n"
        "run control:\n"
        "  --uops N               retired uops per core (default"
        " 50000)\n"
        "  --capture PREFIX       record uop streams to"
        " PREFIX.coreN.emct\n"
        "  --trace-in f1,f2,...   replay v2 trace containers; workload\n"
        "                         names come from their headers\n"
        "  --replay f1,f2,...     replay uop-stream files (legacy v1\n"
        "                         path; needs an explicit --workload)\n"
        "  --warmup N             warmup uops (default uops/2)\n"
        "  --seed N               RNG seed\n"
        "\n"
        "checkpointing (DESIGN.md §7):\n"
        "  --save-ckpt FILE       save a checkpoint to FILE\n"
        "  --ckpt-at N            with --save-ckpt (full level): save\n"
        "                         at the first cycle >= N, keep"
        " running\n"
        "  --ckpt-level full|warmup\n"
        "                         full (default): complete state,\n"
        "                         restore needs the identical config;\n"
        "                         warmup: warmed caches/predictors"
        " only,\n"
        "                         restorable into differing EMC/\n"
        "                         prefetcher configs (saves and"
        " exits)\n"
        "  --restore-ckpt FILE    restore FILE before running\n"
        "  --ckpt-compress        deflate-compress saved images (zlib\n"
        "                         builds; reads are always"
        " transparent)\n"
        "\n"
        "functional warming + sampling (DESIGN.md §8):\n"
        "  --fastwarm-to N        with --save-ckpt: fast-forward N"
        " uops\n"
        "                         per core through tag-only warming,\n"
        "                         write a warmup-level image and exit\n"
        "  --fastwarm-validate    warm once detailed and once fast,\n"
        "                         compare predictor/TLB/cache state"
        " and\n"
        "                         exit nonzero on disagreement\n"
        "  --sample-period N      SMARTS sampling: total uops per core\n"
        "                         per window (fast-forward + detail)\n"
        "  --sample-detail N      uops per core simulated in detail"
        " at\n"
        "                         each window head (default"
        " period/10)\n"
        "\n"
        "observability (DESIGN.md §6):\n"
        "  --trace FILE           write a Chrome trace_event JSON of\n"
        "                         every transaction lifecycle\n"
        "  --trace-interval N     with --trace: also stream the stat\n"
        "                         registry to FILE.jsonl every N"
        " cycles\n"
        "\n"
        "output:\n"
        "  --stats prefix[,..]    print only stats matching prefixes\n"
        "  --csv FILE             append name,value rows\n"
        "  --json FILE            write the full dump as JSON\n"
        "  --quiet                print only the summary line\n");
}

bool
parseU64(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end && *end == '\0';
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

void
listWorkloads()
{
    std::printf("high-intensity benchmarks (MPKI >= 10):\n ");
    for (const auto &n : highIntensityNames())
        std::printf(" %s", n.c_str());
    std::printf("\nlow-intensity benchmarks:\n ");
    for (const auto &n : lowIntensityNames())
        std::printf(" %s", n.c_str());
    std::printf("\nirregular-workload families (trace library):\n ");
    for (const auto &n : irregularNames())
        std::printf(" %s", n.c_str());
    std::printf("\nmixes (Table 3):\n");
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        std::printf("  %-4s", quadWorkloadName(h).c_str());
        for (const auto &b : quadWorkloads()[h])
            std::printf(" %s", b.c_str());
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace emc;

    SystemConfig cfg;
    cfg.target_uops = 50000;
    std::uint64_t warmup = ~0ull;
    std::vector<std::string> workload;
    std::vector<std::string> stat_prefixes;
    std::string csv_path;
    std::string json_path;
    bool quiet = false;
    bool dual_mc = false;
    unsigned cores = 0;
    std::string save_ckpt;
    std::string restore_ckpt;
    std::uint64_t ckpt_at = ~0ull;
    ckpt::Level ckpt_level = ckpt::Level::kFull;
    bool ckpt_compress = false;
    std::uint64_t fastwarm_to = 0;
    bool fastwarm_validate = false;
    std::uint64_t sample_period = 0;
    std::uint64_t sample_detail = 0;
    bool trace_in = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list") {
            listWorkloads();
            return 0;
        } else if (a == "--workload") {
            workload = splitCommas(need("--workload"));
        } else if (a == "--mix") {
            const std::string m = need("--mix");
            bool found = false;
            for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
                if (quadWorkloadName(h) == m) {
                    workload = quadWorkloads()[h];
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown mix %s\n", m.c_str());
                return 2;
            }
        } else if (a == "--cores") {
            std::uint64_t v;
            if (!parseU64(need("--cores"), v)) return 2;
            cores = static_cast<unsigned>(v);
        } else if (a == "--dual-mc") {
            dual_mc = true;
        } else if (a == "--pf") {
            const std::string p = need("--pf");
            if (p == "none") cfg.prefetch = PrefetchConfig::kNone;
            else if (p == "ghb") cfg.prefetch = PrefetchConfig::kGhb;
            else if (p == "stream")
                cfg.prefetch = PrefetchConfig::kStream;
            else if (p == "markov")
                cfg.prefetch = PrefetchConfig::kMarkovStream;
            else if (p == "stride")
                cfg.prefetch = PrefetchConfig::kStride;
            else if (p == "pickle")
                cfg.prefetch = PrefetchConfig::kPickle;
            else {
                std::fprintf(stderr, "unknown prefetcher %s\n",
                             p.c_str());
                return 2;
            }
        } else if (a == "--emc") {
            cfg.emc_enabled = true;
        } else if (a == "--predictor") {
            const std::string p = need("--predictor");
            if (p == "table")
                cfg.emc.pred.kind = pred::PredKind::kTable;
            else if (p == "perceptron")
                cfg.emc.pred.kind = pred::PredKind::kPerceptron;
            else {
                std::fprintf(stderr, "unknown predictor %s\n",
                             p.c_str());
                return 2;
            }
        } else if (a == "--hermes") {
            cfg.core.hermes_enabled = true;
        } else if (a == "--perc-entries") {
            std::uint64_t v;
            if (!parseU64(need("--perc-entries"), v)) return 2;
            cfg.emc.pred.perc_entries = static_cast<unsigned>(v);
            cfg.core.hermes_pred.perc_entries =
                static_cast<unsigned>(v);
        } else if (a == "--perc-activation") {
            std::uint64_t v;
            if (!parseU64(need("--perc-activation"), v)) return 2;
            cfg.emc.pred.perc_activation = static_cast<int>(v);
            cfg.core.hermes_pred.perc_activation =
                static_cast<int>(v);
        } else if (a == "--perc-theta") {
            std::uint64_t v;
            if (!parseU64(need("--perc-theta"), v)) return 2;
            cfg.emc.pred.perc_training_threshold =
                static_cast<int>(v);
            cfg.core.hermes_pred.perc_training_threshold =
                static_cast<int>(v);
        } else if (a == "--runahead") {
            cfg.core.runahead_enabled = true;
        } else if (a == "--ideal-dep-hits") {
            cfg.ideal_dependent_hits = true;
        } else if (a == "--channels") {
            std::uint64_t v;
            if (!parseU64(need("--channels"), v)) return 2;
            cfg.dram.channels = static_cast<unsigned>(v);
        } else if (a == "--ranks") {
            std::uint64_t v;
            if (!parseU64(need("--ranks"), v)) return 2;
            cfg.dram.ranks_per_channel = static_cast<unsigned>(v);
        } else if (a == "--sched") {
            const std::string p = need("--sched");
            cfg.sched = p == "frfcfs" ? SchedPolicy::kFrFcfs
                                      : SchedPolicy::kBatch;
        } else if (a == "--emc-contexts") {
            std::uint64_t v;
            if (!parseU64(need("--emc-contexts"), v)) return 2;
            cfg.emc.contexts = static_cast<unsigned>(v);
        } else if (a == "--chain-cap") {
            std::uint64_t v;
            if (!parseU64(need("--chain-cap"), v)) return 2;
            cfg.core.chain_max_uops = static_cast<unsigned>(v);
        } else if (a == "--indirection") {
            std::uint64_t v;
            if (!parseU64(need("--indirection"), v)) return 2;
            cfg.core.chain_max_indirection = static_cast<unsigned>(v);
        } else if (a == "--uops") {
            if (!parseU64(need("--uops"), cfg.target_uops)) return 2;
        } else if (a == "--warmup") {
            if (!parseU64(need("--warmup"), warmup)) return 2;
        } else if (a == "--seed") {
            if (!parseU64(need("--seed"), cfg.seed)) return 2;
        } else if (a == "--stats") {
            stat_prefixes = splitCommas(need("--stats"));
        } else if (a == "--capture") {
            cfg.capture_prefix = need("--capture");
        } else if (a == "--replay") {
            cfg.trace_files = splitCommas(need("--replay"));
        } else if (a == "--trace-in") {
            cfg.trace_files = splitCommas(need("--trace-in"));
            trace_in = true;
        } else if (a == "--save-ckpt") {
            save_ckpt = need("--save-ckpt");
        } else if (a == "--restore-ckpt") {
            restore_ckpt = need("--restore-ckpt");
        } else if (a == "--ckpt-at") {
            if (!parseU64(need("--ckpt-at"), ckpt_at)) return 2;
        } else if (a == "--ckpt-level") {
            const std::string l = need("--ckpt-level");
            if (l == "full") ckpt_level = ckpt::Level::kFull;
            else if (l == "warmup") ckpt_level = ckpt::Level::kWarmup;
            else {
                std::fprintf(stderr, "unknown checkpoint level %s\n",
                             l.c_str());
                return 2;
            }
        } else if (a == "--ckpt-compress") {
            ckpt_compress = true;
        } else if (a == "--fastwarm-to") {
            if (!parseU64(need("--fastwarm-to"), fastwarm_to)) return 2;
        } else if (a == "--fastwarm-validate") {
            fastwarm_validate = true;
        } else if (a == "--sample-period") {
            if (!parseU64(need("--sample-period"), sample_period))
                return 2;
        } else if (a == "--sample-detail") {
            if (!parseU64(need("--sample-detail"), sample_detail))
                return 2;
        } else if (a == "--trace") {
            cfg.trace_path = need("--trace");
        } else if (a == "--trace-interval") {
            std::uint64_t v;
            if (!parseU64(need("--trace-interval"), v)) return 2;
            cfg.trace_interval = v;
        } else if (a == "--json") {
            json_path = need("--json");
        } else if (a == "--csv") {
            csv_path = need("--csv");
        } else if (a == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag %s (try --help)\n",
                         a.c_str());
            return 2;
        }
    }

    if (trace_in) {
        // Workload names come from the container headers, recorded at
        // capture time — never guessed.
        if (!workload.empty()) {
            std::fprintf(stderr,
                         "--trace-in derives workload names from the"
                         " trace headers; drop --workload/--mix\n");
            return 2;
        }
        for (const auto &path : cfg.trace_files) {
            try {
                const trace::Info info = trace::probeFile(path);
                if (info.version < 2
                    || info.provenance.workload.empty()) {
                    std::fprintf(stderr,
                                 "%s: v%u trace carries no workload"
                                 " provenance; replay it with --replay"
                                 " and an explicit --workload\n",
                                 path.c_str(), info.version);
                    return 2;
                }
                workload.push_back(info.provenance.workload);
            } catch (const trace::Error &e) {
                std::fprintf(stderr, "trace error: %s\n", e.what());
                return 1;
            }
        }
    } else if (workload.empty() && !cfg.trace_files.empty()) {
        // The v1 dump has no provenance and nothing here guesses:
        // replayed runs used to be silently labeled "mcf".
        std::fprintf(stderr,
                     "--replay needs --workload (one name per file) —"
                     " v1 traces carry no workload provenance;"
                     " re-record with emctracegen or --capture for"
                     " self-describing v2 traces\n");
        return 2;
    }
    if (workload.empty()) {
        usage();
        return 2;
    }

    if (cores == 0)
        cores = static_cast<unsigned>(workload.size());
    if (cores == 8 || dual_mc)
        cfg.scaleToEightCores(dual_mc);
    cfg.num_cores = cores;
    while (workload.size() < cores)
        workload.push_back(workload.back());
    workload.resize(cores);
    cfg.warmup_uops = warmup == ~0ull ? cfg.target_uops / 2 : warmup;

    if ((!save_ckpt.empty() || !restore_ckpt.empty())
        && (!cfg.trace_path.empty() || !cfg.capture_prefix.empty())) {
        std::fprintf(stderr,
                     "checkpointing cannot be combined with --trace or"
                     " --capture (their file offsets are not"
                     " restorable)\n");
        return 2;
    }
    if (save_ckpt.empty() && ckpt_at != ~0ull) {
        std::fprintf(stderr, "--ckpt-at requires --save-ckpt\n");
        return 2;
    }
    if (ckpt_compress && !ckpt::compressionAvailable()) {
        std::fprintf(stderr, "--ckpt-compress needs a zlib-enabled"
                             " build\n");
        return 2;
    }
    if (fastwarm_to != 0 && save_ckpt.empty()) {
        std::fprintf(stderr, "--fastwarm-to requires --save-ckpt\n");
        return 2;
    }
    if (sample_detail != 0 && sample_period == 0) {
        std::fprintf(stderr,
                     "--sample-detail requires --sample-period\n");
        return 2;
    }
    if (sample_period != 0) {
        if (sample_detail == 0)
            sample_detail = std::max<std::uint64_t>(sample_period / 10, 1);
        if (sample_detail > sample_period) {
            std::fprintf(stderr, "--sample-detail must be <="
                                 " --sample-period\n");
            return 2;
        }
    }
    if (!save_ckpt.empty() && fastwarm_to == 0
        && ckpt_level == ckpt::Level::kFull
        && ckpt_at == ~0ull) {
        std::fprintf(stderr, "--save-ckpt at the full level needs"
                             " --ckpt-at N (warmup level saves after"
                             " the warmup phase instead)\n");
        return 2;
    }

    if (fastwarm_validate) {
        // Warm one machine through the detailed pipeline and one
        // through the tag-only fast path, then compare the warmable
        // state (DESIGN.md §8). Frame allocation order differs, so
        // caches/TLBs are compared in virtual space; the predictors
        // must match bit-for-bit once the fast path replays the exact
        // per-core dispatched uop counts.
        if (cfg.warmup_uops == 0) {
            std::fprintf(stderr,
                         "--fastwarm-validate needs --warmup > 0\n");
            return 2;
        }
        try {
            System detailed(cfg, workload);
            (void)detailed.warmupCheckpointBytes();
            std::vector<std::uint64_t> dispatched(cfg.num_cores);
            for (unsigned i = 0; i < cfg.num_cores; ++i) {
                dispatched[i] =
                    detailed.uopsProduced(i)
                    - (detailed.core(i).hasDeferredUop() ? 1 : 0);
            }
            System fast(cfg, workload);
            fast.fastForward(dispatched);
            const WarmStateDiff d = compareWarmState(detailed, fast);
            std::printf("fastwarm validation:\n"
                        "  branch predictors : %s\n"
                        "  tlb overlap       : %.4f\n"
                        "  l1 overlap        : %.4f (%zu vs %zu lines)\n"
                        "  llc overlap       : %.4f (%zu vs %zu lines)\n",
                        d.bp_equal ? "byte-identical" : "DIVERGED",
                        d.tlb_jaccard, d.l1_jaccard, d.l1_lines_a,
                        d.l1_lines_b, d.llc_jaccard, d.llc_lines_a,
                        d.llc_lines_b);
            const bool ok = d.bp_equal && d.tlb_jaccard >= 0.8
                            && d.l1_jaccard >= 0.6
                            && d.llc_jaccard >= 0.7;
            std::printf("fastwarm validation %s\n",
                        ok ? "PASSED" : "FAILED");
            return ok ? 0 : 1;
        } catch (const ckpt::Error &e) {
            std::fprintf(stderr, "fastwarm validation error: %s\n",
                         e.what());
            return 1;
        }
    }

    std::unique_ptr<System> sys_p;
    try {
        sys_p = std::make_unique<System>(cfg, workload);
    } catch (const trace::Error &e) {
        std::fprintf(stderr, "trace error: %s\n", e.what());
        return 1;
    }
    System &sys = *sys_p;
    sys.setCkptCompress(ckpt_compress);
    try {
        if (!restore_ckpt.empty())
            sys.restoreCheckpoint(restore_ckpt);
        if (fastwarm_to != 0) {
            // Dedicated fast-warming run: produce a warmup-level image
            // without ever entering detailed simulation.
            SystemConfig warm_cfg = cfg;
            warm_cfg.warmup_uops = fastwarm_to;
            System warm(warm_cfg, workload);
            ckpt::writeFile(save_ckpt, warm.fastwarmCheckpointBytes(),
                            ckpt_compress);
            std::printf("wrote fastwarm checkpoint %s\n",
                        save_ckpt.c_str());
            return 0;
        }
        if (!save_ckpt.empty()) {
            if (ckpt_level == ckpt::Level::kWarmup) {
                // Draining to the warmup snapshot perturbs this run's
                // timing, so a warmup-level saver is a dedicated run:
                // write the image and exit.
                sys.saveCheckpoint(save_ckpt, ckpt::Level::kWarmup);
                std::printf("wrote warmup checkpoint %s\n",
                            save_ckpt.c_str());
                return 0;
            }
            sys.scheduleCheckpoint(save_ckpt, ckpt_at);
        }
        if (sample_period != 0) {
            SampleParams p;
            p.period = sample_period;
            p.detail = sample_detail;
            const SampledStats s = sys.runSampled(p);
            std::printf("sampled: windows=%llu ipc=%.4f +-%.4f"
                        " dep_lat=%.1f +-%.1f (95%% CI)\n",
                        static_cast<unsigned long long>(s.windows),
                        s.ipc_mean, s.ipc_ci95, s.dep_lat_mean,
                        s.dep_lat_ci95);
        } else {
            sys.run();
        }
    } catch (const ckpt::Error &e) {
        std::fprintf(stderr, "checkpoint error: %s\n", e.what());
        return 1;
    } catch (const trace::Error &e) {
        std::fprintf(stderr, "trace error: %s\n", e.what());
        return 1;
    }
    const StatDump d = sys.dump();

    if (!quiet) {
        if (stat_prefixes.empty()) {
            std::fputs(d.format().c_str(), stdout);
        } else {
            for (const auto &[name, value] : d.all()) {
                for (const auto &prefix : stat_prefixes) {
                    if (name.rfind(prefix, 0) == 0) {
                        std::printf("%-56s %18.6f\n", name.c_str(),
                                    value);
                        break;
                    }
                }
            }
        }
    }

    std::printf("summary: cycles=%.0f ipc_sum=%.4f llc_misses=%.0f "
                "emc_frac=%.3f energy_mj=%.2f\n",
                d.get("system.cycles"), d.get("system.ipc_sum"),
                d.get("llc.demand_misses"), d.get("emc.miss_fraction"),
                d.get("energy.total_mj"));

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        out << d.toJson();
    }
    if (!csv_path.empty()) {
        std::ofstream out(csv_path, std::ios::app);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
            return 1;
        }
        for (const auto &[name, value] : d.all())
            out << name << "," << value << "\n";
    }
    return 0;
}
