"""Command-line interface.

    python3 tools/emclint [paths...]            # default: src
    python3 tools/emclint --list-rules
    python3 tools/emclint -p build --frontend clang --format sarif \
            --output emclint.sarif src

Exit status: 0 clean, 1 findings, 2 usage/environment error — the
same contract as tools/lint_sim.py, so CI can swap one for the other.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import baseline as baseline_mod
from . import engine, output
from .rules import all_rules


def _default_baseline() -> Optional[str]:
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "baseline.json")
    return path if os.path.exists(path) else None


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="emclint",
        description="AST-grounded static analysis for the simulator's "
                    "determinism, checkpoint and warming contracts "
                    "(DESIGN.md §10).")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to analyze "
                        "(default: src)")
    p.add_argument("-p", "--compdb", metavar="DIR_OR_FILE",
                   help="compile_commands.json (or its build dir) for "
                        "the libclang frontend")
    p.add_argument("--frontend", choices=("auto", "clang", "tokens"),
                   default="auto",
                   help="auto = libclang when importable, else the "
                        "dependency-free token frontend")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report here instead of stdout")
    p.add_argument("--baseline", metavar="FILE",
                   default=_default_baseline(),
                   help="accepted-findings baseline (default: "
                        "tools/emclint/baseline.json when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--write-baseline", action="store_true",
                   help="record current findings into --baseline and "
                        "exit 0")
    p.add_argument("--rules", metavar="R1,R2,...",
                   help="run only these rules")
    p.add_argument("--list-rules", action="store_true")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress the summary line on stderr")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(all_rules().items()):
            print("%-16s %s" % (name, cls.description))
        return 0

    for root in args.paths:
        if not os.path.exists(root):
            print("emclint: no such path: %s" % root, file=sys.stderr)
            return 2

    rules = args.rules.split(",") if args.rules else None
    try:
        res = engine.analyze(args.paths, frontend=args.frontend,
                             compdb_path=args.compdb, rules=rules)
    except RuntimeError as e:
        print("emclint: %s" % e, file=sys.stderr)
        return 2

    if res.frontend_note and not args.quiet:
        print("emclint: %s" % res.frontend_note, file=sys.stderr)

    findings = res.findings
    if args.write_baseline:
        path = args.baseline or os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "baseline.json")
        baseline_mod.write(path, findings)
        if not args.quiet:
            print("emclint: wrote %d fingerprint(s) to %s"
                  % (len(findings), path), file=sys.stderr)
        return 0
    if args.baseline and not args.no_baseline:
        try:
            findings = baseline_mod.filter_known(
                findings, baseline_mod.load(args.baseline))
        except (OSError, RuntimeError) as e:
            print("emclint: %s" % e, file=sys.stderr)
            return 2

    if args.format == "text":
        report = output.to_text(findings)
    elif args.format == "json":
        report = output.to_json(findings, res.frontend)
    else:
        report = output.to_sarif(findings, res.frontend)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(report)
    else:
        sys.stdout.write(report)

    if not args.quiet:
        if findings:
            print("emclint: %d finding(s) [%s frontend, %d file(s)]"
                  % (len(findings), res.frontend, len(res.files)),
                  file=sys.stderr)
        else:
            print("emclint: %d file(s) clean [%s frontend]"
                  % (len(res.files), res.frontend), file=sys.stderr)
    return 1 if findings else 0
